// E11 — ablation of the engine's design choices (DESIGN.md section 3):
// formula-driven feature pruning and singleton-guard extension modes. Both
// are exactness-preserving reductions of the type universe; this bench
// quantifies how much of the meta-theorem constant they shave off.
#include <chrono>

#include "bench_util.hpp"
#include "bpt/engine.hpp"
#include "bpt/plan.hpp"
#include "bpt/tables.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"
#include "seq/courcelle.hpp"

using namespace dmc;

namespace {

struct Measurement {
  std::size_t types = 0;
  double ms = 0;
  bool verdict = false;
  bool completed = false;
};

Measurement measure(const Graph& g, const mso::FormulaPtr& formula,
                    int variant) {
  Measurement m;
  const auto lowered = mso::lower(formula);
  bpt::EngineConfig cfg = bpt::config_for(*lowered);
  if (variant >= 1) cfg = bpt::without_singleton_modes(cfg);
  if (variant >= 2) cfg = bpt::without_feature_pruning(cfg);
  bpt::Engine engine(cfg);
  engine.set_type_limit(1'500'000);
  const auto td = seq::decomposition_for(g);
  const auto plan = bpt::build_global_plan(g, td);
  const auto start = std::chrono::steady_clock::now();
  try {
    const auto root = bpt::fold_type(engine, plan, g);
    bpt::Evaluator eval(engine, lowered);
    m.verdict = eval.eval(root);
    m.completed = true;
  } catch (const std::exception&) {
    m.completed = false;  // type-universe limit hit
  }
  m.ms = std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
             .count();
  m.types = engine.num_types();
  return m;
}

}  // namespace

int main() {
  bench::header(
      "E11: engine ablations (DESIGN.md design choices)",
      "Both reductions preserve exactness (same verdicts) while shrinking "
      "the reachable type universe; 'blown' = 1.5M-type budget exceeded.");

  struct Case {
    const char* name;
    mso::FormulaPtr formula;
    Graph g;
  };
  gen::Rng rng(7);
  const Case cases[] = {
      {"triangle_free/P8", mso::lib::triangle_free(), gen::path(8)},
      {"acyclic/P6", mso::lib::acyclic(), gen::path(6)},
      {"deg3/btd(8,2)", mso::lib::has_vertex_of_degree_ge(3),
       gen::random_bounded_treedepth(8, 2, 0.5, rng)},
      {"connected/P16", mso::lib::connected(), gen::path(16)},
  };
  bench::columns({"case", "variant", "types", "ms", "verdict"});
  const char* variants[] = {"full-opt", "no-singleton", "no-pruning-too"};
  for (const Case& c : cases) {
    bool base_verdict = false;
    for (int variant = 0; variant < 3; ++variant) {
      const Measurement m = measure(c.g, c.formula, variant);
      if (variant == 0) base_verdict = m.verdict;
      if (m.completed && m.verdict != base_verdict) {
        std::printf("ABLATION VERDICT MISMATCH in %s\n", c.name);
        return 1;
      }
      bench::row(std::string(c.name), std::string(variants[variant]),
                 (long long)m.types, m.ms,
                 m.completed ? (long long)m.verdict : -1LL);
    }
  }
  return 0;
}
