// E2 — Lemma 5.3: top-down bag construction in O(2^d) payload rounds per
// level; bag payload sizes depend on the tree depth, not on n.
#include "bench_util.hpp"
#include "congest/network.hpp"
#include "dist/bags.hpp"
#include "dist/elim_tree.hpp"
#include "graph/generators.hpp"

using namespace dmc;

int main() {
  bench::header("E2: distributed canonical bags (Lemma 5.3)",
                "Claim C9: rounds scale with the elimination-tree depth "
                "(payloads are O(|B| log n + |B|^2) bits, fragmented); "
                "independent of n for fixed depth.");

  bench::columns({"family", "n", "d", "tree_depth", "rounds", "max_bag"});
  for (int n : {16, 64, 256}) {
    for (int d : {2, 3, 4}) {
      gen::Rng rng(11);
      const Graph g = gen::random_bounded_treedepth(n, d, 0.3, rng);
      congest::Network net(g);
      const auto tree = dist::run_elim_tree(net, d);
      if (!tree.success) continue;
      int depth = 0;
      for (int x : tree.depth) depth = std::max(depth, x);
      const auto bags = dist::run_bags(net, tree, {}, {});
      std::size_t max_bag = 0;
      for (const auto& b : bags.bags) max_bag = std::max(max_bag, b.bag.size());
      bench::row(std::string("btd"), (long long)n, (long long)d,
                 (long long)depth, (long long)bags.rounds, (long long)max_bag);
    }
  }
  return 0;
}
