// E8 — Theorem 4.2 realization: the BPT type engine. Reports the size of
// the reachable class universe |C| and compose throughput as functions of
// the formula rank and the decomposition width — the non-elementary
// constant of the meta-theorem made visible. Uses google-benchmark for the
// throughput entries.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "bpt/engine.hpp"
#include "bpt/plan.hpp"
#include "bpt/tables.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"
#include "seq/courcelle.hpp"

using namespace dmc;

namespace {

void report_universe() {
  bench::header("E8: BPT type universe |C| vs (formula, width)",
                "Claim C5 (Theorem 4.2): |C| is finite, independent of n, "
                "but grows steeply with rank and width — the meta-theorem's "
                "constant.");
  struct Case {
    const char* name;
    mso::FormulaPtr formula;
  };
  const Case cases[] = {
      {"connected(r1)", mso::lib::connected()},
      {"triangle_free(r3)", mso::lib::triangle_free()},
      {"acyclic(r4)", mso::lib::acyclic()},
  };
  bench::columns({"formula", "graph", "width", "|C|", "composes",
                  "memo_hits", "invalid"});
  for (const Case& c : cases) {
    for (int n : {6, 8, 10}) {
      const Graph g = gen::path(n);
      const auto lowered = mso::lower(c.formula);
      bpt::Engine engine(bpt::config_for(*lowered));
      const auto td = seq::decomposition_for(g);
      const auto plan = bpt::build_global_plan(g, td);
      bpt::fold_type(engine, plan, g);
      bench::row(std::string(c.name), "path" + std::to_string(n),
                 (long long)td.width(), (long long)engine.num_types(),
                 engine.stats().compose_calls, engine.stats().memo_hits,
                 engine.stats().invalid_compositions);
    }
  }
}

void BM_FoldTriangleFree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  gen::Rng rng(1);
  const Graph g = gen::random_bounded_treedepth(n, 2, 0.5, rng);
  const auto lowered = mso::lower(mso::lib::triangle_free());
  const auto td = seq::decomposition_for(g);
  const auto plan = bpt::build_global_plan(g, td);
  for (auto _ : state) {
    bpt::Engine engine(bpt::config_for(*lowered));
    benchmark::DoNotOptimize(bpt::fold_type(engine, plan, g));
  }
}
BENCHMARK(BM_FoldTriangleFree)->Arg(8)->Arg(16)->Arg(32);

void BM_FoldConnected(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = gen::path(n);
  const auto lowered = mso::lower(mso::lib::connected());
  const auto td = seq::decomposition_for(g);
  const auto plan = bpt::build_global_plan(g, td);
  for (auto _ : state) {
    bpt::Engine engine(bpt::config_for(*lowered));
    benchmark::DoNotOptimize(bpt::fold_type(engine, plan, g));
  }
}
BENCHMARK(BM_FoldConnected)->Arg(16)->Arg(64)->Arg(256);

// OPT-table fold throughput. The OPT and COUNT tables are sorted flat
// vectors (bpt/flat_map.hpp); this microbench hammers their find/insert
// path through the weighted fold, so a regression in the table
// representation shows up directly as a throughput delta here.
void BM_OptTableFold(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  gen::Rng rng(7);
  const Graph g = gen::random_bounded_treedepth(n, 3, 0.5, rng);
  const std::vector<std::pair<std::string, mso::Sort>> frees{
      {"S", mso::Sort::VertexSet}};
  const auto lowered = mso::lower(mso::lib::dominating_set(), frees);
  const auto td = seq::decomposition_for(g);
  const auto plan = bpt::build_global_plan(g, td);
  for (auto _ : state) {
    bpt::Engine engine(bpt::config_for(*lowered, frees));
    bpt::OptSolver solver(engine, plan, g);
    benchmark::DoNotOptimize(solver.root_table().size());
  }
}
BENCHMARK(BM_OptTableFold)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  report_universe();
  bench::run_benchmarks(argc, argv);
  return 0;
}
