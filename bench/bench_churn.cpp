// E15 — churn repair: incremental re-solve cost vs from-scratch recompute.
//
// Each sweep point builds a ChurnEngine on a random bounded-treedepth
// graph, pays the full distributed pipeline once (init), then applies a
// deterministic sequence of seeded churn events. An incremental epoch
// repairs the elimination tree coordinator-side (zero distributed
// prologue rounds — Lemma 2.4: the canonical bags are determined by the
// tree), re-folds only the dirty set's ancestor closure, and replays the
// cached BPT tables everywhere else. The claim under measurement: the
// epoch's distributed rounds and BPT folds track the refold closure, not
// n — while every completed epoch's verdict digest stays equal to the
// from-scratch oracle ("never silently wrong").
//
// All values are simulator round counts / fold counts, not wall-clock
// times, so the rows are bit-deterministic and gate-able (bench_gate.py
// against bench/baselines/BENCH_E15.json).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "churn/engine.hpp"
#include "churn/script.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

using namespace dmc;

int main() {
  bench::header(
      "E15: churn repair — incremental epochs vs from-scratch recompute",
      "Claim: a churn epoch spends zero distributed prologue rounds (tree "
      "repaired coordinator-side, bags replayed) and re-folds only the "
      "dirty ancestor closure; rounds and folds track the closure, not n, "
      "and every completed epoch digest-matches the from-scratch oracle.");

  bench::columns({"n", "event", "status", "refold", "rounds", "folds",
                  "oracle"});
  for (int n : {16, 32, 64, 128}) {
    gen::Rng rng(23);
    const Graph g = gen::random_bounded_treedepth(n, 3, 0.25, rng);
    churn::Query query;
    query.pipeline = churn::Pipeline::kDecision;
    query.formula = mso::lib::triangle_free();
    churn::Options opts;
    opts.d = 4;  // headroom: seeded edge inserts may deepen the tree
    churn::ChurnEngine engine(g, query, opts);

    const churn::StepOutcome init = engine.init();
    if (!init.ok()) {
      std::printf("E15 FAILED: init degraded at n=%d\n", n);
      return 1;
    }
    bench::row((long long)n, "init", churn::to_string(init.status),
               init.refold_count, init.rounds, init.folds,
               init.verified ? (init.digest_ok ? "match" : "MISMATCH")
                             : "skip");

    for (int k = 0; k < 4; ++k) {
      const churn::ChurnEvent ev = churn::random_event(engine.graph(), 7, k);
      const churn::StepOutcome out = engine.step({ev});
      const char* oracle = out.verified
                               ? (out.digest_ok ? "match" : "MISMATCH")
                               : "skip";
      bench::row((long long)n, churn::format_event(ev),
                 churn::to_string(out.status), out.refold_count, out.rounds,
                 out.folds, oracle);
      if (out.verified && !out.digest_ok) {
        std::printf("E15 FAILED: digest mismatch at n=%d event %s\n", n,
                    churn::format_event(ev).c_str());
        return 1;
      }
      if (!out.ok()) {
        std::printf("E15 FAILED: fault-free epoch degraded at n=%d\n", n);
        return 1;
      }
    }
  }

  std::printf(
      "\nReading: `refold` is the dirty ancestor closure an incremental "
      "epoch re-folds (n on init/full recomputes); `rounds` excludes the "
      "distributed prologue a from-scratch run pays (compare the init "
      "row of the same n). `oracle` is the per-epoch digest check against "
      "a clean from-scratch re-solve.\n");
  return 0;
}
