// E5 — Section 6 (counting): COUNT tables give triangle / independent-set
// counting in O(1) rounds on bounded-treedepth graphs; counts match the
// exact oracles.
#include "bench_util.hpp"
#include "congest/network.hpp"
#include "dist/counting.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

using namespace dmc;

int main() {
  bench::header("E5: distributed counting (Section 6)",
                "Claim C13: count phi in O(1) rounds; triangle count = "
                "assignments / 6; values match the exact oracle.");

  std::printf("\n-- triangle counting --\n");
  bench::columns({"n", "rounds", "triangles", "oracle", "|C|"});
  for (int n : {10, 20, 40, 80}) {
    gen::Rng rng(3);
    const Graph g = gen::random_bounded_treedepth(n, 3, 0.5, rng);
    congest::Network net(g);
    const auto out = dist::run_count(net, mso::lib::triangle_tuple(),
                                     {{"X", mso::Sort::VertexSet},
                                      {"Y", mso::Sort::VertexSet},
                                      {"Z", mso::Sort::VertexSet}},
                                     3);
    if (out.treedepth_exceeded) continue;
    bench::row((long long)n, out.total_rounds(), (long long)(out.count / 6),
               (long long)exact::count_triangles(g),
               (long long)out.num_classes);
  }

  std::printf("\n-- independent-set counting --\n");
  bench::columns({"n", "rounds", "count", "oracle"});
  for (int n : {10, 16, 22}) {
    gen::Rng rng(17);
    const Graph g = gen::random_bounded_treedepth(n, 3, 0.4, rng);
    congest::Network net(g);
    const auto out = dist::run_count(net, mso::lib::independent_set_indicator(),
                                     {{"S", mso::Sort::VertexSet}}, 3);
    if (out.treedepth_exceeded) continue;
    bench::row((long long)n, out.total_rounds(), (long long)out.count,
               (long long)exact::count_independent_sets(g));
  }
  return 0;
}
