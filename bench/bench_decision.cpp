// E3 — Theorem 6.1 (decision): MSO model checking in O(2^{2d}) rounds,
// independent of n, vs the gather-at-root baseline whose rounds grow
// linearly with n. The crossover is the headline "shape" of the paper.
#include "bench_util.hpp"
#include "congest/network.hpp"
#include "dist/baseline.hpp"
#include "dist/decision.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

using namespace dmc;

int main() {
  bench::header(
      "E3: distributed MSO decision vs gather baseline (Theorem 6.1)",
      "Claim C10: protocol rounds are O(2^{2d}) and flat in n; the "
      "baseline grows ~linearly; messages carry ceil(log|C|)-bit classes.");

  struct Case {
    const char* name;
    mso::FormulaPtr formula;
  };
  const Case cases[] = {
      {"connected", mso::lib::connected()},
      {"isolated", mso::lib::has_isolated_vertex_lowrank()},
      {"triangle_free", mso::lib::triangle_free()},
  };

  for (const Case& c : cases) {
    std::printf("\n-- formula: %s --\n", c.name);
    bench::columns({"n", "proto_rounds", "base_rounds", "holds", "|C|",
                    "class_bits"});
    // Traced sweep: attribute the protocol's rounds to its pipeline stages
    // (elim-tree / bags / decide) to show each stays flat in n.
    obs::CurveTable stages;
    for (int n : {16, 32, 64, 128, 256}) {
      gen::Rng rng(23);
      const Graph g = gen::random_bounded_treedepth(n, 3, 0.25, rng);
      long proto_rounds = 0, base_rounds = 0;
      bool holds = false;
      std::size_t classes = 0;
      int cbits = 0;
      {
        obs::TraceBuffer trace;
        congest::NetworkConfig cfg;
        cfg.sink = &trace;
        congest::Network net(g, cfg);
        const auto out = dist::run_decision(net, c.formula, 3);
        if (out.treedepth_exceeded) continue;
        proto_rounds = out.total_rounds();
        holds = out.holds;
        classes = out.num_classes;
        cbits = out.max_class_bits;
        bench::curve_from_phases(stages, n, obs::summarize(trace),
                                 /*depth=*/1);
      }
      {
        congest::Network net(g);
        base_rounds = dist::run_gather_baseline(net, c.formula).rounds;
      }
      bench::row((long long)n, proto_rounds, base_rounds, (long long)holds,
                 (long long)classes, (long long)cbits);
    }
    std::printf("\nprotocol rounds per stage (traced):\n%s",
                stages.format("n").c_str());
  }
  return 0;
}
