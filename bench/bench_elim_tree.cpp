// E1 — Lemma 5.1: Algorithm 2 builds an elimination tree of depth < 2^d in
// O(2^{2d}) rounds, independent of n.
//
// Sweep 1 fixes d and grows n (expected: a flat rounds column).
// Sweep 2 fixes the graph family and grows d (expected: ~4x growth per +1).
#include <cstdio>

#include "bench_util.hpp"
#include "congest/network.hpp"
#include "dist/elim_tree.hpp"
#include "graph/generators.hpp"
#include "td/elimination_forest.hpp"

using namespace dmc;

int main() {
  bench::header("E1: distributed elimination tree (Algorithm 2)",
                "Claim C8 (Lemma 5.1): rounds = O(2^{2d}), independent of n; "
                "depth < 2^d.");

  bench::columns({"family", "n", "d", "rounds", "tree_depth", "2^d"});
  for (int n : {16, 32, 64, 128, 256, 512}) {
    gen::Rng rng(7);
    const Graph g = gen::random_bounded_treedepth(n, 3, 0.3, rng);
    congest::Network net(g);
    const auto result = dist::run_elim_tree(net, 3);
    if (!result.success) {
      std::printf("unexpected treedepth overflow at n=%d\n", n);
      return 1;
    }
    const EliminationForest forest(result.parent);
    bench::row(std::string("btd(d=3)"), (long long)n, 3LL,
               (long long)result.rounds, (long long)forest.depth(), 8LL);
  }

  // The d-sweep runs traced: the per-step curve decomposes the rounds/4^d
  // constant into Algorithm 2's election / report / adopt steps (the
  // election loop dominates; report + adopt stay O(2^d)).
  bench::columns({"family", "n", "d", "rounds", "rounds/4^d"});
  obs::CurveTable steps;
  obs::TraceBuffer last_trace;
  for (int d = 2; d <= 6; ++d) {
    const Graph g = gen::star(40);  // treedepth 2: always succeeds
    obs::TraceBuffer trace;
    congest::NetworkConfig cfg;
    cfg.sink = &trace;
    congest::Network net(g, cfg);
    const auto result = dist::run_elim_tree(net, d);
    bench::row(std::string("star(40)"), 41LL, (long long)d,
               (long long)result.rounds,
               double(result.rounds) / double(1LL << (2 * d)));
    bench::curve_from_phases(steps, d, obs::summarize(trace), /*depth=*/2);
    if (d == 6) last_trace = trace;
  }
  std::printf("\nrounds per Algorithm 2 step (traced):\n%s",
              steps.format("d").c_str());
  bench::phase_breakdown(last_trace, "per-phase breakdown at d=6:");

  bench::columns({"family", "n", "d", "outcome"});
  // Budget violation is reported, not mis-answered (paper: "large treedepth").
  for (int n : {15, 31}) {
    congest::Network net(gen::path(n));
    const auto result = dist::run_elim_tree(net, 2);
    bench::row(std::string("path"), (long long)n, 2LL,
               std::string(result.success ? "built" : "td>d reported"));
  }
  return 0;
}
