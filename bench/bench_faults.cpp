// E12 — robustness overhead: the reliable transport carries the E1/E3
// protocols over lossy links at a bounded physical-round premium.
//
// Retransmit model (src/congest/reliable.hpp): each virtual round closes
// once every channel's frame and its ack survive; a lost frame is resent
// after a timeout that backs off 2, 4, 8, 16 physical rounds. With i.i.d.
// drop probability p a frame needs 1/(1-p) transmissions in expectation,
// but a virtual round is a *barrier*: it waits for the slowest of the m
// directed channels, i.e. the max of m geometric retransmit chains, which
// grows like log(m)/log(1/p) timeouts. The physical/virtual overhead
// factor is therefore p-dependent and O(log n) in the network size —
// emphatically not O(n): the protocols' flat-in-n round complexity
// survives the lossy links up to a logarithmic transport premium.
// Verdicts must match the fault-free run at every sweep point ("never
// wrong, only slower — or honestly degraded").
#include "bench_util.hpp"
#include "congest/faults.hpp"
#include "congest/network.hpp"
#include "dist/decision.hpp"
#include "dist/elim_tree.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

using namespace dmc;

namespace {

congest::NetworkConfig cfg_for(const char* spec, unsigned fault_seed) {
  congest::NetworkConfig cfg;
  if (spec != nullptr) {
    cfg.faults = congest::parse_fault_plan(spec);
    cfg.faults->seed = fault_seed;
  }
  return cfg;
}

double factor(long physical, long virtual_rounds) {
  return virtual_rounds > 0
             ? static_cast<double>(physical) / static_cast<double>(virtual_rounds)
             : 0.0;
}

}  // namespace

int main() {
  bench::header(
      "E12: reliable-transport overhead under link faults (E1/E3 families)",
      "Claim: physical/virtual round factor depends on the fault rate and "
      "grows only logarithmically in n (barrier over m geometric "
      "retransmit chains); verdicts match the fault-free run everywhere.");

  const char* specs[] = {nullptr, "drop=0.05", "drop=0.1", "drop=0.2",
                         "drop=0.1,dup=0.05,reorder=0.1"};
  const char* spec_names[] = {"none", "drop=.05", "drop=.1", "drop=.2",
                              "mixed"};

  // --- E1 family: elimination tree (Lemma 5.1), d = 3 ----------------------
  std::printf("\n-- E1: elim-tree, d=3, random btd graphs --\n");
  bench::columns({"n", "faults", "vrounds", "phys", "factor", "retx",
                  "dropped"});
  for (int n : {16, 32, 64, 128}) {
    gen::Rng rng(23);
    const Graph g = gen::random_bounded_treedepth(n, 3, 0.25, rng);
    std::vector<int> ref_parent;
    for (std::size_t s = 0; s < std::size(specs); ++s) {
      congest::Network net(g, cfg_for(specs[s], 40 + n));
      const auto out = dist::run_elim_tree(net, 3);
      if (!out.run.ok()) {
        std::printf("%14d%14s%14s\n", n, spec_names[s], "degraded");
        continue;
      }
      if (specs[s] == nullptr) {
        ref_parent = out.parent;
      } else if (out.parent != ref_parent) {
        // Semantics-preserving transport: the constructed tree must be
        // bit-identical to the fault-free run, not merely some valid tree.
        std::printf("E12 FAILED: tree divergence under %s at n=%d\n",
                    spec_names[s], n);
        return 1;
      }
      bench::row((long long)n, spec_names[s], out.run.virtual_rounds,
                 out.run.rounds, factor(out.run.rounds, out.run.virtual_rounds),
                 net.stats().retransmissions, net.stats().faults_dropped);
    }
  }

  // --- E3 family: MSO decision (Theorem 6.1), triangle-free, d = 3 ---------
  std::printf("\n-- E3: decision (triangle_free), d=3 --\n");
  bench::columns({"n", "faults", "vrounds", "phys", "factor", "frame_bits",
                  "logic_bits"});
  const auto formula = mso::lib::triangle_free();
  for (int n : {16, 32, 64}) {
    gen::Rng rng(23);
    const Graph g = gen::random_bounded_treedepth(n, 3, 0.25, rng);
    bool ref_holds = false;
    long ref_vrounds = 0;  // protocol steps == fault-free physical rounds
    for (std::size_t s = 0; s < std::size(specs); ++s) {
      congest::Network net(g, cfg_for(specs[s], 60 + n));
      const auto out = dist::run_decision(net, formula, 3);
      if (!out.run.ok()) {
        std::printf("%14d%14s%14s\n", n, spec_names[s], "degraded");
        continue;
      }
      if (specs[s] == nullptr) {
        ref_holds = out.holds;
        ref_vrounds = out.total_rounds();
      } else if (out.holds != ref_holds) {
        std::printf("E12 FAILED: verdict divergence under %s at n=%d\n",
                    spec_names[s], n);
        return 1;
      }
      // The protocol's step count is deterministic, so the fault-free
      // total_rounds() is the virtual-round count of every sweep point;
      // stats().rounds is this run's physical total across all stages.
      const auto& st = net.stats();
      bench::row((long long)n, spec_names[s], ref_vrounds, st.rounds,
                 factor(st.rounds, ref_vrounds), st.frame_bits,
                 st.total_bits);
    }
  }

  std::printf(
      "\nReading: `factor` is the physical-rounds premium per protocol "
      "step; it should move with the fault rate, not with n. `frame_bits` "
      "vs `logic_bits` is the wire overhead (headers + retransmissions + "
      "acks) on top of the CONGEST-accounted payload bits.\n");
  return 0;
}
