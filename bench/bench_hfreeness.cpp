// E7 — Theorem 7.2 + Corollary 7.3: H-freeness on a bounded-expansion
// family (grids / perturbed grids) via low-treedepth decomposition. The
// per-union decision rounds are constant in n; the decomposition is O(1)
// rounds for the explicit grid construction (the paper's generic algorithm
// would pay O(log n)). We also report the pessimistic multiplexed bound.
#include "bench_util.hpp"
#include "dist/hfreeness.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"

using namespace dmc;

int main() {
  bench::header("E7: H-freeness on bounded expansion (Corollary 7.3)",
                "Claims C14+C15: per-union decision rounds are flat in n; "
                "verdicts match the subgraph-isomorphism oracle.");

  const Graph triangle = gen::clique(3);

  std::printf("\n-- triangle-freeness on pure grids (always triangle-free) --\n");
  bench::columns({"side", "n", "subsets", "runs", "max_rounds", "mux_rounds",
                  "h_free"});
  for (int side : {4, 6, 8, 12, 16}) {
    const Graph g = gen::grid(side, side);
    const auto out = dist::run_h_freeness_grid(g, side, side, triangle, 4);
    bench::row((long long)side, (long long)(side * side),
               (long long)out.num_subsets, (long long)out.num_component_runs,
               out.max_run_rounds, out.multiplexed_rounds,
               (long long)out.h_free);
  }

  std::printf("\n-- perturbed grids (diagonals create triangles) --\n");
  bench::columns({"side", "extra", "h_free", "oracle", "max_rounds"});
  for (int side : {4, 5, 6}) {
    for (int extra : {0, 2, 6}) {
      gen::Rng rng(static_cast<unsigned>(side * 10 + extra));
      const Graph g = gen::perturbed_grid(side, side, extra, rng);
      const auto out = dist::run_h_freeness_grid(g, side, side, triangle, 4);
      const bool oracle = !exact::contains_subgraph(g, triangle);
      bench::row((long long)side, (long long)extra, (long long)out.h_free,
                 (long long)oracle, out.max_run_rounds);
    }
  }
  return 0;
}
