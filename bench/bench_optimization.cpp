// E4 — Theorem 6.1 (optimization): max/min phi(S) in g(d, phi) rounds;
// OPT-table payloads are |C| entries of O(log n) bits. We sweep n on a
// fixed-treedepth family and report rounds, table sizes, and the optimum
// (cross-checked against the exact oracle for small n).
#include "bench_util.hpp"
#include "congest/network.hpp"
#include "dist/optimization.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

using namespace dmc;

int main() {
  bench::header(
      "E4: distributed MSO optimization (Theorem 6.1)",
      "Claim C11: rounds g(d, phi) flat in n; bottom-up payloads of |C| "
      "O(log n)-bit entries; reconstructed optimum matches the oracle.");

  std::printf("\n-- max independent set (rank 0) --\n");
  bench::columns({"n", "rounds", "opt", "oracle", "tbl_entries", "|C|"});
  for (int n : {12, 24, 48, 96, 192}) {
    gen::Rng rng(5);
    Graph g = gen::random_bounded_treedepth(n, 3, 0.3, rng);
    gen::randomize_weights(g, 1, 5, rng);
    congest::Network net(g);
    const auto out = dist::run_maximize(net, mso::lib::independent_set(), "S",
                                        mso::Sort::VertexSet, 3);
    if (out.treedepth_exceeded || !out.best_weight) continue;
    const long long oracle =
        n <= 24 ? exact::max_weight_independent_set(g) : -1;
    bench::row((long long)n, out.total_rounds(), (long long)*out.best_weight,
               oracle, (long long)out.max_table_entries,
               (long long)out.num_classes);
  }

  std::printf("\n-- min dominating set (rank 1) --\n");
  bench::columns({"n", "rounds", "opt", "oracle", "tbl_entries", "|C|"});
  for (int n : {12, 24, 48, 96}) {
    gen::Rng rng(9);
    const Graph g = gen::random_bounded_treedepth(n, 3, 0.3, rng);
    congest::Network net(g);
    const auto out = dist::run_minimize(net, mso::lib::dominating_set(), "S",
                                        mso::Sort::VertexSet, 3);
    if (out.treedepth_exceeded || !out.best_weight) continue;
    const long long oracle =
        n <= 24 ? exact::min_weight_dominating_set(g) : -1;
    bench::row((long long)n, out.total_rounds(), (long long)*out.best_weight,
               oracle, (long long)out.max_table_entries,
               (long long)out.num_classes);
  }

  std::printf("\n-- distributed MST: min spanning-connected F (rank 1) --\n");
  bench::columns({"n", "rounds", "opt", "kruskal", "tbl_entries"});
  for (int n : {10, 20, 40}) {
    gen::Rng rng(13);
    Graph g = gen::random_bounded_treedepth(n, 3, 0.4, rng);
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      g.set_edge_weight(e, 1 + (e * 37) % 11);
    congest::Network net(g);
    const auto out = dist::run_minimize(net, mso::lib::spanning_connected(),
                                        "F", mso::Sort::EdgeSet, 3);
    if (out.treedepth_exceeded || !out.best_weight) continue;
    bench::row((long long)n, out.total_rounds(), (long long)*out.best_weight,
               (long long)exact::min_weight_spanning_tree(g),
               (long long)out.max_table_entries);
  }
  return 0;
}
