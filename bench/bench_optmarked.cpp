// E6 — Section 6 (optmarked): distributed verification that a marked set is
// an optimal solution, in the same g(d, phi) rounds as optimization.
#include "bench_util.hpp"
#include "congest/network.hpp"
#include "dist/optmarked.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "seq/courcelle.hpp"

using namespace dmc;

int main() {
  bench::header("E6: distributed optmarked verification (Section 6)",
                "Claim C12: the root accepts iff the marked set satisfies "
                "phi and matches the optimum; O(1) rounds for fixed d.");

  std::printf("\n-- marked maximum independent set --\n");
  bench::columns({"n", "marking", "rounds", "satisfies", "optimal"});
  for (int n : {10, 20, 40}) {
    gen::Rng rng(29);
    const Graph base = gen::random_bounded_treedepth(n, 3, 0.35, rng);
    const auto opt = seq::maximize(base, mso::lib::independent_set(), "S",
                                   mso::Sort::VertexSet);
    if (!opt) continue;
    // optimal marking
    {
      Graph g = base;
      for (VertexId v = 0; v < n; ++v)
        if (opt->vertices[v]) g.set_vertex_label("marked", v);
      congest::Network net(g);
      const auto out = dist::run_optmarked(net, mso::lib::independent_set(),
                                           "S", mso::Sort::VertexSet, 3);
      bench::row((long long)n, std::string("optimal"), out.total_rounds(),
                 (long long)out.satisfies, (long long)out.is_optimal);
    }
    // empty marking (feasible but suboptimal)
    {
      congest::Network net(base);
      const auto out = dist::run_optmarked(net, mso::lib::independent_set(),
                                           "S", mso::Sort::VertexSet, 3);
      bench::row((long long)n, std::string("empty"), out.total_rounds(),
                 (long long)out.satisfies, (long long)out.is_optimal);
    }
  }

  std::printf("\n-- marked minimum spanning tree --\n");
  bench::columns({"n", "marking", "rounds", "satisfies", "optimal"});
  for (int n : {8, 16, 32}) {
    gen::Rng rng(31);
    Graph g = gen::random_bounded_treedepth(n, 3, 0.4, rng);
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      g.set_edge_weight(e, 1 + (e * 23) % 13);
    for (EdgeId e : kruskal_mst(g)) g.set_edge_label("marked", e);
    congest::Network net(g);
    const auto out =
        dist::run_optmarked(net, mso::lib::spanning_connected(), "F",
                            mso::Sort::EdgeSet, 3, /*minimize=*/true);
    bench::row((long long)n, std::string("kruskal"), out.total_rounds(),
               (long long)out.satisfies, (long long)out.is_optimal);
  }
  return 0;
}
