// E13 — parallel fold/simulation engine and the persistent universe cache
// (docs/PERFORMANCE.md). Wall-clock scaling of the three parallelized hot
// paths, with equality against the serial path asserted inline:
//
//   * universe construction / folds:  fold_type_parallel at 1/2/4/8 threads
//     (root class must match the serial fold);
//   * per-round node stepping:        run_decision under --threads, with
//     the round digest stream (RoundDigestSink) compared to threads=1;
//   * the E7 per-union sweep:         HFreenessOptions::sweep_threads
//     (verdict must match the serial sweep);
//   * the universe cache:             cold build vs warm load of the same
//     rank-3 universe.
//
// Speedups depend on the host's core count — on single-core CI shards the
// interesting columns are the equality ones, which must hold everywhere.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bpt/engine.hpp"
#include "bpt/plan.hpp"
#include "bpt/tables.hpp"
#include "bpt/universe_cache.hpp"
#include "congest/conformance.hpp"
#include "congest/network.hpp"
#include "dist/decision.hpp"
#include "dist/hfreeness.hpp"
#include "graph/generators.hpp"
#include "mso/ast.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"
#include "par/pool.hpp"
#include "seq/courcelle.hpp"

using namespace dmc;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Universe construction: the same fold at increasing thread counts.
void report_fold_scaling() {
  std::printf("\n-- parallel fold (universe construction, E8 workload) --\n");
  gen::Rng rng(11);
  const Graph g = gen::random_bounded_treedepth(96, 3, 0.5, rng);
  const auto lowered = mso::lower(mso::lib::triangle_free());
  const auto td = seq::decomposition_for(g);
  const auto plan = bpt::build_global_plan(g, td);

  bench::columns({"threads", "ms", "speedup", "types", "root_stable"});
  double serial_ms = 0;
  for (int threads : {1, 2, 4, 8}) {
    bpt::Engine engine(bpt::config_for(*lowered));
    const auto t0 = std::chrono::steady_clock::now();
    const bpt::TypeId root = bpt::fold_type_parallel(engine, plan, g, threads);
    const double ms = ms_since(t0);
    if (threads == 1) serial_ms = ms;
    // Ids across different engines are not comparable (interning order may
    // differ), so check class identity by re-folding serially *in the same
    // engine*: hash-consing must land on the exact same id.
    const bpt::TypeId refold = bpt::fold_type(engine, plan, g);
    bench::row((long long)threads, ms, serial_ms / ms,
               (long long)engine.num_types(), (long long)(refold == root));
  }
}

/// Simulator stepping: decision pipeline digests across thread counts.
void report_step_digests() {
  std::printf("\n-- parallel node stepping (decision pipeline digests) --\n");
  gen::Rng rng(3);
  const Graph g = gen::random_bounded_treedepth(48, 3, 0.4, rng);
  const auto formula = mso::lib::triangle_free();

  bench::columns({"threads", "ms", "verdict", "digest_equal"});
  std::vector<std::uint64_t> serial_digests;
  bool serial_verdict = false;
  for (int threads : {1, 2, 4, 8}) {
    audit::RoundDigestSink sink;
    congest::NetworkConfig cfg;
    cfg.sink = &sink;
    cfg.threads = threads;
    congest::Network net(g, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = dist::run_decision(net, formula, 4);
    const double ms = ms_since(t0);
    if (threads == 1) {
      serial_digests = sink.digests();
      serial_verdict = out.holds;
    }
    bench::row((long long)threads, ms,
               std::string(out.holds ? "holds" : "fails"),
               (long long)(out.holds == serial_verdict &&
                           sink.digests() == serial_digests));
  }
}

/// The E7 per-union sweep: independent part-subsets in parallel.
void report_sweep_scaling() {
  std::printf("\n-- parallel H-freeness sweep (E7 workload) --\n");
  const Graph triangle = gen::clique(3);
  const int side = 12;
  const Graph g = gen::grid(side, side);

  bench::columns({"threads", "ms", "speedup", "subsets", "h_free", "match"});
  double serial_ms = 0;
  bool serial_free = false;
  for (int threads : {1, 2, 4, 8}) {
    dist::HFreenessOptions opts;
    opts.sweep_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = dist::run_h_freeness_grid(g, side, side, triangle, 4,
                                               congest::NetworkConfig{}, opts);
    const double ms = ms_since(t0);
    if (threads == 1) {
      serial_ms = ms;
      serial_free = out.h_free;
    }
    bench::row((long long)threads, ms, serial_ms / ms,
               (long long)out.num_subsets, (long long)out.h_free,
               (long long)(out.h_free == serial_free));
  }
}

/// Universe cache: cold construction vs warm deserialization.
void report_cache() {
  std::printf("\n-- universe cache (rank-3 formula) --\n");
  const auto lowered = mso::lower(mso::lib::triangle_free());
  const Graph g = gen::path(10);
  const auto td = seq::decomposition_for(g);
  const auto plan = bpt::build_global_plan(g, td);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dmc_bench_universe.dmcu")
          .string();

  bench::columns({"variant", "ms", "types", "ok"});
  std::size_t cold_types = 0;
  {
    bpt::Engine engine(bpt::config_for(*lowered));
    const auto t0 = std::chrono::steady_clock::now();
    bpt::fold_type(engine, plan, g);
    const double ms = ms_since(t0);
    cold_types = engine.num_types();
    const bool saved = bpt::save_universe_cache(engine, path);
    bench::row("cold-build", ms, (long long)cold_types, (long long)saved);
  }
  {
    bpt::Engine engine(bpt::config_for(*lowered));
    const auto t0 = std::chrono::steady_clock::now();
    const bool loaded = bpt::load_universe_cache(engine, path);
    const double ms = ms_since(t0);
    // A warm engine replays the fold from memo hits alone: same universe.
    bpt::fold_type(engine, plan, g);
    bench::row("warm-load", ms, (long long)engine.num_types(),
               (long long)(loaded && engine.num_types() == cold_types));
  }
  std::filesystem::remove(path);
}

}  // namespace

int main(int argc, char** argv) {
  bench::header(
      "E13: parallel fold/simulation engine + universe cache",
      "Verdicts, folded classes, and round digests are identical across "
      "--threads; the sweep and fold scale with cores; warm cache loads "
      "beat cold universe construction.");
  std::printf("hardware threads: %d\n", par::hardware_threads());
  report_fold_scaling();
  report_step_digests();
  report_sweep_scaling();
  report_cache();
  bench::run_benchmarks(argc, argv);
  return 0;
}
