// E16 — million-vertex simulation core (docs/PERFORMANCE.md "Sparse
// stepping and the active set"): the CSR graph arena, flat link-indexed
// mailboxes, and the event-driven round scheduler together decide an MSO
// property on 10^6-vertex bounded-treedepth instances end to end.
//
// Three sections:
//   * equivalence (small n): the sparse scheduler reproduces the dense
//     verdict, round count, AND per-round digest stream exactly;
//   * scale (n ~ 10^6): decide end-to-end on the spider and deeppath
//     families with sparse stepping + change-only flooding. Rounds,
//     messages, and active-node steps are simulator outputs — gated
//     exactly, like every deterministic E-column. The net_bytes_per_vertex
//     column is the per-vertex network overhead (flat mailboxes + link
//     tables + scheduler state; the <= 200 B/vertex budget that makes the
//     million-vertex arena fit);
//   * BM_EdgeLookup: the flat-hash edge index vs the O(degree) incidence
//     scan it replaced (wall-clock, not gated).
//
// Instance shape is constrained by the BPT engine: the decision pipeline's
// compose width is the depth of the *computed* elimination tree
// (kMaxTerminals = 11), and Algorithm 2's tree on a spine of length s is a
// chain of depth s + 1 under identity ids. So the scale families keep
// spines/legs of length 7 (treedepth 4, computed depth 8) and scale in
// width. The stress axis is the protocol bound d: Algorithm 2's schedule is
// (2^d - 1) phases of 2^d + 3 rounds, so the same instance is decided at
// its native bound (d=4, 286 rounds) and at d=9 (263,166 rounds). Dense
// stepping at d=9 would cost n * rounds ~ 2.6e11 node steps — unrunnable;
// the event-driven scheduler's active_steps barely move between the two
// bounds, because nodes quiesce once their neighborhood's election
// stabilizes and fast-forward crosses the all-marked tail in O(1) per
// skipped span. The dense-vs-sparse comparison is pinned at small n here
// and in tests/scale_test.cpp.
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "congest/conformance.hpp"
#include "congest/network.hpp"
#include "dist/decision.hpp"
#include "dist/elim_tree.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

using namespace dmc;

namespace {

void report_equivalence() {
  std::printf("\n-- sparse scheduler == dense stepping (deeppath, n=2000) --\n");
  const Graph g = gen::deeppath(2000, 4);
  auto run = [&](bool sparse, std::vector<std::uint64_t>* digests) {
    audit::RoundDigestSink sink;
    congest::NetworkConfig cfg;
    cfg.sink = &sink;
    cfg.id_seed = 9;
    cfg.sparse_stepping = sparse;
    congest::Network net(g, cfg);
    const auto out = dist::run_decision(net, mso::lib::triangle_free(), 4);
    *digests = sink.digests();
    return std::make_tuple(out.holds, net.stats().rounds,
                           net.stats().active_steps);
  };
  std::vector<std::uint64_t> dense_digests, sparse_digests;
  const auto [dense_holds, dense_rounds, dense_steps] =
      run(false, &dense_digests);
  const auto [sparse_holds, sparse_rounds, sparse_steps] =
      run(true, &sparse_digests);
  bench::columns({"scheduler", "rounds", "active_steps", "verdict_equal",
                  "digest_equal"});
  bench::row(std::string("dense"), (long long)dense_rounds,
             (long long)dense_steps, 1LL, 1LL);
  bench::row(std::string("sparse"), (long long)sparse_rounds,
             (long long)sparse_steps,
             (long long)(sparse_holds == dense_holds &&
                         sparse_rounds == dense_rounds),
             (long long)(sparse_digests == dense_digests));
}

void report_scale() {
  std::printf("\n-- million-vertex decide (sparse stepping + sparse flood) --\n");
  struct Row {
    const char* name;
    Graph graph;
    int d;  // protocol bound fed to run_decision (>= family treedepth)
  };
  std::vector<Row> rows;
  rows.push_back({"spider(4,142858)", gen::spider(4, 142858), 4});
  rows.push_back({"deeppath(1e6,4)", gen::deeppath(1'000'000, 4), 4});
  rows.push_back({"deeppath(1e6,4)", gen::deeppath(1'000'000, 4), 9});

  bench::columns({"family", "n", "d", "verdict", "rounds", "messages",
                  "active_steps", "net_bytes_per_vertex"});
  for (auto& r : rows) {
    congest::NetworkConfig cfg;
    // Identity ids (seed 0): the spine/leg minima sit at the hub end, so
    // the computed tree depth is exactly leg length + 1 = 8, and every
    // flood path is <= 7 hops, bounding per-election churn per node.
    cfg.threads = 1;  // active_steps and folds stay machine-independent
    congest::Network net(r.graph, cfg);
    dist::ElimTreeOptions tree_opts;
    tree_opts.sparse_flood = true;
    const auto out = dist::run_decision(net, mso::lib::triangle_free(), r.d,
                                        /*engine=*/nullptr, tree_opts);
    if (!out.run.ok()) {
      std::printf("unexpected degraded run on %s\n", r.name);
      return;
    }
    bench::row(std::string(r.name), (long long)r.graph.num_vertices(),
               (long long)r.d, std::string(out.holds ? "holds" : "fails"),
               (long long)net.stats().rounds, (long long)net.stats().messages,
               (long long)net.stats().active_steps,
               (long long)(net.memory_bytes() / r.graph.num_vertices()));
  }
}

/// Flat-hash edge index (Graph::edge_id) against the incidence scan it
/// replaced. The scan's cost is O(degree), so the hub of a star is its
/// worst case — and exactly the shape the CSR rebuild made cheap.
void BM_EdgeLookup(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  const Graph g = gen::star(leaves);
  g.finalize();
  VertexId leaf = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.edge_id(0, leaf));
    leaf = leaf == leaves ? 1 : leaf + 1;
  }
}
BENCHMARK(BM_EdgeLookup)->Arg(64)->Arg(4096)->Arg(262144);

void BM_EdgeLookupScan(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  const Graph g = gen::star(leaves);
  g.finalize();
  VertexId leaf = 1;
  for (auto _ : state) {
    EdgeId found = -1;
    for (const auto& [neighbor, edge] : g.incident(0)) {
      if (neighbor == leaf) {
        found = edge;
        break;
      }
    }
    benchmark::DoNotOptimize(found);
    leaf = leaf == leaves ? 1 : leaf + 1;
  }
}
BENCHMARK(BM_EdgeLookupScan)->Arg(64)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  // Rows take seconds each at n ~ 10^6; stream them as they finish.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  bench::header(
      "E16: million-vertex simulation core",
      "CSR graph + flat link-indexed mailboxes + sparse event-driven "
      "rounds decide an MSO property on 10^6-vertex bounded-treedepth "
      "instances; the sparse scheduler is digest-identical to dense "
      "stepping, active steps stay ~flat as the round schedule grows "
      "~1000x, and network overhead stays under 200 bytes/vertex.");
  report_equivalence();
  report_scale();
  bench::run_benchmarks(argc, argv);
  return 0;
}
