// E9 — Lemmas 4.3/4.6 (Algorithm 1): sequential Courcelle-via-BPT vs
// brute-force MSO evaluation. The brute force is exponential in n; the
// engine is linear in n for fixed width — the crossover appears within a
// handful of vertices.
#include <chrono>

#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "mso/eval.hpp"
#include "mso/formulas.hpp"
#include "seq/courcelle.hpp"

using namespace dmc;

namespace {

double ms_of(auto fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  bench::header("E9: sequential Courcelle vs brute force (Algorithm 1)",
                "Claims C6/C7: engine time grows ~linearly in n at fixed "
                "width; brute force explodes at ~n=18 (2^n set quantifier).");

  std::printf("\n-- connectivity (rank 1, one vset quantifier) --\n");
  bench::columns({"n", "engine_ms", "brute_ms"});
  for (int n : {8, 12, 16, 20, 64, 256}) {
    const Graph g = gen::path(n);
    bool r1 = false, r2 = false;
    const double engine_ms =
        ms_of([&] { r1 = seq::decide(g, mso::lib::connected()); });
    double brute_ms = -1;
    if (n <= 20)
      brute_ms = ms_of([&] { r2 = mso::evaluate(g, *mso::lib::connected()); });
    if (n <= 20 && r1 != r2) return 1;
    bench::row((long long)n, engine_ms, brute_ms);
  }

  std::printf("\n-- triangle-freeness (rank 3, FO) --\n");
  bench::columns({"n", "engine_ms", "brute_ms"});
  for (int n : {8, 12, 16, 24}) {
    gen::Rng rng(41);
    const Graph g = gen::random_bounded_treedepth(n, 2, 0.5, rng);
    bool r1 = false, r2 = false;
    const double engine_ms =
        ms_of([&] { r1 = seq::decide(g, mso::lib::triangle_free()); });
    double brute_ms = -1;
    if (n <= 16)
      brute_ms =
          ms_of([&] { r2 = mso::evaluate(g, *mso::lib::triangle_free()); });
    if (n <= 16 && r1 != r2) return 1;
    bench::row((long long)n, engine_ms, brute_ms);
  }

  std::printf("\n-- max independent set (rank 0, one free vset) --\n");
  bench::columns({"n", "engine_ms", "opt"});
  for (int n : {16, 64, 256, 1024}) {
    gen::Rng rng(43);
    Graph g = gen::random_bounded_treedepth(n, 3, 0.3, rng);
    gen::randomize_weights(g, 1, 5, rng);
    Weight opt = 0;
    const double engine_ms = ms_of([&] {
      opt = seq::maximize(g, mso::lib::independent_set(), "S",
                          mso::Sort::VertexSet)
                ->weight;
    });
    bench::row((long long)n, engine_ms, (long long)opt);
  }
  return 0;
}
