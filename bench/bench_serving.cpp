// E14 — serving throughput: the dmcd batching scheduler vs sequential
// cold one-shot runs (docs/SERVING.md).
//
// The serving-side payoff of Theorem 4.2: the type universe depends only
// on (formula, slot layout), so a warm-key batch of N queries through the
// scheduler pays universe construction ONCE (single-flight in the shared
// UniverseTier) while N sequential cold runs — the exact CLI path — pay
// it N times. Two tables:
//
//   * warm-key batch:  16 decide queries sharing one engine key across
//     rotating path families, scheduler vs 16 one-shots;
//   * mixed batch:     all four pipelines (3 engine keys — maximize and
//     count share a lowered formula), same contrast.
//
// Deterministic columns the bench gate enforces: every served digest must
// equal its one-shot oracle digest, the batch must perform exactly one
// universe construction per key (tier builds counter), and all but the
// first query of a key must run warm. `ms` / `speedup` are wall-clock and
// gate-ignored; the headline claim is that the batch beats the sequential
// run wherever universe construction dominates.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bpt/universe_tier.hpp"
#include "serve/exec.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"

using namespace dmc;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

serve::Query make_query(std::string id, std::string verb, std::string formula,
                        std::string family, std::string var = "",
                        std::string sort = "", std::string vars = "") {
  serve::Query q;
  q.id = std::move(id);
  q.verb = std::move(verb);
  q.formula = std::move(formula);
  q.family = std::move(family);
  q.dist = 4;
  q.var = std::move(var);
  q.sort = std::move(sort);
  q.vars = std::move(vars);
  return q;
}

/// 16 queries on one engine key: same rank-3 formula, rotating families
/// (the graph varies, the universe does not).
std::vector<serve::Query> warm_key_queries() {
  const std::string tri =
      "!exists vertex x, y, z. adj(x,y) & adj(y,z) & adj(x,z)";
  std::vector<serve::Query> qs;
  for (int i = 0; i < 16; ++i)
    qs.push_back(make_query("w" + std::to_string(i), "decide", tri,
                            "path:" + std::to_string(6 + i % 8)));
  return qs;
}

/// All four pipelines, 4 queries each: 3 engine keys (maximize and count
/// lower the same formula over the same slot layout).
std::vector<serve::Query> mixed_queries() {
  std::vector<serve::Query> qs;
  for (int i = 0; i < 4; ++i) {
    const std::string n = std::to_string(5 + i);
    qs.push_back(make_query("d" + std::to_string(i), "decide",
                            "exists vertex x, y. adj(x, y)", "path:" + n));
    qs.push_back(make_query("x" + std::to_string(i), "maximize", "!adj(S,S)",
                            "path:" + n, "S", "vset"));
    qs.push_back(make_query("m" + std::to_string(i), "minimize",
                            "forall vertex x. x in S | adj(x, S)",
                            "cycle:" + n, "S", "vset"));
    qs.push_back(make_query("c" + std::to_string(i), "count", "!adj(S,S)",
                            "path:" + n, "", "", "S:vset"));
  }
  return qs;
}

struct ServedRun {
  double ms = 0;
  long warm = 0;             // responses that ran on a pre-warmed engine
  long digest_matches = 0;   // digests equal to the one-shot oracle
  long universe_builds = 0;  // tier constructions (single-flight per key)
};

/// Oracle pass: each query as a cold one-shot, the exact CLI path.
std::vector<serve::QueryResult> run_sequential(
    const std::vector<serve::Query>& qs, double& ms) {
  std::vector<serve::QueryResult> out;
  const auto t0 = std::chrono::steady_clock::now();
  for (const serve::Query& q : qs) out.push_back(serve::run_one_shot(q));
  ms = ms_since(t0);
  return out;
}

/// Served pass: submit everything, start the workers, wait for the last
/// response — the daemon's admission/batching path minus the socket.
ServedRun run_served(const std::vector<serve::Query>& qs,
                     const std::vector<serve::QueryResult>& oracle,
                     int workers) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "dmc_bench_serving";
  fs::remove_all(dir);
  fs::create_directories(dir);

  bpt::UniverseTier tier({dir.string()});
  ServedRun run;
  {
    serve::SchedulerOptions sopts;
    sopts.workers = workers;
    sopts.max_queue = static_cast<int>(qs.size());
    serve::Scheduler sched(sopts, tier);
    std::mutex mu;
    std::condition_variable cv;
    std::vector<serve::JsonObject> responses;
    const auto t0 = std::chrono::steady_clock::now();
    for (const serve::Query& q : qs) {
      std::string err;
      auto p = serve::prepare(q, err);
      sched.submit(std::move(*p), [&](const serve::JsonObject& r) {
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(r);
        cv.notify_one();
      });
    }
    sched.start();
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return responses.size() == qs.size(); });
    }
    run.ms = ms_since(t0);
    for (const serve::JsonObject& r : responses) {
      const serve::Json& id = r.at("id");
      for (std::size_t i = 0; i < qs.size(); ++i)
        if (qs[i].id == id.as_string() &&
            r.at("digest").as_string() == oracle[i].digest)
          ++run.digest_matches;
      if (r.at("warm").as_bool()) ++run.warm;
    }
  }
  run.universe_builds = tier.stats().builds;
  fs::remove_all(dir);
  return run;
}

void report(const char* caption, const std::vector<serve::Query>& qs,
            int workers) {
  std::printf("\n-- %s --\n", caption);
  bench::columns({"variant", "queries", "ms", "speedup", "digests_ok",
                  "universe_builds", "warm"});
  double cold_ms = 0;
  const auto oracle = run_sequential(qs, cold_ms);
  // Each one-shot builds its own throwaway engine: n builds, none warm.
  bench::row("cold-sequential", (long long)qs.size(), cold_ms, 1.0,
             (long long)qs.size(), (long long)qs.size(), (long long)0);
  const ServedRun served = run_served(qs, oracle, workers);
  bench::row("dmcd-batch", (long long)qs.size(), served.ms,
             cold_ms / served.ms, served.digest_matches,
             served.universe_builds, served.warm);
}

}  // namespace

int main(int argc, char** argv) {
  bench::header(
      "E14: serving throughput (dmcd batching vs sequential cold runs)",
      "A warm-key batch through the scheduler performs exactly one "
      "universe construction and beats the same queries run as "
      "sequential cold one-shots; every served digest equals its "
      "one-shot oracle digest.");
  report("warm-key batch (1 engine key, 16 queries)", warm_key_queries(), 2);
  report("mixed four-pipeline batch (3 engine keys, 16 queries)",
         mixed_queries(), 2);
  bench::run_benchmarks(argc, argv);
  return 0;
}
