// E10 — Section 2: treedepth structure results. The exact solver confirms
// td(P_n) = ceil(log2(n+1)); the greedy (Algorithm 2 mirror) elimination
// tree that is a subtree of G has depth < 2^td (Lemma 2.5); the balanced
// heuristic is near-optimal on the families we use.
#include <chrono>
#include <cmath>

#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "td/elimination_forest.hpp"

using namespace dmc;

int main() {
  bench::header("E10: treedepth structure (Section 2, Lemma 2.5)",
                "Claims C1/C3: td(P_n) = ceil(log2(n+1)); greedy subtree "
                "depth < 2^td; balanced heuristic close to optimal.");

  std::printf("\n-- td(P_n) law --\n");
  bench::columns({"n", "td", "ceil(log2(n+1))"});
  for (int n : {1, 3, 7, 8, 15, 16}) {
    bench::row((long long)n, (long long)exact_treedepth(gen::path(n)),
               (long long)std::ceil(std::log2(n + 1)));
  }

  std::printf("\n-- Lemma 2.5: greedy subtree depth < 2^td --\n");
  bench::columns({"family", "n", "td", "greedy_depth", "2^td", "balanced"});
  struct Fam {
    const char* name;
    Graph g;
  };
  gen::Rng rng(3);
  const Fam fams[] = {
      {"path", gen::path(15)},
      {"cycle", gen::cycle(12)},
      {"star", gen::star(12)},
      {"caterpillar", gen::caterpillar(5, 2)},
      {"btd(3)", gen::random_bounded_treedepth(14, 3, 0.4, rng)},
      {"grid3x4", gen::grid(3, 4)},
  };
  for (const Fam& f : fams) {
    const int td = exact_treedepth(f.g);
    const auto greedy = greedy_elimination_tree(f.g, (1 << td) - 1);
    const auto balanced = balanced_elimination_forest(f.g);
    bench::row(std::string(f.name), (long long)f.g.num_vertices(),
               (long long)td, (long long)(greedy ? greedy->depth() : -1),
               (long long)(1 << td), (long long)balanced.depth());
  }

  std::printf("\n-- exact solver scaling --\n");
  bench::columns({"n", "ms"});
  for (int n : {10, 12, 14, 16}) {
    gen::Rng rng2(n);
    const Graph g = gen::random_connected(n, n / 2, rng2);
    const auto start = std::chrono::steady_clock::now();
    exact_treedepth(g);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    bench::row((long long)n, ms);
  }
  return 0;
}
