// Shared table-printing helpers for the experiment harness.
//
// Every bench binary regenerates one experiment of EXPERIMENTS.md: it
// prints a header naming the experiment and the paper claim it validates,
// then one row per sweep point. Values are round counts / sizes measured in
// the CONGEST simulator, not wall-clock times (the paper's claims are about
// round complexity).
#pragma once

#include <concepts>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/buffer.hpp"
#include "obs/summary.hpp"

namespace dmc::bench {

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n", experiment.c_str(), claim.c_str());
}

inline void columns(const std::vector<std::string>& names) {
  for (const auto& name : names) std::printf("%14s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < names.size(); ++i) std::printf("%14s", "----");
  std::printf("\n");
}

inline void cell(double value) { std::printf("%14.2f", value); }
inline void cell(const std::string& value) { std::printf("%14s", value.c_str()); }
inline void cell(const char* value) { std::printf("%14s", value); }
template <std::integral T>
void cell(T value) {
  std::printf("%14lld", static_cast<long long>(value));
}
inline void endrow() { std::printf("\n"); }

template <typename... Ts>
void row(Ts... values) {
  (cell(values), ...);
  endrow();
}

/// Per-phase attribution of a traced run: prints the obs summary table so an
/// experiment's headline constant (e.g. E1's rounds/4^d) can be decomposed
/// into its protocol steps.
inline obs::Summary phase_breakdown(const obs::TraceBuffer& buffer,
                                    const std::string& caption) {
  obs::Summary s = obs::summarize(buffer);
  std::printf("\n%s\n%s", caption.c_str(), obs::format_summary(s).c_str());
  return s;
}

/// Adds one traced sweep point to a rounds-vs-x curve, one series per phase
/// aggregated at `depth` path components (depth 1 groups "a/b" under "a").
inline void curve_from_phases(obs::CurveTable& curve, long x,
                              const obs::Summary& summary, int depth = 1) {
  std::vector<std::string> seen;
  for (const auto& p : summary.phases) {
    std::string key = p.path;
    int slashes = 0;
    for (std::size_t i = 0; i < key.size(); ++i) {
      if (key[i] == '/' && ++slashes == depth) {
        key.resize(i);
        break;
      }
    }
    bool dup = false;
    for (const auto& s : seen) dup = dup || s == key;
    if (dup) continue;
    seen.push_back(key);
    curve.add(key, x, double(summary.aggregate(key).rounds));
  }
}

}  // namespace dmc::bench
