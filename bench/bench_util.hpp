// Shared table-printing helpers for the experiment harness.
//
// Every bench binary regenerates one experiment of EXPERIMENTS.md: it
// prints a header naming the experiment and the paper claim it validates,
// then one row per sweep point. Values are round counts / sizes measured in
// the CONGEST simulator, not wall-clock times (the paper's claims are about
// round complexity).
#pragma once

#include <concepts>
#include <cstdio>
#include <string>
#include <vector>

namespace dmc::bench {

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n", experiment.c_str(), claim.c_str());
}

inline void columns(const std::vector<std::string>& names) {
  for (const auto& name : names) std::printf("%14s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < names.size(); ++i) std::printf("%14s", "----");
  std::printf("\n");
}

inline void cell(double value) { std::printf("%14.2f", value); }
inline void cell(const std::string& value) { std::printf("%14s", value.c_str()); }
inline void cell(const char* value) { std::printf("%14s", value); }
template <std::integral T>
void cell(T value) {
  std::printf("%14lld", static_cast<long long>(value));
}
inline void endrow() { std::printf("\n"); }

template <typename... Ts>
void row(Ts... values) {
  (cell(values), ...);
  endrow();
}

}  // namespace dmc::bench
