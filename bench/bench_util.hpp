// Shared table-printing helpers for the experiment harness.
//
// Every bench binary regenerates one experiment of EXPERIMENTS.md: it
// prints a header naming the experiment and the paper claim it validates,
// then one row per sweep point. Values are round counts / sizes measured in
// the CONGEST simulator, not wall-clock times (the paper's claims are about
// round complexity).
//
// Machine-readable output: when $DMC_BENCH_JSON names a file, every
// bench::row() additionally appends one JSON object per line (keys = the
// column names of the preceding bench::columns() call, tagged with the
// experiment of the preceding bench::header()), and run_benchmarks()
// streams each google-benchmark timing into the same file. The human
// tables on stdout are unchanged. tools/collect_bench.py drives every
// binary this way and aggregates the lines into top-level BENCH_<exp>.json
// files.
#pragma once

#include <benchmark/benchmark.h>

#include <concepts>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "obs/buffer.hpp"
#include "obs/summary.hpp"

namespace dmc::bench {

namespace detail {

struct JsonState {
  std::FILE* out = nullptr;       // nullptr = JSON disabled
  std::string experiment;         // from the last header()
  std::vector<std::string> cols;  // from the last columns()
  std::vector<std::string> cells;  // accumulated by cell() until endrow()
  // DMC_BENCH_METRICS=1 installs the aggregate metrics registry for the
  // whole bench process and splices its snapshot into every JSON row
  // (fields are cumulative at row-emission time). Off by default: the
  // headline timings stay measurements of the metrics-disabled hot path.
  metrics::Registry* metrics = nullptr;

  static JsonState& get() {
    static JsonState state = [] {
      JsonState s;
      if (const char* path = std::getenv("DMC_BENCH_JSON"))
        if (*path != '\0') s.out = std::fopen(path, "a");
      if (const char* flag = std::getenv("DMC_BENCH_METRICS"))
        if (*flag != '\0' && std::string(flag) != "0") {
          static dmc::metrics::Registry registry;
          dmc::metrics::set_global(&registry);
          s.metrics = &registry;
        }
      return s;
    }();
    return state;
  }
};

inline std::string json_escape(const std::string& s) {
  std::string r;
  for (char c : s) {
    if (c == '"' || c == '\\') r += '\\';
    if (c == '\n') {
      r += "\\n";
      continue;
    }
    r += c;
  }
  return r;
}

}  // namespace detail

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n", experiment.c_str(), claim.c_str());
  detail::JsonState::get().experiment = experiment;
}

inline void columns(const std::vector<std::string>& names) {
  for (const auto& name : names) std::printf("%14s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < names.size(); ++i) std::printf("%14s", "----");
  std::printf("\n");
  detail::JsonState::get().cols = names;
}

// Numeric cells record a bare JSON number, text cells a quoted string.
inline void cell(double value) {
  std::printf("%14.2f", value);
  detail::JsonState::get().cells.push_back(std::to_string(value));
}
inline void cell(const std::string& value) {
  std::printf("%14s", value.c_str());
  detail::JsonState::get().cells.push_back('"' + detail::json_escape(value) +
                                           '"');
}
inline void cell(const char* value) { cell(std::string(value)); }
template <std::integral T>
void cell(T value) {
  std::printf("%14lld", static_cast<long long>(value));
  detail::JsonState::get().cells.push_back(
      std::to_string(static_cast<long long>(value)));
}

inline void endrow() {
  std::printf("\n");
  auto& js = detail::JsonState::get();
  if (js.out != nullptr && js.cells.size() == js.cols.size() &&
      !js.cols.empty()) {
    std::fprintf(js.out, "{\"experiment\":\"%s\"",
                 detail::json_escape(js.experiment).c_str());
    for (std::size_t i = 0; i < js.cols.size(); ++i)
      std::fprintf(js.out, ",\"%s\":%s",
                   detail::json_escape(js.cols[i]).c_str(),
                   js.cells[i].c_str());
    if (js.metrics != nullptr) {
      std::ostringstream fields;
      js.metrics->write_json_fields(fields);
      if (!fields.str().empty()) std::fprintf(js.out, ",%s", fields.str().c_str());
    }
    std::fprintf(js.out, "}\n");
    std::fflush(js.out);
  }
  js.cells.clear();
}

template <typename... Ts>
void row(Ts... values) {
  (cell(values), ...);
  endrow();
}

namespace detail {

/// Console reporter that additionally streams each timing as a JSON line
/// into the DMC_BENCH_JSON file, tagged with the current experiment.
class JsonlTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    auto& js = JsonState::get();
    if (js.out == nullptr) return;
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      std::fprintf(js.out,
                   "{\"experiment\":\"%s\",\"benchmark\":\"%s\","
                   "\"iterations\":%lld,\"real_time\":%.6g,"
                   "\"cpu_time\":%.6g,\"time_unit\":\"%s\"}\n",
                   json_escape(js.experiment).c_str(),
                   json_escape(r.benchmark_name()).c_str(),
                   static_cast<long long>(r.iterations),
                   r.GetAdjustedRealTime(), r.GetAdjustedCPUTime(),
                   benchmark::GetTimeUnitString(r.time_unit));
    }
    std::fflush(js.out);
  }
};

}  // namespace detail

/// Drop-in replacement for Initialize + RunSpecifiedBenchmarks that also
/// feeds the DMC_BENCH_JSON stream (console output is unchanged).
inline void run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (detail::JsonState::get().out != nullptr) {
    detail::JsonlTeeReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
}

/// Per-phase attribution of a traced run: prints the obs summary table so an
/// experiment's headline constant (e.g. E1's rounds/4^d) can be decomposed
/// into its protocol steps.
inline obs::Summary phase_breakdown(const obs::TraceBuffer& buffer,
                                    const std::string& caption) {
  obs::Summary s = obs::summarize(buffer);
  std::printf("\n%s\n%s", caption.c_str(), obs::format_summary(s).c_str());
  return s;
}

/// Adds one traced sweep point to a rounds-vs-x curve, one series per phase
/// aggregated at `depth` path components (depth 1 groups "a/b" under "a").
inline void curve_from_phases(obs::CurveTable& curve, long x,
                              const obs::Summary& summary, int depth = 1) {
  std::vector<std::string> seen;
  for (const auto& p : summary.phases) {
    std::string key = p.path;
    int slashes = 0;
    for (std::size_t i = 0; i < key.size(); ++i) {
      if (key[i] == '/' && ++slashes == depth) {
        key.resize(i);
        break;
      }
    }
    bool dup = false;
    for (const auto& s : seen) dup = dup || s == key;
    if (dup) continue;
    seen.push_back(key);
    curve.add(key, x, double(summary.aggregate(key).rounds));
  }
}

}  // namespace dmc::bench
