file(REMOVE_RECURSE
  "../bench/bench_bags"
  "../bench/bench_bags.pdb"
  "CMakeFiles/bench_bags.dir/bench_bags.cpp.o"
  "CMakeFiles/bench_bags.dir/bench_bags.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
