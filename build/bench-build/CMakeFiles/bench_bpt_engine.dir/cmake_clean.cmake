file(REMOVE_RECURSE
  "../bench/bench_bpt_engine"
  "../bench/bench_bpt_engine.pdb"
  "CMakeFiles/bench_bpt_engine.dir/bench_bpt_engine.cpp.o"
  "CMakeFiles/bench_bpt_engine.dir/bench_bpt_engine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bpt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
