# Empty compiler generated dependencies file for bench_bpt_engine.
# This may be replaced when dependencies are built.
