file(REMOVE_RECURSE
  "../bench/bench_counting"
  "../bench/bench_counting.pdb"
  "CMakeFiles/bench_counting.dir/bench_counting.cpp.o"
  "CMakeFiles/bench_counting.dir/bench_counting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
