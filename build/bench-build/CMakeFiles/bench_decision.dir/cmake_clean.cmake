file(REMOVE_RECURSE
  "../bench/bench_decision"
  "../bench/bench_decision.pdb"
  "CMakeFiles/bench_decision.dir/bench_decision.cpp.o"
  "CMakeFiles/bench_decision.dir/bench_decision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
