file(REMOVE_RECURSE
  "../bench/bench_elim_tree"
  "../bench/bench_elim_tree.pdb"
  "CMakeFiles/bench_elim_tree.dir/bench_elim_tree.cpp.o"
  "CMakeFiles/bench_elim_tree.dir/bench_elim_tree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elim_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
