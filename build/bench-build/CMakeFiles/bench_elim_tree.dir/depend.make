# Empty dependencies file for bench_elim_tree.
# This may be replaced when dependencies are built.
