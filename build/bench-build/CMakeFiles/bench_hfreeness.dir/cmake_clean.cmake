file(REMOVE_RECURSE
  "../bench/bench_hfreeness"
  "../bench/bench_hfreeness.pdb"
  "CMakeFiles/bench_hfreeness.dir/bench_hfreeness.cpp.o"
  "CMakeFiles/bench_hfreeness.dir/bench_hfreeness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hfreeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
