# Empty dependencies file for bench_hfreeness.
# This may be replaced when dependencies are built.
