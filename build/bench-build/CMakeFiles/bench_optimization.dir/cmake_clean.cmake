file(REMOVE_RECURSE
  "../bench/bench_optimization"
  "../bench/bench_optimization.pdb"
  "CMakeFiles/bench_optimization.dir/bench_optimization.cpp.o"
  "CMakeFiles/bench_optimization.dir/bench_optimization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
