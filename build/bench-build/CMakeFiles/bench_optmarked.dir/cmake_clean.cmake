file(REMOVE_RECURSE
  "../bench/bench_optmarked"
  "../bench/bench_optmarked.pdb"
  "CMakeFiles/bench_optmarked.dir/bench_optmarked.cpp.o"
  "CMakeFiles/bench_optmarked.dir/bench_optmarked.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optmarked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
