# Empty dependencies file for bench_optmarked.
# This may be replaced when dependencies are built.
