file(REMOVE_RECURSE
  "../bench/bench_sequential"
  "../bench/bench_sequential.pdb"
  "CMakeFiles/bench_sequential.dir/bench_sequential.cpp.o"
  "CMakeFiles/bench_sequential.dir/bench_sequential.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
