file(REMOVE_RECURSE
  "../bench/bench_treedepth"
  "../bench/bench_treedepth.pdb"
  "CMakeFiles/bench_treedepth.dir/bench_treedepth.cpp.o"
  "CMakeFiles/bench_treedepth.dir/bench_treedepth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_treedepth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
