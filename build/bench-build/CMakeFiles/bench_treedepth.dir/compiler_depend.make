# Empty compiler generated dependencies file for bench_treedepth.
# This may be replaced when dependencies are built.
