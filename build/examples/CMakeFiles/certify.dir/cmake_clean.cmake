file(REMOVE_RECURSE
  "CMakeFiles/certify.dir/certify.cpp.o"
  "CMakeFiles/certify.dir/certify.cpp.o.d"
  "certify"
  "certify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
