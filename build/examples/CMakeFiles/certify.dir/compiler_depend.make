# Empty compiler generated dependencies file for certify.
# This may be replaced when dependencies are built.
