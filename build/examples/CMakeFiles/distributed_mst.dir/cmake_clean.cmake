file(REMOVE_RECURSE
  "CMakeFiles/distributed_mst.dir/distributed_mst.cpp.o"
  "CMakeFiles/distributed_mst.dir/distributed_mst.cpp.o.d"
  "distributed_mst"
  "distributed_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
