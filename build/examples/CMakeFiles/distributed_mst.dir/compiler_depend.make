# Empty compiler generated dependencies file for distributed_mst.
# This may be replaced when dependencies are built.
