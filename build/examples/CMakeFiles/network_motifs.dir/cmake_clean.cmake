file(REMOVE_RECURSE
  "CMakeFiles/network_motifs.dir/network_motifs.cpp.o"
  "CMakeFiles/network_motifs.dir/network_motifs.cpp.o.d"
  "network_motifs"
  "network_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
