# Empty dependencies file for network_motifs.
# This may be replaced when dependencies are built.
