file(REMOVE_RECURSE
  "CMakeFiles/optimize_and_verify.dir/optimize_and_verify.cpp.o"
  "CMakeFiles/optimize_and_verify.dir/optimize_and_verify.cpp.o.d"
  "optimize_and_verify"
  "optimize_and_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_and_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
