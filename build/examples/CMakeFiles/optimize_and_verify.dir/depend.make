# Empty dependencies file for optimize_and_verify.
# This may be replaced when dependencies are built.
