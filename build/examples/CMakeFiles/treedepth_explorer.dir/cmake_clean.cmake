file(REMOVE_RECURSE
  "CMakeFiles/treedepth_explorer.dir/treedepth_explorer.cpp.o"
  "CMakeFiles/treedepth_explorer.dir/treedepth_explorer.cpp.o.d"
  "treedepth_explorer"
  "treedepth_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treedepth_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
