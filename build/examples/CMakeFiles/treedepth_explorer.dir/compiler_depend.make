# Empty compiler generated dependencies file for treedepth_explorer.
# This may be replaced when dependencies are built.
