
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpt/engine.cpp" "src/bpt/CMakeFiles/dmc_bpt.dir/engine.cpp.o" "gcc" "src/bpt/CMakeFiles/dmc_bpt.dir/engine.cpp.o.d"
  "/root/repo/src/bpt/gluing.cpp" "src/bpt/CMakeFiles/dmc_bpt.dir/gluing.cpp.o" "gcc" "src/bpt/CMakeFiles/dmc_bpt.dir/gluing.cpp.o.d"
  "/root/repo/src/bpt/plan.cpp" "src/bpt/CMakeFiles/dmc_bpt.dir/plan.cpp.o" "gcc" "src/bpt/CMakeFiles/dmc_bpt.dir/plan.cpp.o.d"
  "/root/repo/src/bpt/tables.cpp" "src/bpt/CMakeFiles/dmc_bpt.dir/tables.cpp.o" "gcc" "src/bpt/CMakeFiles/dmc_bpt.dir/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dmc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mso/CMakeFiles/dmc_mso.dir/DependInfo.cmake"
  "/root/repo/build/src/td/CMakeFiles/dmc_td.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
