file(REMOVE_RECURSE
  "CMakeFiles/dmc_bpt.dir/engine.cpp.o"
  "CMakeFiles/dmc_bpt.dir/engine.cpp.o.d"
  "CMakeFiles/dmc_bpt.dir/gluing.cpp.o"
  "CMakeFiles/dmc_bpt.dir/gluing.cpp.o.d"
  "CMakeFiles/dmc_bpt.dir/plan.cpp.o"
  "CMakeFiles/dmc_bpt.dir/plan.cpp.o.d"
  "CMakeFiles/dmc_bpt.dir/tables.cpp.o"
  "CMakeFiles/dmc_bpt.dir/tables.cpp.o.d"
  "libdmc_bpt.a"
  "libdmc_bpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_bpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
