file(REMOVE_RECURSE
  "libdmc_bpt.a"
)
