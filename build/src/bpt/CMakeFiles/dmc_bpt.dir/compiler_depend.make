# Empty compiler generated dependencies file for dmc_bpt.
# This may be replaced when dependencies are built.
