file(REMOVE_RECURSE
  "CMakeFiles/dmc_congest.dir/network.cpp.o"
  "CMakeFiles/dmc_congest.dir/network.cpp.o.d"
  "CMakeFiles/dmc_congest.dir/primitives.cpp.o"
  "CMakeFiles/dmc_congest.dir/primitives.cpp.o.d"
  "libdmc_congest.a"
  "libdmc_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
