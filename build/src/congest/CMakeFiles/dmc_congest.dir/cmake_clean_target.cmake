file(REMOVE_RECURSE
  "libdmc_congest.a"
)
