# Empty compiler generated dependencies file for dmc_congest.
# This may be replaced when dependencies are built.
