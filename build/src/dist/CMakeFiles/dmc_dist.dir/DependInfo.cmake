
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/bags.cpp" "src/dist/CMakeFiles/dmc_dist.dir/bags.cpp.o" "gcc" "src/dist/CMakeFiles/dmc_dist.dir/bags.cpp.o.d"
  "/root/repo/src/dist/baseline.cpp" "src/dist/CMakeFiles/dmc_dist.dir/baseline.cpp.o" "gcc" "src/dist/CMakeFiles/dmc_dist.dir/baseline.cpp.o.d"
  "/root/repo/src/dist/certification.cpp" "src/dist/CMakeFiles/dmc_dist.dir/certification.cpp.o" "gcc" "src/dist/CMakeFiles/dmc_dist.dir/certification.cpp.o.d"
  "/root/repo/src/dist/counting.cpp" "src/dist/CMakeFiles/dmc_dist.dir/counting.cpp.o" "gcc" "src/dist/CMakeFiles/dmc_dist.dir/counting.cpp.o.d"
  "/root/repo/src/dist/decision.cpp" "src/dist/CMakeFiles/dmc_dist.dir/decision.cpp.o" "gcc" "src/dist/CMakeFiles/dmc_dist.dir/decision.cpp.o.d"
  "/root/repo/src/dist/elim_tree.cpp" "src/dist/CMakeFiles/dmc_dist.dir/elim_tree.cpp.o" "gcc" "src/dist/CMakeFiles/dmc_dist.dir/elim_tree.cpp.o.d"
  "/root/repo/src/dist/hfreeness.cpp" "src/dist/CMakeFiles/dmc_dist.dir/hfreeness.cpp.o" "gcc" "src/dist/CMakeFiles/dmc_dist.dir/hfreeness.cpp.o.d"
  "/root/repo/src/dist/local.cpp" "src/dist/CMakeFiles/dmc_dist.dir/local.cpp.o" "gcc" "src/dist/CMakeFiles/dmc_dist.dir/local.cpp.o.d"
  "/root/repo/src/dist/optimization.cpp" "src/dist/CMakeFiles/dmc_dist.dir/optimization.cpp.o" "gcc" "src/dist/CMakeFiles/dmc_dist.dir/optimization.cpp.o.d"
  "/root/repo/src/dist/optmarked.cpp" "src/dist/CMakeFiles/dmc_dist.dir/optmarked.cpp.o" "gcc" "src/dist/CMakeFiles/dmc_dist.dir/optmarked.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/congest/CMakeFiles/dmc_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/bpt/CMakeFiles/dmc_bpt.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/dmc_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/mso/CMakeFiles/dmc_mso.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dmc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/td/CMakeFiles/dmc_td.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
