file(REMOVE_RECURSE
  "CMakeFiles/dmc_dist.dir/bags.cpp.o"
  "CMakeFiles/dmc_dist.dir/bags.cpp.o.d"
  "CMakeFiles/dmc_dist.dir/baseline.cpp.o"
  "CMakeFiles/dmc_dist.dir/baseline.cpp.o.d"
  "CMakeFiles/dmc_dist.dir/certification.cpp.o"
  "CMakeFiles/dmc_dist.dir/certification.cpp.o.d"
  "CMakeFiles/dmc_dist.dir/counting.cpp.o"
  "CMakeFiles/dmc_dist.dir/counting.cpp.o.d"
  "CMakeFiles/dmc_dist.dir/decision.cpp.o"
  "CMakeFiles/dmc_dist.dir/decision.cpp.o.d"
  "CMakeFiles/dmc_dist.dir/elim_tree.cpp.o"
  "CMakeFiles/dmc_dist.dir/elim_tree.cpp.o.d"
  "CMakeFiles/dmc_dist.dir/hfreeness.cpp.o"
  "CMakeFiles/dmc_dist.dir/hfreeness.cpp.o.d"
  "CMakeFiles/dmc_dist.dir/local.cpp.o"
  "CMakeFiles/dmc_dist.dir/local.cpp.o.d"
  "CMakeFiles/dmc_dist.dir/optimization.cpp.o"
  "CMakeFiles/dmc_dist.dir/optimization.cpp.o.d"
  "CMakeFiles/dmc_dist.dir/optmarked.cpp.o"
  "CMakeFiles/dmc_dist.dir/optmarked.cpp.o.d"
  "libdmc_dist.a"
  "libdmc_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
