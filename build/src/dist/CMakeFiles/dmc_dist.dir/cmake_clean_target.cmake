file(REMOVE_RECURSE
  "libdmc_dist.a"
)
