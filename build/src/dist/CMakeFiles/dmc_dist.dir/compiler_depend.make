# Empty compiler generated dependencies file for dmc_dist.
# This may be replaced when dependencies are built.
