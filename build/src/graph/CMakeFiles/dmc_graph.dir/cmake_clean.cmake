file(REMOVE_RECURSE
  "CMakeFiles/dmc_graph.dir/algorithms.cpp.o"
  "CMakeFiles/dmc_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/dmc_graph.dir/exact.cpp.o"
  "CMakeFiles/dmc_graph.dir/exact.cpp.o.d"
  "CMakeFiles/dmc_graph.dir/generators.cpp.o"
  "CMakeFiles/dmc_graph.dir/generators.cpp.o.d"
  "CMakeFiles/dmc_graph.dir/graph.cpp.o"
  "CMakeFiles/dmc_graph.dir/graph.cpp.o.d"
  "CMakeFiles/dmc_graph.dir/io.cpp.o"
  "CMakeFiles/dmc_graph.dir/io.cpp.o.d"
  "libdmc_graph.a"
  "libdmc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
