file(REMOVE_RECURSE
  "libdmc_graph.a"
)
