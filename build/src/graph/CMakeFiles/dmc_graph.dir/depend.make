# Empty dependencies file for dmc_graph.
# This may be replaced when dependencies are built.
