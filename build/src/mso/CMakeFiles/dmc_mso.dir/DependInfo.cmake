
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mso/ast.cpp" "src/mso/CMakeFiles/dmc_mso.dir/ast.cpp.o" "gcc" "src/mso/CMakeFiles/dmc_mso.dir/ast.cpp.o.d"
  "/root/repo/src/mso/eval.cpp" "src/mso/CMakeFiles/dmc_mso.dir/eval.cpp.o" "gcc" "src/mso/CMakeFiles/dmc_mso.dir/eval.cpp.o.d"
  "/root/repo/src/mso/formulas.cpp" "src/mso/CMakeFiles/dmc_mso.dir/formulas.cpp.o" "gcc" "src/mso/CMakeFiles/dmc_mso.dir/formulas.cpp.o.d"
  "/root/repo/src/mso/lower.cpp" "src/mso/CMakeFiles/dmc_mso.dir/lower.cpp.o" "gcc" "src/mso/CMakeFiles/dmc_mso.dir/lower.cpp.o.d"
  "/root/repo/src/mso/normalize.cpp" "src/mso/CMakeFiles/dmc_mso.dir/normalize.cpp.o" "gcc" "src/mso/CMakeFiles/dmc_mso.dir/normalize.cpp.o.d"
  "/root/repo/src/mso/parser.cpp" "src/mso/CMakeFiles/dmc_mso.dir/parser.cpp.o" "gcc" "src/mso/CMakeFiles/dmc_mso.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dmc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
