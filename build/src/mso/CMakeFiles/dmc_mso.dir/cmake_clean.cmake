file(REMOVE_RECURSE
  "CMakeFiles/dmc_mso.dir/ast.cpp.o"
  "CMakeFiles/dmc_mso.dir/ast.cpp.o.d"
  "CMakeFiles/dmc_mso.dir/eval.cpp.o"
  "CMakeFiles/dmc_mso.dir/eval.cpp.o.d"
  "CMakeFiles/dmc_mso.dir/formulas.cpp.o"
  "CMakeFiles/dmc_mso.dir/formulas.cpp.o.d"
  "CMakeFiles/dmc_mso.dir/lower.cpp.o"
  "CMakeFiles/dmc_mso.dir/lower.cpp.o.d"
  "CMakeFiles/dmc_mso.dir/normalize.cpp.o"
  "CMakeFiles/dmc_mso.dir/normalize.cpp.o.d"
  "CMakeFiles/dmc_mso.dir/parser.cpp.o"
  "CMakeFiles/dmc_mso.dir/parser.cpp.o.d"
  "libdmc_mso.a"
  "libdmc_mso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_mso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
