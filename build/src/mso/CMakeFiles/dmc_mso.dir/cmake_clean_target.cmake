file(REMOVE_RECURSE
  "libdmc_mso.a"
)
