# Empty dependencies file for dmc_mso.
# This may be replaced when dependencies are built.
