file(REMOVE_RECURSE
  "CMakeFiles/dmc_seq.dir/courcelle.cpp.o"
  "CMakeFiles/dmc_seq.dir/courcelle.cpp.o.d"
  "libdmc_seq.a"
  "libdmc_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
