file(REMOVE_RECURSE
  "libdmc_seq.a"
)
