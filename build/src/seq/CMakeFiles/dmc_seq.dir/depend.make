# Empty dependencies file for dmc_seq.
# This may be replaced when dependencies are built.
