
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/td/elimination_forest.cpp" "src/td/CMakeFiles/dmc_td.dir/elimination_forest.cpp.o" "gcc" "src/td/CMakeFiles/dmc_td.dir/elimination_forest.cpp.o.d"
  "/root/repo/src/td/tree_decomposition.cpp" "src/td/CMakeFiles/dmc_td.dir/tree_decomposition.cpp.o" "gcc" "src/td/CMakeFiles/dmc_td.dir/tree_decomposition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dmc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
