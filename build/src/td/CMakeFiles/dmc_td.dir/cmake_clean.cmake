file(REMOVE_RECURSE
  "CMakeFiles/dmc_td.dir/elimination_forest.cpp.o"
  "CMakeFiles/dmc_td.dir/elimination_forest.cpp.o.d"
  "CMakeFiles/dmc_td.dir/tree_decomposition.cpp.o"
  "CMakeFiles/dmc_td.dir/tree_decomposition.cpp.o.d"
  "libdmc_td.a"
  "libdmc_td.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_td.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
