file(REMOVE_RECURSE
  "libdmc_td.a"
)
