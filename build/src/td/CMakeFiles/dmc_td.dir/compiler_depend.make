# Empty compiler generated dependencies file for dmc_td.
# This may be replaced when dependencies are built.
