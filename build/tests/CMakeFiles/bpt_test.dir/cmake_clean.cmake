file(REMOVE_RECURSE
  "CMakeFiles/bpt_test.dir/bpt_test.cpp.o"
  "CMakeFiles/bpt_test.dir/bpt_test.cpp.o.d"
  "bpt_test"
  "bpt_test.pdb"
  "bpt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
