file(REMOVE_RECURSE
  "CMakeFiles/courcelle_test.dir/courcelle_test.cpp.o"
  "CMakeFiles/courcelle_test.dir/courcelle_test.cpp.o.d"
  "courcelle_test"
  "courcelle_test.pdb"
  "courcelle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/courcelle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
