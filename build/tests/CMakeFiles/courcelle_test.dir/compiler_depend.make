# Empty compiler generated dependencies file for courcelle_test.
# This may be replaced when dependencies are built.
