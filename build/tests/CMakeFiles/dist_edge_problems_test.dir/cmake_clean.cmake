file(REMOVE_RECURSE
  "CMakeFiles/dist_edge_problems_test.dir/dist_edge_problems_test.cpp.o"
  "CMakeFiles/dist_edge_problems_test.dir/dist_edge_problems_test.cpp.o.d"
  "dist_edge_problems_test"
  "dist_edge_problems_test.pdb"
  "dist_edge_problems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_edge_problems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
