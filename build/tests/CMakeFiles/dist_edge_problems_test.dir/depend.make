# Empty dependencies file for dist_edge_problems_test.
# This may be replaced when dependencies are built.
