file(REMOVE_RECURSE
  "CMakeFiles/dist_elim_tree_test.dir/dist_elim_tree_test.cpp.o"
  "CMakeFiles/dist_elim_tree_test.dir/dist_elim_tree_test.cpp.o.d"
  "dist_elim_tree_test"
  "dist_elim_tree_test.pdb"
  "dist_elim_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_elim_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
