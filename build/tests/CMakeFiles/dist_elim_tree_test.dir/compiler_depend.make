# Empty compiler generated dependencies file for dist_elim_tree_test.
# This may be replaced when dependencies are built.
