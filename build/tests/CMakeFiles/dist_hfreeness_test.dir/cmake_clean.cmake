file(REMOVE_RECURSE
  "CMakeFiles/dist_hfreeness_test.dir/dist_hfreeness_test.cpp.o"
  "CMakeFiles/dist_hfreeness_test.dir/dist_hfreeness_test.cpp.o.d"
  "dist_hfreeness_test"
  "dist_hfreeness_test.pdb"
  "dist_hfreeness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_hfreeness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
