# Empty dependencies file for dist_hfreeness_test.
# This may be replaced when dependencies are built.
