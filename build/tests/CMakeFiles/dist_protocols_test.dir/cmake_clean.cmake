file(REMOVE_RECURSE
  "CMakeFiles/dist_protocols_test.dir/dist_protocols_test.cpp.o"
  "CMakeFiles/dist_protocols_test.dir/dist_protocols_test.cpp.o.d"
  "dist_protocols_test"
  "dist_protocols_test.pdb"
  "dist_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
