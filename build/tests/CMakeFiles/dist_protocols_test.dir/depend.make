# Empty dependencies file for dist_protocols_test.
# This may be replaced when dependencies are built.
