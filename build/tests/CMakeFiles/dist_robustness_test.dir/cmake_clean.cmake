file(REMOVE_RECURSE
  "CMakeFiles/dist_robustness_test.dir/dist_robustness_test.cpp.o"
  "CMakeFiles/dist_robustness_test.dir/dist_robustness_test.cpp.o.d"
  "dist_robustness_test"
  "dist_robustness_test.pdb"
  "dist_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
