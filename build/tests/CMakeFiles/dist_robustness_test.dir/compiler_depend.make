# Empty compiler generated dependencies file for dist_robustness_test.
# This may be replaced when dependencies are built.
