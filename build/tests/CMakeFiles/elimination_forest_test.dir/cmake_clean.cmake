file(REMOVE_RECURSE
  "CMakeFiles/elimination_forest_test.dir/elimination_forest_test.cpp.o"
  "CMakeFiles/elimination_forest_test.dir/elimination_forest_test.cpp.o.d"
  "elimination_forest_test"
  "elimination_forest_test.pdb"
  "elimination_forest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elimination_forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
