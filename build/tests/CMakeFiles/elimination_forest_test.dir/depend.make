# Empty dependencies file for elimination_forest_test.
# This may be replaced when dependencies are built.
