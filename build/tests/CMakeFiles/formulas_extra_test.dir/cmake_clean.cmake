file(REMOVE_RECURSE
  "CMakeFiles/formulas_extra_test.dir/formulas_extra_test.cpp.o"
  "CMakeFiles/formulas_extra_test.dir/formulas_extra_test.cpp.o.d"
  "formulas_extra_test"
  "formulas_extra_test.pdb"
  "formulas_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formulas_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
