# Empty compiler generated dependencies file for formulas_extra_test.
# This may be replaced when dependencies are built.
