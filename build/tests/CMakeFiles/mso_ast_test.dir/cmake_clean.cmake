file(REMOVE_RECURSE
  "CMakeFiles/mso_ast_test.dir/mso_ast_test.cpp.o"
  "CMakeFiles/mso_ast_test.dir/mso_ast_test.cpp.o.d"
  "mso_ast_test"
  "mso_ast_test.pdb"
  "mso_ast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mso_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
