# Empty dependencies file for mso_ast_test.
# This may be replaced when dependencies are built.
