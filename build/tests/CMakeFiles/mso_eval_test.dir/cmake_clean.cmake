file(REMOVE_RECURSE
  "CMakeFiles/mso_eval_test.dir/mso_eval_test.cpp.o"
  "CMakeFiles/mso_eval_test.dir/mso_eval_test.cpp.o.d"
  "mso_eval_test"
  "mso_eval_test.pdb"
  "mso_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mso_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
