# Empty dependencies file for mso_eval_test.
# This may be replaced when dependencies are built.
