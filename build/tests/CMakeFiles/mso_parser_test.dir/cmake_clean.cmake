file(REMOVE_RECURSE
  "CMakeFiles/mso_parser_test.dir/mso_parser_test.cpp.o"
  "CMakeFiles/mso_parser_test.dir/mso_parser_test.cpp.o.d"
  "mso_parser_test"
  "mso_parser_test.pdb"
  "mso_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mso_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
