# Empty dependencies file for mso_parser_test.
# This may be replaced when dependencies are built.
