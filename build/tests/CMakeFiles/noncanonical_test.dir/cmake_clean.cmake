file(REMOVE_RECURSE
  "CMakeFiles/noncanonical_test.dir/noncanonical_test.cpp.o"
  "CMakeFiles/noncanonical_test.dir/noncanonical_test.cpp.o.d"
  "noncanonical_test"
  "noncanonical_test.pdb"
  "noncanonical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noncanonical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
