# Empty compiler generated dependencies file for noncanonical_test.
# This may be replaced when dependencies are built.
