# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/exact_test[1]_include.cmake")
include("/root/repo/build/tests/elimination_forest_test[1]_include.cmake")
include("/root/repo/build/tests/tree_decomposition_test[1]_include.cmake")
include("/root/repo/build/tests/mso_ast_test[1]_include.cmake")
include("/root/repo/build/tests/mso_parser_test[1]_include.cmake")
include("/root/repo/build/tests/mso_eval_test[1]_include.cmake")
include("/root/repo/build/tests/courcelle_test[1]_include.cmake")
include("/root/repo/build/tests/congest_test[1]_include.cmake")
include("/root/repo/build/tests/dist_elim_tree_test[1]_include.cmake")
include("/root/repo/build/tests/dist_protocols_test[1]_include.cmake")
include("/root/repo/build/tests/dist_hfreeness_test[1]_include.cmake")
include("/root/repo/build/tests/congest_primitives_test[1]_include.cmake")
include("/root/repo/build/tests/certification_test[1]_include.cmake")
include("/root/repo/build/tests/formulas_extra_test[1]_include.cmake")
include("/root/repo/build/tests/normalize_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/bpt_test[1]_include.cmake")
include("/root/repo/build/tests/dist_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/noncanonical_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/dist_edge_problems_test[1]_include.cmake")
