file(REMOVE_RECURSE
  "CMakeFiles/dmc.dir/dmc.cpp.o"
  "CMakeFiles/dmc.dir/dmc.cpp.o.d"
  "dmc"
  "dmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
