// Distributed certification (the setting the paper grew out of): a prover
// hands out O(log n)-bit certificates for "G satisfies phi" on a
// bounded-treedepth network; a single-round verifier checks them, and any
// tampering is caught by at least one node.
#include <cstdio>

#include "dist/certification.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

using namespace dmc;

int main() {
  gen::Rng rng(17);
  Graph g;
  // find a 2-colorable instance so the property holds
  do {
    g = gen::random_bounded_treedepth(20, 3, 0.3, rng);
  } while (false);
  std::printf("network: n=%d m=%d\n", g.num_vertices(), g.num_edges());

  const auto formula = mso::lib::connected();
  auto cert = dist::prove_mso(g, formula);
  std::printf("prover: certificates of <= %ld bits, |C| = %zu classes\n",
              cert.max_certificate_bits, cert.engine->num_types());

  const auto honest = dist::verify_mso(g, cert);
  std::printf("verifier (honest):   %s\n",
              honest.all_accept ? "all nodes accept" : "REJECTED");

  // Tamper with one node's class claim: soundness demands a rejection.
  cert.certs[g.num_vertices() / 2].subtree_class ^= 1;
  const auto tampered = dist::verify_mso(g, cert);
  int rejecting = 0;
  for (bool a : tampered.accept) rejecting += !a;
  std::printf("verifier (tampered): %d node(s) reject\n", rejecting);
  return honest.all_accept && !tampered.all_accept ? 0 : 1;
}
