// Distributed minimum spanning tree as MSO optimization (Theorem 6.1).
//
// The MST is min phi(F) for phi(F) = "F is spanning and connected"
// (Section 4 of the paper lists MST among the expressible problems; with
// strictly positive weights no optimal solution contains a cycle, so the
// rank-1 connectivity formula suffices). The selected edges are marked by
// the top-down phase of Algorithm 1; we verify against Kruskal.
#include <cstdio>

#include "congest/network.hpp"
#include "dist/optimization.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

using namespace dmc;

int main() {
  gen::Rng rng(2026);
  Graph g = gen::random_bounded_treedepth(/*n=*/18, /*d=*/3, 0.45, rng);
  gen::randomize_weights(g, 1, 20, rng);
  std::printf("network: n=%d m=%d (treedepth <= 3)\n", g.num_vertices(),
              g.num_edges());

  congest::Network net(g, {.id_seed = 7});
  const auto outcome = dist::run_minimize(net, mso::lib::spanning_connected(),
                                          "F", mso::Sort::EdgeSet, /*d=*/3);
  if (outcome.treedepth_exceeded || !outcome.best_weight) {
    std::printf("failed to solve\n");
    return 1;
  }
  std::printf("distributed MST weight: %lld in %ld rounds\n",
              static_cast<long long>(*outcome.best_weight),
              outcome.total_rounds());

  std::vector<EdgeId> chosen;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (outcome.edges[e]) chosen.push_back(e);
  std::printf("selected %zu edges; spanning tree: %s\n", chosen.size(),
              is_spanning_tree(g, chosen) ? "yes" : "NO");

  const auto kruskal = kruskal_mst(g);
  const Weight reference = total_edge_weight(g, kruskal);
  std::printf("Kruskal reference weight: %lld -> %s\n",
              static_cast<long long>(reference),
              reference == *outcome.best_weight ? "MATCH" : "MISMATCH");
  return reference == *outcome.best_weight ? 0 : 1;
}
