// Motif detection on a planar-style network via low-treedepth
// decompositions (Theorem 7.2 + Corollary 7.3), plus distributed triangle
// counting (Section 6).
//
// The network is a perturbed grid (bounded expansion). H-freeness for the
// triangle motif runs the Corollary 7.3 pipeline: partition into f(p)
// parts, decide H-freeness on every union of p parts in parallel.
#include <cstdio>

#include "congest/network.hpp"
#include "dist/counting.hpp"
#include "dist/hfreeness.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

using namespace dmc;

int main() {
  const int side = 7;
  gen::Rng rng(5);
  const Graph g = gen::perturbed_grid(side, side, /*extra=*/9, rng);
  std::printf("planar-style network: %d x %d grid + diagonals (n=%d, m=%d)\n",
              side, side, g.num_vertices(), g.num_edges());

  const Graph triangle = gen::clique(3);
  const auto out = dist::run_h_freeness_grid(g, side, side, triangle, 4);
  std::printf(
      "Corollary 7.3 pipeline: %d part-subsets, %d component runs,\n"
      "  max %ld rounds per run (flat in n), verdict: %s\n",
      out.num_subsets, out.num_component_runs, out.max_run_rounds,
      out.h_free ? "triangle-free" : "contains a triangle");
  const bool oracle = exact::contains_subgraph(g, triangle);
  std::printf("VF2-style oracle: %s -> %s\n",
              oracle ? "contains a triangle" : "triangle-free",
              out.h_free == !oracle ? "MATCH" : "MISMATCH");

  // Distributed triangle *counting* needs bounded treedepth of the whole
  // network, so run it on a bounded-treedepth subsample instead.
  gen::Rng rng2(6);
  const Graph h = gen::random_bounded_treedepth(30, 3, 0.5, rng2);
  congest::Network net(h);
  const auto count = dist::run_count(net, mso::lib::triangle_tuple(),
                                     {{"X", mso::Sort::VertexSet},
                                      {"Y", mso::Sort::VertexSet},
                                      {"Z", mso::Sort::VertexSet}},
                                     3);
  std::printf(
      "\ntriangle counting on btd(30,3): %llu triangles in %ld rounds "
      "(oracle %llu)\n",
      static_cast<unsigned long long>(count.count / 6), count.total_rounds(),
      static_cast<unsigned long long>(exact::count_triangles(h)));
  return out.h_free == !oracle && count.count / 6 == exact::count_triangles(h)
             ? 0
             : 1;
}
