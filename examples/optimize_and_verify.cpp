// Optimization + optmarked verification (Theorem 6.1 and Section 6).
//
// First the network solves max independent set distributively; then the
// solution is installed as the "marked" label and an independent optmarked
// run produces a distributed proof that the configuration is optimal —
// the paper's "is the marked set a maximum independent set?" scenario.
#include <cstdio>

#include "congest/network.hpp"
#include "dist/optimization.hpp"
#include "dist/optmarked.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

using namespace dmc;

int main() {
  gen::Rng rng(99);
  Graph g = gen::random_bounded_treedepth(16, 3, 0.4, rng);
  gen::randomize_weights(g, 1, 9, rng);
  std::printf("network: n=%d m=%d, weighted vertices\n", g.num_vertices(),
              g.num_edges());

  // Phase 1: solve max independent set.
  std::vector<bool> solution;
  Weight value = 0;
  {
    congest::Network net(g);
    const auto out = dist::run_maximize(net, mso::lib::independent_set(), "S",
                                        mso::Sort::VertexSet, 3);
    if (out.treedepth_exceeded || !out.best_weight) return 1;
    solution = out.vertices;
    value = *out.best_weight;
    std::printf("max independent set: weight %lld in %ld rounds\n",
                static_cast<long long>(value), out.total_rounds());
  }

  // Phase 2: verify the configuration with optmarked.
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (solution[v]) g.set_vertex_label("marked", v);
  {
    congest::Network net(g);
    const auto out = dist::run_optmarked(net, mso::lib::independent_set(), "S",
                                         mso::Sort::VertexSet, 3);
    std::printf(
        "optmarked: satisfies=%s optimal=%s (marked %lld vs best %lld), "
        "%ld rounds\n",
        out.satisfies ? "yes" : "no", out.is_optimal ? "yes" : "no",
        static_cast<long long>(out.marked_weight),
        static_cast<long long>(out.best_weight), out.total_rounds());
    if (!out.satisfies || !out.is_optimal) return 1;
  }

  // Phase 3: perturb the marking — the verifier must reject.
  {
    Graph bad = g;
    for (VertexId v = 0; v < bad.num_vertices(); ++v)
      bad.set_vertex_label("marked", v, false);
    congest::Network net(bad);  // empty marking: feasible but not optimal
    const auto out = dist::run_optmarked(net, mso::lib::independent_set(), "S",
                                         mso::Sort::VertexSet, 3);
    std::printf("empty marking rejected as optimal: %s\n",
                !out.is_optimal ? "yes" : "NO");
    if (out.is_optimal) return 1;
  }
  return 0;
}
