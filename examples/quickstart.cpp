// Quickstart: parse an MSO formula, check it on a graph sequentially
// (Courcelle via the BPT engine), then run the full distributed pipeline
// (Algorithm 2 + Lemma 5.3 + Theorem 6.1) in the CONGEST simulator and
// compare verdicts and round counts.
//
//   ./quickstart [formula]
//
// Default formula: triangle-freeness. The formula must be closed; see
// src/mso/parser.hpp for the grammar.
#include <cstdio>
#include <string>

#include "congest/network.hpp"
#include "dist/decision.hpp"
#include "graph/generators.hpp"
#include "mso/parser.hpp"
#include "seq/courcelle.hpp"

using namespace dmc;

int main(int argc, char** argv) {
  const std::string text =
      argc > 1 ? argv[1]
               : "!exists vertex x, y, z. adj(x,y) & adj(y,z) & adj(x,z)";
  std::printf("formula: %s\n", text.c_str());
  const mso::FormulaPtr formula = mso::parse(text);

  // A small network of bounded treedepth: cliques hanging off a hub.
  const Graph g = gen::star_of_cliques(/*k=*/3, /*size=*/3);
  std::printf("graph:   %s\n", g.to_string().c_str());

  // 1. Sequential check (Algorithm 1 on a canonical tree decomposition).
  const bool seq_verdict = seq::decide(g, formula);
  std::printf("sequential verdict: %s\n", seq_verdict ? "holds" : "fails");

  // 2. Distributed check in the CONGEST simulator (treedepth budget d=3).
  congest::Network net(g, {.id_seed = 1});
  const auto outcome = dist::run_decision(net, formula, /*d=*/3);
  if (outcome.treedepth_exceeded) {
    std::printf("distributed: treedepth budget exceeded\n");
    return 1;
  }
  std::printf("distributed verdict: %s\n", outcome.holds ? "holds" : "fails");
  std::printf(
      "rounds: %ld total (elim tree %ld + bags %ld + up/down %ld)\n",
      outcome.total_rounds(), outcome.rounds_elim, outcome.rounds_bags,
      outcome.rounds_updown);
  std::printf("class universe |C| = %zu, class messages <= %d bits\n",
              outcome.num_classes, outcome.max_class_bits);
  std::printf("network stats: %ld messages, %lld bits, bandwidth %d b/edge\n",
              net.stats().messages, net.stats().total_bits, net.bandwidth());
  return seq_verdict == outcome.holds ? 0 : 1;
}
