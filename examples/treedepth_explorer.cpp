// Treedepth explorer: the structural toolbox of Section 2 on named graph
// families — elimination forests (Figure 1's embedding), the td(P_n) law,
// Lemma 2.5's 2^td bound for greedy subtrees, and the canonical tree
// decomposition of Lemma 2.4.
#include <cmath>
#include <cstdio>

#include "graph/generators.hpp"
#include "td/elimination_forest.hpp"
#include "td/tree_decomposition.hpp"

using namespace dmc;

namespace {

void explore(const char* name, const Graph& g) {
  const auto [td, forest] = exact_treedepth_forest(g);
  const auto decomposition = canonical_tree_decomposition(g, forest);
  const auto greedy = greedy_elimination_tree(g, (1 << td) - 1);
  std::printf("%-14s n=%3d m=%3d  td=%d  canonical width=%d  ", name,
              g.num_vertices(), g.num_edges(), td, decomposition.width());
  if (greedy)
    std::printf("greedy depth=%d (< 2^td = %d)\n", greedy->depth(), 1 << td);
  else
    std::printf("greedy needs depth >= 2^td\n");
}

}  // namespace

int main() {
  std::printf("-- named families (Definition 2.1 / Lemma 2.4 / Lemma 2.5) --\n");
  explore("path(15)", gen::path(15));
  explore("cycle(12)", gen::cycle(12));
  explore("star(10)", gen::star(10));
  explore("clique(5)", gen::clique(5));
  explore("binary_tree(4)", gen::binary_tree(4));
  explore("caterpillar", gen::caterpillar(4, 2));
  explore("grid(3,4)", gen::grid(3, 4));

  std::printf("\n-- td(P_n) = ceil(log2(n+1)) --\n");
  for (int n = 1; n <= 16; ++n) {
    const int td = exact_treedepth(gen::path(n));
    std::printf("P_%-3d td=%d (law: %d)\n", n, td,
                static_cast<int>(std::ceil(std::log2(n + 1))));
  }

  std::printf("\n-- an optimal elimination tree of P_7 (Figure 1 style) --\n");
  const Graph p7 = gen::path(7);
  const auto [td, forest] = exact_treedepth_forest(p7);
  for (VertexId v = 0; v < 7; ++v)
    std::printf("vertex %d: depth %d parent %d\n", v, forest.depth(v),
                forest.parent(v));
  std::printf("depth %d = td %d\n", forest.depth(), td);
  return 0;
}
