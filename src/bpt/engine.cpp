#include "bpt/engine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "metrics/metrics.hpp"

namespace dmc::bpt {

namespace {

constexpr std::uint8_t kEdgeSlotFlag = 0x10;  // internal slot encoding

std::uint8_t sat2(int x) { return static_cast<std::uint8_t>(std::min(x, 2)); }
std::uint8_t sat1(int x) { return static_cast<std::uint8_t>(std::min(x, 1)); }

int slot_bit(int i, int j) { return i * kMaxSlots + j; }

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_node(const TypeNode& n) {
  std::uint64_t h = 1469598103934665603ull;
  h = hash_mix(h, n.rank);
  h = hash_mix(h, n.atoms.tau);
  h = hash_mix(h, n.atoms.term_adj);
  h = hash_mix(h, n.atoms.adjsets);
  h = hash_mix(h, n.atoms.subsets);
  h = hash_mix(h, n.atoms.disjs);
  h = hash_mix(h, n.atoms.incs);
  h = hash_mix(h, n.atoms.crosses);
  for (const VarAtoms& v : n.atoms.vars) {
    h = hash_mix(h, static_cast<int>(v.sort));
    h = hash_mix(h, v.mask);
    h = hash_mix(h, v.pair_mask);
    h = hash_mix(h, (v.hidden << 16) | (v.cohidden << 8) | v.border);
    h = hash_mix(h, v.labels);
  }
  for (TypeId t : n.vexts) h = hash_mix(h, static_cast<std::uint64_t>(t) + 7);
  h = hash_mix(h, 0xabcdef);
  for (TypeId t : n.eexts) h = hash_mix(h, static_cast<std::uint64_t>(t) + 13);
  return h;
}

}  // namespace

std::size_t hash_type_node(const TypeNode& n) { return hash_node(n); }

int pair_index(int i, int j, int tau) {
  if (i > j) std::swap(i, j);
  return i * tau - i * (i + 1) / 2 + (j - i - 1);
}

EngineConfig config_for(
    const mso::Formula& lowered,
    const std::vector<std::pair<std::string, mso::Sort>>& free_vars) {
  EngineConfig cfg;
  cfg.rank = mso::quantifier_rank(lowered);
  for (const auto& [name, sort] : free_vars) {
    if (!mso::is_set(sort))
      throw std::invalid_argument("config_for: free variable '" + name +
                                  "' must be a set");
    cfg.free_sorts.push_back(sort);
  }
  if (cfg.rank + static_cast<int>(cfg.free_sorts.size()) > kMaxSlots)
    throw std::invalid_argument(
        "config_for: quantifier rank + free variables exceeds engine limit");
  cfg.vertex_mode.assign(cfg.rank + 1, ExtMode::None);
  cfg.edge_mode.assign(cfg.rank + 1, ExtMode::None);
  cfg.free_modes.assign(cfg.free_sorts.size(), ExtMode::Full);
  {
    // Collect top-level And-conjuncts; a sing(freevar) conjunct makes that
    // slot singleton-restricted.
    std::vector<const mso::Formula*> stack{&lowered};
    while (!stack.empty()) {
      const mso::Formula* f = stack.back();
      stack.pop_back();
      if (f->kind == mso::Kind::And) {
        stack.push_back(f->left.get());
        stack.push_back(f->right.get());
      } else if (f->kind == mso::Kind::Singleton) {
        for (std::size_t s = 0; s < free_vars.size(); ++s)
          if (free_vars[s].first == f->a)
            cfg.free_modes[s] = ExtMode::SingletonOnly;
      }
    }
  }
  // Walk the formula once to find quantifier sorts and label usage
  // (with the declared sorts of free variables in scope).
  std::map<std::string, mso::Sort> scope;
  for (const auto& [name, sort] : free_vars) scope[name] = sort;
  auto raise_mode = [](ExtMode& slot, ExtMode m) {
    slot = std::max(slot, m);
  };
  // Detects the guard pattern lower() emits for individual variables.
  auto is_singleton_guarded = [](const mso::Formula& q) {
    const mso::Formula& body = *q.left;
    if (q.kind == mso::Kind::Exists)
      return body.kind == mso::Kind::And &&
             body.left->kind == mso::Kind::Singleton && body.left->a == q.var;
    return body.kind == mso::Kind::Implies &&
           body.left->kind == mso::Kind::Singleton && body.left->a == q.var;
  };
  int depth = 0;
  auto add_label = [&cfg](std::vector<std::string>& list, const std::string& l) {
    if (std::find(list.begin(), list.end(), l) == list.end()) list.push_back(l);
    if (list.size() > 32)
      throw std::invalid_argument("config_for: too many labels");
  };
  auto walk = [&](auto&& self, const mso::Formula& f) -> void {
    switch (f.kind) {
      case mso::Kind::Exists:
      case mso::Kind::Forall: {
        if (!mso::is_set(f.var_sort))
          throw std::invalid_argument(
              "config_for: formula is not in set normal form (lower() it)");
        ++depth;
        const ExtMode mode = is_singleton_guarded(f) ? ExtMode::SingletonOnly
                                                     : ExtMode::Full;
        if (f.var_sort == mso::Sort::VertexSet) {
          cfg.vertex_exts = true;
          raise_mode(cfg.vertex_mode[depth], mode);
        } else {
          cfg.edge_exts = true;
          raise_mode(cfg.edge_mode[depth], mode);
        }
        const auto prev = scope.find(f.var);
        const bool had = prev != scope.end();
        const mso::Sort old = had ? prev->second : mso::Sort::Vertex;
        scope[f.var] = f.var_sort;
        self(self, *f.left);
        if (had)
          scope[f.var] = old;
        else
          scope.erase(f.var);
        --depth;
        return;
      }
      case mso::Kind::Label: {
        auto it = scope.find(f.a);
        if (it == scope.end())
          throw std::invalid_argument("config_for: unbound variable '" + f.a +
                                      "' (declare free variables)");
        if (mso::is_edge_kind(it->second))
          add_label(cfg.edge_labels, f.label);
        else
          add_label(cfg.vertex_labels, f.label);
        return;
      }
      case mso::Kind::Not:
        self(self, *f.left);
        return;
      case mso::Kind::And:
      case mso::Kind::Or:
      case mso::Kind::Implies:
      case mso::Kind::Iff:
        self(self, *f.left);
        self(self, *f.right);
        return;
      case mso::Kind::Member:
      case mso::Kind::Equal:
        throw std::invalid_argument(
            "config_for: formula is not in set normal form (lower() it)");
      case mso::Kind::Singleton:
        cfg.features.hidden_cap = 2;
        return;
      case mso::Kind::EmptySet:
        cfg.features.hidden_cap = std::max<std::uint8_t>(cfg.features.hidden_cap, 1);
        return;
      case mso::Kind::FullSet:
        cfg.features.full = true;
        return;
      case mso::Kind::Border:
        cfg.features.border = true;
        return;
      case mso::Kind::Adjacent:
        cfg.features.adjsets = true;
        return;
      case mso::Kind::Subset:
        cfg.features.subsets = true;
        return;
      case mso::Kind::Disjoint:
        cfg.features.disjs = true;
        return;
      case mso::Kind::Incident:
        cfg.features.incs = true;
        return;
      case mso::Kind::Crossing:
        cfg.features.crosses = true;
        return;
      default:
        return;
    }
  };
  walk(walk, lowered);
  // Terminal adjacency is only observable through edge-set slots (pair
  // traces, shared-edge consistency, OPT edge overlaps).
  cfg.features.term_adj =
      cfg.edge_exts ||
      std::any_of(cfg.free_sorts.begin(), cfg.free_sorts.end(),
                  [](mso::Sort s) { return s == mso::Sort::EdgeSet; });
  return cfg;
}

EngineConfig without_feature_pruning(EngineConfig cfg) {
  cfg.features.hidden_cap = 2;
  cfg.features.full = cfg.features.border = cfg.features.adjsets = true;
  cfg.features.subsets = cfg.features.disjs = cfg.features.incs = true;
  cfg.features.crosses = cfg.features.term_adj = true;
  return cfg;
}

EngineConfig without_singleton_modes(EngineConfig cfg) {
  for (ExtMode& m : cfg.vertex_mode)
    if (m == ExtMode::SingletonOnly) m = ExtMode::Full;
  for (ExtMode& m : cfg.edge_mode)
    if (m == ExtMode::SingletonOnly) m = ExtMode::Full;
  for (ExtMode& m : cfg.free_modes)
    if (m == ExtMode::SingletonOnly) m = ExtMode::Full;
  return cfg;
}

Engine::Engine(EngineConfig cfg)
    : cfg_(std::move(cfg)),
      index_stripes_(new IndexStripe[kIndexStripes]),
      memo_stripes_(new MemoStripe[kMemoStripes]) {
  if (cfg_.rank < 0) throw std::invalid_argument("Engine: negative rank");
  resolve_metrics();
}

Engine::Engine(const Engine& other)
    : cfg_(other.cfg_),
      nodes_(other.nodes_),
      index_stripes_(new IndexStripe[kIndexStripes]),
      ops_(other.ops_),
      op_index_(other.op_index_),
      memo_stripes_(new MemoStripe[kMemoStripes]),
      primitive_memo_(other.primitive_memo_),
      type_limit_(other.type_limit_.load()),
      compose_calls_(other.compose_calls_.load()),
      memo_hits_(other.memo_hits_.load()),
      invalid_compositions_(other.invalid_compositions_.load()) {
  for (std::size_t s = 0; s < kIndexStripes; ++s)
    index_stripes_[s].buckets = other.index_stripes_[s].buckets;
  for (std::size_t s = 0; s < kMemoStripes; ++s)
    memo_stripes_[s].map = other.memo_stripes_[s].map;
  resolve_metrics();
}

void Engine::resolve_metrics() {
  metrics::Registry* const reg = metrics::global();
  if (reg == nullptr) return;
  met_hashcons_hits_ = &reg->counter("bpt.hashcons.hits");
  met_hashcons_misses_ = &reg->counter("bpt.hashcons.misses");
  met_types_ = &reg->gauge("bpt.types");
  met_compose_calls_ = &reg->counter("bpt.compose.calls");
  met_memo_hits_ = &reg->counter("bpt.compose.memo_hits");
}

void Engine::prune(AtomicInfo& a) const {
  const FeatureMask& fm = cfg_.features;
  for (VarAtoms& v : a.vars) {
    v.hidden = std::min(v.hidden, fm.hidden_cap);
    if (!fm.full) v.cohidden = 0;
    if (!fm.border) v.border = 0;
  }
  if (!fm.adjsets) a.adjsets = 0;
  if (!fm.subsets) a.subsets = 0;
  if (!fm.disjs) a.disjs = 0;
  if (!fm.incs) a.incs = 0;
  if (!fm.crosses) a.crosses = 0;
  if (!fm.term_adj) a.term_adj = 0;
}

TypeId Engine::intern(TypeNode node) {
  if (nodes_.size() >= type_limit_.load(std::memory_order_relaxed))
    throw std::runtime_error(
        "bpt::Engine: type universe limit exceeded (instance too large for "
        "this formula's rank/width; see set_type_limit)");
  const std::size_t h = hash_type_node(node);
  IndexStripe& stripe = index_stripes_[h % kIndexStripes];
  {
    std::lock_guard<std::mutex> lk(stripe.m);
    auto it = stripe.buckets.find(h);
    if (it != stripe.buckets.end())
      for (TypeId t : it->second)
        if (nodes_[t] == node) {
          if (met_hashcons_hits_ != nullptr) met_hashcons_hits_->add(1);
          return t;
        }
  }
  // Not found: take the append lock (lock order: append before stripe),
  // re-check under both, then publish. Ids remain insertion order, so the
  // single-threaded id sequence is exactly the legacy one.
  std::lock_guard<std::mutex> append(intern_mutex_);
  std::lock_guard<std::mutex> lk(stripe.m);
  auto& bucket = stripe.buckets[h];
  for (TypeId t : bucket)
    if (nodes_[t] == node) {
      if (met_hashcons_hits_ != nullptr) met_hashcons_hits_->add(1);
      return t;
    }
  const TypeId id = static_cast<TypeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  bucket.push_back(id);
  if (met_hashcons_misses_ != nullptr) {
    met_hashcons_misses_->add(1);
    met_types_->max_of(static_cast<long long>(id) + 1);  // universe growth
  }
  return id;
}

TypeId Engine::k1(std::uint32_t vertex_label_bits, const SlotBits& slots) {
  if (slots.size() != cfg_.free_sorts.size())
    throw std::invalid_argument("k1: slot count mismatch");
  SlotBits encoded(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const bool edge_sort = cfg_.free_sorts[s] == mso::Sort::EdgeSet;
    if (edge_sort && (slots[s] & 1))
      throw std::invalid_argument("k1: edge slot cannot contain an edge");
    encoded[s] =
        static_cast<std::uint8_t>((edge_sort ? kEdgeSlotFlag : 0) | (slots[s] & 3));
  }
  return primitive(false, vertex_label_bits, 0, 0, encoded, cfg_.rank);
}

TypeId Engine::k2(std::uint32_t label_bits_a, std::uint32_t label_bits_b,
                  std::uint32_t edge_label_bits, const SlotBits& slots) {
  if (slots.size() != cfg_.free_sorts.size())
    throw std::invalid_argument("k2: slot count mismatch");
  SlotBits encoded(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const bool edge_sort = cfg_.free_sorts[s] == mso::Sort::EdgeSet;
    encoded[s] =
        static_cast<std::uint8_t>((edge_sort ? kEdgeSlotFlag : 0) | (slots[s] & 3));
  }
  return primitive(true, label_bits_a, label_bits_b, edge_label_bits, encoded,
                   cfg_.rank);
}

TypeId Engine::primitive(bool is_k2, std::uint32_t la, std::uint32_t lb,
                         std::uint32_t le, const SlotBits& slots, int rank) {
  const std::uint64_t desc =
      (static_cast<std::uint64_t>(la) << 0) ^
      (static_cast<std::uint64_t>(lb) << 20) ^
      (static_cast<std::uint64_t>(le) << 40);
  const auto key = std::make_tuple(is_k2, desc, slots, rank);
  {
    std::lock_guard<std::mutex> lk(primitive_mutex_);
    auto it = primitive_memo_.find(key);
    if (it != primitive_memo_.end()) return it->second;
  }

  const int p = static_cast<int>(slots.size());
  if (p > kMaxSlots) throw std::logic_error("primitive: too many slots");
  TypeNode node;
  node.rank = static_cast<std::int16_t>(rank);
  AtomicInfo& a = node.atoms;
  a.tau = is_k2 ? 2 : 1;
  a.term_adj = is_k2 ? 1 : 0;  // pair (0,1) has index 0
  a.vars.resize(p);
  auto members_v = [&](int s) -> std::uint8_t {  // vertex members bitmask
    return (slots[s] & kEdgeSlotFlag) ? 0 : (slots[s] & 3);
  };
  auto members_e = [&](int s) -> std::uint8_t {  // edge member flag
    return (slots[s] & kEdgeSlotFlag) ? (slots[s] & 1) : 0;
  };
  for (int s = 0; s < p; ++s) {
    VarAtoms& v = a.vars[s];
    if (slots[s] & kEdgeSlotFlag) {
      v.sort = mso::Sort::EdgeSet;
      v.pair_mask = is_k2 && (slots[s] & 1) ? 1 : 0;
      v.labels = (slots[s] & 1) ? le : 0;
    } else {
      v.sort = mso::Sort::VertexSet;
      v.mask = slots[s] & (is_k2 ? 3 : 1);
      v.border = is_k2 && std::popcount(static_cast<unsigned>(v.mask)) == 1;
      v.labels = ((v.mask & 1) ? la : 0) | ((v.mask & 2) ? lb : 0);
    }
  }
  for (int i = 0; i < p; ++i) {
    const bool ei = (slots[i] & kEdgeSlotFlag) != 0;
    for (int j = 0; j < p; ++j) {
      const bool ej = (slots[j] & kEdgeSlotFlag) != 0;
      if (ei == ej) {
        // same sort: subset / disjoint
        const std::uint8_t mi = ei ? members_e(i) : members_v(i);
        const std::uint8_t mj = ei ? members_e(j) : members_v(j);
        if ((mi & ~mj) == 0) a.subsets |= 1ull << slot_bit(i, j);
        if ((mi & mj) == 0) a.disjs |= 1ull << slot_bit(i, j);
      }
      if (is_k2 && !ei && !ej) {
        const std::uint8_t mi = members_v(i), mj = members_v(j);
        if (((mi & 1) && (mj & 2)) || ((mi & 2) && (mj & 1)))
          a.adjsets |= 1ull << slot_bit(i, j);
      }
      if (is_k2 && !ei && ej) {
        if (members_e(j) && members_v(i)) a.incs |= 1ull << slot_bit(i, j);
      }
      if (is_k2 && ei && !ej) {
        if (members_e(i) &&
            std::popcount(static_cast<unsigned>(members_v(j))) == 1)
          a.crosses |= 1ull << slot_bit(i, j);
      }
    }
  }
  if (rank > 0) {
    // Extensions of a rank-`rank` type serve quantifiers at this depth.
    const int level = cfg_.rank - rank + 1;
    const ExtMode vmode = cfg_.vertex_mode.at(level);
    const ExtMode emode = cfg_.edge_mode.at(level);
    if (vmode != ExtMode::None) {
      const int limit = is_k2 ? 4 : 2;
      for (int bits = 0; bits < limit; ++bits) {
        if (vmode == ExtMode::SingletonOnly &&
            std::popcount(static_cast<unsigned>(bits)) > 1)
          continue;
        SlotBits ext = slots;
        ext.push_back(static_cast<std::uint8_t>(bits));
        const TypeId t = primitive(is_k2, la, lb, le, ext, rank - 1);
        node.vexts.push_back(t);
      }
      std::sort(node.vexts.begin(), node.vexts.end());
      node.vexts.erase(std::unique(node.vexts.begin(), node.vexts.end()),
                       node.vexts.end());
    }
    if (emode != ExtMode::None) {
      const int limit = is_k2 ? 2 : 1;
      for (int bits = 0; bits < limit; ++bits) {
        SlotBits ext = slots;
        ext.push_back(static_cast<std::uint8_t>(kEdgeSlotFlag | bits));
        const TypeId t = primitive(is_k2, la, lb, le, ext, rank - 1);
        node.eexts.push_back(t);
      }
      std::sort(node.eexts.begin(), node.eexts.end());
      node.eexts.erase(std::unique(node.eexts.begin(), node.eexts.end()),
                       node.eexts.end());
    }
  }
  prune(node.atoms);
  const TypeId id = intern(std::move(node));
  std::lock_guard<std::mutex> lk(primitive_mutex_);
  primitive_memo_[key] = id;
  return id;
}

int Engine::op_id(const GluingMatrix& f, int left_tau, int right_tau) {
  {
    std::lock_guard<std::mutex> lk(ops_mutex_);
    auto it = op_index_.find(f);
    if (it != op_index_.end()) return it->second;
  }
  f.validate(left_tau, right_tau);
  if (f.parent_tau() > kMaxTerminals)
    throw std::invalid_argument("compose: too many terminals for the engine");
  std::lock_guard<std::mutex> lk(ops_mutex_);
  auto it = op_index_.find(f);
  if (it != op_index_.end()) return it->second;
  const int id = static_cast<int>(ops_.size());
  ops_.push_back(f);
  op_index_[f] = id;
  return id;
}

void Engine::memo_store(std::uint64_t key, TypeId value) {
  MemoStripe& ms = memo_stripes_[(key * 0x9e3779b97f4a7c15ull) >> 58];
  std::lock_guard<std::mutex> lk(ms.m);
  // Bounded: a full stripe is cleared wholesale. Recomputing an evicted
  // composition re-interns to the same id, so results never change.
  if (ms.map.size() >= kMemoStripeCap) ms.map.clear();
  ms.map[key] = value;
}

TypeId Engine::compose(const GluingMatrix& f, TypeId left, TypeId right) {
  const TypeNode& l = node(left);
  const TypeNode& r = node(right);
  return compose_by_id(op_id(f, l.atoms.tau, r.atoms.tau), left, right);
}

TypeId Engine::compose_by_id(int op, TypeId left, TypeId right) {
  // Packed memo key: 14 bits of op, 25 bits per type id.
  if (op >= (1 << 14) || left >= (1 << 25) || right >= (1 << 25))
    throw std::runtime_error("bpt::Engine: id space exhausted");
  const std::uint64_t key = (static_cast<std::uint64_t>(op) << 50) |
                            (static_cast<std::uint64_t>(left) << 25) |
                            static_cast<std::uint64_t>(right);
  {
    MemoStripe& ms = memo_stripes_[(key * 0x9e3779b97f4a7c15ull) >> 58];
    std::lock_guard<std::mutex> lk(ms.m);
    auto memo = ms.map.find(key);
    if (memo != ms.map.end()) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      if (met_memo_hits_ != nullptr) met_memo_hits_->add(1);
      return memo->second;
    }
  }
  compose_calls_.fetch_add(1, std::memory_order_relaxed);
  if (met_compose_calls_ != nullptr) met_compose_calls_->add(1);

  const GluingMatrix& f = ops_[op];
  const TypeNode& L = nodes_[left];
  const TypeNode& R = nodes_[right];
  if (L.rank != R.rank)
    throw std::invalid_argument("compose: rank mismatch");
  if (L.atoms.vars.size() != R.atoms.vars.size())
    throw std::invalid_argument("compose: slot count mismatch");
  const int p = static_cast<int>(L.atoms.vars.size());
  for (int s = 0; s < p; ++s)
    if (L.atoms.vars[s].sort != R.atoms.vars[s].sort)
      throw std::invalid_argument("compose: slot sort mismatch");

  const int tau_p = f.parent_tau();
  const int tau_l = L.atoms.tau, tau_r = R.atoms.tau;
  // retained[child terminal] = parent index or -1
  std::vector<int> retained_l(tau_l, -1), retained_r(tau_r, -1);
  for (int pr = 0; pr < tau_p; ++pr) {
    if (f.rows[pr][0] >= tau_l || f.rows[pr][1] >= tau_r)
      throw std::invalid_argument("compose: matrix/terminal mismatch");
    if (f.rows[pr][0] >= 0) retained_l[f.rows[pr][0]] = pr;
    if (f.rows[pr][1] >= 0) retained_r[f.rows[pr][1]] = pr;
  }

  auto fail = [&]() {
    invalid_compositions_.fetch_add(1, std::memory_order_relaxed);
    memo_store(key, kInvalidType);
    return kInvalidType;
  };

  // --- consistency on identified terminals (vertex slots) ---
  for (int pr = 0; pr < tau_p; ++pr) {
    const int cl = f.rows[pr][0], cr = f.rows[pr][1];
    if (cl < 0 || cr < 0) continue;
    for (int s = 0; s < p; ++s) {
      if (L.atoms.vars[s].sort != mso::Sort::VertexSet) continue;
      const bool inl = (L.atoms.vars[s].mask >> cl) & 1;
      const bool inr = (R.atoms.vars[s].mask >> cr) & 1;
      if (inl != inr) return fail();
    }
  }

  // --- parent terminal adjacency and shared-edge map ---
  TypeNode out;
  out.rank = L.rank;
  AtomicInfo& a = out.atoms;
  a.tau = static_cast<std::uint8_t>(tau_p);
  // shared[pair] = edge present in both children on identified pairs
  std::vector<bool> edge_l(tau_p * tau_p, false), edge_r(tau_p * tau_p, false);
  for (int i = 0; i < tau_p; ++i) {
    for (int j = i + 1; j < tau_p; ++j) {
      const int li = f.rows[i][0], lj = f.rows[j][0];
      const int ri = f.rows[i][1], rj = f.rows[j][1];
      bool el = false, er = false;
      if (li >= 0 && lj >= 0)
        el = (L.atoms.term_adj >> pair_index(li, lj, tau_l)) & 1;
      if (ri >= 0 && rj >= 0)
        er = (R.atoms.term_adj >> pair_index(ri, rj, tau_r)) & 1;
      if (el || er) a.term_adj |= 1ull << pair_index(i, j, tau_p);
      edge_l[i * tau_p + j] = el;
      edge_r[i * tau_p + j] = er;
    }
  }

  // --- consistency on shared edges (edge slots) ---
  for (int i = 0; i < tau_p; ++i) {
    for (int j = i + 1; j < tau_p; ++j) {
      if (!edge_l[i * tau_p + j] || !edge_r[i * tau_p + j]) continue;
      const int pl = pair_index(f.rows[i][0], f.rows[j][0], tau_l);
      const int pr2 = pair_index(f.rows[i][1], f.rows[j][1], tau_r);
      for (int s = 0; s < p; ++s) {
        if (L.atoms.vars[s].sort != mso::Sort::EdgeSet) continue;
        const bool inl = (L.atoms.vars[s].pair_mask >> pl) & 1;
        const bool inr = (R.atoms.vars[s].pair_mask >> pr2) & 1;
        if (inl != inr) return fail();
      }
    }
  }

  // --- per-slot composition ---
  a.vars.resize(p);
  for (int s = 0; s < p; ++s) {
    const VarAtoms& vl = L.atoms.vars[s];
    const VarAtoms& vr = R.atoms.vars[s];
    VarAtoms& v = a.vars[s];
    v.sort = vl.sort;
    v.labels = vl.labels | vr.labels;
    if (v.sort == mso::Sort::VertexSet) {
      for (int pr = 0; pr < tau_p; ++pr) {
        const int cl = f.rows[pr][0], cr = f.rows[pr][1];
        const bool in = cl >= 0 ? ((vl.mask >> cl) & 1) : ((vr.mask >> cr) & 1);
        if (in) v.mask |= 1u << pr;
      }
      int hidden = vl.hidden + vr.hidden;
      int cohidden = vl.cohidden + vr.cohidden;
      for (int i = 0; i < tau_l; ++i)
        if (retained_l[i] < 0) ((vl.mask >> i) & 1) ? ++hidden : ++cohidden;
      for (int j = 0; j < tau_r; ++j)
        if (retained_r[j] < 0) ((vr.mask >> j) & 1) ? ++hidden : ++cohidden;
      v.hidden = sat2(hidden);
      v.cohidden = sat1(cohidden);
      v.border = vl.border | vr.border;
    } else {
      for (int i = 0; i < tau_p; ++i) {
        for (int j = i + 1; j < tau_p; ++j) {
          bool in = false;
          if (edge_l[i * tau_p + j] &&
              ((vl.pair_mask >>
                pair_index(f.rows[i][0], f.rows[j][0], tau_l)) &
               1))
            in = true;
          if (edge_r[i * tau_p + j] &&
              ((vr.pair_mask >>
                pair_index(f.rows[i][1], f.rows[j][1], tau_r)) &
               1))
            in = true;
          if (in) v.pair_mask |= 1ull << pair_index(i, j, tau_p);
        }
      }
      int hidden = vl.hidden + vr.hidden;
      for (int i = 0; i < tau_l; ++i)
        for (int j = i + 1; j < tau_l; ++j)
          if (((vl.pair_mask >> pair_index(i, j, tau_l)) & 1) &&
              (retained_l[i] < 0 || retained_l[j] < 0))
            ++hidden;
      for (int i = 0; i < tau_r; ++i)
        for (int j = i + 1; j < tau_r; ++j)
          if (((vr.pair_mask >> pair_index(i, j, tau_r)) & 1) &&
              (retained_r[i] < 0 || retained_r[j] < 0))
            ++hidden;
      v.hidden = sat2(hidden);
    }
  }
  for (std::size_t s = 0; s < cfg_.free_modes.size(); ++s) {
    if (cfg_.free_modes[s] != ExtMode::SingletonOnly) continue;
    const VarAtoms& v = a.vars[s];
    const int visible = v.sort == mso::Sort::VertexSet
                            ? std::popcount(v.mask)
                            : std::popcount(v.pair_mask);
    if (visible + v.hidden > 1) return fail();
  }
  a.adjsets = L.atoms.adjsets | R.atoms.adjsets;
  a.incs = L.atoms.incs | R.atoms.incs;
  a.crosses = L.atoms.crosses | R.atoms.crosses;
  a.subsets = L.atoms.subsets & R.atoms.subsets;
  a.disjs = L.atoms.disjs & R.atoms.disjs;

  // --- extensions (Feferman-Vaught: valid pairwise compositions) ---
  if (L.rank > 0) {
    // Identified rows drive the consistency filter: group each side's
    // extensions by the trace of their vertex slots on identified
    // terminals, so only potentially-consistent pairs are composed.
    std::vector<std::array<int, 2>> id_rows;
    for (int pr = 0; pr < tau_p; ++pr)
      if (f.rows[pr][0] >= 0 && f.rows[pr][1] >= 0)
        id_rows.push_back({f.rows[pr][0], f.rows[pr][1]});
    auto signature = [&](TypeId t, int col) {
      const TypeNode& n = nodes_[t];
      std::uint64_t sig = 1469598103934665603ull;
      for (const auto& row : id_rows) {
        for (const VarAtoms& v : n.atoms.vars) {
          if (v.sort != mso::Sort::VertexSet) continue;
          sig = hash_mix(sig, (v.mask >> row[col]) & 1);
        }
      }
      return sig;
    };
    const int level = cfg_.rank - L.rank + 1;
    auto ext_size_ok = [&](TypeId t, ExtMode mode) {
      if (mode != ExtMode::SingletonOnly) return true;
      const TypeNode& n = nodes_[t];
      const VarAtoms& v = n.atoms.vars.back();  // the freshly added slot
      const int visible = v.sort == mso::Sort::VertexSet
                              ? std::popcount(v.mask)
                              : std::popcount(v.pair_mask);
      return visible + v.hidden <= 1;
    };
    auto combine = [&](const std::vector<TypeId>& lhs,
                       const std::vector<TypeId>& rhs, ExtMode mode,
                       std::vector<TypeId>& into) {
      std::unordered_map<std::uint64_t, std::vector<TypeId>> buckets;
      for (TypeId er : rhs) buckets[signature(er, 1)].push_back(er);
      for (TypeId el : lhs) {
        auto bucket = buckets.find(signature(el, 0));
        if (bucket == buckets.end()) continue;
        for (TypeId er : bucket->second) {
          const TypeId c = compose_by_id(op, el, er);
          if (c != kInvalidType && ext_size_ok(c, mode)) into.push_back(c);
        }
      }
      std::sort(into.begin(), into.end());
      into.erase(std::unique(into.begin(), into.end()), into.end());
    };
    // Copy the ext lists: recursion interns new nodes, and holding child
    // references across that would be fragile even though ChunkedVector
    // keeps published elements at stable addresses.
    const std::vector<TypeId> lv = L.vexts, rv = R.vexts;
    const std::vector<TypeId> le = L.eexts, re = R.eexts;
    combine(lv, rv, cfg_.vertex_mode.at(level), out.vexts);
    combine(le, re, cfg_.edge_mode.at(level), out.eexts);
  }

  prune(out.atoms);
  const TypeId id = intern(std::move(out));
  memo_store(key, id);
  return id;
}

std::uint64_t Engine::trace_signature(const GluingMatrix& f, TypeId t,
                                      int col) const {
  const TypeNode& n = nodes_.at(t);
  std::uint64_t sig = 1469598103934665603ull;
  for (const auto& row : f.rows) {
    if (row[0] < 0 || row[1] < 0) continue;  // not identified
    for (const VarAtoms& v : n.atoms.vars) {
      if (v.sort != mso::Sort::VertexSet) continue;
      sig = hash_mix(sig, (v.mask >> row[col]) & 1);
    }
  }
  return sig;
}

// --- Evaluator ---------------------------------------------------------------

Evaluator::Evaluator(Engine& engine, mso::FormulaPtr lowered,
                     std::vector<std::pair<std::string, mso::Sort>> free_vars)
    : engine_(engine),
      formula_(std::move(lowered)),
      free_vars_(std::move(free_vars)) {
  if (free_vars_.empty()) free_vars_ = mso::check_well_formed(*formula_);
  nodes_ = mso::subformulas(*formula_);
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i)
    index_of_[nodes_[i]] = i;
  const auto& cfg = engine_.config();
  for (int i = 0; i < static_cast<int>(cfg.vertex_labels.size()); ++i)
    vlabel_index_[cfg.vertex_labels[i]] = i;
  for (int i = 0; i < static_cast<int>(cfg.edge_labels.size()); ++i)
    elabel_index_[cfg.edge_labels[i]] = i;
}

bool Evaluator::eval(TypeId t) {
  const auto& cfg = engine_.config();
  if (free_vars_.size() > cfg.free_sorts.size())
    throw std::invalid_argument("Evaluator: more free variables than slots");
  std::map<std::string, int> slot_of;
  for (std::size_t i = 0; i < free_vars_.size(); ++i)
    slot_of[free_vars_[i].first] = static_cast<int>(i);
  return eval_node(t, 0, slot_of);
}

bool Evaluator::eval_node(TypeId t, int idx,
                          std::map<std::string, int>& slot_of) {
  const auto memo_key = std::make_pair(t, idx);
  auto it = memo_.find(memo_key);
  if (it != memo_.end()) return it->second;
  const mso::Formula& f = *nodes_[idx];
  const TypeNode& n = engine_.node(t);
  const AtomicInfo& a = n.atoms;
  auto slot = [&](const std::string& name) {
    auto sit = slot_of.find(name);
    if (sit == slot_of.end())
      throw std::invalid_argument("Evaluator: unbound variable '" + name + "'");
    return sit->second;
  };
  auto child_index = [&](const mso::Formula* child) {
    return index_of_.at(child);
  };
  auto set_size = [&](int s) {  // exact when < 2
    const VarAtoms& v = a.vars[s];
    const int visible = v.sort == mso::Sort::VertexSet
                            ? std::popcount(v.mask)
                            : std::popcount(v.pair_mask);
    return visible + v.hidden;
  };
  bool result = false;
  switch (f.kind) {
    case mso::Kind::True:
      result = true;
      break;
    case mso::Kind::False:
      result = false;
      break;
    case mso::Kind::Adjacent:
      result = (a.adjsets >> slot_bit(slot(f.a), slot(f.b))) & 1;
      break;
    case mso::Kind::Incident:
      result = (a.incs >> slot_bit(slot(f.a), slot(f.b))) & 1;
      break;
    case mso::Kind::Subset:
      result = (a.subsets >> slot_bit(slot(f.a), slot(f.b))) & 1;
      break;
    case mso::Kind::Disjoint:
      result = (a.disjs >> slot_bit(slot(f.a), slot(f.b))) & 1;
      break;
    case mso::Kind::Singleton:
      result = set_size(slot(f.a)) == 1;
      break;
    case mso::Kind::EmptySet:
      result = set_size(slot(f.a)) == 0;
      break;
    case mso::Kind::FullSet: {
      const VarAtoms& v = a.vars[slot(f.a)];
      const std::uint32_t all = a.tau >= 32 ? ~0u : (1u << a.tau) - 1;
      result = v.cohidden == 0 && v.mask == all;
      break;
    }
    case mso::Kind::Crossing:
      result = (a.crosses >> slot_bit(slot(f.a), slot(f.b))) & 1;
      break;
    case mso::Kind::Border:
      result = a.vars[slot(f.a)].border != 0;
      break;
    case mso::Kind::Label: {
      const VarAtoms& v = a.vars[slot(f.a)];
      const auto& index = v.sort == mso::Sort::EdgeSet ? elabel_index_
                                                       : vlabel_index_;
      auto lit = index.find(f.label);
      if (lit == index.end())
        throw std::logic_error("Evaluator: label not in engine config");
      result = (v.labels >> lit->second) & 1;
      break;
    }
    case mso::Kind::Not:
      result = !eval_node(t, child_index(f.left.get()), slot_of);
      break;
    case mso::Kind::And:
      result = eval_node(t, child_index(f.left.get()), slot_of) &&
               eval_node(t, child_index(f.right.get()), slot_of);
      break;
    case mso::Kind::Or:
      result = eval_node(t, child_index(f.left.get()), slot_of) ||
               eval_node(t, child_index(f.right.get()), slot_of);
      break;
    case mso::Kind::Implies:
      result = !eval_node(t, child_index(f.left.get()), slot_of) ||
               eval_node(t, child_index(f.right.get()), slot_of);
      break;
    case mso::Kind::Iff:
      result = eval_node(t, child_index(f.left.get()), slot_of) ==
               eval_node(t, child_index(f.right.get()), slot_of);
      break;
    case mso::Kind::Exists:
    case mso::Kind::Forall: {
      if (n.rank <= 0)
        throw std::logic_error("Evaluator: type rank too small for formula");
      const auto& exts =
          f.var_sort == mso::Sort::VertexSet ? n.vexts : n.eexts;
      if (f.var_sort == mso::Sort::VertexSet && !engine_.config().vertex_exts)
        throw std::logic_error("Evaluator: engine built without vertex exts");
      if (f.var_sort == mso::Sort::EdgeSet && !engine_.config().edge_exts)
        throw std::logic_error("Evaluator: engine built without edge exts");
      const int new_slot = static_cast<int>(a.vars.size());
      const auto prev = slot_of.find(f.var);
      const bool had = prev != slot_of.end();
      const int old = had ? prev->second : -1;
      slot_of[f.var] = new_slot;
      const bool want = f.kind == mso::Kind::Exists;
      bool found = false;
      const int body = child_index(f.left.get());
      for (TypeId ext : exts) {
        if (eval_node(ext, body, slot_of) == want) {
          found = true;
          break;
        }
      }
      if (had)
        slot_of[f.var] = old;
      else
        slot_of.erase(f.var);
      result = found == want;
      break;
    }
    default:
      throw std::logic_error(
          "Evaluator: formula contains non-lowered atomics (Member/Equal)");
  }
  memo_[memo_key] = result;
  return result;
}

}  // namespace dmc::bpt
