// The Borie-Parker-Tovey regularity engine (paper Definition 4.1 and
// Theorem 4.2), realized with hash-consed Ehrenfeucht-Fraissé types.
//
// A *type* of rank q for a w-terminal graph G with terminal list W and a
// tuple of set assignments X̄ consists of:
//   - an atomic table: everything needed to (a) evaluate quantifier-free
//     lowered formulas over X̄ and (b) define composition under gluing; and
//   - for q > 0, the set of rank-(q-1) types of all one-set extensions
//     (G, W, X̄·S), separately for vertex sets and edge sets.
//
// Types are interned: equal types get equal ids, so the homomorphism class
// h(G, X̄) of Definition 4.1 is simply the TypeId, and the update function
// ⊙_f is Engine::compose. Extensions are only ever *enumerated* on the two
// primitive graphs K1 (one terminal vertex) and K2 (one terminal edge);
// everything bigger is composed, which is what keeps the engine tractable.
//
// Correctness rests on the Feferman-Vaught style composition theorem: every
// set S over the glued graph splits uniquely into consistent child parts,
// so the extension set of a composition is exactly the set of valid
// pairwise compositions of child extensions. The test suite validates the
// whole pipeline against brute-force MSO semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bpt/gluing.hpp"
#include "mso/ast.hpp"
#include "par/chunked.hpp"

namespace dmc::metrics {
class Counter;  // src/metrics/metrics.hpp: aggregate counters/gauges
class Gauge;
}

namespace dmc::bpt {

using TypeId = std::int32_t;
inline constexpr TypeId kInvalidType = -1;

/// Hard limits of the packed atomic representation.
inline constexpr int kMaxTerminals = 11;  // pair bits fit in 64
inline constexpr int kMaxSlots = 8;       // pairwise bits fit in 64

/// Per-set-variable part of the atomic table.
struct VarAtoms {
  mso::Sort sort = mso::Sort::VertexSet;  // VertexSet or EdgeSet
  std::uint32_t mask = 0;       // vertex sets: trace X ∩ W (bit per terminal)
  std::uint64_t pair_mask = 0;  // edge sets: F ∩ E(G[W]) (bit per terminal pair)
  std::uint8_t hidden = 0;      // min(#members outside the visible trace, 2)
  std::uint8_t cohidden = 0;    // vertex sets: min(|V \ (X ∪ W)|, 1)
  std::uint8_t border = 0;      // vertex sets: some G-edge leaves X
  std::uint32_t labels = 0;     // bit l: some member carries label l

  bool operator==(const VarAtoms&) const = default;
};

/// Full atomic table of a type. Pairwise relations are packed as bit
/// (i * kMaxSlots + j).
struct AtomicInfo {
  std::uint8_t tau = 0;         // number of terminals
  std::uint64_t term_adj = 0;   // bit per terminal pair: edge present in G
  std::vector<VarAtoms> vars;   // one per slot
  std::uint64_t adjsets = 0;    // some edge joins members of slot i and slot j
  std::uint64_t subsets = 0;    // slot i ⊆ slot j (same sort)
  std::uint64_t disjs = 0;      // slot i ∩ slot j == ∅ (same sort)
  std::uint64_t incs = 0;       // some edge of F_j touches X_i
  std::uint64_t crosses = 0;    // some edge of F_i has exactly one end in X_j

  bool operator==(const AtomicInfo&) const = default;
};

/// Triangular index of the unordered terminal pair {i, j}, i < j < tau.
int pair_index(int i, int j, int tau);

/// Interned type node.
struct TypeNode {
  AtomicInfo atoms;
  std::int16_t rank = 0;
  std::vector<TypeId> vexts;  // sorted ids of vertex-set extensions
  std::vector<TypeId> eexts;  // sorted ids of edge-set extensions

  bool operator==(const TypeNode&) const = default;
};

/// The interner's structural hash (exposed for universe-cache index
/// rebuilding).
std::size_t hash_type_node(const TypeNode& n);

/// Which atomic-table features the formula can observe. Features the
/// formula never reads are canonicalized to zero in every type, which
/// collapses the reachable type universe dramatically (the observable
/// behaviour of Definition 4.1 is unchanged: pruned types still determine
/// the truth of the formula and still compose).
struct FeatureMask {
  std::uint8_t hidden_cap = 0;  // 2 if sing() occurs, else 1 if empty()
  bool full = false;            // cohidden tracked (full() occurs)
  bool border = false;
  bool adjsets = false;
  bool subsets = false;
  bool disjs = false;
  bool incs = false;
  bool crosses = false;
  bool term_adj = false;  // needed iff edge-set slots can exist
};

/// How extension sets are generated at one quantifier depth.
/// Lowered FO variables are singleton-guarded set quantifiers
/// (exists X. sing(X) & ..., forall X. sing(X) -> ...); when every
/// quantifier of a sort at some depth is guarded, extensions at that depth
/// only need sets of size <= 1, which collapses the type universe.
enum class ExtMode : std::uint8_t { None = 0, SingletonOnly = 1, Full = 2 };

/// Engine configuration, derived from a *lowered* formula.
struct EngineConfig {
  int rank = 0;
  std::vector<mso::Sort> free_sorts;        // slot sorts, in order
  std::vector<std::string> vertex_labels;   // label universe (bit order)
  std::vector<std::string> edge_labels;
  bool vertex_exts = false;  // formula quantifies vertex sets
  bool edge_exts = false;    // formula quantifies edge sets
  /// Extension mode per quantifier depth (index 1..rank; index 0 unused).
  std::vector<ExtMode> vertex_mode, edge_mode;
  /// Per-free-slot mode: SingletonOnly when the formula carries a top-level
  /// sing(var) conjunct, so assignments with |var| > 1 can never satisfy it
  /// and the DP tables may drop them (keeps COUNT tables small for the
  /// individual-variable counting problems of Section 6).
  std::vector<ExtMode> free_modes;
  FeatureMask features;
};

/// Builds a config for `lowered` whose free variables are `free_vars`
/// (slot order = order in `free_vars`). Throws if the formula is not in
/// set normal form or exceeds kMaxSlots.
EngineConfig config_for(const mso::Formula& lowered,
                        const std::vector<std::pair<std::string, mso::Sort>>&
                            free_vars = {});

/// Ablation helpers (see bench_ablation): disable the formula-driven
/// reductions, keeping the engine exact but larger/slower.
EngineConfig without_feature_pruning(EngineConfig cfg);
EngineConfig without_singleton_modes(EngineConfig cfg);

/// Assignment of the engine's free slots restricted to a primitive:
/// for K1, bit 0 of entry s says whether the vertex is in slot s;
/// for K2, vertex slots use bits 0 (smaller terminal) and 1 (larger),
/// edge slots use bit 0 for the edge.
using SlotBits = std::vector<std::uint8_t>;

class Engine {
 public:
  explicit Engine(EngineConfig cfg);

  /// Deep copy with fresh synchronization state (for per-task engines in
  /// parallel sweeps). Only safe while no other thread mutates `other`.
  explicit Engine(const Engine& other);
  Engine& operator=(const Engine&) = delete;

  const EngineConfig& config() const { return cfg_; }
  const TypeNode& node(TypeId t) const { return nodes_.at(t); }
  std::size_t num_types() const { return nodes_.size(); }

  /// Type of the one-vertex base graph. `vertex_label_bits` is the bitmask
  /// of the vertex's labels over cfg.vertex_labels.
  TypeId k1(std::uint32_t vertex_label_bits, const SlotBits& slots);

  /// Type of the one-edge base graph (two terminals: the smaller-id
  /// endpoint is terminal 0).
  TypeId k2(std::uint32_t label_bits_a, std::uint32_t label_bits_b,
            std::uint32_t edge_label_bits, const SlotBits& slots);

  /// Update function ⊙_f of Definition 4.1: type of the glued graph, or
  /// kInvalidType if the child assignments are inconsistent on identified
  /// terminals / shared edges.
  TypeId compose(const GluingMatrix& f, TypeId left, TypeId right);

  /// Number of distinct gluing matrices seen so far (for statistics).
  std::size_t num_ops() const { return ops_.size(); }

  /// Consistency signature of t's vertex-slot traces on the identified
  /// terminals of f (col 0 = left child, col 1 = right child). Types whose
  /// signatures differ can never compose consistently, so DP folds bucket
  /// table keys by this value to avoid quadratic pairing.
  std::uint64_t trace_signature(const GluingMatrix& f, TypeId t,
                                int col) const;

  struct Stats {
    long compose_calls = 0;  // non-memoized compose_by_id invocations
    long memo_hits = 0;
    long invalid_compositions = 0;
  };
  /// Snapshot of the (atomic) counters.
  Stats stats() const {
    return {compose_calls_.load(std::memory_order_relaxed),
            memo_hits_.load(std::memory_order_relaxed),
            invalid_compositions_.load(std::memory_order_relaxed)};
  }

  /// Safety valve: compose/primitive throw std::runtime_error once the
  /// interner holds more than this many types (the type universe of the
  /// meta-theorem is non-elementary in (w, rank); this turns runaway
  /// instances into clean errors instead of OOM).
  void set_type_limit(std::size_t limit) { type_limit_ = limit; }
  std::size_t type_limit() const { return type_limit_; }

  /// Versioned serialization of the interned tables for the persistent
  /// universe cache (defined in universe_cache.cpp). load_universe returns
  /// false — leaving the engine untouched — on a format-version, engine-
  /// version, config or checksum mismatch. Both require exclusive access.
  void save_universe(std::ostream& out) const;
  bool load_universe(std::istream& in);

 private:
  // Concurrency model: k1/k2/compose may be called from any number of
  // threads. The interner appends under a single append mutex (ids stay
  // equal to insertion order — the serial thread count reproduces the
  // legacy id sequence exactly), lookups go through 64 mutex-striped hash
  // buckets, and node storage is a ChunkedVector so published elements
  // have stable addresses and indexed reads take no lock. The compose
  // memo is mutex-striped and bounded (full stripes are cleared; a
  // recompute re-interns to the same id, so eviction never changes
  // results). No lock is ever held across compose/primitive recursion.
  static constexpr std::size_t kIndexStripes = 64;
  static constexpr std::size_t kMemoStripes = 64;
  static constexpr std::size_t kMemoStripeCap = 1 << 15;

  struct IndexStripe {
    std::mutex m;
    std::unordered_map<std::size_t, std::vector<TypeId>> buckets;
  };
  struct MemoStripe {
    std::mutex m;
    std::unordered_map<std::uint64_t, TypeId> map;
  };

  TypeId intern(TypeNode node);
  /// Resolves the aggregate-metrics handles (bpt.* instruments) against
  /// metrics::global(); all stay null — and every metrics branch is one
  /// pointer test — when no registry is installed.
  void resolve_metrics();
  void prune(AtomicInfo& atoms) const;
  TypeId primitive(bool is_k2, std::uint32_t la, std::uint32_t lb,
                   std::uint32_t le, const SlotBits& slots, int rank);
  int op_id(const GluingMatrix& f, int left_tau, int right_tau);
  TypeId compose_by_id(int op, TypeId left, TypeId right);
  void memo_store(std::uint64_t key, TypeId value);

  EngineConfig cfg_;
  par::ChunkedVector<TypeNode> nodes_;
  mutable std::mutex intern_mutex_;  // serializes appends / id assignment
  std::unique_ptr<IndexStripe[]> index_stripes_;
  par::ChunkedVector<GluingMatrix> ops_;
  mutable std::mutex ops_mutex_;
  std::map<GluingMatrix, int> op_index_;
  std::unique_ptr<MemoStripe[]> memo_stripes_;
  mutable std::mutex primitive_mutex_;
  std::map<std::tuple<bool, std::uint64_t, std::vector<std::uint8_t>, int>,
           TypeId>
      primitive_memo_;
  std::atomic<std::size_t> type_limit_{4'000'000};
  std::atomic<long> compose_calls_{0};
  std::atomic<long> memo_hits_{0};
  std::atomic<long> invalid_compositions_{0};
  // Aggregate metrics handles (see resolve_metrics).
  metrics::Counter* met_hashcons_hits_ = nullptr;
  metrics::Counter* met_hashcons_misses_ = nullptr;
  metrics::Gauge* met_types_ = nullptr;
  metrics::Counter* met_compose_calls_ = nullptr;
  metrics::Counter* met_memo_hits_ = nullptr;

  friend struct UniverseCacheAccess;
};

/// Evaluates a lowered formula against types of an engine, with
/// memoization. The formula's free variables must match the engine's slots
/// in order and sort.
class Evaluator {
 public:
  /// `free_vars` fixes the slot binding order of the formula's free
  /// variables (must match the engine config); when empty, first-occurrence
  /// order is used.
  Evaluator(Engine& engine, mso::FormulaPtr lowered,
            std::vector<std::pair<std::string, mso::Sort>> free_vars = {});

  /// Truth of the formula on the graph represented by `t` (whose slot
  /// assignment interprets the free variables).
  bool eval(TypeId t);

  const mso::Formula& formula() const { return *formula_; }

 private:
  bool eval_node(TypeId t, int formula_idx,
                 std::map<std::string, int>& slot_of);

  Engine& engine_;
  mso::FormulaPtr formula_;
  std::vector<std::pair<std::string, mso::Sort>> free_vars_;
  std::vector<const mso::Formula*> nodes_;
  std::map<const mso::Formula*, int> index_of_;
  std::map<std::pair<TypeId, int>, bool> memo_;
  std::map<std::string, int> vlabel_index_, elabel_index_;
};

}  // namespace dmc::bpt
