// Sorted flat-vector map used for the DP tables (OPT/ARGOPT/COUNT).
//
// The folds build tables keyed by interned TypeIds and then iterate them
// far more often than they mutate them (bucketing by trace signature,
// composing pairwise, encoding to the wire in key order). A sorted
// std::vector<pair> gives contiguous iteration and binary-search lookups,
// which is where std::map's pointer-chasing hurt (see bench_bpt_engine's
// fold-throughput microbench). Insertion keeps the vector sorted; the
// common append pattern (keys arriving in increasing order, e.g. wire
// decode) hits the push_back fast path.
//
// Iteration order is ascending key order — identical to std::map — so
// root tie-breaks and codec encode order are unchanged by the migration.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dmc::bpt {

template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return data_.begin(); }
  iterator end() { return data_.end(); }
  const_iterator begin() const { return data_.begin(); }
  const_iterator end() const { return data_.end(); }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

  iterator find(const K& key) {
    auto it = lower(key);
    return it != data_.end() && it->first == key ? it : data_.end();
  }
  const_iterator find(const K& key) const {
    auto it = lower(key);
    return it != data_.end() && it->first == key ? it : data_.end();
  }
  bool contains(const K& key) const { return find(key) != end(); }

  /// Value for `key`, default-constructed and inserted at its sorted
  /// position if absent (appends without a shift when keys arrive in
  /// increasing order).
  V& operator[](const K& key) {
    if (!data_.empty() && data_.back().first < key) {
      data_.emplace_back(key, V{});
      return data_.back().second;
    }
    auto it = lower(key);
    if (it == data_.end() || it->first != key)
      it = data_.emplace(it, key, V{});
    return it->second;
  }

  V& at(const K& key) {
    auto it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }
  const V& at(const K& key) const {
    auto it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }

  bool operator==(const FlatMap&) const = default;

 private:
  iterator lower(const K& key) {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  const_iterator lower(const K& key) const {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  std::vector<value_type> data_;
};

}  // namespace dmc::bpt
