#include "bpt/gluing.hpp"

#include <stdexcept>

namespace dmc::bpt {

void GluingMatrix::validate(int left_tau, int right_tau) const {
  std::vector<bool> used_left(left_tau, false), used_right(right_tau, false);
  for (const auto& row : rows) {
    if (row[0] < 0 && row[1] < 0)
      throw std::invalid_argument("GluingMatrix: empty row");
    if (row[0] >= left_tau || row[1] >= right_tau || row[0] < -1 || row[1] < -1)
      throw std::invalid_argument("GluingMatrix: child index out of range");
    if (row[0] >= 0) {
      if (used_left[row[0]])
        throw std::invalid_argument("GluingMatrix: left terminal reused");
      used_left[row[0]] = true;
    }
    if (row[1] >= 0) {
      if (used_right[row[1]])
        throw std::invalid_argument("GluingMatrix: right terminal reused");
      used_right[row[1]] = true;
    }
  }
}

GluingMatrix identity_gluing(int tau) {
  GluingMatrix m;
  m.rows.reserve(tau);
  for (int i = 0; i < tau; ++i) m.rows.push_back({i, i});
  return m;
}

}  // namespace dmc::bpt
