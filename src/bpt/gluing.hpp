// Gluing operations over w-terminal graphs (paper Section 3).
//
// A gluing matrix has one row per terminal of the composed graph; row r
// holds, for each of the two children, the index of the child terminal that
// is identified with parent terminal r, or -1 if the parent terminal does
// not come from that child (the paper's 0 entry). Every non-negative value
// appears at most once per column, and every row has at least one
// non-negative entry (the paper notes the 0/0 case never occurs in the
// construction).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dmc::bpt {

struct GluingMatrix {
  std::vector<std::array<int, 2>> rows;

  int parent_tau() const { return static_cast<int>(rows.size()); }

  /// Validates shape: unique child indices per column, no empty rows,
  /// child indices within [0, child_tau).
  void validate(int left_tau, int right_tau) const;

  auto operator<=>(const GluingMatrix&) const = default;
};

/// Identity gluing on tau terminals: both children fully overlap
/// (Eq. 2 of the paper, f_(Bu,Bu)).
GluingMatrix identity_gluing(int tau);

}  // namespace dmc::bpt
