#include "bpt/plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmc::bpt {

namespace {

int index_of(const std::vector<VertexId>& list, VertexId v) {
  auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it == list.end() || *it != v) return -1;
  return static_cast<int>(it - list.begin());
}

void check_sorted(const std::vector<VertexId>& bag) {
  if (bag.empty() || !std::is_sorted(bag.begin(), bag.end()) ||
      std::adjacent_find(bag.begin(), bag.end()) != bag.end())
    throw std::invalid_argument("plan: bag must be nonempty, sorted, unique");
}

int append_glue(Plan& plan, std::vector<VertexId> parent_terms, int left,
                int right) {
  PlanNode node;
  node.kind = PlanNode::Kind::Glue;
  node.op = matrix_for(parent_terms, plan.at(left).terminals,
                       plan.at(right).terminals);
  node.left = left;
  node.right = right;
  node.terminals = std::move(parent_terms);
  plan.nodes.push_back(std::move(node));
  return static_cast<int>(plan.nodes.size()) - 1;
}

}  // namespace

GluingMatrix matrix_for(const std::vector<VertexId>& parent,
                        const std::vector<VertexId>& left,
                        const std::vector<VertexId>& right) {
  GluingMatrix m;
  m.rows.reserve(parent.size());
  for (VertexId v : parent) {
    const int li = index_of(left, v);
    const int ri = index_of(right, v);
    if (li < 0 && ri < 0)
      throw std::invalid_argument(
          "matrix_for: parent terminal in neither child");
    m.rows.push_back({li, ri});
  }
  return m;
}

int append_base_bag(Plan& plan, const Graph& g,
                    const std::vector<VertexId>& bag) {
  check_sorted(bag);
  // Vertices, one at a time: prefix terminal lists.
  PlanNode first;
  first.kind = PlanNode::Kind::K1;
  first.v = bag[0];
  first.terminals = {bag[0]};
  plan.nodes.push_back(std::move(first));
  int cur = static_cast<int>(plan.nodes.size()) - 1;
  for (std::size_t k = 1; k < bag.size(); ++k) {
    PlanNode next;
    next.kind = PlanNode::Kind::K1;
    next.v = bag[k];
    next.terminals = {bag[k]};
    plan.nodes.push_back(std::move(next));
    const int k1 = static_cast<int>(plan.nodes.size()) - 1;
    std::vector<VertexId> prefix(bag.begin(), bag.begin() + k + 1);
    cur = append_glue(plan, std::move(prefix), cur, k1);
  }
  // Edges of G[bag].
  for (std::size_t i = 0; i < bag.size(); ++i) {
    for (std::size_t j = i + 1; j < bag.size(); ++j) {
      const EdgeId e = g.edge_id(bag[i], bag[j]);
      if (e < 0) continue;
      PlanNode k2;
      k2.kind = PlanNode::Kind::K2;
      k2.v = bag[i];
      k2.w = bag[j];
      k2.e = e;
      k2.terminals = {bag[i], bag[j]};
      plan.nodes.push_back(std::move(k2));
      const int idx = static_cast<int>(plan.nodes.size()) - 1;
      cur = append_glue(plan, bag, cur, idx);
    }
  }
  return cur;
}

int append_eq12(Plan& plan, const Graph& g, const std::vector<VertexId>& bag,
                const std::vector<int>& child_nodes) {
  check_sorted(bag);
  const int base = append_base_bag(plan, g, bag);
  if (child_nodes.empty()) return base;
  int acc = -1;
  for (int child : child_nodes) {
    // Eq. 1: G^{=i} = f(G_{v_i}, G^base), terminals = bag.
    const int eq = append_glue(plan, bag, child, base);
    // Eq. 2: chain with identity gluing.
    acc = acc < 0 ? eq : append_glue(plan, bag, acc, eq);
  }
  return acc;
}

Plan build_node_plan(const Graph& g, const std::vector<VertexId>& bag,
                     const std::vector<std::vector<VertexId>>& child_bags) {
  Plan plan;
  std::vector<int> children;
  for (const auto& cb : child_bags) {
    check_sorted(cb);
    PlanNode in;
    in.kind = PlanNode::Kind::Input;
    in.input = plan.num_inputs++;
    in.terminals = cb;
    plan.nodes.push_back(std::move(in));
    children.push_back(static_cast<int>(plan.nodes.size()) - 1);
  }
  plan.root = append_eq12(plan, g, bag, children);
  return plan;
}

Plan build_global_plan(const Graph& g, const TreeDecomposition& td) {
  if (!td.valid_for(g))
    throw std::invalid_argument("build_global_plan: invalid tree decomposition");
  Plan plan;
  const auto order = td.topological_order();
  const auto kids = td.children();
  std::vector<int> node_of(td.num_nodes(), -1);
  // bottom-up: reverse topological order
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int u = *it;
    std::vector<int> child_nodes;
    for (int c : kids[u]) child_nodes.push_back(node_of[c]);
    node_of[u] = append_eq12(plan, g, td.bags[u], child_nodes);
  }
  // Combine decomposition roots (disconnected graphs): keep the first
  // root's terminals and forget the rest.
  int acc = -1;
  for (int u = 0; u < td.num_nodes(); ++u) {
    if (td.parent[u] >= 0) continue;
    if (acc < 0) {
      acc = node_of[u];
    } else {
      acc = append_glue(plan, plan.at(acc).terminals, acc, node_of[u]);
    }
  }
  if (acc < 0) throw std::invalid_argument("build_global_plan: empty decomposition");
  plan.root = acc;
  return plan;
}

}  // namespace dmc::bpt
