// Gluing plans: compiled w-terminal recursive constructions (paper
// Section 3, Eq. 1 and Eq. 2).
//
// A plan is a DAG of plan nodes, each denoting a w-terminal graph:
//   - K1: one terminal vertex of the host graph;
//   - K2: one edge with its two endpoints as terminals;
//   - Glue: composition f(left, right) under a gluing matrix;
//   - Input: a placeholder standing for an externally-supplied w-terminal
//     graph (used by the distributed protocols, where a node receives the
//     homomorphism classes of its children's subtrees as messages and
//     composes them locally).
//
// Every node records its ordered terminal list as concrete vertex ids
// (ascending). A bag's base graph G^base is itself compiled from K1/K2
// primitives, so type extensions never enumerate more than 2 vertices.
#pragma once

#include <vector>

#include "bpt/gluing.hpp"
#include "graph/graph.hpp"
#include "td/tree_decomposition.hpp"

namespace dmc::bpt {

struct PlanNode {
  enum class Kind { K1, K2, Glue, Input };
  Kind kind = Kind::K1;
  VertexId v = -1;  // K1 vertex; K2 smaller endpoint
  VertexId w = -1;  // K2 larger endpoint
  EdgeId e = -1;    // K2 edge id in the host graph
  int input = -1;   // Input ordinal
  int left = -1, right = -1;  // Glue children (plan node indices)
  GluingMatrix op;            // Glue matrix
  std::vector<VertexId> terminals;  // ascending vertex ids
};

struct Plan {
  std::vector<PlanNode> nodes;
  int root = -1;
  int num_inputs = 0;

  const PlanNode& at(int i) const { return nodes.at(i); }
};

/// Gluing matrix identifying equal ids: row per parent terminal, mapping to
/// its position in each child terminal list (-1 when absent).
GluingMatrix matrix_for(const std::vector<VertexId>& parent,
                        const std::vector<VertexId>& left,
                        const std::vector<VertexId>& right);

/// Appends the base graph G[bag] (bag = ascending vertex ids, nonempty)
/// built from K1/K2 primitives; returns its plan-node index.
int append_base_bag(Plan& plan, const Graph& g,
                    const std::vector<VertexId>& bag);

/// Appends the Eq. 1 / Eq. 2 composition for one decomposition node: glues
/// each child (given as an existing plan node whose terminals are the child
/// bag) with the bag's base graph, then chains with identity gluings.
/// Returns the node index representing G_u with terminal set `bag`.
int append_eq12(Plan& plan, const Graph& g, const std::vector<VertexId>& bag,
                const std::vector<int>& child_nodes);

/// Plan for one decomposition node with Input placeholders for the children
/// (input i has terminals child_bags[i]); used by the distributed protocol.
Plan build_node_plan(const Graph& g, const std::vector<VertexId>& bag,
                     const std::vector<std::vector<VertexId>>& child_bags);

/// Plan for the whole graph along a (validated) rooted tree decomposition.
/// Multiple decomposition roots (disconnected graphs) are combined by
/// forgetting gluings. The final terminals are the first root's bag.
Plan build_global_plan(const Graph& g, const TreeDecomposition& td);

}  // namespace dmc::bpt
