#include "bpt/tables.hpp"

#include <bit>
#include <unordered_map>

#include <stdexcept>

#include "metrics/metrics.hpp"
#include "obs/clock.hpp"
#include "par/pool.hpp"

namespace dmc::bpt {

namespace {

/// Charges the wall time of one whole-graph fold (serial or parallel) to
/// bpt.fold.wall_ns and counts it in bpt.folds. Inert (one null check)
/// without a global metrics registry.
class FoldTimer {
 public:
  FoldTimer() {
    metrics::Registry* const reg = metrics::global();
    if (reg == nullptr) return;
    wall_ = &reg->counter("bpt.fold.wall_ns");
    reg->counter("bpt.folds").add(1);
    t0_us_ = obs::now_us();  // the seam, so tests can fake fold timing
  }
  ~FoldTimer() {
    if (wall_ != nullptr) wall_->add((obs::now_us() - t0_us_) * 1000);
  }
  FoldTimer(const FoldTimer&) = delete;
  FoldTimer& operator=(const FoldTimer&) = delete;

 private:
  metrics::Counter* wall_ = nullptr;
  long long t0_us_ = 0;
};

/// Enumerates the per-slot membership choices of a primitive: K1 vertex
/// slots have 2, K2 vertex slots 4, edge slots 1 or 2. Calls fn(SlotBits).
template <typename Fn>
void for_each_assignment(const EngineConfig& cfg, bool is_k2, Fn&& fn) {
  const int p = static_cast<int>(cfg.free_sorts.size());
  SlotBits bits(p, 0);
  auto rec = [&](auto&& self, int s) -> void {
    if (s == p) {
      fn(bits);
      return;
    }
    const bool edge_sort = cfg.free_sorts[s] == mso::Sort::EdgeSet;
    const int limit = edge_sort ? (is_k2 ? 2 : 1) : (is_k2 ? 4 : 2);
    const bool singleton_only =
        s < static_cast<int>(cfg.free_modes.size()) &&
        cfg.free_modes[s] == ExtMode::SingletonOnly;
    for (int b = 0; b < limit; ++b) {
      if (singleton_only && std::popcount(static_cast<unsigned>(b)) > 1)
        continue;
      bits[s] = static_cast<std::uint8_t>(b);
      self(self, s + 1);
    }
  };
  rec(rec, 0);
}

std::uint32_t labels_of(const Engine& engine, const Graph& g, VertexId v) {
  return vertex_label_bits(engine, g, v);
}

}  // namespace

std::uint32_t vertex_label_bits(const Engine& engine, const Graph& g,
                                VertexId v) {
  std::uint32_t bits = 0;
  const auto& names = engine.config().vertex_labels;
  for (std::size_t i = 0; i < names.size(); ++i)
    if (g.vertex_has_label(names[i], v)) bits |= 1u << i;
  return bits;
}

std::uint32_t edge_label_bits(const Engine& engine, const Graph& g, EdgeId e) {
  std::uint32_t bits = 0;
  const auto& names = engine.config().edge_labels;
  for (std::size_t i = 0; i < names.size(); ++i)
    if (g.edge_has_label(names[i], e)) bits |= 1u << i;
  return bits;
}

namespace {

TypeId fold_type_serial(Engine& engine, const Plan& plan, const Graph& g,
                        std::span<const TypeId> inputs) {
  if (!engine.config().free_sorts.empty())
    throw std::invalid_argument("fold_type: engine must have no free slots");
  std::vector<TypeId> value(plan.nodes.size(), kInvalidType);
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& pn = plan.nodes[i];
    switch (pn.kind) {
      case PlanNode::Kind::K1:
        value[i] = engine.k1(labels_of(engine, g, pn.v), {});
        break;
      case PlanNode::Kind::K2:
        value[i] = engine.k2(labels_of(engine, g, pn.v),
                             labels_of(engine, g, pn.w),
                             edge_label_bits(engine, g, pn.e), {});
        break;
      case PlanNode::Kind::Glue:
        value[i] = engine.compose(pn.op, value[pn.left], value[pn.right]);
        if (value[i] == kInvalidType)
          throw std::logic_error("fold_type: inconsistent composition");
        break;
      case PlanNode::Kind::Input:
        if (pn.input >= static_cast<int>(inputs.size()))
          throw std::invalid_argument("fold_type: missing input class");
        value[i] = inputs[pn.input];
        break;
    }
  }
  return value[plan.root];
}

}  // namespace

TypeId fold_type(Engine& engine, const Plan& plan, const Graph& g,
                 std::span<const TypeId> inputs) {
  FoldTimer timer;
  return fold_type_serial(engine, plan, g, inputs);
}

TypeId fold_type_parallel(Engine& engine, const Plan& plan, const Graph& g,
                          int threads, std::span<const TypeId> inputs) {
  FoldTimer timer;
  if (threads == 1) return fold_type_serial(engine, plan, g, inputs);
  if (!engine.config().free_sorts.empty())
    throw std::invalid_argument("fold_type: engine must have no free slots");
  const std::size_t n = plan.nodes.size();
  // Topological levels: level(node) = 1 + max(level(children)); plan order
  // guarantees children precede parents, so one forward pass suffices.
  std::vector<int> level(n, 0);
  int max_level = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const PlanNode& pn = plan.nodes[i];
    if (pn.kind == PlanNode::Kind::Glue)
      level[i] = 1 + std::max(level[pn.left], level[pn.right]);
    max_level = std::max(max_level, level[i]);
  }
  std::vector<std::vector<std::size_t>> by_level(max_level + 1);
  for (std::size_t i = 0; i < n; ++i) by_level[level[i]].push_back(i);

  std::vector<TypeId> value(n, kInvalidType);
  auto fold_one = [&](std::size_t i) {
    const PlanNode& pn = plan.nodes[i];
    switch (pn.kind) {
      case PlanNode::Kind::K1:
        value[i] = engine.k1(labels_of(engine, g, pn.v), {});
        break;
      case PlanNode::Kind::K2:
        value[i] = engine.k2(labels_of(engine, g, pn.v),
                             labels_of(engine, g, pn.w),
                             edge_label_bits(engine, g, pn.e), {});
        break;
      case PlanNode::Kind::Glue:
        value[i] = engine.compose(pn.op, value[pn.left], value[pn.right]);
        if (value[i] == kInvalidType)
          throw std::logic_error("fold_type: inconsistent composition");
        break;
      case PlanNode::Kind::Input:
        if (pn.input >= static_cast<int>(inputs.size()))
          throw std::invalid_argument("fold_type: missing input class");
        value[i] = inputs[pn.input];
        break;
    }
  };
  for (const auto& nodes : by_level)
    par::parallel_for(threads, nodes.size(),
                      [&](std::size_t k) { fold_one(nodes[k]); });
  return value[plan.root];
}

TypeId fold_assigned_type(Engine& engine, const Plan& plan, const Graph& g,
                          const std::vector<bool>& vertex_in,
                          const std::vector<bool>& edge_in,
                          std::span<const TypeId> inputs) {
  if (engine.config().free_sorts.size() != 1)
    throw std::invalid_argument("fold_assigned_type: one free slot required");
  const bool vertex_sort =
      engine.config().free_sorts[0] == mso::Sort::VertexSet;
  auto vin = [&](VertexId v) {
    return vertex_sort && v < static_cast<VertexId>(vertex_in.size()) &&
           vertex_in[v];
  };
  auto ein = [&](EdgeId e) {
    return !vertex_sort && e < static_cast<EdgeId>(edge_in.size()) &&
           edge_in[e];
  };
  std::vector<TypeId> value(plan.nodes.size(), kInvalidType);
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& pn = plan.nodes[i];
    switch (pn.kind) {
      case PlanNode::Kind::K1:
        value[i] = engine.k1(labels_of(engine, g, pn.v),
                             {static_cast<std::uint8_t>(vin(pn.v) ? 1 : 0)});
        break;
      case PlanNode::Kind::K2: {
        std::uint8_t bits = 0;
        if (vertex_sort)
          bits = static_cast<std::uint8_t>((vin(pn.v) ? 1 : 0) |
                                           (vin(pn.w) ? 2 : 0));
        else
          bits = ein(pn.e) ? 1 : 0;
        value[i] = engine.k2(labels_of(engine, g, pn.v),
                             labels_of(engine, g, pn.w),
                             edge_label_bits(engine, g, pn.e), {bits});
        break;
      }
      case PlanNode::Kind::Glue:
        value[i] = engine.compose(pn.op, value[pn.left], value[pn.right]);
        if (value[i] == kInvalidType)
          throw std::logic_error("fold_assigned_type: inconsistent composition");
        break;
      case PlanNode::Kind::Input:
        if (pn.input >= static_cast<int>(inputs.size()))
          throw std::invalid_argument("fold_assigned_type: missing input");
        value[i] = inputs[pn.input];
        break;
    }
  }
  return value[plan.root];
}

// --- OptSolver ----------------------------------------------------------------

OptSolver::OptSolver(Engine& engine, const Plan& plan, const Graph& g,
                     std::vector<OptTable> input_tables)
    : engine_(engine), plan_(plan), g_(g), inputs_(std::move(input_tables)) {
  if (engine_.config().free_sorts.size() != 1)
    throw std::invalid_argument("OptSolver: exactly one free slot required");
  tables_.resize(plan_.nodes.size());
  backs_.resize(plan_.nodes.size());
  for (std::size_t i = 0; i < plan_.nodes.size(); ++i)
    solve(static_cast<int>(i));
}

Weight OptSolver::glue_overlap(const PlanNode& pn, TypeId left,
                               TypeId right) const {
  const mso::Sort sort = engine_.config().free_sorts[0];
  const TypeNode& L = engine_.node(left);
  const TypeNode& R = engine_.node(right);
  const int tau_p = pn.op.parent_tau();
  Weight overlap = 0;
  if (sort == mso::Sort::VertexSet) {
    for (int r = 0; r < tau_p; ++r) {
      const int cl = pn.op.rows[r][0], cr = pn.op.rows[r][1];
      if (cl < 0 || cr < 0) continue;
      if ((L.atoms.vars[0].mask >> cl) & 1)  // == right bit by consistency
        overlap += g_.vertex_weight(pn.terminals[r]);
    }
  } else {
    const int tau_l = L.atoms.tau, tau_r = R.atoms.tau;
    for (int i = 0; i < tau_p; ++i) {
      for (int j = i + 1; j < tau_p; ++j) {
        const int li = pn.op.rows[i][0], lj = pn.op.rows[j][0];
        const int ri = pn.op.rows[i][1], rj = pn.op.rows[j][1];
        if (li < 0 || lj < 0 || ri < 0 || rj < 0) continue;
        const bool el = (L.atoms.term_adj >> pair_index(li, lj, tau_l)) & 1;
        const bool er = (R.atoms.term_adj >> pair_index(ri, rj, tau_r)) & 1;
        if (!el || !er) continue;  // edge must exist on both sides
        if ((L.atoms.vars[0].pair_mask >> pair_index(li, lj, tau_l)) & 1) {
          const EdgeId e = g_.edge_id(pn.terminals[i], pn.terminals[j]);
          if (e < 0)
            throw std::logic_error("OptSolver: shared edge not in host graph");
          overlap += g_.edge_weight(e);
        }
      }
    }
  }
  return overlap;
}

void OptSolver::solve(int node) {
  const PlanNode& pn = plan_.nodes[node];
  OptTable& table = tables_[node];
  auto& back = backs_[node];
  const mso::Sort sort = engine_.config().free_sorts[0];
  auto update = [&](TypeId t, Weight w, Back b) {
    auto it = table.find(t);
    if (it == table.end() || w > it->second) {
      table[t] = w;
      back[t] = b;
    }
  };
  switch (pn.kind) {
    case PlanNode::Kind::K1:
      for_each_assignment(engine_.config(), false, [&](const SlotBits& bits) {
        const TypeId t = engine_.k1(labels_of(engine_, g_, pn.v), bits);
        const Weight w = (sort == mso::Sort::VertexSet && (bits[0] & 1))
                             ? g_.vertex_weight(pn.v)
                             : 0;
        update(t, w, Back{bits[0], kInvalidType, kInvalidType});
      });
      break;
    case PlanNode::Kind::K2:
      for_each_assignment(engine_.config(), true, [&](const SlotBits& bits) {
        const TypeId t =
            engine_.k2(labels_of(engine_, g_, pn.v), labels_of(engine_, g_, pn.w),
                       edge_label_bits(engine_, g_, pn.e), bits);
        Weight w = 0;
        if (sort == mso::Sort::VertexSet) {
          if (bits[0] & 1) w += g_.vertex_weight(pn.v);
          if (bits[0] & 2) w += g_.vertex_weight(pn.w);
        } else if (bits[0] & 1) {
          w += g_.edge_weight(pn.e);
        }
        update(t, w, Back{bits[0], kInvalidType, kInvalidType});
      });
      break;
    case PlanNode::Kind::Glue: {
      std::unordered_map<std::uint64_t, std::vector<TypeId>> buckets;
      for (const auto& [tr, wr] : tables_[pn.right])
        buckets[engine_.trace_signature(pn.op, tr, 1)].push_back(tr);
      for (const auto& [tl, wl] : tables_[pn.left]) {
        auto bucket = buckets.find(engine_.trace_signature(pn.op, tl, 0));
        if (bucket == buckets.end()) continue;
        for (TypeId tr : bucket->second) {
          const TypeId t = engine_.compose(pn.op, tl, tr);
          if (t == kInvalidType) continue;
          const Weight w =
              wl + tables_[pn.right].at(tr) - glue_overlap(pn, tl, tr);
          update(t, w, Back{0, tl, tr});
        }
      }
      break;
    }
    case PlanNode::Kind::Input: {
      if (pn.input >= static_cast<int>(inputs_.size()))
        throw std::invalid_argument("OptSolver: missing input table");
      for (const auto& [t, w] : inputs_[pn.input])
        update(t, w, Back{});
      break;
    }
  }
}

OptSolver::Solution OptSolver::reconstruct(TypeId root_choice) const {
  Solution sol;
  sol.vertices.assign(g_.num_vertices(), false);
  sol.edges.assign(g_.num_edges(), false);
  sol.input_choices.assign(plan_.num_inputs, kInvalidType);
  const mso::Sort sort = engine_.config().free_sorts[0];
  auto walk = [&](auto&& self, int node, TypeId t) -> void {
    const PlanNode& pn = plan_.nodes[node];
    auto it = backs_[node].find(t);
    if (it == backs_[node].end())
      throw std::invalid_argument("OptSolver::reconstruct: class not in table");
    const Back& b = it->second;
    switch (pn.kind) {
      case PlanNode::Kind::K1:
        if (sort == mso::Sort::VertexSet && (b.slot_bits & 1))
          sol.vertices[pn.v] = true;
        break;
      case PlanNode::Kind::K2:
        if (sort == mso::Sort::VertexSet) {
          if (b.slot_bits & 1) sol.vertices[pn.v] = true;
          if (b.slot_bits & 2) sol.vertices[pn.w] = true;
        } else if (b.slot_bits & 1) {
          sol.edges[pn.e] = true;
        }
        break;
      case PlanNode::Kind::Glue:
        self(self, pn.left, b.left);
        self(self, pn.right, b.right);
        break;
      case PlanNode::Kind::Input:
        sol.input_choices[pn.input] = t;
        break;
    }
  };
  walk(walk, plan_.root, root_choice);
  return sol;
}

// --- counting ------------------------------------------------------------------

std::vector<CountTable> fold_count(Engine& engine, const Plan& plan,
                                   const Graph& g,
                                   std::vector<CountTable> input_tables) {
  std::vector<CountTable> tables(plan.nodes.size());
  auto add = [](CountTable& t, TypeId id, std::uint64_t c) {
    std::uint64_t& slot = t[id];
    if (__builtin_add_overflow(slot, c, &slot))
      throw std::overflow_error("fold_count: counter overflow");
  };
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& pn = plan.nodes[i];
    CountTable& table = tables[i];
    switch (pn.kind) {
      case PlanNode::Kind::K1:
        for_each_assignment(engine.config(), false, [&](const SlotBits& bits) {
          add(table, engine.k1(labels_of(engine, g, pn.v), bits), 1);
        });
        break;
      case PlanNode::Kind::K2:
        for_each_assignment(engine.config(), true, [&](const SlotBits& bits) {
          add(table,
              engine.k2(labels_of(engine, g, pn.v), labels_of(engine, g, pn.w),
                        edge_label_bits(engine, g, pn.e), bits),
              1);
        });
        break;
      case PlanNode::Kind::Glue: {
        std::unordered_map<std::uint64_t, std::vector<TypeId>> buckets;
        for (const auto& [tr, cr] : tables[pn.right])
          buckets[engine.trace_signature(pn.op, tr, 1)].push_back(tr);
        for (const auto& [tl, cl] : tables[pn.left]) {
          auto bucket = buckets.find(engine.trace_signature(pn.op, tl, 0));
          if (bucket == buckets.end()) continue;
          for (TypeId tr : bucket->second) {
            const TypeId t = engine.compose(pn.op, tl, tr);
            if (t == kInvalidType) continue;
            std::uint64_t prod = 0;
            if (__builtin_mul_overflow(cl, tables[pn.right].at(tr), &prod))
              throw std::overflow_error("fold_count: counter overflow");
            add(table, t, prod);
          }
        }
        break;
      }
      case PlanNode::Kind::Input:
        if (pn.input >= static_cast<int>(input_tables.size()))
          throw std::invalid_argument("fold_count: missing input table");
        table = input_tables[pn.input];
        break;
    }
  }
  return tables;
}

std::vector<VertexId> selected_vertices(const Engine& engine, TypeId c,
                                        const std::vector<VertexId>& terminals,
                                        int slot) {
  const TypeNode& n = engine.node(c);
  const VarAtoms& v = n.atoms.vars.at(slot);
  if (v.sort != mso::Sort::VertexSet)
    throw std::invalid_argument("selected_vertices: slot is not a vertex set");
  std::vector<VertexId> out;
  for (int i = 0; i < n.atoms.tau; ++i)
    if ((v.mask >> i) & 1) out.push_back(terminals.at(i));
  return out;
}

std::vector<EdgeId> selected_edges(const Engine& engine, const Graph& g,
                                   TypeId c,
                                   const std::vector<VertexId>& terminals,
                                   int slot) {
  const TypeNode& n = engine.node(c);
  const VarAtoms& v = n.atoms.vars.at(slot);
  if (v.sort != mso::Sort::EdgeSet)
    throw std::invalid_argument("selected_edges: slot is not an edge set");
  std::vector<EdgeId> out;
  const int tau = n.atoms.tau;
  for (int i = 0; i < tau; ++i)
    for (int j = i + 1; j < tau; ++j)
      if ((v.pair_mask >> pair_index(i, j, tau)) & 1) {
        const EdgeId e = g.edge_id(terminals.at(i), terminals.at(j));
        if (e < 0)
          throw std::logic_error("selected_edges: pair not a host edge");
        out.push_back(e);
      }
  return out;
}

}  // namespace dmc::bpt
