// Dynamic-programming folds over gluing plans: the computational content of
// Algorithm 1 in the paper (decision, optimization with OPT/ARGOPT tables,
// and counting; Lemmas 4.3, 4.6 and the counting extension of Section 6).
//
// The same folds serve the sequential algorithms (fold the global plan) and
// the distributed protocols (each node folds its local plan, with Input
// placeholders carrying the children's tables received as messages).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bpt/engine.hpp"
#include "bpt/flat_map.hpp"
#include "bpt/plan.hpp"
#include "graph/graph.hpp"

namespace dmc::bpt {

/// Homomorphism class of the plan's root (decision problems: no free
/// slots). `inputs` supplies the class of each Input placeholder.
TypeId fold_type(Engine& engine, const Plan& plan, const Graph& g,
                 std::span<const TypeId> inputs = {});

/// fold_type with the plan's independent nodes evaluated concurrently
/// (topological levels: Glue children always precede their parent, so a
/// level is every node whose children are already folded). The engine's
/// interner is thread-safe; the resulting root class is identical to
/// fold_type's — only TypeId numbering may differ between thread counts.
/// threads <= 1 is exactly fold_type.
TypeId fold_type_parallel(Engine& engine, const Plan& plan, const Graph& g,
                          int threads, std::span<const TypeId> inputs = {});

// --- optimization (one free set slot) ----------------------------------------

/// OPT table of Definition 4.5: per homomorphism class, the max total weight
/// of an assignment of the free slot with that class (classes without
/// assignments are absent rather than -infinity). Stored as a sorted flat
/// vector — iteration order (ascending TypeId) matches the old std::map.
using OptTable = FlatMap<TypeId, Weight>;

/// Optimization fold with ARGOPT backpointers for solution reconstruction
/// (Lemma 4.6 / the top-down phase of Algorithm 1).
class OptSolver {
 public:
  /// Engine must have exactly one free slot. Inputs are the tables of Input
  /// placeholders in `plan`, by ordinal.
  OptSolver(Engine& engine, const Plan& plan, const Graph& g,
            std::vector<OptTable> input_tables = {});

  /// OPT table of a plan node (after construction, tables are final).
  const OptTable& table(int node) const { return tables_.at(node); }
  const OptTable& root_table() const { return tables_.at(plan_.root); }

  struct Solution {
    std::vector<bool> vertices;       // selected vertices (size n)
    std::vector<bool> edges;          // selected edges (size m)
    std::vector<TypeId> input_choices;  // chosen class per Input placeholder
  };

  /// Reconstructs an optimal assignment whose root class is `root_choice`
  /// (must be present in the root table). Elements introduced by Input
  /// placeholders are *not* marked here; their chosen classes are reported
  /// in `input_choices` (the distributed protocol forwards them down the
  /// tree, Algorithm 1 lines 11-26).
  Solution reconstruct(TypeId root_choice) const;

 private:
  struct Back {
    std::uint8_t slot_bits = 0;        // K1/K2: membership bits
    TypeId left = kInvalidType, right = kInvalidType;  // Glue
  };

  void solve(int node);
  Weight glue_overlap(const PlanNode& pn, TypeId left, TypeId right) const;

  Engine& engine_;
  const Plan& plan_;
  const Graph& g_;
  std::vector<OptTable> inputs_;
  std::vector<OptTable> tables_;                  // per plan node
  std::vector<FlatMap<TypeId, Back>> backs_;      // per plan node
};

// --- counting (any number of free slots) --------------------------------------

using CountTable = FlatMap<TypeId, std::uint64_t>;

/// COUNT table: per class, the number of assignments of the free slots with
/// that class (Section 6, counting). Throws on std::uint64_t overflow.
std::vector<CountTable> fold_count(Engine& engine, const Plan& plan,
                                   const Graph& g,
                                   std::vector<CountTable> input_tables = {});

/// Class of the plan root under a *fixed* assignment of one free slot
/// (vertex or edge set given by membership flags over the host graph's
/// ids). Used by the optmarked protocol (Section 6): the marked set's own
/// class is folded bottom-up alongside the OPT tables.
TypeId fold_assigned_type(Engine& engine, const Plan& plan, const Graph& g,
                          const std::vector<bool>& vertex_in,
                          const std::vector<bool>& edge_in,
                          std::span<const TypeId> inputs = {});

// --- Selected(c, W) (remark after Definition 4.1) ----------------------------

/// Vertices of the terminal list selected by slot `slot` in class `c`.
std::vector<VertexId> selected_vertices(const Engine& engine, TypeId c,
                                        const std::vector<VertexId>& terminals,
                                        int slot);

/// Edges (as host edge ids) among the terminals selected by edge-sort slot
/// `slot` in class `c`.
std::vector<EdgeId> selected_edges(const Engine& engine, const Graph& g,
                                   TypeId c,
                                   const std::vector<VertexId>& terminals,
                                   int slot);

/// Label bitmask of a vertex over the engine's vertex-label universe.
std::uint32_t vertex_label_bits(const Engine& engine, const Graph& g,
                                VertexId v);
std::uint32_t edge_label_bits(const Engine& engine, const Graph& g, EdgeId e);

}  // namespace dmc::bpt
