// Universe-cache serialization (see universe_cache.hpp for the format and
// invalidation story). Engine::save_universe / load_universe live here so
// engine.cpp stays purely about type algebra.
#include "bpt/universe_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <tuple>
#include <vector>

#include "metrics/metrics.hpp"

namespace dmc::bpt {

namespace {

constexpr char kMagic[4] = {'D', 'M', 'C', 'U'};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

// Checksumming byte sinks/sources over iostreams. The checksum is FNV-1a
// over every payload byte, written last and verified on read.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) sum_ = (sum_ ^ b[i]) * 0x100000001b3ull;
    out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  }
  template <typename T>
  void pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(v));
  }
  void u32(std::uint32_t v) { pod(v); }
  void u64(std::uint64_t v) { pod(v); }
  std::uint64_t sum() const { return sum_; }
  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ostream& out_;
  std::uint64_t sum_ = 0xcbf29ce484222325ull;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  bool bytes(void* p, std::size_t n) {
    in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (!in_) return false;
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) sum_ = (sum_ ^ b[i]) * 0x100000001b3ull;
    return true;
  }
  template <typename T>
  bool pod(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return bytes(&v, sizeof(v));
  }
  std::uint64_t sum() const { return sum_; }

 private:
  std::istream& in_;
  std::uint64_t sum_ = 0xcbf29ce484222325ull;
};

// Serialized collection sizes are sanity-bounded so a corrupted length
// field cannot drive a multi-gigabyte allocation before the checksum
// check has a chance to run.
constexpr std::uint64_t kMaxCount = 1ull << 26;

void put_ids(Writer& w, const std::vector<TypeId>& ids) {
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (TypeId t : ids) w.pod(t);
}

bool get_ids(Reader& r, std::vector<TypeId>& ids, std::size_t max_id) {
  std::uint32_t n = 0;
  if (!r.pod(n) || n > kMaxCount) return false;
  ids.resize(n);
  for (auto& t : ids) {
    if (!r.pod(t)) return false;
    if (t < 0 || static_cast<std::size_t>(t) >= max_id) return false;
  }
  return true;
}

void put_node(Writer& w, const TypeNode& n) {
  w.pod(n.rank);
  const AtomicInfo& a = n.atoms;
  w.pod(a.tau);
  w.u64(a.term_adj);
  w.u64(a.adjsets);
  w.u64(a.subsets);
  w.u64(a.disjs);
  w.u64(a.incs);
  w.u64(a.crosses);
  w.u32(static_cast<std::uint32_t>(a.vars.size()));
  for (const VarAtoms& v : a.vars) {
    w.pod(static_cast<std::uint8_t>(v.sort));
    w.u32(v.mask);
    w.u64(v.pair_mask);
    w.pod(v.hidden);
    w.pod(v.cohidden);
    w.pod(v.border);
    w.u32(v.labels);
  }
  put_ids(w, n.vexts);
  put_ids(w, n.eexts);
}

bool get_node(Reader& r, TypeNode& n, std::size_t max_id) {
  AtomicInfo& a = n.atoms;
  std::uint32_t vars = 0;
  if (!r.pod(n.rank) || !r.pod(a.tau) || !r.pod(a.term_adj) ||
      !r.pod(a.adjsets) || !r.pod(a.subsets) || !r.pod(a.disjs) ||
      !r.pod(a.incs) || !r.pod(a.crosses) || !r.pod(vars))
    return false;
  if (vars > kMaxSlots) return false;
  a.vars.resize(vars);
  for (VarAtoms& v : a.vars) {
    std::uint8_t sort = 0;
    if (!r.pod(sort) || !r.pod(v.mask) || !r.pod(v.pair_mask) ||
        !r.pod(v.hidden) || !r.pod(v.cohidden) || !r.pod(v.border) ||
        !r.pod(v.labels))
      return false;
    v.sort = static_cast<mso::Sort>(sort);
  }
  return get_ids(r, n.vexts, max_id) && get_ids(r, n.eexts, max_id);
}

void hash_strings(std::uint64_t& h, const std::vector<std::string>& v) {
  h = mix(h, v.size());
  for (const std::string& s : v) {
    h = mix(h, s.size());
    for (char c : s) h = mix(h, static_cast<unsigned char>(c));
  }
}

}  // namespace

std::uint64_t config_hash(const EngineConfig& cfg) {
  std::uint64_t h = 1469598103934665603ull;
  h = mix(h, cfg.rank);
  h = mix(h, cfg.free_sorts.size());
  for (mso::Sort s : cfg.free_sorts) h = mix(h, static_cast<int>(s));
  hash_strings(h, cfg.vertex_labels);
  hash_strings(h, cfg.edge_labels);
  h = mix(h, (cfg.vertex_exts ? 2 : 0) | (cfg.edge_exts ? 1 : 0));
  for (const auto* modes : {&cfg.vertex_mode, &cfg.edge_mode, &cfg.free_modes}) {
    h = mix(h, modes->size());
    for (ExtMode m : *modes) h = mix(h, static_cast<int>(m));
  }
  const FeatureMask& fm = cfg.features;
  h = mix(h, (static_cast<std::uint64_t>(fm.hidden_cap) << 8) |
                 (fm.full << 7) | (fm.border << 6) | (fm.adjsets << 5) |
                 (fm.subsets << 4) | (fm.disjs << 3) | (fm.incs << 2) |
                 (fm.crosses << 1) | static_cast<std::uint64_t>(fm.term_adj));
  return h;
}

std::string default_universe_cache_dir() {
  if (const char* dir = std::getenv("DMC_CACHE_DIR")) return dir;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"))
    return std::string(xdg) + "/dmc";
  if (const char* home = std::getenv("HOME"))
    return std::string(home) + "/.cache/dmc";
  return {};
}

std::string universe_cache_path(const std::string& dir,
                                const std::string& formula_text,
                                const EngineConfig& cfg) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : formula_text) h = mix(h, static_cast<unsigned char>(c));
  h = mix(h, config_hash(cfg));
  h = mix(h, kEngineCacheVersion);
  char name[64];
  std::snprintf(name, sizeof(name), "universe-%016llx.dmcu",
                static_cast<unsigned long long>(h));
  return dir + "/" + name;
}

void Engine::save_universe(std::ostream& out) const {
  Writer w(out);
  out.write(kMagic, sizeof(kMagic));
  w.u32(kUniverseCacheFormatVersion);
  w.u32(kEngineCacheVersion);
  w.u64(config_hash(cfg_));

  const std::size_t n = nodes_.size();
  w.u64(n);
  for (std::size_t i = 0; i < n; ++i) put_node(w, nodes_[i]);

  const std::size_t nops = ops_.size();
  w.u64(nops);
  for (std::size_t i = 0; i < nops; ++i) {
    const GluingMatrix& f = ops_[i];
    w.u32(static_cast<std::uint32_t>(f.rows.size()));
    for (const auto& row : f.rows) {
      w.pod(row[0]);
      w.pod(row[1]);
    }
  }

  w.u64(primitive_memo_.size());
  for (const auto& [key, id] : primitive_memo_) {
    w.pod(static_cast<std::uint8_t>(std::get<0>(key)));
    w.u64(std::get<1>(key));
    const auto& slots = std::get<2>(key);
    w.u32(static_cast<std::uint32_t>(slots.size()));
    for (std::uint8_t s : slots) w.pod(s);
    w.pod(std::get<3>(key));
    w.pod(id);
  }

  std::uint64_t memo_entries = 0;
  for (std::size_t s = 0; s < kMemoStripes; ++s)
    memo_entries += memo_stripes_[s].map.size();
  w.u64(memo_entries);
  for (std::size_t s = 0; s < kMemoStripes; ++s)
    for (const auto& [key, id] : memo_stripes_[s].map) {
      w.u64(key);
      w.pod(id);
    }

  const std::uint64_t sum = w.sum();
  out.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
}

bool Engine::load_universe(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  Reader r(in);
  std::uint32_t format = 0, engine_version = 0;
  std::uint64_t cfg_hash = 0;
  if (!r.pod(format) || !r.pod(engine_version) || !r.pod(cfg_hash))
    return false;
  if (format != kUniverseCacheFormatVersion ||
      engine_version != kEngineCacheVersion || cfg_hash != config_hash(cfg_))
    return false;

  std::uint64_t n = 0;
  if (!r.pod(n) || n > kMaxCount) return false;
  std::vector<TypeNode> nodes(n);
  for (std::uint64_t i = 0; i < n; ++i)
    if (!get_node(r, nodes[i], n)) return false;

  std::uint64_t nops = 0;
  if (!r.pod(nops) || nops > kMaxCount) return false;
  std::vector<GluingMatrix> ops(nops);
  for (auto& f : ops) {
    std::uint32_t rows = 0;
    if (!r.pod(rows) || rows > kMaxTerminals) return false;
    f.rows.resize(rows);
    for (auto& row : f.rows)
      if (!r.pod(row[0]) || !r.pod(row[1])) return false;
  }

  std::uint64_t nprim = 0;
  if (!r.pod(nprim) || nprim > kMaxCount) return false;
  decltype(primitive_memo_) prim;
  for (std::uint64_t i = 0; i < nprim; ++i) {
    std::uint8_t is_k2 = 0;
    std::uint64_t desc = 0;
    std::uint32_t nslots = 0;
    if (!r.pod(is_k2) || !r.pod(desc) || !r.pod(nslots) ||
        nslots > kMaxSlots + 1u)
      return false;
    std::vector<std::uint8_t> slots(nslots);
    for (auto& s : slots)
      if (!r.pod(s)) return false;
    int rank = 0;
    TypeId id = 0;
    if (!r.pod(rank) || !r.pod(id)) return false;
    if (id < 0 || static_cast<std::uint64_t>(id) >= n) return false;
    prim[std::make_tuple(is_k2 != 0, desc, std::move(slots), rank)] = id;
  }

  std::uint64_t nmemo = 0;
  if (!r.pod(nmemo) || nmemo > kMaxCount) return false;
  std::vector<std::pair<std::uint64_t, TypeId>> memo(nmemo);
  for (auto& [key, id] : memo) {
    if (!r.pod(key) || !r.pod(id)) return false;
    if (id != kInvalidType &&
        (id < 0 || static_cast<std::uint64_t>(id) >= n))
      return false;
  }

  const std::uint64_t computed = r.sum();
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in || stored != computed) return false;

  // Everything validated: install and rebuild the derived indices.
  nodes_.clear();
  for (std::size_t s = 0; s < kIndexStripes; ++s)
    index_stripes_[s].buckets.clear();
  for (auto& node : nodes) {
    const std::size_t h = hash_type_node(node);
    const TypeId id = static_cast<TypeId>(nodes_.size());
    nodes_.push_back(std::move(node));
    index_stripes_[h % kIndexStripes].buckets[h].push_back(id);
  }
  ops_.clear();
  op_index_.clear();
  for (auto& f : ops) {
    const int id = static_cast<int>(ops_.size());
    op_index_[f] = id;
    ops_.push_back(std::move(f));
  }
  primitive_memo_ = std::move(prim);
  for (std::size_t s = 0; s < kMemoStripes; ++s) memo_stripes_[s].map.clear();
  for (const auto& [key, id] : memo) {
    auto& stripe = memo_stripes_[(key * 0x9e3779b97f4a7c15ull) >> 58];
    if (stripe.map.size() < kMemoStripeCap) stripe.map[key] = id;
  }
  return true;
}

bool load_universe_cache(Engine& engine, const std::string& path) {
  auto note = [](const char* name) {
    if (metrics::Registry* const reg = metrics::global())
      reg->counter(name).add(1);
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    note("bpt.universe_cache.misses");
    return false;
  }
  // A readable file that fails validation (stale version/config/checksum)
  // counts as a miss too: the caller recomputes either way.
  const bool ok = engine.load_universe(in);
  note(ok ? "bpt.universe_cache.hits" : "bpt.universe_cache.misses");
  return ok;
}

bool save_universe_cache(const Engine& engine, const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target(path);
  if (target.has_parent_path())
    fs::create_directories(target.parent_path(), ec);
  fs::path tmp = target;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    engine.save_universe(out);
    out.flush();  // surface ENOSPC-style errors before the rename commits
    if (!out) {
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace dmc::bpt
