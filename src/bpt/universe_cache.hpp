// Persistent on-disk cache of the BPT type universe.
//
// The universe depends only on the engine configuration — itself a pure
// function of the lowered formula and the slot layout (Theorem 4.2's
// computability claim) — so repeated runs of the same (φ, w) workload can
// skip universe construction entirely. A cache file holds a versioned
// binary serialization of the interned type table, the gluing-operation
// table, and both memo tables:
//
//   magic "DMCU" | format version | engine version | config hash
//   | type nodes | gluing ops | primitive memo | compose memo | checksum
//
// Invalidation is by construction: the file name and the embedded config
// hash both derive from (formula text hash, config hash, engine version),
// so a different formula, width, slot layout, pruning mask, or engine
// release simply misses. Stale-version or corrupted files (bad magic,
// short read, checksum mismatch) fail load_universe_cache, which leaves
// the engine untouched — callers then rebuild and overwrite. Writes go to
// a temp file in the same directory followed by an atomic rename, so a
// crashed writer never publishes a torn file.
//
// Integers are serialized in host byte order: the cache is a per-machine
// artifact (like a compiler cache), not an interchange format.
#pragma once

#include <cstdint>
#include <string>

#include "bpt/engine.hpp"

namespace dmc::bpt {

/// Bump when the serialized layout changes.
inline constexpr std::uint32_t kUniverseCacheFormatVersion = 1;
/// Bump when engine semantics change (type contents, pruning, hashing):
/// caches written by older engines must be rejected.
inline constexpr std::uint32_t kEngineCacheVersion = 1;

/// Structural hash of everything that determines the type universe.
std::uint64_t config_hash(const EngineConfig& cfg);

/// Default cache directory: $DMC_CACHE_DIR, else $XDG_CACHE_HOME/dmc,
/// else $HOME/.cache/dmc, else "" (caching disabled).
std::string default_universe_cache_dir();

/// File path (inside `dir`) keyed by (formula text, config, engine
/// version). `formula_text` should be the printed lowered formula.
std::string universe_cache_path(const std::string& dir,
                                const std::string& formula_text,
                                const EngineConfig& cfg);

/// Loads the universe into a freshly-constructed engine (same config).
/// Returns false — engine untouched — if the file is missing, stale,
/// corrupted, or was written for a different config.
bool load_universe_cache(Engine& engine, const std::string& path);

/// Serializes the engine's tables to `path` (atomic write+rename,
/// creating `dir` if needed). Returns false on IO failure.
bool save_universe_cache(const Engine& engine, const std::string& path);

}  // namespace dmc::bpt
