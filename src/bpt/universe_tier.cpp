// Single-flight shared universe tier (see universe_tier.hpp).
#include "bpt/universe_tier.hpp"

#include "bpt/universe_cache.hpp"
#include "metrics/metrics.hpp"
#include "obs/clock.hpp"

namespace dmc::bpt {

UniverseTier::UniverseTier(Options opts) : opts_(std::move(opts)) {
  if (metrics::Registry* const reg = metrics::global()) {
    met_hits_ = &reg->counter("bpt.universe_tier.hits");
    met_misses_ = &reg->counter("bpt.universe_tier.misses");
    met_waits_ = &reg->counter("bpt.universe_tier.waits");
    met_builds_ = &reg->counter("bpt.universe_tier.builds");
    met_disk_hits_ = &reg->counter("bpt.universe_tier.disk_hits");
    met_saves_ = &reg->counter("bpt.universe_tier.saves");
    met_persist_errors_ = &reg->counter("bpt.universe_tier.persist_errors");
    met_keys_ = &reg->gauge("bpt.universe_tier.keys");
  }
}

UniverseTier::Lease UniverseTier::acquire(const std::string& formula_text,
                                          const EngineConfig& cfg) {
  // The tier key doubles as the DMCU path when disk-backed; in-memory
  // tiers use the same name under a fixed pseudo-directory so one formula
  // maps to one slot either way.
  const std::string key = universe_cache_path(
      opts_.disk_dir.empty() ? "<mem>" : opts_.disk_dir, formula_text, cfg);

  std::unique_lock lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    it = slots_.emplace(key, std::make_shared<Slot>()).first;
    if (met_keys_) met_keys_->set(static_cast<long long>(slots_.size()));
  }
  const std::shared_ptr<Slot> slot = it->second;

  bool waited = false;
  const long long wait_start = obs::now_ms();
  while (slot->building || slot->saving) {
    waited = true;
    cv_.wait(lock);
  }
  if (waited) {
    ++stats_.waits;
    if (met_waits_) met_waits_->add(1);
  }

  Lease lease;
  lease.key = key;
  lease.wait_ms = waited ? obs::now_ms() - wait_start : 0;
  if (slot->engine) {
    ++stats_.hits;
    if (met_hits_) met_hits_->add(1);
    lease.engine = slot->engine;
    lease.warm = true;
    ++slot->active;
    return lease;
  }

  // Single flight: this thread builds; the flag parks later arrivals on
  // cv_ until the engine is published (or the build failed).
  slot->building = true;
  lock.unlock();
  std::shared_ptr<Engine> engine;
  bool disk_hit = false;
  const long long build_start = obs::now_ms();
  try {
    engine = std::make_shared<Engine>(cfg);
    if (!opts_.disk_dir.empty())
      disk_hit = load_universe_cache(*engine, key);
  } catch (...) {
    lock.lock();
    slot->building = false;
    cv_.notify_all();
    throw;
  }
  lock.lock();
  slot->engine = engine;
  slot->building = false;
  slot->saved_types = disk_hit ? engine->num_types() : 0;
  slot->path = opts_.disk_dir.empty() ? std::string() : key;
  ++stats_.misses;
  if (met_misses_) met_misses_->add(1);
  if (disk_hit) {
    ++stats_.disk_hits;
    if (met_disk_hits_) met_disk_hits_->add(1);
  } else {
    ++stats_.builds;
    if (met_builds_) met_builds_->add(1);
  }
  ++slot->active;
  cv_.notify_all();
  lease.engine = engine;
  lease.disk_hit = disk_hit;
  lease.build_ms = obs::now_ms() - build_start;
  return lease;
}

void UniverseTier::release(const Lease& lease) {
  if (!lease.engine) return;
  std::unique_lock lock(mu_);
  const auto it = slots_.find(lease.key);
  if (it == slots_.end()) return;
  const std::shared_ptr<Slot> slot = it->second;
  if (slot->active > 0) --slot->active;
  if (slot->active != 0 || slot->path.empty() ||
      slot->engine->num_types() == slot->saved_types)
    return;

  // Write-back with exclusive access: `saving` parks new acquirers of
  // this key (save_universe iterates the tables it snapshots), the tier
  // lock is dropped so other keys proceed.
  slot->saving = true;
  const std::shared_ptr<Engine> engine = slot->engine;
  const std::size_t types = engine->num_types();
  lock.unlock();
  bool saved = false;
  const long long persist_start = obs::now_ms();
  try {
    saved = save_universe_cache(*engine, slot->path);
  } catch (...) {
    saved = false;  // persist failure must never escape release()
  }
  const long long persist_ms = obs::now_ms() - persist_start;
  lock.lock();
  slot->saving = false;
  stats_.persist_ms += persist_ms;
  if (saved) {
    slot->saved_types = types;
    ++stats_.saves;
    if (met_saves_) met_saves_->add(1);
  } else {
    // Degrade the key to in-memory: the engine stays fully usable, and
    // dropping the backing path stops every later release from hammering
    // an unwritable directory. save_universe_cache is temp+rename, so no
    // partial DMCU file exists after a failure.
    slot->path.clear();
    ++stats_.persist_errors;
    if (met_persist_errors_) met_persist_errors_->add(1);
  }
  cv_.notify_all();
}

UniverseTier::Stats UniverseTier::stats() const {
  std::lock_guard lock(mu_);
  Stats s = stats_;
  s.keys = slots_.size();
  return s;
}

}  // namespace dmc::bpt
