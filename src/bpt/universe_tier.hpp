// Shared in-process tier over the persistent universe cache.
//
// The DMCU files (universe_cache.hpp) make *repeated processes* warm; this
// tier makes *concurrent queries inside one process* warm. It maps the
// cache key — (printed lowered formula, engine config) — to one live
// Engine shared by every acquirer, with single-flight construction: when N
// threads ask for a missing key simultaneously, exactly one constructs the
// engine (warm-loading the DMCU backing file when one exists and is
// valid), the other N-1 block until it is published, and nobody ever
// observes a half-loaded engine. This is the concurrency hardening the
// serving scheduler relies on: Engine::load_universe requires exclusive
// access, so unsynchronized "each thread loads its own copy" either races
// or double-constructs.
//
// Lifecycle contract: acquire() returns a Lease whose engine may be used
// (k1/k2/compose are thread-safe) until the matching release(). release()
// of the last active lease write-back-persists the engine to its DMCU
// file when the interner grew since the last save — new acquirers of the
// key briefly block while the snapshot is taken, because save_universe
// also requires exclusive access. Holding the raw engine pointer past
// release() forfeits that exclusion and is undefined.
//
// Write-back failures (unwritable directory, disk full, rename failure)
// degrade the key to in-memory: the engine stays fully usable, the
// backing path is dropped so a sick disk is not hammered on every
// release, and bpt.universe_tier.persist_errors counts the degradation.
// save_universe_cache is temp+rename, so a failed write-back never
// leaves a partial DMCU file behind.
//
// Metrics (registry optional, resolved at construction — the Engine
// pattern): bpt.universe_tier.{hits,misses,waits,builds,disk_hits,saves,
// persist_errors} counters and the bpt.universe_tier.keys gauge.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "bpt/engine.hpp"

namespace dmc::bpt {

class UniverseTier {
 public:
  struct Options {
    /// Directory of DMCU backing files; "" = purely in-memory tier.
    std::string disk_dir;
  };

  explicit UniverseTier(Options opts = {});
  UniverseTier(const UniverseTier&) = delete;
  UniverseTier& operator=(const UniverseTier&) = delete;

  /// A checked-out engine. `warm` says the engine already lived in the
  /// tier; `disk_hit` says this call's construction loaded a DMCU file.
  /// The millisecond stamps (obs::now_ms) feed the serving layer's
  /// per-query span breakdown: `wait_ms` is time parked behind another
  /// builder/saver, `build_ms` is this call's own construct/disk-load
  /// time (0 on a warm hit).
  struct Lease {
    std::shared_ptr<Engine> engine;
    std::string key;  // tier key (also the DMCU file path when backed)
    bool warm = false;
    bool disk_hit = false;
    long long wait_ms = 0;
    long long build_ms = 0;
  };

  /// Returns the shared engine for the key derived from `formula_text`
  /// (the printed lowered formula, as for universe_cache_path) and `cfg`.
  /// Single-flight: concurrent acquirers of one missing key perform one
  /// construction between them.
  Lease acquire(const std::string& formula_text, const EngineConfig& cfg);

  /// Returns the lease. The last releaser persists the engine to disk if
  /// the tier is disk-backed and the type table grew since the last save.
  void release(const Lease& lease);

  /// Aggregate view for tests and the `metrics` verb.
  struct Stats {
    long hits = 0;       // key was ready on arrival
    long misses = 0;     // this acquire constructed the engine
    long waits = 0;      // acquires that blocked on another builder/saver
    long builds = 0;     // constructions that found no valid DMCU file
    long disk_hits = 0;  // constructions warm-loaded from DMCU
    long saves = 0;      // write-backs performed by release()
    long persist_errors = 0;  // failed write-backs (key degraded to memory)
    long long persist_ms = 0;  // total wall ms spent in write-backs
    std::size_t keys = 0;
  };
  Stats stats() const;

 private:
  struct Slot {
    std::shared_ptr<Engine> engine;  // null until published
    bool building = false;
    bool saving = false;
    int active = 0;                  // outstanding leases
    std::size_t saved_types = 0;     // num_types at the last disk save
    std::string path;                // DMCU backing file ("" = none)
  };

  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  Stats stats_;
  // Resolved once against metrics::global(); all null when disabled.
  metrics::Counter* met_hits_ = nullptr;
  metrics::Counter* met_misses_ = nullptr;
  metrics::Counter* met_waits_ = nullptr;
  metrics::Counter* met_builds_ = nullptr;
  metrics::Counter* met_disk_hits_ = nullptr;
  metrics::Counter* met_saves_ = nullptr;
  metrics::Counter* met_persist_errors_ = nullptr;
  metrics::Gauge* met_keys_ = nullptr;
};

}  // namespace dmc::bpt
