#include "churn/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "dist/bags.hpp"
#include "dist/optimization.hpp"
#include "dist/optmarked.hpp"
#include "metrics/metrics.hpp"
#include "mso/lower.hpp"

namespace dmc::churn {

namespace {

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const char* to_string(Pipeline pipeline) {
  switch (pipeline) {
    case Pipeline::kDecision: return "decision";
    case Pipeline::kCount: return "count";
    case Pipeline::kMaximize: return "maximize";
    case Pipeline::kMinimize: return "minimize";
    case Pipeline::kOptMarked: return "optmarked";
  }
  return "?";
}

const char* to_string(StepStatus status) {
  switch (status) {
    case StepStatus::kRefolded: return "refolded";
    case StepStatus::kRebuilt: return "rebuilt";
    case StepStatus::kRecomputed: return "recomputed";
    case StepStatus::kDegraded: return "degraded";
  }
  return "?";
}

std::uint64_t VerdictSummary::digest(Pipeline pipeline) const {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv_mix(h, static_cast<std::uint64_t>(pipeline));
  h = fnv_mix(h, treedepth_exceeded ? 1 : 0);
  if (treedepth_exceeded) return h;  // no verdict fields to compare
  switch (pipeline) {
    case Pipeline::kDecision:
      h = fnv_mix(h, holds ? 1 : 0);
      break;
    case Pipeline::kCount:
      h = fnv_mix(h, count);
      break;
    case Pipeline::kMaximize:
    case Pipeline::kMinimize:
      h = fnv_mix(h, feasible ? 1 : 0);
      h = fnv_mix(h, static_cast<std::uint64_t>(best_weight));
      break;
    case Pipeline::kOptMarked:
      h = fnv_mix(h, satisfies ? 1 : 0);
      h = fnv_mix(h, is_optimal ? 1 : 0);
      h = fnv_mix(h, static_cast<std::uint64_t>(marked_weight));
      h = fnv_mix(h, static_cast<std::uint64_t>(best_weight));
      break;
  }
  return h;
}

std::vector<dist::LocalBag> bags_for_tree(
    const congest::Network& net, const dist::ElimTreeResult& tree,
    const std::vector<std::string>& vlabel_names,
    const std::vector<std::string>& elabel_names) {
  if (!tree.success)
    throw std::invalid_argument("churn::bags_for_tree: tree invalid");
  const Graph& g = net.graph();
  const int n = g.num_vertices();
  auto vbits = [&](VertexId v) {
    std::uint32_t bits = 0;
    for (std::size_t i = 0; i < vlabel_names.size(); ++i)
      if (g.vertex_has_label(vlabel_names[i], v)) bits |= 1u << i;
    return bits;
  };
  auto ebits = [&](EdgeId e) {
    std::uint32_t bits = 0;
    for (std::size_t i = 0; i < elabel_names.size(); ++i)
      if (g.edge_has_label(elabel_names[i], e)) bits |= 1u << i;
    return bits;
  };
  std::vector<dist::LocalBag> bags(n);
  std::vector<int> path;
  for (int v = 0; v < n; ++v) {
    path.clear();
    for (int x = v; x >= 0; x = tree.parent[x]) path.push_back(x);
    std::sort(path.begin(), path.end(), [&](int a, int b) {
      return net.id_of_vertex(a) < net.id_of_vertex(b);
    });
    dist::LocalBag& b = bags[v];
    for (int x : path) {
      b.bag.push_back(net.id_of_vertex(x));
      b.weights.push_back(g.vertex_weight(x));
      b.vlabel_bits.push_back(vbits(x));
    }
    for (std::size_t i = 0; i < path.size(); ++i) {
      for (std::size_t j = i + 1; j < path.size(); ++j) {
        const EdgeId e = g.edge_id(path[i], path[j]);
        if (e < 0) continue;
        dist::LocalBag::BagEdge edge;
        edge.i = static_cast<int>(i);
        edge.j = static_cast<int>(j);
        edge.weight = g.edge_weight(e);
        edge.elabel_bits = ebits(e);
        b.edges.push_back(edge);
      }
    }
  }
  return bags;
}

ChurnEngine::ChurnEngine(Graph g, Query query, Options opts)
    : graph_(std::move(g)), query_(std::move(query)), opts_(std::move(opts)) {
  switch (query_.pipeline) {
    case Pipeline::kDecision: {
      const mso::FormulaPtr lowered = mso::lower(query_.formula);
      engine_.emplace(bpt::config_for(*lowered));
      break;
    }
    case Pipeline::kCount: {
      const mso::FormulaPtr lowered = mso::lower(query_.formula, query_.vars);
      engine_.emplace(bpt::config_for(*lowered, query_.vars));
      break;
    }
    case Pipeline::kMaximize:
    case Pipeline::kMinimize: {
      const std::vector<std::pair<std::string, mso::Sort>> frees{
          {query_.var, query_.var_sort}};
      const mso::FormulaPtr lowered = mso::lower(query_.formula, frees);
      engine_.emplace(bpt::config_for(*lowered, frees));
      break;
    }
    case Pipeline::kOptMarked:
      break;  // run_optmarked_solve builds its own engine each epoch
  }
  if (query_.pipeline == Pipeline::kOptMarked) {
    std::tie(vlabels_, elabels_) =
        dist::optmarked_labels(query_.formula, query_.var, query_.var_sort);
  } else {
    vlabels_ = engine_->config().vertex_labels;
    elabels_ = engine_->config().edge_labels;
  }
  invalidate_caches();
}

ChurnEngine::~ChurnEngine() = default;

congest::NetworkConfig ChurnEngine::solve_config() const { return opts_.net; }

namespace {
metrics::Registry* registry_of(const congest::NetworkConfig& cfg) {
  return cfg.metrics != nullptr ? cfg.metrics : metrics::global();
}
void bump(const congest::NetworkConfig& cfg, const char* name) {
  if (metrics::Registry* r = registry_of(cfg)) r->counter(name).add(1);
}
}  // namespace

void ChurnEngine::invalidate_caches() {
  const int n = graph_.num_vertices();
  dcache_.classes.assign(n, bpt::kInvalidType);
  dcache_.refold.assign(n, 1);
  ccache_.tables.assign(n, bpt::CountTable{});
  ccache_.valid.assign(n, 0);
  ccache_.refold.assign(n, 1);
  net_ids_.assign(n, -1);
}

void ChurnEngine::remap_caches(const std::vector<VertexId>& old_to_new,
                               int new_n) {
  const std::size_t old_n = old_to_new.size();
  dist::DecisionCache nd;
  nd.classes.assign(new_n, bpt::kInvalidType);
  nd.refold.assign(new_n, 1);  // new vertices always refold
  if (dcache_.classes.size() == old_n && dcache_.refold.size() == old_n) {
    for (std::size_t ov = 0; ov < old_n; ++ov) {
      const VertexId nv = old_to_new[ov];
      if (nv < 0) continue;
      nd.classes[nv] = dcache_.classes[ov];
      // A refold flag left set by a degraded epoch means "still stale":
      // it survives the renumbering and is OR-ed with the new dirty set.
      nd.refold[nv] = dcache_.refold[ov];
    }
  }
  dcache_ = std::move(nd);
  dist::CountingCache nc;
  nc.tables.assign(new_n, bpt::CountTable{});
  nc.valid.assign(new_n, 0);
  nc.refold.assign(new_n, 1);
  if (ccache_.tables.size() == old_n && ccache_.valid.size() == old_n &&
      ccache_.refold.size() == old_n) {
    for (std::size_t ov = 0; ov < old_n; ++ov) {
      const VertexId nv = old_to_new[ov];
      if (nv < 0) continue;
      nc.tables[nv] = std::move(ccache_.tables[ov]);
      nc.valid[nv] = ccache_.valid[ov];
      nc.refold[nv] = ccache_.refold[ov];
    }
  }
  ccache_ = std::move(nc);
  std::vector<int> nids(new_n, -1);
  if (net_ids_.size() == old_n)
    for (std::size_t ov = 0; ov < old_n; ++ov)
      if (old_to_new[ov] >= 0) nids[old_to_new[ov]] = net_ids_[ov];
  net_ids_ = std::move(nids);
}

StepOutcome ChurnEngine::solve(congest::Network& net,
                               const dist::ElimTreeResult& tree,
                               const std::vector<dist::LocalBag>& bags) {
  StepOutcome out;
  switch (query_.pipeline) {
    case Pipeline::kDecision: {
      const dist::DecisionOutcome r = dist::run_decision_solve(
          net, query_.formula, tree, bags, &*engine_, &dcache_);
      out.run = r.run;
      out.folds = r.folds;
      out.verdict.holds = r.holds;
      break;
    }
    case Pipeline::kCount: {
      const dist::CountingOutcome r = dist::run_count_solve(
          net, query_.formula, query_.vars, tree, bags, &*engine_, &ccache_);
      out.run = r.run;
      out.folds = r.folds;
      out.verdict.count = r.count;
      break;
    }
    case Pipeline::kMaximize:
    case Pipeline::kMinimize: {
      const dist::OptimizationOutcome r =
          query_.pipeline == Pipeline::kMaximize
              ? dist::run_maximize_solve(net, query_.formula, query_.var,
                                         query_.var_sort, tree, bags,
                                         &*engine_)
              : dist::run_minimize_solve(net, query_.formula, query_.var,
                                         query_.var_sort, tree, bags,
                                         &*engine_);
      out.run = r.run;
      out.verdict.feasible = r.best_weight.has_value();
      out.verdict.best_weight = r.best_weight.value_or(0);
      break;
    }
    case Pipeline::kOptMarked: {
      const dist::OptMarkedOutcome r = dist::run_optmarked_solve(
          net, query_.formula, query_.var, query_.var_sort, tree, bags,
          query_.minimize_marked);
      out.run = r.run;
      out.verdict.satisfies = r.satisfies;
      out.verdict.is_optimal = r.is_optimal;
      out.verdict.marked_weight = r.marked_weight;
      out.verdict.best_weight = r.best_weight;
      break;
    }
  }
  out.rounds = out.run.rounds;
  out.status =
      out.run.ok() ? StepStatus::kRecomputed : StepStatus::kDegraded;
  if (!out.run.ok()) out.flight = net.flight_recorder().dump_string();
  out.digest = out.verdict.digest(query_.pipeline);
  if (out.run.ok()) {
    // The refreshed caches are positional over bags ordered by these ids.
    net_ids_.assign(net.n(), -1);
    for (int v = 0; v < net.n(); ++v) net_ids_[v] = net.id_of_vertex(v);
  }
  return out;
}

StepOutcome ChurnEngine::full_compute(const congest::NetworkConfig& cfg) {
  bump(opts_.net, "churn.full_recomputes");
  StepOutcome out;
  congest::Network net(graph_, cfg);
  const dist::ElimTreeResult tree = dist::run_elim_tree(net, opts_.d);
  out.run = tree.run;
  out.rounds = tree.rounds;
  if (!tree.run.ok()) {
    out.status = StepStatus::kDegraded;
    out.flight = net.flight_recorder().dump_string();
    tree_.reset();
    invalidate_caches();
    return out;
  }
  if (!tree.success) {
    out.status = StepStatus::kRecomputed;
    out.verdict.treedepth_exceeded = true;
    out.digest = out.verdict.digest(query_.pipeline);
    tree_.reset();
    invalidate_caches();
    return out;
  }
  const dist::BagsResult bags = dist::run_bags(net, tree, vlabels_, elabels_);
  out.run = bags.run;
  out.rounds += bags.rounds;
  if (!bags.run.ok()) {
    out.status = StepStatus::kDegraded;
    out.flight = net.flight_recorder().dump_string();
    tree_.reset();
    invalidate_caches();
    return out;
  }
  invalidate_caches();  // fold-all: the seams refresh the caches on success
  StepOutcome solved = solve(net, tree, bags.bags);
  solved.rounds += out.rounds;
  if (!solved.run.ok()) {
    tree_.reset();
    return solved;  // status kDegraded from solve()
  }
  tree_ = tree;
  solved.status = StepStatus::kRecomputed;
  solved.refold_count = graph_.num_vertices();
  return solved;
}

void ChurnEngine::verify_step(StepOutcome& out) {
  if (!opts_.verify || !out.ok()) return;
  // Clean-room oracle: fault-free serial network, fresh class universe,
  // the full distributed pipeline from scratch. Algorithm 2 certifies
  // td <= d while a repaired tree only guarantees depth <= 2^d - 1 (enough
  // for sound folds), so churn can push td past d without invalidating the
  // incremental verdict; the oracle then retries with a slightly larger
  // budget — the verdict itself is budget-independent.
  const int max_budget = opts_.d + 3;
  for (int budget = opts_.d; budget <= max_budget; ++budget) {
    VerdictSummary oracle;
    congest::RunOutcome orun;
    long orounds = 0;
    try {
      oracle_run(budget, oracle, orun, orounds);
    } catch (const std::exception&) {
      // A larger budget can yield trees deeper than the packed atomic
      // representation supports (bpt::kMaxTerminals); the oracle is
      // infeasible there, not wrong.
      out.note = "oracle infeasible at budget " + std::to_string(budget) +
                 "; digest check skipped";
      return;
    }
    out.rounds_full = orounds;
    if (!orun.ok()) {
      out.note = "oracle run degraded; digest check skipped";
      return;
    }
    if (oracle.treedepth_exceeded && !out.verdict.treedepth_exceeded) {
      if (budget < max_budget) continue;
      out.note = "budget drift: oracle td check rejected up to d+3; "
                 "digest check skipped";
      return;
    }
    out.oracle_digest = oracle.digest(query_.pipeline);
    out.verified = true;
    out.digest_ok = out.digest == out.oracle_digest;
    if (!out.digest_ok) bump(opts_.net, "churn.digest_mismatches");
    return;
  }
}

void ChurnEngine::oracle_run(int budget, VerdictSummary& oracle,
                             congest::RunOutcome& orun, long& orounds) {
  congest::NetworkConfig clean;
  clean.id_seed = opts_.net.id_seed;
  congest::Network net(graph_, clean);
  switch (query_.pipeline) {
    case Pipeline::kDecision: {
      const dist::DecisionOutcome r =
          dist::run_decision(net, query_.formula, budget);
      orun = r.run;
      orounds = r.total_rounds();
      oracle.treedepth_exceeded = r.treedepth_exceeded;
      oracle.holds = r.holds;
      break;
    }
    case Pipeline::kCount: {
      const dist::CountingOutcome r =
          dist::run_count(net, query_.formula, query_.vars, budget);
      orun = r.run;
      orounds = r.total_rounds();
      oracle.treedepth_exceeded = r.treedepth_exceeded;
      oracle.count = r.count;
      break;
    }
    case Pipeline::kMaximize:
    case Pipeline::kMinimize: {
      const dist::OptimizationOutcome r =
          query_.pipeline == Pipeline::kMaximize
              ? dist::run_maximize(net, query_.formula, query_.var,
                                   query_.var_sort, budget)
              : dist::run_minimize(net, query_.formula, query_.var,
                                   query_.var_sort, budget);
      orun = r.run;
      orounds = r.total_rounds();
      oracle.treedepth_exceeded = r.treedepth_exceeded;
      oracle.feasible = r.best_weight.has_value();
      oracle.best_weight = r.best_weight.value_or(0);
      break;
    }
    case Pipeline::kOptMarked: {
      const dist::OptMarkedOutcome r =
          dist::run_optmarked(net, query_.formula, query_.var, query_.var_sort,
                              budget, query_.minimize_marked);
      orun = r.run;
      orounds = r.total_rounds();
      oracle.treedepth_exceeded = r.treedepth_exceeded;
      oracle.satisfies = r.satisfies;
      oracle.is_optimal = r.is_optimal;
      oracle.marked_weight = r.marked_weight;
      oracle.best_weight = r.best_weight;
      break;
    }
  }
}

StepOutcome ChurnEngine::init() {
  StepOutcome out = full_compute(solve_config());
  if (!out.ok()) bump(opts_.net, "churn.degraded");
  verify_step(out);
  return out;
}

StepOutcome ChurnEngine::step(const std::vector<ChurnEvent>& batch) {
  bump(opts_.net, "churn.steps");
  std::vector<VertexId> old_to_new;
  Graph next = apply_batch(graph_, batch, &old_to_new);  // throws: unchanged

  if (!tree_.has_value()) {
    // Previous epoch left no tree (degraded or budget-exceeded): nothing
    // to repair against; full recompute on the mutated graph.
    graph_ = std::move(next);
    StepOutcome out = full_compute(solve_config());
    out.note = "no tree from previous epoch: full recompute";
    if (!out.ok()) bump(opts_.net, "churn.degraded");
    verify_step(out);
    return out;
  }

  const Graph old_g = std::move(graph_);
  graph_ = std::move(next);
  const TreePatch patch =
      repair_tree(old_g, *tree_, graph_, old_to_new, opts_.d);

  StepOutcome out;
  if (patch.kind == RepairKind::kFailed) {
    bump(opts_.net, "churn.repair_failures");
    out = full_compute(solve_config());
    out.repair = RepairKind::kFailed;
    out.repair_failed = true;
    out.note = patch.reason;
  } else {
    const int n = graph_.num_vertices();
    remap_caches(old_to_new, n);
    // Refold set = dirty plus its root-path (ancestor) closure: a vertex's
    // class summarizes its whole subtree, so staleness propagates upward.
    // The walk stops at already-marked vertices — anything this loop marked
    // had its full ancestor path marked too.
    std::vector<char> refold(n, 0);
    for (int v = 0; v < n; ++v) {
      if (!patch.dirty[v]) continue;
      for (int x = v; x >= 0 && !refold[x]; x = patch.tree.parent[x])
        refold[x] = 1;
    }
    for (int v = 0; v < n; ++v) {
      if (refold[v]) {
        dcache_.refold[v] = 1;
        ccache_.refold[v] = 1;
      }
    }

    congest::Network net(graph_, solve_config());
    // Cached tables are positional over bags ordered by network id; if the
    // id assignment moved for any surviving vertex (it is a permutation of
    // [0, n), so vertex churn reshuffles it wholesale), every cached table
    // is suspect — refold the lot.
    bool ids_stable = net_ids_.size() == static_cast<std::size_t>(n);
    for (int v = 0; v < n && ids_stable; ++v)
      if (net_ids_[v] >= 0 && net_ids_[v] != net.id_of_vertex(v))
        ids_stable = false;
    if (!ids_stable) {
      std::fill(dcache_.refold.begin(), dcache_.refold.end(), 1);
      std::fill(ccache_.refold.begin(), ccache_.refold.end(), 1);
    }
    // Report from the cache this pipeline actually refreshes (the other
    // one's flags stay set and would always read n).
    const std::vector<char>& flags = query_.pipeline == Pipeline::kCount
                                         ? ccache_.refold
                                         : dcache_.refold;
    out.refold_count = static_cast<int>(std::count(flags.begin(), flags.end(), 1));

    const std::vector<dist::LocalBag> bags =
        bags_for_tree(net, patch.tree, vlabels_, elabels_);
    StepOutcome solved = solve(net, patch.tree, bags);
    solved.refold_count = out.refold_count;
    solved.repair = patch.kind;
    solved.region = patch.region;
    out = std::move(solved);
    if (out.run.ok()) {
      out.status = patch.kind == RepairKind::kRefold ? StepStatus::kRefolded
                                                     : StepStatus::kRebuilt;
      tree_ = patch.tree;
      bump(opts_.net, out.status == StepStatus::kRefolded ? "churn.refolds"
                                                          : "churn.rebuilds");
    } else if (opts_.fallback_full) {
      // Faults defeated the incremental solve; recover with a full
      // distributed recompute under the same fault plan.
      bump(opts_.net, "churn.fallbacks");
      const long incremental_rounds = out.rounds;
      StepOutcome full = full_compute(solve_config());
      full.repair = patch.kind;
      full.region = patch.region;
      full.fallback_used = true;
      full.rounds += incremental_rounds;  // the failed attempt still cost
      out = std::move(full);
      if (!out.ok()) tree_ = patch.tree;  // still valid for the new graph
    } else {
      // Structured degraded outcome; the repaired tree stays (it is valid
      // for the new graph) and the stale refold flags persist, so the next
      // epoch re-folds everything this one failed to refresh.
      tree_ = patch.tree;
    }
  }
  if (!out.ok()) bump(opts_.net, "churn.degraded");
  verify_step(out);
  return out;
}

std::vector<StepOutcome> ChurnEngine::run(const ChurnScript& script) {
  std::vector<StepOutcome> outs;
  outs.push_back(init());
  for (const auto& batch : script.batches) outs.push_back(step(batch));
  for (int i = 0; i < script.random_events; ++i) {
    const ChurnEvent e = random_event(graph_, script.seed, random_cursor_++);
    outs.push_back(step({e}));
  }
  return outs;
}

}  // namespace dmc::churn
