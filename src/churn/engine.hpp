// Churn engine: epochs of graph mutation + incremental re-solving.
//
// Each step applies one churn batch, repairs the previous epoch's
// elimination tree coordinator-side (repair.hpp), rebuilds the canonical
// bags sequentially (Lemma 2.4: the bags are determined by the tree, so a
// repaired epoch spends zero distributed rounds on the prologue), and
// re-runs only the solve phase of the requested pipeline over a fresh
// network — with the dirty set's ancestor closure re-folded and every
// clean vertex replaying its cached class/table (decision/counting seams
// in src/dist/).
//
// Fault composition: the solve network inherits the caller's
// NetworkConfig, so the PR-3 fault plans (and the dmc-mc SchedulerHook)
// apply to every incremental epoch. A degraded incremental solve falls
// back to a full distributed recompute under the same faults; if that
// degrades too the step reports StepStatus::kDegraded — a structured
// outcome mirroring congest::RunOutcome, never a silently wrong verdict.
//
// Verification: with Options::verify each completed step re-solves from
// scratch on a clean (fault-free, serial) network with a fresh class
// universe and compares verdict digests. Digests cover only
// schedule-independent verdict fields (holds / count / best weight /
// marked weight) — witness sets and class ids legitimately vary with the
// tree shape and interning schedule.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bpt/engine.hpp"
#include "churn/repair.hpp"
#include "churn/script.hpp"
#include "congest/network.hpp"
#include "dist/counting.hpp"
#include "dist/decision.hpp"
#include "dist/elim_tree.hpp"
#include "graph/graph.hpp"
#include "mso/ast.hpp"

namespace dmc::churn {

/// Which distributed pipeline the engine re-solves each epoch.
enum class Pipeline { kDecision, kCount, kMaximize, kMinimize, kOptMarked };

const char* to_string(Pipeline pipeline);

/// The (pipeline, formula) a ChurnEngine keeps answering across epochs.
struct Query {
  Pipeline pipeline = Pipeline::kDecision;
  mso::FormulaPtr formula;
  /// Free variables for kCount (slot order).
  std::vector<std::pair<std::string, mso::Sort>> vars;
  /// Free variable for kMaximize / kMinimize / kOptMarked.
  std::string var;
  mso::Sort var_sort = mso::Sort::VertexSet;
  /// kOptMarked: verify against the minimum instead of the maximum.
  bool minimize_marked = false;
};

/// Schedule-independent verdict of one epoch; the digest is what
/// incremental-vs-oracle equality is checked on.
struct VerdictSummary {
  bool treedepth_exceeded = false;
  bool holds = false;            // kDecision
  std::uint64_t count = 0;       // kCount
  bool feasible = false;         // kMaximize / kMinimize
  Weight best_weight = 0;        // kMaximize / kMinimize / kOptMarked
  bool satisfies = false;        // kOptMarked
  bool is_optimal = false;       // kOptMarked
  Weight marked_weight = 0;      // kOptMarked

  std::uint64_t digest(Pipeline pipeline) const;
};

enum class StepStatus {
  kRefolded,    // tree repaired in place; partial refold only
  kRebuilt,     // bounded structural region re-eliminated; partial refold
  kRecomputed,  // full from-scratch distributed recompute (init, repair
                // failure, or fault fallback)
  kDegraded,    // faults defeated the incremental epoch AND the fallback
};

const char* to_string(StepStatus status);

struct StepOutcome {
  StepStatus status = StepStatus::kDegraded;
  /// Repair classification for this batch (meaningful for churn steps;
  /// kFailed on the init epoch by convention).
  RepairKind repair = RepairKind::kFailed;
  bool repair_failed = false;  // patch said kFailed -> full recompute
  bool fallback_used = false;  // incremental solve degraded -> full rerun
  bool verified = false;       // oracle comparison ran
  bool digest_ok = true;       // false => incremental verdict diverged
  std::uint64_t digest = 0;
  std::uint64_t oracle_digest = 0;
  long rounds = 0;        // distributed rounds this epoch spent
  long rounds_full = 0;   // rounds of the oracle run (0 when !verified)
  long folds = 0;         // BPT folds this epoch (decision/counting)
  int refold_count = 0;   // vertices scheduled for refold (n on full)
  int region = 0;         // vertices re-placed by a structural rebuild
  VerdictSummary verdict;
  /// Outcome of the last network run of the epoch (the fallback's when
  /// fallback_used). Degraded steps carry the degraded outcome here.
  congest::RunOutcome run;
  /// Flight-recorder JSONL of the epoch's network, captured only when the
  /// epoch ends degraded — the CLI persists it under --flight-record.
  std::string flight;
  std::string note;  // one-line diagnostic (repair reason, budget drift)

  bool ok() const { return status != StepStatus::kDegraded; }
};

struct Options {
  /// Template for every solve network of the engine: fault plans, the
  /// dmc-mc SchedulerHook, trace sinks, metrics, and id_seed all carry
  /// over. Each epoch gets a *fresh* network (crash-stop state does not
  /// persist across epochs; fault plans are counter-based, so an epoch's
  /// faults are a pure function of its own rounds).
  congest::NetworkConfig net;
  int d = 3;  // treedepth budget (repair budget is 2^d - 1, as Alg. 2)
  bool verify = true;         // clean from-scratch oracle per step
  bool fallback_full = true;  // degraded incremental -> full retry
};

/// Coordinator-side mirror of the bags protocol (Lemma 5.3): bag of v =
/// its root path, members sorted by network id, edges = G[B] in (i, j)
/// order — bit-identical to what run_bags distributes, for zero rounds.
std::vector<dist::LocalBag> bags_for_tree(
    const congest::Network& net, const dist::ElimTreeResult& tree,
    const std::vector<std::string>& vlabel_names,
    const std::vector<std::string>& elabel_names);

class ChurnEngine {
 public:
  ChurnEngine(Graph g, Query query, Options opts);
  ~ChurnEngine();

  /// Epoch 0: full distributed build (elim tree + bags + solve) under the
  /// configured faults. Must complete (or be re-run) before step().
  StepOutcome init();

  /// Applies one churn batch and re-solves incrementally. Throws
  /// std::invalid_argument on semantically invalid events (disconnecting
  /// deletions, out-of-range vertices) — the graph is left unchanged.
  StepOutcome step(const std::vector<ChurnEvent>& batch);

  /// init() + every scripted batch + `random_events` seeded single-event
  /// batches. Returns one outcome per epoch (index 0 = init).
  std::vector<StepOutcome> run(const ChurnScript& script);

  const Graph& graph() const { return graph_; }
  /// Current elimination tree; engaged only after a completed epoch.
  const std::optional<dist::ElimTreeResult>& tree() const { return tree_; }
  const Query& query() const { return query_; }

 private:
  congest::NetworkConfig solve_config() const;
  void invalidate_caches();
  void remap_caches(const std::vector<VertexId>& old_to_new, int new_n);
  /// Full distributed recompute on the current graph under `cfg`; refreshes
  /// tree_ and the caches on success.
  StepOutcome full_compute(const congest::NetworkConfig& cfg);
  /// Solve phase over (tree, bags) on `net` (caches always supplied; a
  /// full recompute simply has every refold flag set).
  StepOutcome solve(congest::Network& net, const dist::ElimTreeResult& tree,
                    const std::vector<dist::LocalBag>& bags);
  void verify_step(StepOutcome& out);
  void oracle_run(int budget, VerdictSummary& oracle, congest::RunOutcome& orun,
                  long& orounds);

  Graph graph_;
  Query query_;
  Options opts_;
  std::optional<bpt::Engine> engine_;  // warm universe (all but optmarked)
  std::vector<std::string> vlabels_, elabels_;
  std::optional<dist::ElimTreeResult> tree_;
  dist::DecisionCache dcache_;
  dist::CountingCache ccache_;
  // Network id per graph vertex at the last cache-refreshing solve (-1 =
  // unknown / fresh vertex). Bags are ordered by network id and cached
  // tables are positional, so a reshuffled id assignment (any vertex
  // churn: Network ids are a permutation of [0, n)) silently invalidates
  // every cached table; step() refolds everything when ids moved.
  std::vector<int> net_ids_;
  int random_cursor_ = 0;  // distinct seeds across run() random events
};

}  // namespace dmc::churn
