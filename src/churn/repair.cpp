#include "churn/repair.hpp"

#include <algorithm>
#include <stdexcept>

#include "td/elimination_forest.hpp"

namespace dmc::churn {

namespace {

/// Depths (1-based) for a candidate parent array that may contain
/// unplaced vertices (parent == -2, depth stays 0).
std::vector<int> depths_of(const std::vector<VertexId>& parent) {
  const int n = static_cast<int>(parent.size());
  std::vector<int> depth(n, 0);
  std::vector<VertexId> chain;
  for (VertexId v = 0; v < n; ++v) {
    if (parent[v] == -2 || depth[v] != 0) continue;
    chain.clear();
    VertexId x = v;
    while (x >= 0 && depth[x] == 0) {
      chain.push_back(x);
      x = parent[x];
    }
    int base = x < 0 ? 0 : depth[x];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) depth[*it] = ++base;
  }
  return depth;
}

bool is_ancestor_or_self(const std::vector<VertexId>& parent,
                         const std::vector<int>& depth, VertexId anc,
                         VertexId v) {
  while (depth[v] > depth[anc]) v = parent[v];
  return v == anc;
}

VertexId lca(const std::vector<VertexId>& parent, const std::vector<int>& depth,
             VertexId a, VertexId b) {
  while (depth[a] > depth[b]) a = parent[a];
  while (depth[b] > depth[a]) b = parent[b];
  while (a != b) {
    a = parent[a];
    b = parent[b];
  }
  return a;
}

/// Connected components of new_g restricted to `members` (a bitmap).
std::vector<std::vector<VertexId>> components_of(
    const Graph& g, const std::vector<char>& members) {
  const int n = g.num_vertices();
  std::vector<std::vector<VertexId>> comps;
  std::vector<char> seen(n, 0);
  for (VertexId s = 0; s < n; ++s) {
    if (!members[s] || seen[s]) continue;
    comps.emplace_back();
    std::vector<VertexId> stack{s};
    seen[s] = 1;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      comps.back().push_back(v);
      for (auto [w, e] : g.incident(v)) {
        (void)e;
        if (!members[w] || seen[w]) continue;
        seen[w] = 1;
        stack.push_back(w);
      }
    }
    std::sort(comps.back().begin(), comps.back().end());
  }
  return comps;
}

/// Recursively eliminates new_g[comp] under `attach` (a vertex outside the
/// region, or -1 for a root-level rebuild), writing parent/depth. The root
/// of every built subtree must be adjacent to its attachment point so tree
/// edges stay graph edges; among the eligible roots the one minimizing the
/// largest remaining component (ties: smaller id) is chosen — the same
/// balanced-separator heuristic as td::balanced_elimination_forest.
/// Returns false iff the depth budget cannot be met.
bool build_region(const Graph& g, const std::vector<VertexId>& comp,
                  VertexId attach, int attach_depth, long budget,
                  std::vector<VertexId>& parent, std::vector<int>& depth) {
  if (comp.empty()) return true;
  if (attach_depth + 1 > budget) return false;
  std::vector<char> members(g.num_vertices(), 0);
  for (VertexId v : comp) members[v] = 1;
  VertexId best = -1;
  std::size_t best_score = 0;
  for (VertexId r : comp) {
    if (attach >= 0 && !g.has_edge(r, attach)) continue;
    members[r] = 0;
    std::size_t largest = 0;
    for (const auto& c : components_of(g, members))
      largest = std::max(largest, c.size());
    members[r] = 1;
    if (best < 0 || largest < best_score) {
      best = r;
      best_score = largest;
    }
  }
  if (best < 0) return false;  // no root adjacent to the attachment point
  parent[best] = attach;
  depth[best] = attach_depth + 1;
  members[best] = 0;
  for (const auto& sub : components_of(g, members))
    if (!build_region(g, sub, best, attach_depth + 1, budget, parent, depth))
      return false;
  return true;
}

/// Marks the old-tree subtree of `root` (old-graph vertices), mapped into
/// the new graph, as dirty; `include_root` excludes a deleted root itself.
void mark_old_subtree(const dist::ElimTreeResult& old_tree,
                      const std::vector<VertexId>& old_to_new, VertexId root,
                      std::vector<char>& dirty) {
  std::vector<VertexId> stack{root};
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    if (old_to_new[v] >= 0) dirty[old_to_new[v]] = 1;
    for (int c : old_tree.children[v]) stack.push_back(c);
  }
}

void mark_new_subtree(const std::vector<std::vector<int>>& children,
                      VertexId root, std::vector<char>& dirty) {
  std::vector<VertexId> stack{root};
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    dirty[v] = 1;
    for (int c : children[v]) stack.push_back(c);
  }
}

}  // namespace

const char* to_string(RepairKind kind) {
  switch (kind) {
    case RepairKind::kRefold: return "refold";
    case RepairKind::kStructural: return "structural";
    case RepairKind::kFailed: return "failed";
  }
  return "?";
}

TreePatch repair_tree(const Graph& old_g,
                      const dist::ElimTreeResult& old_tree,
                      const Graph& new_g,
                      const std::vector<VertexId>& old_to_new, int d) {
  TreePatch patch;
  const int n_old = old_g.num_vertices();
  const int n_new = new_g.num_vertices();
  const long budget = (1L << d) - 1;  // Algorithm 2's depth bound (Lemma 2.5)
  if (!old_tree.success || n_new == 0) {
    patch.reason = "no prior tree";
    return patch;
  }

  std::vector<VertexId> new_to_old(n_new, -1);
  for (VertexId v = 0; v < n_old; ++v)
    if (old_to_new[v] >= 0) new_to_old[old_to_new[v]] = v;

  // Candidate tree: the old tree with deleted vertices spliced out
  // (children adopt the nearest surviving ancestor); fresh vertices are
  // unplaced (-2).
  std::vector<VertexId> parent(n_new, -2);
  for (VertexId nv = 0; nv < n_new; ++nv) {
    const VertexId ov = new_to_old[nv];
    if (ov < 0) continue;
    VertexId op = old_tree.parent[ov];
    while (op >= 0 && old_to_new[op] < 0) op = old_tree.parent[op];
    parent[nv] = op < 0 ? -1 : old_to_new[op];
  }
  std::vector<int> depth = depths_of(parent);
  auto placed = [&](VertexId v) { return parent[v] != -2; };

  // Violations: graph edges not ancestor-related, tree edges no longer in
  // the graph, a spliced-apart root set, and unplaced fresh vertices.
  std::vector<char> relevant(n_new, 0);
  std::vector<VertexId> unplaced;
  int roots = 0;
  for (VertexId v = 0; v < n_new; ++v) {
    if (!placed(v)) {
      unplaced.push_back(v);
      continue;
    }
    if (parent[v] == -1) ++roots;
    if (parent[v] >= 0 && !new_g.has_edge(v, parent[v]))
      relevant[v] = relevant[parent[v]] = 1;
  }
  bool edge_violation = false;
  for (const Edge& e : new_g.edges()) {
    if (!placed(e.u) || !placed(e.v)) continue;
    const VertexId up = depth[e.u] <= depth[e.v] ? e.u : e.v;
    const VertexId dn = depth[e.u] <= depth[e.v] ? e.v : e.u;
    if (!is_ancestor_or_self(parent, depth, up, dn))
      relevant[e.u] = relevant[e.v] = edge_violation = true;
  }
  const bool multi_root = roots != 1 && n_new > static_cast<int>(unplaced.size());
  bool has_violation = multi_root || edge_violation;
  for (VertexId v = 0; v < n_new && !has_violation; ++v)
    has_violation = relevant[v] != 0;

  bool structural = false;
  if (!has_violation && !unplaced.empty()) {
    // Local joins first: a fresh vertex whose (already placed) neighbors
    // all lie on one root path attaches as a leaf under the deepest of
    // them — the Lemma 2.4 fast path, no rebuild. Passes handle fresh
    // vertices adjacent to other fresh vertices placed earlier.
    std::vector<VertexId> try_parent = parent;
    std::vector<int> try_depth = depth;
    std::vector<VertexId> pending = unplaced;
    bool progress = true, all_placed = true;
    while (progress && !pending.empty()) {
      progress = false;
      std::vector<VertexId> next;
      for (VertexId w : pending) {
        VertexId deepest = -1;
        bool chain = true, ready = true;
        for (VertexId nb : new_g.neighbors(w)) {
          if (try_parent[nb] == -2) {
            ready = false;
            break;
          }
          if (deepest < 0) {
            deepest = nb;
            continue;
          }
          const VertexId up =
              try_depth[nb] <= try_depth[deepest] ? nb : deepest;
          const VertexId dn =
              try_depth[nb] <= try_depth[deepest] ? deepest : nb;
          if (!is_ancestor_or_self(try_parent, try_depth, up, dn)) {
            chain = false;
            break;
          }
          deepest = dn;
        }
        if (!ready) {
          next.push_back(w);
          continue;
        }
        if (!chain || deepest < 0 || try_depth[deepest] + 1 > budget) {
          all_placed = false;
          break;
        }
        try_parent[w] = deepest;
        try_depth[w] = try_depth[deepest] + 1;
        progress = true;
      }
      if (!all_placed) break;
      pending = std::move(next);
    }
    if (all_placed && pending.empty()) {
      parent = std::move(try_parent);
      depth = std::move(try_depth);
      unplaced.clear();
    }
  }

  if (has_violation || !unplaced.empty()) {
    structural = true;
    // Region: the subtrees under the violations' LCA (or everything when
    // the root set itself broke), re-eliminated and re-anchored.
    std::vector<char> in_region(n_new, 0);
    VertexId anchor = -1;
    if (multi_root) {
      for (VertexId v = 0; v < n_new; ++v) in_region[v] = 1;
    } else {
      for (VertexId w : unplaced)
        for (VertexId nb : new_g.neighbors(w))
          if (placed(nb)) relevant[nb] = 1;
      for (VertexId v = 0; v < n_new; ++v) {
        if (!relevant[v] || !placed(v)) continue;
        anchor = anchor < 0 ? v : lca(parent, depth, anchor, v);
      }
      if (anchor < 0) {
        patch.reason = "no anchored violation";  // defensive: disconnected?
        return patch;
      }
      // Subtrees of the anchor's children that contain a violation.
      for (VertexId v = 0; v < n_new; ++v) {
        if (!relevant[v] || v == anchor || !placed(v)) continue;
        VertexId x = v;
        while (parent[x] != anchor) x = parent[x];
        if (in_region[x]) continue;
        std::vector<VertexId> stack{x};
        in_region[x] = 1;
        while (!stack.empty()) {
          const VertexId y = stack.back();
          stack.pop_back();
          for (VertexId c = 0; c < n_new; ++c)
            if (placed(c) && parent[c] == y && !in_region[c]) {
              in_region[c] = 1;
              stack.push_back(c);
            }
        }
      }
      for (VertexId w : unplaced) in_region[w] = 1;
    }
    for (VertexId v = 0; v < n_new; ++v)
      if (in_region[v]) {
        parent[v] = -2;
        patch.region++;
      }
    // Ancestors of the anchor, deepest first, as re-attachment candidates.
    std::vector<VertexId> anchor_path;
    for (VertexId x = anchor; x >= 0; x = parent[x]) anchor_path.push_back(x);
    for (const auto& comp : components_of(new_g, in_region)) {
      VertexId attach = -1;
      for (VertexId cand : anchor_path) {
        bool adjacent = false;
        for (VertexId v : comp) adjacent = adjacent || new_g.has_edge(v, cand);
        if (adjacent) {
          attach = cand;
          break;
        }
      }
      if (attach < 0 && anchor >= 0) {
        patch.reason = "region component has no root-path anchor";
        return patch;
      }
      const int attach_depth = attach < 0 ? 0 : depth[attach];
      if (!build_region(new_g, comp, attach, attach_depth, budget, parent,
                        depth)) {
        patch.reason = "depth budget exceeded";
        return patch;
      }
    }
    depth = depths_of(parent);
  }

  // Defensive validation: the repaired tree must be exactly what Algorithm 2
  // could have produced — valid, a subgraph of the new graph, within the
  // depth bound, and a single tree.
  try {
    EliminationForest forest(parent);
    if (forest.roots().size() != 1) {
      patch.reason = "repair left multiple roots";
      return patch;
    }
    if (!forest.valid_for(new_g) || !forest.is_subgraph_of(new_g)) {
      patch.reason = "repaired tree invalid";
      return patch;
    }
    if (forest.depth() > budget) {
      patch.reason = "depth budget exceeded";
      return patch;
    }
  } catch (const std::exception&) {
    patch.reason = "repair produced a cyclic parent map";
    return patch;
  }

  patch.kind = structural ? RepairKind::kStructural : RepairKind::kRefold;
  patch.tree.success = true;
  patch.tree.parent.assign(parent.begin(), parent.end());
  patch.tree.depth = depth;
  patch.tree.children.assign(n_new, {});
  for (VertexId v = 0; v < n_new; ++v)
    if (parent[v] >= 0) patch.tree.children[parent[v]].push_back(v);

  // Dirty set: fold contexts that changed. Rule 1 — children arity/identity
  // (the plan's Input slots); rule 2 — the bag itself (root path, including
  // departed members); rule 3 — bag-induced edges (the deeper endpoint's
  // subtree sees the change in its local graph, Lemma 2.4).
  patch.dirty.assign(n_new, 0);
  for (VertexId nv = 0; nv < n_new; ++nv) {
    const VertexId ov = new_to_old[nv];
    if (ov < 0) {
      patch.dirty[nv] = 1;  // fresh vertex: everything about it is new
      continue;
    }
    std::vector<VertexId> old_kids;
    for (int c : old_tree.children[ov]) old_kids.push_back(old_to_new[c]);
    std::sort(old_kids.begin(), old_kids.end());
    std::vector<VertexId> new_kids = patch.tree.children[nv];
    std::sort(new_kids.begin(), new_kids.end());
    if (old_kids != new_kids) patch.dirty[nv] = 1;
    std::vector<VertexId> old_path, new_path;
    for (VertexId x = ov; x >= 0; x = old_tree.parent[x])
      old_path.push_back(old_to_new[x]);
    for (VertexId x = nv; x >= 0; x = patch.tree.parent[x]) new_path.push_back(x);
    if (old_path != new_path) patch.dirty[nv] = 1;
  }
  for (const Edge& e : old_g.edges()) {
    const VertexId na = old_to_new[e.u], nb = old_to_new[e.v];
    if (na < 0 || nb < 0) continue;  // died with a vertex: rule 2 covers it
    if (new_g.has_edge(na, nb)) continue;
    const VertexId deeper =
        old_tree.depth[e.u] >= old_tree.depth[e.v] ? e.u : e.v;
    mark_old_subtree(old_tree, old_to_new, deeper, patch.dirty);
  }
  for (const Edge& e : new_g.edges()) {
    const VertexId oa = new_to_old[e.u], ob = new_to_old[e.v];
    if (oa >= 0 && ob >= 0 && old_g.has_edge(oa, ob)) continue;
    const VertexId deeper = depth[e.u] >= depth[e.v] ? e.u : e.v;
    mark_new_subtree(patch.tree.children, deeper, patch.dirty);
  }
  return patch;
}

}  // namespace dmc::churn
