// Incremental elimination-tree repair (paper Lemma 2.2 / 2.5 locality).
//
// After a churn batch mutates the graph, the previous epoch's elimination
// tree is usually *almost* valid: an edge deletion never invalidates it
// (unless the edge was a tree edge), an edge insertion between an
// ancestor-descendant pair leaves it untouched, and a leaf vertex joining
// below its neighbors' common root path attaches in place. Only genuinely
// structural events — merges across branches, tree-edge loss, internal
// vertex departure — force a rebuild, and that rebuild is confined to the
// smallest anchored region containing the violations: the subtrees under
// the violations' LCA, re-eliminated against the same depth budget
// 2^d - 1 that Algorithm 2 honors, and re-attached to the deepest
// root-path ancestor each repaired component still has an edge to (so
// every tree edge stays a graph edge — the invariant the bags protocol's
// parent->child pipeline and the convergecasts rely on).
//
// The patch also reports exactly which vertices' *fold contexts* changed —
// bag (root path) membership, bag-induced edges, or children arity — so
// the engine re-folds only the dirty set plus its root-path closure, as
// the recursive composition of Lemma 4.3 permits.
//
// Everything here is coordinator-side and deterministic; the distributed
// cost of a repaired epoch is only the solve phase re-run by engine.hpp.
#pragma once

#include <string>
#include <vector>

#include "dist/elim_tree.hpp"
#include "graph/graph.hpp"

namespace dmc::churn {

enum class RepairKind {
  kRefold,      // tree shape intact: only fold contexts changed
  kStructural,  // a bounded region was re-eliminated and re-anchored
  kFailed,      // no within-budget repair found: caller must full-recompute
};

const char* to_string(RepairKind kind);

struct TreePatch {
  RepairKind kind = RepairKind::kFailed;
  std::string reason;  // one-line diagnostic when kind == kFailed
  /// Repaired tree over the *new* graph (success=true, rounds=0 — repair
  /// costs no distributed rounds). Meaningless when kind == kFailed.
  dist::ElimTreeResult tree;
  /// Per new-graph vertex: the fold context (bag, bag edges, or children)
  /// changed, so its cached class/table is stale. The refold set is this
  /// plus its ancestor closure (engine.hpp).
  std::vector<char> dirty;
  int region = 0;  // vertices re-placed by the structural rebuild
};

/// Repairs `old_tree` (valid for `old_g`) into a tree for `new_g`, where
/// `old_to_new` maps old vertices to new ids (-1 = deleted) — exactly the
/// mapping produced by churn::apply_batch. Requires new_g connected and
/// old_tree.success.
TreePatch repair_tree(const Graph& old_g,
                      const dist::ElimTreeResult& old_tree,
                      const Graph& new_g,
                      const std::vector<VertexId>& old_to_new, int d);

}  // namespace dmc::churn
