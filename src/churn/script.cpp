#include "churn/script.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "congest/wire.hpp"

namespace dmc::churn {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("bad churn script \"" + std::string(spec) +
                              "\": " + why);
}

long parse_long(std::string_view spec, std::string_view key,
                std::string_view value) {
  long v = 0;
  const auto res =
      std::from_chars(value.data(), value.data() + value.size(), v);
  if (res.ec != std::errc{} || res.ptr != value.data() + value.size())
    bad_spec(spec, std::string(key) + " wants an integer, got \"" +
                       std::string(value) + "\"");
  return v;
}

VertexId parse_vertex(std::string_view spec, std::string_view key,
                      std::string_view value) {
  const long v = parse_long(spec, key, value);
  if (v < 0) bad_spec(spec, std::string(key) + " wants a vertex id >= 0");
  return static_cast<VertexId>(v);
}

/// "U-V" -> endpoints.
std::pair<VertexId, VertexId> parse_pair(std::string_view spec,
                                         std::string_view key,
                                         std::string_view value) {
  const std::size_t dash = value.find('-');
  if (dash == std::string_view::npos)
    bad_spec(spec, std::string(key) + " wants U-V, got \"" +
                       std::string(value) + "\"");
  return {parse_vertex(spec, key, value.substr(0, dash)),
          parse_vertex(spec, key, value.substr(dash + 1))};
}

/// True iff the graph stays connected (over >= 1 vertex) when `skip_vertex`
/// (or `skip_edge`) is removed; pass -1 to skip nothing.
bool connected_without(const Graph& g, VertexId skip_vertex,
                       EdgeId skip_edge) {
  const int n = g.num_vertices();
  const int live = skip_vertex >= 0 ? n - 1 : n;
  if (live <= 0) return false;
  VertexId start = 0;
  while (start == skip_vertex) ++start;
  std::vector<char> seen(n, 0);
  std::vector<VertexId> stack{start};
  seen[start] = 1;
  int reached = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (auto [w, e] : g.incident(v)) {
      if (w == skip_vertex || e == skip_edge || seen[w]) continue;
      seen[w] = 1;
      ++reached;
      stack.push_back(w);
    }
  }
  return reached == live;
}

[[noreturn]] void bad_event(const ChurnEvent& event, const std::string& why) {
  throw std::invalid_argument("churn event " + format_event(event) + ": " +
                              why);
}

/// Copy of `g` without edge `skip` (Graph has no edge removal; labels and
/// weights are carried over, edge ids above `skip` shift down by one).
Graph without_edge(const Graph& g, EdgeId skip) {
  Graph out(g.num_vertices());
  const auto vlabels = g.vertex_label_names();
  const auto elabels = g.edge_label_names();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out.set_vertex_weight(v, g.vertex_weight(v));
    for (const auto& name : vlabels)
      if (g.vertex_has_label(name, v)) out.set_vertex_label(name, v);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (e == skip) continue;
    const Edge& edge = g.edge(e);
    const EdgeId ne = out.add_edge(edge.u, edge.v);
    out.set_edge_weight(ne, g.edge_weight(e));
    for (const auto& name : elabels)
      if (g.edge_has_label(name, e)) out.set_edge_label(name, ne);
  }
  return out;
}

void apply_event(Graph& g, const ChurnEvent& event,
                 std::vector<VertexId>& old_to_new) {
  const int n = g.num_vertices();
  auto check_vertex = [&](VertexId v) {
    if (v < 0 || v >= n) bad_event(event, "no such vertex");
  };
  switch (event.kind) {
    case ChurnEvent::Kind::kAddEdge: {
      check_vertex(event.u);
      check_vertex(event.v);
      if (event.u == event.v) bad_event(event, "self-loop");
      if (g.has_edge(event.u, event.v)) bad_event(event, "edge exists");
      g.add_edge(event.u, event.v);
      break;
    }
    case ChurnEvent::Kind::kDelEdge: {
      check_vertex(event.u);
      check_vertex(event.v);
      const EdgeId e = g.edge_id(event.u, event.v);
      if (e < 0) bad_event(event, "no such edge");
      if (!connected_without(g, -1, e))
        bad_event(event, "would disconnect the graph");
      g = without_edge(g, e);
      break;
    }
    case ChurnEvent::Kind::kAddVertex: {
      if (event.neighbors.empty())
        bad_event(event, "needs at least one neighbor");
      for (VertexId nb : event.neighbors) check_vertex(nb);
      const VertexId w = g.add_vertices(1);
      for (VertexId nb : event.neighbors) {
        if (g.has_edge(w, nb)) bad_event(event, "duplicate neighbor");
        g.add_edge(w, nb);
      }
      old_to_new.push_back(-1);  // padding: the new vertex has no old id
      break;
    }
    case ChurnEvent::Kind::kDelVertex: {
      check_vertex(event.u);
      if (n <= 2) bad_event(event, "graph too small");
      if (!connected_without(g, event.u, -1))
        bad_event(event, "would disconnect the graph");
      std::vector<VertexId> keep;
      for (VertexId v = 0; v < n; ++v)
        if (v != event.u) keep.push_back(v);
      std::vector<VertexId> map;
      g = g.induced_subgraph(keep, &map);
      // Compose into the batch-level mapping (old ids may already have been
      // renumbered by earlier deletions in this batch).
      for (VertexId& m : old_to_new)
        if (m >= 0) m = map[m];
      break;
    }
  }
}

std::uint64_t mix(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c) {
  return audit::mix64(audit::mix64(audit::mix64(seed, a), b), c);
}

}  // namespace

const char* to_string(ChurnEvent::Kind kind) {
  switch (kind) {
    case ChurnEvent::Kind::kAddEdge: return "add";
    case ChurnEvent::Kind::kDelEdge: return "del";
    case ChurnEvent::Kind::kAddVertex: return "addv";
    case ChurnEvent::Kind::kDelVertex: return "delv";
  }
  return "?";
}

std::string format_event(const ChurnEvent& event) {
  char buf[64];
  switch (event.kind) {
    case ChurnEvent::Kind::kAddEdge:
    case ChurnEvent::Kind::kDelEdge:
      std::snprintf(buf, sizeof(buf), "%s=%d-%d", to_string(event.kind),
                    event.u, event.v);
      return buf;
    case ChurnEvent::Kind::kDelVertex:
      std::snprintf(buf, sizeof(buf), "delv=%d", event.u);
      return buf;
    case ChurnEvent::Kind::kAddVertex: {
      std::string out = "addv=";
      for (std::size_t i = 0; i < event.neighbors.size(); ++i) {
        if (i > 0) out += '+';
        out += std::to_string(event.neighbors[i]);
      }
      return out;
    }
  }
  return "?";
}

ChurnScript parse_churn_script(std::string_view spec) {
  ChurnScript script;
  bool seen_random = false, seen_seed = false, seen_verify = false;
  std::string_view rest = spec;
  std::vector<ChurnEvent> batch;
  auto flush_batch = [&] {
    if (!batch.empty()) script.batches.push_back(std::move(batch));
    batch.clear();
  };
  while (!rest.empty()) {
    const std::size_t sep = rest.find_first_of(",;");
    std::string_view item = rest.substr(0, sep);
    const bool batch_break =
        sep != std::string_view::npos && rest[sep] == ';';
    rest = sep == std::string_view::npos ? std::string_view{}
                                         : rest.substr(sep + 1);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos)
        bad_spec(spec, "\"" + std::string(item) + "\" is not key=value");
      const std::string_view key = item.substr(0, eq);
      const std::string_view value = item.substr(eq + 1);
      if (key == "add" || key == "del") {
        ChurnEvent e;
        e.kind = key == "add" ? ChurnEvent::Kind::kAddEdge
                              : ChurnEvent::Kind::kDelEdge;
        std::tie(e.u, e.v) = parse_pair(spec, key, value);
        if (e.u == e.v) bad_spec(spec, std::string(key) + " is a self-loop");
        batch.push_back(std::move(e));
      } else if (key == "delv") {
        ChurnEvent e;
        e.kind = ChurnEvent::Kind::kDelVertex;
        e.u = parse_vertex(spec, key, value);
        batch.push_back(std::move(e));
      } else if (key == "addv") {
        ChurnEvent e;
        e.kind = ChurnEvent::Kind::kAddVertex;
        std::string_view nbrs = value;
        while (!nbrs.empty()) {
          const std::size_t plus = nbrs.find('+');
          e.neighbors.push_back(
              parse_vertex(spec, key, nbrs.substr(0, plus)));
          nbrs = plus == std::string_view::npos ? std::string_view{}
                                                : nbrs.substr(plus + 1);
        }
        if (e.neighbors.empty())
          bad_spec(spec, "addv wants at least one neighbor");
        for (std::size_t i = 0; i < e.neighbors.size(); ++i)
          for (std::size_t j = i + 1; j < e.neighbors.size(); ++j)
            if (e.neighbors[i] == e.neighbors[j])
              bad_spec(spec, "addv repeats a neighbor");
        batch.push_back(std::move(e));
      } else if (key == "random") {
        if (seen_random) bad_spec(spec, "duplicate key \"random\"");
        seen_random = true;
        const long k = parse_long(spec, key, value);
        if (k < 0 || k > 100000) bad_spec(spec, "random must be in 0..100000");
        script.random_events = static_cast<int>(k);
      } else if (key == "seed") {
        if (seen_seed) bad_spec(spec, "duplicate key \"seed\"");
        seen_seed = true;
        const long v = parse_long(spec, key, value);
        if (v < 0) bad_spec(spec, "seed must be >= 0");
        script.seed = static_cast<std::uint64_t>(v);
      } else if (key == "verify") {
        if (seen_verify) bad_spec(spec, "duplicate key \"verify\"");
        seen_verify = true;
        if (value == "on")
          script.verify = true;
        else if (value == "off")
          script.verify = false;
        else
          bad_spec(spec, "verify must be on or off");
      } else {
        bad_spec(spec, "unknown key \"" + std::string(key) + "\"");
      }
    }
    if (batch_break) flush_batch();
  }
  flush_batch();
  if (script.empty()) bad_spec(spec, "no events");
  return script;
}

std::string format_churn_script(const ChurnScript& script) {
  std::string out;
  for (std::size_t b = 0; b < script.batches.size(); ++b) {
    if (b > 0) out += ';';
    for (std::size_t i = 0; i < script.batches[b].size(); ++i) {
      if (i > 0) out += ',';
      out += format_event(script.batches[b][i]);
    }
  }
  auto add = [&](const std::string& item) {
    if (!out.empty()) out += ',';
    out += item;
  };
  if (script.random_events > 0)
    add("random=" + std::to_string(script.random_events));
  add("seed=" + std::to_string(script.seed));
  if (!script.verify) add("verify=off");
  return out;
}

Graph apply_batch(const Graph& g, const std::vector<ChurnEvent>& batch,
                  std::vector<VertexId>* old_to_new) {
  Graph out = g;
  std::vector<VertexId> map(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) map[v] = v;
  // apply_event pads `map` for added vertices (kept -1: a fresh vertex has
  // no old-graph id); entries for the original vertices stay composed
  // through deletions' renumbering.
  std::vector<VertexId> work = map;
  for (const ChurnEvent& event : batch) apply_event(out, event, work);
  work.resize(g.num_vertices());  // drop padding for added vertices
  if (old_to_new != nullptr) *old_to_new = std::move(work);
  return out;
}

ChurnEvent random_event(const Graph& g, std::uint64_t seed, int index) {
  const int n = g.num_vertices();
  if (n < 2)
    throw std::invalid_argument("churn::random_event: graph too small");
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t kind =
        mix(seed, static_cast<std::uint64_t>(index), attempt, 1) % 4;
    ChurnEvent e;
    if (kind == 0) {  // add edge
      const std::uint64_t h =
          mix(seed, static_cast<std::uint64_t>(index), attempt, 2);
      e.kind = ChurnEvent::Kind::kAddEdge;
      e.u = static_cast<VertexId>(h % n);
      e.v = static_cast<VertexId>((h >> 32) % n);
      if (e.u == e.v || g.has_edge(e.u, e.v)) continue;
      return e;
    }
    if (kind == 1) {  // delete a non-bridge edge
      if (g.num_edges() == 0) continue;
      const std::uint64_t h =
          mix(seed, static_cast<std::uint64_t>(index), attempt, 3);
      const EdgeId edge = static_cast<EdgeId>(h % g.num_edges());
      if (!connected_without(g, -1, edge)) continue;
      e.kind = ChurnEvent::Kind::kDelEdge;
      e.u = g.edge(edge).u;
      e.v = g.edge(edge).v;
      return e;
    }
    if (kind == 2) {  // add a vertex with 1..3 distinct neighbors
      const std::uint64_t h =
          mix(seed, static_cast<std::uint64_t>(index), attempt, 4);
      e.kind = ChurnEvent::Kind::kAddVertex;
      const int want = 1 + static_cast<int>(h % 3);
      for (int i = 0; i < want; ++i) {
        const auto nb = static_cast<VertexId>(
            mix(seed, static_cast<std::uint64_t>(index), attempt,
                5 + static_cast<std::uint64_t>(i)) %
            n);
        bool dup = false;
        for (VertexId prev : e.neighbors) dup = dup || prev == nb;
        if (!dup) e.neighbors.push_back(nb);
      }
      return e;
    }
    // delete a non-cut vertex
    if (n <= 2) continue;
    const std::uint64_t h =
        mix(seed, static_cast<std::uint64_t>(index), attempt, 6);
    const auto w = static_cast<VertexId>(h % n);
    if (!connected_without(g, w, -1)) continue;
    e.kind = ChurnEvent::Kind::kDelVertex;
    e.u = w;
    return e;
  }
  // Every draw failed (pathological graphs): attach a fresh leaf to vertex
  // 0 — always valid.
  ChurnEvent e;
  e.kind = ChurnEvent::Kind::kAddVertex;
  e.neighbors = {0};
  return e;
}

}  // namespace dmc::churn
