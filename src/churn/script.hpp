// Deterministic churn scripts: scripted + seeded graph mutation events.
//
// A churn script is a sequence of *batches*; each batch is a set of edge /
// vertex insertions and deletions applied atomically between two protocol
// epochs, after which the engine (engine.hpp) repairs the elimination tree
// and re-folds only the affected root-path BPT tables. The grammar mirrors
// the fault-spec style of congest/faults.hpp: comma-separated key=value
// events, with `;` separating batches:
//
//   add=0-5,del=2-3;delv=7;addv=1+4;random=3,seed=42,verify=on
//
//   add=U-V     insert edge {U, V}
//   del=U-V     delete edge {U, V}
//   addv=N1+N2  insert a fresh vertex adjacent to N1, N2, ...
//   delv=W      delete vertex W (and its incident edges)
//   random=K    append K seeded single-event batches (engine-generated,
//               connectivity-preserving, counter-based RNG — pure hash of
//               (seed, batch, attempt), same discipline as FaultInjector)
//   seed=N      seed for the random events (default 1)
//   verify=on|off  digest-check every step against a from-scratch oracle
//                  run on a clean network (default on)
//
// Vertices are *graph vertices* of the current epoch's graph (dense ids;
// deletions renumber — scripted events always refer to the numbering left
// by the previous batch). Parsing throws std::invalid_argument with a
// one-line reason on malformed input; semantic validation (existence,
// connectivity) happens at apply time in engine.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace dmc::churn {

struct ChurnEvent {
  enum class Kind { kAddEdge, kDelEdge, kAddVertex, kDelVertex };
  Kind kind = Kind::kAddEdge;
  VertexId u = -1, v = -1;          // edge endpoints / delv target (u)
  std::vector<VertexId> neighbors;  // addv attachment points
};

struct ChurnScript {
  std::vector<std::vector<ChurnEvent>> batches;  // scripted batches, in order
  int random_events = 0;   // seeded single-event batches appended at the end
  std::uint64_t seed = 1;  // counter-based RNG seed for the random events
  bool verify = true;      // oracle digest check per step

  bool empty() const { return batches.empty() && random_events == 0; }
};

ChurnScript parse_churn_script(std::string_view spec);

/// Compact round-trippable rendering (diagnostics, traces).
std::string format_churn_script(const ChurnScript& script);

const char* to_string(ChurnEvent::Kind kind);

/// One-line human rendering of an event, e.g. "add=3-7" or "addv=1+4".
std::string format_event(const ChurnEvent& event);

/// Applies one batch of events to `g`, returning the mutated graph and the
/// old->new vertex mapping (-1 for deleted vertices; identity when no
/// vertex is deleted). Events apply in order against the evolving graph.
/// Throws std::invalid_argument on semantically invalid events (unknown
/// vertices, duplicate/missing edges, self-loops) and on any event that
/// disconnects the graph (the CONGEST simulator requires connectivity).
Graph apply_batch(const Graph& g, const std::vector<ChurnEvent>& batch,
                  std::vector<VertexId>* old_to_new);

/// Generates the `index`-th seeded random event for the current graph — a
/// pure function of (seed, index) and the graph, independent of any global
/// state. Always returns a semantically valid, connectivity-preserving
/// event (falls back to an edge toggle on tiny graphs; throws only if the
/// graph has < 2 vertices).
ChurnEvent random_event(const Graph& g, std::uint64_t seed, int index);

}  // namespace dmc::churn
