#include "congest/conformance.hpp"

#include <algorithm>
#include <sstream>

#include "congest/wire.hpp"

namespace dmc::audit {

void RoundDigestSink::run_begin(const obs::RunInfo& info) {
  pending_ = mix64(pending_, mix64(static_cast<std::uint64_t>(info.n),
                                   static_cast<std::uint64_t>(info.bandwidth)));
}

void RoundDigestSink::round(const obs::RoundEvent& ev) {
  std::uint64_t h = pending_;
  pending_ = 0;
  h = mix64(h, static_cast<std::uint64_t>(ev.messages));
  h = mix64(h, static_cast<std::uint64_t>(ev.bits));
  h = mix64(h, (static_cast<std::uint64_t>(ev.max_message_bits) << 32) |
                   static_cast<std::uint64_t>(ev.done_nodes));
  digests_.push_back(h);
}

void RoundDigestSink::fault(const obs::FaultEvent& ev) {
  // Injected faults are part of the execution shape: two runs under the
  // same fault plan and seed must inject identically (the determinism
  // backbone of the fault-sweep tests).
  std::uint64_t h = mix64(static_cast<std::uint64_t>(ev.kind),
                          static_cast<std::uint64_t>(ev.round));
  h = mix64(h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.src))
                << 32) |
                   static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.dst)));
  pending_ = mix64(pending_, h + static_cast<std::uint64_t>(ev.detail));
}

void RoundDigestSink::phase(const obs::PhaseEvent& ev) {
  // Phase boundaries land in the digest of the next round (or are folded
  // into it retroactively for end-of-run closers via pending_ carry).
  std::uint64_t h = fnv1a(reinterpret_cast<const std::uint8_t*>(ev.name.data()),
                          ev.name.size());
  h = mix64(h, (static_cast<std::uint64_t>(ev.kind == obs::PhaseEvent::Kind::End)
                << 32) |
                   static_cast<std::uint64_t>(ev.depth));
  pending_ = mix64(pending_, h);
}

namespace {

RunFingerprint run_once(const Graph& g, congest::NetworkConfig cfg,
                        const ProtocolRunner& runner) {
  RoundDigestSink sink;
  cfg.audit = true;
  cfg.sink = &sink;
  congest::Network net(g, cfg);
  RunFingerprint fp;
  fp.verdict = runner(net);
  fp.rounds = net.stats().rounds;
  fp.messages = net.stats().messages;
  fp.declared_bits = net.stats().total_bits;
  fp.encoded_bits = net.stats().encoded_bits;
  fp.content_digest = net.audit_digest();
  fp.round_digests = sink.digests();
  return fp;
}

/// Compares two fingerprints field by field; appends one Divergence per
/// differing field. The three gates scale the comparison down for runs
/// where a strict match is not meaningful: `compare_rounds` covers the
/// rounds/messages totals, `compare_structure` the declared bit volume and
/// per-round trace digests, `compare_content` the payload content digest
/// (off for id permutation runs — ids are hashed into it — and, by
/// default, for reverse-order runs, where the shared interner renames
/// classes; see ConformanceOptions::order_compare_content). The verdict is
/// always compared.
void compare(const RunFingerprint& base, const RunFingerprint& other,
             const std::string& check, bool compare_content,
             bool compare_structure, bool compare_rounds,
             std::vector<Divergence>& out) {
  auto diverge = [&](const std::string& detail) {
    out.push_back(Divergence{check, detail});
  };
  if (base.verdict != other.verdict)
    diverge("verdict differs: \"" + base.verdict + "\" vs \"" + other.verdict +
            "\"");
  if (compare_rounds) {
    if (base.rounds != other.rounds)
      diverge("round count differs: " + std::to_string(base.rounds) + " vs " +
              std::to_string(other.rounds));
    if (base.messages != other.messages)
      diverge("message count differs: " + std::to_string(base.messages) +
              " vs " + std::to_string(other.messages));
  }
  if (compare_structure) {
    if (base.declared_bits != other.declared_bits)
      diverge("declared bit volume differs: " +
              std::to_string(base.declared_bits) + " vs " +
              std::to_string(other.declared_bits));
    if (base.round_digests != other.round_digests) {
      std::size_t r = 0;
      const std::size_t limit =
          std::min(base.round_digests.size(), other.round_digests.size());
      while (r < limit && base.round_digests[r] == other.round_digests[r]) ++r;
      diverge("per-round trace digests first differ at round " +
              std::to_string(r) + " (of " +
              std::to_string(base.round_digests.size()) + " vs " +
              std::to_string(other.round_digests.size()) + " rounds)");
    }
  }
  if (compare_content && base.content_digest != other.content_digest)
    diverge("message content digest differs");
}

}  // namespace

std::string ConformanceReport::format() const {
  std::ostringstream out;
  out << "conformance: " << (ok() ? "PASS" : "FAIL") << "\n"
      << "  baseline: verdict=" << baseline.verdict
      << " rounds=" << baseline.rounds << " messages=" << baseline.messages
      << " declared_bits=" << baseline.declared_bits
      << " encoded_bits=" << baseline.encoded_bits << "\n"
      << "  determinism (identical re-run):   "
      << (deterministic ? "ok" : "FAIL") << "\n"
      << "  order-obliviousness (reverse step order): "
      << (order_oblivious ? "ok" : "FAIL") << "\n"
      << "  id-obliviousness (permuted ids):  "
      << (id_oblivious ? "ok" : "FAIL") << "\n";
  for (const Divergence& d : divergences)
    out << "  divergence [" << d.check << "] " << d.detail << "\n";
  return out.str();
}

ConformanceReport check_conformance(const Graph& g, congest::NetworkConfig cfg,
                                    const ProtocolRunner& runner,
                                    const ConformanceOptions& options) {
  ConformanceReport report;
  report.baseline = run_once(g, cfg, runner);

  const std::size_t before_determinism = report.divergences.size();
  compare(report.baseline, run_once(g, cfg, runner), "determinism",
          /*compare_content=*/true, /*compare_structure=*/true,
          /*compare_rounds=*/true, report.divergences);
  report.deterministic = report.divergences.size() == before_determinism;

  congest::NetworkConfig reversed = cfg;
  reversed.step_order = congest::NetworkConfig::StepOrder::kReverse;
  const std::size_t before_order = report.divergences.size();
  compare(report.baseline, run_once(g, reversed, runner), "order-obliviousness",
          /*compare_content=*/options.order_compare_content,
          /*compare_structure=*/options.order_compare_content,
          /*compare_rounds=*/true, report.divergences);
  report.order_oblivious = report.divergences.size() == before_order;

  const std::size_t before_ids = report.divergences.size();
  for (unsigned seed : options.id_seeds) {
    if (seed == cfg.id_seed) continue;
    congest::NetworkConfig permuted = cfg;
    permuted.id_seed = seed;
    compare(report.baseline, run_once(g, permuted, runner), "id-obliviousness",
            /*compare_content=*/false,
            /*compare_structure=*/options.require_equal_rounds,
            /*compare_rounds=*/options.require_equal_rounds,
            report.divergences);
  }
  report.id_oblivious = report.divergences.size() == before_ids;
  return report;
}

}  // namespace dmc::audit
