// dmc::audit — model-conformance harness for CONGEST protocols.
//
// A protocol conforms to the CONGEST model only if its behavior is a
// function of the communication graph, the id assignment, and nothing
// else. Three properties are cheap to check dynamically and catch the
// standard simulation sins:
//
//   - determinism: running the identical configuration twice produces the
//     identical execution (catches rand()/time()/global mutable state —
//     any hidden stream advances between the runs);
//   - order-obliviousness: stepping the nodes in reverse order within each
//     round changes nothing (rounds are simultaneous in the model, so any
//     divergence means programs communicate outside the message channels);
//   - id-obliviousness: re-running under permuted node identifiers yields
//     the same *verdict* (and, for the protocols of this repo, the same
//     round count — see ConformanceOptions::require_equal_rounds).
//
// Executions are compared by fingerprint: the audit layer's rolling
// content digest (network.hpp: audit_digest — per-round, order-insensitive
// within a round so the reverse-order check is meaningful), the per-round
// trace digests collected by RoundDigestSink (reusing dmc::obs), and the
// NetworkStats totals. `dmc --audit` drives this harness from the CLI;
// tests/conformance_test.cpp drives it over every dist protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "obs/trace.hpp"

namespace dmc::audit {

/// TraceSink reducing the round/phase event streams to one digest per
/// round: a mix of the round's message count, declared bits, largest
/// message, done-node count, and the names/depths of the phase spans that
/// opened or closed at it. Two executions with equal digest sequences took
/// the same per-round communication shape through the same phase structure.
class RoundDigestSink final : public obs::TraceSink {
 public:
  void run_begin(const obs::RunInfo& info) override;
  void round(const obs::RoundEvent& ev) override;
  void phase(const obs::PhaseEvent& ev) override;
  void fault(const obs::FaultEvent& ev) override;

  const std::vector<std::uint64_t>& digests() const { return digests_; }

 private:
  std::vector<std::uint64_t> digests_;
  std::uint64_t pending_ = 0;  // phase events fold here until their round
};

/// Everything one execution is reduced to for comparison.
struct RunFingerprint {
  std::string verdict;           // protocol outcome, rendered by the runner
  long rounds = 0;               // NetworkStats::rounds
  long messages = 0;             // NetworkStats::messages
  long long declared_bits = 0;   // NetworkStats::total_bits
  long long encoded_bits = 0;    // NetworkStats::encoded_bits (audit)
  std::uint64_t content_digest = 0;           // Network::audit_digest()
  std::vector<std::uint64_t> round_digests;   // RoundDigestSink
};

/// Runs one protocol on a prepared network and renders its outcome as a
/// short string (the id-oblivious comparison currency, e.g. "holds=1").
/// The harness owns network construction; the runner must not keep state
/// across invocations.
using ProtocolRunner = std::function<std::string(congest::Network&)>;

struct ConformanceOptions {
  /// Extra id permutation seeds for the id-obliviousness runs (compared
  /// against the base config's own seed).
  std::vector<unsigned> id_seeds = {1, 2};
  /// Whether id permutations must preserve the exact round count (and the
  /// declared-bit volume / per-round digests with it). Provably true on
  /// vertex-transitive graphs such as cliques, where any id permutation is
  /// an automorphism; on asymmetric graphs the elimination-tree shape — and
  /// with it the round structure — legitimately depends on which node wins
  /// each min-id election, so set this false and only the verdict is
  /// compared across seeds.
  bool require_equal_rounds = true;
  /// Whether the reverse-step-order run must also reproduce the exact
  /// message content digest, declared bit volume, and per-round trace
  /// digests. Off by default: the dist protocols share one BPT interner
  /// across simulated nodes (sound — class ids are just names,
  /// Theorem 4.2), but interning order follows node step order, so
  /// reversal renames classes, re-encodes the same tables under different
  /// ids, and shifts the send-time num_types() the declared class widths
  /// are derived from. Verdict, round count, and message count are always
  /// compared. Turn this on for engine-free protocols (e.g. the congest
  /// primitives), where the execution must be bit-identical either way.
  bool order_compare_content = false;
};

/// One observed difference between the baseline execution and a check run.
struct Divergence {
  std::string check;   // "determinism" | "order-obliviousness" | "id-obliviousness"
  std::string detail;  // which fingerprint field differed, with both values
};

struct ConformanceReport {
  RunFingerprint baseline;
  bool deterministic = false;
  bool order_oblivious = false;
  bool id_oblivious = false;
  std::vector<Divergence> divergences;

  bool ok() const { return deterministic && order_oblivious && id_oblivious; }
  /// Multi-line human-readable summary (one line per check + divergences).
  std::string format() const;
};

/// Runs the full battery: baseline, identical re-run, reverse step order,
/// and one run per extra id seed. Forces cfg.audit = true and replaces
/// cfg.sink with the harness's digest sink for every run. The runner is
/// invoked once per run on a freshly constructed network over `g`.
ConformanceReport check_conformance(const Graph& g,
                                    congest::NetworkConfig cfg,
                                    const ProtocolRunner& runner,
                                    const ConformanceOptions& options = {});

}  // namespace dmc::audit
