#include "congest/faults.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "congest/wire.hpp"

namespace dmc::congest {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("bad fault spec \"" + std::string(spec) +
                              "\": " + why);
}

double parse_prob(std::string_view spec, std::string_view key,
                  std::string_view value) {
  double p = 0;
  const auto res = std::from_chars(value.data(), value.data() + value.size(), p);
  if (res.ec != std::errc{} || res.ptr != value.data() + value.size())
    bad_spec(spec, std::string(key) + " wants a number, got \"" +
                       std::string(value) + "\"");
  if (p < 0.0 || p > 1.0)
    bad_spec(spec, std::string(key) + " must be a probability in [0,1]");
  return p;
}

long parse_long(std::string_view spec, std::string_view key,
                std::string_view value) {
  long v = 0;
  const auto res = std::from_chars(value.data(), value.data() + value.size(), v);
  if (res.ec != std::errc{} || res.ptr != value.data() + value.size())
    bad_spec(spec, std::string(key) + " wants an integer, got \"" +
                       std::string(value) + "\"");
  return v;
}

// The corrupted-payload marker carries no information; its codec exists so
// audit-enabled networks can describe it by name (it is injected below the
// send path and never audited as an outgoing payload).
const bool kCorruptedPayloadCodec = [] {
  audit::register_codec<CorruptedPayload>(
      "congest.CorruptedPayload",
      [](const CorruptedPayload&, const audit::WireContext&,
         audit::BitWriter&) {},
      [](const audit::WireContext&, audit::BitReader&) {
        return CorruptedPayload{};
      },
      [](const CorruptedPayload& a, const CorruptedPayload& b) {
        return a == b;
      });
  return true;
}();

}  // namespace

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  std::string_view rest = spec;
  // Scalar keys may appear at most once (`crash` legitimately repeats, one
  // entry per crash fault). Last-wins would silently mask typos like
  // "drop=0.1,drop=0.9", so duplicates are rejected outright.
  std::vector<std::string> seen;
  auto note_key = [&](std::string_view logical_key) {
    const std::string k(logical_key);
    for (const std::string& s : seen)
      if (s == k) bad_spec(spec, "duplicate key \"" + k + "\"");
    seen.push_back(k);
  };
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      bad_spec(spec, "\"" + std::string(item) + "\" is not key=value");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key != "crash") note_key(key == "duplicate" ? "dup" : key);
    if (key == "drop") {
      plan.drop = parse_prob(spec, key, value);
    } else if (key == "dup" || key == "duplicate") {
      plan.duplicate = parse_prob(spec, key, value);
    } else if (key == "corrupt") {
      plan.corrupt = parse_prob(spec, key, value);
    } else if (key == "reorder") {
      plan.reorder = parse_prob(spec, key, value);
    } else if (key == "reorder_max") {
      const long v = parse_long(spec, key, value);
      if (v < 1 || v > 64) bad_spec(spec, "reorder_max must be in 1..64");
      plan.reorder_max = static_cast<int>(v);
    } else if (key == "seed") {
      const long v = parse_long(spec, key, value);
      if (v < 0) bad_spec(spec, "seed must be >= 0");
      plan.seed = static_cast<std::uint64_t>(v);
    } else if (key == "crash") {
      // crash=ID@rROUND — node ID crash-stops at the given physical round.
      const std::size_t at = value.find("@r");
      if (at == std::string_view::npos)
        bad_spec(spec, "crash wants ID@rROUND, got \"" + std::string(value) +
                           "\"");
      CrashFault crash;
      crash.node = static_cast<VertexId>(
          parse_long(spec, "crash node", value.substr(0, at)));
      crash.round = parse_long(spec, "crash round", value.substr(at + 2));
      if (crash.node < 0) bad_spec(spec, "crash node id must be >= 0");
      if (crash.round < 0) bad_spec(spec, "crash round must be >= 0");
      plan.crashes.push_back(crash);
    } else if (key == "transport") {
      if (value == "raw")
        plan.raw_transport = true;
      else if (value == "reliable")
        plan.raw_transport = false;
      else
        bad_spec(spec, "transport must be raw or reliable");
    } else {
      bad_spec(spec, "unknown key \"" + std::string(key) + "\"");
    }
  }
  return plan;
}

std::string format_fault_plan(const FaultPlan& plan) {
  std::string out;
  char buf[64];
  auto add = [&](const char* key, double p) {
    if (p <= 0) return;
    std::snprintf(buf, sizeof(buf), "%s%s=%g", out.empty() ? "" : ",", key, p);
    out += buf;
  };
  add("drop", plan.drop);
  add("dup", plan.duplicate);
  add("corrupt", plan.corrupt);
  add("reorder", plan.reorder);
  if (plan.reorder > 0 && plan.reorder_max != 2) {
    std::snprintf(buf, sizeof(buf), ",reorder_max=%d", plan.reorder_max);
    out += buf;
  }
  for (const CrashFault& c : plan.crashes) {
    std::snprintf(buf, sizeof(buf), "%scrash=%d@r%ld", out.empty() ? "" : ",",
                  c.node, c.round);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%sseed=%llu", out.empty() ? "" : ",",
                static_cast<unsigned long long>(plan.seed));
  out += buf;
  if (plan.raw_transport) out += ",transport=raw";
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

double FaultInjector::u01(std::uint64_t purpose, VertexId src, VertexId dst,
                          long round, std::uint64_t salt) const {
  std::uint64_t h = audit::mix64(plan_.seed, purpose);
  h = audit::mix64(h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                           src))
                       << 32) |
                          static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(dst)));
  h = audit::mix64(h, static_cast<std::uint64_t>(round));
  h = audit::mix64(h, salt);
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultInjector::Fate FaultInjector::fate(VertexId src, VertexId dst, long round,
                                        std::uint64_t salt) const {
  Fate fate;
  if (u01(1, src, dst, round, salt) < plan_.drop) {
    fate.drop = true;
  } else {
    if (u01(2, src, dst, round, salt) < plan_.corrupt) fate.corrupt = true;
    if (plan_.reorder > 0 && u01(3, src, dst, round, salt) < plan_.reorder) {
      const double r = u01(4, src, dst, round, salt);
      fate.delay = 1 + static_cast<int>(r * plan_.reorder_max) %
                           plan_.reorder_max;
    }
  }
  if (u01(5, src, dst, round, salt) < plan_.duplicate) {
    fate.duplicate = true;
    fate.dup_corrupt = u01(6, src, dst, round, salt) < plan_.corrupt;
    const double r = u01(7, src, dst, round, salt);
    const int span = plan_.reorder_max > 0 ? plan_.reorder_max : 2;
    fate.dup_delay = 1 + static_cast<int>(r * span) % span;
  }
  return fate;
}

}  // namespace dmc::congest
