// Deterministic fault injection for the CONGEST simulator.
//
// A FaultPlan describes how the physical links and nodes misbehave:
// per-delivery message drop, duplication, bounded reordering (a frame may
// be delayed a few rounds and overtake later traffic), payload corruption
// (flagged, so the transport checksum / audit layer can detect it — the
// simulator moves C++ values, so corruption cannot literally flip payload
// bits), and crash-stop node faults scheduled at explicit rounds.
//
// Every probabilistic decision is a pure hash of (seed, sender id,
// receiver id, physical round, purpose) — a counter-based RNG rather than
// a shared stream — so the injected fault pattern is a deterministic
// function of the plan and the traffic, independent of node step order and
// of how many other links carry messages (dmc-lint's nondeterminism rule
// stays fully satisfied: no wall clocks, no global RNG state).
//
// The injector only *decides* fates; the delivery machinery that enacts
// them lives in reliable.hpp (shared by the raw faulty path and the
// reliable-transport path of Network::run). Injected faults surface as
// dmc::obs FaultEvents and NetworkStats fault counters, so traces show
// exactly what was injected. See docs/ROBUSTNESS.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace dmc::congest {

/// Crash-stop fault: `node` (a node *id*, not a graph vertex) stops
/// participating — no steps, no sends — from physical round `round` on.
/// Ids absent from a network (e.g. a sub-network run on an induced
/// component) are inert there.
struct CrashFault {
  VertexId node = -1;
  long round = 0;
};

struct FaultPlan {
  double drop = 0.0;       // P[delivery is dropped]
  double duplicate = 0.0;  // P[an extra copy of the frame is delivered later]
  double corrupt = 0.0;    // P[delivered frame arrives corruption-flagged]
  double reorder = 0.0;    // P[delivery is delayed by 1..reorder_max rounds]
  int reorder_max = 2;     // bound on the extra delay (>= 1 when reorder > 0)
  std::vector<CrashFault> crashes;
  std::uint64_t seed = 1;
  /// Parsed from "transport=raw": run the protocols directly over the
  /// faulty links instead of layering the reliable shim under them (for
  /// degradation experiments; verdicts are then untrusted).
  bool raw_transport = false;
  /// Hidden (never parsed from a CLI spec): `dmc-mc --self-check` plants a
  /// known ordering bug in the reliable transport's delivery handler — the
  /// piggybacked ack is processed and the frame accepted before the
  /// dup-suppression check rejects *stale* sequence numbers, so a delayed
  /// duplicate from an earlier virtual round can satisfy the current
  /// barrier without depositing the current payload. The model checker
  /// must find the interleaving that triggers it (see src/mc/ and
  /// docs/STATIC_ANALYSIS.md, "Model checking").
  bool mc_planted_ack_before_dup_check = false;

  bool has_link_faults() const {
    return drop > 0 || duplicate > 0 || corrupt > 0 || reorder > 0;
  }
  bool empty() const { return !has_link_faults() && crashes.empty(); }
};

/// Parses the CLI fault spec, a comma-separated key=value list:
///
///   drop=0.1,dup=0.05,corrupt=0.01,reorder=0.1,reorder_max=3,
///   crash=3@r20,seed=42,transport=raw
///
/// `dup`/`duplicate` are synonyms; `crash=ID@rROUND` may repeat;
/// `transport=` accepts `reliable` (default) or `raw`. Throws
/// std::invalid_argument on malformed or out-of-range values.
FaultPlan parse_fault_plan(std::string_view spec);

/// Compact round-trippable rendering of a plan (diagnostics, traces).
std::string format_fault_plan(const FaultPlan& plan);

/// Marker delivered in place of a raw-transport payload whose frame was
/// corruption-flagged: receivers' std::any_cast<RealPayload> fails, so the
/// message is effectively garbage-but-detectable, mirroring a checksum
/// failure. (Registered with the wire-audit layer for completeness; it
/// never crosses NodeCtx::send, only deliveries.)
struct CorruptedPayload {
  bool operator==(const CorruptedPayload&) const = default;
};

/// Per-delivery fate of one frame, decided by pure hashing.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  struct Fate {
    bool drop = false;
    bool corrupt = false;      // primary copy arrives corruption-flagged
    int delay = 0;             // extra rounds beyond the normal 1-round hop
    bool duplicate = false;    // a second copy is delivered too
    bool dup_corrupt = false;
    int dup_delay = 0;         // extra rounds for the duplicate copy
  };

  /// Fate of the frame sent src -> dst at physical round `round`. `salt`
  /// distinguishes multiple frames on one link in one round (retransmit
  /// copies never collide with the original's draw).
  Fate fate(VertexId src, VertexId dst, long round, std::uint64_t salt) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  double u01(std::uint64_t purpose, VertexId src, VertexId dst, long round,
             std::uint64_t salt) const;

  FaultPlan plan_;
};

}  // namespace dmc::congest
