// Fragmentation of large logical messages over the CONGEST bandwidth.
//
// A k-bit logical payload costs ceil(k / B) rounds on one edge (the paper's
// Theta(k / log n) remark). The simulator transfers C++ values, so
// fragmentation is modeled: the sender emits ceil(k / (B - header)) chunk
// messages of which only the last carries the value; the receiver exposes
// the value when the final chunk arrives. Chunks on one port are delivered
// in order, one per round.
#pragma once

#include <any>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/network.hpp"

namespace dmc::congest {

/// Chunk wire format.
struct Fragment {
  std::any value;  // engaged only on the final chunk
  /// Declared size of the whole logical payload (the `bits` passed to
  /// FragmentSender::enqueue). The audit layer checks the carried value's
  /// true encoded size against this — the chunk stream was budgeted from
  /// it — rather than against the final chunk's own declared bits.
  long logical_bits = 0;
};

/// Sender side: queue logical payloads per port, pump one chunk per round.
class FragmentSender {
 public:
  /// Per-chunk framing overhead (sequencing / last-chunk marker).
  static constexpr int kHeaderBits = 8;

  /// Queues a logical payload of `bits` bits for `port`.
  void enqueue(int port, std::any value, long bits) {
    if (bits <= 0) bits = 1;
    queues_.resize(std::max<std::size_t>(queues_.size(), port + 1));
    queues_[port].push_back(Pending{std::move(value), bits, bits});
  }

  bool idle() const {
    for (const auto& q : queues_)
      if (!q.empty()) return false;
    return true;
  }

  /// Sends at most one chunk per queued port; call once per round. Every
  /// chunk must make real payload progress, so the bandwidth has to exceed
  /// the chunk header — otherwise the ceil(k / (B - header)) round
  /// accounting would silently degrade to meaningless 1-bit chunks.
  void pump(NodeCtx& ctx) {
    if (ctx.bandwidth() <= kHeaderBits)
      throw std::logic_error(
          "FragmentSender::pump: bandwidth (" +
          std::to_string(ctx.bandwidth()) + " bits) must exceed the " +
          std::to_string(kHeaderBits) +
          "-bit chunk header; raise NetworkConfig::min_bandwidth");
    const int payload_budget = ctx.bandwidth() - kHeaderBits;
    for (int port = 0; port < static_cast<int>(queues_.size()); ++port) {
      auto& q = queues_[port];
      if (q.empty()) continue;
      Pending& p = q.front();
      const long chunk_bits = std::min<long>(p.bits_left, payload_budget);
      p.bits_left -= chunk_bits;
      Fragment frag;
      frag.logical_bits = p.total_bits;
      if (p.bits_left <= 0) frag.value = std::move(p.value);
      ctx.send(port, Message(std::move(frag),
                             static_cast<int>(chunk_bits) + kHeaderBits));
      if (p.bits_left <= 0) q.pop_front();
    }
  }

 private:
  struct Pending {
    std::any value;
    long bits_left = 0;
    long total_bits = 0;
  };
  std::vector<std::deque<Pending>> queues_;
};

/// Polls the message on `port` this round for a completed logical payload.
inline std::optional<std::any> poll_fragment(NodeCtx& ctx, int port) {
  const auto& msg = ctx.recv(port);
  if (!msg.has_value()) return std::nullopt;
  const Fragment* frag = std::any_cast<Fragment>(&msg->value);
  if (frag == nullptr || !frag->value.has_value()) return std::nullopt;
  return frag->value;
}

}  // namespace dmc::congest
