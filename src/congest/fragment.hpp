// Fragmentation of large logical messages over the CONGEST bandwidth.
//
// A k-bit logical payload costs ceil(k / B) rounds on one edge (the paper's
// Theta(k / log n) remark). The simulator transfers C++ values, so
// fragmentation is modeled: the sender emits ceil(k / (B - header)) chunk
// messages of which only the last carries the value; the receiver exposes
// the value when the final chunk arrives. Chunks on one port are delivered
// in order, one per round.
#pragma once

#include <algorithm>
#include <any>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/network.hpp"

namespace dmc::congest {

/// Chunk wire format. The sequencing fields ride inside the declared
/// kHeaderBits chunk header (message sequence within a sliding window,
/// chunk index, chunk count) — they are what makes reassembly robust to
/// the duplicated and reordered deliveries a faulty transport can produce
/// (faults.hpp).
struct Fragment {
  std::any value;  // engaged only on the final chunk
  /// Declared size of the whole logical payload (the `bits` passed to
  /// FragmentSender::enqueue). The audit layer checks the carried value's
  /// true encoded size against this — the chunk stream was budgeted from
  /// it — rather than against the final chunk's own declared bits.
  long logical_bits = 0;
  /// Per-(sender, port) logical message sequence number.
  std::uint32_t msg_seq = 0;
  int chunk = 0;        // chunk index within the message
  int num_chunks = 1;   // total chunks of the message
};

/// Sender side: queue logical payloads per port, pump one chunk per round.
class FragmentSender {
 public:
  /// Per-chunk framing overhead (sequencing / last-chunk marker).
  static constexpr int kHeaderBits = 8;

  /// Queues a logical payload of `bits` bits for `port`.
  void enqueue(int port, std::any value, long bits) {
    if (bits <= 0) bits = 1;
    queues_.resize(std::max<std::size_t>(queues_.size(), port + 1));
    next_seq_.resize(queues_.size(), 0);
    queues_[port].push_back(Pending{std::move(value), bits, bits,
                                    next_seq_[port]++, 0});
  }

  bool idle() const {
    for (const auto& q : queues_)
      if (!q.empty()) return false;
    return true;
  }

  /// Sends at most one chunk per queued port; call once per round. Every
  /// chunk must make real payload progress, so the bandwidth has to exceed
  /// the chunk header — otherwise the ceil(k / (B - header)) round
  /// accounting would silently degrade to meaningless 1-bit chunks.
  void pump(NodeCtx& ctx) {
    if (ctx.bandwidth() <= kHeaderBits)
      throw std::logic_error(
          "FragmentSender::pump: bandwidth (" +
          std::to_string(ctx.bandwidth()) + " bits) must exceed the " +
          std::to_string(kHeaderBits) +
          "-bit chunk header; raise NetworkConfig::min_bandwidth");
    const int payload_budget = ctx.bandwidth() - kHeaderBits;
    for (int port = 0; port < static_cast<int>(queues_.size()); ++port) {
      auto& q = queues_[port];
      if (q.empty()) continue;
      Pending& p = q.front();
      const long chunk_bits = std::min<long>(p.bits_left, payload_budget);
      p.bits_left -= chunk_bits;
      Fragment frag;
      frag.logical_bits = p.total_bits;
      frag.msg_seq = p.msg_seq;
      frag.chunk = p.chunks_sent++;
      frag.num_chunks = static_cast<int>((p.total_bits + payload_budget - 1) /
                                         payload_budget);
      if (p.bits_left <= 0) frag.value = std::move(p.value);
      ctx.send(port, Message(std::move(frag),
                             static_cast<int>(chunk_bits) + kHeaderBits));
      if (p.bits_left <= 0) q.pop_front();
    }
  }

 private:
  struct Pending {
    std::any value;
    long bits_left = 0;
    long total_bits = 0;
    std::uint32_t msg_seq = 0;
    int chunks_sent = 0;
  };
  std::vector<std::deque<Pending>> queues_;
  std::vector<std::uint32_t> next_seq_;  // per port
};

/// Polls the message on `port` this round for a completed logical payload.
/// Only sound on a perfect (in-order, exactly-once) network: a duplicated
/// final chunk would surface the payload twice, a lost interior chunk goes
/// unnoticed. Protocol code uses FragmentReassembler, which is robust to
/// both; this helper remains for unit tests of the perfect path.
inline std::optional<std::any> poll_fragment(NodeCtx& ctx, int port) {
  const Message* msg = ctx.recv(port);
  if (msg == nullptr) return std::nullopt;
  const Fragment* frag = std::any_cast<Fragment>(&msg->value);
  if (frag == nullptr || !frag->value.has_value()) return std::nullopt;
  return frag->value;
}

/// Receiver-side reassembly hardened against faulty delivery: chunk
/// insertion is idempotent (keyed by message sequence number and chunk
/// index, so duplicates are absorbed), chunks may arrive in any order, and
/// completed messages are surfaced exactly once, in sequence order — at
/// most one per poll, matching the one-logical-message-per-round cadence
/// of the perfect path. Messages whose chunks never all arrive (raw lossy
/// transport) are simply never surfaced; under the reliable transport
/// every message completes.
class FragmentReassembler {
 public:
  /// Examines this round's message on `port`; returns a completed logical
  /// payload when one is deliverable in order. Call once per round per
  /// port (like poll_fragment).
  std::optional<std::any> poll(NodeCtx& ctx, int port) {
    if (port >= static_cast<int>(ports_.size())) ports_.resize(port + 1);
    PortState& state = ports_[port];
    const Message* msg = ctx.recv(port);
    if (msg != nullptr) {
      const Fragment* frag = std::any_cast<Fragment>(&msg->value);
      if (frag != nullptr) absorb(state, *frag);
    }
    ctx.note_reassembly_depth(
        static_cast<int>(state.partials.size() + state.ready.size()));
    // Surface the next in-sequence completed message, if any.
    for (std::size_t i = 0; i < state.ready.size(); ++i) {
      if (state.ready[i].seq != state.next_deliver) continue;
      std::any value = std::move(state.ready[i].value);
      state.ready.erase(state.ready.begin() + i);
      state.next_deliver += 1;
      return value;
    }
    return std::nullopt;
  }

 private:
  struct Partial {
    std::uint32_t seq = 0;
    std::vector<bool> have;  // chunk index -> received
    int have_count = 0;
    std::any value;
  };
  struct Ready {
    std::uint32_t seq = 0;
    std::any value;
  };
  struct PortState {
    std::uint32_t next_deliver = 0;  // next msg_seq to surface
    std::vector<Partial> partials;
    std::vector<Ready> ready;
  };

  void absorb(PortState& state, const Fragment& frag) {
    if (frag.msg_seq < state.next_deliver) return;  // stale duplicate
    for (const Ready& r : state.ready)
      if (r.seq == frag.msg_seq) return;  // completed, awaiting delivery
    Partial* partial = nullptr;
    for (Partial& p : state.partials)
      if (p.seq == frag.msg_seq) partial = &p;
    if (partial == nullptr) {
      state.partials.push_back(Partial{});
      partial = &state.partials.back();
      partial->seq = frag.msg_seq;
      partial->have.assign(std::max(frag.num_chunks, 1), false);
    }
    if (frag.chunk < 0 || frag.chunk >= static_cast<int>(partial->have.size()))
      return;  // malformed header (e.g. forged under corruption): ignore
    if (partial->have[frag.chunk]) return;  // duplicate chunk: idempotent
    partial->have[frag.chunk] = true;
    partial->have_count += 1;
    if (frag.value.has_value() && !partial->value.has_value())
      partial->value = frag.value;
    if (partial->have_count == static_cast<int>(partial->have.size())) {
      Ready done;
      done.seq = partial->seq;
      done.value = std::move(partial->value);
      for (std::size_t i = 0; i < state.partials.size(); ++i)
        if (state.partials[i].seq == done.seq) {
          state.partials.erase(state.partials.begin() + i);
          break;
        }
      state.ready.push_back(std::move(done));
    }
  }

  std::vector<PortState> ports_;
};

}  // namespace dmc::congest
