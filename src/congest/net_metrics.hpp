// Resolved metric handles of one Network (internal to src/congest).
//
// The Network constructor resolves every congest/transport instrument
// once against the configured registry (NetworkConfig::metrics, falling
// back to metrics::global()) and keeps the handles here, so the per-send
// and per-round update paths are pointer dereferences plus relaxed
// atomics — never a registry lookup. The whole struct exists only when a
// registry is configured; Network::metrics_ stays null otherwise and
// every instrumentation site is a single pointer test.
//
// Counter totals are deliberately mirrors of NetworkStats fields
// (congest.messages == stats.messages, transport.frames == stats.frames,
// ...): tools/dmc.cpp reconciles the two after every metrics run, so an
// instrumentation site that drifts from its stats twin fails loudly.
#pragma once

#include "metrics/metrics.hpp"

namespace dmc::congest::detail {

struct NetMetrics {
  // CONGEST layer (mirrors of NetworkStats rounds/messages/total_bits).
  metrics::Counter* rounds = nullptr;
  metrics::Counter* messages = nullptr;
  metrics::Counter* bits = nullptr;
  metrics::Counter* serial_sections = nullptr;
  // Per-directed-link congestion: one histogram sample per link per round
  // in which that link carried protocol traffic.
  metrics::Histogram* link_round_bits = nullptr;
  metrics::Histogram* link_round_msgs = nullptr;
  metrics::Gauge* link_max_bits = nullptr;        // lifetime max per link
  metrics::Gauge* utilization_permille = nullptr; // bits / (links*B*rounds)
  metrics::Gauge* reassembly_depth = nullptr;     // max reassembly backlog
  // Reliable-transport layer (mirrors of the NetworkStats frame counters;
  // all stay 0 on the perfect path).
  metrics::Counter* frames = nullptr;
  metrics::Counter* frame_bits = nullptr;
  metrics::Counter* marker_frames = nullptr;
  metrics::Counter* retransmissions = nullptr;
  metrics::Counter* dup_suppressed = nullptr;
  metrics::Histogram* ack_latency = nullptr;  // physical rounds tx -> ack

  // Round-end fold state (touched serially, between steps).
  long metric_rounds = 0;      // rounds folded since construction
  long long cum_bits = 0;      // protocol bits folded since construction

  void resolve(metrics::Registry& reg) {
    rounds = &reg.counter("congest.rounds");
    messages = &reg.counter("congest.messages");
    bits = &reg.counter("congest.bits");
    serial_sections = &reg.counter("congest.serial_sections");
    link_round_bits = &reg.histogram("congest.link.round_bits");
    link_round_msgs = &reg.histogram("congest.link.round_messages");
    link_max_bits = &reg.gauge("congest.link.max_bits");
    utilization_permille = &reg.gauge("congest.bandwidth.utilization_permille");
    reassembly_depth = &reg.gauge("congest.reassembly.max_depth");
    frames = &reg.counter("transport.frames");
    frame_bits = &reg.counter("transport.frame_bits");
    marker_frames = &reg.counter("transport.marker_frames");
    retransmissions = &reg.counter("transport.retransmissions");
    dup_suppressed = &reg.counter("transport.dup_suppressed");
    ack_latency = &reg.histogram("transport.ack_latency_rounds");
  }
};

}  // namespace dmc::congest::detail
