#include "congest/network.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <random>
#include <stdexcept>

#include "congest/net_metrics.hpp"
#include "congest/reliable.hpp"
#include "congest/wire.hpp"
#include "graph/algorithms.hpp"
#include "par/pool.hpp"

namespace dmc::congest {

namespace {
// Sentinels for Network::wake_request_: kNoWake = the node made no request
// this step (stays restless); kSleepForever = sleep until traffic.
constexpr int kNoWake = -1;
constexpr int kSleepForever = std::numeric_limits<int>::max();
}  // namespace

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kCompleted:
      return "completed";
    case RunStatus::kRoundLimit:
      return "round-limit";
    case RunStatus::kCrashed:
      return "crashed";
  }
  return "?";
}

int id_bits(int n) {
  return std::max(1, static_cast<int>(std::bit_width(static_cast<unsigned>(std::max(1, n - 1)))));
}

int count_bits(std::uint64_t value) {
  return std::max(1, static_cast<int>(std::bit_width(value)));
}

VertexId NodeCtx::id() const { return net_.ids_[vertex_]; }
int NodeCtx::degree() const { return net_.graph_.degree(vertex_); }
int NodeCtx::n() const { return net_.n(); }
int NodeCtx::round() const { return net_.round_; }
int NodeCtx::bandwidth() const { return net_.bandwidth_; }
bool NodeCtx::traced() const { return net_.traced(); }
bool NodeCtx::audited() const { return net_.cfg_.audit; }

void NodeCtx::annotate(std::string_view name) {
  if (net_.cfg_.sink == nullptr) return;
  if (net_.stepping_parallel_) {
    // Buffered during a parallel step and replayed in step order after the
    // join (the sink is not thread-safe and event order must match the
    // serial execution). Dedup happens at replay, like the live path.
    auto& buf = net_.pending_annotations_[vertex_];
    if (buf.empty() || buf.back() != name) buf.emplace_back(name);
    return;
  }
  net_.annotate(name);
}

VertexId NodeCtx::neighbor_id(int port) const {
  return net_.ids_[net_.graph_.incident(vertex_).at(port).first];
}

int NodeCtx::port_of(VertexId id) const {
  if (id < 0 || id >= static_cast<VertexId>(net_.vertex_of_id_.size()))
    return -1;
  return net_.graph_.port_of(vertex_, net_.vertex_of_id_[id]);
}

void NodeCtx::send(int port, Message msg) {
  if (port < 0 || port >= net_.graph_.degree(vertex_))
    throw std::out_of_range("NodeCtx::send: bad port");
  Message& out = net_.out_slot(vertex_, port);
  if (Network::engaged(out))
    throw std::logic_error("NodeCtx::send: port already used this round");
  if (msg.bits <= 0)
    throw std::invalid_argument(
        "NodeCtx::send: message of payload type " +
        audit::payload_type_name(msg.value) + " declares " +
        std::to_string(msg.bits) +
        " bits; every message must declare a positive bit size (bits = 0 "
        "would ride free in the bandwidth accounting)");
  if (msg.bits > net_.bandwidth_)
    throw std::invalid_argument(
        "NodeCtx::send: message exceeds CONGEST bandwidth (" +
        std::to_string(msg.bits) + " > " + std::to_string(net_.bandwidth_) +
        " bits); fragment it");
  if (net_.cfg_.audit) net_.audit_send(vertex_, port, msg);
  // Atomic accumulation: sends from concurrently-stepped nodes race on
  // the counters, and sums/maxes are order-independent. Serial runs take
  // the same path (uncontended atomics, same results).
  par::atomic_fetch_add(net_.stats_.messages, 1L);
  par::atomic_fetch_add(net_.stats_.total_bits,
                        static_cast<long long>(msg.bits));
  par::atomic_fetch_max(net_.stats_.max_message_bits, msg.bits);
  par::atomic_fetch_max(net_.round_max_message_bits_, msg.bits);
  if (net_.metrics_ != nullptr) net_.note_send_metrics(vertex_, port, msg.bits);
  out = std::move(msg);
  // Perfect-path delivery walks exactly the links sent on this round; the
  // fault paths scan their channel tables instead and never drain the list.
  if (net_.fault_rt_ == nullptr)
    net_.sent_links_[par::atomic_claim(net_.sent_count_)] =
        net_.link_of(vertex_, port);
}

void NodeCtx::send_all(const Message& msg) {
  for (int port = 0; port < degree(); ++port) send(port, msg);
}

void NodeCtx::send_unreliable(int port, Message msg) {
  send(port, std::move(msg));  // validation + accounting first
  if (net_.fault_rt_ != nullptr) net_.fault_rt_->note_best_effort(vertex_, port);
}

const Message* NodeCtx::recv(int port) const {
  if (port < 0 || port >= net_.graph_.degree(vertex_))
    throw std::out_of_range("NodeCtx::recv: bad port");
  const Message& m = net_.inbox_[net_.link_of(vertex_, port)];
  return Network::engaged(m) ? &m : nullptr;
}

void NodeCtx::wake_at(int round) {
  // A wake in the past (or present) is a request to keep stepping.
  if (round <= net_.round_) return;
  net_.sched_request(vertex_, round);
}

void NodeCtx::sleep() { net_.sched_request(vertex_, kSleepForever); }

void NodeCtx::note_reassembly_depth(int depth) {
  if (net_.metrics_ != nullptr) net_.metrics_->reassembly_depth->max_of(depth);
}

void Network::audit_send(int vertex, int port, const Message& msg) {
  audit::WireContext ctx;
  ctx.n = n();
  ctx.bandwidth = bandwidth_;
  audit::AuditOutcome outcome;
  try {
    outcome = audit::audit_payload(msg.value, msg.bits, ctx);
  } catch (const audit::WireError& e) {
    throw std::invalid_argument(
        std::string(e.what()) + " [sender id " +
        std::to_string(ids_[vertex]) + ", port " + std::to_string(port) +
        ", round " + std::to_string(round_) + "]");
  }
  stats_.audited_messages += 1;
  stats_.encoded_bits += outcome.encoded_bits;
  // Order-insensitive within the round: sum of per-message hashes.
  const VertexId receiver = ids_[graph_.incident(vertex).at(port).first];
  std::uint64_t h = audit::mix64(outcome.content_hash,
                                 static_cast<std::uint64_t>(ids_[vertex]));
  h = audit::mix64(h, static_cast<std::uint64_t>(receiver));
  h = audit::mix64(h, (static_cast<std::uint64_t>(msg.bits) << 32) |
                          static_cast<std::uint64_t>(outcome.encoded_bits));
  audit_round_acc_ += h;
}

Network::Network(const Graph& g, NetworkConfig cfg)
    : graph_(g), cfg_(cfg), flight_(cfg.flight_capacity) {
  if (g.num_vertices() == 0)
    throw std::invalid_argument("Network: empty graph");
  if (!is_connected(g))
    throw std::invalid_argument("Network: CONGEST networks are connected");
  bandwidth_ = std::max(cfg_.min_bandwidth,
                        cfg_.bandwidth_multiplier * id_bits(g.num_vertices()));
  ids_.resize(g.num_vertices());
  std::iota(ids_.begin(), ids_.end(), 0);
  if (cfg_.id_seed != 0) {
    std::mt19937_64 rng(cfg_.id_seed);
    std::shuffle(ids_.begin(), ids_.end(), rng);
  }
  vertex_of_id_.resize(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) vertex_of_id_[ids_[v]] = v;
  // Our private copy of the graph serves every per-round incidence query;
  // finalize its CSR arena now so run() never hits the lazy rebuild (the
  // per-round path stays allocation-free and safe under parallel stepping).
  graph_.finalize();
  const int n_ = graph_.num_vertices();
  link_offset_.resize(n_ + 1, 0);
  for (int v = 0; v < n_; ++v)
    link_offset_[v + 1] = link_offset_[v] + graph_.degree(v);
  const int links = link_offset_.back();
  inbox_.resize(links);
  outbox_.resize(links);
  peer_link_.resize(links, -1);
  link_src_.resize(links, -1);
  for (int v = 0; v < n_; ++v) {
    const auto& inc = graph_.incident(v);
    for (int port = 0; port < static_cast<int>(inc.size()); ++port) {
      const int l = link_of(v, port);
      link_src_[l] = v;
      const VertexId w = inc[port].first;
      peer_link_[l] = link_of(w, graph_.port_of(w, v));
    }
  }
  // Pre-size every per-round buffer to its worst case so run() performs no
  // allocation on the perfect path (the obs/metrics zero-allocation tests
  // pin this down).
  sent_links_.resize(links);
  inbox_links_.reserve(links);
  sched_done_.resize(n_, 0);
  sched_asleep_.resize(n_, 0);
  wake_request_.resize(n_, kNoWake);
  wake_heap_.reserve(n_);
  restless_.reserve(n_);
  restless_pos_.resize(n_, -1);
  active_.reserve(n_);
  pending_active_.reserve(2 * static_cast<std::size_t>(links));
  active_mark_.resize(n_, 0);
  if (cfg_.metrics == nullptr) cfg_.metrics = metrics::global();
  if (cfg_.metrics != nullptr) {
    metrics_ = std::make_unique<detail::NetMetrics>();
    metrics_->resolve(*cfg_.metrics);
    // Per-link round accumulators exist only while metrics are on; the
    // disabled path allocates nothing beyond the fixed tables above.
    link_round_bits_.assign(links, 0);
    link_round_msgs_.assign(links, 0);
    link_total_bits_.assign(links, 0);
  }
  if (cfg_.faults.has_value())
    fault_rt_ = std::make_unique<detail::FaultRuntime>(*this, *cfg_.faults);
}

std::size_t Network::memory_bytes() const {
  const std::size_t n_ = static_cast<std::size_t>(n());
  const std::size_t links = inbox_.size();
  std::size_t total = 0;
  total += (ids_.size() + vertex_of_id_.size()) * sizeof(VertexId);
  total += link_offset_.size() * sizeof(int);
  total += (peer_link_.size() + link_src_.size()) * sizeof(int);
  total += 2 * links * sizeof(Message);          // inbox_ + outbox_
  total += links * sizeof(int);                  // sent_links_
  total += links * sizeof(int);                  // inbox_links_ (reserved)
  total += 2 * links * sizeof(int);              // pending_active_ (reserved)
  total += n_ * (2 * sizeof(char) + 4 * sizeof(int));  // scheduler arrays
  total += n_ * (sizeof(std::pair<int, int>) + sizeof(int));  // heap + active
  total += (link_round_bits_.size() + link_total_bits_.size()) *
               sizeof(long long) +
           link_round_msgs_.size() * sizeof(long);
  return total;
}

void Network::sched_reset() {
  const int n_ = n();
  std::fill(sched_done_.begin(), sched_done_.end(), 0);
  std::fill(sched_asleep_.begin(), sched_asleep_.end(), 0);
  std::fill(wake_request_.begin(), wake_request_.end(), kNoWake);
  wake_heap_.clear();
  // Every node starts restless: the first round steps everyone, exactly
  // like dense stepping, and the first note_stepped() settles the flags.
  restless_.clear();
  for (int v = 0; v < n_; ++v) {
    restless_.push_back(v);
    restless_pos_[v] = v;
  }
  active_.clear();
  pending_active_.clear();
  std::fill(active_mark_.begin(), active_mark_.end(), 0);
  active_stamp_ = 0;
  sched_done_count_ = 0;
}

void Network::restless_add(int v) {
  if (restless_pos_[v] >= 0) return;
  restless_pos_[v] = static_cast<int>(restless_.size());
  restless_.push_back(v);
}

void Network::restless_remove(int v) {
  const int pos = restless_pos_[v];
  if (pos < 0) return;
  const int last = restless_.back();
  restless_[pos] = last;
  restless_pos_[last] = pos;
  restless_.pop_back();
  restless_pos_[v] = -1;
}

void Network::sched_request(int v, int round) {
  if (!cfg_.sparse_stepping) return;
  int& req = wake_request_[v];
  req = (req == kNoWake) ? round : std::min(req, round);
}

void Network::sched_activate(int v) { pending_active_.push_back(v); }

void Network::sched_build_active() {
  active_.clear();
  const int stamp = ++active_stamp_;
  auto push = [&](int v) {
    if (active_mark_[v] == stamp) return;
    active_mark_[v] = stamp;
    active_.push_back(v);
  };
  for (int v : restless_) push(v);
  const auto later = [](const std::pair<int, int>& a,
                        const std::pair<int, int>& b) { return a > b; };
  while (!wake_heap_.empty() && wake_heap_.front().first <= round_) {
    push(wake_heap_.front().second);
    std::pop_heap(wake_heap_.begin(), wake_heap_.end(), later);
    wake_heap_.pop_back();
  }
  for (int v : pending_active_) push(v);
  pending_active_.clear();
  // Sorted ascending: serial stepping visits the active set in the same
  // (per-vertex) order dense stepping would, so annotation streams and any
  // order-sensitive protocol bug reproduce identically.
  std::sort(active_.begin(), active_.end());
}

void Network::sched_note_stepped(int v, bool done_now) {
  const int req = wake_request_[v];
  wake_request_[v] = kNoWake;
  if (done_now != (sched_done_[v] != 0)) {
    sched_done_[v] = done_now ? 1 : 0;
    sched_done_count_ += done_now ? 1 : -1;
  }
  if (req != kNoWake) {
    sched_asleep_[v] = 1;
    restless_remove(v);
    if (req != kSleepForever) {
      wake_heap_.emplace_back(req, v);
      std::push_heap(wake_heap_.begin(), wake_heap_.end(),
                     [](const std::pair<int, int>& a,
                        const std::pair<int, int>& b) { return a > b; });
    }
  } else {
    sched_asleep_[v] = 0;
    if (done_now)
      restless_remove(v);
    else
      restless_add(v);
  }
}

void Network::note_send_metrics(int vertex, int port, int bits) {
  metrics_->messages->add(1);
  metrics_->bits->add(bits);
  // Per-link round loads; atomic because concurrently-stepped nodes send
  // in parallel (same contract as the stats counters above).
  const int link = link_offset_[vertex] + port;
  par::atomic_fetch_add(link_round_bits_[link], static_cast<long long>(bits));
  par::atomic_fetch_add(link_round_msgs_[link], 1L);
}

void Network::metrics_skip_rounds(long skip) {
  detail::NetMetrics& m = *metrics_;
  auto refresh_utilization = [&] {
    const long long links = static_cast<long long>(link_round_bits_.size());
    if (links > 0 && bandwidth_ > 0)
      m.utilization_permille->set(m.cum_bits * 1000 /
                                  (links * bandwidth_ * m.metric_rounds));
  };
  if (cfg_.metrics_interval <= 0 || !cfg_.metrics_flush) {
    m.rounds->add(skip);
    m.metric_rounds += skip;
    refresh_utilization();
    return;
  }
  // Replay each crossed flush boundary with the round counters it would
  // have seen, so periodic snapshots of a fast-forwarded run match the
  // round-by-round execution snapshot for snapshot.
  long remaining = skip;
  while (remaining > 0) {
    const long to_boundary =
        cfg_.metrics_interval - (m.metric_rounds % cfg_.metrics_interval);
    const long step = std::min(to_boundary, remaining);
    m.rounds->add(step);
    m.metric_rounds += step;
    remaining -= step;
    refresh_utilization();
    if (m.metric_rounds % cfg_.metrics_interval == 0)
      cfg_.metrics_flush(m.metric_rounds);
  }
}

void Network::metrics_round_end() {
  detail::NetMetrics& m = *metrics_;
  m.rounds->add(1);
  m.metric_rounds += 1;
  long long round_bits = 0;
  const int links = static_cast<int>(link_round_bits_.size());
  for (int l = 0; l < links; ++l) {
    if (link_round_msgs_[l] == 0) continue;  // idle link: no sample
    const long long b = link_round_bits_[l];
    m.link_round_bits->record(b);
    m.link_round_msgs->record(link_round_msgs_[l]);
    round_bits += b;
    link_total_bits_[l] += b;
    m.link_max_bits->max_of(link_total_bits_[l]);
    link_round_bits_[l] = 0;
    link_round_msgs_[l] = 0;
  }
  m.cum_bits += round_bits;
  if (links > 0 && bandwidth_ > 0)
    m.utilization_permille->set(
        m.cum_bits * 1000 /
        (static_cast<long long>(links) * bandwidth_ * m.metric_rounds));
  if (cfg_.metrics_interval > 0 && cfg_.metrics_flush &&
      m.metric_rounds % cfg_.metrics_interval == 0)
    cfg_.metrics_flush(m.metric_rounds);
}

void Network::note_serial_section() {
  if (metrics_ != nullptr) metrics_->serial_sections->add(1);
}

Network::~Network() = default;

void Network::phase_begin(std::string_view name) {
  flight_.record_phase(round_, static_cast<int>(span_stack_.size()),
                       /*end=*/false, name);
  if (cfg_.sink == nullptr) {
    // No trace events, but fault-aware / phase-tracking networks still
    // maintain the span stack so degraded outcomes can name their phase.
    if (cfg_.track_phases || fault_rt_ != nullptr)
      span_stack_.emplace_back(name);
    return;
  }
  close_annotation();
  obs::PhaseEvent ev;
  ev.kind = obs::PhaseEvent::Kind::Begin;
  ev.name = std::string(name);
  ev.round = round_;
  ev.depth = static_cast<int>(span_stack_.size());
  span_stack_.push_back(ev.name);
  cfg_.sink->phase(ev);
}

void Network::phase_end() {
  if (cfg_.sink == nullptr) {
    if ((cfg_.track_phases || fault_rt_ != nullptr) && !span_stack_.empty()) {
      flight_.record_phase(round_, static_cast<int>(span_stack_.size()) - 1,
                           /*end=*/true, span_stack_.back());
      span_stack_.pop_back();
    }
    return;
  }
  if (!span_stack_.empty())
    flight_.record_phase(round_, static_cast<int>(span_stack_.size()) - 1,
                         /*end=*/true, span_stack_.back());
  if (span_stack_.empty())
    throw std::logic_error("Network::phase_end: no open phase");
  close_annotation();
  obs::PhaseEvent ev;
  ev.kind = obs::PhaseEvent::Kind::End;
  ev.name = span_stack_.back();
  ev.round = round_;
  ev.depth = static_cast<int>(span_stack_.size()) - 1;
  span_stack_.pop_back();
  cfg_.sink->phase(ev);
}

void Network::annotate(std::string_view name) {
  if (cfg_.sink == nullptr || name == annotation_) return;
  close_annotation();
  obs::PhaseEvent ev;
  ev.kind = obs::PhaseEvent::Kind::Begin;
  ev.name = std::string(name);
  ev.round = round_;
  ev.depth = static_cast<int>(span_stack_.size());
  annotation_ = ev.name;
  cfg_.sink->phase(ev);
}

void Network::close_annotation() {
  if (cfg_.sink == nullptr || annotation_.empty()) return;
  obs::PhaseEvent ev;
  ev.kind = obs::PhaseEvent::Kind::End;
  ev.name = std::move(annotation_);
  ev.round = round_;
  ev.depth = static_cast<int>(span_stack_.size());
  annotation_.clear();
  cfg_.sink->phase(ev);
}

long Network::run(std::vector<std::unique_ptr<NodeProgram>>& programs) {
  RunOutcome outcome = run_outcome(programs);
  switch (outcome.status) {
    case RunStatus::kCompleted:
      return outcome.rounds;
    case RunStatus::kRoundLimit: {
      std::string msg = "Network::run: round limit exceeded";
      if (!outcome.stalled_phase.empty())
        msg += " in phase '" + outcome.stalled_phase + "'";
      throw RoundLimitError(msg, std::move(outcome));
    }
    case RunStatus::kCrashed: {
      std::string msg = "Network::run: " +
                        std::to_string(outcome.crashed.size()) +
                        " node(s) crash-stopped; outputs untrusted";
      if (!outcome.stalled_phase.empty())
        msg += " (stalled in phase '" + outcome.stalled_phase + "')";
      throw CrashedError(msg, std::move(outcome));
    }
  }
  return outcome.rounds;
}

RunOutcome Network::run_outcome(
    std::vector<std::unique_ptr<NodeProgram>>& programs) {
  if (static_cast<int>(programs.size()) != n())
    throw std::invalid_argument("Network::run: one program per vertex needed");
  if (cfg_.sparse_stepping) sched_reset();
  if (fault_rt_ != nullptr) return fault_rt_->run(programs);
  return run_perfect(programs);
}

int Network::effective_step_threads() const {
  if (cfg_.audit || serial_section_depth_ > 0) return 1;
  return cfg_.threads <= 0 ? par::hardware_threads() : cfg_.threads;
}

void Network::step_programs(std::vector<std::unique_ptr<NodeProgram>>& programs,
                            int threads) {
  const int n_ = n();
  const bool reverse = cfg_.step_order == NetworkConfig::StepOrder::kReverse;
  if (threads <= 1) {
    for (int i = 0; i < n_; ++i) {
      const int v = reverse ? n_ - 1 - i : i;
      NodeCtx ctx(*this, v);
      programs[v]->on_round(ctx);
    }
    return;
  }
  const bool buffer_annotations = cfg_.sink != nullptr;
  if (buffer_annotations) {
    pending_annotations_.assign(n_, {});
    stepping_parallel_ = true;
  }
  par::parallel_for(threads, static_cast<std::size_t>(n_),
                    [&](std::size_t i) {
                      const int v =
                          reverse ? n_ - 1 - static_cast<int>(i)
                                  : static_cast<int>(i);
                      NodeCtx ctx(*this, v);
                      programs[v]->on_round(ctx);
                    });
  if (buffer_annotations) {
    stepping_parallel_ = false;
    // Replay in step order: each vertex's calls in call order, vertices in
    // the order a serial step would have run them — the resulting event
    // stream (and any digest over it) matches the serial one exactly.
    for (int i = 0; i < n_; ++i) {
      const int v = reverse ? n_ - 1 - i : i;
      for (const std::string& name : pending_annotations_[v]) annotate(name);
    }
  }
}

void Network::step_active(std::vector<std::unique_ptr<NodeProgram>>& programs,
                          int threads) {
  const int count = static_cast<int>(active_.size());
  const bool reverse = cfg_.step_order == NetworkConfig::StepOrder::kReverse;
  if (threads <= 1) {
    for (int i = 0; i < count; ++i) {
      const int v = active_[reverse ? count - 1 - i : i];
      NodeCtx ctx(*this, v);
      programs[v]->on_round(ctx);
    }
    return;
  }
  const bool buffer_annotations = cfg_.sink != nullptr;
  if (buffer_annotations) {
    pending_annotations_.assign(n(), {});
    stepping_parallel_ = true;
  }
  par::parallel_for(threads, static_cast<std::size_t>(count),
                    [&](std::size_t i) {
                      const int v =
                          active_[reverse ? count - 1 - static_cast<int>(i)
                                          : static_cast<int>(i)];
                      NodeCtx ctx(*this, v);
                      programs[v]->on_round(ctx);
                    });
  if (buffer_annotations) {
    stepping_parallel_ = false;
    for (int i = 0; i < count; ++i) {
      const int v = active_[reverse ? count - 1 - i : i];
      for (const std::string& name : pending_annotations_[v]) annotate(name);
    }
  }
}

RunOutcome Network::run_perfect(
    std::vector<std::unique_ptr<NodeProgram>>& programs) {
  const int n_ = n();
  obs::TraceSink* const sink = cfg_.sink;
  long prev_messages = stats_.messages;
  long long prev_bits = stats_.total_bits;
  {
    obs::RunInfo info;
    info.n = n_;
    info.bandwidth = bandwidth_;
    info.first_round = round_;
    flight_.record_run_begin(info);
    if (sink != nullptr) sink->run_begin(info);
  }
  long rounds_this_run = 0;
  const int step_threads = effective_step_threads();
  const bool sparse = cfg_.sparse_stepping;
  // Bulk round skip: a stretch of rounds with an empty active set is a
  // pure clock advance — jump straight to the next wake. Observers no
  // longer forfeit the skip: a trace sink gets one coalesced
  // QuiescentEvent (expanded to per-round events by sinks that need
  // them), metrics get the equivalent bulk fold (metrics_skip_rounds).
  // Only the audit digest and the round-begin hook still force
  // round-by-round execution: both run arbitrary per-round logic whose
  // absence would change their outputs.
  const bool can_fast_forward = sparse && !cfg_.audit && !round_begin_hook_;
  for (;;) {
    if (sparse) {
      sched_build_active();
      if (can_fast_forward && active_.empty()) {
        // Nobody restless, no traffic, no due wake. Termination is not
        // being missed: had all nodes been done with no sends, the
        // previous round's completion check would have broken out.
        const long next_wake = wake_heap_.empty()
                                   ? std::numeric_limits<long>::max()
                                   : wake_heap_.front().first;
        const long to_cap =
            static_cast<long>(cfg_.max_rounds) + 1 - rounds_this_run;
        const long skip = std::min(next_wake - round_, to_cap);
        // Counts are constant for the whole stretch: nothing steps during
        // quiescence, and the wake contract forces any node whose done()
        // flips on the clock to wake at the flip round — it would be in
        // the heap, bounding `skip`.
        obs::QuiescentEvent ev;
        ev.first_round = round_;
        ev.skipped_rounds = skip;
        ev.active_nodes = n_ - sched_done_count_;
        ev.done_nodes = sched_done_count_;
        round_ += static_cast<int>(skip);
        rounds_this_run += skip;
        stats_.rounds += skip;
        flight_.record_quiescent(ev);
        if (metrics_ != nullptr) metrics_skip_rounds(skip);
        if (sink != nullptr) sink->quiescent(ev);
        if (rounds_this_run > cfg_.max_rounds) {
          if (sink != nullptr) {
            close_annotation();
            sink->run_end();
          }
          flight_.record_run_end(round_);
          RunOutcome outcome;
          outcome.status = RunStatus::kRoundLimit;
          outcome.rounds = rounds_this_run;
          outcome.virtual_rounds = rounds_this_run;
          for (const std::string& name : span_stack_) {
            if (!outcome.stalled_phase.empty()) outcome.stalled_phase += '/';
            outcome.stalled_phase += name;
          }
          return outcome;
        }
        sched_build_active();  // the skipped-to round's wakes are now due
      }
    }
    if (round_begin_hook_) round_begin_hook_();
    // Step the active set (or every node when dense). Rounds are
    // simultaneous in the model, so the step order must be immaterial;
    // kReverse exists so the conformance harness can prove that for each
    // protocol, and that same property is what makes parallel stepping
    // sound (see docs/PERFORMANCE.md).
    if (sparse)
      step_active(programs, step_threads);
    else
      step_programs(programs, step_threads);
    stats_.active_steps +=
        sparse ? static_cast<long long>(active_.size()) : n_;
    // Check completion *after* the step (so final outputs are set). Sparse
    // runs keep an incremental done count, traced or not (done() is
    // re-evaluated only when a node steps — the wake contract in
    // NodeCtx::wake_at makes that exact, and the scale-labelled tests pin
    // RoundEvent::done_nodes to dense stepping's per-round scan); an O(n)
    // scan per traced round would sink million-vertex traced runs.
    bool all_done = true;
    int done_count = 0;
    if (sparse) {
      for (int v : active_) {
        NodeCtx ctx(*this, v);
        sched_note_stepped(v, programs[v]->done(ctx));
      }
      done_count = sched_done_count_;
      all_done = sched_done_count_ == n_;
    } else if (sink == nullptr) {
      for (int v = 0; v < n_ && all_done; ++v) {
        NodeCtx ctx(*this, v);
        all_done = programs[v]->done(ctx);
      }
    } else {
      for (int v = 0; v < n_; ++v) {
        NodeCtx ctx(*this, v);
        if (programs[v]->done(ctx))
          ++done_count;
        else
          all_done = false;
      }
    }
    // Deliver: clear last round's consumed inbox slots, then walk exactly
    // the links sent on this round — outbox of u's port to w lands in w's
    // reverse slot. A quiet round costs nothing.
    for (const int l : inbox_links_) inbox_[l] = Message{};
    inbox_links_.clear();
    const int sent = sent_count_;
    sent_count_ = 0;
    const bool any_message = sent > 0;
    for (int i = 0; i < sent; ++i) {
      const int l = sent_links_[i];
      const int pl = peer_link_[l];
      inbox_[pl] = std::move(outbox_[l]);
      outbox_[l] = Message{};
      inbox_links_.push_back(pl);
      if (sparse) {
        sched_activate(link_src_[pl]);  // receiver reads it next round
        sched_activate(link_src_[l]);   // sender stays hot one more round
      }
    }
    ++round_;
    ++rounds_this_run;
    stats_.rounds += 1;
    if (metrics_ != nullptr) metrics_round_end();
    if (cfg_.audit) {
      audit_digest_ = audit::mix64(audit_digest_, audit_round_acc_);
      audit_round_acc_ = 0;
    }
    {
      // The flight recorder keeps its own delta baselines: it records on
      // every path, traced or not.
      obs::RoundEvent ev;
      ev.round = round_ - 1;
      ev.messages = stats_.messages - flight_prev_messages_;
      ev.bits = stats_.total_bits - flight_prev_bits_;
      ev.max_message_bits = round_max_message_bits_;
      // Dense untraced runs short-circuit the done scan; -1 marks the
      // count as unknown in the dump.
      const bool counted = sparse || sink != nullptr;
      ev.active_nodes = counted ? n_ - done_count : -1;
      ev.done_nodes = counted ? done_count : -1;
      flight_.record_round(ev);
      flight_prev_messages_ = stats_.messages;
      flight_prev_bits_ = stats_.total_bits;
    }
    if (sink != nullptr) {
      obs::RoundEvent ev;
      ev.round = round_ - 1;
      ev.messages = stats_.messages - prev_messages;
      ev.bits = stats_.total_bits - prev_bits;
      ev.max_message_bits = round_max_message_bits_;
      ev.active_nodes = n_ - done_count;
      ev.done_nodes = done_count;
      sink->round(ev);
      prev_messages = stats_.messages;
      prev_bits = stats_.total_bits;
    }
    round_max_message_bits_ = 0;  // per-round for the flight recorder too
    if (all_done && !any_message) break;
    if (rounds_this_run > cfg_.max_rounds) {
      if (sink != nullptr) {
        close_annotation();
        sink->run_end();
      }
      flight_.record_run_end(round_);
      RunOutcome outcome;
      outcome.status = RunStatus::kRoundLimit;
      outcome.rounds = rounds_this_run;
      outcome.virtual_rounds = rounds_this_run;
      if (!span_stack_.empty()) {
        for (const std::string& name : span_stack_) {
          if (!outcome.stalled_phase.empty()) outcome.stalled_phase += '/';
          outcome.stalled_phase += name;
        }
      }
      return outcome;
    }
  }
  if (sink != nullptr) {
    close_annotation();  // protocol annotations never outlive their run
    sink->run_end();
  }
  flight_.record_run_end(round_);
  RunOutcome outcome;
  outcome.status = RunStatus::kCompleted;
  outcome.rounds = rounds_this_run;
  outcome.virtual_rounds = rounds_this_run;
  return outcome;
}

}  // namespace dmc::congest
