#include "congest/network.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

#include "congest/net_metrics.hpp"
#include "congest/reliable.hpp"
#include "congest/wire.hpp"
#include "graph/algorithms.hpp"
#include "par/pool.hpp"

namespace dmc::congest {

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kCompleted:
      return "completed";
    case RunStatus::kRoundLimit:
      return "round-limit";
    case RunStatus::kCrashed:
      return "crashed";
  }
  return "?";
}

int id_bits(int n) {
  return std::max(1, static_cast<int>(std::bit_width(static_cast<unsigned>(std::max(1, n - 1)))));
}

int count_bits(std::uint64_t value) {
  return std::max(1, static_cast<int>(std::bit_width(value)));
}

VertexId NodeCtx::id() const { return net_.ids_[vertex_]; }
int NodeCtx::degree() const { return net_.graph_.degree(vertex_); }
int NodeCtx::n() const { return net_.n(); }
int NodeCtx::round() const { return net_.round_; }
int NodeCtx::bandwidth() const { return net_.bandwidth_; }
bool NodeCtx::traced() const { return net_.traced(); }
bool NodeCtx::audited() const { return net_.cfg_.audit; }

void NodeCtx::annotate(std::string_view name) {
  if (net_.cfg_.sink == nullptr) return;
  if (net_.stepping_parallel_) {
    // Buffered during a parallel step and replayed in step order after the
    // join (the sink is not thread-safe and event order must match the
    // serial execution). Dedup happens at replay, like the live path.
    auto& buf = net_.pending_annotations_[vertex_];
    if (buf.empty() || buf.back() != name) buf.emplace_back(name);
    return;
  }
  net_.annotate(name);
}

VertexId NodeCtx::neighbor_id(int port) const {
  return net_.ids_[net_.graph_.incident(vertex_).at(port).first];
}

int NodeCtx::port_of(VertexId id) const {
  const auto& inc = net_.graph_.incident(vertex_);
  for (int port = 0; port < static_cast<int>(inc.size()); ++port)
    if (net_.ids_[inc[port].first] == id) return port;
  return -1;
}

void NodeCtx::send(int port, Message msg) {
  auto& out = net_.outbox_[vertex_];
  if (port < 0 || port >= static_cast<int>(out.size()))
    throw std::out_of_range("NodeCtx::send: bad port");
  if (out[port].has_value())
    throw std::logic_error("NodeCtx::send: port already used this round");
  if (msg.bits <= 0)
    throw std::invalid_argument(
        "NodeCtx::send: message of payload type " +
        audit::payload_type_name(msg.value) + " declares " +
        std::to_string(msg.bits) +
        " bits; every message must declare a positive bit size (bits = 0 "
        "would ride free in the bandwidth accounting)");
  if (msg.bits > net_.bandwidth_)
    throw std::invalid_argument(
        "NodeCtx::send: message exceeds CONGEST bandwidth (" +
        std::to_string(msg.bits) + " > " + std::to_string(net_.bandwidth_) +
        " bits); fragment it");
  if (net_.cfg_.audit) net_.audit_send(vertex_, port, msg);
  // Atomic accumulation: sends from concurrently-stepped nodes race on
  // the counters, and sums/maxes are order-independent. Serial runs take
  // the same path (uncontended atomics, same results).
  par::atomic_fetch_add(net_.stats_.messages, 1L);
  par::atomic_fetch_add(net_.stats_.total_bits,
                        static_cast<long long>(msg.bits));
  par::atomic_fetch_max(net_.stats_.max_message_bits, msg.bits);
  par::atomic_fetch_max(net_.round_max_message_bits_, msg.bits);
  if (net_.metrics_ != nullptr) net_.note_send_metrics(vertex_, port, msg.bits);
  out[port] = std::move(msg);
}

void NodeCtx::send_all(const Message& msg) {
  for (int port = 0; port < degree(); ++port) send(port, msg);
}

void NodeCtx::send_unreliable(int port, Message msg) {
  send(port, std::move(msg));  // validation + accounting first
  if (net_.fault_rt_ != nullptr) net_.fault_rt_->note_best_effort(vertex_, port);
}

const std::optional<Message>& NodeCtx::recv(int port) const {
  return net_.inbox_[vertex_].at(port);
}

void NodeCtx::note_reassembly_depth(int depth) {
  if (net_.metrics_ != nullptr) net_.metrics_->reassembly_depth->max_of(depth);
}

void Network::audit_send(int vertex, int port, const Message& msg) {
  audit::WireContext ctx;
  ctx.n = n();
  ctx.bandwidth = bandwidth_;
  audit::AuditOutcome outcome;
  try {
    outcome = audit::audit_payload(msg.value, msg.bits, ctx);
  } catch (const audit::WireError& e) {
    throw std::invalid_argument(
        std::string(e.what()) + " [sender id " +
        std::to_string(ids_[vertex]) + ", port " + std::to_string(port) +
        ", round " + std::to_string(round_) + "]");
  }
  stats_.audited_messages += 1;
  stats_.encoded_bits += outcome.encoded_bits;
  // Order-insensitive within the round: sum of per-message hashes.
  const VertexId receiver = ids_[graph_.incident(vertex).at(port).first];
  std::uint64_t h = audit::mix64(outcome.content_hash,
                                 static_cast<std::uint64_t>(ids_[vertex]));
  h = audit::mix64(h, static_cast<std::uint64_t>(receiver));
  h = audit::mix64(h, (static_cast<std::uint64_t>(msg.bits) << 32) |
                          static_cast<std::uint64_t>(outcome.encoded_bits));
  audit_round_acc_ += h;
}

Network::Network(const Graph& g, NetworkConfig cfg) : graph_(g), cfg_(cfg) {
  if (g.num_vertices() == 0)
    throw std::invalid_argument("Network: empty graph");
  if (!is_connected(g))
    throw std::invalid_argument("Network: CONGEST networks are connected");
  bandwidth_ = std::max(cfg_.min_bandwidth,
                        cfg_.bandwidth_multiplier * id_bits(g.num_vertices()));
  ids_.resize(g.num_vertices());
  std::iota(ids_.begin(), ids_.end(), 0);
  if (cfg_.id_seed != 0) {
    std::mt19937_64 rng(cfg_.id_seed);
    std::shuffle(ids_.begin(), ids_.end(), rng);
  }
  vertex_of_id_.resize(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) vertex_of_id_[ids_[v]] = v;
  inbox_.resize(g.num_vertices());
  outbox_.resize(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) {
    inbox_[v].resize(g.degree(v));
    outbox_[v].resize(g.degree(v));
  }
  peer_port_.resize(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto& inc = g.incident(v);
    peer_port_[v].assign(inc.size(), -1);
    for (int port = 0; port < static_cast<int>(inc.size()); ++port) {
      const auto& winc = g.incident(inc[port].first);
      for (int wp = 0; wp < static_cast<int>(winc.size()); ++wp) {
        if (winc[wp].first == v) {
          peer_port_[v][port] = wp;
          break;
        }
      }
    }
  }
  if (cfg_.metrics == nullptr) cfg_.metrics = metrics::global();
  if (cfg_.metrics != nullptr) {
    metrics_ = std::make_unique<detail::NetMetrics>();
    metrics_->resolve(*cfg_.metrics);
    // Directed-link index: link_offset_[v] + port. The round accumulators
    // exist only while metrics are on; the disabled path allocates nothing.
    link_offset_.resize(g.num_vertices() + 1, 0);
    for (int v = 0; v < g.num_vertices(); ++v)
      link_offset_[v + 1] = link_offset_[v] + g.degree(v);
    const int links = link_offset_.back();
    link_round_bits_.assign(links, 0);
    link_round_msgs_.assign(links, 0);
    link_total_bits_.assign(links, 0);
  }
  if (cfg_.faults.has_value())
    fault_rt_ = std::make_unique<detail::FaultRuntime>(*this, *cfg_.faults);
}

void Network::note_send_metrics(int vertex, int port, int bits) {
  metrics_->messages->add(1);
  metrics_->bits->add(bits);
  // Per-link round loads; atomic because concurrently-stepped nodes send
  // in parallel (same contract as the stats counters above).
  const int link = link_offset_[vertex] + port;
  par::atomic_fetch_add(link_round_bits_[link], static_cast<long long>(bits));
  par::atomic_fetch_add(link_round_msgs_[link], 1L);
}

void Network::metrics_round_end() {
  detail::NetMetrics& m = *metrics_;
  m.rounds->add(1);
  m.metric_rounds += 1;
  long long round_bits = 0;
  const int links = static_cast<int>(link_round_bits_.size());
  for (int l = 0; l < links; ++l) {
    if (link_round_msgs_[l] == 0) continue;  // idle link: no sample
    const long long b = link_round_bits_[l];
    m.link_round_bits->record(b);
    m.link_round_msgs->record(link_round_msgs_[l]);
    round_bits += b;
    link_total_bits_[l] += b;
    m.link_max_bits->max_of(link_total_bits_[l]);
    link_round_bits_[l] = 0;
    link_round_msgs_[l] = 0;
  }
  m.cum_bits += round_bits;
  if (links > 0 && bandwidth_ > 0)
    m.utilization_permille->set(
        m.cum_bits * 1000 /
        (static_cast<long long>(links) * bandwidth_ * m.metric_rounds));
  if (cfg_.metrics_interval > 0 && cfg_.metrics_flush &&
      m.metric_rounds % cfg_.metrics_interval == 0)
    cfg_.metrics_flush(m.metric_rounds);
}

void Network::note_serial_section() {
  if (metrics_ != nullptr) metrics_->serial_sections->add(1);
}

Network::~Network() = default;

void Network::phase_begin(std::string_view name) {
  if (cfg_.sink == nullptr) {
    // No trace events, but fault-aware / phase-tracking networks still
    // maintain the span stack so degraded outcomes can name their phase.
    if (cfg_.track_phases || fault_rt_ != nullptr)
      span_stack_.emplace_back(name);
    return;
  }
  close_annotation();
  obs::PhaseEvent ev;
  ev.kind = obs::PhaseEvent::Kind::Begin;
  ev.name = std::string(name);
  ev.round = round_;
  ev.depth = static_cast<int>(span_stack_.size());
  span_stack_.push_back(ev.name);
  cfg_.sink->phase(ev);
}

void Network::phase_end() {
  if (cfg_.sink == nullptr) {
    if ((cfg_.track_phases || fault_rt_ != nullptr) && !span_stack_.empty())
      span_stack_.pop_back();
    return;
  }
  if (span_stack_.empty())
    throw std::logic_error("Network::phase_end: no open phase");
  close_annotation();
  obs::PhaseEvent ev;
  ev.kind = obs::PhaseEvent::Kind::End;
  ev.name = span_stack_.back();
  ev.round = round_;
  ev.depth = static_cast<int>(span_stack_.size()) - 1;
  span_stack_.pop_back();
  cfg_.sink->phase(ev);
}

void Network::annotate(std::string_view name) {
  if (cfg_.sink == nullptr || name == annotation_) return;
  close_annotation();
  obs::PhaseEvent ev;
  ev.kind = obs::PhaseEvent::Kind::Begin;
  ev.name = std::string(name);
  ev.round = round_;
  ev.depth = static_cast<int>(span_stack_.size());
  annotation_ = ev.name;
  cfg_.sink->phase(ev);
}

void Network::close_annotation() {
  if (cfg_.sink == nullptr || annotation_.empty()) return;
  obs::PhaseEvent ev;
  ev.kind = obs::PhaseEvent::Kind::End;
  ev.name = std::move(annotation_);
  ev.round = round_;
  ev.depth = static_cast<int>(span_stack_.size());
  annotation_.clear();
  cfg_.sink->phase(ev);
}

long Network::run(std::vector<std::unique_ptr<NodeProgram>>& programs) {
  RunOutcome outcome = run_outcome(programs);
  switch (outcome.status) {
    case RunStatus::kCompleted:
      return outcome.rounds;
    case RunStatus::kRoundLimit: {
      std::string msg = "Network::run: round limit exceeded";
      if (!outcome.stalled_phase.empty())
        msg += " in phase '" + outcome.stalled_phase + "'";
      throw RoundLimitError(msg, std::move(outcome));
    }
    case RunStatus::kCrashed: {
      std::string msg = "Network::run: " +
                        std::to_string(outcome.crashed.size()) +
                        " node(s) crash-stopped; outputs untrusted";
      if (!outcome.stalled_phase.empty())
        msg += " (stalled in phase '" + outcome.stalled_phase + "')";
      throw CrashedError(msg, std::move(outcome));
    }
  }
  return outcome.rounds;
}

RunOutcome Network::run_outcome(
    std::vector<std::unique_ptr<NodeProgram>>& programs) {
  if (static_cast<int>(programs.size()) != n())
    throw std::invalid_argument("Network::run: one program per vertex needed");
  if (fault_rt_ != nullptr) return fault_rt_->run(programs);
  return run_perfect(programs);
}

int Network::effective_step_threads() const {
  if (cfg_.audit || serial_section_depth_ > 0) return 1;
  return cfg_.threads <= 0 ? par::hardware_threads() : cfg_.threads;
}

void Network::step_programs(std::vector<std::unique_ptr<NodeProgram>>& programs,
                            int threads) {
  const int n_ = n();
  const bool reverse = cfg_.step_order == NetworkConfig::StepOrder::kReverse;
  if (threads <= 1) {
    for (int i = 0; i < n_; ++i) {
      const int v = reverse ? n_ - 1 - i : i;
      NodeCtx ctx(*this, v);
      programs[v]->on_round(ctx);
    }
    return;
  }
  const bool buffer_annotations = cfg_.sink != nullptr;
  if (buffer_annotations) {
    pending_annotations_.assign(n_, {});
    stepping_parallel_ = true;
  }
  par::parallel_for(threads, static_cast<std::size_t>(n_),
                    [&](std::size_t i) {
                      const int v =
                          reverse ? n_ - 1 - static_cast<int>(i)
                                  : static_cast<int>(i);
                      NodeCtx ctx(*this, v);
                      programs[v]->on_round(ctx);
                    });
  if (buffer_annotations) {
    stepping_parallel_ = false;
    // Replay in step order: each vertex's calls in call order, vertices in
    // the order a serial step would have run them — the resulting event
    // stream (and any digest over it) matches the serial one exactly.
    for (int i = 0; i < n_; ++i) {
      const int v = reverse ? n_ - 1 - i : i;
      for (const std::string& name : pending_annotations_[v]) annotate(name);
    }
  }
}

RunOutcome Network::run_perfect(
    std::vector<std::unique_ptr<NodeProgram>>& programs) {
  const int n_ = n();
  obs::TraceSink* const sink = cfg_.sink;
  long prev_messages = stats_.messages;
  long long prev_bits = stats_.total_bits;
  if (sink != nullptr) {
    obs::RunInfo info;
    info.n = n_;
    info.bandwidth = bandwidth_;
    info.first_round = round_;
    sink->run_begin(info);
  }
  long rounds_this_run = 0;
  const int step_threads = effective_step_threads();
  for (;;) {
    if (round_begin_hook_) round_begin_hook_();
    // Step every node. Rounds are simultaneous in the model, so the step
    // order must be immaterial; kReverse exists so the conformance harness
    // can prove that for each protocol, and that same property is what
    // makes parallel stepping sound (see docs/PERFORMANCE.md).
    step_programs(programs, step_threads);
    // Check completion *after* the step (so final outputs are set). The
    // untraced path short-circuits; the traced path counts done nodes.
    bool all_done = true;
    int done_count = 0;
    if (sink == nullptr) {
      for (int v = 0; v < n_ && all_done; ++v) {
        NodeCtx ctx(*this, v);
        all_done = programs[v]->done(ctx);
      }
    } else {
      for (int v = 0; v < n_; ++v) {
        NodeCtx ctx(*this, v);
        if (programs[v]->done(ctx))
          ++done_count;
        else
          all_done = false;
      }
    }
    // Deliver messages: outbox of u's port (to w) lands in w's port (to u).
    for (int v = 0; v < n_; ++v)
      for (auto& slot : inbox_[v]) slot.reset();
    bool any_message = false;
    for (int v = 0; v < n_; ++v) {
      const auto& inc = graph_.incident(v);
      for (int port = 0; port < static_cast<int>(inc.size()); ++port) {
        if (!outbox_[v][port].has_value()) continue;
        any_message = true;
        const int w = inc[port].first;
        inbox_[w][peer_port_[v][port]] = std::move(outbox_[v][port]);
        outbox_[v][port].reset();
      }
    }
    ++round_;
    ++rounds_this_run;
    stats_.rounds += 1;
    if (metrics_ != nullptr) metrics_round_end();
    if (cfg_.audit) {
      audit_digest_ = audit::mix64(audit_digest_, audit_round_acc_);
      audit_round_acc_ = 0;
    }
    if (sink != nullptr) {
      obs::RoundEvent ev;
      ev.round = round_ - 1;
      ev.messages = stats_.messages - prev_messages;
      ev.bits = stats_.total_bits - prev_bits;
      ev.max_message_bits = round_max_message_bits_;
      ev.active_nodes = n_ - done_count;
      ev.done_nodes = done_count;
      sink->round(ev);
      prev_messages = stats_.messages;
      prev_bits = stats_.total_bits;
      round_max_message_bits_ = 0;
    }
    if (all_done && !any_message) break;
    if (rounds_this_run > cfg_.max_rounds) {
      if (sink != nullptr) {
        close_annotation();
        sink->run_end();
      }
      RunOutcome outcome;
      outcome.status = RunStatus::kRoundLimit;
      outcome.rounds = rounds_this_run;
      outcome.virtual_rounds = rounds_this_run;
      if (!span_stack_.empty()) {
        for (const std::string& name : span_stack_) {
          if (!outcome.stalled_phase.empty()) outcome.stalled_phase += '/';
          outcome.stalled_phase += name;
        }
      }
      return outcome;
    }
  }
  if (sink != nullptr) {
    close_annotation();  // protocol annotations never outlive their run
    sink->run_end();
  }
  RunOutcome outcome;
  outcome.status = RunStatus::kCompleted;
  outcome.rounds = rounds_this_run;
  outcome.virtual_rounds = rounds_this_run;
  return outcome;
}

}  // namespace dmc::congest
