// Synchronous CONGEST model simulator (paper Section 1, model paragraph).
//
// The network is a connected simple graph. Every node runs the same
// NodeProgram; computation proceeds in synchronous rounds. In each round a
// node may send one message per incident edge; the simulator enforces a
// per-edge-per-round bandwidth of B = max(kMinBandwidth, c * ceil(log2 n))
// bits and rejects oversized sends (protocols fragment large payloads, see
// fragment.hpp, paying Theta(k / log n) rounds for k-bit messages as the
// paper prescribes).
//
// Node identifiers are an arbitrary permutation of 0..n-1 scaled into an
// O(log n)-bit space (adversarial-ish ids are exercised by seeding the
// permutation); programs must only rely on ids, their ports, and n.
//
// Message payloads are C++ values (std::any) with a *declared* bit size;
// the declared size is what the bandwidth accounting uses. This is the
// standard simulation compromise: semantics by value, costs by declaration,
// with the declaration rules documented per protocol.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "obs/trace.hpp"

namespace dmc::congest {

struct Message {
  std::any value;
  int bits = 0;

  Message() = default;
  Message(std::any v, int b) : value(std::move(v)), bits(b) {}
};

/// Declared bit sizes used across the protocols.
int id_bits(int n);                    // one node identifier
int count_bits(std::uint64_t value);   // a varint-style counter / weight

struct NetworkConfig {
  /// Bandwidth multiplier: B = max(min_bandwidth, multiplier * ceil(log2 n)).
  int bandwidth_multiplier = 2;
  int min_bandwidth = 32;
  /// Seed for the id permutation; 0 = identity ids.
  unsigned id_seed = 0;
  /// Hard cap on rounds per run() call (guards non-terminating protocols).
  int max_rounds = 1'000'000;
  /// Optional trace sink (not owned; must outlive the network). When null
  /// — the default — run() takes no tracing branches and performs no
  /// allocation for observability.
  obs::TraceSink* sink = nullptr;
  /// Wire-format audit mode (src/congest/wire.hpp): every send encodes its
  /// payload through the registered codec and fails fast on unregistered
  /// payload types, declared-vs-encoded size mismatches, and encode/decode
  /// round-trip divergence. Declared sizes stay the accounting currency;
  /// audit mode proves them achievable. Off by default (it re-encodes
  /// every message).
  bool audit = false;
  /// Order in which nodes are stepped within a round. The CONGEST model
  /// makes rounds simultaneous, so a conforming protocol must behave
  /// identically either way — the conformance harness (conformance.hpp)
  /// runs both to expose cross-node shared state.
  enum class StepOrder { kForward, kReverse };
  StepOrder step_order = StepOrder::kForward;
};

struct NetworkStats {
  long rounds = 0;
  long messages = 0;
  long long total_bits = 0;
  int max_message_bits = 0;
  /// Audit-mode counters: messages cross-checked through their codec and
  /// their true (measured) encoded bits. encoded_bits <= total_bits always;
  /// the gap is the declared slack. Both stay 0 with audit off.
  long audited_messages = 0;
  long long encoded_bits = 0;

  void reset() { *this = NetworkStats{}; }
};

class Network;

/// Per-node view during a round.
class NodeCtx {
 public:
  /// This node's unique identifier (not its graph index).
  VertexId id() const;
  int degree() const;
  /// Number of nodes in the network (standard CONGEST knowledge).
  int n() const;
  /// Identifier of the neighbor on `port` (nodes learn neighbor ids in one
  /// preprocessing round; provided directly for convenience).
  VertexId neighbor_id(int port) const;
  /// Port leading to the neighbor with identifier `id`, or -1.
  int port_of(VertexId id) const;
  int round() const;
  /// Per-edge-per-round bandwidth in bits.
  int bandwidth() const;

  /// True iff a trace sink is configured. Protocols that build annotation
  /// names dynamically should gate the formatting on this.
  bool traced() const;
  /// Labels the network's current protocol step for the trace (a span
  /// nested under the innermost driver phase). Network-global and
  /// deduplicated: annotating the current name again is a no-op, a new
  /// name closes the previous annotation span. No-op when untraced.
  void annotate(std::string_view name);

  /// Queues a message on `port` for delivery next round. Throws if a
  /// message was already queued on this port this round or if `bits`
  /// exceeds the bandwidth.
  void send(int port, Message msg);
  void send_all(const Message& msg);

  /// Message received from `port` at the end of the previous round.
  const std::optional<Message>& recv(int port) const;

 private:
  friend class Network;
  NodeCtx(Network& net, int vertex) : net_(net), vertex_(vertex) {}
  Network& net_;
  int vertex_;
};

/// A distributed algorithm: one instance per node, stepped every round.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  /// Executes one round: inspect ctx.recv(), update state, ctx.send().
  /// Round 0 is the first invocation (no messages yet).
  virtual void on_round(NodeCtx& ctx) = 0;
  /// True when this node has finished the protocol (it may keep being
  /// stepped while others finish; sends after done are allowed).
  virtual bool done(const NodeCtx& ctx) const = 0;
};

class Network {
 public:
  Network(const Graph& g, NetworkConfig cfg = {});

  int n() const { return graph_.num_vertices(); }
  int bandwidth() const { return bandwidth_; }
  const Graph& graph() const { return graph_; }
  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  VertexId id_of_vertex(int vertex) const { return ids_[vertex]; }
  int vertex_of_id(VertexId id) const { return vertex_of_id_.at(id); }

  /// Rolling digest of all audited message traffic (audit mode only; 0
  /// otherwise). Per round the digest folds an order-insensitive sum of
  /// per-message hashes (sender id, receiver id, declared bits, encoded
  /// payload bits), so two executions that send the same messages in any
  /// within-round order digest identically — the comparison backbone of
  /// the determinism checker in conformance.hpp.
  std::uint64_t audit_digest() const { return audit_digest_; }

  /// Runs one protocol to completion (all programs done) under the round
  /// cap; `programs[v]` is the program of graph vertex v. The caller keeps
  /// ownership (protocol outputs are read from the programs afterwards).
  /// Returns the number of rounds this run took (stats accumulate across
  /// runs). Throws std::runtime_error if max_rounds is exceeded.
  long run(std::vector<std::unique_ptr<NodeProgram>>& programs);

  /// Tracing (all no-ops when no sink is configured). Driver code brackets
  /// protocol stages in named spans; spans nest and must close in LIFO
  /// order (prefer the PhaseScope RAII helper). phase_end closes any open
  /// NodeCtx annotation first, so annotations never leak across phases.
  bool traced() const { return cfg_.sink != nullptr; }
  void phase_begin(std::string_view name);
  void phase_end();
  void annotate(std::string_view name);

 private:
  friend class NodeCtx;

  void close_annotation();
  /// Audit-mode conformance check of one outgoing message (wire.hpp);
  /// throws std::invalid_argument with sender/port/round context on any
  /// violation and folds the message into the round digest accumulator.
  void audit_send(int vertex, int port, const Message& msg);

  Graph graph_;
  NetworkConfig cfg_;
  int bandwidth_;
  std::vector<VertexId> ids_;           // vertex -> id
  std::vector<int> vertex_of_id_;       // id -> vertex
  NetworkStats stats_;
  int round_ = 0;
  int round_max_message_bits_ = 0;  // reset per round while traced
  // Audit digest state (see audit_digest()); touched only when cfg_.audit.
  std::uint64_t audit_digest_ = 0;
  std::uint64_t audit_round_acc_ = 0;
  // per vertex, per port
  std::vector<std::vector<std::optional<Message>>> inbox_, outbox_;
  // Trace state: driver span stack + the current annotation sub-span
  // ("" = none). Touched only when cfg_.sink != nullptr.
  std::vector<std::string> span_stack_;
  std::string annotation_;
};

/// RAII driver span: opens a named phase on construction, closes it (and
/// any annotation under it) on destruction. Free when the network is
/// untraced.
class PhaseScope {
 public:
  PhaseScope(Network& net, std::string_view name) : net_(net) {
    net_.phase_begin(name);
  }
  ~PhaseScope() { net_.phase_end(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Network& net_;
};

}  // namespace dmc::congest
