// Synchronous CONGEST model simulator (paper Section 1, model paragraph).
//
// The network is a connected simple graph. Every node runs the same
// NodeProgram; computation proceeds in synchronous rounds. In each round a
// node may send one message per incident edge; the simulator enforces a
// per-edge-per-round bandwidth of B = max(kMinBandwidth, c * ceil(log2 n))
// bits and rejects oversized sends (protocols fragment large payloads, see
// fragment.hpp, paying Theta(k / log n) rounds for k-bit messages as the
// paper prescribes).
//
// Node identifiers are an arbitrary permutation of 0..n-1 scaled into an
// O(log n)-bit space (adversarial-ish ids are exercised by seeding the
// permutation); programs must only rely on ids, their ports, and n.
//
// Message payloads are C++ values (std::any) with a *declared* bit size;
// the declared size is what the bandwidth accounting uses. This is the
// standard simulation compromise: semantics by value, costs by declaration,
// with the declaration rules documented per protocol.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "congest/faults.hpp"
#include "graph/graph.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace dmc::metrics {
class Registry;  // src/metrics/metrics.hpp: aggregate counters/histograms
}

namespace dmc::congest {

class SchedulerHook;  // sched_hook.hpp: dmc-mc schedule-exploration seam

namespace detail {
struct FaultRuntime;  // reliable.hpp: fault-injecting / reliable-transport runs
struct NetMetrics;    // net_metrics.hpp: resolved metric handles of a network
}

struct Message {
  std::any value;
  int bits = 0;

  Message() = default;
  Message(std::any v, int b) : value(std::move(v)), bits(b) {}
};

/// Declared bit sizes used across the protocols.
int id_bits(int n);                    // one node identifier
int count_bits(std::uint64_t value);   // a varint-style counter / weight

struct NetworkConfig {
  /// Bandwidth multiplier: B = max(min_bandwidth, multiplier * ceil(log2 n)).
  int bandwidth_multiplier = 2;
  int min_bandwidth = 32;
  /// Seed for the id permutation; 0 = identity ids.
  unsigned id_seed = 0;
  /// Hard cap on rounds per run() call (guards non-terminating protocols).
  int max_rounds = 1'000'000;
  /// Optional trace sink (not owned; must outlive the network). When null
  /// — the default — run() takes no tracing branches and performs no
  /// allocation for observability.
  obs::TraceSink* sink = nullptr;
  /// Wire-format audit mode (src/congest/wire.hpp): every send encodes its
  /// payload through the registered codec and fails fast on unregistered
  /// payload types, declared-vs-encoded size mismatches, and encode/decode
  /// round-trip divergence. Declared sizes stay the accounting currency;
  /// audit mode proves them achievable. Off by default (it re-encodes
  /// every message).
  bool audit = false;
  /// Order in which nodes are stepped within a round. The CONGEST model
  /// makes rounds simultaneous, so a conforming protocol must behave
  /// identically either way — the conformance harness (conformance.hpp)
  /// runs both to expose cross-node shared state.
  enum class StepOrder { kForward, kReverse };
  StepOrder step_order = StepOrder::kForward;
  /// Maintain the driver phase span stack even without a trace sink, so a
  /// degraded run can name the phase it stalled in (RunOutcome::
  /// stalled_phase; the dmc CLI turns this on). Implied by `faults`. Off by
  /// default: the untraced perfect path stays allocation-free and ignores
  /// the phase API entirely.
  bool track_phases = false;
  /// Fault injection (faults.hpp). Engaging this switches run() onto the
  /// fault-tolerant delivery path: by default the reliable-transport shim
  /// (reliable.hpp) carries every protocol step over the lossy links, so
  /// protocols run unmodified; with FaultPlan::raw_transport the faults hit
  /// the protocol messages directly. Disengaged (the default), the perfect
  /// delivery path is byte-for-byte the pre-fault simulator.
  std::optional<FaultPlan> faults = std::nullopt;
  /// Fault-mode stall detector: a run that makes no protocol progress (no
  /// payload traffic, nodes not done) for this many consecutive protocol
  /// rounds stops with a degraded outcome instead of burning max_rounds.
  /// Generous default: quiet stretches of honest protocols (e.g. the
  /// elimination-tree phase schedule) are far shorter on the graphs in
  /// scope.
  int stall_quiet_rounds = 1024;
  /// Aggregate metrics registry (src/metrics/metrics.hpp; not owned, must
  /// outlive the network). nullptr — the default — falls back to
  /// metrics::global(); when that is null too every metrics branch is
  /// skipped and the per-round path performs no allocation for metrics
  /// (the same contract as the null trace sink).
  metrics::Registry* metrics = nullptr;
  /// With metrics active and metrics_interval > 0, metrics_flush(rounds)
  /// is invoked every metrics_interval simulated rounds — the periodic
  /// snapshot dump of `dmc --metrics-interval R` for long runs.
  int metrics_interval = 0;
  std::function<void(long rounds)> metrics_flush;
  /// Schedule-exploration seam (sched_hook.hpp; not owned, must outlive
  /// the network). Only honored on the reliable-transport fault path:
  /// when non-null, frame deliveries, defers, adversarial retransmit-timer
  /// firings, and crash events become choice points resolved by the hook
  /// instead of the fixed loop order. Null — the default — is byte for
  /// byte the legacy behavior on every path. The dmc-mc explorer
  /// (src/mc/) is the only intended installer.
  SchedulerHook* scheduler = nullptr;
  /// Worker threads for per-node stepping inside each simulated round
  /// (rounds are simultaneous in the model, so stepping is embarrassingly
  /// parallel; see docs/PERFORMANCE.md for the determinism argument).
  /// 1 (the default) is the exact legacy serial path; 0 = hardware
  /// concurrency. Audit mode, fault injection, and serial sections
  /// (Network::SerialSection) force serial stepping regardless.
  int threads = 1;
  /// Sparse event-driven rounds (docs/PERFORMANCE.md, "Sparse stepping and
  /// the active set"). A node is stepped in a round only if it (a) received
  /// traffic at the end of the previous round, (b) sent last round, (c) has
  /// a pending NodeCtx::wake_at/sleep expiry, or (d) is not yet done and
  /// never opted into sleeping. Quiescent done nodes cost zero. Message
  /// traffic, stats, digests, and round counts are identical to dense
  /// stepping for conforming protocols (rounds are simultaneous, so a step
  /// that neither reads traffic nor changes state is unobservable); the
  /// scale-labelled tests assert that equivalence pipeline by pipeline.
  /// false = legacy dense stepping (every node, every round).
  bool sparse_stepping = true;
  /// Capacity of the always-on flight recorder (obs/flight_recorder.hpp):
  /// the last N round/fault/phase events retained for post-mortem dumps of
  /// degraded runs. The ring is pre-allocated once in the constructor and
  /// recording is a few POD stores per round, so the zero-allocation and
  /// determinism contracts are unaffected.
  std::size_t flight_capacity = obs::FlightRecorder::kDefaultCapacity;
};

struct NetworkStats {
  long rounds = 0;
  long messages = 0;
  long long total_bits = 0;
  int max_message_bits = 0;
  /// Node steps actually executed (on_round invocations). Dense stepping
  /// makes this n * rounds; the sparse scheduler makes it the active-set
  /// total — the gap is the work the event-driven path saved (E16 gates
  /// it as a deterministic bench column).
  long long active_steps = 0;
  /// Audit-mode counters: messages cross-checked through their codec and
  /// their true (measured) encoded bits. encoded_bits <= total_bits always;
  /// the gap is the declared slack. Both stay 0 with audit off.
  long audited_messages = 0;
  long long encoded_bits = 0;
  /// Fault-mode counters (all stay 0 on the perfect path). `rounds` above
  /// counts *physical* rounds; `messages`/`total_bits` keep counting the
  /// protocol-level (logical) sends, so the gap between them and the frame
  /// counters below is exactly the transport overhead.
  long frames = 0;            // reliable-transport frames transmitted
  long retransmissions = 0;   // frames beyond the first per link per step
  long marker_frames = 0;     // payload-less frames (round advance only)
  long long frame_bits = 0;   // physical bits incl. transport headers
  long faults_dropped = 0;
  long faults_duplicated = 0;
  long faults_corrupted = 0;
  long faults_delayed = 0;
  int crashes = 0;

  void reset() { *this = NetworkStats{}; }
};

/// How a run ended. Anything but kCompleted is a *degraded* outcome: the
/// protocol's outputs must not be trusted as a verdict (the graceful
/// alternative to an uncaught exception — or worse, a silently wrong
/// answer).
enum class RunStatus {
  kCompleted,   // all nodes done; outputs valid
  kRoundLimit,  // max_rounds exhausted or the run stalled without crashes
  kCrashed,     // crash-stop faults occurred; outputs untrusted
};

const char* to_string(RunStatus status);

struct RunOutcome {
  RunStatus status = RunStatus::kCompleted;
  /// Physical rounds this run consumed (the cost currency; equals the
  /// protocol rounds on the perfect path, exceeds them under the reliable
  /// transport, which spends extra rounds retransmitting).
  long rounds = 0;
  /// Protocol steps executed (what NodeCtx::round() advanced by).
  long virtual_rounds = 0;
  /// Innermost driver phase path (e.g. "decide") when a degraded run
  /// stopped; empty for completed runs or when no phase was open.
  std::string stalled_phase;
  /// Ids of nodes crash-stopped by the end of the run.
  std::vector<VertexId> crashed;

  bool ok() const { return status == RunStatus::kCompleted; }
};

/// Thrown by the legacy Network::run() wrapper on a degraded outcome (both
/// derive from std::runtime_error, preserving the historical contract that
/// run() throws std::runtime_error when max_rounds is exhausted). Callers
/// wanting graceful degradation use run_outcome() instead.
class RoundLimitError : public std::runtime_error {
 public:
  explicit RoundLimitError(const std::string& msg, RunOutcome outcome_)
      : std::runtime_error(msg), outcome(std::move(outcome_)) {}
  RunOutcome outcome;
};

class CrashedError : public std::runtime_error {
 public:
  explicit CrashedError(const std::string& msg, RunOutcome outcome_)
      : std::runtime_error(msg), outcome(std::move(outcome_)) {}
  RunOutcome outcome;
};

class Network;

/// Per-node view during a round.
class NodeCtx {
 public:
  /// This node's unique identifier (not its graph index).
  VertexId id() const;
  int degree() const;
  /// Number of nodes in the network (standard CONGEST knowledge).
  int n() const;
  /// Identifier of the neighbor on `port` (nodes learn neighbor ids in one
  /// preprocessing round; provided directly for convenience).
  VertexId neighbor_id(int port) const;
  /// Port leading to the neighbor with identifier `id`, or -1.
  int port_of(VertexId id) const;
  int round() const;
  /// Per-edge-per-round bandwidth in bits.
  int bandwidth() const;

  /// True iff a trace sink is configured. Protocols that build annotation
  /// names dynamically should gate the formatting on this.
  bool traced() const;
  /// True iff wire-format audit mode is on. Protocols whose declared bit
  /// sizes depend on *when* in the round they are computed branch on this:
  /// audit mode keeps the legacy send-time value (audit validates encoded
  /// <= declared per message), while non-audit runs may use a
  /// round-start snapshot that is step-order independent.
  bool audited() const;
  /// Labels the network's current protocol step for the trace (a span
  /// nested under the innermost driver phase). Network-global and
  /// deduplicated: annotating the current name again is a no-op, a new
  /// name closes the previous annotation span. No-op when untraced.
  void annotate(std::string_view name);

  /// Queues a message on `port` for delivery next round. Throws if a
  /// message was already queued on this port this round or if `bits`
  /// exceeds the bandwidth. Under the reliable transport the delivery is
  /// guaranteed (retransmitted until it lands); under raw faulty transport
  /// it is subject to the fault plan.
  void send(int port, Message msg);
  void send_all(const Message& msg);
  /// Best-effort variant: under the reliable transport the payload rides
  /// only the first transmission — if that frame is lost, the receiver sees
  /// nothing (the round still advances). Identical to send() on the perfect
  /// path. Protocol code in src/dist/ that bypasses the reliable shim this
  /// way must carry a dmc-lint allow(raw-send) suppression.
  void send_unreliable(int port, Message msg);

  /// Message received from `port` at the end of the previous round, or
  /// nullptr. The pointer aliases the network's flat mailbox slot and is
  /// valid until the end of the current round.
  const Message* recv(int port) const;

  /// Sparse-stepping hints (no-ops under dense stepping; see
  /// NetworkConfig::sparse_stepping). wake_at(round) requests that this
  /// node not be stepped again until the given round (in NodeCtx::round()
  /// units); sleep() requests no further steps at all. Either way the node
  /// is woken early by incoming traffic, and the request lasts only until
  /// its next step — a phase-scheduled protocol re-arms its wake each time
  /// it runs. Contract: a sleeping node whose done() answer flips on the
  /// round clock must wake_at() the flip round, or round counts can drift
  /// from dense stepping.
  void wake_at(int round);
  void sleep();

  /// Reports the current reassembly backlog of one FragmentReassembler
  /// port (partially received + completed-but-undelivered messages) into
  /// the congest.reassembly.max_depth gauge. No-op without metrics.
  void note_reassembly_depth(int depth);

 private:
  friend class Network;
  friend struct detail::FaultRuntime;
  NodeCtx(Network& net, int vertex) : net_(net), vertex_(vertex) {}
  Network& net_;
  int vertex_;
};

/// A distributed algorithm: one instance per node, stepped every round.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  /// Executes one round: inspect ctx.recv(), update state, ctx.send().
  /// Round 0 is the first invocation (no messages yet).
  virtual void on_round(NodeCtx& ctx) = 0;
  /// True when this node has finished the protocol (it may keep being
  /// stepped while others finish; sends after done are allowed).
  virtual bool done(const NodeCtx& ctx) const = 0;
};

class Network {
 public:
  Network(const Graph& g, NetworkConfig cfg = {});
  ~Network();  // out of line: detail::FaultRuntime is incomplete here

  int n() const { return graph_.num_vertices(); }
  int bandwidth() const { return bandwidth_; }
  const Graph& graph() const { return graph_; }
  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  VertexId id_of_vertex(int vertex) const { return ids_[vertex]; }
  int vertex_of_id(VertexId id) const { return vertex_of_id_.at(id); }

  /// Steady-state bytes the network itself holds per simulated graph —
  /// mailboxes, link tables, id maps, scheduler state — excluding the
  /// graph structure (Graph::memory_bytes) and any protocol state. Logical
  /// sizes, so the figure is deterministic for a given graph (the E16
  /// bytes-per-vertex budget gates it).
  std::size_t memory_bytes() const;

  /// Rolling digest of all audited message traffic (audit mode only; 0
  /// otherwise). Per round the digest folds an order-insensitive sum of
  /// per-message hashes (sender id, receiver id, declared bits, encoded
  /// payload bits), so two executions that send the same messages in any
  /// within-round order digest identically — the comparison backbone of
  /// the determinism checker in conformance.hpp.
  std::uint64_t audit_digest() const { return audit_digest_; }

  /// Runs one protocol to completion (all programs done) under the round
  /// cap; `programs[v]` is the program of graph vertex v. The caller keeps
  /// ownership (protocol outputs are read from the programs afterwards).
  /// Returns the number of rounds this run took (stats accumulate across
  /// runs). Throws std::runtime_error if max_rounds is exceeded — a
  /// RoundLimitError — and CrashedError on crash-stop faults; prefer
  /// run_outcome() where degraded outcomes are expected.
  long run(std::vector<std::unique_ptr<NodeProgram>>& programs);

  /// Like run(), but degraded endings come back as a structured RunOutcome
  /// instead of an exception: round-budget exhaustion and crash-stop faults
  /// report their status, per-phase progress (stalled_phase), and the
  /// crashed node set. Protocol outputs are only meaningful when
  /// outcome.ok().
  RunOutcome run_outcome(std::vector<std::unique_ptr<NodeProgram>>& programs);

  /// Tracing (all no-ops when no sink is configured). Driver code brackets
  /// protocol stages in named spans; spans nest and must close in LIFO
  /// order (prefer the PhaseScope RAII helper). phase_end closes any open
  /// NodeCtx annotation first, so annotations never leak across phases.
  bool traced() const { return cfg_.sink != nullptr; }
  /// The configuration this network was built with (threads resolved at
  /// run time, not here).
  const NetworkConfig& config() const { return cfg_; }
  /// The always-on ring of recent events (rounds, faults, phases,
  /// quiescent skips). Tools dump it when a run ends degraded; see
  /// docs/OBSERVABILITY.md "Flight recorder".
  const obs::FlightRecorder& flight_recorder() const { return flight_; }
  obs::FlightRecorder& flight_recorder() { return flight_; }
  void phase_begin(std::string_view name);
  void phase_end();
  void annotate(std::string_view name);

  /// Called at the start of every protocol round, before any node steps
  /// (on the perfect path and on both fault-mode paths, so fault-free
  /// parity holds). Drivers use it to snapshot round-start state that all
  /// nodes must agree on — e.g. the decision protocol's class-bits width.
  /// One hook at a time; replaced by the next set, cleared with {}.
  void set_round_begin_hook(std::function<void()> hook) {
    round_begin_hook_ = std::move(hook);
  }

  /// While at least one SerialSection is alive, run() steps nodes
  /// serially even when cfg.threads > 1. Drivers wrap protocol stages
  /// whose *declared message sizes* measure schedule-dependent values
  /// (the table-shipping solve phases varuint-encode interned class ids,
  /// and parallel folding permutes id values), so their declared-bits
  /// traces stay deterministic. See docs/PERFORMANCE.md.
  class SerialSection {
   public:
    explicit SerialSection(Network& net) : net_(net) {
      ++net_.serial_section_depth_;
      net_.note_serial_section();
    }
    ~SerialSection() { --net_.serial_section_depth_; }
    SerialSection(const SerialSection&) = delete;
    SerialSection& operator=(const SerialSection&) = delete;

   private:
    Network& net_;
  };

 private:
  friend class NodeCtx;
  friend struct detail::FaultRuntime;

  /// The perfect (fault-free) delivery loop — the original simulator path,
  /// kept branch- and allocation-free when untraced.
  RunOutcome run_perfect(std::vector<std::unique_ptr<NodeProgram>>& programs);

  /// Step-loop parallelism for this run: cfg_.threads resolved against
  /// hardware concurrency, forced to 1 by audit mode and serial sections.
  int effective_step_threads() const;
  /// Steps all programs once in cfg_.step_order with `threads` workers.
  /// When traced, NodeCtx annotations are buffered per vertex during the
  /// parallel step and replayed in step order after the join, so the
  /// trace-event sequence is identical to a serial step.
  void step_programs(std::vector<std::unique_ptr<NodeProgram>>& programs,
                     int threads);
  /// Steps exactly the vertices in active_ (pre-sorted ascending; kReverse
  /// iterates it backwards), same annotation-buffering contract.
  void step_active(std::vector<std::unique_ptr<NodeProgram>>& programs,
                   int threads);

  // --- active-set scheduler (cfg_.sparse_stepping) -------------------------
  // A vertex is *restless* while it has neither finished nor asked to
  // sleep: restless vertices step every round, exactly like dense stepping.
  // Everything else steps only on a trigger: delivered traffic, a send it
  // made last round, or a due wake_at(). All bookkeeping runs serially
  // between the parallel step join and delivery.
  void sched_reset();
  void sched_build_active();          // restless + due wakes + pending triggers
  void sched_note_stepped(int v, bool done_now);  // consume wake request
  void sched_activate(int v);         // queue a trigger for the next round
  void sched_request(int v, int round);  // NodeCtx::wake_at / sleep backend
  void restless_add(int v);
  void restless_remove(int v);

  /// Flat-mailbox accessors shared with the fault runtime. A slot is
  /// engaged iff bits > 0 (send() rejects non-positive declared sizes, so
  /// 0 is a free sentinel); disengaging assigns Message{}.
  int link_of(int v, int port) const { return link_offset_[v] + port; }
  Message& out_slot(int v, int port) { return outbox_[link_of(v, port)]; }
  Message& in_slot(int v, int port) { return inbox_[link_of(v, port)]; }
  static bool engaged(const Message& m) { return m.bits > 0; }

  void close_annotation();
  /// Metrics hooks, all no-ops when metrics_ is null. note_send_metrics
  /// accumulates per-message counters and per-link round loads (atomic:
  /// sends race under parallel stepping); metrics_round_end folds the
  /// round's link loads into the congestion histograms, refreshes the
  /// utilization / max-loaded-link gauges, and drives the periodic
  /// flush. note_serial_section counts SerialSection entries.
  void note_send_metrics(int vertex, int port, int bits);
  void metrics_round_end();
  /// Bulk metrics fold for a fast-forwarded quiescent stretch: `skip`
  /// rounds with zero traffic on every link. Equivalent to calling
  /// metrics_round_end() `skip` times (round counter, utilization
  /// denominator, and every crossed metrics_interval flush boundary) at
  /// O(flush boundaries) cost instead of O(skip * links).
  void metrics_skip_rounds(long skip);
  void note_serial_section();
  /// Audit-mode conformance check of one outgoing message (wire.hpp);
  /// throws std::invalid_argument with sender/port/round context on any
  /// violation and folds the message into the round digest accumulator.
  void audit_send(int vertex, int port, const Message& msg);

  Graph graph_;
  NetworkConfig cfg_;
  int bandwidth_;
  std::vector<VertexId> ids_;           // vertex -> id
  std::vector<int> vertex_of_id_;       // id -> vertex
  NetworkStats stats_;
  int round_ = 0;
  int round_max_message_bits_ = 0;  // reset per round while traced
  std::function<void()> round_begin_hook_;
  int serial_section_depth_ = 0;
  // Parallel-step annotation buffering (traced runs only).
  bool stepping_parallel_ = false;
  std::vector<std::vector<std::string>> pending_annotations_;
  // Audit digest state (see audit_digest()); touched only when cfg_.audit.
  std::uint64_t audit_digest_ = 0;
  std::uint64_t audit_round_acc_ = 0;
  // --- flat link-indexed mailboxes -----------------------------------------
  // Directed link l = link_offset_[v] + port names (vertex v, port). The
  // mailboxes are two flat Message arrays over those links — one cache-
  // friendly arena each instead of n per-vertex vectors — and delivery
  // walks only the links actually sent on this round (sent_links_), so a
  // quiet network pays nothing per round. peer_link_[l] is the same edge
  // seen from the other endpoint; link_src_[l] recovers the owning vertex.
  std::vector<Message> inbox_, outbox_;  // size L = sum of degrees
  std::vector<int> peer_link_;           // directed link -> reverse link
  std::vector<int> link_src_;            // directed link -> source vertex
  std::vector<int> sent_links_;          // links sent on this round (dense cap L)
  int sent_count_ = 0;                   // atomic cursor into sent_links_
  std::vector<int> inbox_links_;         // engaged inbox slots to clear next round
  // --- active-set scheduler state (see sched_* above) ----------------------
  std::vector<char> sched_done_;     // last observed done() per vertex
  std::vector<char> sched_asleep_;   // vertex holds an unconsumed sleep/wake
  std::vector<int> wake_request_;    // per-vertex request written during a step
  std::vector<std::pair<int, int>> wake_heap_;  // (round, vertex) min-heap
  std::vector<int> restless_;        // compact list: !done && !asleep
  std::vector<int> restless_pos_;    // vertex -> index in restless_ (-1 absent)
  std::vector<int> active_;          // this round's step list, sorted
  std::vector<int> pending_active_;  // traffic/sent triggers for next round
  std::vector<int> active_mark_;     // dedup stamps for active_ building
  int active_stamp_ = 0;
  int sched_done_count_ = 0;
  // Trace state: driver span stack + the current annotation sub-span
  // ("" = none). Touched only when cfg_.sink != nullptr.
  std::vector<std::string> span_stack_;
  std::string annotation_;
  // Fault-mode runtime (reliable.hpp); null unless cfg_.faults is engaged,
  // so the perfect path pays one pointer test per phase call and nothing
  // per round.
  std::unique_ptr<detail::FaultRuntime> fault_rt_;
  // Metrics state; metrics_ is null (and the vectors stay empty) unless a
  // registry is configured, so the disabled path pays one pointer test
  // per send / round and allocates nothing.
  std::unique_ptr<detail::NetMetrics> metrics_;
  std::vector<int> link_offset_;            // vertex -> first directed link
                                            // (size n+1; always built)
  std::vector<long long> link_round_bits_;  // per directed link, this round
  std::vector<long> link_round_msgs_;       // (metrics-only accumulators)
  std::vector<long long> link_total_bits_;  // per directed link, lifetime
  // Always-on post-mortem ring (cfg_.flight_capacity POD slots, allocated
  // once here). Fed on every path — perfect, fault, fast-forward — so a
  // degraded run can always be dumped.
  obs::FlightRecorder flight_;
  long long flight_prev_bits_ = 0;  // recorder's own round-delta baselines
  long flight_prev_messages_ = 0;
};

/// RAII driver span: opens a named phase on construction, closes it (and
/// any annotation under it) on destruction. Free when the network is
/// untraced.
class PhaseScope {
 public:
  PhaseScope(Network& net, std::string_view name) : net_(net) {
    net_.phase_begin(name);
  }
  ~PhaseScope() { net_.phase_end(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Network& net_;
};

}  // namespace dmc::congest
