#include "congest/primitives.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "congest/wire.hpp"

namespace dmc::congest {

namespace {

/// Two's-complement-safe |v| as an unsigned magnitude.
std::uint64_t magnitude(std::int64_t v) {
  return v < 0 ? ~static_cast<std::uint64_t>(v) + 1
               : static_cast<std::uint64_t>(v);
}

std::int64_t apply_sign(bool negative, std::uint64_t mag) {
  return negative ? -static_cast<std::int64_t>(mag)
                  : static_cast<std::int64_t>(mag);
}

class LeaderProgram : public NodeProgram {
 public:
  explicit LeaderProgram(int budget) : budget_(budget) {}
  VertexId known = -1;

  void on_round(NodeCtx& ctx) override {
    if (ctx.round() == start_ || start_ < 0) {
      if (start_ < 0) start_ = ctx.round();
      known = ctx.id();
    }
    for (int p = 0; p < ctx.degree(); ++p) {
      const auto& msg = ctx.recv(p);
      if (msg) known = std::min(known, std::any_cast<VertexId>(msg->value));
    }
    if (ctx.round() - start_ < budget_)
      ctx.send_all(Message(known, id_bits(ctx.n())));
  }
  bool done(const NodeCtx& ctx) const override {
    return start_ >= 0 && ctx.round() - start_ >= budget_;
  }

 private:
  int budget_;
  int start_ = -1;
};

struct BfsMsg {
  VertexId root = -1;
  int dist = 0;
};

class BfsProgram : public NodeProgram {
 public:
  explicit BfsProgram(int budget) : budget_(budget) {}
  VertexId root = -1;
  int dist = 0;
  VertexId parent_id = -1;

  void on_round(NodeCtx& ctx) override {
    if (start_ < 0) {
      start_ = ctx.round();
      root = ctx.id();
      dist = 0;
    }
    for (int p = 0; p < ctx.degree(); ++p) {
      const auto& msg = ctx.recv(p);
      if (!msg) continue;
      const auto bm = std::any_cast<BfsMsg>(msg->value);
      if (bm.root < root || (bm.root == root && bm.dist + 1 < dist)) {
        root = bm.root;
        dist = bm.dist + 1;
        parent_id = ctx.neighbor_id(p);
      }
    }
    if (ctx.round() - start_ < budget_)
      ctx.send_all(Message(BfsMsg{root, dist},
                           id_bits(ctx.n()) + count_bits(ctx.n())));
  }
  bool done(const NodeCtx& ctx) const override {
    return start_ >= 0 && ctx.round() - start_ >= budget_;
  }

 private:
  int budget_;
  int start_ = -1;
};

/// Generic down-the-tree value propagation (1 message per tree edge).
class DownProgram : public NodeProgram {
 public:
  DownProgram(bool is_root, VertexId parent_id, std::vector<VertexId> children,
              std::int64_t value)
      : is_root_(is_root),
        parent_id_(parent_id),
        children_(std::move(children)),
        value_(value) {}
  std::int64_t received = 0;
  bool have = false;

  void on_round(NodeCtx& ctx) override {
    if (is_root_ && !have) {
      received = value_;
      have = true;
      forward(ctx);
      return;
    }
    if (have) return;
    const int pport = ctx.port_of(parent_id_);
    if (pport < 0) return;
    const auto& msg = ctx.recv(pport);
    if (msg) {
      received = std::any_cast<std::int64_t>(msg->value);
      have = true;
      forward(ctx);
    }
  }
  bool done(const NodeCtx&) const override { return have; }

 private:
  void forward(NodeCtx& ctx) {
    const int bits = count_bits(magnitude(received)) + 2;
    for (VertexId c : children_)
      ctx.send(ctx.port_of(c), Message(received, bits));
  }

  bool is_root_;
  VertexId parent_id_;
  std::vector<VertexId> children_;
  std::int64_t value_;
};

struct UpMsg {
  std::int64_t sum = 0;
  std::int64_t max = 0;
};

/// Convergecast (sum, max) followed by a broadcast of the result.
class UpDownProgram : public NodeProgram {
 public:
  UpDownProgram(bool is_root, VertexId parent_id, std::vector<VertexId> children,
                std::int64_t value)
      : is_root_(is_root),
        parent_id_(parent_id),
        children_(std::move(children)),
        sum_(value),
        max_(value) {
    pending_ = static_cast<int>(children_.size());
  }
  std::int64_t result_sum = 0;
  std::int64_t result_max = 0;
  bool have_result = false;

  void on_round(NodeCtx& ctx) override {
    for (int p = 0; p < ctx.degree(); ++p) {
      const auto& msg = ctx.recv(p);
      if (!msg) continue;
      if (const auto* um = std::any_cast<UpMsg>(&msg->value)) {
        sum_ += um->sum;
        max_ = std::max(max_, um->max);
        --pending_;
      } else if (const auto* res = std::any_cast<std::pair<std::int64_t, std::int64_t>>(
                     &msg->value)) {
        if (!have_result) {
          result_sum = res->first;
          result_max = res->second;
          have_result = true;
          forward_down(ctx);
        }
      }
    }
    if (!sent_up_ && pending_ == 0) {
      sent_up_ = true;
      if (is_root_) {
        result_sum = sum_;
        result_max = max_;
        have_result = true;
        forward_down(ctx);
      } else {
        // 8 framing bits: two signs plus a 6-bit width field delimiting the
        // first magnitude (the second sizes itself from the frame end).
        ctx.send(ctx.port_of(parent_id_),
                 Message(UpMsg{sum_, max_},
                         count_bits(magnitude(sum_)) +
                             count_bits(magnitude(max_)) + 8));
      }
    }
  }
  bool done(const NodeCtx&) const override { return have_result; }

 private:
  void forward_down(NodeCtx& ctx) {
    const int bits = count_bits(magnitude(result_sum)) +
                     count_bits(magnitude(result_max)) + 8;
    for (VertexId c : children_)
      ctx.send(ctx.port_of(c),
               Message(std::make_pair(result_sum, result_max), bits));
  }

  bool is_root_;
  VertexId parent_id_;
  std::vector<VertexId> children_;
  std::int64_t sum_, max_;
  int pending_;
  bool sent_up_ = false;
};

/// Wire codecs (audit mode, wire.hpp): one real encoder per payload type
/// this translation unit sends, each fitting the declared size exactly.
/// Sum/max pairs spend 2 sign bits + a 6-bit width field for the first
/// magnitude; the second magnitude sizes itself from the frame end.
void put_sum_max(audit::BitWriter& w, std::int64_t a, std::int64_t b) {
  w.put_bit(a < 0);
  w.put_bit(b < 0);
  const int wa = audit::uint_bits(magnitude(a));
  w.put_uint(static_cast<std::uint64_t>(wa - 1), 6);
  w.put_uint(magnitude(a), wa);
  w.put_uint_min(magnitude(b));
}

std::pair<std::int64_t, std::int64_t> get_sum_max(audit::BitReader& r) {
  const bool neg_a = r.get_bit();
  const bool neg_b = r.get_bit();
  const int wa = static_cast<int>(r.get_uint(6)) + 1;
  const std::uint64_t ma = r.get_uint(wa);
  const std::uint64_t mb = r.get_rest();
  return {apply_sign(neg_a, ma), apply_sign(neg_b, mb)};
}

// The codecs for the bare types VertexId ("congest::id") and std::int64_t
// ("congest::value") live in wire.cpp: they are part of the audit core, so
// they must be registered in every binary that links the audit layer, not
// only ones that happen to pull in this translation unit.
[[maybe_unused]] const bool wire_codecs_registered = [] {
  audit::register_codec<BfsMsg>(
      "primitives::BfsMsg",
      [](const BfsMsg& m, const audit::WireContext& ctx,
         audit::BitWriter& w) {
        w.put_uint(static_cast<std::uint64_t>(m.root), id_bits(ctx.n));
        w.put_uint(static_cast<std::uint64_t>(m.dist), count_bits(ctx.n));
      },
      [](const audit::WireContext& ctx, audit::BitReader& r) {
        BfsMsg m;
        m.root = static_cast<VertexId>(r.get_uint(id_bits(ctx.n)));
        m.dist = static_cast<int>(r.get_uint(count_bits(ctx.n)));
        return m;
      },
      [](const BfsMsg& a, const BfsMsg& b) {
        return a.root == b.root && a.dist == b.dist;
      });
  audit::register_codec<UpMsg>(
      "primitives::UpMsg",
      [](const UpMsg& m, const audit::WireContext&, audit::BitWriter& w) {
        put_sum_max(w, m.sum, m.max);
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        const auto [sum, max] = get_sum_max(r);
        return UpMsg{sum, max};
      },
      [](const UpMsg& a, const UpMsg& b) {
        return a.sum == b.sum && a.max == b.max;
      });
  audit::register_codec<std::pair<std::int64_t, std::int64_t>>(
      "primitives::DownResult",
      [](const std::pair<std::int64_t, std::int64_t>& m,
         const audit::WireContext&, audit::BitWriter& w) {
        put_sum_max(w, m.first, m.second);
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        return get_sum_max(r);
      },
      [](const std::pair<std::int64_t, std::int64_t>& a,
         const std::pair<std::int64_t, std::int64_t>& b) { return a == b; });
  return true;
}();

/// Children lists (by vertex) from BFS parent pointers.
std::vector<std::vector<VertexId>> children_ids_of(const Network& net,
                                                   const BfsTreeResult& tree) {
  std::vector<std::vector<VertexId>> out(net.n());
  for (int v = 0; v < net.n(); ++v)
    if (tree.parent[v] >= 0)
      out[tree.parent[v]].push_back(net.id_of_vertex(v));
  return out;
}

}  // namespace

LeaderResult run_leader_election(Network& net, int budget) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<LeaderProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    auto p = std::make_unique<LeaderProgram>(budget);
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  LeaderResult result;
  result.run = net.run_outcome(programs);
  result.rounds = result.run.rounds;
  if (!result.run.ok()) return result;  // degraded: outputs untrusted
  result.known.resize(net.n());
  for (int v = 0; v < net.n(); ++v) result.known[v] = handles[v]->known;
  result.leader = *std::min_element(result.known.begin(), result.known.end());
  return result;
}

BfsTreeResult run_bfs_tree(Network& net, int budget) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<BfsProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    auto p = std::make_unique<BfsProgram>(budget);
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  BfsTreeResult result;
  result.run = net.run_outcome(programs);
  result.rounds = result.run.rounds;
  if (!result.run.ok()) return result;  // degraded: outputs untrusted
  result.parent.assign(net.n(), -1);
  result.depth.assign(net.n(), 0);
  result.root_id = handles[0]->root;
  for (int v = 0; v < net.n(); ++v) {
    result.root_id = std::min(result.root_id, handles[v]->root);
    result.depth[v] = handles[v]->dist;
    result.parent[v] = handles[v]->parent_id < 0
                           ? -1
                           : net.vertex_of_id(handles[v]->parent_id);
  }
  return result;
}

BroadcastResult run_broadcast(Network& net, const BfsTreeResult& tree,
                              std::int64_t value) {
  const auto children = children_ids_of(net, tree);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<DownProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    const bool is_root = tree.parent[v] < 0;
    auto p = std::make_unique<DownProgram>(
        is_root, is_root ? -1 : net.id_of_vertex(tree.parent[v]), children[v],
        value);
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  BroadcastResult result;
  result.run = net.run_outcome(programs);
  result.rounds = result.run.rounds;
  if (!result.run.ok()) return result;  // degraded: outputs untrusted
  result.received.resize(net.n());
  for (int v = 0; v < net.n(); ++v) result.received[v] = handles[v]->received;
  return result;
}

AggregateResult run_aggregate(Network& net, const BfsTreeResult& tree,
                              const std::vector<std::int64_t>& values) {
  if (static_cast<int>(values.size()) != net.n())
    throw std::invalid_argument("run_aggregate: one value per vertex");
  const auto children = children_ids_of(net, tree);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<UpDownProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    const bool is_root = tree.parent[v] < 0;
    auto p = std::make_unique<UpDownProgram>(
        is_root, is_root ? -1 : net.id_of_vertex(tree.parent[v]), children[v],
        values[v]);
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  AggregateResult result;
  result.run = net.run_outcome(programs);
  result.rounds = result.run.rounds;
  if (!result.run.ok()) return result;  // degraded: outputs untrusted
  result.sum = handles[0]->result_sum;
  result.max = handles[0]->result_max;
  for (int v = 0; v < net.n(); ++v) {
    if (handles[v]->result_sum != result.sum)
      throw std::logic_error("run_aggregate: inconsistent results");
  }
  return result;
}

}  // namespace dmc::congest
