// Reusable CONGEST building blocks: leader election, BFS tree,
// broadcast, and convergecast aggregation.
//
// These are the "standard distributed tools" the paper leans on (e.g. the
// leader protocol of Algorithm 2, referenced to [HiSu20]). Each primitive
// is a NodeProgram family plus a harness that runs it and extracts the
// per-node outputs.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"

namespace dmc::congest {

// --- leader election ----------------------------------------------------------

struct LeaderResult {
  VertexId leader = -1;            // the global minimum id
  std::vector<VertexId> known;     // per vertex: the leader it learned
  long rounds = 0;
  /// How the run ended; outputs are untrusted when !run.ok().
  RunOutcome run;
};

/// Min-id flooding for `budget` rounds (a correct leader election whenever
/// budget >= diameter; Algorithm 2 uses budget 2^d, sound by Lemma 2.5).
LeaderResult run_leader_election(Network& net, int budget);

// --- BFS tree -------------------------------------------------------------------

struct BfsTreeResult {
  VertexId root_id = -1;
  std::vector<int> parent;   // per graph vertex: BFS parent vertex (-1 root)
  std::vector<int> depth;    // hop distance from the root
  long rounds = 0;
  /// How the run ended; outputs are untrusted when !run.ok().
  RunOutcome run;
};

/// BFS tree rooted at the minimum-id node; floods for `budget` rounds
/// (budget >= diameter required; nodes know n, so n is always safe).
BfsTreeResult run_bfs_tree(Network& net, int budget);

// --- broadcast ------------------------------------------------------------------

struct BroadcastResult {
  std::vector<std::int64_t> received;  // per vertex
  long rounds = 0;
  /// How the run ended; outputs are untrusted when !run.ok().
  RunOutcome run;
};

/// The root (minimum id, computed via the BFS tree) broadcasts `value`
/// down the tree; every node ends up knowing it.
BroadcastResult run_broadcast(Network& net, const BfsTreeResult& tree,
                              std::int64_t value);

// --- convergecast aggregation ----------------------------------------------------

struct AggregateResult {
  std::int64_t sum = 0;
  std::int64_t max = 0;
  long rounds = 0;
  /// How the run ended; outputs are untrusted when !run.ok().
  RunOutcome run;
};

/// Convergecast of per-node values up the BFS tree; the root learns the sum
/// and the max, then broadcasts them back down (all nodes know the result).
AggregateResult run_aggregate(Network& net, const BfsTreeResult& tree,
                              const std::vector<std::int64_t>& values);

}  // namespace dmc::congest
