#include "congest/reliable.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "congest/net_metrics.hpp"

namespace dmc::congest {

std::string SchedChoice::label() const {
  std::string s;
  switch (kind) {
    case Kind::kDeliver:
      s = "deliver";
      break;
    case Kind::kDefer:
      s = "defer";
      break;
    case Kind::kRetransmit:
      s = "retransmit";
      break;
    case Kind::kCrash:
      return "crash node=" + std::to_string(src);
  }
  s += " link=" + std::to_string(link) + " " + std::to_string(src) + "->" +
       std::to_string(dst);
  if (kind != Kind::kRetransmit) s += " order=" + std::to_string(order);
  s += " seq=" + std::to_string(seq);
  if (with_payload) s += " payload";
  if (stale) s += " stale";
  return s;
}

}  // namespace dmc::congest

namespace dmc::congest::detail {

FaultRuntime::FaultRuntime(Network& net, const FaultPlan& plan)
    : net_(net), injector_(plan) {
  const Graph& g = net_.graph_;
  const int n = g.num_vertices();
  link_of_.resize(n);
  for (int v = 0; v < n; ++v) {
    const auto& inc = g.incident(v);
    link_of_[v].resize(inc.size(), -1);
    for (int port = 0; port < static_cast<int>(inc.size()); ++port) {
      Link link;
      link.u = v;
      link.uport = port;
      link.v = inc[port].first;
      link_of_[v][port] = static_cast<int>(links_.size());
      links_.push_back(link);
    }
  }
  // Resolve receiver-side ports and reverse links in a second pass.
  for (Link& link : links_) {
    const auto& vinc = g.incident(link.v);
    for (int port = 0; port < static_cast<int>(vinc.size()); ++port) {
      if (vinc[port].first == link.u) {
        link.vport = port;
        link.reverse = link_of_[link.v][port];
        break;
      }
    }
  }
  channels_.resize(links_.size());
  flight_.resize(links_.size());
  best_effort_.resize(n);
  for (int v = 0; v < n; ++v) best_effort_[v].resize(g.degree(v), 0);
  crashed_.assign(n, 0);
  schedule_ = injector_.plan().crashes;
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const CrashFault& a, const CrashFault& b) {
                     return a.round < b.round;
                   });
}

void FaultRuntime::note_best_effort(int vertex, int port) {
  best_effort_[vertex][port] = 1;
  any_best_effort_ = true;
}

void FaultRuntime::emit_fault(obs::FaultEvent::Kind kind, long round,
                              VertexId src, VertexId dst, int detail_value) {
  obs::FaultEvent ev;
  ev.kind = kind;
  ev.round = round;
  ev.src = src;
  ev.dst = dst;
  ev.detail = detail_value;
  // The flight recorder sees every fault even when untraced — it is the
  // post-mortem story of a degraded run.
  net_.flight_.record_fault(ev);
  if (net_.cfg_.sink != nullptr) net_.cfg_.sink->fault(ev);
}

std::string FaultRuntime::phase_path() const {
  std::string path;
  for (const std::string& name : net_.span_stack_) {
    if (!path.empty()) path += '/';
    path += name;
  }
  return path;
}

void FaultRuntime::crash_node(VertexId id) {
  if (id < 0 || id >= static_cast<VertexId>(net_.vertex_of_id_.size()))
    return;  // id not present in this network
  const int v = net_.vertex_of_id_[id];
  if (crashed_[v]) return;
  crashed_[v] = 1;
  crashed_ids_.push_back(id);
  net_.stats_.crashes += 1;
  emit_fault(obs::FaultEvent::Kind::Crash, physical_round_, id, -1, 0);
  // Crash-stop cuts the node's links: queued sends vanish and frames on
  // the wire to/from it are lost; live links stop waiting on it.
  for (int port = 0; port < net_.graph_.degree(v); ++port)
    net_.out_slot(v, port) = Message{};
  for (int port = 0; port < static_cast<int>(link_of_[v].size()); ++port) {
    const int out = link_of_[v][port];
    channels_[out].active = false;
    channels_[links_[out].reverse].active = false;
    flight_[out].clear();
    flight_[links_[out].reverse].clear();
  }
}

void FaultRuntime::apply_scheduled_crashes() {
  while (next_crash_ < schedule_.size() &&
         schedule_[next_crash_].round <= physical_round_)
    crash_node(schedule_[next_crash_++].node);
}

void FaultRuntime::launch(int link, long seq, long ack_seq, bool with_payload,
                          std::uint64_t salt) {
  const Link& L = links_[link];
  const VertexId src = net_.ids_[L.u];
  const VertexId dst = net_.ids_[L.v];
  const long now = physical_round_;
  const FaultInjector::Fate fate = injector_.fate(src, dst, now, salt);
  if (fate.drop) {
    net_.stats_.faults_dropped += 1;
    emit_fault(obs::FaultEvent::Kind::Drop, now, src, dst, 0);
  } else {
    InFlight copy;
    copy.due = now + 1 + fate.delay;
    copy.order = order_counter_++;
    copy.seq = seq;
    copy.ack_seq = ack_seq;
    copy.corrupt = fate.corrupt;
    copy.with_payload = with_payload;
    if (fate.delay > 0) {
      net_.stats_.faults_delayed += 1;
      emit_fault(obs::FaultEvent::Kind::Delay, now, src, dst, fate.delay);
    }
    if (fate.corrupt) {
      net_.stats_.faults_corrupted += 1;
      emit_fault(obs::FaultEvent::Kind::Corrupt, now, src, dst, 0);
    }
    flight_[link].push_back(std::move(copy));
  }
  if (fate.duplicate) {
    InFlight copy;
    copy.due = now + 1 + fate.dup_delay;
    copy.order = order_counter_++;
    copy.seq = seq;
    copy.ack_seq = ack_seq;
    copy.corrupt = fate.dup_corrupt;
    copy.with_payload = with_payload;
    net_.stats_.faults_duplicated += 1;
    emit_fault(obs::FaultEvent::Kind::Duplicate, now, src, dst, fate.dup_delay);
    if (fate.dup_corrupt) {
      net_.stats_.faults_corrupted += 1;
      emit_fault(obs::FaultEvent::Kind::Corrupt, now, src, dst, 0);
    }
    flight_[link].push_back(std::move(copy));
  }
}

int FaultRuntime::deliver_due(
    long now, const std::function<void(int link, InFlight& copy)>& handler) {
  int delivered = 0;
  for (int k = 0; k < static_cast<int>(links_.size()); ++k) {
    auto& fl = flight_[k];
    if (fl.empty()) continue;
    int best = -1;
    for (int i = 0; i < static_cast<int>(fl.size()); ++i) {
      if (fl[i].due > now) continue;
      if (best < 0 || fl[i].order < fl[best].order) best = i;
    }
    if (best < 0) continue;
    // One delivery per directed link per round; other due copies queue
    // behind it (bounded reordering, never starvation).
    for (auto& copy : fl)
      if (copy.due <= now) copy.due = now + 1;
    InFlight winner = std::move(fl[best]);
    fl.erase(fl.begin() + best);
    handler(k, winner);
    ++delivered;
  }
  return delivered;
}

void FaultRuntime::deliver_with_hook(
    long now, const std::function<void(int link, InFlight& copy)>& handler) {
  SchedulerHook* const hook = net_.cfg_.scheduler;
  // Per-phase bookkeeping: a link that delivered *or* was deferred is done
  // for this round (same one-frame-per-link cap as deliver_due), and a
  // forced retransmit is offered at most once per link per round so the
  // choice set stays finite without an explorer-side bound.
  std::vector<char> settled(links_.size(), 0);
  std::vector<char> fired(links_.size(), 0);
  for (;;) {
    std::vector<SchedChoice> enabled;
    // Pending crash-stop faults: the adversary positions each crash before
    // or after any subset of the round's deliveries. Mandatory — the hook
    // may not decline a set containing one.
    for (std::size_t c = next_crash_; c < schedule_.size(); ++c) {
      if (schedule_[c].round > now) break;
      const CrashFault& crash = schedule_[c];
      if (crash.node < 0 ||
          crash.node >= static_cast<VertexId>(net_.vertex_of_id_.size()))
        continue;
      if (crashed_[net_.vertex_of_id_[crash.node]]) continue;
      SchedChoice ch;
      ch.kind = SchedChoice::Kind::kCrash;
      ch.src = crash.node;
      enabled.push_back(ch);
    }
    // Due frames: per link, the earliest-sent copy may be delivered
    // (mandatory eventually) or the whole link held back a round (optional).
    for (int k = 0; k < static_cast<int>(links_.size()); ++k) {
      if (settled[k]) continue;
      const auto& fl = flight_[k];
      int best = -1;
      for (int i = 0; i < static_cast<int>(fl.size()); ++i) {
        if (fl[i].due > now) continue;
        if (best < 0 || fl[i].order < fl[best].order) best = i;
      }
      if (best < 0) continue;
      SchedChoice d;
      d.kind = SchedChoice::Kind::kDeliver;
      d.link = k;
      d.order = fl[best].order;
      d.seq = fl[best].seq;
      d.src = net_.ids_[links_[k].u];
      d.dst = net_.ids_[links_[k].v];
      d.with_payload = fl[best].with_payload;
      d.stale = channels_[k].active && fl[best].seq < channels_[k].seq;
      enabled.push_back(d);
      SchedChoice h = d;
      h.kind = SchedChoice::Kind::kDefer;
      enabled.push_back(h);
    }
    // Adversarial early retransmit-timer firings (optional): any armed,
    // un-acked channel whose timer would *not* fire naturally this round.
    for (int k = 0; k < static_cast<int>(links_.size()); ++k) {
      const Channel& ch = channels_[k];
      if (fired[k] || !ch.active || ch.acked || crashed_[links_[k].u])
        continue;
      if (ch.tx_count < 1 || now >= ch.next_tx) continue;
      SchedChoice r;
      r.kind = SchedChoice::Kind::kRetransmit;
      r.link = k;
      r.seq = ch.seq;
      r.src = net_.ids_[links_[k].u];
      r.dst = net_.ids_[links_[k].v];
      r.with_payload = ch.has_payload && !ch.best_effort;
      enabled.push_back(r);
    }
    if (enabled.empty()) return;
    const int pick = hook->choose(now, enabled);
    if (pick < 0) return;  // declined an all-optional remainder
    const SchedChoice& c = enabled[static_cast<std::size_t>(pick)];
    switch (c.kind) {
      case SchedChoice::Kind::kCrash:
        crash_node(c.src);
        break;
      case SchedChoice::Kind::kDeliver: {
        auto& fl = flight_[c.link];
        int best = -1;
        for (int i = 0; i < static_cast<int>(fl.size()); ++i) {
          if (fl[i].due > now) continue;
          if (best < 0 || fl[i].order < fl[best].order) best = i;
        }
        if (best < 0) break;  // hook raced a stale choice; nothing due
        for (auto& copy : fl)
          if (copy.due <= now) copy.due = now + 1;
        InFlight winner = std::move(fl[best]);
        fl.erase(fl.begin() + best);
        handler(c.link, winner);
        settled[c.link] = 1;
        break;
      }
      case SchedChoice::Kind::kDefer:
        for (auto& copy : flight_[c.link])
          if (copy.due <= now) copy.due = now + 1;
        settled[c.link] = 1;
        break;
      case SchedChoice::Kind::kRetransmit: {
        Channel& ch = channels_[c.link];
        ch.tx_count += 1;
        const bool carry =
            ch.has_payload && (!ch.best_effort || ch.tx_count == 1);
        net_.stats_.frames += 1;
        net_.stats_.frame_bits +=
            kTransportHeaderBits + (carry ? ch.payload_bits : 0);
        if (!ch.has_payload) net_.stats_.marker_frames += 1;
        net_.stats_.retransmissions += 1;
        if (net_.metrics_ != nullptr) {
          NetMetrics& m = *net_.metrics_;
          m.frames->add(1);
          m.frame_bits->add(kTransportHeaderBits +
                            (carry ? ch.payload_bits : 0));
          if (!ch.has_payload) m.marker_frames->add(1);
          m.retransmissions->add(1);
        }
        const Channel& rev = channels_[links_[c.link].reverse];
        const long ack_seq =
            (rev.active && rev.delivered) ? rev.seq : ch.seq - 1;
        launch(c.link, ch.seq, ack_seq, carry,
               static_cast<std::uint64_t>(ch.tx_count));
        ch.next_tx = now + ch.rto;
        ch.rto = std::min(ch.rto * 2, kMaxRto);
        fired[c.link] = 1;
        break;
      }
    }
  }
}

RunOutcome FaultRuntime::finish(RunStatus status, long physical,
                                long virtual_rounds, bool stalled) {
  RunOutcome outcome;
  outcome.status = status;
  outcome.rounds = physical;
  outcome.virtual_rounds = virtual_rounds;
  outcome.crashed = crashed_ids_;
  if (stalled) outcome.stalled_phase = phase_path();
  if (status != RunStatus::kCompleted)
    net_.flight_.note(physical_round_, to_string(status));
  net_.flight_.record_run_end(physical_round_);
  if (net_.cfg_.sink != nullptr) {
    net_.close_annotation();
    net_.cfg_.sink->run_end();
  }
  return outcome;
}

RunOutcome FaultRuntime::run(
    std::vector<std::unique_ptr<NodeProgram>>& programs) {
  {
    obs::RunInfo info;
    info.n = net_.n();
    info.bandwidth = net_.bandwidth_;
    info.first_round = physical_round_;
    net_.flight_.record_run_begin(info);
    if (net_.cfg_.sink != nullptr) net_.cfg_.sink->run_begin(info);
  }
  return injector_.plan().raw_transport ? run_raw(programs)
                                        : run_reliable(programs);
}

RunOutcome FaultRuntime::run_reliable(
    std::vector<std::unique_ptr<NodeProgram>>& programs) {
  const int n = net_.n();
  obs::TraceSink* const sink = net_.cfg_.sink;
  const bool reverse =
      net_.cfg_.step_order == NetworkConfig::StepOrder::kReverse;
  long prev_messages = net_.stats_.messages;
  long long prev_bits = net_.stats_.total_bits;
  long physical = 0;
  long vrounds = 0;
  int quiet = 0;

  auto tick = [&](int done_count) {
    physical_round_ += 1;
    physical += 1;
    net_.stats_.rounds += 1;
    if (net_.metrics_ != nullptr) net_.metrics_round_end();
    {
      obs::RoundEvent ev;
      ev.round = physical_round_ - 1;
      ev.messages = net_.stats_.messages - net_.flight_prev_messages_;
      ev.bits = net_.stats_.total_bits - net_.flight_prev_bits_;
      ev.max_message_bits = net_.round_max_message_bits_;
      ev.active_nodes = n - done_count;
      ev.done_nodes = done_count;
      net_.flight_.record_round(ev);
      net_.flight_prev_messages_ = net_.stats_.messages;
      net_.flight_prev_bits_ = net_.stats_.total_bits;
    }
    if (sink != nullptr) {
      obs::RoundEvent ev;
      ev.round = physical_round_ - 1;
      ev.messages = net_.stats_.messages - prev_messages;
      ev.bits = net_.stats_.total_bits - prev_bits;
      ev.max_message_bits = net_.round_max_message_bits_;
      ev.active_nodes = n - done_count;
      ev.done_nodes = done_count;
      sink->round(ev);
      prev_messages = net_.stats_.messages;
      prev_bits = net_.stats_.total_bits;
    }
    net_.round_max_message_bits_ = 0;
  };

  for (;;) {
    apply_scheduled_crashes();
    // Same hook point as the perfect path, once per virtual round, so
    // round-start snapshots keep exact fault-free (p = 0) parity.
    if (net_.round_begin_hook_) net_.round_begin_hook_();

    // Step every live *active* node: one *virtual* round (NodeCtx::round()
    // is the virtual clock, so fixed-schedule protocols run unmodified).
    // The active-set scheduler applies here too — crashed nodes are
    // filtered at step time, and channel loads / payload deposits below
    // queue the traffic triggers.
    const bool sparse = net_.cfg_.sparse_stepping;
    if (sparse) {
      net_.sched_build_active();
      const int count = static_cast<int>(net_.active_.size());
      for (int i = 0; i < count; ++i) {
        const int v = net_.active_[reverse ? count - 1 - i : i];
        if (crashed_[v]) continue;
        NodeCtx ctx(net_, v);
        programs[v]->on_round(ctx);
        net_.stats_.active_steps += 1;
        net_.sched_note_stepped(v, programs[v]->done(ctx));
      }
    } else {
      for (int i = 0; i < n; ++i) {
        const int v = reverse ? n - 1 - i : i;
        if (crashed_[v]) continue;
        NodeCtx ctx(net_, v);
        programs[v]->on_round(ctx);
        net_.stats_.active_steps += 1;
      }
    }
    int live = 0;
    for (int v = 0; v < n; ++v)
      if (!crashed_[v]) ++live;
    if (live == 0) return finish(RunStatus::kCrashed, physical, vrounds, true);

    bool all_done = true;
    int done_count = 0;
    for (int v = 0; v < n; ++v) {
      if (crashed_[v]) continue;
      NodeCtx ctx(net_, v);
      if (programs[v]->done(ctx))
        ++done_count;
      else
        all_done = false;
    }

    // Load this virtual round's frame onto every live-to-live channel (the
    // queued payload or an empty marker) and wipe the inboxes the step
    // just consumed.
    for (Message& slot : net_.inbox_)
      if (Network::engaged(slot)) slot = Message{};
    bool any_payload = false;
    for (int k = 0; k < static_cast<int>(links_.size()); ++k) {
      Channel& ch = channels_[k];
      const Link& L = links_[k];
      Message& slot = net_.out_slot(L.u, L.uport);
      if (crashed_[L.u] || crashed_[L.v]) {
        slot = Message{};
        ch.active = false;
        continue;
      }
      ch.seq = net_.round_;
      ch.active = true;
      ch.has_payload = Network::engaged(slot);
      if (ch.has_payload) {
        ch.payload = std::move(slot);
        slot = Message{};
        ch.payload_bits = ch.payload.bits;
        any_payload = true;
        // The sender made progress this round: keep it in next round's
        // active set (same trigger as the perfect path's sent-last-round).
        if (sparse) net_.sched_activate(L.u);
      } else {
        ch.payload = Message{};
        ch.payload_bits = 0;
      }
      ch.best_effort = best_effort_[L.u][L.uport] != 0;
      ch.delivered = false;
      ch.acked = false;
      ch.payload_deposited = false;
      ch.next_tx = physical_round_;
      ch.rto = kInitialRto;
      ch.tx_count = 0;
    }
    if (any_best_effort_) {
      for (auto& row : best_effort_) std::fill(row.begin(), row.end(), 0);
      any_best_effort_ = false;
    }

    if (all_done && !any_payload) {
      // Settle round: everyone finished and nothing is queued — mirror the
      // perfect loop's final (message-free) round and stop.
      tick(done_count);
      net_.round_ += 1;
      vrounds += 1;
      return finish(
          crashed_ids_.empty() ? RunStatus::kCompleted : RunStatus::kCrashed,
          physical, vrounds, false);
    }

    // Transport the frames over the faulty physical links until every live
    // link delivered (the synchronizer barrier). Cost: >= 1 physical round.
    for (;;) {
      for (int k = 0; k < static_cast<int>(links_.size()); ++k) {
        Channel& ch = channels_[k];
        const Link& L = links_[k];
        if (!ch.active || ch.acked || crashed_[L.u]) continue;
        if (physical_round_ < ch.next_tx) continue;
        ch.tx_count += 1;
        if (ch.tx_count == 1) ch.first_tx = physical_round_;
        const bool carry =
            ch.has_payload && (!ch.best_effort || ch.tx_count == 1);
        net_.stats_.frames += 1;
        net_.stats_.frame_bits +=
            kTransportHeaderBits + (carry ? ch.payload_bits : 0);
        if (!ch.has_payload) net_.stats_.marker_frames += 1;
        if (ch.tx_count > 1) net_.stats_.retransmissions += 1;
        if (net_.metrics_ != nullptr) {
          NetMetrics& m = *net_.metrics_;
          m.frames->add(1);
          m.frame_bits->add(kTransportHeaderBits +
                            (carry ? ch.payload_bits : 0));
          if (!ch.has_payload) m.marker_frames->add(1);
          if (ch.tx_count > 1) m.retransmissions->add(1);
        }
        const Channel& rev = channels_[L.reverse];
        const long ack_seq =
            (rev.active && rev.delivered) ? rev.seq : ch.seq - 1;
        launch(k, ch.seq, ack_seq, carry,
               static_cast<std::uint64_t>(ch.tx_count));
        ch.next_tx = physical_round_ + ch.rto;
        ch.rto = std::min(ch.rto * 2, kMaxRto);
      }

      tick(done_count);

      const bool planted = injector_.plan().mc_planted_ack_before_dup_check;
      auto deliver_handler = [&](int k, InFlight& copy) {
        Channel& ch = channels_[k];
        const Link& L = links_[k];
        if (crashed_[L.v]) return;
        if (copy.corrupt) return;  // checksum failure: discarded, retried
        // Piggybacked cumulative ack quiets the reverse sender.
        Channel& rev = channels_[L.reverse];
        if (rev.active && !rev.acked && copy.ack_seq >= rev.seq) {
          rev.acked = true;
          if (net_.metrics_ != nullptr && rev.tx_count > 0)
            net_.metrics_->ack_latency->record(physical_round_ - rev.first_tx);
        }
        // Duplicate / stale suppression by sequence number. The planted
        // --self-check bug (FaultPlan::mc_planted_ack_before_dup_check)
        // weakens the staleness half of the guard — the ack above was
        // already processed, and a delayed copy from an *earlier* virtual
        // round now slips through and completes the channel without
        // depositing the current payload. Only an adversarial ordering
        // (early retransmit of a marker frame, then delivery of the stale
        // copy ahead of the genuine one next round) exposes it.
        const bool suppress =
            planted ? (!ch.active || copy.seq > ch.seq || ch.delivered)
                    : (!ch.active || copy.seq != ch.seq || ch.delivered);
        if (suppress) {
          if (net_.metrics_ != nullptr) net_.metrics_->dup_suppressed->add(1);
          return;
        }
        ch.delivered = true;
        if (copy.with_payload) {
          net_.in_slot(L.v, L.vport) = std::move(ch.payload);
          ch.payload_deposited = true;
          // Traffic wakes the receiver for the next virtual round.
          if (net_.cfg_.sparse_stepping) net_.sched_activate(L.v);
        }
      };

      if (net_.cfg_.scheduler == nullptr) {
        apply_scheduled_crashes();
        deliver_due(physical_round_, deliver_handler);
      } else {
        deliver_with_hook(physical_round_, deliver_handler);
        // Retire schedule entries the hook executed as kCrash choices (and
        // apply any it was never offered, e.g. absent ids): idempotent.
        apply_scheduled_crashes();
      }

      bool all_delivered = true;
      for (const Channel& ch : channels_)
        if (ch.active && !ch.delivered) {
          all_delivered = false;
          break;
        }
      if (all_delivered) {
        // Barrier-integrity invariant (hook mode only): a completed
        // barrier must have deposited every live non-best-effort payload.
        if (net_.cfg_.scheduler != nullptr) {
          for (int k = 0; k < static_cast<int>(links_.size()); ++k) {
            const Channel& ch = channels_[k];
            if (ch.active && ch.has_payload && !ch.best_effort &&
                !ch.payload_deposited)
              net_.cfg_.scheduler->note_violation(
                  "transport barrier completed without depositing payload: "
                  "link " +
                  std::to_string(net_.ids_[links_[k].u]) + "->" +
                  std::to_string(net_.ids_[links_[k].v]) + " vround " +
                  std::to_string(ch.seq));
          }
        }
        break;
      }
      if (physical > net_.cfg_.max_rounds)
        return finish(RunStatus::kRoundLimit, physical, vrounds, true);
    }

    net_.round_ += 1;  // the virtual clock advances only after the barrier
    vrounds += 1;
    if (!any_payload && !all_done)
      ++quiet;
    else
      quiet = 0;
    if (quiet >= net_.cfg_.stall_quiet_rounds)
      return finish(
          crashed_ids_.empty() ? RunStatus::kRoundLimit : RunStatus::kCrashed,
          physical, vrounds, true);
    if (physical > net_.cfg_.max_rounds)
      return finish(RunStatus::kRoundLimit, physical, vrounds, true);
  }
}

RunOutcome FaultRuntime::run_raw(
    std::vector<std::unique_ptr<NodeProgram>>& programs) {
  const int n = net_.n();
  obs::TraceSink* const sink = net_.cfg_.sink;
  const bool reverse =
      net_.cfg_.step_order == NetworkConfig::StepOrder::kReverse;
  long prev_messages = net_.stats_.messages;
  long long prev_bits = net_.stats_.total_bits;
  long physical = 0;
  int quiet = 0;

  for (;;) {
    apply_scheduled_crashes();
    if (net_.round_begin_hook_) net_.round_begin_hook_();

    // Raw transport steps dense: messages ride the faulty links directly,
    // so a receiver cannot be told apart from a non-receiver until the
    // in-flight queue drains — the active-set optimization stays on the
    // perfect and reliable paths.
    int live = 0;
    for (int i = 0; i < n; ++i) {
      const int v = reverse ? n - 1 - i : i;
      if (crashed_[v]) continue;
      ++live;
      NodeCtx ctx(net_, v);
      programs[v]->on_round(ctx);
      net_.stats_.active_steps += 1;
    }
    if (live == 0)
      return finish(RunStatus::kCrashed, physical, physical, true);

    bool all_done = true;
    int done_count = 0;
    for (int v = 0; v < n; ++v) {
      if (crashed_[v]) continue;
      NodeCtx ctx(net_, v);
      if (programs[v]->done(ctx))
        ++done_count;
      else
        all_done = false;
    }

    // Launch this round's messages straight onto the faulty links.
    bool any_send = false;
    for (int k = 0; k < static_cast<int>(links_.size()); ++k) {
      const Link& L = links_[k];
      Message& slot = net_.out_slot(L.u, L.uport);
      if (!Network::engaged(slot)) continue;
      if (crashed_[L.u]) {
        slot = Message{};
        continue;
      }
      any_send = true;
      const VertexId src = net_.ids_[L.u];
      const VertexId dst = net_.ids_[L.v];
      const FaultInjector::Fate fate =
          injector_.fate(src, dst, physical_round_, 0);
      if (fate.duplicate) {
        InFlight copy;
        copy.due = physical_round_ + 1 + fate.dup_delay;
        copy.order = order_counter_ + 1;  // behind the primary copy
        copy.corrupt = fate.dup_corrupt;
        copy.with_payload = true;
        copy.payload = slot;  // copied before the primary moves it
        net_.stats_.faults_duplicated += 1;
        emit_fault(obs::FaultEvent::Kind::Duplicate, physical_round_, src, dst,
                   fate.dup_delay);
        if (fate.dup_corrupt) {
          net_.stats_.faults_corrupted += 1;
          emit_fault(obs::FaultEvent::Kind::Corrupt, physical_round_, src, dst,
                     0);
        }
        flight_[k].push_back(std::move(copy));
      }
      if (fate.drop) {
        net_.stats_.faults_dropped += 1;
        emit_fault(obs::FaultEvent::Kind::Drop, physical_round_, src, dst, 0);
      } else {
        InFlight copy;
        copy.due = physical_round_ + 1 + fate.delay;
        copy.order = order_counter_;
        copy.corrupt = fate.corrupt;
        copy.with_payload = true;
        copy.payload = std::move(slot);
        if (fate.delay > 0) {
          net_.stats_.faults_delayed += 1;
          emit_fault(obs::FaultEvent::Kind::Delay, physical_round_, src, dst,
                     fate.delay);
        }
        if (fate.corrupt) {
          net_.stats_.faults_corrupted += 1;
          emit_fault(obs::FaultEvent::Kind::Corrupt, physical_round_, src, dst,
                     0);
        }
        flight_[k].push_back(std::move(copy));
      }
      order_counter_ += 2;
      slot = Message{};
    }

    physical_round_ += 1;
    physical += 1;
    net_.round_ += 1;  // raw mode: protocol clock == physical clock
    net_.stats_.rounds += 1;
    if (net_.metrics_ != nullptr) net_.metrics_round_end();
    {
      obs::RoundEvent ev;
      ev.round = physical_round_ - 1;
      ev.messages = net_.stats_.messages - net_.flight_prev_messages_;
      ev.bits = net_.stats_.total_bits - net_.flight_prev_bits_;
      ev.max_message_bits = net_.round_max_message_bits_;
      ev.active_nodes = n - done_count;
      ev.done_nodes = done_count;
      net_.flight_.record_round(ev);
      net_.flight_prev_messages_ = net_.stats_.messages;
      net_.flight_prev_bits_ = net_.stats_.total_bits;
    }
    if (sink != nullptr) {
      obs::RoundEvent ev;
      ev.round = physical_round_ - 1;
      ev.messages = net_.stats_.messages - prev_messages;
      ev.bits = net_.stats_.total_bits - prev_bits;
      ev.max_message_bits = net_.round_max_message_bits_;
      ev.active_nodes = n - done_count;
      ev.done_nodes = done_count;
      sink->round(ev);
      prev_messages = net_.stats_.messages;
      prev_bits = net_.stats_.total_bits;
    }
    net_.round_max_message_bits_ = 0;

    for (Message& slot : net_.inbox_)
      if (Network::engaged(slot)) slot = Message{};
    const int delivered =
        deliver_due(physical_round_, [&](int k, InFlight& copy) {
          const Link& L = links_[k];
          if (crashed_[L.v]) return;
          if (copy.corrupt)
            // Detectably garbled: the payload arrives as a CorruptedPayload
            // marker of the same declared size; std::any_cast to the real
            // type fails and robust receivers ignore it.
            net_.in_slot(L.v, L.vport) =
                Message(CorruptedPayload{}, copy.payload.bits);
          else
            net_.in_slot(L.v, L.vport) = std::move(copy.payload);
        });

    bool flight_empty = true;
    for (const auto& fl : flight_)
      if (!fl.empty()) {
        flight_empty = false;
        break;
      }

    if (all_done && !any_send && flight_empty)
      return finish(
          crashed_ids_.empty() ? RunStatus::kCompleted : RunStatus::kCrashed,
          physical, physical, false);
    if (!any_send && delivered == 0 && flight_empty && !all_done)
      ++quiet;
    else
      quiet = 0;
    if (quiet >= net_.cfg_.stall_quiet_rounds)
      return finish(
          crashed_ids_.empty() ? RunStatus::kRoundLimit : RunStatus::kCrashed,
          physical, physical, true);
    if (physical > net_.cfg_.max_rounds)
      return finish(RunStatus::kRoundLimit, physical, physical, true);
  }
}

}  // namespace dmc::congest::detail
