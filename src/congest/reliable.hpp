// Reliable transport + fault-injecting delivery for the CONGEST simulator.
//
// When NetworkConfig::faults is engaged, Network::run() swaps its perfect
// delivery loop for one of the two runtimes declared here:
//
//   - Reliable transport (the default): every protocol step becomes a
//     *virtual round*. Stepping the programs fills the outboxes as usual;
//     the transport then carries one sequence-numbered frame per directed
//     link (the queued payload, or an empty marker when the port is
//     silent) across the faulty physical links — retransmitting on a
//     bounded-exponential-backoff timer, suppressing duplicates by
//     sequence number, discarding corruption-flagged frames like checksum
//     failures, and piggybacking acknowledgements on the reverse-direction
//     frames — until every live link has delivered its frame. Only then
//     does the next virtual round begin, so NodeCtx::round() advances
//     exactly as on a perfect network and every protocol runs unmodified;
//     the fault tax is paid purely in *physical* rounds
//     (NetworkStats::rounds, RunOutcome::rounds). On a fault-free link the
//     shim costs nothing: one physical round per virtual round.
//
//     Modeling notes: the end-of-step barrier is the simulator acting as
//     an omniscient synchronizer (it sees deliveries; real deployments
//     would run a termination-detection layer), and the fixed
//     kTransportHeaderBits frame header (sequence/ack/flags/checksum)
//     rides alongside the payload rather than shrinking the protocol's
//     bandwidth — headers are accounted in NetworkStats::frame_bits, not
//     charged against the CONGEST budget, so declared protocol costs stay
//     comparable with the perfect path.
//
//   - Raw transport (FaultPlan::raw_transport): protocol messages travel
//     the faulty links directly — dropped, duplicated, delayed (at most
//     one delivery per directed link per round, earliest first, so
//     reordering stays bounded), or delivered as a CorruptedPayload
//     marker. For degradation experiments; verdicts are untrusted.
//
// Both runtimes implement crash-stop faults (crashed nodes are silenced
// and excluded from completion) and a quiet-stretch stall detector, and
// end with a structured RunOutcome instead of an exception. See
// docs/ROBUSTNESS.md for the protocol stack and the overhead model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "congest/faults.hpp"
#include "congest/network.hpp"
#include "congest/sched_hook.hpp"

namespace dmc::congest {

/// Declared size of the reliable-transport frame header: sequence number,
/// cumulative ack, payload/marker flag, and checksum. Fixed-width by
/// design — the sequence field wraps within a window bounded by the
/// in-flight depth (classic sliding-window sizing), so it does not grow
/// with the round count.
inline constexpr int kTransportHeaderBits = 16;

/// Retransmit timer (in physical rounds): first retry after kInitialRto,
/// doubling up to kMaxRto ("bounded exponential backoff").
inline constexpr int kInitialRto = 2;
inline constexpr int kMaxRto = 16;

namespace detail {

/// Fault-mode execution engine, owned by Network (one per network,
/// persistent across run() calls so crash state and the physical round
/// clock carry over a protocol pipeline).
struct FaultRuntime {
  FaultRuntime(Network& net, const FaultPlan& plan);

  RunOutcome run(std::vector<std::unique_ptr<NodeProgram>>& programs);

  /// Flags the message just queued on (vertex, port) as best-effort
  /// (NodeCtx::send_unreliable): its payload rides only the first
  /// transmission.
  void note_best_effort(int vertex, int port);

  // One directed link per (vertex, port) pair, both directions distinct.
  struct Link {
    int u = 0, uport = 0;  // sender side
    int v = 0, vport = 0;  // receiver side
    int reverse = 0;       // link index of (v,vport) -> (u,uport)
  };

  // Reliable-transport channel state, per directed link, per virtual round.
  struct Channel {
    long seq = -1;          // virtual round this frame belongs to
    bool active = false;    // participates in the current barrier
    bool has_payload = false;
    bool best_effort = false;
    Message payload;
    int payload_bits = 0;
    bool delivered = false;  // receiver completed this link's frame
    bool acked = false;      // sender saw the (piggybacked) ack
    /// The frame's payload actually landed in the receiver's inbox.
    /// Tracked for the hook-mode barrier-integrity invariant: a completed
    /// barrier whose non-best-effort payload channel never deposited is a
    /// transport bug (the planted --self-check bug manufactures exactly
    /// that). Maintained on every path; only checked under a hook.
    bool payload_deposited = false;
    long next_tx = 0;        // physical round of the next (re)transmission
    long first_tx = 0;       // physical round of the first transmission
    int rto = kInitialRto;
    int tx_count = 0;
  };

  // A transmitted frame copy travelling the physical link.
  struct InFlight {
    long due = 0;           // physical round it becomes deliverable
    long order = 0;         // global send order; earliest delivers first
    long seq = 0;           // reliable: channel seq at transmit time
    long ack_seq = -1;      // reliable: piggybacked cumulative ack
    bool corrupt = false;
    bool with_payload = false;
    Message payload;        // raw transport only (reliable reads the channel)
  };

  RunOutcome run_reliable(std::vector<std::unique_ptr<NodeProgram>>& programs);
  RunOutcome run_raw(std::vector<std::unique_ptr<NodeProgram>>& programs);

  /// Crash-stops every plan entry scheduled at or before the current
  /// physical round (idempotent); deactivates channels touching the node.
  void apply_scheduled_crashes();
  /// Crash-stops one node id now (shared by the scheduled sweep above and
  /// the hook's kCrash choice). No-op for absent or already-crashed ids.
  void crash_node(VertexId id);
  void emit_fault(obs::FaultEvent::Kind kind, long round, VertexId src,
                  VertexId dst, int detail_value);
  std::string phase_path() const;
  RunOutcome finish(RunStatus status, long physical, long virtual_rounds,
                    bool stalled);
  /// Applies the injector to one reliable-transport frame; queues the
  /// surviving copies on flight_[link].
  void launch(int link, long seq, long ack_seq, bool with_payload,
              std::uint64_t salt);
  /// Delivers at most one due frame per link — the earliest-sent one;
  /// later due copies wait a round, which is what keeps reordering
  /// bounded. Returns how many frames landed.
  int deliver_due(long now,
                  const std::function<void(int link, InFlight& copy)>& handler);
  /// Hook-mode replacement for the apply_scheduled_crashes + deliver_due
  /// pair (sched_hook.hpp): pending crashes, due-frame deliveries, per-link
  /// defers, and early retransmit-timer firings become choice points
  /// resolved by net_.cfg_.scheduler, one at a time, until the round's
  /// choice set is exhausted. Per-link delivery stays capped at one frame
  /// per round (the same bounded-reordering model as deliver_due).
  void deliver_with_hook(
      long now, const std::function<void(int link, InFlight& copy)>& handler);

  Network& net_;
  FaultInjector injector_;
  std::vector<Link> links_;
  std::vector<std::vector<int>> link_of_;   // [vertex][port] -> link index
  std::vector<Channel> channels_;           // reliable mode, per link
  std::vector<std::vector<InFlight>> flight_;  // per link
  std::vector<std::vector<char>> best_effort_;  // [vertex][port], per step
  std::vector<char> crashed_;               // per vertex, persistent
  std::vector<VertexId> crashed_ids_;
  std::size_t next_crash_ = 0;              // into plan crashes (sorted)
  std::vector<CrashFault> schedule_;        // plan crashes, sorted by round
  long physical_round_ = 0;                 // persistent across runs
  long order_counter_ = 0;
  bool any_best_effort_ = false;
};

}  // namespace detail
}  // namespace dmc::congest
