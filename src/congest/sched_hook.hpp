// Scheduler seam for systematic schedule exploration (dmc-mc, src/mc/).
//
// The reliable-transport runtime (reliable.cpp) normally resolves its
// per-round nondeterminism with a fixed loop order: crashes apply at the
// top of the round, every due frame is delivered in link-index order, and
// retransmit timers fire exactly on their RTO schedule. Under a real
// asynchronous network none of those orders is guaranteed — the paper's
// protocols are proven correct under *any* message ordering — so a
// SchedulerHook installed via NetworkConfig::scheduler turns each of them
// into an explicit choice point:
//
//   kDeliver     deliver the earliest in-flight frame on a directed link
//                (further due copies on the link wait a round, preserving
//                the bounded-reordering delivery model of faults.hpp);
//   kDefer       hold all of a link's due frames back one physical round
//                (the adversary delays the link);
//   kRetransmit  fire a channel's retransmit timer early, putting an
//                extra copy of the current frame on the wire (the
//                adversarial timer that manufactures duplicates);
//   kCrash       apply a crash-stop fault scheduled at the current round
//                at a chosen position among the round's deliveries.
//
// The hook picks one enabled choice at a time until the round's choice
// set is exhausted; the DPOR explorer in src/mc/ drives this seam to
// enumerate bounded schedule spaces. With no hook installed (the default,
// and every non-mc code path) the runtime takes the legacy fixed order,
// byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dmc::congest {

/// One schedulable transition offered to the hook.
struct SchedChoice {
  enum class Kind { kDeliver, kDefer, kRetransmit, kCrash };
  Kind kind = Kind::kDeliver;
  int link = -1;   // directed link index (deliver / defer / retransmit)
  long order = -1; // global send order of the frame (deliver / defer)
  long seq = -1;   // frame's (or channel's) virtual-round sequence number
  VertexId src = -1;  // sender id; crash: the crashing node's id
  VertexId dst = -1;  // receiver id; crash: -1
  bool with_payload = false;
  bool stale = false;  // frame's seq is behind the channel's current frame

  /// Stable semantic identity within one round's choice set — what replay
  /// traces and DPOR sleep sets key on (indices into the enabled vector
  /// are not stable across executions; these fields are).
  std::uint64_t key() const {
    std::uint64_t h = 1469598103934665603ull;
    auto fold = [&h](std::uint64_t x) {
      h ^= x;
      h *= 1099511628211ull;
    };
    fold(static_cast<std::uint64_t>(kind));
    fold(static_cast<std::uint64_t>(link + 1));
    fold(static_cast<std::uint64_t>(order + 1));
    fold(static_cast<std::uint64_t>(src + 1));
    return h;
  }

  std::string label() const;
};

/// Installed via NetworkConfig::scheduler; only consulted on the
/// reliable-transport fault path. Implementations live in src/mc/.
class SchedulerHook {
 public:
  virtual ~SchedulerHook() = default;

  /// Picks the next transition from a non-empty enabled set; returns an
  /// index into `enabled`, or -1 to decline (legal only when every entry
  /// is optional — kDefer/kRetransmit; declining a kDeliver/kCrash would
  /// stall the transport barrier).
  virtual int choose(long physical_round,
                     const std::vector<SchedChoice>& enabled) = 0;

  /// Invariant breach detected by the runtime while under hook control
  /// (e.g. a transport barrier that completed with an undeposited
  /// payload). Default: ignore.
  virtual void note_violation(const std::string& what) { (void)what; }
};

}  // namespace dmc::congest
