#include "congest/wire.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <sstream>

#include "congest/fragment.hpp"
#include "congest/network.hpp"

#if defined(__GNUG__)
#include <cxxabi.h>

#include <cstdlib>
#endif

namespace dmc::audit {

int uint_bits(std::uint64_t v) {
  return std::max(1, static_cast<int>(std::bit_width(v)));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

int varuint_bits(std::uint64_t v) { return 8 * ((uint_bits(v) + 6) / 7); }

int varint_bits(std::int64_t v) { return varuint_bits(zigzag(v)); }

void BitWriter::put_bit(bool b) {
  if (bits_ % 8 == 0) bytes_.push_back(0);
  if (b) bytes_.back() |= static_cast<std::uint8_t>(1u << (bits_ % 8));
  ++bits_;
}

void BitWriter::put_uint(std::uint64_t v, int width) {
  if (width < 0 || width > 64)
    throw std::invalid_argument("BitWriter::put_uint: width out of range");
  if (width < 64 && (v >> width) != 0)
    throw std::invalid_argument("BitWriter::put_uint: value needs " +
                                std::to_string(uint_bits(v)) + " > " +
                                std::to_string(width) + " bits");
  for (int i = 0; i < width; ++i) put_bit((v >> i) & 1);
}

void BitWriter::put_uint_min(std::uint64_t v) { put_uint(v, uint_bits(v)); }

void BitWriter::put_varuint(std::uint64_t v) {
  do {
    const std::uint64_t group = v & 0x7f;
    v >>= 7;
    put_uint(group, 7);
    put_bit(v != 0);
  } while (v != 0);
}

void BitWriter::put_varint(std::int64_t v) { put_varuint(zigzag(v)); }

bool BitReader::get_bit() {
  if (pos_ >= nbits_)
    throw WireError("BitReader: read past end of frame");
  const bool b = (bytes_[pos_ / 8] >> (pos_ % 8)) & 1;
  ++pos_;
  return b;
}

std::uint64_t BitReader::get_uint(int width) {
  if (width < 0 || width > 64)
    throw WireError("BitReader::get_uint: width out of range");
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i)
    if (get_bit()) v |= 1ull << i;
  return v;
}

std::uint64_t BitReader::get_varuint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw WireError("BitReader: varuint overflows 64 bits");
    const std::uint64_t group = get_uint(7);
    v |= group << shift;
    shift += 7;
    if (!get_bit()) return v;
  }
}

std::int64_t BitReader::get_varint() { return unzigzag(get_varuint()); }

std::uint64_t BitReader::get_rest() {
  const long rest = remaining();
  if (rest > 64) throw WireError("BitReader::get_rest: > 64 bits remain");
  return get_uint(static_cast<int>(rest));
}

namespace {

using CodecMap = std::map<std::type_index, WireCodec>;

CodecMap& registry() {
  // Process-wide codec table, filled during static initialization of the
  // protocol translation units and read-only afterwards.
  static CodecMap map;  // dmc-lint: allow(global-state)
  return map;
}

std::string demangle(const char* name) {
#if defined(__GNUG__)
  int status = 0;
  char* buf = abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (status == 0 && buf != nullptr) {
    std::string out(buf);
    std::free(buf);
    return out;
  }
#endif
  return name;
}

}  // namespace

const WireCodec* find_codec(std::type_index type) {
  const CodecMap& map = registry();
  const auto it = map.find(type);
  return it == map.end() ? nullptr : &it->second;
}

const WireCodec* find_codec(const std::any& value) {
  return find_codec(std::type_index(value.type()));
}

void register_codec_erased(std::type_index type, WireCodec codec) {
  registry()[type] = std::move(codec);
}

std::vector<std::string> registered_codec_names() {
  std::vector<std::string> names;
  for (const auto& [type, codec] : registry()) names.push_back(codec.name);
  std::sort(names.begin(), names.end());
  return names;
}

std::string payload_type_name(const std::any& value) {
  if (const WireCodec* codec = find_codec(value)) return codec->name;
  return demangle(value.type().name());
}

long measured_bits(const std::any& value, const WireContext& ctx) {
  const WireCodec* codec = find_codec(value);
  if (codec == nullptr)
    throw WireError("measured_bits: no wire codec registered for payload "
                    "type " +
                    payload_type_name(value));
  BitWriter writer;
  codec->encode(value, ctx, writer);
  return writer.bits();
}

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size,
                    std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  // splitmix64 finalizer over the combination.
  std::uint64_t z = a + 0x9e3779b97f4a7c15ull + b;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

AuditOutcome audit_through_codec(const WireCodec& codec, const std::any& value,
                                 long declared_bits, const WireContext& ctx) {
  BitWriter writer;
  codec.encode(value, ctx, writer);
  const long encoded = writer.bits();
  const long budget =
      codec.budget ? codec.budget(value, declared_bits) : declared_bits;
  if (encoded > budget) {
    std::ostringstream msg;
    msg << "wire audit: payload type " << codec.name
        << " under-declares its size: encoded " << encoded
        << " bits > declared " << budget << " bits";
    throw WireError(msg.str());
  }
  BitReader reader(writer.bytes(), encoded);
  std::any decoded;
  try {
    decoded = codec.decode(ctx, reader);
  } catch (const std::exception& e) {
    throw WireError("wire audit: payload type " + codec.name +
                    " failed to decode its own encoding: " + e.what());
  }
  if (reader.remaining() != 0)
    throw WireError("wire audit: payload type " + codec.name + " left " +
                    std::to_string(reader.remaining()) +
                    " encoded bits unconsumed");
  if (!codec.equal(value, decoded))
    throw WireError("wire audit: payload type " + codec.name +
                    " does not survive an encode/decode round trip");
  AuditOutcome out;
  out.encoded_bits = encoded;
  out.content_hash = fnv1a(writer.bytes().data(), writer.bytes().size());
  return out;
}

}  // namespace

AuditOutcome audit_payload(const std::any& value, long declared_bits,
                           const WireContext& ctx) {
  // Fragment chunks are envelopes: an empty chunk is pure budgeted
  // bandwidth (one flag bit of content), the final chunk carries the whole
  // logical payload, whose true size must fit the *logical* declaration
  // that the chunk stream was budgeted from.
  if (const auto* frag = std::any_cast<congest::Fragment>(&value)) {
    if (!frag->value.has_value()) {
      AuditOutcome out;
      out.encoded_bits = 1;
      const std::uint8_t flag = 0;
      out.content_hash = fnv1a(&flag, 1);
      return out;
    }
    const WireCodec* inner = find_codec(frag->value);
    if (inner == nullptr)
      throw WireError(
          "wire audit: fragmented payload type " +
          payload_type_name(frag->value) +
          " has no registered wire codec (register one with "
          "dmc::audit::register_codec)");
    return audit_through_codec(*inner, frag->value, frag->logical_bits, ctx);
  }
  const WireCodec* codec = find_codec(value);
  if (codec == nullptr)
    throw WireError("wire audit: payload type " + payload_type_name(value) +
                    " has no registered wire codec (register one with "
                    "dmc::audit::register_codec)");
  return audit_through_codec(*codec, value, declared_bits, ctx);
}

namespace {

std::uint64_t magnitude(std::int64_t v) {
  return v < 0 ? ~static_cast<std::uint64_t>(v) + 1
               : static_cast<std::uint64_t>(v);
}

std::int64_t apply_sign(bool neg, std::uint64_t mag) {
  return neg ? -static_cast<std::int64_t>(mag) : static_cast<std::int64_t>(mag);
}

// Core codecs for the two bare payload types the whole codebase shares:
// a node identifier (fixed id_bits(n) width) and a signed 64-bit value
// (sign bit + frame-sized magnitude). Registered here — not in
// primitives.cpp — so that *every* binary linking the audit layer has
// them, independent of which protocol translation units the linker pulls.
[[maybe_unused]] const bool core_codecs_registered = [] {
  register_codec<VertexId>(
      "congest::id",
      [](const VertexId& v, const WireContext& ctx, BitWriter& w) {
        w.put_uint(static_cast<std::uint64_t>(v), congest::id_bits(ctx.n));
      },
      [](const WireContext& ctx, BitReader& r) {
        return static_cast<VertexId>(r.get_uint(congest::id_bits(ctx.n)));
      },
      [](const VertexId& a, const VertexId& b) { return a == b; });
  register_codec<std::int64_t>(
      "congest::value",
      [](const std::int64_t& v, const WireContext&, BitWriter& w) {
        w.put_bit(v < 0);
        w.put_uint_min(magnitude(v));
      },
      [](const WireContext&, BitReader& r) {
        const bool neg = r.get_bit();
        return apply_sign(neg, r.get_rest());
      },
      [](const std::int64_t& a, const std::int64_t& b) { return a == b; });
  return true;
}();

}  // namespace

}  // namespace dmc::audit
