// dmc::audit — wire-format codecs for CONGEST message payloads.
//
// The simulator transfers C++ values (std::any) whose bandwidth cost is a
// *declared* bit count (network.hpp: "semantics by value, costs by
// declaration"). That compromise is only honest if the declarations are
// achievable by a real encoding. This header supplies the machinery to
// prove it:
//
//   - BitWriter / BitReader: bit-granular serialization primitives whose
//     integer encodings match the declared-size helpers exactly
//     (uint_bits(v) == congest::count_bits(v), and an id for an n-node
//     network occupies congest::id_bits(n) bits — locked by
//     tests/wire_audit_test.cpp);
//   - WireCodec + a process-wide registry: every payload type a protocol
//     sends registers a real encoder/decoder (protocol .cpp files register
//     their message structs via register_codec<T> at static-init time);
//   - audit_payload: encode a payload through its codec, cross-check the
//     true encoded size against the declared Message::bits, and verify the
//     encode/decode round trip — the enforcement backend of
//     NetworkConfig::audit (see network.hpp).
//
// Framing convention: a CONGEST message has a physically known length, so
// a codec may size its *final* variable-width field from the frame length
// (BitReader::remaining / get_rest) instead of paying for a length prefix,
// exactly like real packet formats do. Interior variable-width fields use
// varuint/varint (8-bit groups, 7 data bits each) or explicit width fields.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

namespace dmc::audit {

/// Minimal width of v in bits (>= 1); equals congest::count_bits(v).
int uint_bits(std::uint64_t v);

/// ZigZag mapping for signed varints (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
std::uint64_t zigzag(std::int64_t v);
std::int64_t unzigzag(std::uint64_t v);

/// Bit cost of put_varuint(v): 8 bits per started 7-bit group.
int varuint_bits(std::uint64_t v);
int varint_bits(std::int64_t v);

class BitWriter {
 public:
  void put_bit(bool b);
  /// Fixed-width field; throws std::invalid_argument if v needs more bits.
  void put_uint(std::uint64_t v, int width);
  /// Minimal-width field (uint_bits(v) bits). Decodable only as the final
  /// field of a frame (BitReader::get_rest).
  void put_uint_min(std::uint64_t v);
  /// LEB128-style varint: groups of 7 data bits + 1 continuation bit.
  void put_varuint(std::uint64_t v);
  void put_varint(std::int64_t v);

  long bits() const { return bits_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  long bits_ = 0;
};

class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& bytes, long nbits)
      : bytes_(bytes), nbits_(nbits) {}

  bool get_bit();
  std::uint64_t get_uint(int width);
  std::uint64_t get_varuint();
  std::int64_t get_varint();
  /// Consumes all remaining bits (<= 64) as one unsigned field.
  std::uint64_t get_rest();
  long remaining() const { return nbits_ - pos_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  long nbits_ = 0;
  long pos_ = 0;
};

/// Network-level context a codec may rely on (standard CONGEST knowledge).
struct WireContext {
  int n = 0;          // number of nodes (fixes id field widths)
  int bandwidth = 0;  // bits per edge per round
};

/// Type-erased codec entry. All callbacks must be stateless and
/// deterministic; `budget` (optional) overrides the declared-bits bound the
/// encoding is checked against (used by fragment chunks, whose content
/// budget is the *logical* payload declaration, not the chunk's).
struct WireCodec {
  std::string name;
  std::function<void(const std::any&, const WireContext&, BitWriter&)> encode;
  std::function<std::any(const WireContext&, BitReader&)> decode;
  std::function<bool(const std::any&, const std::any&)> equal;
  std::function<long(const std::any&, long declared)> budget;
};

/// Registry lookups. Registration normally happens during static
/// initialization of the protocol translation units; lookups return
/// nullptr for unregistered types.
const WireCodec* find_codec(std::type_index type);
const WireCodec* find_codec(const std::any& value);
void register_codec_erased(std::type_index type, WireCodec codec);
/// Sorted names of all registered codecs (diagnostics, dmc --audit).
std::vector<std::string> registered_codec_names();
/// Human-readable name for a payload type: the codec name if registered,
/// else the (demangled when possible) C++ type name.
std::string payload_type_name(const std::any& value);

/// Typed registration helper; `Enc`/`Dec`/`Eq` are any callables with
/// signatures void(const T&, const WireContext&, BitWriter&),
/// T(const WireContext&, BitReader&), bool(const T&, const T&).
template <typename T, typename Enc, typename Dec, typename Eq>
void register_codec(std::string name, Enc enc, Dec dec, Eq eq) {
  WireCodec codec;
  codec.name = std::move(name);
  codec.encode = [enc](const std::any& v, const WireContext& ctx,
                       BitWriter& w) { enc(std::any_cast<const T&>(v), ctx, w); };
  codec.decode = [dec](const WireContext& ctx, BitReader& r) {
    return std::any(dec(ctx, r));
  };
  codec.equal = [eq](const std::any& a, const std::any& b) {
    return eq(std::any_cast<const T&>(a), std::any_cast<const T&>(b));
  };
  register_codec_erased(std::type_index(typeid(T)), std::move(codec));
}

/// True encoded size of a value through its registered codec; throws
/// WireError when the type has no codec. Protocols with composite payloads
/// (tables, bags, edge lists) declare exactly this — measured, not guessed.
long measured_bits(const std::any& value, const WireContext& ctx);

template <typename T>
long measured_bits(const T& value, const WireContext& ctx) {
  return measured_bits(std::any(value), ctx);
}

/// Conformance failure (unregistered payload, under-declared size, or
/// encode/decode round-trip mismatch). what() names the payload type and,
/// for size failures, both the encoded and the declared bit counts.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& msg) : std::runtime_error(msg) {}
};

struct AuditOutcome {
  long encoded_bits = 0;     // true size through the codec
  std::uint64_t content_hash = 0;  // FNV-1a of the encoded bit stream
};

/// Full conformance check of one payload: encode through the registered
/// codec, verify encoded size <= the codec's budget (declared bits unless
/// overridden), decode the encoding, and compare the round trip. Throws
/// WireError on any violation. Fragment chunks (fragment.hpp) are handled
/// structurally: empty chunks cost their flag bit, final chunks audit the
/// carried logical payload against Fragment::logical_bits.
AuditOutcome audit_payload(const std::any& value, long declared_bits,
                           const WireContext& ctx);

/// FNV-1a over a byte range, and a 64-bit mixer for chaining digests.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size,
                    std::uint64_t seed = 14695981039346656037ull);
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

}  // namespace dmc::audit
