#include "dist/bags.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "congest/fragment.hpp"
#include "congest/wire.hpp"

namespace dmc::dist {

namespace {

using congest::Message;
using congest::NodeCtx;

/// Wire codec (audit mode). A bag is a varuint member count, then per
/// member a fixed id_bits(n) id + zigzag-varint weight + varuint label
/// bits; then a varuint edge count, then per edge two bag-local indices
/// (fixed width, wide enough for the largest index) + zigzag-varint
/// weight + varuint label bits. wire_bits() measures this exact encoding.
[[maybe_unused]] const bool wire_codecs_registered = [] {
  audit::register_codec<LocalBag>(
      "dist::LocalBag",
      [](const LocalBag& m, const audit::WireContext& ctx,
         audit::BitWriter& w) {
        const int idb = congest::id_bits(ctx.n);
        w.put_varuint(m.bag.size());
        for (std::size_t i = 0; i < m.bag.size(); ++i) {
          w.put_uint(static_cast<std::uint64_t>(m.bag[i]), idb);
          w.put_varint(m.weights[i]);
          w.put_varuint(m.vlabel_bits[i]);
        }
        const int index_bits =
            m.bag.empty() ? 1 : audit::uint_bits(m.bag.size() - 1);
        w.put_varuint(m.edges.size());
        for (const auto& e : m.edges) {
          w.put_uint(static_cast<std::uint64_t>(e.i), index_bits);
          w.put_uint(static_cast<std::uint64_t>(e.j), index_bits);
          w.put_varint(e.weight);
          w.put_varuint(e.elabel_bits);
        }
      },
      [](const audit::WireContext& ctx, audit::BitReader& r) {
        const int idb = congest::id_bits(ctx.n);
        LocalBag m;
        const std::uint64_t members = r.get_varuint();
        for (std::uint64_t i = 0; i < members; ++i) {
          m.bag.push_back(static_cast<VertexId>(r.get_uint(idb)));
          m.weights.push_back(r.get_varint());
          m.vlabel_bits.push_back(
              static_cast<std::uint32_t>(r.get_varuint()));
        }
        const int index_bits =
            m.bag.empty() ? 1 : audit::uint_bits(m.bag.size() - 1);
        const std::uint64_t edges = r.get_varuint();
        for (std::uint64_t i = 0; i < edges; ++i) {
          LocalBag::BagEdge e;
          e.i = static_cast<int>(r.get_uint(index_bits));
          e.j = static_cast<int>(r.get_uint(index_bits));
          e.weight = r.get_varint();
          e.elabel_bits = static_cast<std::uint32_t>(r.get_varuint());
          m.edges.push_back(e);
        }
        return m;
      },
      [](const LocalBag& a, const LocalBag& b) {
        auto edge_eq = [](const LocalBag::BagEdge& x,
                          const LocalBag::BagEdge& y) {
          return x.i == y.i && x.j == y.j && x.weight == y.weight &&
                 x.elabel_bits == y.elabel_bits;
        };
        return a.bag == b.bag && a.weights == b.weights &&
               a.vlabel_bits == b.vlabel_bits &&
               a.edges.size() == b.edges.size() &&
               std::equal(a.edges.begin(), a.edges.end(), b.edges.begin(),
                          edge_eq);
      });
  return true;
}();

class BagsProgram : public congest::NodeProgram {
 public:
  BagsProgram(VertexId parent_id, std::vector<VertexId> children_ids,
              Weight own_weight, std::uint32_t own_vlabels,
              std::vector<std::tuple<VertexId, Weight, std::uint32_t>>
                  incident_edges)
      : parent_id_(parent_id),
        children_ids_(std::move(children_ids)),
        own_weight_(own_weight),
        own_vlabels_(own_vlabels),
        incident_edges_(std::move(incident_edges)) {}

  const LocalBag& bag() const { return bag_; }
  bool has_bag() const { return has_bag_; }

  void on_round(NodeCtx& ctx) override {
    if (!has_bag_) {
      if (parent_id_ < 0) {
        // Root: B = {self}.
        bag_.bag = {ctx.id()};
        bag_.weights = {own_weight_};
        bag_.vlabel_bits = {own_vlabels_};
        adopt_bag(ctx);
      } else {
        const int pport = ctx.port_of(parent_id_);
        if (auto payload = reasm_.poll(ctx, pport)) {
          const LocalBag parent_bag = std::any_cast<LocalBag>(*payload);
          extend_from(parent_bag, ctx);
          adopt_bag(ctx);
        }
      }
    }
    sender_.pump(ctx);
    // Bagless with nothing queued: blocked on the parent's chunk stream,
    // which wakes us on arrival (sparse scheduler; no-op otherwise).
    if (!has_bag_ && sender_.idle()) ctx.sleep();
  }

  bool done(const NodeCtx&) const override {
    return has_bag_ && sender_.idle();
  }

 private:
  /// Bag acquired: queue it to every child.
  void adopt_bag(NodeCtx& ctx) {
    has_bag_ = true;
    if (ctx.traced()) {
      // The bag size equals this node's depth: deeper levels adopt later,
      // so the annotations spell out the level-by-level pipeline.
      char label[32];
      std::snprintf(label, sizeof(label), "level=%zu", bag_.bag.size());
      ctx.annotate(label);
    }
    for (VertexId child : children_ids_) {
      const int port = ctx.port_of(child);
      if (port < 0) throw std::logic_error("BagsProgram: child not adjacent");
      sender_.enqueue(port, bag_, bag_.wire_bits(ctx.n()));
    }
  }

  /// B_self = B_parent ∪ {self}; edges gain self's links into the bag.
  void extend_from(const LocalBag& parent, NodeCtx& ctx) {
    const VertexId self = ctx.id();
    bag_ = parent;
    const auto pos =
        std::lower_bound(bag_.bag.begin(), bag_.bag.end(), self) -
        bag_.bag.begin();
    bag_.bag.insert(bag_.bag.begin() + pos, self);
    bag_.weights.insert(bag_.weights.begin() + pos, own_weight_);
    bag_.vlabel_bits.insert(bag_.vlabel_bits.begin() + pos, own_vlabels_);
    // Reindex existing edges across the insertion point.
    for (auto& e : bag_.edges) {
      if (e.i >= pos) ++e.i;
      if (e.j >= pos) ++e.j;
    }
    // Add self's edges into the bag.
    for (const auto& [nbr, w, labels] : incident_edges_) {
      const auto it = std::lower_bound(bag_.bag.begin(), bag_.bag.end(), nbr);
      if (it == bag_.bag.end() || *it != nbr) continue;
      const int other = static_cast<int>(it - bag_.bag.begin());
      LocalBag::BagEdge edge;
      edge.i = std::min<int>(pos, other);
      edge.j = std::max<int>(pos, other);
      edge.weight = w;
      edge.elabel_bits = labels;
      bag_.edges.push_back(edge);
    }
    std::sort(bag_.edges.begin(), bag_.edges.end(),
              [](const LocalBag::BagEdge& a, const LocalBag::BagEdge& b) {
                return std::tie(a.i, a.j) < std::tie(b.i, b.j);
              });
  }

  VertexId parent_id_;
  std::vector<VertexId> children_ids_;
  Weight own_weight_;
  std::uint32_t own_vlabels_;
  std::vector<std::tuple<VertexId, Weight, std::uint32_t>> incident_edges_;
  LocalBag bag_;
  bool has_bag_ = false;
  congest::FragmentSender sender_;
  congest::FragmentReassembler reasm_;
};

}  // namespace

long LocalBag::wire_bits(int n) const {
  return audit::measured_bits(*this, audit::WireContext{n, 0});
}

BagsResult run_bags(congest::Network& net, const ElimTreeResult& tree,
                    const std::vector<std::string>& vlabel_names,
                    const std::vector<std::string>& elabel_names) {
  if (!tree.success)
    throw std::invalid_argument("run_bags: elimination tree construction failed");
  congest::PhaseScope trace_scope(net, "bags");
  const Graph& g = net.graph();
  auto vbits = [&](VertexId v) {
    std::uint32_t bits = 0;
    for (std::size_t i = 0; i < vlabel_names.size(); ++i)
      if (g.vertex_has_label(vlabel_names[i], v)) bits |= 1u << i;
    return bits;
  };
  auto ebits = [&](EdgeId e) {
    std::uint32_t bits = 0;
    for (std::size_t i = 0; i < elabel_names.size(); ++i)
      if (g.edge_has_label(elabel_names[i], e)) bits |= 1u << i;
    return bits;
  };
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  std::vector<BagsProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    std::vector<std::tuple<VertexId, Weight, std::uint32_t>> incident;
    for (auto [w, e] : g.incident(v))
      incident.emplace_back(net.id_of_vertex(w), g.edge_weight(e), ebits(e));
    std::vector<VertexId> children_ids;
    for (int c : tree.children[v]) children_ids.push_back(net.id_of_vertex(c));
    auto p = std::make_unique<BagsProgram>(
        tree.parent[v] < 0 ? -1 : net.id_of_vertex(tree.parent[v]),
        std::move(children_ids), g.vertex_weight(v), vbits(v),
        std::move(incident));
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  BagsResult result;
  result.run = net.run_outcome(programs);
  result.rounds = result.run.rounds;
  if (!result.run.ok()) return result;  // degraded: bags incomplete
  result.bags.resize(net.n());
  for (int v = 0; v < net.n(); ++v) {
    if (!handles[v]->has_bag())
      throw std::logic_error("run_bags: node finished without a bag");
    result.bags[v] = handles[v]->bag();
  }
  return result;
}

}  // namespace dmc::dist
