// Distributed construction of the canonical bags (paper Lemma 5.3).
//
// Proceeds top-down along the elimination tree: the root starts with
// B_root = {root}; every node, upon receiving (B_parent, G[B_parent]) with
// the weights and labels of the bag members, extends it with itself and its
// own incident edges into the bag, and forwards the result to its children.
// Bag payloads are O(|B| log n + |B|^2) bits and are fragmented over the
// CONGEST bandwidth, for O(2^d) payload rounds per level and O(2^{2d})
// total rounds, as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "dist/elim_tree.hpp"

namespace dmc::dist {

/// What a node knows about its canonical bag after the protocol.
struct LocalBag {
  std::vector<VertexId> bag;  // ascending *global ids*, includes self
  std::vector<Weight> weights;             // per bag member
  std::vector<std::uint32_t> vlabel_bits;  // per member, over vlabel_names
  struct BagEdge {
    int i = 0, j = 0;  // indices into `bag`, i < j
    Weight weight = 1;
    std::uint32_t elabel_bits = 0;
  };
  std::vector<BagEdge> edges;  // G[B], ordered lexicographically

  /// Declared wire size in bits.
  long wire_bits(int n) const;
};

struct BagsResult {
  std::vector<LocalBag> bags;  // per graph vertex
  long rounds = 0;
  /// Degraded endings (see congest::RunOutcome) leave `bags` incomplete;
  /// callers must check run.ok() before using them.
  congest::RunOutcome run;
};

/// Runs the top-down bag construction. `vlabel_names` / `elabel_names` fix
/// the label-bit order (from the engine config; nodes know the formula).
BagsResult run_bags(congest::Network& net, const ElimTreeResult& tree,
                    const std::vector<std::string>& vlabel_names,
                    const std::vector<std::string>& elabel_names);

}  // namespace dmc::dist
