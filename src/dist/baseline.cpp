#include "dist/baseline.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "congest/fragment.hpp"
#include "seq/courcelle.hpp"

namespace dmc::dist {

namespace {

using congest::Message;
using congest::NodeCtx;

struct BfsMsg {
  VertexId root = -1;
  int dist = 0;
  VertexId parent = -1;  // the sender's current BFS parent
};

struct EdgeListPayload {
  std::vector<std::pair<VertexId, VertexId>> edges;  // global id pairs
};

struct VerdictMsg {
  bool holds = false;
};

class GatherProgram : public congest::NodeProgram {
 public:
  GatherProgram(const mso::FormulaPtr& formula,
                std::vector<VertexId> neighbor_ids)
      : formula_(formula), neighbor_ids_(std::move(neighbor_ids)) {}

  bool has_verdict() const { return verdict_known_; }
  bool verdict() const { return verdict_; }

  void on_round(NodeCtx& ctx) override {
    const int r = ctx.round() - (start_ < 0 ? (start_ = ctx.round()) : start_);
    const int n = ctx.n();
    const int id_bits = congest::id_bits(n);
    if (r == 0) {
      ctx.annotate("bfs");
      root_ = ctx.id();
      dist_ = 0;
      parent_ = -1;
    }
    if (r <= n) {
      // BFS flooding: adopt (smaller root) or (equal root, shorter path).
      for (int p = 0; p < ctx.degree(); ++p) {
        const auto& msg = ctx.recv(p);
        if (!msg) continue;
        const auto* bm = std::any_cast<BfsMsg>(&msg->value);
        if (!bm) continue;
        if (bm->root < root_ || (bm->root == root_ && bm->dist + 1 < dist_)) {
          root_ = bm->root;
          dist_ = bm->dist + 1;
          parent_ = ctx.neighbor_id(p);
        }
      }
      if (r < n)
        ctx.send_all(Message(BfsMsg{root_, dist_, parent_},
                             2 * id_bits + congest::count_bits(n)));
      if (r == n) {
        ctx.annotate("gather");
        // Stable: neighbors whose parent is me are my BFS children.
        // (Their final parent pointer arrived with the last flood.)
        for (int p = 0; p < ctx.degree(); ++p) {
          const auto& msg = ctx.recv(p);
          if (!msg) continue;
          const auto* bm = std::any_cast<BfsMsg>(&msg->value);
          if (bm && bm->parent == ctx.id())
            children_.push_back(ctx.neighbor_id(p));
        }
        expected_payloads_ = static_cast<int>(children_.size());
        // Own incident edges (deduplicated at the root).
        for (VertexId nbr : neighbor_ids_)
          gathered_.edges.emplace_back(std::min(ctx.id(), nbr),
                                       std::max(ctx.id(), nbr));
        maybe_forward(ctx);
      }
      return;
    }
    // Convergecast of edge lists.
    for (int p = 0; p < ctx.degree(); ++p) {
      if (auto payload = congest::poll_fragment(ctx, p)) {
        const auto& el = std::any_cast<const EdgeListPayload&>(*payload);
        gathered_.edges.insert(gathered_.edges.end(), el.edges.begin(),
                               el.edges.end());
        --expected_payloads_;
        maybe_forward(ctx);
      }
      const auto& msg = ctx.recv(p);
      if (msg) {
        if (const auto* vm = std::any_cast<VerdictMsg>(&msg->value)) {
          if (!verdict_known_) {
            verdict_known_ = true;
            verdict_ = vm->holds;
            forward_verdict(ctx);
          }
        }
      }
    }
    sender_.pump(ctx);
  }

  bool done(const NodeCtx&) const override {
    return verdict_known_ && sender_.idle();
  }

 private:
  void maybe_forward(NodeCtx& ctx) {
    if (forwarded_ || expected_payloads_ > 0) return;
    forwarded_ = true;
    if (parent_ < 0) {
      decide(ctx);
      return;
    }
    const long bits =
        16 + 2ll * congest::id_bits(ctx.n()) *
                 static_cast<long>(gathered_.edges.size());
    sender_.enqueue(ctx.port_of(parent_), gathered_, bits);
  }

  void decide(NodeCtx& ctx) {
    // Root reconstructs the graph (ids are 0..n-1 in the simulator's id
    // space) and decides sequentially.
    Graph g(ctx.n());
    std::set<std::pair<VertexId, VertexId>> seen;
    for (auto [a, b] : gathered_.edges)
      if (seen.insert({a, b}).second) g.add_edge(a, b);
    verdict_known_ = true;
    verdict_ = seq::decide(g, formula_);
    forward_verdict(ctx);
  }

  void forward_verdict(NodeCtx& ctx) {
    ctx.annotate("verdict");
    for (VertexId child : children_)
      ctx.send(ctx.port_of(child), Message(VerdictMsg{verdict_}, 1));
  }

  mso::FormulaPtr formula_;
  std::vector<VertexId> neighbor_ids_;
  int start_ = -1;
  VertexId root_ = -1;
  int dist_ = 0;
  VertexId parent_ = -1;
  std::vector<VertexId> children_;
  int expected_payloads_ = -1;
  EdgeListPayload gathered_;
  congest::FragmentSender sender_;
  bool forwarded_ = false;
  bool verdict_known_ = false;
  bool verdict_ = false;
};

}  // namespace

BaselineOutcome run_gather_baseline(congest::Network& net,
                                    const mso::FormulaPtr& formula) {
  congest::PhaseScope trace_scope(net, "baseline");
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  std::vector<GatherProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    std::vector<VertexId> nbrs;
    for (auto [w, e] : net.graph().incident(v))
      nbrs.push_back(net.id_of_vertex(w));
    auto p = std::make_unique<GatherProgram>(formula, std::move(nbrs));
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  BaselineOutcome out;
  out.rounds = net.run(programs);
  out.holds = true;
  for (const auto* h : handles) out.holds = out.holds && h->verdict();
  return out;
}

}  // namespace dmc::dist
