#include "dist/baseline.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "congest/fragment.hpp"
#include "congest/wire.hpp"
#include "seq/courcelle.hpp"

namespace dmc::dist {

namespace {

using congest::Message;
using congest::NodeCtx;

struct BfsMsg {
  VertexId root = -1;
  int dist = 0;
  VertexId parent = -1;  // the sender's current BFS parent
};

struct EdgeListPayload {
  std::vector<std::pair<VertexId, VertexId>> edges;  // global id pairs
};

struct VerdictMsg {
  bool holds = false;
};

/// Wire codecs (audit mode). BfsMsg packs root (id field), dist (a BFS
/// distance, < n, so count_bits(n) wide) and a presence-bit-guarded parent
/// id (roots have none); EdgeListPayload is a varuint edge count followed
/// by two id fields per edge and declares its measured size.
[[maybe_unused]] const bool wire_codecs_registered = [] {
  audit::register_codec<BfsMsg>(
      "baseline::BfsMsg",
      [](const BfsMsg& m, const audit::WireContext& ctx, audit::BitWriter& w) {
        const int id_bits = congest::id_bits(ctx.n);
        w.put_uint(static_cast<std::uint64_t>(m.root), id_bits);
        w.put_uint(static_cast<std::uint64_t>(m.dist),
                   congest::count_bits(static_cast<std::uint64_t>(ctx.n)));
        w.put_bit(m.parent >= 0);
        if (m.parent >= 0)
          w.put_uint(static_cast<std::uint64_t>(m.parent), id_bits);
      },
      [](const audit::WireContext& ctx, audit::BitReader& r) {
        const int id_bits = congest::id_bits(ctx.n);
        BfsMsg m;
        m.root = static_cast<VertexId>(r.get_uint(id_bits));
        m.dist = static_cast<int>(r.get_uint(
            congest::count_bits(static_cast<std::uint64_t>(ctx.n))));
        m.parent = r.get_bit() ? static_cast<VertexId>(r.get_uint(id_bits)) : -1;
        return m;
      },
      [](const BfsMsg& a, const BfsMsg& b) {
        return a.root == b.root && a.dist == b.dist && a.parent == b.parent;
      });
  audit::register_codec<EdgeListPayload>(
      "baseline::EdgeListPayload",
      [](const EdgeListPayload& m, const audit::WireContext& ctx,
         audit::BitWriter& w) {
        const int id_bits = congest::id_bits(ctx.n);
        w.put_varuint(m.edges.size());
        for (const auto& [a, b] : m.edges) {
          w.put_uint(static_cast<std::uint64_t>(a), id_bits);
          w.put_uint(static_cast<std::uint64_t>(b), id_bits);
        }
      },
      [](const audit::WireContext& ctx, audit::BitReader& r) {
        const int id_bits = congest::id_bits(ctx.n);
        EdgeListPayload m;
        const std::uint64_t size = r.get_varuint();
        for (std::uint64_t i = 0; i < size; ++i) {
          const auto a = static_cast<VertexId>(r.get_uint(id_bits));
          const auto b = static_cast<VertexId>(r.get_uint(id_bits));
          m.edges.emplace_back(a, b);
        }
        return m;
      },
      [](const EdgeListPayload& a, const EdgeListPayload& b) {
        return a.edges == b.edges;
      });
  audit::register_codec<VerdictMsg>(
      "baseline::VerdictMsg",
      [](const VerdictMsg& m, const audit::WireContext&, audit::BitWriter& w) {
        w.put_bit(m.holds);
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        return VerdictMsg{r.get_bit()};
      },
      [](const VerdictMsg& a, const VerdictMsg& b) {
        return a.holds == b.holds;
      });
  return true;
}();

class GatherProgram : public congest::NodeProgram {
 public:
  GatherProgram(const mso::FormulaPtr& formula,
                std::vector<VertexId> neighbor_ids)
      : formula_(formula), neighbor_ids_(std::move(neighbor_ids)) {}

  bool has_verdict() const { return verdict_known_; }
  bool verdict() const { return verdict_; }

  void on_round(NodeCtx& ctx) override {
    const int r = ctx.round() - (start_ < 0 ? (start_ = ctx.round()) : start_);
    const int n = ctx.n();
    const int id_bits = congest::id_bits(n);
    if (r == 0) {
      ctx.annotate("bfs");
      root_ = ctx.id();
      dist_ = 0;
      parent_ = -1;
    }
    if (r <= n) {
      // BFS flooding: adopt (smaller root) or (equal root, shorter path).
      for (int p = 0; p < ctx.degree(); ++p) {
        const auto& msg = ctx.recv(p);
        if (!msg) continue;
        const auto* bm = std::any_cast<BfsMsg>(&msg->value);
        if (!bm) continue;
        if (bm->root < root_ || (bm->root == root_ && bm->dist + 1 < dist_)) {
          root_ = bm->root;
          dist_ = bm->dist + 1;
          parent_ = ctx.neighbor_id(p);
        }
      }
      if (r < n)
        ctx.send_all(Message(BfsMsg{root_, dist_, parent_},
                             2 * id_bits + congest::count_bits(n) + 1));
      if (r == n) {
        ctx.annotate("gather");
        // Stable: neighbors whose parent is me are my BFS children.
        // (Their final parent pointer arrived with the last flood.)
        for (int p = 0; p < ctx.degree(); ++p) {
          const auto& msg = ctx.recv(p);
          if (!msg) continue;
          const auto* bm = std::any_cast<BfsMsg>(&msg->value);
          if (bm && bm->parent == ctx.id())
            children_.push_back(ctx.neighbor_id(p));
        }
        expected_payloads_ = static_cast<int>(children_.size());
        // Own incident edges (deduplicated at the root).
        for (VertexId nbr : neighbor_ids_)
          gathered_.edges.emplace_back(std::min(ctx.id(), nbr),
                                       std::max(ctx.id(), nbr));
        maybe_forward(ctx);
      }
      return;
    }
    // Convergecast of edge lists.
    for (int p = 0; p < ctx.degree(); ++p) {
      if (auto payload = reasm_.poll(ctx, p)) {
        const auto& el = std::any_cast<const EdgeListPayload&>(*payload);
        gathered_.edges.insert(gathered_.edges.end(), el.edges.begin(),
                               el.edges.end());
        --expected_payloads_;
        maybe_forward(ctx);
      }
      const auto& msg = ctx.recv(p);
      if (msg) {
        if (const auto* vm = std::any_cast<VerdictMsg>(&msg->value)) {
          if (!verdict_known_) {
            verdict_known_ = true;
            verdict_ = vm->holds;
            forward_verdict(ctx);
          }
        }
      }
    }
    sender_.pump(ctx);
  }

  bool done(const NodeCtx&) const override {
    return verdict_known_ && sender_.idle();
  }

 private:
  void maybe_forward(NodeCtx& ctx) {
    if (forwarded_ || expected_payloads_ > 0) return;
    forwarded_ = true;
    if (parent_ < 0) {
      decide(ctx);
      return;
    }
    const long bits = audit::measured_bits(
        gathered_, audit::WireContext{ctx.n(), ctx.bandwidth()});
    sender_.enqueue(ctx.port_of(parent_), gathered_, bits);
  }

  void decide(NodeCtx& ctx) {
    // Root reconstructs the graph (ids are 0..n-1 in the simulator's id
    // space) and decides sequentially.
    Graph g(ctx.n());
    std::set<std::pair<VertexId, VertexId>> seen;
    for (auto [a, b] : gathered_.edges)
      if (seen.insert({a, b}).second) g.add_edge(a, b);
    verdict_known_ = true;
    verdict_ = seq::decide(g, formula_);
    forward_verdict(ctx);
  }

  void forward_verdict(NodeCtx& ctx) {
    ctx.annotate("verdict");
    for (VertexId child : children_)
      ctx.send(ctx.port_of(child), Message(VerdictMsg{verdict_}, 1));
  }

  mso::FormulaPtr formula_;
  std::vector<VertexId> neighbor_ids_;
  int start_ = -1;
  VertexId root_ = -1;
  int dist_ = 0;
  VertexId parent_ = -1;
  std::vector<VertexId> children_;
  int expected_payloads_ = -1;
  EdgeListPayload gathered_;
  congest::FragmentSender sender_;
  congest::FragmentReassembler reasm_;
  bool forwarded_ = false;
  bool verdict_known_ = false;
  bool verdict_ = false;
};

}  // namespace

BaselineOutcome run_gather_baseline(congest::Network& net,
                                    const mso::FormulaPtr& formula) {
  congest::PhaseScope trace_scope(net, "baseline");
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  std::vector<GatherProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    std::vector<VertexId> nbrs;
    for (auto [w, e] : net.graph().incident(v))
      nbrs.push_back(net.id_of_vertex(w));
    auto p = std::make_unique<GatherProgram>(formula, std::move(nbrs));
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  BaselineOutcome out;
  out.run = net.run_outcome(programs);
  out.rounds = out.run.rounds;
  if (!out.run.ok()) return out;  // degraded: verdict untrusted
  out.holds = true;
  for (const auto* h : handles) out.holds = out.holds && h->verdict();
  return out;
}

}  // namespace dmc::dist
