// Baseline: gather the whole topology at a leader and decide centrally.
//
// This is the generic CONGEST strategy whose round complexity *grows with
// n* (Theta(n + m log n / log n) in the worst case): BFS-tree construction
// from the minimum-id node (n flooding rounds — nodes know n, so n rounds
// is a sound convergence bound), convergecast of all edge lists up the BFS
// tree (fragmented), sequential decision at the root, verdict broadcast.
//
// The benchmarks compare it against the paper's O(2^{2d})-round protocol to
// exhibit the crossover (EXPERIMENTS.md, E3).
#pragma once

#include "congest/network.hpp"
#include "mso/ast.hpp"

namespace dmc::dist {

struct BaselineOutcome {
  bool holds = false;
  long rounds = 0;
  /// How the run ended. When !run.ok() `holds` is untrusted.
  congest::RunOutcome run;
};

BaselineOutcome run_gather_baseline(congest::Network& net,
                                    const mso::FormulaPtr& formula);

}  // namespace dmc::dist
