#include "dist/certification.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>

#include "bpt/tables.hpp"
#include "congest/network.hpp"
#include "dist/local.hpp"
#include "graph/algorithms.hpp"
#include "mso/lower.hpp"
#include "td/elimination_forest.hpp"

namespace dmc::dist {

namespace {

/// Labeled-graph support: certificates carry the label bits of the bag
/// members / bag edges; stored in path order inside MsoCertificate via two
/// side arrays kept in the certification object. To keep the wire format
/// simple we fold them into the certificate struct lazily here.
struct LabelArrays {
  std::vector<std::uint32_t> vlabels;  // per path member (path order)
  std::vector<std::uint32_t> elabels;  // per set bit of bag_adj (pair order)
};

/// Builds the LocalBag view a node's verifier uses, from *claimed* data.
LocalBag bag_from_claim(const std::vector<VertexId>& path,
                        std::uint64_t bag_adj, const LabelArrays& labels) {
  const int tau = static_cast<int>(path.size());
  LocalBag bag;
  // order-preserving sort of path -> bag order
  std::vector<int> order(tau);
  for (int i = 0; i < tau; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return path[a] < path[b]; });
  std::vector<int> pos_in_bag(tau);
  for (int k = 0; k < tau; ++k) {
    pos_in_bag[order[k]] = k;
    bag.bag.push_back(path[order[k]]);
    bag.weights.push_back(1);
    bag.vlabel_bits.push_back(
        order[k] < static_cast<int>(labels.vlabels.size())
            ? labels.vlabels[order[k]]
            : 0);
  }
  int edge_ordinal = 0;
  for (int i = 0; i < tau; ++i) {
    for (int j = i + 1; j < tau; ++j) {
      if (!((bag_adj >> bpt::pair_index(i, j, tau)) & 1)) continue;
      LocalBag::BagEdge e;
      e.i = std::min(pos_in_bag[i], pos_in_bag[j]);
      e.j = std::max(pos_in_bag[i], pos_in_bag[j]);
      e.weight = 1;
      e.elabel_bits = edge_ordinal < static_cast<int>(labels.elabels.size())
                          ? labels.elabels[edge_ordinal]
                          : 0;
      ++edge_ordinal;
      bag.edges.push_back(e);
    }
  }
  std::sort(bag.edges.begin(), bag.edges.end(),
            [](const LocalBag::BagEdge& a, const LocalBag::BagEdge& b) {
              return std::tie(a.i, a.j) < std::tie(b.i, b.j);
            });
  return bag;
}

LabelArrays labels_for(const Graph& g, const std::vector<VertexId>& path,
                       std::uint64_t bag_adj,
                       const std::vector<std::string>& vnames,
                       const std::vector<std::string>& enames) {
  LabelArrays out;
  const int tau = static_cast<int>(path.size());
  for (VertexId v : path) {
    std::uint32_t bits = 0;
    for (std::size_t l = 0; l < vnames.size(); ++l)
      if (g.vertex_has_label(vnames[l], v)) bits |= 1u << l;
    out.vlabels.push_back(bits);
  }
  for (int i = 0; i < tau; ++i)
    for (int j = i + 1; j < tau; ++j) {
      if (!((bag_adj >> bpt::pair_index(i, j, tau)) & 1)) continue;
      std::uint32_t bits = 0;
      const EdgeId e = g.edge_id(path[i], path[j]);
      for (std::size_t l = 0; l < enames.size(); ++l)
        if (e >= 0 && g.edge_has_label(enames[l], e)) bits |= 1u << l;
      out.elabels.push_back(bits);
    }
  return out;
}

}  // namespace

long MsoCertificate::bits(int n, std::size_t num_classes) const {
  const int tau = static_cast<int>(path.size());
  return static_cast<long>(tau) * congest::id_bits(n) +
         tau * (tau - 1) / 2 +  // bag adjacency
         congest::count_bits(static_cast<std::uint64_t>(num_classes)) + 1;
}

MsoCertification prove_mso(const Graph& g, const mso::FormulaPtr& formula) {
  if (!is_connected(g))
    throw std::invalid_argument("prove_mso: graph must be connected");
  MsoCertification cert;
  cert.lowered = mso::lower(formula);
  cert.engine =
      std::make_shared<bpt::Engine>(bpt::config_for(*cert.lowered));
  const auto forest_opt = greedy_elimination_tree(g, g.num_vertices());
  if (!forest_opt) throw std::logic_error("prove_mso: greedy tree failed");
  const EliminationForest& forest = *forest_opt;

  cert.certs.resize(g.num_vertices());
  const auto& cfg = cert.engine->config();
  // Paths and bag adjacency.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    MsoCertificate& c = cert.certs[v];
    c.path = forest.root_path(v);
    const int tau = static_cast<int>(c.path.size());
    if (tau > bpt::kMaxTerminals)
      throw std::invalid_argument("prove_mso: tree depth exceeds engine width");
    for (int i = 0; i < tau; ++i)
      for (int j = i + 1; j < tau; ++j)
        if (g.has_edge(c.path[i], c.path[j]))
          c.bag_adj |= 1ull << bpt::pair_index(i, j, tau);
  }
  // Subtree classes, deepest first.
  std::vector<VertexId> order(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return forest.depth(a) > forest.depth(b);
  });
  bpt::Evaluator evaluator(*cert.engine, cert.lowered);
  for (VertexId v : order) {
    MsoCertificate& c = cert.certs[v];
    const LabelArrays labels =
        labels_for(g, c.path, c.bag_adj, cfg.vertex_labels, cfg.edge_labels);
    c.vlabels = labels.vlabels;
    c.elabels = labels.elabels;
    const LocalBag bag = bag_from_claim(c.path, c.bag_adj, labels);
    std::vector<VertexId> children_ids;
    std::vector<bpt::TypeId> child_classes;
    for (VertexId ch : forest.children(v)) {
      children_ids.push_back(ch);
      child_classes.push_back(cert.certs[ch].subtree_class);
    }
    const LocalContext lctx = make_local_context(
        bag, children_ids, cfg.vertex_labels, cfg.edge_labels);
    c.subtree_class =
        bpt::fold_type(*cert.engine, lctx.plan, lctx.graph, child_classes);
    if (forest.parent(v) < 0) c.accepting = evaluator.eval(c.subtree_class);
    cert.max_certificate_bits =
        std::max(cert.max_certificate_bits,
                 c.bits(g.num_vertices(), cert.engine->num_types()));
  }
  return cert;
}

VerifyResult verify_mso(const Graph& g, const MsoCertification& cert) {
  VerifyResult result;
  result.accept.assign(g.num_vertices(), true);
  const auto& cfg = cert.engine->config();
  bpt::Evaluator evaluator(*cert.engine, cert.lowered);

  auto is_prefix = [](const std::vector<VertexId>& a,
                      const std::vector<VertexId>& b) {
    if (a.size() > b.size()) return false;
    return std::equal(a.begin(), a.end(), b.begin());
  };

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const MsoCertificate& c = cert.certs[v];
    auto reject = [&]() { result.accept[v] = false; };
    // (1) path shape
    if (c.path.empty() || c.path.back() != v ||
        std::set<VertexId>(c.path.begin(), c.path.end()).size() !=
            c.path.size() ||
        static_cast<int>(c.path.size()) > bpt::kMaxTerminals) {
      reject();
      continue;
    }
    const int tau = static_cast<int>(c.path.size());
    if (tau > 1) {
      const VertexId parent = c.path[tau - 2];
      if (parent < 0 || parent >= g.num_vertices() || !g.has_edge(v, parent)) {
        reject();
        continue;
      }
      const auto& pc = cert.certs[parent];
      if (static_cast<int>(pc.path.size()) != tau - 1 ||
          !is_prefix(pc.path, c.path)) {
        reject();
        continue;
      }
      // (3b) bag adjacency restriction equals the parent's claim.
      bool ok = true;
      for (int i = 0; i < tau - 1 && ok; ++i)
        for (int j = i + 1; j < tau - 1 && ok; ++j)
          ok = (((c.bag_adj >> bpt::pair_index(i, j, tau)) & 1) ==
                ((pc.bag_adj >> bpt::pair_index(i, j, tau - 1)) & 1));
      if (!ok) {
        reject();
        continue;
      }
    }
    // (2) every incident edge joins prefix-comparable paths.
    {
      bool ok = true;
      for (auto [u, e] : g.incident(v)) {
        const auto& uc = cert.certs[u];
        if (!is_prefix(c.path, uc.path) && !is_prefix(uc.path, c.path))
          ok = false;
      }
      if (!ok) {
        reject();
        continue;
      }
    }
    // (3a) own adjacency row and own label entries are truthful.
    {
      bool ok = true;
      for (int i = 0; i < tau - 1 && ok; ++i)
        ok = (((c.bag_adj >> bpt::pair_index(i, tau - 1, tau)) & 1) ==
              (g.has_edge(c.path[i], v) ? 1u : 0u));
      if (static_cast<int>(c.vlabels.size()) != tau ||
          c.elabels.size() !=
              static_cast<std::size_t>(std::popcount(c.bag_adj)))
        ok = false;
      if (ok) {
        std::uint32_t own = 0;
        for (std::size_t l = 0; l < cfg.vertex_labels.size(); ++l)
          if (g.vertex_has_label(cfg.vertex_labels[l], v)) own |= 1u << l;
        ok = c.vlabels.back() == own;
      }
      if (ok) {
        // own incident bag edges carry truthful edge labels
        int ordinal = 0;
        for (int i = 0; i < tau && ok; ++i)
          for (int j = i + 1; j < tau && ok; ++j) {
            if (!((c.bag_adj >> bpt::pair_index(i, j, tau)) & 1)) continue;
            if (j == tau - 1) {
              const EdgeId e = g.edge_id(c.path[i], v);
              std::uint32_t bits = 0;
              for (std::size_t l = 0; l < cfg.edge_labels.size(); ++l)
                if (e >= 0 && g.edge_has_label(cfg.edge_labels[l], e))
                  bits |= 1u << l;
              ok = c.elabels[ordinal] == bits;
            }
            ++ordinal;
          }
      }
      if (!ok) {
        reject();
        continue;
      }
    }
    // (3c) label claims restricted to the parent's bag match the parent.
    if (tau > 1) {
      const auto& pc = cert.certs[c.path[tau - 2]];
      bool ok = std::equal(pc.vlabels.begin(), pc.vlabels.end(),
                           c.vlabels.begin());
      if (ok) {
        std::vector<std::uint32_t> restricted;
        int ordinal = 0;
        for (int i = 0; i < tau; ++i)
          for (int j = i + 1; j < tau; ++j) {
            if (!((c.bag_adj >> bpt::pair_index(i, j, tau)) & 1)) continue;
            if (j < tau - 1) restricted.push_back(c.elabels[ordinal]);
            ++ordinal;
          }
        ok = restricted == pc.elabels;
      }
      if (!ok) {
        reject();
        continue;
      }
    }
    // (4) recompute the class from the children's claims (labels and
    // adjacency taken from the *certificate*, validated above).
    {
      LabelArrays labels;
      labels.vlabels = c.vlabels;
      labels.elabels = c.elabels;
      const LocalBag bag = bag_from_claim(c.path, c.bag_adj, labels);
      std::vector<VertexId> children_ids;
      std::vector<bpt::TypeId> child_classes;
      for (auto [u, e] : g.incident(v)) {
        const auto& uc = cert.certs[u];
        if (static_cast<int>(uc.path.size()) == tau + 1 &&
            is_prefix(c.path, uc.path) && uc.path.back() == u) {
          children_ids.push_back(u);
          child_classes.push_back(uc.subtree_class);
        }
      }
      bpt::TypeId expected = bpt::kInvalidType;
      try {
        const LocalContext lctx = make_local_context(
            bag, children_ids, cfg.vertex_labels, cfg.edge_labels);
        expected = bpt::fold_type(*cert.engine, lctx.plan, lctx.graph,
                                  child_classes);
      } catch (const std::exception&) {
        reject();
        continue;
      }
      if (expected != c.subtree_class) {
        reject();
        continue;
      }
    }
    // (5) root verdict.
    if (tau == 1) {
      if (!c.accepting || !evaluator.eval(c.subtree_class)) reject();
    }
  }
  for (bool a : result.accept) result.all_accept = result.all_accept && a;
  return result;
}

}  // namespace dmc::dist
