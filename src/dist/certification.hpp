// Distributed certification of MSO properties on bounded treedepth —
// the companion setting the paper builds on (Bousquet, Feuilloley, Pierron,
// PODC 2022: O(log n)-bit certificates), realized with this repository's
// BPT engine.
//
// Scheme (one-round proof-labeling): the prover runs Algorithm 2's greedy
// elimination tree (a subtree of G, depth < 2^td by Lemma 2.5) and gives
// every node
//   - its root path (ancestor ids, root..self),
//   - the adjacency bitmask of G restricted to its bag (Lemma 2.4),
//   - the homomorphism class of its subtree graph G_v (Definition 4.1),
//   - at the root, the verdict bit.
// The verifier is a single exchange of certificates with neighbors; each
// node checks
//   (1) path shape: self last, parent (second-to-last) is a neighbor whose
//       path is its own minus the last entry;
//   (2) every incident edge joins prefix-comparable paths (the
//       elimination-forest property of Definition 2.1);
//   (3) bag adjacency: its own row is truthful, and the restriction to the
//       parent's bag equals the parent's claim;
//   (4) its class equals the Lemma 4.3 composition of its children's
//       claimed classes over its bag;
//   (5) root: the class is accepting for phi.
// Completeness and soundness are exercised by the test suite (honest
// certificates accepted; tampered paths / adjacency / classes / verdicts
// rejected by at least one node).
//
// Certificate size: O(depth·log n + depth^2 + log|C|) bits — O(log n) for
// constant treedepth, matching the predecessor paper's headline.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "bpt/engine.hpp"
#include "graph/graph.hpp"
#include "mso/ast.hpp"

namespace dmc::dist {

struct MsoCertificate {
  std::vector<VertexId> path;     // root path ids, root first, self last
  std::uint64_t bag_adj = 0;      // pair_index bits over `path`
  /// Label bits of the bag members (path order) and of the bag edges
  /// (set bits of bag_adj in i-major order) — each node certifies its own
  /// entries truthfully and checks prefix-consistency with its parent.
  std::vector<std::uint32_t> vlabels;
  std::vector<std::uint32_t> elabels;
  bpt::TypeId subtree_class = bpt::kInvalidType;
  bool accepting = false;         // meaningful at the root only

  /// Declared size in bits.
  long bits(int n, std::size_t num_classes) const;
};

struct MsoCertification {
  std::vector<MsoCertificate> certs;  // per vertex (ids == vertex indices)
  std::shared_ptr<bpt::Engine> engine;
  mso::FormulaPtr lowered;
  long max_certificate_bits = 0;
};

/// Honest prover. Requires g connected and td(g) small enough for the
/// greedy tree (throws otherwise). Note: the certification scheme certifies
/// *G satisfies phi*; if G does not, the honest certificates exist but the
/// root's verdict check fails (the verifier rejects) — exactly the
/// completeness/soundness split of the definition in Section 1.
MsoCertification prove_mso(const Graph& g, const mso::FormulaPtr& formula);

struct VerifyResult {
  bool all_accept = true;
  std::vector<bool> accept;  // per vertex
};

/// One-round verifier (each node sees its own and its neighbors'
/// certificates). Deterministic, side-effect free on the certification.
VerifyResult verify_mso(const Graph& g, const MsoCertification& cert);

}  // namespace dmc::dist
