// Sorted (child id -> fold slot) lookup shared by the aggregation
// protocols. Each program keeps its children in elimination-tree order so
// folds stay schedule-independent, but incoming child messages identify
// themselves by sender id; resolving that id with a linear scan makes a
// hub with 10^5 children quadratic in its degree. ChildSlots answers the
// same query in O(log c) from one sorted array, with no per-message
// allocation.
#pragma once

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace dmc::dist {

class ChildSlots {
 public:
  explicit ChildSlots(const std::vector<VertexId>& children) {
    slots_.reserve(children.size());
    for (std::size_t i = 0; i < children.size(); ++i)
      slots_.emplace_back(children[i], static_cast<int>(i));
    std::sort(slots_.begin(), slots_.end());
  }

  /// Fold slot of child `id` (its index in the original children list), or
  /// -1 when `id` is not a child.
  int slot(VertexId id) const {
    const auto it = std::lower_bound(
        slots_.begin(), slots_.end(),
        std::make_pair(id, std::numeric_limits<int>::min()));
    return it != slots_.end() && it->first == id ? it->second : -1;
  }

 private:
  std::vector<std::pair<VertexId, int>> slots_;
};

}  // namespace dmc::dist
