#include "dist/counting.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "bpt/tables.hpp"
#include "congest/fragment.hpp"
#include "congest/wire.hpp"
#include "dist/bags.hpp"
#include "dist/child_slots.hpp"
#include "dist/elim_tree.hpp"
#include "dist/local.hpp"
#include "mso/lower.hpp"

namespace dmc::dist {

namespace {

using congest::Message;
using congest::NodeCtx;

struct CountTablePayload {
  bpt::CountTable table;
};

struct TotalMsg {
  std::uint64_t total = 0;
};

/// Wire codecs (audit mode). Count tables declare their *measured*
/// encoding (varuint entry count, then varuint class + varuint count per
/// entry); TotalMsg's counter is the frame's only field and is sent
/// minimal-width, which is exactly the declared count_bits(total).
[[maybe_unused]] const bool wire_codecs_registered = [] {
  audit::register_codec<CountTablePayload>(
      "counting::CountTablePayload",
      [](const CountTablePayload& m, const audit::WireContext&,
         audit::BitWriter& w) {
        w.put_varuint(m.table.size());
        for (const auto& [c, count] : m.table) {
          w.put_varuint(static_cast<std::uint64_t>(c));
          w.put_varuint(count);
        }
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        CountTablePayload m;
        const std::uint64_t size = r.get_varuint();
        for (std::uint64_t i = 0; i < size; ++i) {
          const auto c = static_cast<bpt::TypeId>(r.get_varuint());
          m.table[c] = r.get_varuint();
        }
        return m;
      },
      [](const CountTablePayload& a, const CountTablePayload& b) {
        return a.table == b.table;
      });
  audit::register_codec<TotalMsg>(
      "counting::TotalMsg",
      [](const TotalMsg& m, const audit::WireContext&, audit::BitWriter& w) {
        w.put_uint_min(m.total);
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        return TotalMsg{r.get_rest()};
      },
      [](const TotalMsg& a, const TotalMsg& b) { return a.total == b.total; });
  return true;
}();

long table_bits(const CountTablePayload& payload, const NodeCtx& ctx) {
  return audit::measured_bits(payload,
                              audit::WireContext{ctx.n(), ctx.bandwidth()});
}

class CountingProgram : public congest::NodeProgram {
 public:
  CountingProgram(bpt::Engine& engine, bpt::Evaluator* evaluator,
                  LocalContext lctx, VertexId parent_id,
                  std::vector<VertexId> children_ids)
      : engine_(engine),
        evaluator_(evaluator),
        local_(std::move(lctx)),
        parent_id_(parent_id),
        children_ids_(std::move(children_ids)),
        child_slots_(children_ids_) {
    child_tables_.resize(children_ids_.size());
    have_table_.assign(children_ids_.size(), false);
  }

  /// Incremental refold (churn engine): replay `cached` instead of folding.
  /// `send_up` is false when the parent replays its own cached table too
  /// (it will never read this node's table), saving the upward fragments.
  void set_cached(bpt::CountTable cached, bool send_up) {
    cached_ = std::move(cached);
    have_cached_ = true;
    send_up_ = send_up;
  }

  bool finished() const { return finished_; }
  std::uint64_t total() const { return total_; }
  const bpt::CountTable& root_table() const { return root_table_; }
  bool folded() const { return folded_; }

  void on_round(NodeCtx& ctx) override {
    if (first_round_) {
      first_round_ = false;
      ctx.annotate("tables");
    }
    for (int p = 0; p < ctx.degree(); ++p) {
      const VertexId from = ctx.neighbor_id(p);
      if (auto payload = reasm_.poll(ctx, p)) {
        const auto& tp = std::any_cast<const CountTablePayload&>(*payload);
        const int slot = child_slots_.slot(from);
        if (slot >= 0) {
          child_tables_[slot] = tp.table;
          have_table_[slot] = true;
        }
        continue;
      }
      const auto& msg = ctx.recv(p);
      if (!msg) continue;
      if (const auto* tm = std::any_cast<TotalMsg>(&msg->value)) {
        if (from == parent_id_ && !finished_) {
          total_ = tm->total;
          finished_ = true;
          forward_total(ctx);
        }
      }
    }
    if (!solved_ &&
        (have_cached_ || std::all_of(have_table_.begin(), have_table_.end(),
                                     [](bool b) { return b; }))) {
      solved_ = true;
      if (have_cached_) {
        root_table_ = cached_;
      } else {
        const auto tables =
            bpt::fold_count(engine_, local_.plan, local_.graph, child_tables_);
        root_table_ = tables[local_.plan.root];
        folded_ = true;
      }
      if (parent_id_ < 0) {
        total_ = 0;
        for (const auto& [t, c] : root_table_) {
          if (!evaluator_->eval(t)) continue;
          if (__builtin_add_overflow(total_, c, &total_))
            throw std::overflow_error("run_count: overflow");
        }
        finished_ = true;
        forward_total(ctx);
      } else if (send_up_) {
        CountTablePayload payload{root_table_};
        const long bits = table_bits(payload, ctx);
        sender_.enqueue(ctx.port_of(parent_id_), std::move(payload), bits);
      }
    }
    sender_.pump(ctx);
    // Blocked on children's table chunks or the parent's total — both
    // arrive as traffic, which wakes us (sparse scheduler; no-op otherwise).
    if (!finished_ && sender_.idle()) ctx.sleep();
  }

  bool done(const NodeCtx&) const override {
    return finished_ && sender_.idle();
  }

 private:
  void forward_total(NodeCtx& ctx) {
    ctx.annotate("total");
    for (VertexId child : children_ids_)
      ctx.send(ctx.port_of(child),
               Message(TotalMsg{total_}, congest::count_bits(total_)));
  }

  bpt::Engine& engine_;
  bpt::Evaluator* evaluator_;
  LocalContext local_;
  VertexId parent_id_;
  std::vector<VertexId> children_ids_;
  ChildSlots child_slots_;
  std::vector<bpt::CountTable> child_tables_;
  std::vector<bool> have_table_;
  congest::FragmentSender sender_;
  congest::FragmentReassembler reasm_;
  bpt::CountTable cached_;
  bpt::CountTable root_table_;
  bool have_cached_ = false;
  bool send_up_ = true;
  bool folded_ = false;
  bool first_round_ = true;
  bool solved_ = false;
  bool finished_ = false;
  std::uint64_t total_ = 0;
};

}  // namespace

CountingOutcome run_count_solve(
    congest::Network& net, const mso::FormulaPtr& formula,
    const std::vector<std::pair<std::string, mso::Sort>>& vars,
    const ElimTreeResult& tree, const std::vector<LocalBag>& bags,
    bpt::Engine* engine_in, CountingCache* cache) {
  CountingOutcome out;
  const mso::FormulaPtr lowered = mso::lower(formula, vars);
  std::optional<bpt::Engine> own_engine;
  if (engine_in == nullptr) {
    own_engine.emplace(bpt::config_for(*lowered, vars));
    engine_in = &*own_engine;
  }
  bpt::Engine& engine = *engine_in;
  bpt::Evaluator evaluator(engine, lowered, vars);
  if (!tree.success)
    throw std::invalid_argument("run_count_solve: tree invalid");
  const auto& cfg = engine.config();

  congest::PhaseScope trace_scope(net, "count");
  const bool incremental =
      cache != nullptr &&
      cache->refold.size() == static_cast<std::size_t>(net.n()) &&
      cache->tables.size() == static_cast<std::size_t>(net.n()) &&
      cache->valid.size() == static_cast<std::size_t>(net.n());
  auto replay = [&](int v) {  // clean vertex with a usable cached table
    return incremental && !cache->refold[v] && cache->valid[v];
  };
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  std::vector<CountingProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    std::vector<VertexId> children_ids;
    for (int c : tree.children[v]) children_ids.push_back(net.id_of_vertex(c));
    LocalContext lctx = make_local_context(bags[v], children_ids,
                                           cfg.vertex_labels, cfg.edge_labels);
    auto p = std::make_unique<CountingProgram>(
        engine, &evaluator, std::move(lctx),
        tree.parent[v] < 0 ? -1 : net.id_of_vertex(tree.parent[v]),
        std::move(children_ids));
    if (replay(v)) {
      const int parent = tree.parent[v];
      p->set_cached(cache->tables[v], parent >= 0 && !replay(parent));
    }
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  {
    // COUNT payloads declare their measured varuint encoding of class-id
    // values, which depend on the interning schedule; keep the solve phase
    // on the exact serial path regardless of --threads.
    congest::Network::SerialSection serial(net);
    out.run = net.run_outcome(programs);
  }
  out.rounds_solve = out.run.rounds;
  out.num_classes = engine.num_types();
  if (!out.run.ok()) return out;  // degraded: count untrusted
  for (const auto* h : handles) out.folds += h->folded() ? 1 : 0;
  out.count = handles[0]->total();
  for (const auto* h : handles)
    if (h->total() != out.count)
      throw std::logic_error("run_count: inconsistent totals");
  if (cache != nullptr) {
    cache->tables.assign(net.n(), bpt::CountTable{});
    cache->valid.assign(net.n(), 1);
    for (int v = 0; v < net.n(); ++v) cache->tables[v] = handles[v]->root_table();
    cache->refold.assign(net.n(), 0);
  }
  return out;
}

CountingOutcome run_count(
    congest::Network& net, const mso::FormulaPtr& formula,
    const std::vector<std::pair<std::string, mso::Sort>>& vars, int d,
    bpt::Engine* engine_in, const ElimTreeOptions& tree_opts) {
  CountingOutcome out;
  const mso::FormulaPtr lowered = mso::lower(formula, vars);
  std::optional<bpt::Engine> own_engine;
  if (engine_in == nullptr) {
    own_engine.emplace(bpt::config_for(*lowered, vars));
    engine_in = &*own_engine;
  }

  const ElimTreeResult tree = run_elim_tree(net, d, tree_opts);
  out.rounds_elim = tree.rounds;
  out.run = tree.run;
  if (!tree.run.ok()) return out;  // degraded: not a treedepth verdict
  if (!tree.success) {
    out.treedepth_exceeded = true;
    return out;
  }
  const auto& cfg = engine_in->config();
  const BagsResult bags =
      run_bags(net, tree, cfg.vertex_labels, cfg.edge_labels);
  out.rounds_bags = bags.rounds;
  out.run = bags.run;
  if (!bags.run.ok()) return out;  // degraded: bags incomplete

  CountingOutcome solved =
      run_count_solve(net, formula, vars, tree, bags.bags, engine_in, nullptr);
  solved.rounds_elim = out.rounds_elim;
  solved.rounds_bags = out.rounds_bags;
  return solved;
}

}  // namespace dmc::dist
