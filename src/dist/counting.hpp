// Distributed MSO counting (paper Section 6, COUNT tables).
//
// Bottom-up convergecast of COUNT tables along the elimination tree; the
// root sums the counts of accepting classes and broadcasts the result.
// Works for any number of free set variables (e.g. triangle counting uses
// three singleton vertex-set variables; the count is 6x the number of
// triangles because assignments are ordered).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bpt/engine.hpp"
#include "bpt/tables.hpp"
#include "congest/network.hpp"
#include "dist/bags.hpp"
#include "dist/elim_tree.hpp"
#include "mso/ast.hpp"

namespace dmc::dist {

struct CountingOutcome {
  bool treedepth_exceeded = false;
  std::uint64_t count = 0;
  long rounds_elim = 0, rounds_bags = 0, rounds_solve = 0;
  std::size_t num_classes = 0;
  long folds = 0;  // COUNT-table folds performed (= n on a full run)
  /// How the pipeline ended. When !run.ok() every other field is untrusted.
  congest::RunOutcome run;

  long total_rounds() const { return rounds_elim + rounds_bags + rounds_solve; }
};

/// Incremental-refold state for the churn engine: per-vertex root COUNT
/// tables carried across epochs (same contract as dist::DecisionCache —
/// clean vertices replay their table without a fold and skip the upward
/// payload unless the parent refolds).
struct CountingCache {
  std::vector<bpt::CountTable> tables;  // by graph vertex
  std::vector<char> valid;              // by graph vertex: table usable
  std::vector<char> refold;             // by graph vertex; empty = fold all
};

/// Counts satisfying assignments of the free variables (slot order =
/// `vars`) distributively, with treedepth budget d. When `engine` is
/// non-null it is used instead of a fresh one (its config must match
/// `config_for(lower(formula, vars), vars)`); this is how the CLI injects
/// a cache-warmed universe.
CountingOutcome run_count(
    congest::Network& net, const mso::FormulaPtr& formula,
    const std::vector<std::pair<std::string, mso::Sort>>& vars, int d,
    bpt::Engine* engine = nullptr, const ElimTreeOptions& tree_opts = {});

/// Solve phase only, over an externally supplied elimination tree and bag
/// set — the churn-engine seam (see run_decision_solve). When `cache` is
/// non-null it supplies the refold plan and, on a completed run, is
/// refreshed with every vertex's root COUNT table.
CountingOutcome run_count_solve(
    congest::Network& net, const mso::FormulaPtr& formula,
    const std::vector<std::pair<std::string, mso::Sort>>& vars,
    const dist::ElimTreeResult& tree, const std::vector<LocalBag>& bags,
    bpt::Engine* engine = nullptr, CountingCache* cache = nullptr);

}  // namespace dmc::dist
