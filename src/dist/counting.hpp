// Distributed MSO counting (paper Section 6, COUNT tables).
//
// Bottom-up convergecast of COUNT tables along the elimination tree; the
// root sums the counts of accepting classes and broadcasts the result.
// Works for any number of free set variables (e.g. triangle counting uses
// three singleton vertex-set variables; the count is 6x the number of
// triangles because assignments are ordered).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bpt/engine.hpp"
#include "congest/network.hpp"
#include "mso/ast.hpp"

namespace dmc::dist {

struct CountingOutcome {
  bool treedepth_exceeded = false;
  std::uint64_t count = 0;
  long rounds_elim = 0, rounds_bags = 0, rounds_solve = 0;
  std::size_t num_classes = 0;
  /// How the pipeline ended. When !run.ok() every other field is untrusted.
  congest::RunOutcome run;

  long total_rounds() const { return rounds_elim + rounds_bags + rounds_solve; }
};

/// Counts satisfying assignments of the free variables (slot order =
/// `vars`) distributively, with treedepth budget d. When `engine` is
/// non-null it is used instead of a fresh one (its config must match
/// `config_for(lower(formula, vars), vars)`); this is how the CLI injects
/// a cache-warmed universe.
CountingOutcome run_count(
    congest::Network& net, const mso::FormulaPtr& formula,
    const std::vector<std::pair<std::string, mso::Sort>>& vars, int d,
    bpt::Engine* engine = nullptr);

}  // namespace dmc::dist
