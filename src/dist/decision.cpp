#include "dist/decision.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bpt/tables.hpp"
#include "congest/wire.hpp"
#include "dist/bags.hpp"
#include "dist/child_slots.hpp"
#include "dist/elim_tree.hpp"
#include "dist/local.hpp"
#include "mso/lower.hpp"
#include "par/pool.hpp"

namespace dmc::dist {

namespace {

using congest::Message;
using congest::NodeCtx;

struct ClassMsg {
  bpt::TypeId type = bpt::kInvalidType;
};

struct VerdictMsg {
  bool holds = false;
};

int bits_for_count(std::size_t num_types) {
  return std::max(1,
                  congest::count_bits(static_cast<std::uint64_t>(num_types)));
}

int class_bits(const bpt::Engine& engine) {
  return bits_for_count(engine.num_types());
}

/// Wire codecs (audit mode). A class id is the frame's only field, so it
/// is sent minimal-width and sized from the frame end on decode; its
/// minimal width never exceeds the declared class_bits (type < num_types).
[[maybe_unused]] const bool wire_codecs_registered = [] {
  audit::register_codec<ClassMsg>(
      "decision::ClassMsg",
      [](const ClassMsg& m, const audit::WireContext&, audit::BitWriter& w) {
        w.put_uint_min(static_cast<std::uint64_t>(m.type));
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        return ClassMsg{static_cast<bpt::TypeId>(r.get_rest())};
      },
      [](const ClassMsg& a, const ClassMsg& b) { return a.type == b.type; });
  audit::register_codec<VerdictMsg>(
      "decision::VerdictMsg",
      [](const VerdictMsg& m, const audit::WireContext&, audit::BitWriter& w) {
        w.put_bit(m.holds);
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        return VerdictMsg{r.get_bit()};
      },
      [](const VerdictMsg& a, const VerdictMsg& b) {
        return a.holds == b.holds;
      });
  return true;
}();

class DecisionProgram : public congest::NodeProgram {
 public:
  DecisionProgram(bpt::Engine& engine, bpt::Evaluator* evaluator,
                  LocalContext ctx, VertexId parent_id,
                  std::vector<VertexId> children_ids, int* max_bits,
                  const std::size_t* types_at_round_start)
      : engine_(engine),
        evaluator_(evaluator),
        local_(std::move(ctx)),
        parent_id_(parent_id),
        children_ids_(std::move(children_ids)),
        child_slots_(children_ids_),
        max_bits_(max_bits),
        types_at_round_start_(types_at_round_start) {
    inputs_.assign(children_ids_.size(), bpt::kInvalidType);
  }

  /// Incremental refold (churn engine): replay `cached` instead of folding.
  /// `send_up` is false when the parent replays its own cached class too
  /// (it will never read this node's class), saving the upward message.
  void set_cached(bpt::TypeId cached, bool send_up) {
    cached_ = cached;
    send_up_ = send_up;
  }

  bool has_verdict() const { return verdict_known_; }
  bool verdict() const { return verdict_; }
  bpt::TypeId my_class() const { return my_class_; }
  bool folded() const { return folded_; }

  void on_round(NodeCtx& ctx) override {
    if (first_round_) {
      first_round_ = false;
      ctx.annotate("fold");
    }
    // Collect children classes / parent verdict.
    for (int p = 0; p < ctx.degree(); ++p) {
      const auto& msg = ctx.recv(p);
      if (!msg) continue;
      if (const auto* cm = std::any_cast<ClassMsg>(&msg->value)) {
        const int slot = child_slots_.slot(ctx.neighbor_id(p));
        if (slot >= 0) inputs_[slot] = cm->type;
      } else if (const auto* vm = std::any_cast<VerdictMsg>(&msg->value)) {
        if (!verdict_known_) {
          verdict_known_ = true;
          verdict_ = vm->holds;
          forward_verdict(ctx);
        }
      }
    }
    if (!sent_ && (cached_ != bpt::kInvalidType || all_inputs_ready())) {
      sent_ = true;
      if (cached_ != bpt::kInvalidType) {
        my_class_ = cached_;
      } else {
        my_class_ = bpt::fold_type(engine_, local_.plan, local_.graph, inputs_);
        folded_ = true;
      }
      if (parent_id_ < 0) {
        verdict_known_ = true;
        verdict_ = evaluator_->eval(my_class_);
        forward_verdict(ctx);
      } else if (send_up_) {
        // Declared width must be schedule-independent under parallel
        // stepping (send-time num_types depends on the interning
        // schedule), so it is sized from the round-start universe
        // snapshot. The declaration is cost accounting only; the
        // simulator ships the value itself either way. Audit mode steps
        // serially and keeps the legacy send-time width so wire
        // re-encoding checks the exact declared frame.
        const int bits = ctx.audited() ? class_bits(engine_)
                                       : bits_for_count(*types_at_round_start_);
        par::atomic_fetch_max(*max_bits_, bits);
        ctx.send(ctx.port_of(parent_id_), Message(ClassMsg{my_class_}, bits));
      }
    }
    // Waiting on children's classes or the root's verdict — both arrive as
    // traffic, which wakes us (sparse scheduler; no-op otherwise).
    if (!verdict_known_) ctx.sleep();
  }

  bool done(const NodeCtx&) const override { return verdict_known_; }

 private:
  bool all_inputs_ready() const {
    return std::none_of(inputs_.begin(), inputs_.end(), [](bpt::TypeId t) {
      return t == bpt::kInvalidType;
    });
  }

  void forward_verdict(NodeCtx& ctx) {
    ctx.annotate("verdict");
    for (VertexId child : children_ids_)
      ctx.send(ctx.port_of(child), Message(VerdictMsg{verdict_}, 1));
  }

  bpt::Engine& engine_;
  bpt::Evaluator* evaluator_;
  LocalContext local_;
  VertexId parent_id_;
  std::vector<VertexId> children_ids_;
  ChildSlots child_slots_;
  std::vector<bpt::TypeId> inputs_;
  bpt::TypeId cached_ = bpt::kInvalidType;
  bpt::TypeId my_class_ = bpt::kInvalidType;
  bool send_up_ = true;
  bool folded_ = false;
  bool first_round_ = true;
  bool sent_ = false;
  bool verdict_known_ = false;
  bool verdict_ = false;
  int* max_bits_;
  const std::size_t* types_at_round_start_;
};

}  // namespace

DecisionOutcome run_decision_solve(congest::Network& net,
                                   const mso::FormulaPtr& formula,
                                   const ElimTreeResult& tree,
                                   const std::vector<LocalBag>& bags,
                                   bpt::Engine* engine,
                                   DecisionCache* cache) {
  DecisionOutcome out;
  const mso::FormulaPtr lowered = mso::lower(formula);
  std::optional<bpt::Engine> own_engine;
  if (engine == nullptr) {
    own_engine.emplace(bpt::config_for(*lowered));
    engine = &*own_engine;
  }
  if (!tree.success)
    throw std::invalid_argument("run_decision_solve: tree invalid");
  out.tree_depth = *std::max_element(tree.depth.begin(), tree.depth.end());
  const auto& cfg = engine->config();

  congest::PhaseScope trace_scope(net, "decide");
  bpt::Evaluator evaluator(*engine, lowered);
  // Round-start universe snapshot for schedule-independent class_bits
  // declarations; refreshed by the network before each round's steps.
  std::size_t types_at_round_start = engine->num_types();
  net.set_round_begin_hook(
      [&types_at_round_start, engine] { types_at_round_start = engine->num_types(); });
  const bool incremental =
      cache != nullptr &&
      cache->refold.size() == static_cast<std::size_t>(net.n()) &&
      cache->classes.size() == static_cast<std::size_t>(net.n());
  auto replay = [&](int v) {  // clean vertex with a usable cached class
    return incremental && !cache->refold[v] &&
           cache->classes[v] != bpt::kInvalidType;
  };
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  std::vector<DecisionProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    std::vector<VertexId> children_ids;
    for (int c : tree.children[v]) children_ids.push_back(net.id_of_vertex(c));
    LocalContext lctx = make_local_context(bags[v], children_ids,
                                           cfg.vertex_labels, cfg.edge_labels);
    auto p = std::make_unique<DecisionProgram>(
        *engine, &evaluator, std::move(lctx),
        tree.parent[v] < 0 ? -1 : net.id_of_vertex(tree.parent[v]),
        std::move(children_ids), &out.max_class_bits, &types_at_round_start);
    if (replay(v)) {
      const int parent = tree.parent[v];
      p->set_cached(cache->classes[v], parent >= 0 && !replay(parent));
    }
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  out.run = net.run_outcome(programs);
  net.set_round_begin_hook(nullptr);
  out.rounds_updown = out.run.rounds;
  out.num_classes = engine->num_types();
  if (!out.run.ok()) return out;  // degraded: verdict untrusted
  for (const auto* h : handles) out.folds += h->folded() ? 1 : 0;
  // Distributed decision semantics: G |= phi iff every node accepts; all
  // nodes received the root's verdict.
  out.holds = true;
  for (const auto* h : handles) out.holds = out.holds && h->verdict();
  if (cache != nullptr) {
    cache->classes.assign(net.n(), bpt::kInvalidType);
    for (int v = 0; v < net.n(); ++v) cache->classes[v] = handles[v]->my_class();
    cache->refold.assign(net.n(), 0);
  }
  return out;
}

DecisionOutcome run_decision(congest::Network& net,
                             const mso::FormulaPtr& formula, int d,
                             bpt::Engine* engine,
                             const ElimTreeOptions& tree_opts) {
  DecisionOutcome out;
  const ElimTreeResult tree = run_elim_tree(net, d, tree_opts);
  out.rounds_elim = tree.rounds;
  out.run = tree.run;
  if (!tree.run.ok()) return out;  // degraded: not a treedepth verdict
  if (!tree.success) {
    out.treedepth_exceeded = true;
    return out;
  }

  const mso::FormulaPtr lowered = mso::lower(formula);
  std::optional<bpt::Engine> own_engine;
  if (engine == nullptr) {
    own_engine.emplace(bpt::config_for(*lowered));
    engine = &*own_engine;
  }
  const auto& cfg = engine->config();
  const BagsResult bags =
      run_bags(net, tree, cfg.vertex_labels, cfg.edge_labels);
  out.rounds_bags = bags.rounds;
  out.run = bags.run;
  if (!bags.run.ok()) return out;  // degraded: bags incomplete

  DecisionOutcome solved =
      run_decision_solve(net, formula, tree, bags.bags, engine, nullptr);
  solved.rounds_elim = out.rounds_elim;
  solved.rounds_bags = out.rounds_bags;
  return solved;
}

}  // namespace dmc::dist
