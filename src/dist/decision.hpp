// Distributed MSO model checking (paper Theorem 6.1, decision part).
//
// Pipeline: Algorithm 2 (elimination tree, O(2^{2d}) rounds) -> Lemma 5.3
// (bags, O(2^{2d}) rounds) -> bottom-up class convergecast along the
// elimination tree (depth(T) < 2^d rounds, messages of ceil(log |C|) bits)
// -> verdict at the root, broadcast down (depth rounds, 1-bit messages).
//
// Every node's per-round computation is the local composition of Lemma 4.3,
// performed with the shared BPT engine (the class set C and the update
// functions are computable from (phi, w) alone — Theorem 4.2 — so sharing
// one interner across simulated nodes is sound; class ids in messages are
// charged ceil(log2 |C|) bits).
#pragma once

#include "bpt/engine.hpp"
#include "congest/network.hpp"
#include "dist/bags.hpp"
#include "dist/elim_tree.hpp"
#include "mso/ast.hpp"

namespace dmc::dist {

struct DecisionOutcome {
  bool treedepth_exceeded = false;  // some node rejected during Algorithm 2
  bool holds = false;               // G |= phi (valid unless exceeded)
  long rounds_elim = 0;
  long rounds_bags = 0;
  long rounds_updown = 0;
  int tree_depth = 0;          // depth of the constructed elimination tree
  std::size_t num_classes = 0;      // |C| reached by the engine
  int max_class_bits = 0;           // bits of the largest class message
  long folds = 0;                   // BPT folds performed (= n on a full run)
  /// How the pipeline ended. When !run.ok() (round budget exhausted or
  /// crash-stop faults in any stage) `holds` and `treedepth_exceeded` are
  /// untrusted and must not be interpreted.
  congest::RunOutcome run;

  long total_rounds() const { return rounds_elim + rounds_bags + rounds_updown; }
};

/// Incremental-refold state for the churn engine (src/churn/): per-vertex
/// subtree classes carried across epochs. Vertices with `refold[v]` set
/// fold fresh; clean vertices replay `classes[v]` without a BPT fold and
/// skip the upward class message unless their parent refolds. Sound
/// because a subtree's class depends only on its members' fold contexts
/// (Lemma 4.3) — exactly what churn::TreePatch::dirty tracks — and class
/// ids stay stable within one shared engine.
struct DecisionCache {
  std::vector<bpt::TypeId> classes;  // by graph vertex; kInvalidType = none
  std::vector<char> refold;          // by graph vertex; empty = fold all
};

/// Decides the closed formula on the network, with treedepth budget d.
/// If `engine` is non-null it is used (and filled) instead of a fresh one —
/// useful for running many instances against one class universe.
/// `tree_opts` tunes the elimination-tree prologue (e.g. change-only
/// flooding for the sparse scheduler); the verdict is unaffected.
DecisionOutcome run_decision(congest::Network& net,
                             const mso::FormulaPtr& formula, int d,
                             bpt::Engine* engine = nullptr,
                             const ElimTreeOptions& tree_opts = {});

/// Solve phase only: the class convergecast + verdict broadcast over an
/// externally supplied elimination tree and bag set (`bags[v]` for graph
/// vertex v). This is the seam the churn engine re-enters after an
/// incremental repair — the elim/bags prologue of run_decision is skipped,
/// so a repaired epoch costs only the up/down rounds. When `cache` is
/// non-null it supplies the refold plan and, on a completed run, is
/// refreshed with every vertex's class (refold flags cleared).
DecisionOutcome run_decision_solve(congest::Network& net,
                                   const mso::FormulaPtr& formula,
                                   const ElimTreeResult& tree,
                                   const std::vector<LocalBag>& bags,
                                   bpt::Engine* engine = nullptr,
                                   DecisionCache* cache = nullptr);

}  // namespace dmc::dist
