#include "dist/elim_tree.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "congest/wire.hpp"

namespace dmc::dist {

namespace {

using congest::Message;
using congest::NodeCtx;

/// Flood message during leader-election rounds.
struct FloodMsg {
  bool marked = false;
  VertexId min_id = -1;
};

/// "My component leader is L" report (end of a phase's election).
struct ReportMsg {
  VertexId leader = -1;
  VertexId reporter = -1;
};

/// "You become my child" (Algorithm 2, instruction 15).
struct AdoptMsg {
  VertexId parent = -1;
};

/// Wire codecs (audit mode): ids are fixed id_bits(n)-wide fields. A
/// marked flood carries no min-id (marked senders' floods are ignored), so
/// the flag conditions the id field and the declared 1 + id_bits is an
/// upper bound, tight for the unmarked case.
[[maybe_unused]] const bool wire_codecs_registered = [] {
  audit::register_codec<FloodMsg>(
      "elim_tree::FloodMsg",
      [](const FloodMsg& m, const audit::WireContext& ctx,
         audit::BitWriter& w) {
        w.put_bit(m.marked);
        if (!m.marked)
          w.put_uint(static_cast<std::uint64_t>(m.min_id),
                     congest::id_bits(ctx.n));
      },
      [](const audit::WireContext& ctx, audit::BitReader& r) {
        FloodMsg m;
        m.marked = r.get_bit();
        m.min_id = m.marked ? -1
                            : static_cast<VertexId>(
                                  r.get_uint(congest::id_bits(ctx.n)));
        return m;
      },
      [](const FloodMsg& a, const FloodMsg& b) {
        return a.marked == b.marked && a.min_id == b.min_id;
      });
  audit::register_codec<ReportMsg>(
      "elim_tree::ReportMsg",
      [](const ReportMsg& m, const audit::WireContext& ctx,
         audit::BitWriter& w) {
        w.put_uint(static_cast<std::uint64_t>(m.leader),
                   congest::id_bits(ctx.n));
        w.put_uint(static_cast<std::uint64_t>(m.reporter),
                   congest::id_bits(ctx.n));
      },
      [](const audit::WireContext& ctx, audit::BitReader& r) {
        ReportMsg m;
        m.leader =
            static_cast<VertexId>(r.get_uint(congest::id_bits(ctx.n)));
        m.reporter =
            static_cast<VertexId>(r.get_uint(congest::id_bits(ctx.n)));
        return m;
      },
      [](const ReportMsg& a, const ReportMsg& b) {
        return a.leader == b.leader && a.reporter == b.reporter;
      });
  audit::register_codec<AdoptMsg>(
      "elim_tree::AdoptMsg",
      [](const AdoptMsg& m, const audit::WireContext& ctx,
         audit::BitWriter& w) {
        w.put_uint(static_cast<std::uint64_t>(m.parent),
                   congest::id_bits(ctx.n));
      },
      [](const audit::WireContext& ctx, audit::BitReader& r) {
        AdoptMsg m;
        m.parent =
            static_cast<VertexId>(r.get_uint(congest::id_bits(ctx.n)));
        return m;
      },
      [](const AdoptMsg& a, const AdoptMsg& b) {
        return a.parent == b.parent;
      });
  return true;
}();

// Phase layout (E = election_rounds, L = E + 2):
//   step 0        : process AdoptMsg from the previous phase (mark self,
//                   depth = current phase); reset election state; flood.
//   steps 1..E-1  : flood min-ids among unmarked nodes.
//   step E        : final flood processing; in phase 0 the global minimum
//                   marks itself as root (depth 1); in later phases
//                   unmarked nodes report (leader, self) to neighbors.
//   step E+1      : marked nodes of depth == phase adopt one reporter per
//                   component (min reporter id) and send AdoptMsg.
// Phase p (p >= 1) thereby creates the nodes of depth p+1, which mark
// themselves at step 0 of phase p+1. Phases 0..D-1 run (D = 2^d - 1), plus
// one extra round so the last AdoptMsg is processed.
class ElimTreeProgram : public congest::NodeProgram {
 public:
  explicit ElimTreeProgram(int d, bool sparse_flood)
      : d_(d), sparse_(sparse_flood) {
    election_rounds_ = (1 << d_) + 1;
    phase_len_ = election_rounds_ + 2;
    num_phases_ = (1 << d_) - 1;  // phases 0 .. D-1
    total_rounds_ = num_phases_ * phase_len_ + 1;
  }

  bool marked() const { return depth_ > 0; }
  int depth() const { return depth_; }
  VertexId parent_id() const { return parent_; }
  const std::vector<VertexId>& children_ids() const { return children_; }

  void on_round(NodeCtx& ctx) override {
    const int r = ctx.round() - (start_round_ < 0 ? (start_round_ = ctx.round())
                                                  : start_round_);
    if (r >= total_rounds_) return;
    const int phase = r / phase_len_;
    const int step = r % phase_len_;
    const int E = election_rounds_;
    const int id_bits = congest::id_bits(ctx.n());

    if (step == 0) {
      if (phase >= 1 && !marked()) process_adopt(ctx, /*depth=*/phase);
      cur_min_ = marked() ? -1 : ctx.id();
    }
    if (step < E) {
      ctx.annotate("election");
      const VertexId before = cur_min_;
      if (step > 0) absorb_floods(ctx);
      if (!sparse_) {
        ctx.send_all(Message(FloodMsg{marked(), cur_min_}, 1 + id_bits));
      } else if (!marked() && phase < num_phases_ &&
                 (step == 0 || cur_min_ < before)) {
        // Change-only flooding: forward the minimum only when it improved
        // this step (or the phase's step-0 seed). Improvements still
        // travel one hop per round, so the election converges on the same
        // leaders in the same number of rounds as the dense schedule.
        ctx.send_all(Message(FloodMsg{false, cur_min_}, 1 + id_bits));
      }
      arm_wake(ctx, phase, step);
      return;
    }
    if (step == E) {
      ctx.annotate("report");
      absorb_floods(ctx);
      if (phase == 0) {
        if (!marked() && cur_min_ == ctx.id()) depth_ = 1;  // root, parent -1
        arm_wake(ctx, phase, step);
        return;
      }
      if (!marked())
        ctx.send_all(Message(ReportMsg{cur_min_, ctx.id()}, 2 * id_bits));
      arm_wake(ctx, phase, step);
      return;
    }
    // step == E + 1: adoption by nodes of depth == phase.
    ctx.annotate("adopt");
    if (phase >= 1 && marked() && depth_ == phase) {
      std::map<VertexId, std::pair<VertexId, int>> best;  // leader -> (id, port)
      for (int p = 0; p < ctx.degree(); ++p) {
        const auto& msg = ctx.recv(p);
        if (!msg) continue;
        const auto* rm = std::any_cast<ReportMsg>(&msg->value);
        if (!rm) continue;
        auto it = best.find(rm->leader);
        if (it == best.end() || rm->reporter < it->second.first)
          best[rm->leader] = {rm->reporter, p};
      }
      for (const auto& [leader, chosen] : best) {
        ctx.send(chosen.second, Message(AdoptMsg{ctx.id()}, id_bits));
        children_.push_back(chosen.first);
      }
    }
    arm_wake(ctx, phase, step);
  }

  bool done(const NodeCtx& ctx) const override {
    return start_round_ >= 0 && ctx.round() - start_round_ >= total_rounds_;
  }

 private:
  /// Sparse mode: after acting at (phase, step), sleep until the next
  /// round this node *must* act even without traffic. Traffic (floods,
  /// reports, adoptions) wakes a sleeping node earlier via the scheduler's
  /// delivery trigger, so nothing is missed. Marked nodes only ever react
  /// to report traffic; their sole mandatory round is the final one, where
  /// done() flips and the scheduler must observe it.
  void arm_wake(NodeCtx& ctx, int phase, int step) {
    if (!sparse_) return;
    int next;
    if (marked()) {
      next = total_rounds_;
    } else if (step < election_rounds_) {
      next = std::min(phase * phase_len_ + election_rounds_, total_rounds_);
    } else {
      next = std::min((phase + 1) * phase_len_, total_rounds_);
    }
    ctx.wake_at(start_round_ + next);
  }

  void absorb_floods(NodeCtx& ctx) {
    if (marked()) return;
    for (int p = 0; p < ctx.degree(); ++p) {
      const auto& msg = ctx.recv(p);
      if (!msg) continue;
      const auto* fm = std::any_cast<FloodMsg>(&msg->value);
      if (fm && !fm->marked) cur_min_ = std::min(cur_min_, fm->min_id);
    }
  }

  void process_adopt(NodeCtx& ctx, int depth) {
    for (int p = 0; p < ctx.degree(); ++p) {
      const auto& msg = ctx.recv(p);
      if (!msg) continue;
      const auto* am = std::any_cast<AdoptMsg>(&msg->value);
      if (am) {
        parent_ = am->parent;
        depth_ = depth;
      }
    }
  }

  int d_;
  bool sparse_;
  int election_rounds_;
  int phase_len_;
  int num_phases_;
  int total_rounds_;
  int start_round_ = -1;
  VertexId cur_min_ = -1;
  int depth_ = 0;  // 0 = unmarked
  VertexId parent_ = -1;
  std::vector<VertexId> children_;
};

}  // namespace

ElimTreeResult run_elim_tree(congest::Network& net, int d,
                             const ElimTreeOptions& opts) {
  if (d < 1) throw std::invalid_argument("run_elim_tree: d >= 1 required");
  congest::PhaseScope trace_scope(net, "elim-tree");
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  std::vector<ElimTreeProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    auto p = std::make_unique<ElimTreeProgram>(d, opts.sparse_flood);
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  ElimTreeResult result;
  result.run = net.run_outcome(programs);
  result.rounds = result.run.rounds;
  if (!result.run.ok()) return result;  // degraded: outputs untrusted
  result.success = true;
  result.parent.assign(net.n(), -1);
  result.depth.assign(net.n(), 0);
  result.children.assign(net.n(), {});
  for (int v = 0; v < net.n(); ++v) {
    const ElimTreeProgram& p = *handles[v];
    if (!p.marked()) {
      result.success = false;  // this node rejects: td(G) > d
      continue;
    }
    result.depth[v] = p.depth();
    result.parent[v] =
        p.parent_id() < 0 ? -1 : net.vertex_of_id(p.parent_id());
    for (VertexId cid : p.children_ids())
      result.children[v].push_back(net.vertex_of_id(cid));
  }
  return result;
}

}  // namespace dmc::dist
