// Distributed elimination-tree construction: the paper's Algorithm 2
// (Lemma 5.1).
//
// Given a treedepth budget d, the protocol runs D-1 = 2^d - 2 phases. Each
// phase performs a component-restricted leader election among unmarked
// nodes (min-id flooding for 2^d + 1 rounds — enough because graphs of
// treedepth <= d contain no path on 2^d vertices, Lemma 2.5), after which
// each unmarked node reports its component leader to its neighbors, and
// each marked node of the previous depth adopts, per component, the
// minimum-id reporter as its child. If any node is still unmarked after all
// phases, td(G) > d is reported (that node rejects).
//
// Total rounds: O(2^{2d}), independent of n — the quantity benchmarked in
// EXPERIMENTS.md E1.
#pragma once

#include <memory>
#include <vector>

#include "congest/network.hpp"

namespace dmc::dist {

struct ElimTreeResult {
  bool success = false;  // false => some node rejected: td(G) > d
  /// Per graph vertex (not id): parent vertex (-1 for the root), depth
  /// (1-based), and children (graph vertices). Valid only on success.
  std::vector<int> parent;
  std::vector<int> depth;
  std::vector<std::vector<int>> children;
  long rounds = 0;
  /// How the underlying run ended. When !run.ok() (round budget exhausted
  /// or crash-stop faults) the protocol outputs are untrusted: success is
  /// forced false and must not be read as "td(G) > d".
  congest::RunOutcome run;
};

struct ElimTreeOptions {
  /// Change-only flooding, tuned for the sparse scheduler
  /// (NetworkConfig::sparse_stepping): an unmarked node floods its
  /// component minimum only when it improves (plus the mandatory seed at
  /// each phase's step 0), marked nodes stop flooding entirely, and every
  /// node sleeps between its mandatory steps, waking on traffic or its
  /// next scheduled step. Min-flooding is monotone and idempotent, so the
  /// elected leaders — and hence the resulting tree and the round count —
  /// are identical to the dense schedule; only the message count drops.
  /// Off by default: the dense flood schedule is Algorithm 2's literal
  /// cost model and the E1/E12 baselines gate its exact message counts.
  bool sparse_flood = false;
};

/// Runs Algorithm 2 on the network. Stats accumulate in net.stats().
ElimTreeResult run_elim_tree(congest::Network& net, int d,
                             const ElimTreeOptions& opts = {});

}  // namespace dmc::dist
