#include "dist/hfreeness.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "congest/network.hpp"
#include "dist/decision.hpp"
#include "graph/algorithms.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"
#include "par/pool.hpp"

namespace dmc::dist {

LowTdDecomposition grid_low_td_decomposition(const Graph& g, int rows,
                                             int cols, int p) {
  if (rows * cols != g.num_vertices())
    throw std::invalid_argument("grid_low_td_decomposition: bad dimensions");
  if (p < 1) throw std::invalid_argument("grid_low_td_decomposition: p >= 1");
  const int m = p + 1;
  LowTdDecomposition out;
  out.p = p;
  out.num_parts = m * m;
  out.part.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const int r = v / cols, c = v % cols;
    out.part[v] = (r % m) * m + (c % m);
    // Sanity: the decomposition argument needs axis-local edges.
  }
  for (const Edge& e : g.edges()) {
    const int ru = e.u / cols, cu = e.u % cols;
    const int rv = e.v / cols, cv = e.v % cols;
    if (std::abs(ru - rv) > 1 || std::abs(cu - cv) > 1)
      throw std::invalid_argument(
          "grid_low_td_decomposition: edge spans more than one cell");
  }
  out.rounds = 1;  // coordinates are local inputs; announcing takes O(1)
  return out;
}

HFreenessOutcome run_h_freeness_grid(const Graph& g, int rows, int cols,
                                     const Graph& h, int td_budget,
                                     obs::TraceSink* sink) {
  congest::NetworkConfig base_cfg;
  base_cfg.sink = sink;
  return run_h_freeness_grid(g, rows, cols, h, td_budget, base_cfg);
}

HFreenessOutcome run_h_freeness_grid(const Graph& g, int rows, int cols,
                                     const Graph& h, int td_budget,
                                     const congest::NetworkConfig& base_cfg) {
  return run_h_freeness_grid(g, rows, cols, h, td_budget, base_cfg,
                             HFreenessOptions{});
}

namespace {

/// Everything the serial sweep would have observed for one part-subset,
/// in serial component order: the task stops at the first degraded or
/// td-exceeded component, exactly like the inline loop used to.
struct SubsetResult {
  int component_runs = 0;
  long max_rounds = 0;
  bool h_free = true;
  bool td_exceeded = false;
  congest::RunOutcome run;  // first degraded component's outcome
};

SubsetResult run_subset(const Graph& g, const Graph& h, int p, int td_budget,
                        const congest::NetworkConfig& base_cfg,
                        const LowTdDecomposition& decomp,
                        const std::vector<int>& subset, int subset_index,
                        const mso::FormulaPtr& formula, bpt::Engine& engine) {
  SubsetResult out;
  // Union of the chosen parts.
  std::vector<bool> chosen(decomp.num_parts, false);
  for (int i : subset) chosen[i] = true;
  std::vector<VertexId> members;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (chosen[decomp.part[v]]) members.push_back(v);
  if (members.empty()) return out;
  const Graph gi = g.induced_subgraph(members);
  // Run the decision on each connected component (the components run
  // in parallel over disjoint vertex sets; rounds = max over them).
  const auto comp = connected_components(gi);
  const int num_comp =
      comp.empty() ? 0 : 1 + *std::max_element(comp.begin(), comp.end());
  for (int c = 0; c < num_comp; ++c) {
    std::vector<VertexId> cm;
    for (VertexId v = 0; v < gi.num_vertices(); ++v)
      if (comp[v] == c) cm.push_back(v);
    if (static_cast<int>(cm.size()) < p) continue;  // cannot contain H
    const Graph gc = gi.induced_subgraph(cm);
    congest::Network net(gc, base_cfg);
    ++out.component_runs;
    char span[48];
    std::snprintf(span, sizeof(span), "subset=%d comp=%d", subset_index, c);
    congest::PhaseScope trace_scope(net, span);
    const DecisionOutcome res = run_decision(net, formula, td_budget, &engine);
    out.max_rounds = std::max(out.max_rounds, res.total_rounds());
    if (!res.run.ok()) {
      out.run = res.run;
      return out;
    }
    if (res.treedepth_exceeded) {
      out.td_exceeded = true;
      return out;
    }
    if (!res.holds) out.h_free = false;
  }
  return out;
}

}  // namespace

HFreenessOutcome run_h_freeness_grid(const Graph& g, int rows, int cols,
                                     const Graph& h, int td_budget,
                                     const congest::NetworkConfig& base_cfg,
                                     const HFreenessOptions& opts) {
  const int p = h.num_vertices();
  if (p < 1 || !is_connected(h))
    throw std::invalid_argument("run_h_freeness_grid: H must be connected");
  const LowTdDecomposition decomp = grid_low_td_decomposition(g, rows, cols, p);

  HFreenessOutcome out;
  out.decomposition_rounds = decomp.rounds;
  const mso::FormulaPtr formula = mso::lib::h_free(h);

  // Shared class universe across all runs (Theorem 4.2: computable from
  // (phi, w) alone).
  const mso::FormulaPtr lowered = mso::lower(formula);
  bpt::Engine engine(bpt::config_for(*lowered));

  // Enumerate p-subsets I of the parts (smaller unions are contained in
  // some p-subset union, so |I| = p suffices).
  std::vector<std::vector<int>> subsets;
  {
    std::vector<int> subset(std::min(p, decomp.num_parts));
    for (int i = 0; i < static_cast<int>(subset.size()); ++i) subset[i] = i;
    const int k = static_cast<int>(subset.size());
    for (;;) {
      subsets.push_back(subset);
      int i = k - 1;
      while (i >= 0 && subset[i] == decomp.num_parts - k + i) --i;
      if (i < 0) break;
      ++subset[i];
      for (int j = i + 1; j < k; ++j) subset[j] = subset[j - 1] + 1;
    }
  }

  // Trace streams from concurrent tasks would interleave, and audit mode
  // is a serial re-encoding check: both force the legacy serial sweep.
  const bool force_serial = base_cfg.sink != nullptr || base_cfg.audit;
  const int sweep_threads =
      force_serial ? 1
                   : (opts.sweep_threads <= 0 ? par::hardware_threads()
                                              : opts.sweep_threads);

  std::vector<SubsetResult> results(subsets.size());
  if (sweep_threads <= 1) {
    // Serial sweep: tasks share one growing universe (memo hits carry
    // across subsets) and stop at the first degraded component.
    for (std::size_t s = 0; s < subsets.size(); ++s) {
      results[s] = run_subset(g, h, p, td_budget, base_cfg, decomp, subsets[s],
                              static_cast<int>(s), formula, engine);
      if (!results[s].run.ok() || results[s].td_exceeded) {
        results.resize(s + 1);
        break;
      }
    }
  } else {
    // Parallel sweep: each task folds into a private copy of the universe
    // (class ids may differ per task; verdicts cannot — Theorem 4.2).
    par::parallel_for(sweep_threads, subsets.size(), [&](std::size_t s) {
      bpt::Engine task_engine(engine);
      results[s] = run_subset(g, h, p, td_budget, base_cfg, decomp, subsets[s],
                              static_cast<int>(s), formula, task_engine);
    });
  }

  // Aggregate in subset order so the reported fields (and the early-stop
  // cut-off) match the serial sweep regardless of execution order.
  for (const SubsetResult& r : results) {
    ++out.num_subsets;
    out.num_component_runs += r.component_runs;
    out.max_run_rounds = std::max(out.max_run_rounds, r.max_rounds);
    if (!r.run.ok()) {
      out.run = r.run;
      out.multiplexed_rounds = out.max_run_rounds * out.num_subsets;
      return out;
    }
    if (r.td_exceeded)
      throw std::logic_error(
          "run_h_freeness_grid: td budget too small for a union "
          "component (raise td_budget)");
    if (!r.h_free) out.h_free = false;
  }
  out.multiplexed_rounds = out.max_run_rounds * out.num_subsets;
  return out;
}

}  // namespace dmc::dist
