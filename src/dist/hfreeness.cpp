#include "dist/hfreeness.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "congest/network.hpp"
#include "dist/decision.hpp"
#include "graph/algorithms.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"

namespace dmc::dist {

LowTdDecomposition grid_low_td_decomposition(const Graph& g, int rows,
                                             int cols, int p) {
  if (rows * cols != g.num_vertices())
    throw std::invalid_argument("grid_low_td_decomposition: bad dimensions");
  if (p < 1) throw std::invalid_argument("grid_low_td_decomposition: p >= 1");
  const int m = p + 1;
  LowTdDecomposition out;
  out.p = p;
  out.num_parts = m * m;
  out.part.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const int r = v / cols, c = v % cols;
    out.part[v] = (r % m) * m + (c % m);
    // Sanity: the decomposition argument needs axis-local edges.
  }
  for (const Edge& e : g.edges()) {
    const int ru = e.u / cols, cu = e.u % cols;
    const int rv = e.v / cols, cv = e.v % cols;
    if (std::abs(ru - rv) > 1 || std::abs(cu - cv) > 1)
      throw std::invalid_argument(
          "grid_low_td_decomposition: edge spans more than one cell");
  }
  out.rounds = 1;  // coordinates are local inputs; announcing takes O(1)
  return out;
}

HFreenessOutcome run_h_freeness_grid(const Graph& g, int rows, int cols,
                                     const Graph& h, int td_budget,
                                     obs::TraceSink* sink) {
  congest::NetworkConfig base_cfg;
  base_cfg.sink = sink;
  return run_h_freeness_grid(g, rows, cols, h, td_budget, base_cfg);
}

HFreenessOutcome run_h_freeness_grid(const Graph& g, int rows, int cols,
                                     const Graph& h, int td_budget,
                                     const congest::NetworkConfig& base_cfg) {
  const int p = h.num_vertices();
  if (p < 1 || !is_connected(h))
    throw std::invalid_argument("run_h_freeness_grid: H must be connected");
  const LowTdDecomposition decomp = grid_low_td_decomposition(g, rows, cols, p);

  HFreenessOutcome out;
  out.decomposition_rounds = decomp.rounds;
  const mso::FormulaPtr formula = mso::lib::h_free(h);

  // Shared class universe across all runs (Theorem 4.2: computable from
  // (phi, w) alone).
  const mso::FormulaPtr lowered = mso::lower(formula);
  bpt::Engine engine(bpt::config_for(*lowered));

  // Enumerate p-subsets I of the parts (smaller unions are contained in
  // some p-subset union, so |I| = p suffices).
  std::vector<int> subset(std::min(p, decomp.num_parts));
  for (int i = 0; i < static_cast<int>(subset.size()); ++i) subset[i] = i;
  const int k = static_cast<int>(subset.size());
  for (;;) {
    ++out.num_subsets;
    // Union of the chosen parts.
    std::vector<bool> chosen(decomp.num_parts, false);
    for (int i : subset) chosen[i] = true;
    std::vector<VertexId> members;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (chosen[decomp.part[v]]) members.push_back(v);
    if (!members.empty()) {
      const Graph gi = g.induced_subgraph(members);
      // Run the decision on each connected component (the components run
      // in parallel over disjoint vertex sets; rounds = max over them).
      const auto comp = connected_components(gi);
      const int num_comp =
          comp.empty() ? 0 : 1 + *std::max_element(comp.begin(), comp.end());
      for (int c = 0; c < num_comp; ++c) {
        std::vector<VertexId> cm;
        for (VertexId v = 0; v < gi.num_vertices(); ++v)
          if (comp[v] == c) cm.push_back(v);
        if (static_cast<int>(cm.size()) < p) continue;  // cannot contain H
        const Graph gc = gi.induced_subgraph(cm);
        congest::Network net(gc, base_cfg);
        ++out.num_component_runs;
        char span[48];
        std::snprintf(span, sizeof(span), "subset=%d comp=%d",
                      out.num_subsets - 1, c);
        congest::PhaseScope trace_scope(net, span);
        const DecisionOutcome res =
            run_decision(net, formula, td_budget, &engine);
        if (!res.run.ok()) {
          // Degraded component run: stop the sweep, surface the outcome.
          out.run = res.run;
          out.max_run_rounds = std::max(out.max_run_rounds, res.total_rounds());
          out.multiplexed_rounds = out.max_run_rounds * out.num_subsets;
          return out;
        }
        if (res.treedepth_exceeded)
          throw std::logic_error(
              "run_h_freeness_grid: td budget too small for a union "
              "component (raise td_budget)");
        out.max_run_rounds = std::max(out.max_run_rounds, res.total_rounds());
        if (!res.holds) out.h_free = false;
      }
    }
    // next p-subset
    int i = k - 1;
    while (i >= 0 && subset[i] == decomp.num_parts - k + i) --i;
    if (i < 0) break;
    ++subset[i];
    for (int j = i + 1; j < k; ++j) subset[j] = subset[j - 1] + 1;
  }
  out.multiplexed_rounds = out.max_run_rounds * out.num_subsets;
  return out;
}

}  // namespace dmc::dist
