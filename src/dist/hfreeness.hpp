// H-freeness on bounded-expansion classes via low-treedepth decompositions
// (paper Theorem 7.2 + Corollary 7.3).
//
// Substitution note (see DESIGN.md): the generic O(log n)-round
// decomposition of [NesetrilM16] relies on transitive-fraternal
// augmentations whose full machinery is far beyond a reproduction of a
// brief announcement. We implement the decomposition *interface* with a
// provable explicit construction for the grid family used by the
// benchmarks: coloring a vertex at (row, col) with
// (row mod (p+1), col mod (p+1)) gives f(p) = (p+1)^2 parts such that any
// union of at most p parts misses a full row residue and a full column
// residue, hence splits into connected pieces confined to blocks of at
// most p x p vertices — treedepth <= p^2 (validated exactly by the tests).
// Coordinates are local inputs of the nodes (O(1) "rounds"); the paper's
// generic algorithm would spend O(log n) rounds here instead.
//
// Corollary 7.3 pipeline: for every p-subset I of parts, run the
// distributed H-freeness decision (Theorem 6.1) on each connected
// component of G[union of I] in parallel. We report both the max rounds
// over the parallel runs and the pessimistic "multiplexed" bound where all
// (f(p) choose p) runs share every edge's bandwidth.
#pragma once

#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "obs/trace.hpp"

namespace dmc::dist {

struct LowTdDecomposition {
  int p = 0;          // parameter (= |V(H)| for Corollary 7.3)
  int num_parts = 0;  // f(p)
  std::vector<int> part;  // per graph vertex
  long rounds = 0;        // CONGEST cost of computing the partition
};

/// Explicit low-treedepth decomposition for a rows x cols grid-like graph
/// whose vertex v sits at (v / cols, v % cols) (gen::grid / perturbed_grid
/// layout). Requires that every edge stays within one block neighborhood,
/// i.e. joins vertices at coordinate distance <= 1 in each axis (true for
/// grid and perturbed_grid).
LowTdDecomposition grid_low_td_decomposition(const Graph& g, int rows,
                                             int cols, int p);

struct HFreenessOutcome {
  bool h_free = true;
  long decomposition_rounds = 0;
  long max_run_rounds = 0;     // max rounds over the parallel decisions
  long multiplexed_rounds = 0; // max_run_rounds * number of subsets
  int num_subsets = 0;
  int num_component_runs = 0;
  /// Outcome of the first degraded per-component run (kCompleted when all
  /// runs finished cleanly). When !run.ok() the sweep stopped early and
  /// `h_free` is untrusted.
  congest::RunOutcome run;
};

/// Corollary 7.3 on a grid-family network: decides whether g contains h
/// (connected, |V(h)| = p) as a subgraph. `td_budget` is the treedepth
/// budget passed to Algorithm 2 for the per-union runs (the class constant;
/// p^2 always suffices for the grid decomposition, and the exact value for
/// p x p blocks is much smaller).
///
/// `sink` (optional) receives the traces of every per-component decision,
/// each wrapped in a "subset=I comp=C" span. The component networks are
/// independent, so their round indices restart at 0 per run — consume the
/// run_begin markers (or the spans) to tell the runs apart.
HFreenessOutcome run_h_freeness_grid(const Graph& g, int rows, int cols,
                                     const Graph& h, int td_budget,
                                     obs::TraceSink* sink = nullptr);

/// As above, but every per-component network is built from `base_cfg`
/// (id_seed, audit mode, step order, sink, ...) — the entry point the
/// conformance harness (congest/conformance.hpp) drives.
HFreenessOutcome run_h_freeness_grid(const Graph& g, int rows, int cols,
                                     const Graph& h, int td_budget,
                                     const congest::NetworkConfig& base_cfg);

struct HFreenessOptions {
  /// Worker count for the sweep over part-subsets (the (f(p) choose p)
  /// unions are independent decision pipelines). 0 = hardware threads,
  /// 1 = the exact legacy serial sweep. Parallel sweeps give each task a
  /// private copy of the class universe (Theorem 4.2: the universe is a
  /// function of (phi, w) alone, so verdicts are unaffected) and aggregate
  /// results in subset order, so verdicts and reported round counts match
  /// the serial sweep; trace streams do not interleave deterministically,
  /// so the sweep is forced serial whenever base_cfg carries a sink or
  /// audit mode.
  int sweep_threads = 1;
};

/// As above with explicit sweep options.
HFreenessOutcome run_h_freeness_grid(const Graph& g, int rows, int cols,
                                     const Graph& h, int td_budget,
                                     const congest::NetworkConfig& base_cfg,
                                     const HFreenessOptions& opts);

}  // namespace dmc::dist
