#include "dist/local.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmc::dist {

int LocalContext::local_of(VertexId global_id) const {
  auto it = std::lower_bound(globals.begin(), globals.end(), global_id);
  if (it == globals.end() || *it != global_id)
    throw std::invalid_argument("LocalContext: unknown global id");
  return static_cast<int>(it - globals.begin());
}

LocalContext make_local_context(
    const LocalBag& bag, const std::vector<VertexId>& children_global_ids,
    const std::vector<std::string>& vlabel_names,
    const std::vector<std::string>& elabel_names) {
  LocalContext ctx;
  // Local universe: bag members plus children ids, ascending (order-
  // preserving, so ascending local == ascending global).
  ctx.globals = bag.bag;
  for (VertexId c : children_global_ids) ctx.globals.push_back(c);
  std::sort(ctx.globals.begin(), ctx.globals.end());
  ctx.globals.erase(std::unique(ctx.globals.begin(), ctx.globals.end()),
                    ctx.globals.end());
  ctx.graph = Graph(static_cast<int>(ctx.globals.size()));
  // Bag members carry weights and labels.
  for (std::size_t i = 0; i < bag.bag.size(); ++i) {
    const int li = ctx.local_of(bag.bag[i]);
    ctx.bag_local.push_back(li);
    ctx.graph.set_vertex_weight(li, bag.weights[i]);
    for (std::size_t l = 0; l < vlabel_names.size(); ++l)
      if (bag.vlabel_bits[i] & (1u << l))
        ctx.graph.set_vertex_label(vlabel_names[l], li);
  }
  std::sort(ctx.bag_local.begin(), ctx.bag_local.end());
  for (const auto& e : bag.edges) {
    const int a = ctx.local_of(bag.bag[e.i]);
    const int b = ctx.local_of(bag.bag[e.j]);
    const EdgeId id = ctx.graph.add_edge(a, b);
    ctx.graph.set_edge_weight(id, e.weight);
    for (std::size_t l = 0; l < elabel_names.size(); ++l)
      if (e.elabel_bits & (1u << l)) ctx.graph.set_edge_label(elabel_names[l], id);
  }
  // Child bags: B_child = B_self ∪ {child} (canonical decomposition).
  std::vector<std::vector<VertexId>> child_bags;
  for (VertexId c : children_global_ids) {
    std::vector<VertexId> cb = ctx.bag_local;
    cb.push_back(ctx.local_of(c));
    std::sort(cb.begin(), cb.end());
    child_bags.push_back(std::move(cb));
  }
  ctx.plan = bpt::build_node_plan(ctx.graph, ctx.bag_local, child_bags);
  return ctx;
}

}  // namespace dmc::dist
