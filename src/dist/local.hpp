// Per-node local computation context for the bottom-up protocols
// (paper Lemma 4.3 / 4.6: a node needs only its bag, the graph induced by
// the bag, and its children's bags/classes).
//
// Types and gluing matrices are id-free: only the relative order of
// terminals matters, and all protocols order terminals by ascending global
// id. The local context therefore maps the bag (plus the children's ids)
// to dense local indices order-preservingly and compiles the node's plan
// (Eq. 1/2) against a small local graph holding exactly the bag's edges,
// weights and labels.
#pragma once

#include <string>
#include <vector>

#include "bpt/plan.hpp"
#include "dist/bags.hpp"
#include "graph/graph.hpp"

namespace dmc::dist {

struct LocalContext {
  Graph graph;                      // local dense indices
  std::vector<VertexId> globals;    // local index -> global id (ascending)
  std::vector<VertexId> bag_local;  // the bag in local indices (ascending)
  bpt::Plan plan;                   // Input i = i-th child (children order)

  int local_of(VertexId global_id) const;
};

/// Builds the context of one node: `bag` from the bags protocol,
/// `children_global_ids` from the elimination tree (child bag =
/// bag ∪ {child}, Lemma 2.4). Label names fix the bit order used in
/// LocalBag.
LocalContext make_local_context(
    const LocalBag& bag, const std::vector<VertexId>& children_global_ids,
    const std::vector<std::string>& vlabel_names,
    const std::vector<std::string>& elabel_names);

}  // namespace dmc::dist
