#include "dist/optimization.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#include "bpt/plan.hpp"
#include "bpt/tables.hpp"
#include "congest/fragment.hpp"
#include "congest/wire.hpp"
#include "dist/bags.hpp"
#include "dist/child_slots.hpp"
#include "dist/elim_tree.hpp"
#include "dist/local.hpp"
#include "mso/lower.hpp"
#include "par/pool.hpp"

namespace dmc::dist {

namespace {

using congest::Message;
using congest::NodeCtx;

struct TablePayload {
  bpt::OptTable table;
};

struct AssignMsg {
  bpt::TypeId type = bpt::kInvalidType;
};

struct InfeasibleMsg {};

int class_bits(const bpt::Engine& engine) {
  return std::max(
      1, congest::count_bits(static_cast<std::uint64_t>(engine.num_types())));
}

/// Wire codecs (audit mode). Tables declare their *measured* encoding
/// (varuint entry count, then varuint class + zigzag-varint weight per
/// entry), so declared == encoded exactly; the single-field AssignMsg is
/// minimal-width within the declared class_bits upper bound.
[[maybe_unused]] const bool wire_codecs_registered = [] {
  audit::register_codec<TablePayload>(
      "optimization::TablePayload",
      [](const TablePayload& m, const audit::WireContext&,
         audit::BitWriter& w) {
        w.put_varuint(m.table.size());
        for (const auto& [c, wt] : m.table) {
          w.put_varuint(static_cast<std::uint64_t>(c));
          w.put_varint(wt);
        }
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        TablePayload m;
        const std::uint64_t size = r.get_varuint();
        for (std::uint64_t i = 0; i < size; ++i) {
          const auto c = static_cast<bpt::TypeId>(r.get_varuint());
          m.table[c] = r.get_varint();
        }
        return m;
      },
      [](const TablePayload& a, const TablePayload& b) {
        return a.table == b.table;
      });
  audit::register_codec<AssignMsg>(
      "optimization::AssignMsg",
      [](const AssignMsg& m, const audit::WireContext&, audit::BitWriter& w) {
        w.put_uint_min(static_cast<std::uint64_t>(m.type));
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        return AssignMsg{static_cast<bpt::TypeId>(r.get_rest())};
      },
      [](const AssignMsg& a, const AssignMsg& b) { return a.type == b.type; });
  audit::register_codec<InfeasibleMsg>(
      "optimization::InfeasibleMsg",
      [](const InfeasibleMsg&, const audit::WireContext&,
         audit::BitWriter& w) { w.put_bit(true); },
      [](const audit::WireContext&, audit::BitReader& r) {
        r.get_bit();
        return InfeasibleMsg{};
      },
      [](const InfeasibleMsg&, const InfeasibleMsg&) { return true; });
  return true;
}();

long table_bits(const TablePayload& payload, const NodeCtx& ctx) {
  return audit::measured_bits(payload,
                              audit::WireContext{ctx.n(), ctx.bandwidth()});
}

class OptimizationProgram : public congest::NodeProgram {
 public:
  OptimizationProgram(bpt::Engine& engine, bpt::Evaluator* evaluator,
                      LocalContext lctx, VertexId parent_id,
                      std::vector<VertexId> children_ids,
                      OptimizationOutcome* shared)
      : engine_(engine),
        evaluator_(evaluator),
        local_(std::move(lctx)),
        parent_id_(parent_id),
        children_ids_(std::move(children_ids)),
        child_slots_(children_ids_),
        shared_(shared) {
    child_tables_.resize(children_ids_.size());
    have_table_.assign(children_ids_.size(), false);
  }

  bool finished() const { return finished_; }
  bool infeasible() const { return infeasible_; }
  bpt::TypeId my_class() const { return my_class_; }
  const LocalContext& local() const { return local_; }

  void on_round(NodeCtx& ctx) override {
    if (first_round_) {
      first_round_ = false;
      ctx.annotate("tables");
    }
    // Receive children tables (bottom-up) and class assignment (top-down).
    for (int p = 0; p < ctx.degree(); ++p) {
      const VertexId from = ctx.neighbor_id(p);
      if (auto payload = reasm_.poll(ctx, p)) {
        const auto& tp = std::any_cast<const TablePayload&>(*payload);
        const int slot = child_slots_.slot(from);
        if (slot >= 0) {
          child_tables_[slot] = tp.table;
          have_table_[slot] = true;
        }
        continue;
      }
      const auto& msg = ctx.recv(p);
      if (!msg) continue;
      if (const auto* am = std::any_cast<AssignMsg>(&msg->value)) {
        if (from == parent_id_ && !finished_) assign(ctx, am->type);
      } else if (std::any_cast<InfeasibleMsg>(&msg->value) != nullptr) {
        if (!finished_) {
          finished_ = infeasible_ = true;
          broadcast_infeasible(ctx);
        }
      }
    }
    // Bottom-up: solve once all children reported.
    if (!solver_ && std::all_of(have_table_.begin(), have_table_.end(),
                                [](bool b) { return b; })) {
      solver_ = std::make_unique<bpt::OptSolver>(engine_, local_.plan,
                                                 local_.graph, child_tables_);
      const bpt::OptTable& root_table = solver_->root_table();
      par::atomic_fetch_max(shared_->max_table_entries,
                            static_cast<int>(root_table.size()));
      if (parent_id_ < 0) {
        // Root: pick the accepting class of maximum weight.
        bpt::TypeId best = bpt::kInvalidType;
        Weight best_w = 0;
        for (const auto& [t, w] : root_table) {
          if (!evaluator_->eval(t)) continue;
          if (best == bpt::kInvalidType || w > best_w) {
            best = t;
            best_w = w;
          }
        }
        if (best == bpt::kInvalidType) {
          finished_ = infeasible_ = true;
          broadcast_infeasible(ctx);
        } else {
          shared_->best_weight = best_w;
          assign(ctx, best);
        }
      } else {
        TablePayload payload{root_table};
        const long bits = table_bits(payload, ctx);
        sender_.enqueue(ctx.port_of(parent_id_), std::move(payload), bits);
      }
    }
    sender_.pump(ctx);
    // Blocked on children's table chunks or the top-down assignment — both
    // arrive as traffic, which wakes us (sparse scheduler; no-op otherwise).
    if (!finished_ && sender_.idle()) ctx.sleep();
  }

  bool done(const NodeCtx&) const override {
    return finished_ && sender_.idle();
  }

 private:
  /// Top-down step: adopt the class chosen for this subtree, forward the
  /// children's optimal classes (ARGOPT), mark Selected elements.
  void assign(NodeCtx& ctx, bpt::TypeId type) {
    ctx.annotate("assign");
    my_class_ = type;
    finished_ = true;
    const auto sol = solver_->reconstruct(type);
    for (std::size_t i = 0; i < children_ids_.size(); ++i) {
      ctx.send(ctx.port_of(children_ids_[i]),
               Message(AssignMsg{sol.input_choices[i]}, class_bits(engine_)));
    }
  }

  void broadcast_infeasible(NodeCtx& ctx) {
    ctx.annotate("assign");
    for (VertexId child : children_ids_)
      ctx.send(ctx.port_of(child), Message(InfeasibleMsg{}, 1));
  }

  bpt::Engine& engine_;
  bpt::Evaluator* evaluator_;
  LocalContext local_;
  VertexId parent_id_;
  std::vector<VertexId> children_ids_;
  ChildSlots child_slots_;
  OptimizationOutcome* shared_;
  std::vector<bpt::OptTable> child_tables_;
  std::vector<bool> have_table_;
  std::unique_ptr<bpt::OptSolver> solver_;
  congest::FragmentSender sender_;
  congest::FragmentReassembler reasm_;
  bpt::TypeId my_class_ = bpt::kInvalidType;
  bool first_round_ = true;
  bool finished_ = false;
  bool infeasible_ = false;
};

OptimizationOutcome run_solve_impl(congest::Network& net,
                                   const mso::FormulaPtr& formula,
                                   const std::string& var, mso::Sort var_sort,
                                   const ElimTreeResult& tree,
                                   const std::vector<LocalBag>& bags,
                                   Weight sign, bpt::Engine* engine_in) {
  OptimizationOutcome out;
  const std::vector<std::pair<std::string, mso::Sort>> frees{{var, var_sort}};
  const mso::FormulaPtr lowered = mso::lower(formula, frees);
  std::optional<bpt::Engine> own_engine;
  if (engine_in == nullptr) {
    own_engine.emplace(bpt::config_for(*lowered, frees));
    engine_in = &*own_engine;
  }
  bpt::Engine& engine = *engine_in;
  bpt::Evaluator evaluator(engine, lowered, frees);
  if (!tree.success)
    throw std::invalid_argument("run_solve_impl: tree invalid");
  const auto& cfg = engine.config();

  congest::PhaseScope trace_scope(net, sign < 0 ? "minimize" : "maximize");
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  std::vector<OptimizationProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    std::vector<VertexId> children_ids;
    for (int c : tree.children[v]) children_ids.push_back(net.id_of_vertex(c));
    LocalContext lctx = make_local_context(bags[v], children_ids,
                                           cfg.vertex_labels, cfg.edge_labels);
    if (sign < 0) {
      for (VertexId lv = 0; lv < lctx.graph.num_vertices(); ++lv)
        lctx.graph.set_vertex_weight(lv, -lctx.graph.vertex_weight(lv));
      for (EdgeId le = 0; le < lctx.graph.num_edges(); ++le)
        lctx.graph.set_edge_weight(le, -lctx.graph.edge_weight(le));
    }
    auto p = std::make_unique<OptimizationProgram>(
        engine, &evaluator, std::move(lctx),
        tree.parent[v] < 0 ? -1 : net.id_of_vertex(tree.parent[v]),
        std::move(children_ids), &out);
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  {
    // Table payloads declare their *measured* varuint encoding of class-id
    // values, which depend on the interning schedule; the solve phase must
    // therefore run on the exact serial path regardless of --threads.
    congest::Network::SerialSection serial(net);
    out.run = net.run_outcome(programs);
  }
  out.rounds_solve = out.run.rounds;
  out.num_classes = engine.num_types();
  if (!out.run.ok()) return out;  // degraded: solution untrusted
  if (handles[0]->infeasible()) {
    out.best_weight.reset();
    return out;
  }
  if (out.best_weight) out.best_weight = sign * *out.best_weight;

  // Assemble the selected set from per-node markings (Algorithm 1's
  // top-down phase: each node marks itself and its incident bag edges).
  const Graph& g = net.graph();
  out.vertices.assign(g.num_vertices(), false);
  out.edges.assign(g.num_edges(), false);
  for (int v = 0; v < net.n(); ++v) {
    const OptimizationProgram& p = *handles[v];
    const bpt::TypeId c = p.my_class();
    if (c == bpt::kInvalidType) continue;
    const LocalContext& lc = p.local();
    const VertexId self_id = net.id_of_vertex(v);
    if (var_sort == mso::Sort::VertexSet) {
      std::vector<VertexId> bag_globals;
      for (VertexId bl : lc.bag_local) bag_globals.push_back(lc.globals[bl]);
      const auto selected =
          bpt::selected_vertices(engine, c, bag_globals, 0);
      if (std::find(selected.begin(), selected.end(), self_id) !=
          selected.end())
        out.vertices[v] = true;
    } else {
      const auto selected =
          bpt::selected_edges(engine, lc.graph, c, lc.bag_local, 0);
      for (EdgeId le : selected) {
        const Edge& e = lc.graph.edge(le);
        const VertexId ga = lc.globals[e.u], gb = lc.globals[e.v];
        if (ga != self_id && gb != self_id) continue;  // deeper endpoint marks
        const EdgeId global_edge =
            g.edge_id(net.vertex_of_id(ga), net.vertex_of_id(gb));
        if (global_edge < 0)
          throw std::logic_error("run_maximize: bag edge not in host graph");
        out.edges[global_edge] = true;
      }
    }
  }
  return out;
}

OptimizationOutcome run_impl(congest::Network& net,
                             const mso::FormulaPtr& formula,
                             const std::string& var, mso::Sort var_sort, int d,
                             Weight sign, bpt::Engine* engine_in,
                             const ElimTreeOptions& tree_opts) {
  OptimizationOutcome out;
  const std::vector<std::pair<std::string, mso::Sort>> frees{{var, var_sort}};
  const mso::FormulaPtr lowered = mso::lower(formula, frees);
  std::optional<bpt::Engine> own_engine;
  if (engine_in == nullptr) {
    own_engine.emplace(bpt::config_for(*lowered, frees));
    engine_in = &*own_engine;
  }

  const ElimTreeResult tree = run_elim_tree(net, d, tree_opts);
  out.rounds_elim = tree.rounds;
  out.run = tree.run;
  if (!tree.run.ok()) return out;  // degraded: not a treedepth verdict
  if (!tree.success) {
    out.treedepth_exceeded = true;
    return out;
  }
  const auto& cfg = engine_in->config();
  const BagsResult bags =
      run_bags(net, tree, cfg.vertex_labels, cfg.edge_labels);
  out.rounds_bags = bags.rounds;
  out.run = bags.run;
  if (!bags.run.ok()) return out;  // degraded: bags incomplete

  OptimizationOutcome solved = run_solve_impl(net, formula, var, var_sort,
                                              tree, bags.bags, sign, engine_in);
  solved.rounds_elim = out.rounds_elim;
  solved.rounds_bags = out.rounds_bags;
  return solved;
}

}  // namespace

OptimizationOutcome run_maximize(congest::Network& net,
                                 const mso::FormulaPtr& formula,
                                 const std::string& var, mso::Sort var_sort,
                                 int d, bpt::Engine* engine,
                                 const ElimTreeOptions& tree_opts) {
  return run_impl(net, formula, var, var_sort, d, 1, engine, tree_opts);
}

OptimizationOutcome run_minimize(congest::Network& net,
                                 const mso::FormulaPtr& formula,
                                 const std::string& var, mso::Sort var_sort,
                                 int d, bpt::Engine* engine,
                                 const ElimTreeOptions& tree_opts) {
  return run_impl(net, formula, var, var_sort, d, -1, engine, tree_opts);
}

OptimizationOutcome run_maximize_solve(congest::Network& net,
                                       const mso::FormulaPtr& formula,
                                       const std::string& var,
                                       mso::Sort var_sort,
                                       const ElimTreeResult& tree,
                                       const std::vector<LocalBag>& bags,
                                       bpt::Engine* engine) {
  return run_solve_impl(net, formula, var, var_sort, tree, bags, 1, engine);
}

OptimizationOutcome run_minimize_solve(congest::Network& net,
                                       const mso::FormulaPtr& formula,
                                       const std::string& var,
                                       mso::Sort var_sort,
                                       const ElimTreeResult& tree,
                                       const std::vector<LocalBag>& bags,
                                       bpt::Engine* engine) {
  return run_solve_impl(net, formula, var, var_sort, tree, bags, -1, engine);
}

}  // namespace dmc::dist
