// Distributed MSO optimization (paper Theorem 6.1, optimization part).
//
// Bottom-up phase: each node computes its OPT table (Definition 4.5,
// Lemma 4.6) from its children's tables and sends it to its parent as a
// fragmented payload of |C| (class id, weight) entries — |C| rounds of
// O(log n)-bit messages per level, as in the paper's proof.
//
// Top-down phase (Algorithm 1, lines 11-26): the root picks the accepting
// class of maximum weight, every node re-derives its children's optimal
// classes from its local ARGOPT backpointers and forwards them, and each
// node marks itself (and its incident bag edges) according to
// Selected(c_u, B_u).
#pragma once

#include <optional>

#include "bpt/engine.hpp"
#include "congest/network.hpp"
#include "dist/bags.hpp"
#include "dist/elim_tree.hpp"
#include "graph/graph.hpp"
#include "mso/ast.hpp"

namespace dmc::dist {

struct OptimizationOutcome {
  bool treedepth_exceeded = false;
  /// Engaged iff some assignment satisfies the formula.
  std::optional<Weight> best_weight;
  /// The selected set (union of per-node markings), by graph vertex / edge.
  std::vector<bool> vertices;
  std::vector<bool> edges;
  long rounds_elim = 0, rounds_bags = 0, rounds_solve = 0;
  std::size_t num_classes = 0;
  int max_table_entries = 0;  // largest OPT table sent
  /// How the pipeline ended. When !run.ok() every other field is untrusted.
  congest::RunOutcome run;

  long total_rounds() const {
    return rounds_elim + rounds_bags + rounds_solve;
  }
};

/// Solves max phi(S) distributively (free variable `var` of sort
/// `var_sort`, weights from the network's graph). Budget d as in Alg. 2.
/// When `engine` is non-null it is used instead of a fresh one (its config
/// must match `config_for(lower(formula, frees), frees)`); this is how the
/// CLI injects a cache-warmed universe.
OptimizationOutcome run_maximize(congest::Network& net,
                                 const mso::FormulaPtr& formula,
                                 const std::string& var, mso::Sort var_sort,
                                 int d, bpt::Engine* engine = nullptr,
                                 const ElimTreeOptions& tree_opts = {});

/// min phi(S): maximization over negated weights.
OptimizationOutcome run_minimize(congest::Network& net,
                                 const mso::FormulaPtr& formula,
                                 const std::string& var, mso::Sort var_sort,
                                 int d, bpt::Engine* engine = nullptr,
                                 const ElimTreeOptions& tree_opts = {});

/// Solve phase only, over an externally supplied elimination tree and bag
/// set — the churn-engine seam (see dist::run_decision_solve). Unlike the
/// decision/counting seams there is no per-vertex fold cache: Algorithm 1's
/// top-down phase re-derives children's classes from ARGOPT backpointers,
/// which only exist in a freshly built solver, so every node folds each
/// epoch and the incremental saving is the skipped elim/bags prologue.
OptimizationOutcome run_maximize_solve(congest::Network& net,
                                       const mso::FormulaPtr& formula,
                                       const std::string& var,
                                       mso::Sort var_sort,
                                       const ElimTreeResult& tree,
                                       const std::vector<LocalBag>& bags,
                                       bpt::Engine* engine = nullptr);

OptimizationOutcome run_minimize_solve(congest::Network& net,
                                       const mso::FormulaPtr& formula,
                                       const std::string& var,
                                       mso::Sort var_sort,
                                       const ElimTreeResult& tree,
                                       const std::vector<LocalBag>& bags,
                                       bpt::Engine* engine = nullptr);

}  // namespace dmc::dist
