#include "dist/optmarked.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "bpt/tables.hpp"
#include "congest/fragment.hpp"
#include "congest/wire.hpp"
#include "dist/bags.hpp"
#include "dist/child_slots.hpp"
#include "dist/elim_tree.hpp"
#include "dist/local.hpp"
#include "mso/lower.hpp"

namespace dmc::dist {

namespace {

using congest::Message;
using congest::NodeCtx;

constexpr const char* kMarkLabel = "marked";

struct UpPayload {
  bpt::OptTable opt;
  bpt::TypeId marked_class = bpt::kInvalidType;
  Weight marked_weight = 0;
};

struct VerdictMsg {
  bool satisfies = false;
  bool is_optimal = false;
};

/// Wire codecs (audit mode). UpPayload declares its *measured* encoding:
/// the OPT table (varuint entry count, varuint class + zigzag-varint
/// weight per entry) followed by the marked class as a zigzag varint
/// (kInvalidType is -1) and the marked weight as a zigzag varint.
[[maybe_unused]] const bool wire_codecs_registered = [] {
  audit::register_codec<UpPayload>(
      "optmarked::UpPayload",
      [](const UpPayload& m, const audit::WireContext&, audit::BitWriter& w) {
        w.put_varuint(m.opt.size());
        for (const auto& [c, wt] : m.opt) {
          w.put_varuint(static_cast<std::uint64_t>(c));
          w.put_varint(wt);
        }
        w.put_varint(m.marked_class);
        w.put_varint(m.marked_weight);
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        UpPayload m;
        const std::uint64_t size = r.get_varuint();
        for (std::uint64_t i = 0; i < size; ++i) {
          const auto c = static_cast<bpt::TypeId>(r.get_varuint());
          m.opt[c] = r.get_varint();
        }
        m.marked_class = static_cast<bpt::TypeId>(r.get_varint());
        m.marked_weight = r.get_varint();
        return m;
      },
      [](const UpPayload& a, const UpPayload& b) {
        return a.opt == b.opt && a.marked_class == b.marked_class &&
               a.marked_weight == b.marked_weight;
      });
  audit::register_codec<VerdictMsg>(
      "optmarked::VerdictMsg",
      [](const VerdictMsg& m, const audit::WireContext&, audit::BitWriter& w) {
        w.put_bit(m.satisfies);
        w.put_bit(m.is_optimal);
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        VerdictMsg m;
        m.satisfies = r.get_bit();
        m.is_optimal = r.get_bit();
        return m;
      },
      [](const VerdictMsg& a, const VerdictMsg& b) {
        return a.satisfies == b.satisfies && a.is_optimal == b.is_optimal;
      });
  return true;
}();

long payload_bits(const UpPayload& p, const NodeCtx& ctx) {
  return audit::measured_bits(p,
                              audit::WireContext{ctx.n(), ctx.bandwidth()});
}

class OptMarkedProgram : public congest::NodeProgram {
 public:
  OptMarkedProgram(bpt::Engine& engine, bpt::Evaluator* evaluator,
                   LocalContext lctx, VertexId parent_id,
                   std::vector<VertexId> children_ids, bool vertex_sort,
                   OptMarkedOutcome* shared)
      : engine_(engine),
        evaluator_(evaluator),
        local_(std::move(lctx)),
        parent_id_(parent_id),
        children_ids_(std::move(children_ids)),
        child_slots_(children_ids_),
        vertex_sort_(vertex_sort),
        shared_(shared) {
    child_payloads_.resize(children_ids_.size());
    have_payload_.assign(children_ids_.size(), false);
  }

  bool finished() const { return finished_; }
  bool satisfies() const { return satisfies_; }
  bool is_optimal() const { return is_optimal_; }

  void on_round(NodeCtx& ctx) override {
    if (first_round_) {
      first_round_ = false;
      ctx.annotate("tables");
    }
    for (int p = 0; p < ctx.degree(); ++p) {
      const VertexId from = ctx.neighbor_id(p);
      if (auto payload = reasm_.poll(ctx, p)) {
        const auto& up = std::any_cast<const UpPayload&>(*payload);
        const int slot = child_slots_.slot(from);
        if (slot >= 0) {
          child_payloads_[slot] = up;
          have_payload_[slot] = true;
        }
        continue;
      }
      const auto& msg = ctx.recv(p);
      if (!msg) continue;
      if (const auto* vm = std::any_cast<VerdictMsg>(&msg->value)) {
        if (from == parent_id_ && !finished_) {
          satisfies_ = vm->satisfies;
          is_optimal_ = vm->is_optimal;
          finished_ = true;
          forward_verdict(ctx);
        }
      }
    }
    if (!solved_ && std::all_of(have_payload_.begin(), have_payload_.end(),
                                [](bool b) { return b; })) {
      solved_ = true;
      UpPayload mine = solve_local();
      if (parent_id_ < 0) {
        // Root decision per Section 6 of the paper.
        bpt::TypeId best = bpt::kInvalidType;
        Weight best_w = 0;
        for (const auto& [t, w] : mine.opt) {
          if (!evaluator_->eval(t)) continue;
          if (best == bpt::kInvalidType || w > best_w) {
            best = t;
            best_w = w;
          }
        }
        satisfies_ = mine.marked_class != bpt::kInvalidType &&
                     evaluator_->eval(mine.marked_class);
        is_optimal_ = satisfies_ && best != bpt::kInvalidType &&
                      mine.marked_weight == best_w;
        shared_->marked_weight = mine.marked_weight;
        shared_->best_weight = best == bpt::kInvalidType ? 0 : best_w;
        finished_ = true;
        forward_verdict(ctx);
      } else {
        const long bits = payload_bits(mine, ctx);
        sender_.enqueue(ctx.port_of(parent_id_), std::move(mine), bits);
      }
    }
    sender_.pump(ctx);
    // Blocked on children's payload chunks or the parent's verdict — both
    // arrive as traffic, which wakes us (sparse scheduler; no-op otherwise).
    if (!finished_ && sender_.idle()) ctx.sleep();
  }

  bool done(const NodeCtx&) const override {
    return finished_ && sender_.idle();
  }

 private:
  UpPayload solve_local() {
    UpPayload mine;
    // 1. OPT table.
    std::vector<bpt::OptTable> opt_inputs;
    for (const auto& cp : child_payloads_) opt_inputs.push_back(cp.opt);
    bpt::OptSolver solver(engine_, local_.plan, local_.graph,
                          std::move(opt_inputs));
    mine.opt = solver.root_table();
    // 2. Class of the marked assignment.
    std::vector<bool> vin(local_.graph.num_vertices(), false);
    std::vector<bool> ein(local_.graph.num_edges(), false);
    for (VertexId lv = 0; lv < local_.graph.num_vertices(); ++lv)
      vin[lv] = local_.graph.vertex_has_label(kMarkLabel, lv);
    for (EdgeId le = 0; le < local_.graph.num_edges(); ++le)
      ein[le] = local_.graph.edge_has_label(kMarkLabel, le);
    std::vector<bpt::TypeId> class_inputs;
    for (const auto& cp : child_payloads_)
      class_inputs.push_back(cp.marked_class);
    mine.marked_class = bpt::fold_assigned_type(
        engine_, local_.plan, local_.graph, vin, ein, class_inputs);
    // 3. Marked weight: children sums + own contribution (self vertex /
    // bag edges incident to self — each edge is counted at its deeper
    // endpoint, which is the unique bag member adjacent to it from below).
    mine.marked_weight = 0;
    for (const auto& cp : child_payloads_)
      mine.marked_weight += cp.marked_weight;
    const int self_local = local_.local_of(self_global_id_);
    if (vertex_sort_) {
      if (vin[self_local])
        mine.marked_weight += local_.graph.vertex_weight(self_local);
    } else {
      for (auto [w, e] : local_.graph.incident(self_local))
        if (ein[e]) mine.marked_weight += local_.graph.edge_weight(e);
    }
    return mine;
  }

  void forward_verdict(NodeCtx& ctx) {
    ctx.annotate("verdict");
    for (VertexId child : children_ids_)
      ctx.send(ctx.port_of(child), Message(VerdictMsg{satisfies_, is_optimal_}, 2));
  }

 public:
  VertexId self_global_id_ = -1;  // set by the harness before the run

 private:
  bpt::Engine& engine_;
  bpt::Evaluator* evaluator_;
  LocalContext local_;
  VertexId parent_id_;
  std::vector<VertexId> children_ids_;
  ChildSlots child_slots_;
  bool vertex_sort_;
  OptMarkedOutcome* shared_;
  std::vector<UpPayload> child_payloads_;
  std::vector<bool> have_payload_;
  congest::FragmentSender sender_;
  congest::FragmentReassembler reasm_;
  bool first_round_ = true;
  bool solved_ = false;
  bool finished_ = false;
  bool satisfies_ = false;
  bool is_optimal_ = false;
};

}  // namespace

std::pair<std::vector<std::string>, std::vector<std::string>>
optmarked_labels(const mso::FormulaPtr& formula, const std::string& var,
                 mso::Sort var_sort) {
  const std::vector<std::pair<std::string, mso::Sort>> frees{{var, var_sort}};
  const mso::FormulaPtr lowered = mso::lower(formula, frees);
  const bpt::EngineConfig cfg = bpt::config_for(*lowered, frees);
  auto vlabels = cfg.vertex_labels;
  auto elabels = cfg.edge_labels;
  if (var_sort == mso::Sort::VertexSet)
    vlabels.push_back(kMarkLabel);
  else
    elabels.push_back(kMarkLabel);
  return {std::move(vlabels), std::move(elabels)};
}

OptMarkedOutcome run_optmarked_solve(congest::Network& net,
                                     const mso::FormulaPtr& formula,
                                     const std::string& var, mso::Sort var_sort,
                                     const ElimTreeResult& tree,
                                     const std::vector<LocalBag>& bags,
                                     bool minimize) {
  OptMarkedOutcome out;
  const std::vector<std::pair<std::string, mso::Sort>> frees{{var, var_sort}};
  const mso::FormulaPtr lowered = mso::lower(formula, frees);
  bpt::Engine engine(bpt::config_for(*lowered, frees));
  bpt::Evaluator evaluator(engine, lowered, frees);
  if (!tree.success)
    throw std::invalid_argument("run_optmarked_solve: tree invalid");
  // Bag payloads additionally carry the "marked" label.
  auto vlabels = engine.config().vertex_labels;
  auto elabels = engine.config().edge_labels;
  if (var_sort == mso::Sort::VertexSet)
    vlabels.push_back(kMarkLabel);
  else
    elabels.push_back(kMarkLabel);

  congest::PhaseScope trace_scope(net, "optmarked");
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  std::vector<OptMarkedProgram*> handles;
  for (int v = 0; v < net.n(); ++v) {
    std::vector<VertexId> children_ids;
    for (int c : tree.children[v]) children_ids.push_back(net.id_of_vertex(c));
    LocalContext lctx =
        make_local_context(bags[v], children_ids, vlabels, elabels);
    if (minimize) {
      for (VertexId lv = 0; lv < lctx.graph.num_vertices(); ++lv)
        lctx.graph.set_vertex_weight(lv, -lctx.graph.vertex_weight(lv));
      for (EdgeId le = 0; le < lctx.graph.num_edges(); ++le)
        lctx.graph.set_edge_weight(le, -lctx.graph.edge_weight(le));
    }
    auto p = std::make_unique<OptMarkedProgram>(
        engine, &evaluator, std::move(lctx),
        tree.parent[v] < 0 ? -1 : net.id_of_vertex(tree.parent[v]),
        std::move(children_ids), var_sort == mso::Sort::VertexSet, &out);
    p->self_global_id_ = net.id_of_vertex(v);
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  {
    // UpPayloads declare their measured varuint encoding of class-id
    // values, which depend on the interning schedule; keep the solve phase
    // on the exact serial path regardless of --threads.
    congest::Network::SerialSection serial(net);
    out.run = net.run_outcome(programs);
  }
  out.rounds_solve = out.run.rounds;
  out.num_classes = engine.num_types();
  if (!out.run.ok()) return out;  // degraded: verdict untrusted
  out.satisfies = handles[0]->satisfies();
  out.is_optimal = handles[0]->is_optimal();
  if (minimize) {
    out.marked_weight = -out.marked_weight;
    out.best_weight = -out.best_weight;
  }
  return out;
}

OptMarkedOutcome run_optmarked(congest::Network& net,
                               const mso::FormulaPtr& formula,
                               const std::string& var, mso::Sort var_sort,
                               int d, bool minimize,
                               const ElimTreeOptions& tree_opts) {
  OptMarkedOutcome out;
  const ElimTreeResult tree = run_elim_tree(net, d, tree_opts);
  out.rounds_elim = tree.rounds;
  out.run = tree.run;
  if (!tree.run.ok()) return out;  // degraded: not a treedepth verdict
  if (!tree.success) {
    out.treedepth_exceeded = true;
    return out;
  }
  const auto [vlabels, elabels] = optmarked_labels(formula, var, var_sort);
  const BagsResult bags = run_bags(net, tree, vlabels, elabels);
  out.rounds_bags = bags.rounds;
  out.run = bags.run;
  if (!bags.run.ok()) return out;  // degraded: bags incomplete

  OptMarkedOutcome solved = run_optmarked_solve(net, formula, var, var_sort,
                                                tree, bags.bags, minimize);
  solved.rounds_elim = out.rounds_elim;
  solved.rounds_bags = out.rounds_bags;
  return solved;
}

}  // namespace dmc::dist
