// Distributed verification that a marked set is an optimal solution
// (paper Section 6, problem "optmarked phi").
//
// The marked set is given as the unary label "marked" on the network's
// vertices (vertex-set problems) or edges (edge-set problems). Following
// the paper, the bottom-up phase computes, at every node, three quantities
// from its children's values:
//   1. the OPT table for phi(S) (the optimization protocol's payload);
//   2. the homomorphism class of (G_u, Mark ∩ V(G_u)) — this replaces the
//      paper's closed formula psi = phi[S := Mark] without transforming
//      the formula;
//   3. the total weight of the marked elements in the subtree.
// The root accepts iff the marked class is accepting and the marked weight
// equals the optimum over accepting classes; the verdict is broadcast.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "congest/network.hpp"
#include "dist/bags.hpp"
#include "dist/elim_tree.hpp"
#include "graph/graph.hpp"
#include "mso/ast.hpp"

namespace dmc::dist {

struct OptMarkedOutcome {
  bool treedepth_exceeded = false;
  bool satisfies = false;   // the marked set satisfies phi
  bool is_optimal = false;  // ... and has optimal weight
  Weight marked_weight = 0;
  Weight best_weight = 0;   // optimum over accepting classes (if any)
  long rounds_elim = 0, rounds_bags = 0, rounds_solve = 0;
  std::size_t num_classes = 0;
  /// How the pipeline ended. When !run.ok() every other field is untrusted.
  congest::RunOutcome run;

  long total_rounds() const { return rounds_elim + rounds_bags + rounds_solve; }
};

/// Verifies that the "marked" label is a *maximum*-weight solution of
/// phi(S). For minimum problems pass minimize=true.
OptMarkedOutcome run_optmarked(congest::Network& net,
                               const mso::FormulaPtr& formula,
                               const std::string& var, mso::Sort var_sort,
                               int d, bool minimize = false,
                               const ElimTreeOptions& tree_opts = {});

/// Label sets the optmarked bags must carry: the engine config's labels
/// plus the "marked" mark label on the solved sort. The churn engine uses
/// this to build bags coordinator-side before calling the solve seam.
std::pair<std::vector<std::string>, std::vector<std::string>>
optmarked_labels(const mso::FormulaPtr& formula, const std::string& var,
                 mso::Sort var_sort);

/// Solve phase only, over an externally supplied elimination tree and bag
/// set (which must carry the labels from optmarked_labels) — the
/// churn-engine seam (see dist::run_decision_solve). Like the optimization
/// seam there is no fold cache: the marked-class fold and OPT solver run
/// fresh each epoch; the saving is the skipped elim/bags prologue.
OptMarkedOutcome run_optmarked_solve(congest::Network& net,
                                     const mso::FormulaPtr& formula,
                                     const std::string& var,
                                     mso::Sort var_sort,
                                     const dist::ElimTreeResult& tree,
                                     const std::vector<LocalBag>& bags,
                                     bool minimize = false);

}  // namespace dmc::dist
