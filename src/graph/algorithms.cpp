#include "graph/algorithms.hpp"

#include <algorithm>
#include <optional>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace dmc {

std::vector<int> bfs_distances(const Graph& g, VertexId source) {
  std::vector<int> dist(g.num_vertices(), -1);
  std::queue<VertexId> q;
  dist.at(source) = 0;
  q.push(source);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (auto [w, e] : g.incident(v)) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

std::vector<int> connected_components(const Graph& g) {
  std::vector<int> comp(g.num_vertices(), -1);
  int next = 0;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    if (comp[s] >= 0) continue;
    comp[s] = next;
    std::queue<VertexId> q;
    q.push(s);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (auto [w, e] : g.incident(v)) {
        if (comp[w] < 0) {
          comp[w] = next;
          q.push(w);
        }
      }
    }
    ++next;
  }
  return comp;
}

int num_connected_components(const Graph& g) {
  const auto comp = connected_components(g);
  return comp.empty() ? 0 : 1 + *std::max_element(comp.begin(), comp.end());
}

bool is_connected(const Graph& g) {
  return g.num_vertices() <= 1 || num_connected_components(g) == 1;
}

int diameter(const Graph& g) {
  if (g.num_vertices() <= 1) return 0;
  int diam = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (int d : dist) {
      if (d < 0) throw std::invalid_argument("diameter: graph disconnected");
      diam = std::max(diam, d);
    }
  }
  return diam;
}

bool is_acyclic(const Graph& g) {
  // A forest has exactly n - (#components) edges.
  return g.num_edges() == g.num_vertices() - num_connected_components(g);
}

std::pair<std::vector<VertexId>, int> degeneracy_order(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> deg(n);
  std::vector<bool> removed(n, false);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.degree(v);
  std::vector<VertexId> order;
  order.reserve(n);
  int degeneracy = 0;
  // O(n^2) selection is fine at our scales.
  for (int step = 0; step < n; ++step) {
    VertexId best = -1;
    for (VertexId v = 0; v < n; ++v)
      if (!removed[v] && (best < 0 || deg[v] < deg[best])) best = v;
    degeneracy = std::max(degeneracy, deg[best]);
    removed[best] = true;
    order.push_back(best);
    for (auto [w, e] : g.incident(best))
      if (!removed[w]) --deg[w];
  }
  return {order, degeneracy};
}

std::vector<int> greedy_coloring(const Graph& g,
                                 const std::vector<VertexId>& order) {
  std::vector<int> color(g.num_vertices(), -1);
  for (VertexId v : order) {
    std::vector<bool> used(g.degree(v) + 1, false);
    for (auto [w, e] : g.incident(v))
      if (color[w] >= 0 && color[w] <= g.degree(v)) used[color[w]] = true;
    int c = 0;
    while (used[c]) ++c;
    color[v] = c;
  }
  return color;
}

namespace {
struct UnionFind {
  explicit UnionFind(int n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent[a] = b;
    return true;
  }
  std::vector<int> parent;
};
}  // namespace

std::vector<EdgeId> kruskal_mst(const Graph& g) {
  if (!is_connected(g)) throw std::invalid_argument("kruskal: disconnected");
  std::vector<EdgeId> ids(g.num_edges());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](EdgeId a, EdgeId b) {
    return g.edge_weight(a) < g.edge_weight(b);
  });
  UnionFind uf(g.num_vertices());
  std::vector<EdgeId> tree;
  for (EdgeId e : ids)
    if (uf.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
  return tree;
}

bool is_bipartite(const Graph& g) {
  std::vector<int> color(g.num_vertices(), -1);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    if (color[s] >= 0) continue;
    color[s] = 0;
    std::queue<VertexId> q;
    q.push(s);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (auto [w, e] : g.incident(v)) {
        if (color[w] < 0) {
          color[w] = 1 - color[v];
          q.push(w);
        } else if (color[w] == color[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::optional<int> girth(const Graph& g) {
  // BFS from every vertex; a non-tree edge closing at depths (d1, d2) gives
  // a cycle of length d1 + d2 + 1 through the root.
  int best = -1;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    std::vector<int> dist(g.num_vertices(), -1);
    std::vector<VertexId> parent(g.num_vertices(), -1);
    std::queue<VertexId> q;
    dist[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (auto [w, e] : g.incident(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          parent[w] = v;
          q.push(w);
        } else if (w != parent[v]) {
          const int cycle = dist[v] + dist[w] + 1;
          if (best < 0 || cycle < best) best = cycle;
        }
      }
    }
  }
  return best < 0 ? std::nullopt : std::optional<int>(best);
}

std::vector<int> core_numbers(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> deg(n), core(n, 0);
  std::vector<bool> removed(n, false);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.degree(v);
  int current = 0;
  for (int step = 0; step < n; ++step) {
    VertexId best = -1;
    for (VertexId v = 0; v < n; ++v)
      if (!removed[v] && (best < 0 || deg[v] < deg[best])) best = v;
    current = std::max(current, deg[best]);
    core[best] = current;
    removed[best] = true;
    for (auto [w, e] : g.incident(best))
      if (!removed[w]) --deg[w];
  }
  return core;
}

Weight total_edge_weight(const Graph& g, const std::vector<EdgeId>& edges) {
  Weight sum = 0;
  for (EdgeId e : edges) sum += g.edge_weight(e);
  return sum;
}

bool is_spanning_tree(const Graph& g, const std::vector<EdgeId>& tree_edges) {
  if (static_cast<int>(tree_edges.size()) != g.num_vertices() - 1) return false;
  UnionFind uf(g.num_vertices());
  for (EdgeId e : tree_edges)
    if (!uf.unite(g.edge(e).u, g.edge(e).v)) return false;
  return true;
}

}  // namespace dmc
