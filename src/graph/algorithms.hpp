// Basic polynomial-time graph algorithms shared by the library.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace dmc {

/// BFS distances from `source`; -1 for unreachable vertices.
std::vector<int> bfs_distances(const Graph& g, VertexId source);

/// Component id (0-based, by order of discovery) for every vertex.
std::vector<int> connected_components(const Graph& g);

int num_connected_components(const Graph& g);
bool is_connected(const Graph& g);

/// Exact diameter (max eccentricity); 0 for n<=1; throws if disconnected.
int diameter(const Graph& g);

/// True iff the graph contains no cycle.
bool is_acyclic(const Graph& g);

/// Degeneracy peeling order: returns (order, degeneracy). Vertices listed in
/// removal order; each vertex has at most `degeneracy` neighbors later in
/// the order.
std::pair<std::vector<VertexId>, int> degeneracy_order(const Graph& g);

/// Greedy coloring along the given vertex order; returns color per vertex.
std::vector<int> greedy_coloring(const Graph& g,
                                 const std::vector<VertexId>& order);

/// Minimum-weight spanning tree edge ids (Kruskal). Requires connectivity.
std::vector<EdgeId> kruskal_mst(const Graph& g);

/// Total weight of a set of edges.
Weight total_edge_weight(const Graph& g, const std::vector<EdgeId>& edges);

/// Checks that `tree_edges` form a spanning tree of g.
bool is_spanning_tree(const Graph& g, const std::vector<EdgeId>& tree_edges);

/// True iff g has no odd cycle.
bool is_bipartite(const Graph& g);

/// Length of a shortest cycle; nullopt for forests.
std::optional<int> girth(const Graph& g);

/// Core number of every vertex (largest k such that the vertex survives in
/// the k-core); max entry equals the degeneracy.
std::vector<int> core_numbers(const Graph& g);

}  // namespace dmc
