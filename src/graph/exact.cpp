#include "graph/exact.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace dmc::exact {

namespace {

/// Backtracking embedding of h into g. `induced` demands non-edges map to
/// non-edges. Assignment maps h-vertices (in order 0..) to distinct
/// g-vertices.
bool embed(const Graph& g, const Graph& h, std::vector<VertexId>& assign,
           std::vector<bool>& used, int next, bool induced) {
  if (next == h.num_vertices()) return true;
  for (VertexId cand = 0; cand < g.num_vertices(); ++cand) {
    if (used[cand]) continue;
    bool ok = true;
    for (int prev = 0; prev < next && ok; ++prev) {
      const bool he = h.has_edge(prev, next);
      const bool ge = g.has_edge(assign[prev], cand);
      if (he && !ge) ok = false;
      if (induced && !he && ge) ok = false;
    }
    if (!ok) continue;
    assign[next] = cand;
    used[cand] = true;
    if (embed(g, h, assign, used, next + 1, induced)) return true;
    used[cand] = false;
  }
  return false;
}

bool contains(const Graph& g, const Graph& h, bool induced) {
  if (h.num_vertices() > g.num_vertices()) return false;
  std::vector<VertexId> assign(h.num_vertices(), -1);
  std::vector<bool> used(g.num_vertices(), false);
  return embed(g, h, assign, used, 0, induced);
}

void check_size(const Graph& g, int limit = 30) {
  if (g.num_vertices() > limit)
    throw std::invalid_argument("exact oracle: graph too large");
}

}  // namespace

bool contains_subgraph(const Graph& g, const Graph& h) {
  return contains(g, h, /*induced=*/false);
}

bool contains_induced_subgraph(const Graph& g, const Graph& h) {
  return contains(g, h, /*induced=*/true);
}

std::uint64_t count_triangles(const Graph& g) {
  std::uint64_t count = 0;
  const int n = g.num_vertices();
  for (VertexId a = 0; a < n; ++a)
    for (VertexId b = a + 1; b < n; ++b) {
      if (!g.has_edge(a, b)) continue;
      for (VertexId c = b + 1; c < n; ++c)
        if (g.has_edge(a, c) && g.has_edge(b, c)) ++count;
    }
  return count;
}

Weight max_weight_independent_set(const Graph& g) {
  check_size(g);
  const int n = g.num_vertices();
  std::vector<std::uint64_t> nbr(n, 0);
  for (const Edge& e : g.edges()) {
    nbr[e.u] |= 1ull << e.v;
    nbr[e.v] |= 1ull << e.u;
  }
  Weight best = std::numeric_limits<Weight>::min();
  // Recursive branch on highest remaining vertex.
  struct Rec {
    const Graph& g;
    const std::vector<std::uint64_t>& nbr;
    Weight best = std::numeric_limits<Weight>::min();
    void go(int v, std::uint64_t chosen, Weight w) {
      if (v < 0) {
        best = std::max(best, w);
        return;
      }
      // skip v
      go(v - 1, chosen, w);
      // take v if independent from chosen
      if ((nbr[v] & chosen) == 0)
        go(v - 1, chosen | (1ull << v), w + g.vertex_weight(v));
    }
  } rec{g, nbr};
  rec.go(n - 1, 0, 0);
  best = rec.best;
  return best;
}

Weight min_weight_vertex_cover(const Graph& g) {
  check_size(g);
  const int n = g.num_vertices();
  Weight best = std::numeric_limits<Weight>::max();
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    bool covers = true;
    for (const Edge& e : g.edges())
      if (!((mask >> e.u) & 1) && !((mask >> e.v) & 1)) {
        covers = false;
        break;
      }
    if (!covers) continue;
    Weight w = 0;
    for (int v = 0; v < n; ++v)
      if ((mask >> v) & 1) w += g.vertex_weight(v);
    best = std::min(best, w);
  }
  return best;
}

Weight min_weight_dominating_set(const Graph& g) {
  check_size(g, 24);
  const int n = g.num_vertices();
  std::vector<std::uint64_t> closed(n);
  for (int v = 0; v < n; ++v) {
    closed[v] = 1ull << v;
    for (auto [w, e] : g.incident(v)) closed[v] |= 1ull << w;
  }
  const std::uint64_t all = n == 64 ? ~0ull : (1ull << n) - 1;
  Weight best = std::numeric_limits<Weight>::max();
  for (std::uint64_t mask = 0; mask <= all; ++mask) {
    std::uint64_t dom = 0;
    Weight w = 0;
    for (int v = 0; v < n; ++v)
      if ((mask >> v) & 1) {
        dom |= closed[v];
        w += g.vertex_weight(v);
      }
    if (dom == all) best = std::min(best, w);
  }
  return best;
}

namespace {
bool color_rec(const Graph& g, std::vector<int>& color, int v, int k) {
  if (v == g.num_vertices()) return true;
  for (int c = 0; c < k; ++c) {
    bool ok = true;
    for (auto [w, e] : g.incident(v))
      if (color[w] == c) {
        ok = false;
        break;
      }
    if (!ok) continue;
    color[v] = c;
    if (color_rec(g, color, v + 1, k)) return true;
    color[v] = -1;
  }
  return false;
}
}  // namespace

bool is_k_colorable(const Graph& g, int k) {
  if (k < 0) throw std::invalid_argument("is_k_colorable: negative k");
  if (g.num_vertices() == 0) return true;
  if (k == 0) return false;
  std::vector<int> color(g.num_vertices(), -1);
  return color_rec(g, color, 0, k);
}

int chromatic_number(const Graph& g) {
  for (int k = 0;; ++k)
    if (is_k_colorable(g, k)) return k;
}

std::uint64_t count_independent_sets(const Graph& g) {
  check_size(g);
  const int n = g.num_vertices();
  std::vector<std::uint64_t> nbr(n, 0);
  for (const Edge& e : g.edges()) {
    nbr[e.u] |= 1ull << e.v;
    nbr[e.v] |= 1ull << e.u;
  }
  std::uint64_t count = 0;
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    bool ok = true;
    for (int v = 0; v < n && ok; ++v)
      if (((mask >> v) & 1) && (nbr[v] & mask)) ok = false;
    if (ok) ++count;
  }
  return count;
}

std::uint64_t count_perfect_matchings(const Graph& g) {
  const int n = g.num_vertices();
  if (n % 2 != 0) return 0;
  check_size(g, 24);
  // Recurse on the lowest unmatched vertex.
  struct Rec {
    const Graph& g;
    std::vector<bool> matched;
    std::uint64_t count = 0;
    void go() {
      int v = -1;
      for (int i = 0; i < g.num_vertices(); ++i)
        if (!matched[i]) {
          v = i;
          break;
        }
      if (v < 0) {
        ++count;
        return;
      }
      matched[v] = true;
      for (auto [w, e] : g.incident(v)) {
        if (matched[w]) continue;
        matched[w] = true;
        go();
        matched[w] = false;
      }
      matched[v] = false;
    }
  } rec{g, std::vector<bool>(n, false)};
  rec.go();
  return rec.count;
}

Weight min_weight_spanning_tree(const Graph& g) {
  return total_edge_weight(g, kruskal_mst(g));
}

}  // namespace dmc::exact
