// Exact (exponential-time) combinatorial oracles.
//
// These are the independent ground truths the test suite and benchmarks use
// to validate the MSO engine and the distributed protocols. They are written
// for clarity and correctness, not speed; intended for n up to ~25.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace dmc::exact {

/// Does g contain h as a (not necessarily induced) subgraph?
bool contains_subgraph(const Graph& g, const Graph& h);

/// Does g contain h as an induced subgraph?
bool contains_induced_subgraph(const Graph& g, const Graph& h);

std::uint64_t count_triangles(const Graph& g);

/// Max total vertex weight of an independent set (weights may be negative;
/// the empty set is allowed, so the result is >= 0 only if weights allow).
Weight max_weight_independent_set(const Graph& g);

/// Min total vertex weight of a vertex cover.
Weight min_weight_vertex_cover(const Graph& g);

/// Min total vertex weight of a dominating set; nullopt if none exists
/// (cannot happen for nonempty graphs: V dominates).
Weight min_weight_dominating_set(const Graph& g);

bool is_k_colorable(const Graph& g, int k);
int chromatic_number(const Graph& g);

/// Number of independent sets (including the empty set).
std::uint64_t count_independent_sets(const Graph& g);

/// Number of perfect matchings.
std::uint64_t count_perfect_matchings(const Graph& g);

/// Min total edge weight of a spanning tree; requires connectivity.
Weight min_weight_spanning_tree(const Graph& g);

}  // namespace dmc::exact
