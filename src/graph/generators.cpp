#include "graph/generators.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dmc::gen {

Graph path(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle(int n) {
  if (n < 3) throw std::invalid_argument("cycle: need n >= 3");
  Graph g = path(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph clique(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) g.add_edge(i, j);
  return g;
}

Graph star(int leaves) {
  Graph g(leaves + 1);
  for (int i = 1; i <= leaves; ++i) g.add_edge(0, i);
  return g;
}

Graph complete_bipartite(int a, int b) {
  Graph g(a + b);
  for (int i = 0; i < a; ++i)
    for (int j = 0; j < b; ++j) g.add_edge(i, a + j);
  return g;
}

Graph grid(int rows, int cols) {
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  return g;
}

Graph binary_tree(int levels) {
  if (levels < 1) throw std::invalid_argument("binary_tree: need levels >= 1");
  const int n = (1 << levels) - 1;
  Graph g(n);
  for (int i = 1; i < n; ++i) g.add_edge(i, (i - 1) / 2);
  return g;
}

Graph caterpillar(int spine, int legs) {
  Graph g = path(spine);
  for (int i = 0; i < spine; ++i) {
    const VertexId first = g.add_vertices(legs);
    for (int j = 0; j < legs; ++j) g.add_edge(i, first + j);
  }
  return g;
}

Graph star_of_cliques(int k, int size) {
  Graph g(1);
  for (int i = 0; i < k; ++i) {
    const VertexId first = g.add_vertices(size);
    for (int a = 0; a < size; ++a) {
      for (int b = a + 1; b < size; ++b) g.add_edge(first + a, first + b);
    }
    g.add_edge(0, first);
  }
  return g;
}

Graph wheel(int rim) {
  if (rim < 3) throw std::invalid_argument("wheel: need rim >= 3");
  Graph g = cycle(rim);
  const VertexId hub = g.add_vertices(1);
  for (int i = 0; i < rim; ++i) g.add_edge(hub, i);
  return g;
}

Graph kary_tree(int arity, int levels) {
  if (arity < 1 || levels < 1)
    throw std::invalid_argument("kary_tree: need arity, levels >= 1");
  Graph g(1);
  std::vector<VertexId> frontier{0};
  for (int level = 1; level < levels; ++level) {
    std::vector<VertexId> next;
    for (VertexId parent : frontier) {
      const VertexId first = g.add_vertices(arity);
      for (int c = 0; c < arity; ++c) {
        g.add_edge(parent, first + c);
        next.push_back(first + c);
      }
    }
    frontier = std::move(next);
  }
  return g;
}

Graph spider(int d, int width) {
  if (d < 2 || width < 1)
    throw std::invalid_argument("spider: need d >= 2, width >= 1");
  const long long leg_len = (1LL << (d - 1)) - 1;
  const long long total = 1 + static_cast<long long>(width) * leg_len;
  if (total > std::numeric_limits<int>::max())
    throw std::invalid_argument("spider: instance too large");
  Graph g(1);  // center
  for (int leg = 0; leg < width; ++leg) {
    const VertexId first = g.add_vertices(static_cast<int>(leg_len));
    g.add_edge(0, first);
    for (long long i = 0; i + 1 < leg_len; ++i)
      g.add_edge(first + static_cast<VertexId>(i),
                 first + static_cast<VertexId>(i) + 1);
  }
  return g;
}

Graph deeppath(int n, int d) {
  if (d < 2) throw std::invalid_argument("deeppath: need d >= 2");
  const long long spine = (1LL << (d - 1)) - 1;
  if (spine > n)
    throw std::invalid_argument("deeppath: need n >= 2^(d-1) - 1");
  const int s = static_cast<int>(spine);
  Graph g(n);
  for (int i = 0; i + 1 < s; ++i) g.add_edge(i, i + 1);
  for (int v = s; v < n; ++v) g.add_edge(v, (v - s) % s);
  return g;
}

Graph random_tree(int n, Rng& rng) {
  Graph g(n);
  for (int i = 1; i < n; ++i) {
    std::uniform_int_distribution<int> dist(0, i - 1);
    g.add_edge(i, dist(rng));
  }
  return g;
}

Graph erdos_renyi(int n, double p, Rng& rng) {
  Graph g(n);
  std::bernoulli_distribution coin(p);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (coin(rng)) g.add_edge(i, j);
  return g;
}

Graph random_bounded_treedepth(int n, int d, double edge_prob, Rng& rng) {
  if (n < 1 || d < 1)
    throw std::invalid_argument("random_bounded_treedepth: need n,d >= 1");
  // Build a random rooted forest of depth <= d over vertices 0..n-1 where
  // vertex 0 is the root; each new vertex picks a parent with remaining
  // depth budget. Then connect each vertex to its parent (ensuring
  // connectivity) and add random ancestor edges with probability edge_prob.
  Graph g(n);
  std::vector<int> depth(n, 1);     // depth of vertex i in the elimination tree
  std::vector<int> parent(n, -1);   // tree parent
  std::vector<VertexId> eligible;   // vertices with depth < d
  if (d >= 2) eligible.push_back(0);
  for (int i = 1; i < n; ++i) {
    if (eligible.empty())
      throw std::invalid_argument("random_bounded_treedepth: d too small");
    std::uniform_int_distribution<std::size_t> dist(0, eligible.size() - 1);
    const VertexId p = eligible[dist(rng)];
    parent[i] = p;
    depth[i] = depth[p] + 1;
    if (depth[i] < d) eligible.push_back(i);
    g.add_edge(i, p);
  }
  // Additional edges only between ancestor-descendant pairs: preserves
  // td(G) <= d because the same forest remains an elimination forest.
  std::bernoulli_distribution coin(edge_prob);
  for (int i = 1; i < n; ++i) {
    // walk strict ancestors above the direct parent (already connected)
    for (int a = parent[parent[i]]; a >= 0; a = parent[a])
      if (coin(rng)) g.ensure_edge(i, a);
  }
  return g;
}

Graph perturbed_grid(int rows, int cols, int extra, Rng& rng) {
  Graph g = grid(rows, cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  std::uniform_int_distribution<int> rr(0, rows - 2), cc(0, cols - 2);
  for (int k = 0; k < extra; ++k) {
    const int r = rr(rng), c = cc(rng);
    // one diagonal per face keeps the drawing planar
    if (!g.has_edge(id(r, c), id(r + 1, c + 1)) &&
        !g.has_edge(id(r, c + 1), id(r + 1, c)))
      g.add_edge(id(r, c), id(r + 1, c + 1));
  }
  return g;
}

Graph random_connected(int n, int extra, Rng& rng) {
  Graph g = random_tree(n, rng);
  std::uniform_int_distribution<int> dist(0, n - 1);
  int attempts = 0;
  while (extra > 0 && attempts < 50 * (extra + 1)) {
    ++attempts;
    const int u = dist(rng), v = dist(rng);
    if (u != v && !g.has_edge(u, v)) {
      g.add_edge(u, v);
      --extra;
    }
  }
  return g;
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  Graph g(a.num_vertices() + b.num_vertices());
  const int shift = a.num_vertices();
  for (const Edge& e : a.edges()) g.add_edge(e.u, e.v);
  for (const Edge& e : b.edges()) g.add_edge(e.u + shift, e.v + shift);
  for (VertexId v = 0; v < a.num_vertices(); ++v)
    g.set_vertex_weight(v, a.vertex_weight(v));
  for (VertexId v = 0; v < b.num_vertices(); ++v)
    g.set_vertex_weight(v + shift, b.vertex_weight(v));
  return g;
}

namespace {

/// Strict integer parse for family parameters: the whole token must be a
/// number ("path:abc" and "grid:4" are spec errors, not zeros).
int spec_int(const std::string& token, const std::string& what) {
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(token, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (token.empty() || used != token.size())
    throw std::invalid_argument(what + " expects an integer, got '" + token +
                                "'");
  return value;
}

}  // namespace

Graph family(const std::string& spec) {
  std::istringstream ss(spec);
  std::string name;
  std::getline(ss, name, ':');
  auto num = [&](const std::string& what) {
    std::string part;
    if (!std::getline(ss, part, ':'))
      throw std::invalid_argument("family parameter missing in '" + spec +
                                  "'");
    return spec_int(part, what);
  };
  if (name == "path") return path(num("path size"));
  if (name == "cycle") return cycle(num("cycle size"));
  if (name == "star") return star(num("star size"));
  if (name == "clique") return clique(num("clique size"));
  if (name == "grid") {
    std::string part;
    if (!std::getline(ss, part, ':'))
      throw std::invalid_argument("grid needs RxC");
    const auto x = part.find('x');
    if (x == std::string::npos) throw std::invalid_argument("grid needs RxC");
    return grid(spec_int(part.substr(0, x), "grid rows"),
                spec_int(part.substr(x + 1), "grid cols"));
  }
  if (name == "btd") {
    const int n = num("btd size");
    const int d = num("btd depth");
    Rng rng(42);
    return random_bounded_treedepth(n, d, 0.4, rng);
  }
  if (name == "spider") {
    const int d = num("spider depth");
    return spider(d, num("spider width"));
  }
  if (name == "deeppath") {
    const int n = num("deeppath size");
    return deeppath(n, num("deeppath depth"));
  }
  throw std::invalid_argument(
      "unknown family '" + name +
      "' (path/cycle/star/clique/grid/btd/spider/deeppath)");
}

void randomize_weights(Graph& g, Weight lo, Weight hi, Rng& rng) {
  std::uniform_int_distribution<Weight> dist(lo, hi);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    g.set_vertex_weight(v, dist(rng));
  for (EdgeId e = 0; e < g.num_edges(); ++e) g.set_edge_weight(e, dist(rng));
}

}  // namespace dmc::gen
