// Graph generators: named families used by tests, examples, and benchmarks.
//
// The bounded-treedepth random family follows the recursive characterization
// of treedepth (paper Lemma 2.2) in reverse: a random elimination forest of
// depth <= d is generated first, and edges are inserted only between
// ancestor-descendant pairs, which guarantees td(G) <= d by construction.
#pragma once

#include <cstdint>
#include <random>

#include "graph/graph.hpp"

namespace dmc::gen {

using Rng = std::mt19937_64;

Graph path(int n);
Graph cycle(int n);
Graph clique(int n);
Graph star(int leaves);
Graph complete_bipartite(int a, int b);
Graph grid(int rows, int cols);
/// Complete binary tree with the given number of levels (depth in vertices).
Graph binary_tree(int levels);
/// Path of `spine` vertices with `legs` pendant vertices on each spine vertex.
Graph caterpillar(int spine, int legs);
/// `k` cliques of size `size`, all attached to one extra center vertex.
Graph star_of_cliques(int k, int size);

/// Wheel: a cycle of `rim` vertices plus a hub adjacent to all of them.
Graph wheel(int rim);

/// Complete k-ary tree with the given number of levels.
Graph kary_tree(int arity, int levels);

/// Spider: a center vertex with `width` legs, each leg a path on
/// 2^(d-1) - 1 vertices (the longest path a treedepth-(d-1) graph can be,
/// Lemma 2.5). td <= d: eliminate the center, then each leg is a path of
/// treedepth d-1. Built in O(n); the million-vertex scale family of
/// EXPERIMENTS.md E16 (n = 1 + width * (2^(d-1) - 1)).
Graph spider(int d, int width);

/// Deep path: a spine path on 2^(d-1) - 1 vertices plus pendant leaves
/// distributed round-robin over the spine until the graph has `n` vertices.
/// td <= d: hang each leaf below its spine vertex in the spine's standard
/// depth-(d-1) elimination tree. Built in O(n); maximizes elimination-tree
/// depth at scale where spider maximizes breadth.
Graph deeppath(int n, int d);

Graph random_tree(int n, Rng& rng);
Graph erdos_renyi(int n, double p, Rng& rng);

/// Random connected graph with treedepth <= d (see file comment).
/// `width` controls the branching of the underlying elimination tree and
/// `edge_prob` the density of ancestor-descendant edges beyond the tree.
Graph random_bounded_treedepth(int n, int d, double edge_prob, Rng& rng);

/// Random connected planar-style graph: a grid with `extra` random diagonals
/// inside faces (stays planar, bounded expansion).
Graph perturbed_grid(int rows, int cols, int extra, Rng& rng);

/// Random connected graph with n vertices: random tree plus `extra` edges.
Graph random_connected(int n, int extra, Rng& rng);

/// Disjoint union (vertex ids of `b` are shifted by a.num_vertices()).
Graph disjoint_union(const Graph& a, const Graph& b);

/// Builds a named family instance from a colon-separated spec:
/// "path:12", "cycle:9", "star:8", "clique:5", "grid:4x5", "btd:20:3",
/// "spider:4:10", "deeppath:100:4"
/// (btd is seeded deterministically, matching the dmc CLI). Throws
/// std::invalid_argument on an unknown family or malformed parameters —
/// the shared spec grammar of `dmc --family` and the dmcd query protocol.
Graph family(const std::string& spec);

/// Assigns random weights in [lo, hi] to all vertices and edges.
void randomize_weights(Graph& g, Weight lo, Weight hi, Rng& rng);

}  // namespace dmc::gen
