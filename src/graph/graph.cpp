#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

namespace dmc {

namespace {

/// splitmix64 finalizer: full-avalanche hash of the packed endpoint key.
std::uint64_t hash_key(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

using LabelColumns =
    std::vector<std::pair<std::string, std::vector<bool>>>;

std::vector<bool>* find_label(LabelColumns& cols, const std::string& name) {
  auto it = std::lower_bound(
      cols.begin(), cols.end(), name,
      [](const auto& col, const std::string& n) { return col.first < n; });
  if (it == cols.end() || it->first != name) return nullptr;
  return &it->second;
}

const std::vector<bool>* find_label(const LabelColumns& cols,
                                    const std::string& name) {
  return find_label(const_cast<LabelColumns&>(cols), name);
}

std::vector<bool>& ensure_label(LabelColumns& cols, const std::string& name) {
  auto it = std::lower_bound(
      cols.begin(), cols.end(), name,
      [](const auto& col, const std::string& n) { return col.first < n; });
  if (it == cols.end() || it->first != name)
    it = cols.insert(it, {name, {}});
  return it->second;
}

}  // namespace

void Graph::resize(int n) {
  if (n < 0) throw std::invalid_argument("Graph: negative vertex count");
  if (n != num_vertices()) csr_dirty_ = true;
  deg_.resize(n, 0);
  vertex_weights_.resize(n, 1);
  for (auto& [name, bits] : vertex_labels_) bits.resize(n, false);
}

VertexId Graph::add_vertices(int count) {
  if (count < 0) throw std::invalid_argument("Graph::add_vertices: negative");
  const VertexId first = num_vertices();
  resize(num_vertices() + count);
  return first;
}

void Graph::index_grow(std::size_t min_slots) {
  std::size_t cap = 16;
  while (cap < min_slots) cap <<= 1;
  std::vector<std::uint64_t> keys(cap, kEmptyKey);
  std::vector<EdgeId> vals(cap, -1);
  const std::uint64_t mask = cap - 1;
  for (std::size_t i = 0; i < index_keys_.size(); ++i) {
    if (index_keys_[i] == kEmptyKey) continue;
    std::uint64_t slot = hash_key(index_keys_[i]) & mask;
    while (keys[slot] != kEmptyKey) slot = (slot + 1) & mask;
    keys[slot] = index_keys_[i];
    vals[slot] = index_vals_[i];
  }
  index_keys_ = std::move(keys);
  index_vals_ = std::move(vals);
}

void Graph::index_insert(std::uint64_t key, EdgeId e) {
  // keep load factor <= 70%: grow when (count+1) > 0.7 * capacity
  const std::size_t count = edges_.size();
  if (index_keys_.empty() || (count + 1) * 10 > index_keys_.size() * 7)
    index_grow(std::max<std::size_t>(16, (count + 1) * 2));
  const std::uint64_t mask = index_keys_.size() - 1;
  std::uint64_t slot = hash_key(key) & mask;
  while (index_keys_[slot] != kEmptyKey) slot = (slot + 1) & mask;
  index_keys_[slot] = key;
  index_vals_[slot] = e;
}

EdgeId Graph::index_find(std::uint64_t key) const {
  if (index_keys_.empty()) return -1;
  const std::uint64_t mask = index_keys_.size() - 1;
  std::uint64_t slot = hash_key(key) & mask;
  while (index_keys_[slot] != kEmptyKey) {
    if (index_keys_[slot] == key) return index_vals_[slot];
    slot = (slot + 1) & mask;
  }
  return -1;
}

void Graph::rebuild_csr() const {
  const int n = num_vertices();
  csr_off_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++csr_off_[e.u + 1];
    ++csr_off_[e.v + 1];
  }
  for (int v = 0; v < n; ++v) csr_off_[v + 1] += csr_off_[v];
  csr_adj_.resize(2 * edges_.size());
  csr_eport_.resize(2 * edges_.size());
  // Scatter in edge-id order: each endpoint's list fills in the order its
  // edges were added, reproducing the historical adjacency-vector ports.
  // The cursor position *is* the edge's port at that endpoint; recording it
  // here is what makes port_of O(1).
  std::vector<int> cursor(csr_off_.begin(), csr_off_.end() - 1);
  for (EdgeId e = 0; e < static_cast<EdgeId>(edges_.size()); ++e) {
    const Edge& ed = edges_[e];
    csr_eport_[2 * e] = cursor[ed.u] - csr_off_[ed.u];
    csr_adj_[cursor[ed.u]++] = {ed.v, e};
    csr_eport_[2 * e + 1] = cursor[ed.v] - csr_off_[ed.v];
    csr_adj_[cursor[ed.v]++] = {ed.u, e};
  }
  csr_off_.pop_back();  // offsets only; sizes come from deg_
  csr_dirty_ = false;
}

EdgeId Graph::add_edge(VertexId u, VertexId v) {
  check_vertex(u);
  check_vertex(v);
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (u > v) std::swap(u, v);
  const std::uint64_t key = pack_key(u, v);
  if (index_find(key) >= 0)
    throw std::invalid_argument("Graph::add_edge: duplicate edge");
  const EdgeId e = num_edges();
  edges_.push_back(Edge{u, v});
  index_insert(key, e);
  ++deg_[u];
  ++deg_[v];
  csr_dirty_ = true;
  edge_weights_.push_back(1);
  for (auto& [name, bits] : edge_labels_) bits.push_back(false);
  return e;
}

EdgeId Graph::ensure_edge(VertexId u, VertexId v) {
  const EdgeId e = edge_id(u, v);
  return e >= 0 ? e : add_edge(u, v);
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  return edge_id(u, v) >= 0;
}

EdgeId Graph::edge_id(VertexId u, VertexId v) const {
  check_vertex(u);
  check_vertex(v);
  if (u > v) std::swap(u, v);
  return index_find(pack_key(u, v));
}

int Graph::port_of(VertexId v, VertexId w) const {
  const EdgeId e = edge_id(v, w);
  if (e < 0) return -1;
  if (csr_dirty_) rebuild_csr();
  return edges_[e].u == v ? csr_eport_[2 * e] : csr_eport_[2 * e + 1];
}

void Graph::set_vertex_label(const std::string& name, VertexId v, bool on) {
  check_vertex(v);
  auto& bits = ensure_label(vertex_labels_, name);
  bits.resize(num_vertices(), false);
  bits[v] = on;
}

void Graph::set_edge_label(const std::string& name, EdgeId e, bool on) {
  check_edge(e);
  auto& bits = ensure_label(edge_labels_, name);
  bits.resize(num_edges(), false);
  bits[e] = on;
}

bool Graph::vertex_has_label(const std::string& name, VertexId v) const {
  check_vertex(v);
  const auto* bits = find_label(vertex_labels_, name);
  if (bits == nullptr) return false;
  return v < static_cast<int>(bits->size()) && (*bits)[v];
}

bool Graph::edge_has_label(const std::string& name, EdgeId e) const {
  check_edge(e);
  const auto* bits = find_label(edge_labels_, name);
  if (bits == nullptr) return false;
  return e < static_cast<int>(bits->size()) && (*bits)[e];
}

std::vector<std::string> Graph::vertex_label_names() const {
  std::vector<std::string> out;
  for (const auto& [name, bits] : vertex_labels_) out.push_back(name);
  return out;
}

std::vector<std::string> Graph::edge_label_names() const {
  std::vector<std::string> out;
  for (const auto& [name, bits] : edge_labels_) out.push_back(name);
  return out;
}

void Graph::set_vertex_weight(VertexId v, Weight w) {
  check_vertex(v);
  vertex_weights_[v] = w;
}

void Graph::set_edge_weight(EdgeId e, Weight w) {
  check_edge(e);
  edge_weights_[e] = w;
}

Weight Graph::vertex_weight(VertexId v) const {
  check_vertex(v);
  return vertex_weights_[v];
}

Weight Graph::edge_weight(EdgeId e) const {
  check_edge(e);
  return edge_weights_[e];
}

Graph Graph::induced_subgraph(const std::vector<VertexId>& vertices,
                              std::vector<VertexId>* old_to_new) const {
  std::vector<VertexId> map(num_vertices(), -1);
  Graph sub(static_cast<int>(vertices.size()));
  for (int i = 0; i < static_cast<int>(vertices.size()); ++i) {
    check_vertex(vertices[i]);
    if (map[vertices[i]] != -1)
      throw std::invalid_argument("induced_subgraph: duplicate vertex");
    map[vertices[i]] = i;
    sub.set_vertex_weight(i, vertex_weight(vertices[i]));
    for (const auto& [name, bits] : vertex_labels_)
      if (vertices[i] < static_cast<int>(bits.size()) && bits[vertices[i]])
        sub.set_vertex_label(name, i);
  }
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const Edge& ed = edges_[e];
    if (map[ed.u] >= 0 && map[ed.v] >= 0) {
      const EdgeId ne = sub.add_edge(map[ed.u], map[ed.v]);
      sub.set_edge_weight(ne, edge_weight(e));
      for (const auto& [name, bits] : edge_labels_)
        if (e < static_cast<int>(bits.size()) && bits[e])
          sub.set_edge_label(name, ne);
    }
  }
  if (old_to_new) *old_to_new = std::move(map);
  return sub;
}

std::size_t Graph::memory_bytes() const {
  std::size_t total = 0;
  total += edges_.size() * sizeof(Edge);
  total += deg_.size() * sizeof(int);
  total += vertex_weights_.size() * sizeof(Weight);
  total += edge_weights_.size() * sizeof(Weight);
  total += index_keys_.size() * sizeof(std::uint64_t);
  total += index_vals_.size() * sizeof(EdgeId);
  if (!csr_dirty_) {
    total += csr_off_.size() * sizeof(int);
    total += csr_adj_.size() * sizeof(std::pair<VertexId, EdgeId>);
    total += csr_eport_.size() * sizeof(int);
  }
  for (const auto& [name, bits] : vertex_labels_)
    total += name.size() + bits.size() / 8;
  for (const auto& [name, bits] : edge_labels_)
    total += name.size() + bits.size() / 8;
  return total;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "Graph(n=" << num_vertices() << ", m=" << num_edges() << ", edges={";
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (e) os << ", ";
    os << edges_[e].u << "-" << edges_[e].v;
  }
  os << "})";
  return os.str();
}

}  // namespace dmc
