#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

namespace dmc {

void Graph::resize(int n) {
  if (n < 0) throw std::invalid_argument("Graph: negative vertex count");
  adj_.resize(n);
  vertex_weights_.resize(n, 1);
  for (auto& [name, bits] : vertex_labels_) bits.resize(n, false);
}

void Graph::check_vertex(VertexId v) const {
  if (v < 0 || v >= num_vertices())
    throw std::out_of_range("Graph: vertex id out of range");
}

VertexId Graph::add_vertices(int count) {
  if (count < 0) throw std::invalid_argument("Graph::add_vertices: negative");
  const VertexId first = num_vertices();
  resize(num_vertices() + count);
  return first;
}

EdgeId Graph::add_edge(VertexId u, VertexId v) {
  check_vertex(u);
  check_vertex(v);
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (u > v) std::swap(u, v);
  if (edge_index_.count({u, v}))
    throw std::invalid_argument("Graph::add_edge: duplicate edge");
  const EdgeId e = num_edges();
  edges_.push_back(Edge{u, v});
  edge_index_[{u, v}] = e;
  adj_[u].emplace_back(v, e);
  adj_[v].emplace_back(u, e);
  edge_weights_.push_back(1);
  for (auto& [name, bits] : edge_labels_) bits.push_back(false);
  return e;
}

EdgeId Graph::ensure_edge(VertexId u, VertexId v) {
  const EdgeId e = edge_id(u, v);
  return e >= 0 ? e : add_edge(u, v);
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  return edge_id(u, v) >= 0;
}

EdgeId Graph::edge_id(VertexId u, VertexId v) const {
  check_vertex(u);
  check_vertex(v);
  if (u > v) std::swap(u, v);
  auto it = edge_index_.find({u, v});
  return it == edge_index_.end() ? -1 : it->second;
}

std::vector<VertexId> Graph::neighbors(VertexId v) const {
  std::vector<VertexId> out;
  out.reserve(adj_.at(v).size());
  for (auto [w, e] : adj_.at(v)) out.push_back(w);
  return out;
}

void Graph::set_vertex_label(const std::string& name, VertexId v, bool on) {
  check_vertex(v);
  auto& bits = vertex_labels_[name];
  bits.resize(num_vertices(), false);
  bits[v] = on;
}

void Graph::set_edge_label(const std::string& name, EdgeId e, bool on) {
  if (e < 0 || e >= num_edges())
    throw std::out_of_range("Graph: edge id out of range");
  auto& bits = edge_labels_[name];
  bits.resize(num_edges(), false);
  bits[e] = on;
}

bool Graph::vertex_has_label(const std::string& name, VertexId v) const {
  check_vertex(v);
  auto it = vertex_labels_.find(name);
  if (it == vertex_labels_.end()) return false;
  return v < static_cast<int>(it->second.size()) && it->second[v];
}

bool Graph::edge_has_label(const std::string& name, EdgeId e) const {
  if (e < 0 || e >= num_edges())
    throw std::out_of_range("Graph: edge id out of range");
  auto it = edge_labels_.find(name);
  if (it == edge_labels_.end()) return false;
  return e < static_cast<int>(it->second.size()) && it->second[e];
}

std::vector<std::string> Graph::vertex_label_names() const {
  std::vector<std::string> out;
  for (const auto& [name, bits] : vertex_labels_) out.push_back(name);
  return out;
}

std::vector<std::string> Graph::edge_label_names() const {
  std::vector<std::string> out;
  for (const auto& [name, bits] : edge_labels_) out.push_back(name);
  return out;
}

void Graph::set_vertex_weight(VertexId v, Weight w) {
  check_vertex(v);
  vertex_weights_[v] = w;
}

void Graph::set_edge_weight(EdgeId e, Weight w) {
  if (e < 0 || e >= num_edges())
    throw std::out_of_range("Graph: edge id out of range");
  edge_weights_[e] = w;
}

Weight Graph::vertex_weight(VertexId v) const {
  check_vertex(v);
  return vertex_weights_[v];
}

Weight Graph::edge_weight(EdgeId e) const {
  if (e < 0 || e >= num_edges())
    throw std::out_of_range("Graph: edge id out of range");
  return edge_weights_[e];
}

Graph Graph::induced_subgraph(const std::vector<VertexId>& vertices,
                              std::vector<VertexId>* old_to_new) const {
  std::vector<VertexId> map(num_vertices(), -1);
  Graph sub(static_cast<int>(vertices.size()));
  for (int i = 0; i < static_cast<int>(vertices.size()); ++i) {
    check_vertex(vertices[i]);
    if (map[vertices[i]] != -1)
      throw std::invalid_argument("induced_subgraph: duplicate vertex");
    map[vertices[i]] = i;
    sub.set_vertex_weight(i, vertex_weight(vertices[i]));
    for (const auto& [name, bits] : vertex_labels_)
      if (vertices[i] < static_cast<int>(bits.size()) && bits[vertices[i]])
        sub.set_vertex_label(name, i);
  }
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const Edge& ed = edges_[e];
    if (map[ed.u] >= 0 && map[ed.v] >= 0) {
      const EdgeId ne = sub.add_edge(map[ed.u], map[ed.v]);
      sub.set_edge_weight(ne, edge_weight(e));
      for (const auto& [name, bits] : edge_labels_)
        if (e < static_cast<int>(bits.size()) && bits[e])
          sub.set_edge_label(name, ne);
    }
  }
  if (old_to_new) *old_to_new = std::move(map);
  return sub;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "Graph(n=" << num_vertices() << ", m=" << num_edges() << ", edges={";
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (e) os << ", ";
    os << edges_[e].u << "-" << edges_[e].v;
  }
  os << "})";
  return os.str();
}

}  // namespace dmc
