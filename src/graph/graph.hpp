// Core simple-undirected-graph data structure used throughout dmc.
//
// Vertices are dense ids 0..n-1. Edges are dense ids 0..m-1 with stable
// endpoints. Graphs may carry:
//   - unary labels on vertices and on edges (the paper's labeled-graph
//     extension, Section 6), addressed by name;
//   - integer weights on vertices and edges (the paper's polynomially
//     bounded weights for optimization problems, Section 4).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dmc {

using VertexId = int;
using EdgeId = int;
using Weight = std::int64_t;

/// One undirected edge; endpoints are stored with u <= v.
struct Edge {
  VertexId u = -1;
  VertexId v = -1;

  /// The endpoint different from `x`; throws if `x` is not an endpoint.
  VertexId other(VertexId x) const {
    if (x == u) return v;
    if (x == v) return u;
    throw std::invalid_argument("Edge::other: vertex is not an endpoint");
  }
};

/// Simple undirected graph with labels and weights.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int n) { resize(n); }

  int num_vertices() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds `count` isolated vertices; returns the id of the first new vertex.
  VertexId add_vertices(int count = 1);

  /// Adds edge {u, v}. Throws on loops, out-of-range ids, or duplicates.
  EdgeId add_edge(VertexId u, VertexId v);

  /// Adds edge {u, v} if absent; returns the edge id either way.
  EdgeId ensure_edge(VertexId u, VertexId v);

  bool has_edge(VertexId u, VertexId v) const;
  /// Edge id of {u, v}, or -1 if absent.
  EdgeId edge_id(VertexId u, VertexId v) const;

  const Edge& edge(EdgeId e) const { return edges_.at(e); }
  const std::vector<Edge>& edges() const { return edges_; }

  int degree(VertexId v) const { return static_cast<int>(adj_.at(v).size()); }

  /// Incident (neighbor, edge-id) pairs of v, in insertion order.
  const std::vector<std::pair<VertexId, EdgeId>>& incident(VertexId v) const {
    return adj_.at(v);
  }
  /// Neighbor vertex ids of v (copy), in insertion order.
  std::vector<VertexId> neighbors(VertexId v) const;

  // --- labels (unary predicates, Section 6 of the paper) -------------------

  void set_vertex_label(const std::string& name, VertexId v, bool on = true);
  void set_edge_label(const std::string& name, EdgeId e, bool on = true);
  bool vertex_has_label(const std::string& name, VertexId v) const;
  bool edge_has_label(const std::string& name, EdgeId e) const;
  std::vector<std::string> vertex_label_names() const;
  std::vector<std::string> edge_label_names() const;

  // --- weights --------------------------------------------------------------

  void set_vertex_weight(VertexId v, Weight w);
  void set_edge_weight(EdgeId e, Weight w);
  Weight vertex_weight(VertexId v) const;
  Weight edge_weight(EdgeId e) const;

  /// Induced subgraph on `vertices` (labels/weights are carried over).
  /// `vertices` must contain distinct valid ids; its order defines the new
  /// vertex numbering. If `old_to_new` is non-null it receives the mapping
  /// (size n, -1 for dropped vertices).
  Graph induced_subgraph(const std::vector<VertexId>& vertices,
                         std::vector<VertexId>* old_to_new = nullptr) const;

  std::string to_string() const;

 private:
  void resize(int n);
  void check_vertex(VertexId v) const;

  std::vector<std::vector<std::pair<VertexId, EdgeId>>> adj_;
  std::vector<Edge> edges_;
  std::map<std::pair<VertexId, VertexId>, EdgeId> edge_index_;
  std::map<std::string, std::vector<bool>> vertex_labels_;
  std::map<std::string, std::vector<bool>> edge_labels_;
  std::vector<Weight> vertex_weights_;
  std::vector<Weight> edge_weights_;
};

}  // namespace dmc
