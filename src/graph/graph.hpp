// Core simple-undirected-graph data structure used throughout dmc.
//
// Vertices are dense ids 0..n-1. Edges are dense ids 0..m-1 with stable
// endpoints. Graphs may carry:
//   - unary labels on vertices and on edges (the paper's labeled-graph
//     extension, Section 6), addressed by name;
//   - integer weights on vertices and edges (the paper's polynomially
//     bounded weights for optimization problems, Section 4).
//
// Storage is CSR (compressed sparse row): the edge list is the source of
// truth and the per-vertex incidence lists live in one prefix-summed arena
// that is rebuilt lazily (O(n + m)) after mutations. incident() and
// neighbors() return non-allocating views into that arena, and the
// {u,v} -> edge-id index is an open-addressing flat hash, so building a
// graph of n vertices and m edges is O(n + m) total — the property the
// million-vertex families in gen::family rely on (docs/PERFORMANCE.md).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dmc {

using VertexId = int;
using EdgeId = int;
using Weight = std::int64_t;

/// One undirected edge; endpoints are stored with u <= v.
struct Edge {
  VertexId u = -1;
  VertexId v = -1;

  /// The endpoint different from `x`; throws if `x` is not an endpoint.
  VertexId other(VertexId x) const {
    if (x == u) return v;
    if (x == v) return u;
    throw std::invalid_argument("Edge::other: vertex is not an endpoint");
  }
};

/// Simple undirected graph with labels and weights.
class Graph {
 public:
  /// Non-allocating window into one vertex's (neighbor, edge-id) pairs in
  /// the CSR arena, in insertion order (ports are indices into this view).
  /// Invalidated by any graph mutation.
  class IncidenceView {
   public:
    using value_type = std::pair<VertexId, EdgeId>;
    using const_iterator = const value_type*;

    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const value_type& operator[](std::size_t i) const { return data_[i]; }
    const value_type& at(std::size_t i) const {
      if (i >= size_) throw std::out_of_range("IncidenceView::at");
      return data_[i];
    }

   private:
    friend class Graph;
    IncidenceView(const value_type* data, std::size_t size)
        : data_(data), size_(size) {}
    const value_type* data_;
    std::size_t size_;
  };

  /// Neighbor-ids-only projection of an IncidenceView (same arena, same
  /// order, same invalidation rule).
  class NeighborView {
   public:
    class const_iterator {
     public:
      VertexId operator*() const { return p_->first; }
      const_iterator& operator++() {
        ++p_;
        return *this;
      }
      bool operator!=(const const_iterator& o) const { return p_ != o.p_; }
      bool operator==(const const_iterator& o) const { return p_ == o.p_; }

     private:
      friend class NeighborView;
      explicit const_iterator(const IncidenceView::value_type* p) : p_(p) {}
      const IncidenceView::value_type* p_;
    };

    const_iterator begin() const { return const_iterator(data_); }
    const_iterator end() const { return const_iterator(data_ + size_); }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    VertexId operator[](std::size_t i) const { return data_[i].first; }

   private:
    friend class Graph;
    NeighborView(const IncidenceView::value_type* data, std::size_t size)
        : data_(data), size_(size) {}
    const IncidenceView::value_type* data_;
    std::size_t size_;
  };

  Graph() = default;
  explicit Graph(int n) { resize(n); }

  int num_vertices() const { return static_cast<int>(deg_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds `count` isolated vertices; returns the id of the first new vertex.
  VertexId add_vertices(int count = 1);

  /// Adds edge {u, v}. Throws on loops, out-of-range ids, or duplicates.
  EdgeId add_edge(VertexId u, VertexId v);

  /// Adds edge {u, v} if absent; returns the edge id either way.
  EdgeId ensure_edge(VertexId u, VertexId v);

  bool has_edge(VertexId u, VertexId v) const;
  /// Edge id of {u, v}, or -1 if absent.
  EdgeId edge_id(VertexId u, VertexId v) const;
  /// Position of w in v's incidence list, or -1 if {v, w} is absent. O(1):
  /// flat-hash edge lookup plus the per-edge endpoint ports the CSR rebuild
  /// records — never a scan, so it is safe on hub vertices of huge degree.
  int port_of(VertexId v, VertexId w) const;

  const Edge& edge(EdgeId e) const { return edges_.at(e); }
  const std::vector<Edge>& edges() const { return edges_; }

  int degree(VertexId v) const {
    check_vertex(v);
    return deg_[v];
  }

  /// Incident (neighbor, edge-id) pairs of v, in insertion order. The view
  /// aliases the CSR arena: it costs nothing to produce, and is invalidated
  /// by the next add_edge/add_vertices. The first call after a mutation
  /// rebuilds the arena (O(n + m)); callers stepping vertices in parallel
  /// must finalize() (or query once) before forking.
  IncidenceView incident(VertexId v) const {
    check_vertex(v);
    if (csr_dirty_) rebuild_csr();
    return IncidenceView(csr_adj_.data() + csr_off_[v],
                         static_cast<std::size_t>(deg_[v]));
  }
  /// Neighbor vertex ids of v, in insertion order (same view contract).
  NeighborView neighbors(VertexId v) const {
    check_vertex(v);
    if (csr_dirty_) rebuild_csr();
    return NeighborView(csr_adj_.data() + csr_off_[v],
                        static_cast<std::size_t>(deg_[v]));
  }
  /// Forces the CSR arena up to date so subsequent incident()/neighbors()
  /// calls are pure reads (safe from concurrent threads).
  void finalize() const {
    if (csr_dirty_) rebuild_csr();
  }

  // --- labels (unary predicates, Section 6 of the paper) -------------------

  void set_vertex_label(const std::string& name, VertexId v, bool on = true);
  void set_edge_label(const std::string& name, EdgeId e, bool on = true);
  bool vertex_has_label(const std::string& name, VertexId v) const;
  bool edge_has_label(const std::string& name, EdgeId e) const;
  std::vector<std::string> vertex_label_names() const;
  std::vector<std::string> edge_label_names() const;

  // --- weights --------------------------------------------------------------

  void set_vertex_weight(VertexId v, Weight w);
  void set_edge_weight(EdgeId e, Weight w);
  Weight vertex_weight(VertexId v) const;
  Weight edge_weight(EdgeId e) const;

  /// Induced subgraph on `vertices` (labels/weights are carried over).
  /// `vertices` must contain distinct valid ids; its order defines the new
  /// vertex numbering. If `old_to_new` is non-null it receives the mapping
  /// (size n, -1 for dropped vertices).
  Graph induced_subgraph(const std::vector<VertexId>& vertices,
                         std::vector<VertexId>* old_to_new = nullptr) const;

  /// Heap bytes held by the graph structure (CSR arena, edge list, hash
  /// index, labels, weights) — logical sizes, not allocator capacity, so
  /// the number is deterministic for a given construction.
  std::size_t memory_bytes() const;

  std::string to_string() const;

 private:
  // Sorted-by-name label columns (the few labels in play make the binary
  // search cheaper than a node-based map, and iteration order stays the
  // sorted order the old std::map exposed).
  using LabelColumns = std::vector<std::pair<std::string, std::vector<bool>>>;

  void resize(int n);
  void check_vertex(VertexId v) const {
    if (v < 0 || v >= num_vertices())
      throw std::out_of_range("Graph: vertex id out of range");
  }
  void check_edge(EdgeId e) const {
    if (e < 0 || e >= num_edges())
      throw std::out_of_range("Graph: edge id out of range");
  }
  void rebuild_csr() const;

  static std::uint64_t pack_key(VertexId u, VertexId v) {
    // callers normalize u <= v; both are non-negative ints
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
  }
  void index_insert(std::uint64_t key, EdgeId e);
  EdgeId index_find(std::uint64_t key) const;
  void index_grow(std::size_t min_slots);

  std::vector<Edge> edges_;      // source of truth, in edge-id order
  std::vector<int> deg_;         // per-vertex degree (doubles as vertex count)
  std::vector<Weight> vertex_weights_;
  std::vector<Weight> edge_weights_;
  LabelColumns vertex_labels_;
  LabelColumns edge_labels_;

  // Open-addressing {u,v} -> edge id hash (linear probing, power-of-two
  // capacity, <= 70% load; edges are never removed so no tombstones).
  std::vector<std::uint64_t> index_keys_;
  std::vector<EdgeId> index_vals_;
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  // Lazy CSR cache over edges_: csr_off_[v] is the arena offset of v's
  // incidence list; entries are scattered in edge-id order, which is
  // exactly per-vertex insertion order (ports are stable).
  mutable std::vector<int> csr_off_;  // size n (+ scratch invariant), offsets
  mutable std::vector<std::pair<VertexId, EdgeId>> csr_adj_;  // size 2m
  // Per-edge endpoint ports: csr_eport_[2e] is edge e's port in u's list,
  // csr_eport_[2e + 1] its port in v's list (u < v as stored in edges_).
  mutable std::vector<int> csr_eport_;  // size 2m
  mutable bool csr_dirty_ = true;
};

}  // namespace dmc
