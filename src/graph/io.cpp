#include "graph/io.hpp"

#include <sstream>
#include <stdexcept>

namespace dmc::io {

namespace {

[[noreturn]] void fail(const std::string& msg, int line) {
  throw std::invalid_argument("graph parse error (line " +
                              std::to_string(line) + "): " + msg);
}

}  // namespace

void write_dimacs(std::ostream& os, const Graph& g) {
  os << "c dmc graph\n";
  os << "p edge " << g.num_vertices() << " " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) os << "e " << e.u + 1 << " " << e.v + 1 << "\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (g.vertex_weight(v) != 1) os << "w " << v + 1 << " " << g.vertex_weight(v) << "\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (g.edge_weight(e) != 1) os << "ew " << e << " " << g.edge_weight(e) << "\n";
  for (const auto& name : g.vertex_label_names())
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (g.vertex_has_label(name, v)) os << "l " << v + 1 << " " << name << "\n";
  for (const auto& name : g.edge_label_names())
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (g.edge_has_label(name, e)) os << "el " << e << " " << name << "\n";
}

std::string to_dimacs(const Graph& g) {
  std::ostringstream os;
  write_dimacs(os, g);
  return os.str();
}

Graph read_dimacs(std::istream& is) {
  Graph g;
  bool have_header = false;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag == "c") continue;
    if (tag == "p") {
      std::string kind;
      int n = 0, m = 0;
      if (!(ls >> kind >> n >> m) || kind != "edge" || n < 0)
        fail("bad problem line", lineno);
      if (have_header) fail("duplicate problem line", lineno);
      have_header = true;
      g.add_vertices(n);
    } else if (tag == "e") {
      int u = 0, v = 0;
      if (!have_header || !(ls >> u >> v)) fail("bad edge line", lineno);
      if (u < 1 || v < 1 || u > g.num_vertices() || v > g.num_vertices())
        fail("edge endpoint out of range", lineno);
      g.add_edge(u - 1, v - 1);
    } else if (tag == "w") {
      int v = 0;
      Weight w = 0;
      if (!have_header || !(ls >> v >> w) || v < 1 || v > g.num_vertices())
        fail("bad vertex weight line", lineno);
      g.set_vertex_weight(v - 1, w);
    } else if (tag == "ew") {
      int e = 0;
      Weight w = 0;
      if (!have_header || !(ls >> e >> w) || e < 0 || e >= g.num_edges())
        fail("bad edge weight line", lineno);
      g.set_edge_weight(e, w);
    } else if (tag == "l") {
      int v = 0;
      std::string name;
      if (!have_header || !(ls >> v >> name) || v < 1 || v > g.num_vertices())
        fail("bad vertex label line", lineno);
      g.set_vertex_label(name, v - 1);
    } else if (tag == "el") {
      int e = 0;
      std::string name;
      if (!have_header || !(ls >> e >> name) || e < 0 || e >= g.num_edges())
        fail("bad edge label line", lineno);
      g.set_edge_label(name, e);
    } else {
      fail("unknown line tag '" + tag + "'", lineno);
    }
  }
  if (!have_header) fail("missing problem line", 0);
  return g;
}

Graph from_dimacs(const std::string& text) {
  std::istringstream is(text);
  return read_dimacs(is);
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << g.num_vertices() << " " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) os << e.u << " " << e.v << "\n";
  return os.str();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream is(text);
  int n = 0, m = 0;
  if (!(is >> n >> m) || n < 0 || m < 0)
    throw std::invalid_argument("edge list: bad header");
  Graph g(n);
  for (int i = 0; i < m; ++i) {
    int u = 0, v = 0;
    if (!(is >> u >> v)) throw std::invalid_argument("edge list: bad edge");
    g.add_edge(u, v);
  }
  return g;
}

}  // namespace dmc::io
