// Text serialization of graphs.
//
// Two formats:
//   - DIMACS-like: "p edge n m" header, "e u v" lines (1-based), extended
//     with optional "w v weight" (vertex weights), "ew e weight" (edge
//     weights by 0-based edge ordinal) and "l v name" / "el e name" label
//     lines. Comments start with 'c'.
//   - compact edge list: "n m\nu v\nu v\n..." (0-based), structure only.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace dmc::io {

std::string to_dimacs(const Graph& g);
/// Parses the DIMACS-like format; throws std::invalid_argument on errors.
Graph from_dimacs(const std::string& text);

std::string to_edge_list(const Graph& g);
Graph from_edge_list(const std::string& text);

void write_dimacs(std::ostream& os, const Graph& g);
Graph read_dimacs(std::istream& is);

}  // namespace dmc::io
