#include "mc/churn_system.hpp"

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mso/formulas.hpp"

namespace dmc::mc {

namespace {

std::uint64_t fold64(std::uint64_t h, std::uint64_t x) {
  h ^= x;
  h *= 1099511628211ull;
  return h;
}

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;

/// Crash processes live above every edge process (scenario graphs are
/// tiny; edge ids are small). Same convention as congest_system.cpp.
constexpr int kCrashProcessBase = 1'000'000;

/// SchedulerHook adapter; mirrors the one in congest_system.cpp (which is
/// file-local by design — each System owns its budget semantics): filters
/// optional offers by the per-execution adversary budgets before the
/// choice point is recorded, forwards runtime invariant breaches.
class Hook : public congest::SchedulerHook {
 public:
  Hook(const ChurnSystem::Options& opts, const PickFn& pick,
       const std::function<Action(const congest::SchedChoice&)>& to_action,
       std::vector<std::string>& violations)
      : pick_(pick),
        to_action_(to_action),
        violations_(violations),
        defers_left_(opts.defer_bound),
        extra_tx_left_(opts.extra_tx_bound) {}

  int choose(long /*physical_round*/,
             const std::vector<congest::SchedChoice>& enabled) override {
    using Kind = congest::SchedChoice::Kind;
    std::vector<int> offered;  // index into `enabled`
    std::vector<Action> actions;
    for (int i = 0; i < static_cast<int>(enabled.size()); ++i) {
      const congest::SchedChoice& c = enabled[i];
      if (c.kind == Kind::kDefer && defers_left_ <= 0) continue;
      if (c.kind == Kind::kRetransmit && extra_tx_left_ <= 0) continue;
      offered.push_back(i);
      actions.push_back(to_action_(c));
    }
    if (offered.empty()) return -1;  // only budget-exhausted options left
    const int picked = pick_(actions);
    if (picked < 0) return -1;
    const congest::SchedChoice& taken = enabled[offered[picked]];
    if (taken.kind == Kind::kDefer) defers_left_ -= 1;
    if (taken.kind == Kind::kRetransmit) extra_tx_left_ -= 1;
    return offered[picked];
  }

  void note_violation(const std::string& what) override {
    violations_.push_back(what);
  }

 private:
  const PickFn& pick_;
  const std::function<Action(const congest::SchedChoice&)>& to_action_;
  std::vector<std::string>& violations_;
  int defers_left_;
  int extra_tx_left_;
};

}  // namespace

ChurnSystem::ChurnSystem(ChurnScenario scenario, Options options)
    : scenario_(std::move(scenario)), options_(options) {}

Action ChurnSystem::to_action(const congest::SchedChoice& c) const {
  Action a;
  a.key = c.key();
  a.label = c.label();
  using Kind = congest::SchedChoice::Kind;
  a.tag = static_cast<int>(c.kind);
  a.optional_action = c.kind == Kind::kDefer || c.kind == Kind::kRetransmit;
  if (c.kind == Kind::kCrash) {
    a.crash = true;
    a.u = static_cast<int>(c.src);
    a.process = kCrashProcessBase + static_cast<int>(c.src);
  } else {
    a.u = static_cast<int>(c.src);
    a.v = static_cast<int>(c.dst);
    a.process = c.link;
  }
  return a;
}

Execution ChurnSystem::run(const PickFn& pick) {
  Execution e;
  std::function<Action(const congest::SchedChoice&)> conv =
      [this](const congest::SchedChoice& c) { return to_action(c); };
  Hook hook(options_, pick, conv, e.violations);

  churn::Options copts;
  copts.d = scenario_.d;
  copts.verify = scenario_.verify;
  copts.net.max_rounds = scenario_.max_rounds;
  copts.net.stall_quiet_rounds = scenario_.stall_quiet_rounds;
  copts.net.faults = scenario_.plan;  // engages the hooked transport path
  copts.net.scheduler = &hook;

  churn::ChurnEngine engine(scenario_.graph, scenario_.query, copts);
  std::vector<churn::StepOutcome> outs;
  try {
    outs = engine.run(scenario_.script);
  } catch (const std::exception& ex) {
    // Churn degradation is structured (StepStatus::kDegraded); an escaped
    // exception is itself the bug. PruneExecution is not a std::exception
    // and passes through to the explorer untouched.
    e.violations.push_back(std::string("churn engine exception: ") +
                           ex.what());
    e.outcome = "exception";
    return e;
  }

  std::uint64_t digest = kFnvBasis;
  bool degraded = false;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const churn::StepOutcome& out = outs[i];
    const std::string epoch = "epoch " + std::to_string(i);
    if (!out.ok()) {
      degraded = true;
      // RunOutcome taxonomy: a degraded epoch must carry the degraded
      // network outcome that defeated it, never a completed one.
      if (out.run.status == congest::RunStatus::kCompleted)
        e.violations.push_back(
            epoch + " degraded with a completed RunOutcome (taxonomy)");
      if (scenario_.must_complete)
        e.violations.push_back(epoch + " degraded (" +
                               congest::to_string(out.run.status) +
                               ") under a lossless fault plan");
      continue;
    }
    if (out.verified && !out.digest_ok)
      e.violations.push_back(
          epoch + ": incremental digest diverged from the from-scratch "
                  "oracle under this schedule (" +
          out.note + ")");
    // Fold only schedule-independent facts: the verdict digest, how the
    // epoch was obtained, and the refold footprint (the repair runs
    // coordinator-side on the graph alone). Round counts legitimately
    // vary with defers/retransmits and stay out.
    digest = fold64(digest, out.digest);
    digest = fold64(digest, static_cast<std::uint64_t>(out.status));
    digest = fold64(digest, static_cast<std::uint64_t>(out.refold_count));
  }

  e.outcome = degraded ? "degraded" : "completed";
  e.digest = digest;
  e.digest_valid = scenario_.check_digest;
  return e;
}

bool ChurnSystem::dependent(const Action& a, const Action& b) const {
  // Same relation as CongestSystem: every epoch's network is the same
  // reliable-transport runtime, and choice points of different epochs are
  // causally ordered (the networks run sequentially), so per-epoch edge
  // reasoning carries over unchanged.
  if (a.process == b.process) return true;
  if (a.crash && b.crash) return true;
  if (a.crash) return b.u == a.u || b.v == a.u;
  if (b.crash) return a.u == b.u || a.v == b.u;
  if (a.u != b.v || a.v != b.u) return false;  // distinct edges commute
  using Kind = congest::SchedChoice::Kind;
  const auto ka = static_cast<Kind>(a.tag), kb = static_cast<Kind>(b.tag);
  return (ka == Kind::kDeliver && kb == Kind::kRetransmit) ||
         (ka == Kind::kRetransmit && kb == Kind::kDeliver);
}

// --- scenarios ---------------------------------------------------------

ChurnScenario scenario_churn_repair() {
  ChurnScenario s;
  s.name = "churn-repair";
  s.description =
      "4-cycle edge deletion under lossless hooked transport: the "
      "incremental repair epoch must complete, digest-match the "
      "from-scratch oracle, and keep its refold footprint on every "
      "interleaving";
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  s.graph = std::move(g);
  s.query.pipeline = churn::Pipeline::kDecision;
  s.query.formula = mso::lib::triangle_free();
  // Deleting a cycle edge leaves the 4-path: connectivity holds, td stays
  // within budget, and the repair takes the rule-3 (edge change) path.
  s.script = churn::parse_churn_script("del=0-1");
  s.d = 3;
  return s;
}

ChurnScenario scenario_churn_crash() {
  ChurnScenario s = scenario_churn_repair();
  s.name = "churn-crash";
  s.description =
      "churn-repair with node 1 crash-stopping at round 2 in every epoch "
      "network: each epoch either completes or degrades with the crash "
      "taxonomy, at every explored crash position";
  s.plan.crashes.push_back(congest::CrashFault{1, 2});
  // Where the crash lands among the deliveries decides which epochs (and
  // which fallbacks) survive; only the taxonomy invariants hold.
  s.must_complete = false;
  s.check_digest = false;
  s.verify = false;
  return s;
}

}  // namespace dmc::mc
