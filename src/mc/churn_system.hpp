// Churn-repair model-checking scenarios (dmc-mc).
//
// A ChurnScenario runs a full churn::ChurnEngine episode — init, then one
// scripted mutation batch per epoch, each with incremental elimination-tree
// repair and cache replay — on the reliable-transport fault path with a
// SchedulerHook installed. Every frame delivery, link defer, early
// retransmit firing, and crash position across *all* of the episode's
// epoch networks becomes a choice point the explorer drives; the clean
// oracle networks the engine uses for digest verification are deliberately
// schedule-free (verify_step copies only the id seed), so the oracle is a
// fixed reference inside every interleaving.
//
// Invariants checked on each execution:
//   - no exception escapes the engine (structured degradation only);
//   - a degraded epoch carries a degraded RunOutcome status (taxonomy);
//   - a completed, oracle-verified epoch digest-matches the from-scratch
//     recomputation (repair is never silently wrong under adversarial
//     schedules);
//   - for lossless scenarios (must_complete): every epoch completes and
//     verifies, and the episode digest is schedule-independent.
//
// DPOR structure is inherited from the congest model: the process of a
// link action is its directed link, opposite directions of one edge are
// dependent through the piggybacked-ack state, crashes are dependent with
// every action on an incident edge. Choice points from different epochs
// never race (epoch networks are constructed and torn down sequentially),
// which DPOR discovers by itself — the vector-clock ordering makes every
// cross-epoch pair causally related.
#pragma once

#include <string>

#include "churn/engine.hpp"
#include "churn/script.hpp"
#include "congest/faults.hpp"
#include "congest/sched_hook.hpp"
#include "graph/graph.hpp"
#include "mc/explorer.hpp"

namespace dmc::mc {

struct ChurnScenario {
  std::string name;
  std::string description;
  Graph graph;
  churn::Query query;
  churn::ChurnScript script;
  congest::FaultPlan plan;  // lossless by default; crashes are explored
  int d = 2;
  /// Lossless scenarios must complete and verify every epoch; crash
  /// scenarios legitimately degrade depending on where the crash lands.
  bool must_complete = true;
  /// Off when the outcome is schedule-dependent (crash positioning).
  bool check_digest = true;
  /// Per-epoch from-scratch oracle comparison inside each execution
  /// (churn::Options::verify). The oracle networks are schedule-free, so
  /// this pins every interleaving to one external reference — keep it on
  /// for lossless scenarios, off for crash ones (verify only runs on
  /// completed epochs anyway, and crash episodes rarely complete).
  bool verify = true;
  int max_rounds = 2048;
  int stall_quiet_rounds = 4;
};

class ChurnSystem : public System {
 public:
  struct Options {
    int defer_bound = 1;
    int extra_tx_bound = 1;
  };

  ChurnSystem(ChurnScenario scenario, Options options);

  Execution run(const PickFn& pick) override;
  bool dependent(const Action& a, const Action& b) const override;
  std::string name() const override { return scenario_.name; }

 private:
  Action to_action(const congest::SchedChoice& choice) const;

  ChurnScenario scenario_;
  Options options_;
};

/// The built-in churn scenarios (registered in scenarios.cpp):
ChurnScenario scenario_churn_repair();
ChurnScenario scenario_churn_crash();

}  // namespace dmc::mc
