#include "mc/congest_system.hpp"

#include <any>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

#include "congest/fragment.hpp"
#include "congest/sched_hook.hpp"

namespace dmc::mc {

namespace {

std::uint64_t fold64(std::uint64_t h, std::uint64_t x) {
  h ^= x;
  h *= 1099511628211ull;
  return h;
}

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;

/// Crash processes live above every edge process (scenario graphs are
/// tiny; edge ids are small).
constexpr int kCrashProcessBase = 1'000'000;

// --- transport-pair programs -------------------------------------------

/// Silent round 0 (markers only), then one small payload. The silent
/// round is what arms the planted-bug trigger: the round-0 marker's
/// retransmit copy is the stale frame that can overtake round 1's
/// payload frame.
class PairSender : public congest::NodeProgram {
 public:
  void on_round(congest::NodeCtx& ctx) override {
    if (ctx.round() == 1)
      ctx.send(0, congest::Message(std::int64_t{42}, 16));
  }
  bool done(const congest::NodeCtx& ctx) const override {
    return ctx.round() >= 2;
  }
};

class PairReceiver : public congest::NodeProgram {
 public:
  std::int64_t value = -1;
  int receives = 0;

  void on_round(congest::NodeCtx& ctx) override {
    const auto* msg = ctx.recv(0);
    if (msg == nullptr) return;
    if (const auto* v = std::any_cast<std::int64_t>(&msg->value)) {
      value = *v;
      receives += 1;
    }
  }
  bool done(const congest::NodeCtx&) const override { return receives > 0; }
};

// --- transport-chain3 programs -----------------------------------------

/// Path 0 - 1 - 2: node 0 fragments a 100-bit logical payload to node 1,
/// which reassembles, increments, and forwards it (again fragmented) to
/// node 2. Exercises chunk sequencing under adversarial delivery orders;
/// the reassembler must commit each logical message exactly once.
class FragSource : public congest::NodeProgram {
 public:
  FragSource(VertexId to, std::int64_t value, long bits)
      : to_(to), value_(value), bits_(bits) {}

  void on_round(congest::NodeCtx& ctx) override {
    if (ctx.round() == 0) sender_.enqueue(ctx.port_of(to_), value_, bits_);
    sender_.pump(ctx);
  }
  bool done(const congest::NodeCtx& ctx) const override {
    return ctx.round() > 0 && sender_.idle();
  }

 private:
  VertexId to_;
  std::int64_t value_;
  long bits_;
  congest::FragmentSender sender_;
};

class FragRelay : public congest::NodeProgram {
 public:
  FragRelay(VertexId from, VertexId to)
      : from_(from), to_(to) {}

  std::int64_t value = -1;
  int commits = 0;

  void on_round(congest::NodeCtx& ctx) override {
    if (auto v = rx_.poll(ctx, ctx.port_of(from_))) {
      commits += 1;
      if (commits == 1) {
        value = std::any_cast<std::int64_t>(*v);
        tx_.enqueue(ctx.port_of(to_), value + 1, 100);
      }
    }
    tx_.pump(ctx);
  }
  bool done(const congest::NodeCtx&) const override {
    return commits > 0 && tx_.idle();
  }

 private:
  VertexId from_, to_;
  congest::FragmentReassembler rx_;
  congest::FragmentSender tx_;
};

class FragSink : public congest::NodeProgram {
 public:
  explicit FragSink(VertexId from) : from_(from) {}

  std::int64_t value = -1;
  int commits = 0;

  void on_round(congest::NodeCtx& ctx) override {
    if (auto v = rx_.poll(ctx, ctx.port_of(from_))) {
      commits += 1;
      value = std::any_cast<std::int64_t>(*v);
    }
  }
  bool done(const congest::NodeCtx&) const override { return commits > 0; }

 private:
  VertexId from_;
  congest::FragmentReassembler rx_;
};

// --- transport-crash3 program ------------------------------------------

/// Every node floods its id to all neighbors for three rounds. Trivially
/// correct; the scenario is about the RunOutcome taxonomy when a crash
/// lands at an explorer-chosen position among the deliveries.
class FloodProgram : public congest::NodeProgram {
 public:
  void on_round(congest::NodeCtx& ctx) override {
    if (ctx.round() >= 3) return;
    for (int port = 0; port < ctx.degree(); ++port)
      ctx.send(port,
               congest::Message(static_cast<std::int64_t>(ctx.id()), 16));
  }
  bool done(const congest::NodeCtx& ctx) const override {
    return ctx.round() >= 3;
  }
};

}  // namespace

// --- the System --------------------------------------------------------

CongestSystem::CongestSystem(CongestScenario scenario, Options options)
    : scenario_(std::move(scenario)), options_(options) {}

Action CongestSystem::to_action(const congest::SchedChoice& c) const {
  Action a;
  a.key = c.key();
  a.label = c.label();
  using Kind = congest::SchedChoice::Kind;
  a.tag = static_cast<int>(c.kind);
  a.optional_action = c.kind == Kind::kDefer || c.kind == Kind::kRetransmit;
  if (c.kind == Kind::kCrash) {
    a.crash = true;
    a.u = static_cast<int>(c.src);
    a.process = kCrashProcessBase + static_cast<int>(c.src);
  } else {
    a.u = static_cast<int>(c.src);
    a.v = static_cast<int>(c.dst);
    // Process = directed link. The opposite direction shares the edge's
    // ack state, so dependent() pairs the two directions explicitly —
    // they are separate processes (no program order between them) whose
    // interleavings must all be explored.
    a.process = c.link;
  }
  return a;
}

namespace {

/// SchedulerHook adapter: converts choice sets to mc::Actions, enforces
/// the per-execution adversary budgets by filtering optional offers
/// *before* the choice point is recorded (so budget-exhausted offers
/// never even appear in the schedule tree), and forwards runtime
/// invariant breaches into the execution's violation list.
class Hook : public congest::SchedulerHook {
 public:
  Hook(const CongestSystem::Options& opts, const PickFn& pick,
       const std::function<Action(const congest::SchedChoice&)>& to_action,
       std::vector<std::string>& violations)
      : pick_(pick),
        to_action_(to_action),
        violations_(violations),
        defers_left_(opts.defer_bound),
        extra_tx_left_(opts.extra_tx_bound) {}

  int choose(long /*physical_round*/,
             const std::vector<congest::SchedChoice>& enabled) override {
    using Kind = congest::SchedChoice::Kind;
    std::vector<int> offered;  // index into `enabled`
    std::vector<Action> actions;
    for (int i = 0; i < static_cast<int>(enabled.size()); ++i) {
      const congest::SchedChoice& c = enabled[i];
      if (c.kind == Kind::kDefer && defers_left_ <= 0) continue;
      if (c.kind == Kind::kRetransmit && extra_tx_left_ <= 0) continue;
      offered.push_back(i);
      actions.push_back(to_action_(c));
    }
    if (offered.empty()) return -1;  // only budget-exhausted options left
    const int picked = pick_(actions);
    if (picked < 0) return -1;
    const congest::SchedChoice& taken = enabled[offered[picked]];
    if (taken.kind == Kind::kDefer) defers_left_ -= 1;
    if (taken.kind == Kind::kRetransmit) extra_tx_left_ -= 1;
    return offered[picked];
  }

  void note_violation(const std::string& what) override {
    violations_.push_back(what);
  }

 private:
  const PickFn& pick_;
  const std::function<Action(const congest::SchedChoice&)>& to_action_;
  std::vector<std::string>& violations_;
  int defers_left_;
  int extra_tx_left_;
};

}  // namespace

Execution CongestSystem::run(const PickFn& pick) {
  Execution e;
  std::function<Action(const congest::SchedChoice&)> conv =
      [this](const congest::SchedChoice& c) { return to_action(c); };
  Hook hook(options_, pick, conv, e.violations);

  congest::NetworkConfig cfg;
  cfg.audit = scenario_.audit;
  cfg.max_rounds = scenario_.max_rounds;
  cfg.stall_quiet_rounds = scenario_.stall_quiet_rounds;
  congest::FaultPlan plan;  // lossless links: nondeterminism is the hook's
  plan.crashes = scenario_.crashes;
  plan.mc_planted_ack_before_dup_check = scenario_.planted_bug;
  cfg.faults = plan;
  cfg.scheduler = &hook;

  congest::Network net(scenario_.graph, cfg);
  auto programs = scenario_.make_programs();
  congest::RunOutcome outcome;
  try {
    outcome = net.run_outcome(programs);
  } catch (const std::exception& ex) {
    // Audit failures (declared-vs-encoded bit mismatch) and transport
    // assertions surface here; PruneExecution passes through untouched.
    e.violations.push_back(std::string("transport exception: ") + ex.what());
    e.outcome = "exception";
    return e;
  }

  e.outcome = congest::to_string(outcome.status);
  std::uint64_t digest = kFnvBasis;
  scenario_.check(outcome, programs, e.violations, digest);
  // Fold the logical traffic totals: the protocol-level message count and
  // declared bits must not depend on the delivery schedule (retransmitted
  // *frames* may; those are excluded deliberately).
  digest = fold64(digest, static_cast<std::uint64_t>(net.stats().messages));
  digest =
      fold64(digest, static_cast<std::uint64_t>(net.stats().total_bits));
  e.digest = digest;
  e.digest_valid = scenario_.check_digest;
  return e;
}

bool CongestSystem::dependent(const Action& a, const Action& b) const {
  if (a.process == b.process) return true;
  if (a.crash && b.crash) return true;
  if (a.crash) return b.u == a.u || b.v == a.u;
  if (b.crash) return a.u == b.u || a.v == b.u;
  if (a.u != b.v || a.v != b.u) return false;  // distinct edges commute
  // Opposite directions of one edge. Delivering A->B writes B's channel
  // state that the reverse direction *retransmit* reads (the piggybacked
  // ack marks B->A acked; ack_seq echoes A->B's delivered flag), so
  // deliver x reverse-retransmit is a race. Opposite deliveries touch
  // disjoint fields (own `delivered`/deposit; `acked` is only ever set)
  // and commute, as do opposite retransmits and anything with a defer
  // (defers only shift their own link's due times).
  using Kind = congest::SchedChoice::Kind;
  const auto ka = static_cast<Kind>(a.tag), kb = static_cast<Kind>(b.tag);
  return (ka == Kind::kDeliver && kb == Kind::kRetransmit) ||
         (ka == Kind::kRetransmit && kb == Kind::kDeliver);
}

// --- scenarios ---------------------------------------------------------

CongestScenario scenario_transport_pair(bool planted_bug) {
  CongestScenario s;
  s.name = planted_bug ? "transport-pair-planted" : "transport-pair";
  s.description =
      planted_bug
          ? "2-node payload handoff with the planted stale-ack ordering bug "
            "(dmc-mc --self-check must find it)"
          : "2-node payload handoff; delivery exactly once, digest equal on "
            "every interleaving";
  Graph g(2);
  g.add_edge(0, 1);
  s.graph = std::move(g);
  s.planted_bug = planted_bug;
  // The buggy schedule stalls the receiver forever; digests diverge by
  // construction, so only the oracle + runtime invariants apply.
  s.check_digest = !planted_bug;
  s.make_programs = [] {
    std::vector<std::unique_ptr<congest::NodeProgram>> p;
    p.push_back(std::make_unique<PairSender>());
    p.push_back(std::make_unique<PairReceiver>());
    return p;
  };
  s.check = [](const congest::RunOutcome& out,
               const std::vector<std::unique_ptr<congest::NodeProgram>>& p,
               std::vector<std::string>& violations, std::uint64_t& digest) {
    const auto* rx = dynamic_cast<const PairReceiver*>(p[1].get());
    if (out.ok()) {
      if (rx->receives != 1)
        violations.push_back("payload delivered " +
                             std::to_string(rx->receives) +
                             " times (expected exactly once)");
      else if (rx->value != 42)
        violations.push_back("payload corrupted in transit: got " +
                             std::to_string(rx->value) + ", sent 42");
    } else {
      violations.push_back(std::string("transport run degraded: ") +
                           congest::to_string(out.status) +
                           " (lossless links must complete)");
    }
    digest = fold64(digest, static_cast<std::uint64_t>(out.virtual_rounds));
    digest = fold64(digest, static_cast<std::uint64_t>(rx->value + 2));
    digest = fold64(digest, static_cast<std::uint64_t>(rx->receives));
  };
  return s;
}

CongestScenario scenario_transport_chain3() {
  CongestScenario s;
  s.name = "transport-chain3";
  s.description =
      "3-node fragment relay (100-bit logical payloads); each message "
      "reassembles exactly once, value survives the two hops";
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  s.graph = std::move(g);
  s.max_rounds = 96;
  s.make_programs = [] {
    std::vector<std::unique_ptr<congest::NodeProgram>> p;
    p.push_back(std::make_unique<FragSource>(1, std::int64_t{777}, 100));
    p.push_back(std::make_unique<FragRelay>(0, 2));
    p.push_back(std::make_unique<FragSink>(1));
    return p;
  };
  s.check = [](const congest::RunOutcome& out,
               const std::vector<std::unique_ptr<congest::NodeProgram>>& p,
               std::vector<std::string>& violations, std::uint64_t& digest) {
    const auto* relay = dynamic_cast<const FragRelay*>(p[1].get());
    const auto* sink = dynamic_cast<const FragSink*>(p[2].get());
    if (out.ok()) {
      if (relay->commits != 1)
        violations.push_back("relay committed the logical message " +
                             std::to_string(relay->commits) +
                             " times (expected exactly once)");
      if (sink->commits != 1)
        violations.push_back("sink committed the logical message " +
                             std::to_string(sink->commits) +
                             " times (expected exactly once)");
      else if (sink->value != 778)
        violations.push_back("relayed value wrong: got " +
                             std::to_string(sink->value) + ", expected 778");
    } else {
      violations.push_back(std::string("transport run degraded: ") +
                           congest::to_string(out.status) +
                           " (lossless links must complete)");
    }
    digest = fold64(digest, static_cast<std::uint64_t>(out.virtual_rounds));
    digest = fold64(digest, static_cast<std::uint64_t>(sink->value + 2));
    digest = fold64(digest, static_cast<std::uint64_t>(relay->commits));
    digest = fold64(digest, static_cast<std::uint64_t>(sink->commits));
  };
  return s;
}

CongestScenario scenario_transport_crash3() {
  CongestScenario s;
  s.name = "transport-crash3";
  s.description =
      "3-node id flood with node 2 crash-stopping at round 3; every crash "
      "position must yield the kCrashed outcome taxonomy";
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  s.graph = std::move(g);
  s.crashes.push_back(congest::CrashFault{2, 3});
  // Where the crash lands among the deliveries legitimately changes what
  // the survivors received; only the taxonomy invariants below hold.
  s.check_digest = false;
  s.make_programs = [] {
    std::vector<std::unique_ptr<congest::NodeProgram>> p;
    for (int i = 0; i < 3; ++i) p.push_back(std::make_unique<FloodProgram>());
    return p;
  };
  s.check = [](const congest::RunOutcome& out,
               const std::vector<std::unique_ptr<congest::NodeProgram>>&,
               std::vector<std::string>& violations, std::uint64_t& digest) {
    if (out.status == congest::RunStatus::kCompleted)
      violations.push_back(
          "crash scheduled inside the run but outcome is completed "
          "(RunOutcome taxonomy violated)");
    bool crashed2 = false;
    for (VertexId v : out.crashed) crashed2 |= (v == 2);
    if (out.status == congest::RunStatus::kCrashed && !crashed2)
      violations.push_back(
          "kCrashed outcome without node 2 in the crashed set");
    digest = 0;
  };
  return s;
}

}  // namespace dmc::mc
