// CONGEST-layer model-checking scenarios (dmc-mc).
//
// A CongestScenario is a tiny 2–4-node protocol run on the
// reliable-transport fault path with a SchedulerHook installed
// (congest/sched_hook.hpp): every frame delivery, link defer, early
// retransmit-timer firing, and crash event becomes a choice point the
// explorer (explorer.hpp) drives. Each execution constructs a fresh
// Network — stateless replay — and ends with the scenario's oracle check
// plus a canonical digest (protocol outputs, virtual rounds, logical
// message/bit totals) that must be identical on every interleaving
// whenever the scenario declares its outcome schedule-independent.
//
// DPOR structure: the *process* of a link action (deliver / defer /
// retransmit) is its directed link. Delivery on a link also touches the
// reverse channel's piggybacked-ack state, so the two directions of one
// edge are dependent (distinct processes — no program order relates
// them) while distinct edges commute. A crash's process is the crashed
// node; it is dependent with every action on an incident edge. Adversary
// budgets (defers and extra transmissions per execution) keep the
// optional-action branching finite.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "congest/sched_hook.hpp"
#include "graph/graph.hpp"
#include "mc/explorer.hpp"

namespace dmc::mc {

struct CongestScenario {
  std::string name;
  std::string description;
  Graph graph;  // node ids are graph vertices (id_seed 0)
  std::vector<congest::CrashFault> crashes;
  /// Wire-format audit on every interleaving (declared-vs-encoded bits).
  bool audit = true;
  /// dmc-mc --self-check: engage the planted ordering bug
  /// (congest::FaultPlan::mc_planted_ack_before_dup_check).
  bool planted_bug = false;
  /// Off when the outcome legitimately depends on the schedule (crash
  /// positioning); the oracle `check` is then the only cross-schedule
  /// invariant.
  bool check_digest = true;
  int max_rounds = 48;
  int stall_quiet_rounds = 4;
  std::function<std::vector<std::unique_ptr<congest::NodeProgram>>()>
      make_programs;
  /// Oracle: inspects the outcome and final program states, appends
  /// violations, and produces the scenario part of the digest.
  std::function<void(const congest::RunOutcome&,
                     const std::vector<std::unique_ptr<congest::NodeProgram>>&,
                     std::vector<std::string>&, std::uint64_t&)>
      check;
};

class CongestSystem : public System {
 public:
  struct Options {
    /// Per-execution adversary budgets: how many link-hold choices and
    /// early retransmit firings a schedule may contain. Offers beyond the
    /// budget are filtered before the choice point is recorded, so the
    /// schedule space stays finite.
    int defer_bound = 1;
    int extra_tx_bound = 1;
  };

  CongestSystem(CongestScenario scenario, Options options);

  Execution run(const PickFn& pick) override;
  bool dependent(const Action& a, const Action& b) const override;
  std::string name() const override { return scenario_.name; }

 private:
  Action to_action(const congest::SchedChoice& choice) const;

  CongestScenario scenario_;
  Options options_;
};

/// The built-in congest scenarios (see scenarios.cpp for the registry):
CongestScenario scenario_transport_pair(bool planted_bug);
CongestScenario scenario_transport_chain3();
CongestScenario scenario_transport_crash3();

}  // namespace dmc::mc
