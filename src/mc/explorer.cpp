// DPOR exploration driver (see explorer.hpp for the algorithm sketch).
#include "mc/explorer.hpp"

#include <map>
#include <set>
#include <stdexcept>
#include <utility>

namespace dmc::mc {

namespace {

int default_choice(const std::vector<Action>& enabled) {
  for (int i = 0; i < static_cast<int>(enabled.size()); ++i)
    if (!enabled[i].optional_action) return i;
  return -1;  // all optional: decline
}

/// One node of the (implicit) schedule tree, kept only along the current
/// DFS path — the stateless-exploration memory footprint is O(depth).
struct Node {
  std::vector<Action> enabled;
  int chosen = -1;
  std::set<int> backtrack;                 // processes still to explore
  std::set<std::uint64_t> force;           // optional actions to branch into
  std::map<std::uint64_t, Action> done;    // actions already explored here
  std::map<std::uint64_t, Action> sleep;   // covered by earlier siblings
};

class Driver {
 public:
  Driver(System& sys, const ExplorerOptions& o) : sys_(sys), o_(o) {}

  ExploreResult go() {
    run_one(0);
    dfs(0);
    return std::move(result_);
  }

 private:
  bool stopped() const {
    return result_.hit_schedule_cap ||
           (o_.stop_on_violation && result_.violations > 0);
  }

  /// Sleep set a fresh node at depth d inherits: the parent's sleep and
  /// already-explored siblings, minus everything dependent on the action
  /// the parent just took (a dependent action "wakes up").
  std::map<std::uint64_t, Action> inherited_sleep(std::size_t d) const {
    std::map<std::uint64_t, Action> out;
    if (d == 0 || !o_.dpor) return out;
    const Node& parent = stack_[d - 1];
    const Action* taken =
        parent.chosen >= 0 ? &parent.enabled[parent.chosen] : nullptr;
    auto keep = [&](const std::pair<const std::uint64_t, Action>& e) {
      if (taken != nullptr && e.first == taken->key) return;
      if (taken != nullptr && sys_.dependent(e.second, *taken)) return;
      out.emplace(e.first, e.second);
    };
    for (const auto& e : parent.sleep) keep(e);
    for (const auto& e : parent.done) keep(e);
    return out;
  }

  int pick(const std::vector<Action>& enabled) {
    const std::size_t d = depth_;
    if (static_cast<int>(d) >= o_.depth_bound) throw PruneExecution{};
    if (d < follow_) {
      // Replaying the established prefix: the System must be
      // deterministic, so the enabled set must match what we recorded.
      Node& nd = stack_[d];
      if (nd.enabled.size() != enabled.size() ||
          (nd.chosen >= 0 && enabled[nd.chosen].key !=
                                 nd.enabled[nd.chosen].key))
        throw std::runtime_error(
            "mc explorer: nondeterministic replay at choice point " +
            std::to_string(d) + " of " + sys_.name());
      depth_ += 1;
      return nd.chosen;
    }
    Node nd;
    nd.enabled = enabled;
    nd.sleep = inherited_sleep(d);
    // Default policy: the first mandatory action not known to be covered
    // by an earlier sibling branch; every-mandatory-asleep falls back to
    // the first one (conservative: we never prune a continuation, sleep
    // sets only stop us *branching* into covered actions).
    int choice = -1, fallback = -1;
    for (int i = 0; i < static_cast<int>(enabled.size()); ++i) {
      if (enabled[i].optional_action) continue;
      if (fallback < 0) fallback = i;
      if (nd.sleep.find(enabled[i].key) == nd.sleep.end()) {
        choice = i;
        break;
      }
    }
    if (choice < 0) choice = fallback;
    nd.chosen = choice;
    if (choice >= 0) nd.done.emplace(enabled[choice].key, enabled[choice]);
    // Branch seeding. DPOR: optional (adversary-injected) actions never
    // occur in default runs and hence never appear in races — branch into
    // each of them directly, by key (seeding their *process* would drag
    // every mandatory alternative of the process along and degenerate to
    // full enumeration; the System's budgets bound the per-key seeding).
    // Full enumeration: every process, everywhere.
    for (const Action& a : enabled) {
      if (!o_.dpor)
        nd.backtrack.insert(a.process);
      else if (a.optional_action)
        nd.force.insert(a.key);
    }
    if (o_.dpor && choice >= 0) seed_coenabled(nd, enabled[choice]);
    stack_.push_back(std::move(nd));
    depth_ += 1;
    return choice;
  }

  /// Persistent-set seeding at the choice point itself: every enabled
  /// action of another process that is dependent with the taken one gets
  /// its process backtracked. Pure race analysis over *executed* actions
  /// cannot see these when the taken action disables its rival — e.g. a
  /// crash clears the in-flight frames of incident links, so the
  /// deliver-before-crash order never shows up as an executed race.
  void seed_coenabled(Node& nd, const Action& taken) {
    for (const Action& a : nd.enabled)
      if (a.process != taken.process && sys_.dependent(a, taken))
        nd.backtrack.insert(a.process);
  }

  /// Executes the System following stack_[0..follow) and materializing
  /// fresh nodes beyond; accounts the execution and runs race analysis.
  void run_one(std::size_t follow) {
    depth_ = 0;
    follow_ = follow;
    bool pruned = false;
    Execution e;
    try {
      e = sys_.run([this](const std::vector<Action>& en) { return pick(en); });
    } catch (const PruneExecution&) {
      pruned = true;
    } catch (const std::exception& ex) {
      e.violations.push_back(std::string("uncaught exception: ") + ex.what());
      e.outcome = "exception";
    }
    // A branch may end shallower than the prefix that spawned it (e.g. a
    // crash choice shortens the run): drop nodes the run never reached.
    if (stack_.size() > depth_) stack_.resize(depth_);
    if (static_cast<long>(depth_) > result_.max_depth)
      result_.max_depth = static_cast<long>(depth_);
    if (pruned) {
      result_.pruned += 1;
    } else {
      result_.schedules += 1;
      if (result_.schedules >= o_.max_schedules)
        result_.hit_schedule_cap = true;
      if (e.digest_valid) {
        if (!result_.have_reference_digest) {
          result_.have_reference_digest = true;
          result_.reference_digest = e.digest;
        } else if (e.digest != result_.reference_digest) {
          result_.digest_divergence = true;
          e.violations.push_back(
              "digest divergence: schedule-dependent outcome (got " +
              std::to_string(e.digest) + ", reference " +
              std::to_string(result_.reference_digest) + ")");
        }
      }
    }
    if (!e.violations.empty()) {
      result_.violations += static_cast<long>(e.violations.size());
      if (static_cast<int>(result_.counterexamples.size()) <
          o_.max_counterexamples) {
        Counterexample cx;
        for (const Node& nd : stack_)
          cx.steps.push_back(Step{nd.enabled, nd.chosen});
        cx.violations = e.violations;
        cx.outcome = e.outcome;
        result_.counterexamples.push_back(std::move(cx));
      }
    }
    if (o_.dpor) race_analysis(follow);
  }

  /// For every freshly executed action, find the latest earlier dependent
  /// action of a different process — a race: both orders may matter — and
  /// add the later action's process to the earlier node's backtrack set.
  void race_analysis(std::size_t follow) {
    for (std::size_t j = follow == 0 ? 1 : follow; j < stack_.size(); ++j) {
      const Node& nj = stack_[j];
      if (nj.chosen < 0) continue;
      const Action& aj = nj.enabled[nj.chosen];
      for (std::size_t i = j; i-- > 0;) {
        Node& ni = stack_[i];
        if (ni.chosen < 0) continue;
        const Action& ai = ni.enabled[ni.chosen];
        if (!sys_.dependent(ai, aj)) continue;
        // Same process: aj is causally after ai, no race (and anything
        // before ai is shadowed). Different process: a reversible race.
        if (ai.process != aj.process) {
          bool proc_enabled_at_i = false;
          for (const Action& a : ni.enabled)
            if (a.process == aj.process) {
              proc_enabled_at_i = true;
              break;
            }
          if (proc_enabled_at_i) {
            ni.backtrack.insert(aj.process);
          } else {
            // aj's process was not yet enabled at i: explore the enabled
            // processes dependent with aj. (The classic fallback adds
            // *every* enabled process; in these systems enabling is
            // order-insensitive across independent processes — the
            // transport barrier needs all links delivered in any order,
            // a serve Take is enabled by queue-dependent Submits — so
            // independent reversals reach equivalent states and only the
            // dependent ones can matter.)
            for (const Action& a : ni.enabled)
              if (sys_.dependent(a, aj)) ni.backtrack.insert(a.process);
          }
        }
        break;
      }
    }
  }

  void dfs(std::size_t d) {
    if (stopped() || d >= stack_.size()) return;
    dfs(d + 1);
    for (;;) {
      if (stopped()) return;
      int idx = -1;
      {
        Node& nd = stack_[d];
        for (int i = 0; i < static_cast<int>(nd.enabled.size()); ++i) {
          const Action& a = nd.enabled[i];
          if (nd.backtrack.find(a.process) == nd.backtrack.end() &&
              nd.force.find(a.key) == nd.force.end())
            continue;
          if (nd.done.find(a.key) != nd.done.end()) continue;
          if (nd.sleep.find(a.key) != nd.sleep.end()) continue;
          idx = i;
          break;
        }
        if (idx < 0) return;
        nd.done.emplace(nd.enabled[idx].key, nd.enabled[idx]);
        nd.chosen = idx;
        if (o_.dpor) seed_coenabled(nd, nd.enabled[idx]);
      }
      stack_.resize(d + 1);
      run_one(d + 1);
      dfs(d + 1);
    }
  }

  System& sys_;
  const ExplorerOptions& o_;
  std::vector<Node> stack_;
  std::size_t depth_ = 0;   // choice points taken in the current run
  std::size_t follow_ = 0;  // prefix length the current run must replay
  ExploreResult result_;
};

}  // namespace

ExploreResult explore(System& system, const ExplorerOptions& options) {
  return Driver(system, options).go();
}

std::vector<TraceEntry> to_trace(const std::vector<Step>& steps) {
  std::vector<TraceEntry> out;
  out.reserve(steps.size());
  for (const Step& s : steps) {
    TraceEntry e;
    if (s.chosen < 0) {
      e.decline = true;
    } else {
      e.key = s.enabled[s.chosen].key;
      e.label = s.enabled[s.chosen].label;
    }
    out.push_back(std::move(e));
  }
  return out;
}

ReplayResult replay(System& system, const std::vector<TraceEntry>& trace) {
  ReplayResult r;
  std::size_t depth = 0;
  try {
    r.exec = system.run([&](const std::vector<Action>& enabled) -> int {
      int choice;
      if (depth < trace.size() && !r.diverged) {
        const TraceEntry& want = trace[depth];
        if (want.decline) {
          choice = -1;
        } else {
          choice = -1;
          for (int i = 0; i < static_cast<int>(enabled.size()); ++i)
            if (enabled[i].key == want.key) {
              choice = i;
              break;
            }
          if (choice < 0) {
            r.diverged = true;
            r.divergence = "trace entry " + std::to_string(depth) + " (" +
                           want.label + ") not enabled; falling back to the "
                           "default policy";
            choice = default_choice(enabled);
          }
        }
      } else {
        choice = default_choice(enabled);
      }
      r.steps.push_back(Step{enabled, choice});
      depth += 1;
      return choice;
    });
  } catch (const std::exception& ex) {
    r.exec.violations.push_back(std::string("uncaught exception: ") +
                                ex.what());
    r.exec.outcome = "exception";
  }
  return r;
}

}  // namespace dmc::mc
