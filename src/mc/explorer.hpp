// Stateless model checking with dynamic partial-order reduction (dmc-mc).
//
// A System under test is anything that can re-execute itself from its
// initial state while routing every nondeterministic decision through a
// pick callback: the reliable-transport CONGEST runs (congest_system.*,
// via the SchedulerHook seam of src/congest/sched_hook.hpp) and the serve
// scheduler's admission/deadline/drain state machine (serve_system.*).
// Executions are *replayed*, never checkpointed — the classic stateless
// approach of VeriSoft/SimGrid — so the System needs no snapshot support,
// only determinism: the same picks must produce the same run.
//
// The explorer enumerates bounded schedule spaces depth-first:
//
//   - Each choice point becomes a tree node holding the enabled actions.
//   - Dynamic partial-order reduction (persistent-set flavored): a race —
//     two dependent actions of different processes, the later one enabled
//     at the earlier point — adds the later action's *process* to the
//     earlier node's backtrack set; exploring a process means exploring
//     every enabled action of that process (delivering a link's frame vs.
//     holding it back are alternatives of the same process). Commuting
//     actions on independent processes are explored in one order only —
//     that is the reduction.
//   - Optional (adversary-injected) actions — link defers and early
//     retransmit-timer firings — never occur in a default run and hence
//     never appear in races; each is branched into directly (by action
//     key, so the process's mandatory alternatives are not dragged in),
//     and the budget filtering in the System keeps that finite. Sleep
//     sets prune re-exploring an action that an earlier sibling branch
//     already covered.
//
// Safety checks per execution: System-reported invariant violations,
// uncaught exceptions, and cross-schedule digest equality (the canonical
// end-state digest of the first execution is the reference; any
// divergence is a schedule-dependent outcome). Violating executions are
// captured as counterexamples replayable via sched_trace.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dmc::mc {

/// One schedulable transition at a choice point, in System-neutral form.
struct Action {
  /// Stable semantic identity within its choice point across replays
  /// (never an index; indices are not stable across sibling branches).
  std::uint64_t key = 0;
  /// DPOR process/group id. Actions of one process are mutually
  /// dependent; exploring the process explores all of them.
  int process = 0;
  /// Optional actions (defers, early retransmits) may be collectively
  /// declined at a choice point; mandatory ones (deliveries, crashes)
  /// may not.
  bool optional_action = false;
  /// Crash-like: dependent with every action touching node `u`.
  bool crash = false;
  /// Touched node ids, -1 when not node-scoped (serve model).
  int u = -1, v = -1;
  /// System-private discriminator (the action kind), for dependence
  /// relations finer than process identity.
  int tag = 0;
  std::string label;
};

/// A recorded choice point: what was enabled, what was taken. chosen == -1
/// means the (all-optional) set was declined.
struct Step {
  std::vector<Action> enabled;
  int chosen = -1;
};

/// Thrown by a pick callback to abandon the current execution (depth
/// bound). Deliberately NOT derived from std::exception so a System's
/// defensive catch blocks let it propagate to the explorer.
struct PruneExecution {};

/// Outcome of one execution, reported by the System.
struct Execution {
  std::vector<std::string> violations;
  std::uint64_t digest = 0;
  /// False when the scenario's outcome is legitimately schedule-dependent
  /// (crash positioning, deadline expiry) and digests must not be compared.
  bool digest_valid = false;
  std::string outcome;
};

using PickFn = std::function<int(const std::vector<Action>&)>;

class System {
 public:
  virtual ~System() = default;
  /// One execution from the initial state; every nondeterministic choice
  /// is resolved by `pick` (whose PruneExecution must propagate).
  /// Deterministic: equal pick sequences must yield equal runs.
  virtual Execution run(const PickFn& pick) = 0;
  virtual bool dependent(const Action& a, const Action& b) const = 0;
  virtual std::string name() const = 0;
};

struct ExplorerOptions {
  /// Off = full enumeration (every process backtracked everywhere, no
  /// sleep sets) — the baseline the reduction factor is measured against.
  bool dpor = true;
  /// Max choice points per execution; deeper runs are pruned (counted,
  /// not explored further).
  int depth_bound = 512;
  /// Hard cap on executions; exploration stops (hit_schedule_cap) there.
  long max_schedules = 20000;
  bool stop_on_violation = false;
  int max_counterexamples = 4;
};

struct Counterexample {
  std::vector<Step> steps;
  std::vector<std::string> violations;
  std::string outcome;
};

struct ExploreResult {
  long schedules = 0;  // completed executions
  long pruned = 0;     // abandoned at the depth bound
  long violations = 0; // violation messages across all executions
  long max_depth = 0;  // deepest choice-point count seen
  bool hit_schedule_cap = false;
  bool digest_divergence = false;
  bool have_reference_digest = false;
  std::uint64_t reference_digest = 0;
  std::vector<Counterexample> counterexamples;

  bool clean() const { return violations == 0 && !digest_divergence; }
};

ExploreResult explore(System& system, const ExplorerOptions& options);

/// One entry of a replayable schedule (sched_trace.hpp round-trips these).
struct TraceEntry {
  bool decline = false;     // the step declined an all-optional set
  std::uint64_t key = 0;    // Action::key of the taken transition
  std::string label;        // human-readable; ignored on replay
};

std::vector<TraceEntry> to_trace(const std::vector<Step>& steps);

struct ReplayResult {
  Execution exec;
  std::vector<Step> steps;  // what actually ran
  bool diverged = false;    // a trace key was absent from the enabled set
  std::string divergence;
};

/// Re-executes one recorded schedule: each trace entry is matched by
/// action key against the enabled set; past the trace end (or on
/// divergence) the default policy applies (first mandatory action, else
/// decline).
ReplayResult replay(System& system, const std::vector<TraceEntry>& trace);

}  // namespace dmc::mc
