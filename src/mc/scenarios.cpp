#include "mc/scenarios.hpp"

#include <functional>
#include <stdexcept>

#include "mc/churn_system.hpp"
#include "mc/congest_system.hpp"
#include "mc/serve_system.hpp"

namespace dmc::mc {

namespace {

struct Entry {
  const char* name;
  const char* description;
  std::function<std::unique_ptr<System>(const ScenarioOptions&)> make;
};

std::unique_ptr<System> make_congest(CongestScenario scenario,
                                     const ScenarioOptions& o) {
  CongestSystem::Options opts;
  opts.defer_bound = o.defer_bound;
  opts.extra_tx_bound = o.extra_tx_bound;
  return std::make_unique<CongestSystem>(std::move(scenario), opts);
}

std::unique_ptr<System> make_churn(ChurnScenario scenario,
                                   const ScenarioOptions& o) {
  ChurnSystem::Options opts;
  opts.defer_bound = o.defer_bound;
  opts.extra_tx_bound = o.extra_tx_bound;
  return std::make_unique<ChurnSystem>(std::move(scenario), opts);
}

const std::vector<Entry>& registry() {
  static const std::vector<Entry> entries = {
      {"transport-pair",
       "2-node reliable-transport payload handoff (delivery exactly once, "
       "schedule-independent digest)",
       [](const ScenarioOptions& o) {
         return make_congest(scenario_transport_pair(false), o);
       }},
      {"transport-chain3",
       "3-node fragment relay over the reliable transport (exactly-once "
       "reassembly across two hops)",
       [](const ScenarioOptions& o) {
         return make_congest(scenario_transport_chain3(), o);
       }},
      {"transport-crash3",
       "3-node flood with a crash-stop fault at an explored position "
       "(RunOutcome taxonomy)",
       [](const ScenarioOptions& o) {
         return make_congest(scenario_transport_crash3(), o);
       }},
      {"transport-pair-planted",
       "transport-pair with the planted stale-ack ordering bug "
       "(--self-check target; needs extra-tx budget >= 1)",
       [](const ScenarioOptions& o) {
         return make_congest(scenario_transport_pair(true), o);
       }},
      {"churn-repair",
       "4-cycle churn epoch (edge deletion + incremental elimination-tree "
       "repair) under hooked lossless transport; oracle digest equality on "
       "every interleaving",
       [](const ScenarioOptions& o) {
         return make_churn(scenario_churn_repair(), o);
       }},
      {"churn-crash",
       "churn-repair with a crash-stop fault at an explored position in "
       "every epoch network (degradation taxonomy, full-recompute "
       "fallback)",
       [](const ScenarioOptions& o) {
         return make_churn(scenario_churn_crash(), o);
       }},
      {"serve-sched",
       "serve scheduler admission/deadline/drain state machine over the "
       "shared GroupQueue core",
       [](const ScenarioOptions&) {
         return std::make_unique<ServeSystem>(ServeSystem::default_config());
       }},
  };
  return entries;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> list_scenarios() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const Entry& e : registry()) out.emplace_back(e.name, e.description);
  return out;
}

std::unique_ptr<System> make_scenario(const std::string& name,
                                      const ScenarioOptions& options) {
  for (const Entry& e : registry())
    if (name == e.name) return e.make(options);
  std::string known;
  for (const Entry& e : registry()) {
    if (!known.empty()) known += ", ";
    known += e.name;
  }
  throw std::invalid_argument("unknown mc scenario '" + name +
                              "' (known: " + known + ")");
}

}  // namespace dmc::mc
