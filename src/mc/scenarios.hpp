// dmc-mc scenario registry: name -> System-under-test factory.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mc/explorer.hpp"

namespace dmc::mc {

/// Bounds the CLI passes through to the congest scenarios (the serve
/// model bounds itself via its tick budget).
struct ScenarioOptions {
  int defer_bound = 1;
  int extra_tx_bound = 1;
};

/// (name, description) of every registered scenario, registry order.
std::vector<std::pair<std::string, std::string>> list_scenarios();

/// Instantiates a scenario by name; throws std::invalid_argument listing
/// the known names on an unknown one.
std::unique_ptr<System> make_scenario(const std::string& name,
                                      const ScenarioOptions& options);

}  // namespace dmc::mc
