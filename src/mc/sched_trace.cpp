#include "mc/sched_trace.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dmc::mc {

namespace {

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[i] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

std::uint64_t parse_hex64(const std::string& s, int line_no) {
  if (s.empty() || s.size() > 16)
    throw std::runtime_error("dmcsched line " + std::to_string(line_no) +
                             ": bad key '" + s + "'");
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9')
      d = c - '0';
    else if (c >= 'a' && c <= 'f')
      d = c - 'a' + 10;
    else
      throw std::runtime_error("dmcsched line " + std::to_string(line_no) +
                               ": bad key '" + s + "'");
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

}  // namespace

std::string format_trace(const SchedTrace& trace) {
  std::ostringstream out;
  out << "dmcsched 1\n";
  out << "scenario " << trace.scenario << "\n";
  for (const auto& [k, v] : trace.options) out << "opt " << k << " " << v
                                               << "\n";
  for (const TraceEntry& e : trace.entries) {
    if (e.decline)
      out << "decline\n";
    else
      out << "choice key=" << hex64(e.key) << " " << e.label << "\n";
  }
  out << "end\n";
  return out.str();
}

SchedTrace parse_trace(const std::string& text) {
  SchedTrace trace;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false, saw_end = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (!saw_header) {
      int version = 0;
      if (tok != "dmcsched" || !(ls >> version) || version != 1)
        throw std::runtime_error("dmcsched line " + std::to_string(line_no) +
                                 ": expected 'dmcsched 1' header");
      saw_header = true;
    } else if (tok == "scenario") {
      ls >> trace.scenario;
    } else if (tok == "opt") {
      std::string k, v;
      ls >> k >> v;
      trace.options.emplace_back(k, v);
    } else if (tok == "decline") {
      trace.entries.push_back(TraceEntry{true, 0, ""});
    } else if (tok == "choice") {
      std::string keytok;
      ls >> keytok;
      if (keytok.rfind("key=", 0) != 0)
        throw std::runtime_error("dmcsched line " + std::to_string(line_no) +
                                 ": choice without key=");
      TraceEntry e;
      e.key = parse_hex64(keytok.substr(4), line_no);
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      e.label = rest;
      trace.entries.push_back(std::move(e));
    } else if (tok == "end") {
      saw_end = true;
      break;
    } else {
      throw std::runtime_error("dmcsched line " + std::to_string(line_no) +
                               ": unknown directive '" + tok + "'");
    }
  }
  if (!saw_header)
    throw std::runtime_error("dmcsched: empty input (no header)");
  if (!saw_end) throw std::runtime_error("dmcsched: missing 'end'");
  return trace;
}

void write_trace(const std::string& path, const SchedTrace& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("dmcsched: cannot write " + path);
  out << format_trace(trace);
  if (!out.flush())
    throw std::runtime_error("dmcsched: write failed for " + path);
}

SchedTrace read_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("dmcsched: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_trace(buf.str());
}

}  // namespace dmc::mc
