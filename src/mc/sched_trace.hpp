// .dmcsched replay traces: a counterexample schedule as a text artifact.
//
// Every dmc-mc counterexample is written as a deterministic, line-based
// trace that turns "the explorer found an interleaving" into a
// one-command repro (`dmc-mc --scenario S --replay trace.dmcsched`).
// Choices are identified *semantically* — by the Action::key the taken
// transition hashes to (kind, link, send order, sender; see
// congest::SchedChoice::key) — never by index, so a trace survives
// enabled-set orderings changing, and replay detects real divergence
// (a recorded transition no longer enabled) instead of silently taking
// a different schedule.
//
// Format (version 1; '#' lines are comments):
//
//   dmcsched 1
//   scenario transport-pair-planted
//   opt defer-bound 1
//   choice key=0f3a... deliver link=0 0->1 order=2 seq=0 stale
//   decline
//   end
//
// `opt` lines echo the bounds the trace was produced under (informational;
// replay re-applies whatever the CLI passes). `decline` records a choice
// point whose (all-optional) enabled set was declined.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "mc/explorer.hpp"

namespace dmc::mc {

struct SchedTrace {
  std::string scenario;
  std::vector<std::pair<std::string, std::string>> options;
  std::vector<TraceEntry> entries;
};

/// Renders a trace to the version-1 text format.
std::string format_trace(const SchedTrace& trace);

/// Parses the version-1 text format; throws std::runtime_error with a
/// line number on malformed input.
SchedTrace parse_trace(const std::string& text);

/// File convenience wrappers; write_trace throws on I/O failure.
void write_trace(const std::string& path, const SchedTrace& trace);
SchedTrace read_trace(const std::string& path);

}  // namespace dmc::mc
