#include "mc/serve_system.hpp"

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "serve/sched_core.hpp"

namespace dmc::mc {

namespace {

std::uint64_t fold64(std::uint64_t h, std::uint64_t x) {
  h ^= x;
  h *= 1099511628211ull;
  return h;
}

std::uint64_t fold_str(std::uint64_t h, const std::string& s) {
  for (char c : s) h = fold64(h, static_cast<unsigned char>(c));
  return h;
}

// Action kinds, carried in Action::tag.
enum ActKind : int {
  kSubmit = 0,
  kTake = 1,
  kFinish = 2,
  kTick = 3,
  kStop = 4,
};

// DPOR processes. Submit/tick/stop are each their own serial process;
// worker w owns both its Take and its Finish (causally ordered).
constexpr int kSubmitProc = 1;
constexpr int kTickProc = 2;
constexpr int kStopProc = 3;
constexpr int kWorkerProcBase = 10;

Action make_action(ActKind kind, int worker, int detail,
                   const std::string& label) {
  Action a;
  std::uint64_t h = 1469598103934665603ull;
  h = fold64(h, static_cast<std::uint64_t>(kind));
  h = fold64(h, static_cast<std::uint64_t>(worker + 1));
  h = fold64(h, static_cast<std::uint64_t>(detail + 1));
  a.key = h;
  a.tag = kind;
  a.label = label;
  switch (kind) {
    case kSubmit: a.process = kSubmitProc; break;
    case kTick: a.process = kTickProc; a.optional_action = true; break;
    case kStop: a.process = kStopProc; a.optional_action = true; break;
    case kTake:
    case kFinish: a.process = kWorkerProcBase + worker; break;
  }
  return a;
}

}  // namespace

ServeSystem::Config ServeSystem::default_config() {
  Config c;
  c.max_queue = 2;
  c.workers = 2;
  c.ticks = 2;
  c.queries = {{"alpha", 0}, {"alpha", 2}, {"beta", 1}};
  return c;
}

ServeSystem::ServeSystem(Config config) : config_(std::move(config)) {}

Execution ServeSystem::run(const PickFn& pick) {
  Execution e;

  struct MTask {
    int id = -1;
    long long deadline_abs = 0;
  };
  struct Worker {
    bool busy = false;
    std::vector<MTask> batch;
    long long take_clock = 0;
  };

  serve::core::GroupQueue<MTask> queue(
      static_cast<std::size_t>(config_.max_queue));
  long long clock = 0;
  int ticks_left = config_.ticks;
  std::size_t next_submit = 0;
  bool stopped = false;
  std::vector<Worker> workers(config_.workers);
  std::vector<std::string> responses(config_.queries.size());
  // Shadow of the queue's group creation order: the FIFO oracle.
  std::deque<std::string> fifo_order;
  std::set<std::string> fifo_present;

  auto respond = [&](int id, const std::string& status) {
    if (!responses[id].empty())
      e.violations.push_back("query " + std::to_string(id) +
                             " answered twice: '" + responses[id] +
                             "' then '" + status + "'");
    responses[id] = status;
  };

  for (;;) {
    std::vector<Action> enabled;
    if (next_submit < config_.queries.size()) {
      const Query& q = config_.queries[next_submit];
      enabled.push_back(make_action(
          kSubmit, -1, static_cast<int>(next_submit),
          "submit #" + std::to_string(next_submit) + " group=" + q.key));
    }
    for (int w = 0; w < config_.workers; ++w) {
      if (!workers[w].busy && !queue.empty())
        enabled.push_back(
            make_action(kTake, w, 0, "take worker=" + std::to_string(w)));
      if (workers[w].busy)
        enabled.push_back(
            make_action(kFinish, w, 0, "finish worker=" + std::to_string(w)));
    }
    if (ticks_left > 0)
      enabled.push_back(make_action(kTick, -1, config_.ticks - ticks_left,
                                    "tick t=" + std::to_string(clock + 1)));
    if (!stopped)
      enabled.push_back(make_action(kStop, -1, 0, "stop (begin drain)"));
    if (enabled.empty()) break;
    const int picked = pick(enabled);
    if (picked < 0) break;  // all-optional set declined: quiescent
    const Action& act = enabled[picked];

    switch (static_cast<ActKind>(act.tag)) {
      case kSubmit: {
        const Query& q = config_.queries[next_submit];
        const int id = static_cast<int>(next_submit);
        next_submit += 1;
        MTask t;
        t.id = id;
        t.deadline_abs = q.deadline_rel > 0 ? clock + q.deadline_rel : 0;
        if (queue.push(q.key, t)) {
          if (stopped)
            e.violations.push_back("query " + std::to_string(id) +
                                   " admitted after stop");
          if (queue.queued() > static_cast<std::size_t>(config_.max_queue))
            e.violations.push_back(
                "admission bound exceeded: " + std::to_string(queue.queued()) +
                " queued, bound " + std::to_string(config_.max_queue));
          if (fifo_present.insert(q.key).second) fifo_order.push_back(q.key);
        } else {
          respond(id, "overloaded");
        }
        break;
      }
      case kTake: {
        const int w = act.process - kWorkerProcBase;
        auto [key, batch] = queue.pop_group();
        if (fifo_order.empty() || fifo_order.front() != key)
          e.violations.push_back(
              "group-FIFO violated: took group '" + key + "', oldest is '" +
              (fifo_order.empty() ? std::string("<none>") : fifo_order.front()) +
              "'");
        if (!fifo_order.empty() && fifo_order.front() == key)
          fifo_order.pop_front();
        fifo_present.erase(key);
        Worker& worker = workers[w];
        worker.take_clock = clock;
        for (MTask& t : batch) {
          if (serve::core::expired_in_queue(t.deadline_abs, clock))
            respond(t.id, "deadline");
          else
            worker.batch.push_back(t);
        }
        worker.busy = !worker.batch.empty();
        break;
      }
      case kFinish: {
        const int w = act.process - kWorkerProcBase;
        Worker& worker = workers[w];
        for (const MTask& t : worker.batch) {
          if (serve::core::expired_in_queue(t.deadline_abs, worker.take_clock))
            e.violations.push_back("query " + std::to_string(t.id) +
                                   " was expired at take time but executed");
          respond(t.id, "ok");
        }
        worker.batch.clear();
        worker.busy = false;
        break;
      }
      case kTick:
        ticks_left -= 1;
        clock += 1;
        break;
      case kStop:
        queue.stop();
        stopped = true;
        break;
    }
  }

  // Quiescence: nothing queued (Take is mandatory while a worker is idle
  // and the queue non-empty), no worker busy (Finish is mandatory), all
  // queries submitted — so every query must have exactly one response.
  for (std::size_t i = 0; i < responses.size(); ++i)
    if (responses[i].empty())
      e.violations.push_back("query " + std::to_string(i) +
                             " never answered (drain incomplete)");
  e.outcome = stopped ? "drained" : "quiescent";
  std::uint64_t digest = 1469598103934665603ull;
  for (const std::string& r : responses) digest = fold_str(digest, r);
  e.digest = digest;
  // Tick placement legitimately decides deadline-vs-ok outcomes; the
  // response multiset is schedule-dependent by design.
  e.digest_valid = false;
  return e;
}

bool ServeSystem::dependent(const Action& a, const Action& b) const {
  if (a.process == b.process) return true;
  // Finish only touches its worker's private batch and the response slots
  // of its own queries; everything else (queue, clock, stop flag) is
  // shared state, so any other pair of distinct processes may interfere.
  if (a.tag == kFinish || b.tag == kFinish) return false;
  return true;
}

}  // namespace dmc::mc
