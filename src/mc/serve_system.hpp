// Model-checked serve scheduler: admission / deadline / drain.
//
// The threaded serve::Scheduler (src/serve/scheduler.*) and this model
// share the same queueing core — serve::core::GroupQueue and
// serve::core::expired_in_queue (src/serve/sched_core.hpp) — so the
// interleavings explored here exercise the exact group-batching,
// admission-bound, and stop-drain logic the daemon runs, minus the
// thread plumbing. Time is a virtual clock advanced by explicit Tick
// actions, which is what makes deadline expiry schedulable.
//
// Actions (one process per worker, plus submit / tick / stop processes):
//
//   Submit    the client submits the next query of the scenario script
//   Take(w)   idle worker w pops the oldest group (expired tasks answer
//             "deadline" at take time and never execute)
//   Finish(w) worker w completes its batch ("ok" responses)
//   Tick      the virtual clock advances one unit        [optional]
//   Stop      drain begins: admission closes             [optional]
//
// Invariants checked on every interleaving: every query gets exactly one
// response; a task expired at take time never executes; the queue depth
// never exceeds the admission bound; groups leave the queue in creation
// (FIFO) order; once stopped, no submission is admitted; at quiescence
// nothing is left unanswered (drain completeness).
#pragma once

#include <string>
#include <vector>

#include "mc/explorer.hpp"

namespace dmc::mc {

class ServeSystem : public System {
 public:
  struct Query {
    std::string key;            // batching group
    long long deadline_rel = 0; // 0 = none; else expires at submit + rel
  };

  struct Config {
    int max_queue = 2;
    int workers = 2;
    int ticks = 2;  // virtual-clock budget per execution
    std::vector<Query> queries;  // submitted in script order
  };

  /// The default dmc-mc scenario: three queries in two groups, one with a
  /// tight deadline, two workers, admission bound 2.
  static Config default_config();

  explicit ServeSystem(Config config);

  Execution run(const PickFn& pick) override;
  bool dependent(const Action& a, const Action& b) const override;
  std::string name() const override { return "serve-sched"; }

 private:
  Config config_;
};

}  // namespace dmc::mc
