#include "metrics/metrics.hpp"

#include <atomic>
#include <ostream>
#include <stdexcept>

namespace dmc::metrics {

namespace {

bool valid_name(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  char prev = '.';
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
    if (c == '.' && prev == '.') return false;
    prev = c;
  }
  return true;
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

/// "congest.link.round_bits" -> "dmc_congest_link_round_bits".
std::string prometheus_name(const std::string& name) {
  std::string out = "dmc_";
  for (char c : name) out += c == '.' ? '_' : c;
  return out;
}

std::atomic<Registry*> g_registry{nullptr};

}  // namespace

Registry::Entry& Registry::entry(std::string_view name, Kind kind) {
  if (!valid_name(name))
    throw std::invalid_argument(
        "metrics::Registry: invalid metric name '" + std::string(name) +
        "' (want dotted lowercase [a-z0-9_.])");
  std::lock_guard<std::mutex> lk(m_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::invalid_argument(
        "metrics::Registry: metric '" + std::string(name) +
        "' already registered as a " +
        kind_name(static_cast<int>(it->second.kind)) + ", requested as a " +
        kind_name(static_cast<int>(kind)));
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name) {
  return *entry(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *entry(name, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name) {
  return *entry(name, Kind::kHistogram).histogram;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return entries_.size();
}

void Registry::write_prometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& [name, e] : entries_) {
    const std::string pname = prometheus_name(name);
    switch (e.kind) {
      case Kind::kCounter:
        out << "# TYPE " << pname << " counter\n"
            << pname << " " << e.counter->value() << "\n";
        break;
      case Kind::kGauge:
        out << "# TYPE " << pname << " gauge\n"
            << pname << " " << e.gauge->value() << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        out << "# TYPE " << pname << " histogram\n";
        int top = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i)
          if (h.bucket(i) != 0) top = i;
        long long cum = 0;
        for (int i = 0; i <= top; ++i) {
          cum += h.bucket(i);
          out << pname << "_bucket{le=\"" << Histogram::bucket_upper(i)
              << "\"} " << cum << "\n";
        }
        out << pname << "_bucket{le=\"+Inf\"} " << h.count() << "\n"
            << pname << "_sum " << h.sum() << "\n"
            << pname << "_count " << h.count() << "\n"
            // Derived tail fields (log2-bucket upper bounds) so scrapes
            // and bench_gate.py can gate on p50/p95/max directly instead
            // of re-deriving them from the cumulative buckets.
            << pname << "_p50 " << h.p50() << "\n"
            << pname << "_p95 " << h.p95() << "\n"
            << pname << "_max " << h.max() << "\n";
        break;
      }
    }
  }
}

void Registry::write_json_fields(std::ostream& out) const {
  std::lock_guard<std::mutex> lk(m_);
  bool first = true;
  auto field = [&](const std::string& key, long long value) {
    if (!first) out << ",";
    first = false;
    out << "\"" << key << "\":" << value;
  };
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        field(name, e.counter->value());
        break;
      case Kind::kGauge:
        field(name, e.gauge->value());
        break;
      case Kind::kHistogram:
        field(name + ".count", e.histogram->count());
        field(name + ".sum", e.histogram->sum());
        field(name + ".max", e.histogram->max());
        field(name + ".p50", e.histogram->p50());
        field(name + ".p95", e.histogram->p95());
        break;
    }
  }
}

Registry* global() { return g_registry.load(std::memory_order_acquire); }

Registry* set_global(Registry* r) {
  return g_registry.exchange(r, std::memory_order_acq_rel);
}

}  // namespace dmc::metrics
