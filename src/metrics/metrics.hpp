// dmc::metrics — low-overhead aggregate metrics for the simulator stack.
//
// dmc::obs (round-level tracing) answers *where* a particular run spent
// its rounds and bits; this layer answers the always-on aggregate
// questions — how congested is the most loaded link, what fraction of
// frames were retransmits, how often does the compose memo hit — as cheap
// counters that are safe to leave compiled into every hot path.
//
// Three instrument kinds, all lock-free on the update path:
//
//   Counter    monotone 64-bit add (relaxed atomic).
//   Gauge      last-value / running-max 64-bit store.
//   Histogram  fixed log2 buckets (bucket i counts values of bit width i,
//              i.e. 2^(i-1) <= v < 2^i; bucket 0 counts v <= 0) plus
//              count/sum/max — no allocation, no locks, mergeable.
//
// Instruments live in a Registry under stable dotted names
// ("congest.link.round_bits"); the full name table is in
// docs/OBSERVABILITY.md. Registration takes a mutex and may allocate;
// instrumented code therefore resolves handles once (at construction /
// job start) and the steady-state update path is a single relaxed atomic
// op. Like the obs null-sink contract, a disabled layer (no registry
// configured) skips every metrics branch and performs no allocation —
// tests/metrics_test.cpp pins this with a counting operator new.
//
// Wiring: the CONGEST Network takes a per-instance registry pointer
// (NetworkConfig::metrics, falling back to the process-global registry);
// process-wide layers with no config channel of their own — the par pool,
// the BPT engine, the universe cache — read metrics::global(), which is
// null (disabled) unless a driver such as `dmc --metrics` installs one.
//
// Exporters: write_prometheus (text exposition format, names prefixed
// dmc_ with dots mapped to underscores) and write_json_fields (flat
// `"name":value` pairs for embedding into DMC_BENCH_JSON rows).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace dmc::metrics {

class Counter {
 public:
  void add(long long delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

class Gauge {
 public:
  void set(long long v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to v if v is larger (lock-free running max).
  void max_of(long long v) {
    long long cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index of a value: 0 for v <= 0, otherwise bit_width(v)
  /// clamped to kBuckets - 1 — so bucket i >= 1 covers [2^(i-1), 2^i).
  static int bucket_of(long long v) {
    if (v <= 0) return 0;
    const int w = std::bit_width(static_cast<std::uint64_t>(v));
    return w < kBuckets ? w : kBuckets - 1;
  }
  /// Inclusive upper edge of bucket i (0 for bucket 0, 2^i - 1 otherwise;
  /// the last bucket is unbounded).
  static long long bucket_upper(int i) {
    if (i <= 0) return 0;
    if (i >= kBuckets - 1) return std::numeric_limits<long long>::max();
    return (1LL << i) - 1;
  }

  void record(long long v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v > 0 ? v : 0, std::memory_order_relaxed);
    long long cur = max_.load(std::memory_order_relaxed);
    while (cur < v &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  long long count() const { return count_.load(std::memory_order_relaxed); }
  long long sum() const { return sum_.load(std::memory_order_relaxed); }
  long long max() const { return max_.load(std::memory_order_relaxed); }
  long long bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Derived quantile estimate: the inclusive upper edge of the smallest
  /// bucket whose cumulative count reaches rank ceil(q * count). The log2
  /// buckets make this an upper bound within 2x of the true quantile —
  /// plenty for tail-latency gating. The top (unbounded) bucket reports
  /// the observed max instead of an edge. 0 when empty.
  long long quantile(double q) const {
    const long long n = count();
    if (n <= 0) return 0;
    long long rank = static_cast<long long>(q * static_cast<double>(n));
    if (static_cast<double>(rank) < q * static_cast<double>(n)) ++rank;
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    long long cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      cum += bucket(i);
      if (cum >= rank)
        return i >= kBuckets - 1 ? max() : bucket_upper(i);
    }
    return max();  // racy concurrent records: fall back to the max
  }
  long long p50() const { return quantile(0.50); }
  long long p95() const { return quantile(0.95); }

 private:
  std::array<std::atomic<long long>, kBuckets> buckets_{};
  std::atomic<long long> count_{0};
  std::atomic<long long> sum_{0};
  std::atomic<long long> max_{0};
};

/// Named instrument store. Names are stable dotted lowercase identifiers
/// ([a-z0-9_.], no leading/trailing/double dots); re-requesting a name
/// returns the same instrument, requesting it as a different kind throws.
/// Lookup takes a mutex — resolve handles once, outside hot loops.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Number of registered instruments.
  std::size_t size() const;

  /// Prometheus text exposition format: one family per instrument,
  /// "dmc_" prefix, dots mapped to underscores, histograms as cumulative
  /// le-labelled buckets plus _sum/_count and derived _p50/_p95/_max
  /// gauges (log2-bucket upper bounds; see Histogram::quantile).
  void write_prometheus(std::ostream& out) const;

  /// Flat JSON fields (no surrounding braces): "name":value for counters
  /// and gauges, "name.count"/"name.sum"/"name.max" plus derived
  /// "name.p50"/"name.p95" for histograms — ready to splice into a
  /// DMC_BENCH_JSON row and gate on with tools/bench_gate.py.
  void write_json_fields(std::ostream& out) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, Kind kind);

  mutable std::mutex m_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Process-global registry used by layers without a config channel (the
/// par pool, the BPT engine, the universe cache) and as the fallback for
/// NetworkConfig::metrics. Null by default: metrics disabled everywhere.
Registry* global();
/// Installs `r` as the global registry; returns the previous one.
/// Not synchronized with concurrent instrumented code — install before
/// spawning work, as the dmc CLI does at startup.
Registry* set_global(Registry* r);

}  // namespace dmc::metrics
