#include "mso/ast.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

namespace dmc::mso {

bool is_individual(Sort s) { return s == Sort::Vertex || s == Sort::Edge; }
bool is_set(Sort s) { return !is_individual(s); }
bool is_vertex_kind(Sort s) {
  return s == Sort::Vertex || s == Sort::VertexSet;
}
bool is_edge_kind(Sort s) { return s == Sort::Edge || s == Sort::EdgeSet; }

Sort set_sort_of(Sort s) {
  switch (s) {
    case Sort::Vertex:
      return Sort::VertexSet;
    case Sort::Edge:
      return Sort::EdgeSet;
    default:
      return s;
  }
}

std::string sort_name(Sort s) {
  switch (s) {
    case Sort::Vertex:
      return "vertex";
    case Sort::Edge:
      return "edge";
    case Sort::VertexSet:
      return "vset";
    case Sort::EdgeSet:
      return "eset";
  }
  return "?";
}

bool is_atomic(Kind k) {
  switch (k) {
    case Kind::True:
    case Kind::False:
    case Kind::Equal:
    case Kind::Adjacent:
    case Kind::Incident:
    case Kind::Member:
    case Kind::Subset:
    case Kind::Disjoint:
    case Kind::Singleton:
    case Kind::EmptySet:
    case Kind::FullSet:
    case Kind::Crossing:
    case Kind::Border:
    case Kind::Label:
      return true;
    default:
      return false;
  }
}

bool is_quantifier(Kind k) {
  return k == Kind::Exists || k == Kind::Forall;
}

namespace {
FormulaPtr make(Formula f) { return std::make_shared<const Formula>(std::move(f)); }

FormulaPtr atom2(Kind k, std::string a, std::string b) {
  Formula f;
  f.kind = k;
  f.a = std::move(a);
  f.b = std::move(b);
  return make(std::move(f));
}

FormulaPtr atom1(Kind k, std::string a) {
  Formula f;
  f.kind = k;
  f.a = std::move(a);
  return make(std::move(f));
}
}  // namespace

FormulaPtr f_true() {
  Formula f;
  f.kind = Kind::True;
  return make(std::move(f));
}
FormulaPtr f_false() {
  Formula f;
  f.kind = Kind::False;
  return make(std::move(f));
}
FormulaPtr equal(std::string a, std::string b) {
  return atom2(Kind::Equal, std::move(a), std::move(b));
}
FormulaPtr adj(std::string a, std::string b) {
  return atom2(Kind::Adjacent, std::move(a), std::move(b));
}
FormulaPtr inc(std::string a, std::string b) {
  return atom2(Kind::Incident, std::move(a), std::move(b));
}
FormulaPtr member(std::string a, std::string b) {
  return atom2(Kind::Member, std::move(a), std::move(b));
}
FormulaPtr subset(std::string a, std::string b) {
  return atom2(Kind::Subset, std::move(a), std::move(b));
}
FormulaPtr disjoint(std::string a, std::string b) {
  return atom2(Kind::Disjoint, std::move(a), std::move(b));
}
FormulaPtr singleton(std::string a) { return atom1(Kind::Singleton, std::move(a)); }
FormulaPtr empty_set(std::string a) { return atom1(Kind::EmptySet, std::move(a)); }
FormulaPtr full_set(std::string a) { return atom1(Kind::FullSet, std::move(a)); }
FormulaPtr crossing(std::string f, std::string x) {
  return atom2(Kind::Crossing, std::move(f), std::move(x));
}
FormulaPtr border(std::string x) { return atom1(Kind::Border, std::move(x)); }
FormulaPtr label(std::string name, std::string a) {
  Formula f;
  f.kind = Kind::Label;
  f.label = std::move(name);
  f.a = std::move(a);
  return make(std::move(f));
}
FormulaPtr lnot(FormulaPtr f) {
  Formula out;
  out.kind = Kind::Not;
  out.left = std::move(f);
  return make(std::move(out));
}
namespace {
FormulaPtr binary(Kind k, FormulaPtr l, FormulaPtr r) {
  Formula out;
  out.kind = k;
  out.left = std::move(l);
  out.right = std::move(r);
  return make(std::move(out));
}
}  // namespace
FormulaPtr land(FormulaPtr l, FormulaPtr r) {
  return binary(Kind::And, std::move(l), std::move(r));
}
FormulaPtr lor(FormulaPtr l, FormulaPtr r) {
  return binary(Kind::Or, std::move(l), std::move(r));
}
FormulaPtr implies(FormulaPtr l, FormulaPtr r) {
  return binary(Kind::Implies, std::move(l), std::move(r));
}
FormulaPtr iff(FormulaPtr l, FormulaPtr r) {
  return binary(Kind::Iff, std::move(l), std::move(r));
}
FormulaPtr exists(std::string var, Sort sort, FormulaPtr body) {
  Formula f;
  f.kind = Kind::Exists;
  f.var = std::move(var);
  f.var_sort = sort;
  f.left = std::move(body);
  return make(std::move(f));
}
FormulaPtr forall(std::string var, Sort sort, FormulaPtr body) {
  Formula f;
  f.kind = Kind::Forall;
  f.var = std::move(var);
  f.var_sort = sort;
  f.left = std::move(body);
  return make(std::move(f));
}

FormulaPtr land_all(std::vector<FormulaPtr> fs) {
  if (fs.empty()) return f_true();
  FormulaPtr out = fs[0];
  for (std::size_t i = 1; i < fs.size(); ++i) out = land(out, fs[i]);
  return out;
}

FormulaPtr lor_all(std::vector<FormulaPtr> fs) {
  if (fs.empty()) return f_false();
  FormulaPtr out = fs[0];
  for (std::size_t i = 1; i < fs.size(); ++i) out = lor(out, fs[i]);
  return out;
}

namespace {
using Scope = std::map<std::string, Sort>;
}  // namespace

std::vector<std::pair<std::string, Sort>> free_variables(const Formula& f) {
  // Free-variable collection needs sorts; sorts of free variables are not
  // declared in the tree, so we infer them from first atomic use. To do so
  // we run a laxer walk that *assigns* a sort at first use based on the
  // atomic position.
  // We implement it via check_well_formed in non-strict mode with inference.
  return check_well_formed(f, {});
}

namespace {

/// Inference pass: assigns a sort to each free variable from its atomic
/// positions. Bound variables carry declared sorts.
struct Infer {
  Scope bound;
  std::vector<std::pair<std::string, Sort>> free;
  bool strict = false;

  Sort* find_free(const std::string& n) {
    for (auto& [name, s] : free)
      if (name == n) return &s;
    return nullptr;
  }

  /// Registers a use of variable `n` whose sort must lie in the family
  /// accepted by `accepts`; `def` is the default when unconstrained.
  Sort use(const std::string& n, bool (*accepts)(Sort), Sort def,
           const char* what) {
    auto it = bound.find(n);
    if (it != bound.end()) {
      if (!accepts(it->second))
        throw std::invalid_argument(std::string("ill-formed formula: ") + what +
                                    " applied to " + sort_name(it->second) +
                                    " '" + n + "'");
      return it->second;
    }
    if (Sort* s = find_free(n)) {
      if (!accepts(*s))
        throw std::invalid_argument(std::string("ill-formed formula: ") + what +
                                    " applied to " + sort_name(*s) + " '" + n +
                                    "' (conflicting uses)");
      return *s;
    }
    free.emplace_back(n, def);
    return def;
  }

  void go(const Formula& f);
};

bool any_sort(Sort) { return true; }
bool vertex_kind(Sort s) { return is_vertex_kind(s); }
bool edge_kind(Sort s) { return is_edge_kind(s); }
bool vset_only(Sort s) { return s == Sort::VertexSet; }
bool eset_only(Sort s) { return s == Sort::EdgeSet; }
bool set_only(Sort s) { return is_set(s); }

void Infer::go(const Formula& f) {
  switch (f.kind) {
    case Kind::True:
    case Kind::False:
      return;
    case Kind::Equal: {
      const Sort sa = use(f.a, any_sort, Sort::Vertex, "=");
      const Sort sb = use(f.b, any_sort, sa, "=");
      if (sa != sb)
        throw std::invalid_argument(
            "ill-formed formula: = requires same-sort operands");
      return;
    }
    case Kind::Adjacent:
      use(f.a, vertex_kind, Sort::Vertex, "adj");
      use(f.b, vertex_kind, Sort::Vertex, "adj");
      return;
    case Kind::Incident:
      use(f.a, vertex_kind, Sort::Vertex, "inc");
      use(f.b, edge_kind, Sort::Edge, "inc");
      return;
    case Kind::Member: {
      const Sort sa = use(f.a, [](Sort s) { return is_individual(s); },
                          Sort::Vertex, "in");
      use(f.b, sa == Sort::Vertex ? vset_only : eset_only,
          set_sort_of(sa), "in");
      return;
    }
    case Kind::Subset:
    case Kind::Disjoint: {
      const char* what = f.kind == Kind::Subset ? "sub" : "disj";
      const Sort sa = use(f.a, set_only, Sort::VertexSet, what);
      use(f.b, sa == Sort::VertexSet ? vset_only : eset_only, sa, what);
      return;
    }
    case Kind::Singleton:
    case Kind::EmptySet:
      use(f.a, set_only, Sort::VertexSet,
          f.kind == Kind::Singleton ? "sing" : "empty");
      return;
    case Kind::FullSet:
      use(f.a, vset_only, Sort::VertexSet, "full");
      return;
    case Kind::Crossing:
      use(f.a, eset_only, Sort::EdgeSet, "cross");
      use(f.b, vset_only, Sort::VertexSet, "cross");
      return;
    case Kind::Border:
      use(f.a, vset_only, Sort::VertexSet, "border");
      return;
    case Kind::Label:
      use(f.a, any_sort, Sort::Vertex, "label");
      return;
    case Kind::Not:
      go(*f.left);
      return;
    case Kind::And:
    case Kind::Or:
    case Kind::Implies:
    case Kind::Iff:
      go(*f.left);
      go(*f.right);
      return;
    case Kind::Exists:
    case Kind::Forall: {
      const auto prev = bound.find(f.var);
      const bool had = prev != bound.end();
      const Sort old = had ? prev->second : Sort::Vertex;
      bound[f.var] = f.var_sort;
      go(*f.left);
      if (had)
        bound[f.var] = old;
      else
        bound.erase(f.var);
      return;
    }
  }
}

}  // namespace

std::vector<std::pair<std::string, Sort>> check_well_formed(
    const Formula& f,
    const std::vector<std::pair<std::string, Sort>>& declared_free) {
  Infer inf;
  inf.free = declared_free;
  inf.go(f);
  return inf.free;
}

int quantifier_rank(const Formula& f) {
  switch (f.kind) {
    case Kind::Not:
      return quantifier_rank(*f.left);
    case Kind::And:
    case Kind::Or:
    case Kind::Implies:
    case Kind::Iff:
      return std::max(quantifier_rank(*f.left), quantifier_rank(*f.right));
    case Kind::Exists:
    case Kind::Forall:
      return 1 + quantifier_rank(*f.left);
    default:
      return 0;
  }
}

namespace {
void collect_labels(const Formula& f, Scope& bound, LabelUsage& out) {
  switch (f.kind) {
    case Kind::Label: {
      // Decide vertex/edge family from the operand's sort when bound;
      // default to vertex for unbound (free) variables of unknown sort.
      Sort s = Sort::Vertex;
      auto it = bound.find(f.a);
      if (it != bound.end()) s = it->second;
      auto& list = is_edge_kind(s) ? out.edge_labels : out.vertex_labels;
      for (const auto& existing : list)
        if (existing == f.label) return;
      list.push_back(f.label);
      return;
    }
    case Kind::Not:
      collect_labels(*f.left, bound, out);
      return;
    case Kind::And:
    case Kind::Or:
    case Kind::Implies:
    case Kind::Iff:
      collect_labels(*f.left, bound, out);
      collect_labels(*f.right, bound, out);
      return;
    case Kind::Exists:
    case Kind::Forall: {
      const auto prev = bound.find(f.var);
      const bool had = prev != bound.end();
      const Sort old = had ? prev->second : Sort::Vertex;
      bound[f.var] = f.var_sort;
      collect_labels(*f.left, bound, out);
      if (had)
        bound[f.var] = old;
      else
        bound.erase(f.var);
      return;
    }
    default:
      return;
  }
}
}  // namespace

LabelUsage label_usage(const Formula& f) {
  Scope bound;
  LabelUsage out;
  collect_labels(f, bound, out);
  return out;
}

std::string to_string(const Formula& f) {
  std::ostringstream os;
  switch (f.kind) {
    case Kind::True:
      return "true";
    case Kind::False:
      return "false";
    case Kind::Equal:
      return f.a + " = " + f.b;
    case Kind::Adjacent:
      return "adj(" + f.a + ", " + f.b + ")";
    case Kind::Incident:
      return "inc(" + f.a + ", " + f.b + ")";
    case Kind::Member:
      return f.a + " in " + f.b;
    case Kind::Subset:
      return "sub(" + f.a + ", " + f.b + ")";
    case Kind::Disjoint:
      return "disj(" + f.a + ", " + f.b + ")";
    case Kind::Singleton:
      return "sing(" + f.a + ")";
    case Kind::EmptySet:
      return "empty(" + f.a + ")";
    case Kind::FullSet:
      return "full(" + f.a + ")";
    case Kind::Crossing:
      return "cross(" + f.a + ", " + f.b + ")";
    case Kind::Border:
      return "border(" + f.a + ")";
    case Kind::Label:
      return "label(" + f.label + ", " + f.a + ")";
    case Kind::Not:
      return "!(" + to_string(*f.left) + ")";
    case Kind::And:
      return "(" + to_string(*f.left) + " & " + to_string(*f.right) + ")";
    case Kind::Or:
      return "(" + to_string(*f.left) + " | " + to_string(*f.right) + ")";
    case Kind::Implies:
      return "(" + to_string(*f.left) + " -> " + to_string(*f.right) + ")";
    case Kind::Iff:
      return "(" + to_string(*f.left) + " <-> " + to_string(*f.right) + ")";
    case Kind::Exists:
      return "exists " + sort_name(f.var_sort) + " " + f.var + ". " +
             to_string(*f.left);
    case Kind::Forall:
      return "forall " + sort_name(f.var_sort) + " " + f.var + ". " +
             to_string(*f.left);
  }
  return "?";
}

namespace {
void collect_subformulas(const Formula& f, std::vector<const Formula*>& out) {
  out.push_back(&f);
  if (f.left) collect_subformulas(*f.left, out);
  if (f.right) collect_subformulas(*f.right, out);
}
}  // namespace

std::vector<const Formula*> subformulas(const Formula& f) {
  std::vector<const Formula*> out;
  collect_subformulas(f, out);
  return out;
}

}  // namespace dmc::mso
