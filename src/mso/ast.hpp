// MSO2 logic of graphs: abstract syntax, builders, and structural analyses.
//
// The logic follows Section 1/4 of the paper: individual vertex and edge
// variables, monadic vertex-set and edge-set variables, equality, adjacency,
// incidence, membership, and unary label predicates (the labeled-graph
// extension of Section 6). In addition we expose a few *set-level* atomic
// predicates (subset, singleton, empty, full, crossing, border) that are
// definable in MSO but are provided as atomics so that library formulas can
// keep their quantifier rank low; all of them are compositional in the sense
// of Definition 4.1, which the BPT engine exploits.
//
// Formulas are immutable trees shared by std::shared_ptr. Variables are
// identified by name and bound by the innermost enclosing quantifier.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace dmc::mso {

enum class Sort { Vertex, Edge, VertexSet, EdgeSet };

bool is_individual(Sort s);
bool is_set(Sort s);
bool is_vertex_kind(Sort s);  // Vertex or VertexSet
bool is_edge_kind(Sort s);    // Edge or EdgeSet
/// The set sort that an individual sort lowers to (identity on set sorts).
Sort set_sort_of(Sort s);
std::string sort_name(Sort s);

enum class Kind {
  True,
  False,
  Equal,      // a = b (same sort; for sets: extensional equality)
  Adjacent,   // adj(a, b): some edge joins a member of a and a member of b
  Incident,   // inc(a, f): some edge in f has an endpoint in a
  Member,     // a in B (individual in matching-sort set)
  Subset,     // sub(A, B) (sets of the same sort)
  Disjoint,   // disj(A, B): A and B share no element (same-sort sets)
  Singleton,  // sing(A): |A| == 1
  EmptySet,   // empty(A): |A| == 0
  FullSet,    // full(A): A == V (vertex sets only)
  Crossing,   // cross(F, X): some edge in F has exactly one endpoint in X
  Border,     // border(X): some edge of G has exactly one endpoint in X
  Label,      // label(name, a): some member of a carries the label
  Not,
  And,
  Or,
  Implies,
  Iff,
  Exists,
  Forall,
};

bool is_atomic(Kind k);
bool is_quantifier(Kind k);

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

struct Formula {
  Kind kind;
  std::string a, b;       // atomic operands (variable names)
  std::string label;      // label name for Kind::Label
  FormulaPtr left, right; // children (Not/quantifiers use left only)
  std::string var;        // quantified variable
  Sort var_sort = Sort::Vertex;
};

// --- builders ---------------------------------------------------------------

FormulaPtr f_true();
FormulaPtr f_false();
FormulaPtr equal(std::string a, std::string b);
FormulaPtr adj(std::string a, std::string b);
FormulaPtr inc(std::string a, std::string b);
FormulaPtr member(std::string a, std::string b);
FormulaPtr subset(std::string a, std::string b);
FormulaPtr disjoint(std::string a, std::string b);
FormulaPtr singleton(std::string a);
FormulaPtr empty_set(std::string a);
FormulaPtr full_set(std::string a);
FormulaPtr crossing(std::string f, std::string x);
FormulaPtr border(std::string x);
FormulaPtr label(std::string name, std::string a);
FormulaPtr lnot(FormulaPtr f);
FormulaPtr land(FormulaPtr l, FormulaPtr r);
FormulaPtr lor(FormulaPtr l, FormulaPtr r);
FormulaPtr implies(FormulaPtr l, FormulaPtr r);
FormulaPtr iff(FormulaPtr l, FormulaPtr r);
FormulaPtr exists(std::string var, Sort sort, FormulaPtr body);
FormulaPtr forall(std::string var, Sort sort, FormulaPtr body);
/// Conjunction/disjunction of a list (true/false for empty lists).
FormulaPtr land_all(std::vector<FormulaPtr> fs);
FormulaPtr lor_all(std::vector<FormulaPtr> fs);

// --- analyses ---------------------------------------------------------------

/// Free variables with their sorts, in first-occurrence order.
/// Throws if a variable is used with inconsistent sorts.
std::vector<std::pair<std::string, Sort>> free_variables(const Formula& f);

/// Max quantifier nesting depth.
int quantifier_rank(const Formula& f);

/// Checks sort rules of every atomic (see Kind comments); throws
/// std::invalid_argument with a message on violation. Returns free variables
/// (same as free_variables).
std::vector<std::pair<std::string, Sort>> check_well_formed(
    const Formula& f,
    const std::vector<std::pair<std::string, Sort>>& declared_free = {});

/// Label names used by the formula, split by vertex/edge application.
struct LabelUsage {
  std::vector<std::string> vertex_labels;
  std::vector<std::string> edge_labels;
};
LabelUsage label_usage(const Formula& f);

std::string to_string(const Formula& f);

/// All distinct subformula nodes in preorder; index in the result acts as a
/// stable id for memoization.
std::vector<const Formula*> subformulas(const Formula& f);

}  // namespace dmc::mso
