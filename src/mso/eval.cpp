#include "mso/eval.hpp"

#include <bit>
#include <optional>
#include <stdexcept>

namespace dmc::mso {

namespace {

constexpr int kMaxSetBits = 22;

const Value& lookup(const Env& env, const std::string& name) {
  auto it = env.find(name);
  if (it == env.end())
    throw std::invalid_argument("evaluate: unbound variable '" + name + "'");
  return it->second;
}

/// The members of a value as a bitmask (singleton mask for individuals).
std::uint64_t as_mask(const Value& v) {
  return is_individual(v.sort) ? (1ull << v.bits) : v.bits;
}

bool eval_rec(const Graph& g, const Formula& f, Env& env) {
  switch (f.kind) {
    case Kind::True:
      return true;
    case Kind::False:
      return false;
    case Kind::Equal: {
      const Value& a = lookup(env, f.a);
      const Value& b = lookup(env, f.b);
      if (a.sort != b.sort)
        throw std::invalid_argument("evaluate: '=' on different sorts");
      return a.bits == b.bits;
    }
    case Kind::Adjacent: {
      const std::uint64_t a = as_mask(lookup(env, f.a));
      const std::uint64_t b = as_mask(lookup(env, f.b));
      for (const Edge& e : g.edges()) {
        const std::uint64_t um = 1ull << e.u, vm = 1ull << e.v;
        if (((a & um) && (b & vm)) || ((a & vm) && (b & um))) return true;
      }
      return false;
    }
    case Kind::Incident: {
      const std::uint64_t a = as_mask(lookup(env, f.a));
      const std::uint64_t fm = as_mask(lookup(env, f.b));
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (!(fm & (1ull << e))) continue;
        if ((a & (1ull << g.edge(e).u)) || (a & (1ull << g.edge(e).v)))
          return true;
      }
      return false;
    }
    case Kind::Member: {
      const Value& a = lookup(env, f.a);
      const Value& b = lookup(env, f.b);
      if (!is_individual(a.sort) || !is_set(b.sort))
        throw std::invalid_argument("evaluate: bad 'in' operands");
      return (b.bits >> a.bits) & 1;
    }
    case Kind::Subset: {
      const Value& a = lookup(env, f.a);
      const Value& b = lookup(env, f.b);
      return (a.bits & ~b.bits) == 0;
    }
    case Kind::Disjoint: {
      const Value& a = lookup(env, f.a);
      const Value& b = lookup(env, f.b);
      return (a.bits & b.bits) == 0;
    }
    case Kind::Singleton:
      return std::popcount(lookup(env, f.a).bits) == 1;
    case Kind::EmptySet:
      return lookup(env, f.a).bits == 0;
    case Kind::FullSet: {
      const std::uint64_t all =
          g.num_vertices() >= 64 ? ~0ull : (1ull << g.num_vertices()) - 1;
      return lookup(env, f.a).bits == all;
    }
    case Kind::Crossing: {
      const std::uint64_t fm = as_mask(lookup(env, f.a));
      const std::uint64_t x = as_mask(lookup(env, f.b));
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (!(fm & (1ull << e))) continue;
        const bool iu = (x >> g.edge(e).u) & 1, iv = (x >> g.edge(e).v) & 1;
        if (iu != iv) return true;
      }
      return false;
    }
    case Kind::Border: {
      const std::uint64_t x = as_mask(lookup(env, f.a));
      for (const Edge& e : g.edges()) {
        const bool iu = (x >> e.u) & 1, iv = (x >> e.v) & 1;
        if (iu != iv) return true;
      }
      return false;
    }
    case Kind::Label: {
      const Value& a = lookup(env, f.a);
      const std::uint64_t mask = as_mask(a);
      if (is_vertex_kind(a.sort)) {
        for (VertexId v = 0; v < g.num_vertices(); ++v)
          if ((mask >> v) & 1 && g.vertex_has_label(f.label, v)) return true;
      } else {
        for (EdgeId e = 0; e < g.num_edges(); ++e)
          if ((mask >> e) & 1 && g.edge_has_label(f.label, e)) return true;
      }
      return false;
    }
    case Kind::Not:
      return !eval_rec(g, *f.left, env);
    case Kind::And:
      return eval_rec(g, *f.left, env) && eval_rec(g, *f.right, env);
    case Kind::Or:
      return eval_rec(g, *f.left, env) || eval_rec(g, *f.right, env);
    case Kind::Implies:
      return !eval_rec(g, *f.left, env) || eval_rec(g, *f.right, env);
    case Kind::Iff:
      return eval_rec(g, *f.left, env) == eval_rec(g, *f.right, env);
    case Kind::Exists:
    case Kind::Forall: {
      const bool want = f.kind == Kind::Exists;
      const auto saved = env.find(f.var) != env.end()
                             ? std::optional<Value>(env[f.var])
                             : std::nullopt;
      auto restore = [&]() {
        if (saved)
          env[f.var] = *saved;
        else
          env.erase(f.var);
      };
      auto try_one = [&](Value v) {
        env[f.var] = v;
        return eval_rec(g, *f.left, env) == want;
      };
      bool found = false;
      switch (f.var_sort) {
        case Sort::Vertex:
          for (VertexId v = 0; v < g.num_vertices() && !found; ++v)
            found = try_one(Value::vertex(v));
          break;
        case Sort::Edge:
          for (EdgeId e = 0; e < g.num_edges() && !found; ++e)
            found = try_one(Value::edge(e));
          break;
        case Sort::VertexSet: {
          if (g.num_vertices() > kMaxSetBits)
            throw std::invalid_argument("evaluate: graph too large for vset quantifier");
          const std::uint64_t limit = 1ull << g.num_vertices();
          for (std::uint64_t m = 0; m < limit && !found; ++m)
            found = try_one(Value::vertex_set(m));
          break;
        }
        case Sort::EdgeSet: {
          if (g.num_edges() > kMaxSetBits)
            throw std::invalid_argument("evaluate: graph too large for eset quantifier");
          const std::uint64_t limit = 1ull << g.num_edges();
          for (std::uint64_t m = 0; m < limit && !found; ++m)
            found = try_one(Value::edge_set(m));
          break;
        }
      }
      restore();
      return found == want;
    }
  }
  throw std::logic_error("evaluate: unknown formula kind");
}

}  // namespace

bool evaluate(const Graph& g, const Formula& f, const Env& env) {
  if (g.num_vertices() > 63 || g.num_edges() > 63)
    throw std::invalid_argument("evaluate: graph too large (bitmask overflow)");
  Env working = env;
  return eval_rec(g, f, working);
}

}  // namespace dmc::mso
