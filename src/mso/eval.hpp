// Brute-force MSO evaluation by direct semantics.
//
// This evaluator enumerates all quantifier instantiations explicitly
// (2^n / 2^m for set quantifiers), so it only works on small graphs. It is
// deliberately independent from the BPT engine and serves as the ground
// truth in the test suite.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "graph/graph.hpp"
#include "mso/ast.hpp"

namespace dmc::mso {

/// A variable binding: an individual id or a set bitmask, per `sort`.
struct Value {
  Sort sort = Sort::Vertex;
  std::uint64_t bits = 0;  // individual: the id; set: bitmask over ids

  static Value vertex(VertexId v) { return {Sort::Vertex, static_cast<std::uint64_t>(v)}; }
  static Value edge(EdgeId e) { return {Sort::Edge, static_cast<std::uint64_t>(e)}; }
  static Value vertex_set(std::uint64_t mask) { return {Sort::VertexSet, mask}; }
  static Value edge_set(std::uint64_t mask) { return {Sort::EdgeSet, mask}; }
};

using Env = std::map<std::string, Value>;

/// Evaluates `f` over `g` under `env` (which must bind all free variables
/// with the right sorts). Throws std::invalid_argument on unbound variables,
/// sort mismatches, or if a set quantifier would need more than 2^22
/// instantiations.
bool evaluate(const Graph& g, const Formula& f, const Env& env = {});

}  // namespace dmc::mso
