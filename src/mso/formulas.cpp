#include "mso/formulas.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace dmc::mso::lib {

namespace {

std::string xi(int i) { return "x" + std::to_string(i); }

/// exists vertex x0..x_{p-1}. body
FormulaPtr exists_vertices(int p, FormulaPtr body) {
  for (int i = p - 1; i >= 0; --i) body = exists(xi(i), Sort::Vertex, body);
  return body;
}

FormulaPtr all_distinct(int p) {
  std::vector<FormulaPtr> parts;
  for (int i = 0; i < p; ++i)
    for (int j = i + 1; j < p; ++j) parts.push_back(lnot(equal(xi(i), xi(j))));
  return land_all(std::move(parts));
}

}  // namespace

FormulaPtr triangle_free() { return h_free(/*K3*/ [] {
  Graph h(3);
  h.add_edge(0, 1);
  h.add_edge(1, 2);
  h.add_edge(0, 2);
  return h;
}()); }

FormulaPtr c4_free() {
  Graph c4(4);
  c4.add_edge(0, 1);
  c4.add_edge(1, 2);
  c4.add_edge(2, 3);
  c4.add_edge(3, 0);
  return h_free(c4);
}

FormulaPtr h_free(const Graph& h, bool induced) {
  const int p = h.num_vertices();
  if (p < 1) throw std::invalid_argument("h_free: H must be nonempty");
  std::vector<FormulaPtr> parts{all_distinct(p)};
  for (int i = 0; i < p; ++i)
    for (int j = i + 1; j < p; ++j) {
      if (h.has_edge(i, j))
        parts.push_back(adj(xi(i), xi(j)));
      else if (induced)
        parts.push_back(lnot(adj(xi(i), xi(j))));
    }
  return lnot(exists_vertices(p, land_all(std::move(parts))));
}

FormulaPtr k_colorable(int k) {
  if (k < 1) throw std::invalid_argument("k_colorable: k >= 1 required");
  auto ci = [](int i) { return "C" + std::to_string(i); };
  // every vertex has a color
  std::vector<FormulaPtr> in_some;
  for (int i = 0; i < k; ++i) in_some.push_back(member("x", ci(i)));
  FormulaPtr body = forall("x", Sort::Vertex, lor_all(std::move(in_some)));
  // each class is independent: no edge inside C_i
  std::vector<FormulaPtr> parts{body};
  for (int i = 0; i < k; ++i) parts.push_back(lnot(adj(ci(i), ci(i))));
  body = land_all(std::move(parts));
  for (int i = k - 1; i >= 0; --i) body = exists(ci(i), Sort::VertexSet, body);
  return body;
}

FormulaPtr not_3_colorable() { return lnot(k_colorable(3)); }

FormulaPtr acyclic() {
  // Paper, Section 1: no nonempty X whose every member has two distinct
  // neighbors inside X.
  FormulaPtr inner =
      exists("y1", Sort::Vertex,
             exists("y2", Sort::Vertex,
                    land_all({member("y1", "X"), member("y2", "X"),
                              lnot(equal("y1", "y2")), adj("x", "y1"),
                              adj("x", "y2")})));
  FormulaPtr all_have_two =
      forall("x", Sort::Vertex, implies(member("x", "X"), inner));
  return lnot(exists("X", Sort::VertexSet,
                     land(lnot(empty_set("X")), all_have_two)));
}

FormulaPtr connected() {
  return forall(
      "X", Sort::VertexSet,
      lor_all({empty_set("X"), full_set("X"), border("X")}));
}

FormulaPtr has_isolated_vertex() {
  return exists("x", Sort::Vertex,
                forall("y", Sort::Vertex, lnot(adj("x", "y"))));
}

FormulaPtr has_isolated_vertex_lowrank() {
  // A singleton with no border edge and no internal edge is isolated.
  return exists("X", Sort::VertexSet,
                land_all({singleton("X"), lnot(border("X"))}));
}

FormulaPtr has_vertex_of_degree_ge(int k) {
  if (k < 1) throw std::invalid_argument("degree bound must be >= 1");
  std::vector<FormulaPtr> parts;
  for (int i = 0; i < k; ++i)
    for (int j = i + 1; j < k; ++j) parts.push_back(lnot(equal(xi(i), xi(j))));
  for (int i = 0; i < k; ++i) parts.push_back(adj("x", xi(i)));
  FormulaPtr body = land_all(std::move(parts));
  for (int i = k - 1; i >= 0; --i) body = exists(xi(i), Sort::Vertex, body);
  return exists("x", Sort::Vertex, body);
}

FormulaPtr properly_2_colored() {
  // Section 1.1 of the paper, with red/blue unary predicates.
  FormulaPtr covered = forall(
      "x", Sort::Vertex, lor(label("red", "x"), label("blue", "x")));
  FormulaPtr no_mono = forall(
      "x", Sort::Vertex,
      forall("y", Sort::Vertex,
             lnot(land(adj("x", "y"),
                       lor(land(label("red", "x"), label("red", "y")),
                           land(label("blue", "x"), label("blue", "y")))))));
  return land(covered, no_mono);
}

FormulaPtr has_clique(int k) {
  Graph h(k);
  for (int i = 0; i < k; ++i)
    for (int j = i + 1; j < k; ++j) h.add_edge(i, j);
  return lnot(h_free(h));
}

FormulaPtr has_path(int k) {
  Graph h(k);
  for (int i = 0; i + 1 < k; ++i) h.add_edge(i, i + 1);
  return lnot(h_free(h));
}

FormulaPtr cograph() {
  Graph p4(4);
  p4.add_edge(0, 1);
  p4.add_edge(1, 2);
  p4.add_edge(2, 3);
  return h_free(p4, /*induced=*/true);
}

FormulaPtr max_degree_le(int k) {
  return lnot(has_vertex_of_degree_ge(k + 1));
}

FormulaPtr independent_set() { return lnot(adj("S", "S")); }

FormulaPtr independent_set_naive() {
  return forall(
      "x", Sort::Vertex,
      forall("y", Sort::Vertex,
             implies(land(member("x", "S"), member("y", "S")),
                     lnot(adj("x", "y")))));
}

FormulaPtr vertex_cover() {
  return forall(
      "x", Sort::Vertex,
      forall("y", Sort::Vertex,
             implies(adj("x", "y"),
                     lor(member("x", "S"), member("y", "S")))));
}

FormulaPtr dominating_set() {
  return forall("x", Sort::Vertex, lor(member("x", "S"), adj("x", "S")));
}

FormulaPtr total_dominating_set() {
  // every vertex (including members of S) has a neighbor in S
  return forall("x", Sort::Vertex, adj("x", "S"));
}

FormulaPtr independent_dominating_set() {
  return land(dominating_set(), independent_set());
}

FormulaPtr connected_set() {
  // For every X: either X misses S, or X covers S, or an S-internal edge
  // crosses the X boundary — i.e. no nontrivial split of S is edge-free.
  FormulaPtr crossing_edge = exists(
      "x", Sort::Vertex,
      exists("y", Sort::Vertex,
             land_all({member("x", "S"), member("x", "X"), member("y", "S"),
                       lnot(member("y", "X")), adj("x", "y")})));
  return forall("X", Sort::VertexSet,
                lor_all({disjoint("X", "S"), subset("S", "X"), crossing_edge}));
}

FormulaPtr connected_dominating_set() {
  return land(dominating_set(), connected_set());
}

FormulaPtr red_blue_dominating_set() {
  // Section 6: S is all-blue and dominates every red vertex.
  FormulaPtr all_blue =
      forall("x", Sort::Vertex, implies(member("x", "S"), label("blue", "x")));
  FormulaPtr dominates_red = forall(
      "y", Sort::Vertex,
      implies(label("red", "y"), lor(member("y", "S"), adj("y", "S"))));
  return land(all_blue, dominates_red);
}

FormulaPtr feedback_vertex_set() {
  // G - S is acyclic: no nonempty X disjoint from S whose members all have
  // two distinct X-neighbors.
  FormulaPtr inner =
      exists("y1", Sort::Vertex,
             exists("y2", Sort::Vertex,
                    land_all({member("y1", "X"), member("y2", "X"),
                              lnot(equal("y1", "y2")), adj("x", "y1"),
                              adj("x", "y2")})));
  FormulaPtr all_have_two =
      forall("x", Sort::Vertex, implies(member("x", "X"), inner));
  return lnot(exists(
      "X", Sort::VertexSet,
      land_all({lnot(empty_set("X")), disjoint("X", "S"), all_have_two})));
}

FormulaPtr spanning_connected() {
  // every nonempty, non-full X has an F-edge leaving it; and every vertex is
  // incident to F (so F spans), expressed without raising the rank.
  FormulaPtr conn = forall(
      "X", Sort::VertexSet,
      lor_all({empty_set("X"), full_set("X"), crossing("F", "X")}));
  FormulaPtr spans = forall(
      "X", Sort::VertexSet,
      implies(singleton("X"), lor(inc("X", "F"), full_set("X"))));
  return land(conn, spans);
}

FormulaPtr spanning_tree() {
  // spanning_connected plus acyclicity of F: there is no nonempty F' <= F
  // whose every incident vertex meets at least two F'-edges.
  FormulaPtr two_edges =
      exists("e1", Sort::Edge,
             exists("e2", Sort::Edge,
                    land_all({member("e1", "Fp"), member("e2", "Fp"),
                              lnot(equal("e1", "e2")), inc("x", "e1"),
                              inc("x", "e2")})));
  FormulaPtr all_deg2 = forall(
      "x", Sort::Vertex, implies(inc("x", "Fp"), two_edges));
  FormulaPtr has_cycle = exists(
      "Fp", Sort::EdgeSet,
      land_all({lnot(empty_set("Fp")), subset("Fp", "F"), all_deg2}));
  return land(spanning_connected(), lnot(has_cycle));
}

FormulaPtr matching() {
  FormulaPtr share =
      exists("x", Sort::Vertex, land(inc("x", "e1"), inc("x", "e2")));
  return forall(
      "e1", Sort::Edge,
      forall("e2", Sort::Edge,
             implies(land_all({member("e1", "F"), member("e2", "F"),
                               lnot(equal("e1", "e2"))}),
                     lnot(share))));
}

FormulaPtr perfect_matching() {
  return land(matching(),
              forall("x", Sort::Vertex, inc("x", "F")));
}

FormulaPtr edge_dominating_set() {
  // e in F, or some endpoint of e touches an F-edge.
  FormulaPtr touched = exists(
      "x", Sort::Vertex, land(inc("x", "e"), inc("x", "F")));
  return forall("e", Sort::Edge, lor(member("e", "F"), touched));
}

FormulaPtr triangle_tuple() {
  return land_all({singleton("X"), singleton("Y"), singleton("Z"),
                   adj("X", "Y"), adj("Y", "Z"), adj("X", "Z")});
}

FormulaPtr independent_set_indicator() { return lnot(adj("S", "S")); }

}  // namespace dmc::mso::lib
