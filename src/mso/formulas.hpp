// Library of MSO formulas for the graph problems the paper names.
//
// Naming: closed formulas decide a graph property; formulas with a free
// variable named "S" (vertex set) or "F" (edge set) define optimization and
// counting problems (Sections 4 and 6 of the paper).
//
// Where the natural FO encoding has high quantifier rank, a low-rank variant
// built from the compositional set atomics is also provided; the test suite
// checks the variants agree with brute-force semantics.
#pragma once

#include "graph/graph.hpp"
#include "mso/ast.hpp"

namespace dmc::mso::lib {

// --- closed formulas (decision, Theorem 6.1 first bullet) -------------------

/// No K3 subgraph (paper Section 1 example). Rank 3.
FormulaPtr triangle_free();

/// No C4 subgraph (paper's running hard example). Rank 4.
FormulaPtr c4_free();

/// No copy of H as a subgraph (Corollary 7.3); rank |V(H)|.
/// If `induced`, forbids induced copies instead.
FormulaPtr h_free(const Graph& h, bool induced = false);

/// Proper k-colorability; rank k+1.
FormulaPtr k_colorable(int k);

/// Non-3-colorability (paper Section 1.1). Rank 4.
FormulaPtr not_3_colorable();

/// Acyclicity, the paper's Section 1 MSO example. Rank 4.
FormulaPtr acyclic();

/// Connectivity via the border atomic. Rank 1.
FormulaPtr connected();

/// Some vertex has no neighbor. Rank 2 (FO encoding).
FormulaPtr has_isolated_vertex();

/// Same property, rank-1 encoding through sing/border.
FormulaPtr has_isolated_vertex_lowrank();

/// Some vertex has degree >= k (the paper's Omega(n) lower-bound example
/// uses k = 3). Rank k+1.
FormulaPtr has_vertex_of_degree_ge(int k);

/// Labeled example from Section 1.1: the red/blue labels form a proper
/// 2-coloring.
FormulaPtr properly_2_colored();

/// Contains K_k as a subgraph ("maximum clique" is in the paper's problem
/// list). Rank k.
FormulaPtr has_clique(int k);

/// Contains a path on k vertices as a subgraph (relates to treedepth:
/// td(G) <= d implies no path on 2^d vertices, Lemma 2.5). Rank k.
FormulaPtr has_path(int k);

/// Cograph recognition: no induced P4. Rank 4.
FormulaPtr cograph();

/// Max degree <= k everywhere. Rank k+2.
FormulaPtr max_degree_le(int k);

// --- formulas with free vertex-set variable "S" ------------------------------

FormulaPtr independent_set();           // rank 0
FormulaPtr independent_set_naive();     // rank 2 FO encoding
FormulaPtr vertex_cover();              // rank 2
FormulaPtr dominating_set();            // rank 1
/// S dominates every red vertex and S is all-blue (Section 6 example).
FormulaPtr red_blue_dominating_set();   // rank 1
FormulaPtr feedback_vertex_set();       // rank 4
FormulaPtr total_dominating_set();      // rank 1: every vertex has an S-neighbor
FormulaPtr independent_dominating_set();// rank 1
/// G[S] is connected (allows empty/singleton S). Rank 3.
FormulaPtr connected_set();
/// Connected dominating set (backbone): dominating & connected. Rank 3.
FormulaPtr connected_dominating_set();

// --- formulas with free edge-set variable "F" --------------------------------

/// F makes the graph connected and touches every vertex. Rank 1. With
/// strictly positive edge weights, min-weight F satisfying this formula is
/// exactly the MST (no optimal solution contains a cycle).
FormulaPtr spanning_connected();

/// F is a spanning tree: spanning_connected and F is acyclic. Rank 4.
FormulaPtr spanning_tree();

FormulaPtr matching();                  // rank 3
FormulaPtr perfect_matching();          // rank 3
/// Every edge of G shares an endpoint with some F-edge. Rank 2.
FormulaPtr edge_dominating_set();

// --- counting formulas (Section 6) -------------------------------------------

/// Free singleton vertex-set variables X, Y, Z forming a triangle; the
/// number of satisfying assignments is 6 * (#triangles). Rank 0.
FormulaPtr triangle_tuple();

/// Free vertex-set variable S that is independent; counting its satisfying
/// assignments counts independent sets. Rank 0.
FormulaPtr independent_set_indicator();

}  // namespace dmc::mso::lib
