#include "mso/lower.hpp"

#include <map>
#include <stdexcept>

namespace dmc::mso {

namespace {

FormulaPtr lower_rec(const FormulaPtr& f, std::map<std::string, Sort>& scope) {
  switch (f->kind) {
    case Kind::True:
    case Kind::False:
    case Kind::Adjacent:
    case Kind::Incident:
    case Kind::Subset:
    case Kind::Disjoint:
    case Kind::Singleton:
    case Kind::EmptySet:
    case Kind::FullSet:
    case Kind::Crossing:
    case Kind::Border:
    case Kind::Label:
      return f;  // kind unchanged; singleton-set semantics coincide
    case Kind::Member:
      return subset(f->a, f->b);
    case Kind::Equal:
      return land(subset(f->a, f->b), subset(f->b, f->a));
    case Kind::Not:
      return lnot(lower_rec(f->left, scope));
    case Kind::And:
      return land(lower_rec(f->left, scope), lower_rec(f->right, scope));
    case Kind::Or:
      return lor(lower_rec(f->left, scope), lower_rec(f->right, scope));
    case Kind::Implies:
      return implies(lower_rec(f->left, scope), lower_rec(f->right, scope));
    case Kind::Iff:
      return iff(lower_rec(f->left, scope), lower_rec(f->right, scope));
    case Kind::Exists:
    case Kind::Forall: {
      const Sort lowered_sort = set_sort_of(f->var_sort);
      const auto prev = scope.find(f->var);
      const bool had = prev != scope.end();
      const Sort old = had ? prev->second : Sort::Vertex;
      scope[f->var] = lowered_sort;
      FormulaPtr body = lower_rec(f->left, scope);
      if (had)
        scope[f->var] = old;
      else
        scope.erase(f->var);
      if (is_individual(f->var_sort)) {
        body = f->kind == Kind::Exists ? land(singleton(f->var), body)
                                       : implies(singleton(f->var), body);
      }
      return f->kind == Kind::Exists ? exists(f->var, lowered_sort, body)
                                     : forall(f->var, lowered_sort, body);
    }
  }
  throw std::logic_error("lower: unknown kind");
}

}  // namespace

FormulaPtr lower(const FormulaPtr& f,
                 const std::vector<std::pair<std::string, Sort>>& free_sorts) {
  for (const auto& [name, sort] : free_sorts)
    if (!is_set(sort))
      throw std::invalid_argument("lower: free variable '" + name +
                                  "' must be set-sorted");
  // Validate the surface formula first (also infers free variables).
  const auto inferred = check_well_formed(*f, free_sorts);
  for (const auto& [name, sort] : inferred)
    if (!is_set(sort))
      throw std::invalid_argument("lower: free variable '" + name +
                                  "' must be set-sorted (declare it)");
  std::map<std::string, Sort> scope;
  for (const auto& [name, sort] : inferred) scope[name] = sort;
  FormulaPtr out = lower_rec(f, scope);
  check_well_formed(*out, inferred);  // sanity: result remains well-formed
  return out;
}

bool is_lowered(const Formula& f) {
  switch (f.kind) {
    case Kind::Member:
    case Kind::Equal:
      return false;
    case Kind::Not:
      return is_lowered(*f.left);
    case Kind::And:
    case Kind::Or:
    case Kind::Implies:
    case Kind::Iff:
      return is_lowered(*f.left) && is_lowered(*f.right);
    case Kind::Exists:
    case Kind::Forall:
      return is_set(f.var_sort) && is_lowered(*f.left);
    default:
      return true;
  }
}

}  // namespace dmc::mso
