// Lowering to set normal form.
//
// The BPT type engine works with set variables only. Lowering replaces every
// individual quantifier by a set quantifier guarded by sing(), rewrites
// 'in' to sub(), and splits set equality into two sub() atomics:
//
//   exists vertex x. phi   ==>  exists vset x. sing(x) & phi'
//   forall vertex x. phi   ==>  forall vset x. sing(x) -> phi'
//   a in B                 ==>  sub(a, B)
//   A = B                  ==>  sub(A, B) & sub(B, A)
//
// The remaining atomics (adj, inc, label, ...) have identical semantics on
// singleton sets, so their kinds are unchanged. Quantifier rank is preserved.
//
// Free variables of the input must already be set-sorted (the engine's
// optimization/counting interface passes vertex-set or edge-set variables).
#pragma once

#include "mso/ast.hpp"

namespace dmc::mso {

/// Lowers `f`; `free_sorts` declares the sorts of free variables (must all
/// be set sorts). Throws std::invalid_argument if the result would retain an
/// individual variable or if `f` is ill-formed.
FormulaPtr lower(const FormulaPtr& f,
                 const std::vector<std::pair<std::string, Sort>>& free_sorts = {});

/// True iff `f` is already in set normal form (all variables set-sorted,
/// no Member/Equal kinds).
bool is_lowered(const Formula& f);

}  // namespace dmc::mso
