#include "mso/normalize.hpp"

#include <stdexcept>

namespace dmc::mso {

namespace {

FormulaPtr nnf(const FormulaPtr& f, bool negate);

FormulaPtr nnf_pos(const FormulaPtr& f) { return nnf(f, false); }
FormulaPtr nnf_neg(const FormulaPtr& f) { return nnf(f, true); }

FormulaPtr nnf(const FormulaPtr& f, bool negate) {
  switch (f->kind) {
    case Kind::True:
      return negate ? f_false() : f_true();
    case Kind::False:
      return negate ? f_true() : f_false();
    case Kind::Not:
      return nnf(f->left, !negate);
    case Kind::And:
      return negate ? lor(nnf_neg(f->left), nnf_neg(f->right))
                    : land(nnf_pos(f->left), nnf_pos(f->right));
    case Kind::Or:
      return negate ? land(nnf_neg(f->left), nnf_neg(f->right))
                    : lor(nnf_pos(f->left), nnf_pos(f->right));
    case Kind::Implies:
      // a -> b == !a | b
      return negate ? land(nnf_pos(f->left), nnf_neg(f->right))
                    : lor(nnf_neg(f->left), nnf_pos(f->right));
    case Kind::Iff:
      // a <-> b == (a & b) | (!a & !b)
      if (negate)
        return lor(land(nnf_pos(f->left), nnf_neg(f->right)),
                   land(nnf_neg(f->left), nnf_pos(f->right)));
      return lor(land(nnf_pos(f->left), nnf_pos(f->right)),
                 land(nnf_neg(f->left), nnf_neg(f->right)));
    case Kind::Exists:
      return negate ? forall(f->var, f->var_sort, nnf_neg(f->left))
                    : exists(f->var, f->var_sort, nnf_pos(f->left));
    case Kind::Forall:
      return negate ? exists(f->var, f->var_sort, nnf_neg(f->left))
                    : forall(f->var, f->var_sort, nnf_pos(f->left));
    default:  // atoms
      return negate ? lnot(f) : f;
  }
}

}  // namespace

FormulaPtr to_nnf(const FormulaPtr& f) { return nnf(f, false); }

FormulaPtr fold_constants(const FormulaPtr& f) {
  auto is_true = [](const FormulaPtr& x) { return x->kind == Kind::True; };
  auto is_false = [](const FormulaPtr& x) { return x->kind == Kind::False; };
  switch (f->kind) {
    case Kind::Not: {
      const FormulaPtr body = fold_constants(f->left);
      if (is_true(body)) return f_false();
      if (is_false(body)) return f_true();
      return lnot(body);
    }
    case Kind::And: {
      const FormulaPtr l = fold_constants(f->left);
      const FormulaPtr r = fold_constants(f->right);
      if (is_false(l) || is_false(r)) return f_false();
      if (is_true(l)) return r;
      if (is_true(r)) return l;
      return land(l, r);
    }
    case Kind::Or: {
      const FormulaPtr l = fold_constants(f->left);
      const FormulaPtr r = fold_constants(f->right);
      if (is_true(l) || is_true(r)) return f_true();
      if (is_false(l)) return r;
      if (is_false(r)) return l;
      return lor(l, r);
    }
    case Kind::Implies: {
      const FormulaPtr l = fold_constants(f->left);
      const FormulaPtr r = fold_constants(f->right);
      if (is_false(l) || is_true(r)) return f_true();
      if (is_true(l)) return r;
      if (is_false(r)) return lnot(l);
      return implies(l, r);
    }
    case Kind::Iff: {
      const FormulaPtr l = fold_constants(f->left);
      const FormulaPtr r = fold_constants(f->right);
      if (is_true(l)) return r;
      if (is_true(r)) return l;
      if (is_false(l)) return fold_constants(lnot(r));
      if (is_false(r)) return fold_constants(lnot(l));
      return iff(l, r);
    }
    case Kind::Exists:
    case Kind::Forall: {
      const FormulaPtr body = fold_constants(f->left);
      // Domains are nonempty for vertex-kind sorts only when the graph is
      // nonempty; set sorts always admit the empty set, so quantifiers over
      // constant bodies reduce to the constant.
      if (is_true(body) || is_false(body)) {
        if (is_set(f->var_sort)) return body;
        // individual sorts: exists over an empty edge domain could differ;
        // keep the quantifier to stay conservative.
      }
      return f->kind == Kind::Exists ? exists(f->var, f->var_sort, body)
                                     : forall(f->var, f->var_sort, body);
    }
    default:
      return f;
  }
}

FormulaPtr normalize(const FormulaPtr& f) { return fold_constants(to_nnf(f)); }

int formula_size(const Formula& f) {
  int size = 1;
  if (f.left) size += formula_size(*f.left);
  if (f.right) size += formula_size(*f.right);
  return size;
}

int count_quantifiers(const Formula& f) {
  int count = is_quantifier(f.kind) ? 1 : 0;
  if (f.left) count += count_quantifiers(*f.left);
  if (f.right) count += count_quantifiers(*f.right);
  return count;
}

}  // namespace dmc::mso
