// Formula normalization: negation normal form and constant folding.
//
// NNF pushes negations to the atoms (dualizing quantifiers and
// connectives); Implies and Iff are expanded. Constant folding removes
// True/False subformulas. Both transforms preserve semantics and never
// increase quantifier rank, which the engine cares about.
#pragma once

#include "mso/ast.hpp"

namespace dmc::mso {

/// Negation normal form: negations appear only directly above atoms;
/// no Implies/Iff remain.
FormulaPtr to_nnf(const FormulaPtr& f);

/// Folds constants: And(True, x) -> x, Or(True, x) -> True,
/// Not(True) -> False, quantifiers over constant bodies, etc.
FormulaPtr fold_constants(const FormulaPtr& f);

/// fold_constants(to_nnf(f)).
FormulaPtr normalize(const FormulaPtr& f);

/// Number of AST nodes.
int formula_size(const Formula& f);

/// Total number of quantifier nodes (not the rank).
int count_quantifiers(const Formula& f);

}  // namespace dmc::mso
