#include "mso/parser.hpp"

#include <cctype>
#include <optional>
#include <stdexcept>
#include <vector>

namespace dmc::mso {

namespace {

struct Token {
  enum class Type { Ident, Symbol, End };
  Type type;
  std::string text;
  std::size_t pos;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token next() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("MSO parse error at position " +
                                std::to_string(current_.pos) + ": " + msg +
                                (current_.type == Token::Type::End
                                     ? " (at end of input)"
                                     : " (near '" + current_.text + "')"));
  }

 private:
  void advance() {
    while (i_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[i_])))
      ++i_;
    const std::size_t start = i_;
    if (i_ >= text_.size()) {
      current_ = {Token::Type::End, "", start};
      return;
    }
    const char c = text_[i_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i_;
      while (j < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[j])) ||
              text_[j] == '_' || text_[j] == '\''))
        ++j;
      current_ = {Token::Type::Ident, text_.substr(i_, j - i_), start};
      i_ = j;
      return;
    }
    // multi-char symbols first
    for (const char* sym : {"<->", "->", "!="}) {
      const std::size_t len = std::string(sym).size();
      if (text_.compare(i_, len, sym) == 0) {
        current_ = {Token::Type::Symbol, sym, start};
        i_ += len;
        return;
      }
    }
    if (std::string("()&|!~=.,").find(c) != std::string::npos) {
      current_ = {Token::Type::Symbol, std::string(1, c), start};
      ++i_;
      return;
    }
    throw std::invalid_argument("MSO parse error at position " +
                                std::to_string(start) +
                                ": unexpected character '" + c + "'");
  }

  const std::string& text_;
  std::size_t i_ = 0;
  Token current_;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  FormulaPtr parse_formula() {
    FormulaPtr f = parse_iff();
    if (lex_.peek().type != Token::Type::End)
      lex_.fail("trailing input after formula");
    return f;
  }

 private:
  bool accept_symbol(const std::string& s) {
    if (lex_.peek().type == Token::Type::Symbol && lex_.peek().text == s) {
      lex_.next();
      return true;
    }
    return false;
  }

  bool accept_ident(const std::string& s) {
    if (lex_.peek().type == Token::Type::Ident && lex_.peek().text == s) {
      lex_.next();
      return true;
    }
    return false;
  }

  void expect_symbol(const std::string& s) {
    if (!accept_symbol(s)) lex_.fail("expected '" + s + "'");
  }

  std::string expect_ident() {
    if (lex_.peek().type != Token::Type::Ident) lex_.fail("expected identifier");
    return lex_.next().text;
  }

  FormulaPtr parse_iff() {
    FormulaPtr f = parse_impl();
    while (accept_symbol("<->")) f = iff(f, parse_impl());
    return f;
  }

  FormulaPtr parse_impl() {
    FormulaPtr f = parse_or();
    if (accept_symbol("->")) return implies(f, parse_impl());
    return f;
  }

  FormulaPtr parse_or() {
    FormulaPtr f = parse_and();
    while (accept_symbol("|") || accept_ident("or")) f = lor(f, parse_and());
    return f;
  }

  FormulaPtr parse_and() {
    FormulaPtr f = parse_unary();
    while (accept_symbol("&") || accept_ident("and")) f = land(f, parse_unary());
    return f;
  }

  std::optional<Sort> sort_keyword() {
    if (lex_.peek().type != Token::Type::Ident) return std::nullopt;
    const std::string& t = lex_.peek().text;
    if (t == "vertex") return Sort::Vertex;
    if (t == "edge") return Sort::Edge;
    if (t == "vset") return Sort::VertexSet;
    if (t == "eset") return Sort::EdgeSet;
    return std::nullopt;
  }

  FormulaPtr parse_quantifier(bool is_exists) {
    std::vector<std::pair<std::string, Sort>> binds;
    Sort current = Sort::Vertex;
    bool first = true;
    do {
      if (auto s = sort_keyword()) {
        current = *s;
        lex_.next();
      } else if (first) {
        lex_.fail("expected sort after quantifier");
      }
      first = false;
      binds.emplace_back(expect_ident(), current);
    } while (accept_symbol(","));
    expect_symbol(".");
    FormulaPtr body = parse_iff();
    for (auto it = binds.rbegin(); it != binds.rend(); ++it)
      body = is_exists ? exists(it->first, it->second, body)
                       : forall(it->first, it->second, body);
    return body;
  }

  FormulaPtr parse_unary() {
    if (accept_symbol("!") || accept_symbol("~") || accept_ident("not"))
      return lnot(parse_unary());
    if (accept_ident("exists")) return parse_quantifier(true);
    if (accept_ident("forall")) return parse_quantifier(false);
    return parse_primary();
  }

  FormulaPtr parse_primary() {
    if (accept_symbol("(")) {
      FormulaPtr f = parse_iff();
      expect_symbol(")");
      return f;
    }
    if (lex_.peek().type != Token::Type::Ident) lex_.fail("expected atom");
    const std::string head = lex_.next().text;
    if (head == "true") return f_true();
    if (head == "false") return f_false();
    if (head == "adj" || head == "inc" || head == "sub" || head == "cross" ||
        head == "disj") {
      expect_symbol("(");
      const std::string a = expect_ident();
      expect_symbol(",");
      const std::string b = expect_ident();
      expect_symbol(")");
      if (head == "adj") return adj(a, b);
      if (head == "inc") return inc(a, b);
      if (head == "sub") return subset(a, b);
      if (head == "disj") return disjoint(a, b);
      return crossing(a, b);
    }
    if (head == "sing" || head == "empty" || head == "full" ||
        head == "border") {
      expect_symbol("(");
      const std::string a = expect_ident();
      expect_symbol(")");
      if (head == "sing") return singleton(a);
      if (head == "empty") return empty_set(a);
      if (head == "full") return full_set(a);
      return border(a);
    }
    if (head == "label") {
      expect_symbol("(");
      const std::string name = expect_ident();
      expect_symbol(",");
      const std::string a = expect_ident();
      expect_symbol(")");
      return label(name, a);
    }
    // infix atoms: head is the left operand variable
    if (accept_symbol("=")) return equal(head, expect_ident());
    if (accept_symbol("!=")) return lnot(equal(head, expect_ident()));
    if (accept_ident("in")) return member(head, expect_ident());
    lex_.fail("expected '=', '!=' or 'in' after variable '" + head + "'");
  }

  Lexer lex_;
};

}  // namespace

FormulaPtr parse(const std::string& text) {
  Parser p(text);
  return p.parse_formula();
}

}  // namespace dmc::mso
