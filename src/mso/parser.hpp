// Recursive-descent parser for the MSO text syntax.
//
// Grammar (precedence low to high: <->, ->, |, &, !, atoms):
//   formula   := iff
//   iff       := impl ( '<->' impl )*
//   impl      := or ( '->' impl )?              (right associative)
//   or        := and ( ('|'|'or') and )*
//   and       := unary ( ('&'|'and') unary )*
//   unary     := ('!'|'not') unary | quantifier | primary
//   quantifier:= ('exists'|'forall') sort name (',' [sort] name)* '.' formula
//   primary   := '(' formula ')' | 'true' | 'false' | atom
//   atom      := adj(t,t) | inc(t,t) | sub(t,t) | sing(t) | empty(t)
//              | full(t) | cross(t,t) | border(t) | label(name, t)
//              | t '=' t | t '!=' t | t 'in' t
//   sort      := 'vertex' | 'edge' | 'vset' | 'eset'
//
// A quantifier body extends as far right as possible. `exists vertex x, y`
// binds both x and y as vertices.
#pragma once

#include <string>

#include "mso/ast.hpp"

namespace dmc::mso {

/// Parses `text` into a formula; throws std::invalid_argument with a
/// position-annotated message on syntax errors.
FormulaPtr parse(const std::string& text);

}  // namespace dmc::mso
