#include "obs/atomic_file.hpp"

#include <cstdio>
#include <fstream>

namespace dmc::obs {

bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* err) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      if (err != nullptr) *err = "cannot open " + tmp;
      return false;
    }
    out << content;
    out.flush();
    if (!out) {
      if (err != nullptr) *err = "short write to " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err != nullptr) *err = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace dmc::obs
