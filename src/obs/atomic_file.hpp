// Atomic file publication: write to `<path>.tmp`, flush, rename over
// `<path>`. Readers (Prometheus scrapers tailing the dmcd metrics
// snapshot, post-mortem tooling picking up flight-recorder dumps) never
// observe a torn file. This is the one shared implementation of the
// temp+rename idiom — tools/dmc and tools/dmcd used to each carry their
// own copy.
#pragma once

#include <string>

namespace dmc::obs {

/// Writes `content` to `path` atomically (temp file + rename). Returns
/// false on failure and, if `err` is non-null, stores a one-line reason;
/// the temp file is removed on failure.
bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* err = nullptr);

}  // namespace dmc::obs
