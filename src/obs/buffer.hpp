// In-memory trace sink: records the full event stream in emission order.
//
// Tests and benches query it directly; summary.hpp reduces it to per-phase
// totals. The buffer keeps the interleaving of round and phase events
// (phase attribution of a round depends on which spans were open when the
// round executed), plus flat per-kind views for convenience.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/trace.hpp"

namespace dmc::obs {

class TraceBuffer final : public TraceSink {
 public:
  struct Item {
    enum class Kind : std::uint8_t {
      RunBegin,
      Round,
      Phase,
      Fault,
      Quiescent,
      RunEnd
    };
    Kind kind = Kind::Round;
    // Exactly one of the following is meaningful, per `kind`.
    RunInfo run;
    RoundEvent round;
    PhaseEvent phase;
    FaultEvent fault;
    QuiescentEvent quiescent;
  };

  void run_begin(const RunInfo& info) override {
    Item item;
    item.kind = Item::Kind::RunBegin;
    item.run = info;
    items_.push_back(std::move(item));
    ++num_runs_;
  }

  void round(const RoundEvent& ev) override {
    Item item;
    item.kind = Item::Kind::Round;
    item.round = ev;
    items_.push_back(std::move(item));
    rounds_.push_back(ev);
  }

  void phase(const PhaseEvent& ev) override {
    Item item;
    item.kind = Item::Kind::Phase;
    item.phase = ev;
    items_.push_back(std::move(item));
    phases_.push_back(ev);
  }

  void fault(const FaultEvent& ev) override {
    Item item;
    item.kind = Item::Kind::Fault;
    item.fault = ev;
    items_.push_back(std::move(item));
    faults_.push_back(ev);
  }

  // Stored compactly, not expanded: a million-vertex fast-forwarded run
  // coalesces billions of rounds into a handful of these.
  void quiescent(const QuiescentEvent& ev) override {
    Item item;
    item.kind = Item::Kind::Quiescent;
    item.quiescent = ev;
    items_.push_back(std::move(item));
    quiescents_.push_back(ev);
  }

  void run_end() override {
    Item item;
    item.kind = Item::Kind::RunEnd;
    items_.push_back(std::move(item));
  }

  /// Full stream in emission order.
  const std::vector<Item>& items() const { return items_; }
  /// All round events, in order.
  const std::vector<RoundEvent>& rounds() const { return rounds_; }
  /// All phase events, in order.
  const std::vector<PhaseEvent>& phases() const { return phases_; }
  /// All injected-fault events, in order.
  const std::vector<FaultEvent>& faults() const { return faults_; }
  /// All coalesced quiescent stretches, in order.
  const std::vector<QuiescentEvent>& quiescents() const { return quiescents_; }
  int num_runs() const { return num_runs_; }

  void clear() {
    items_.clear();
    rounds_.clear();
    phases_.clear();
    faults_.clear();
    quiescents_.clear();
    num_runs_ = 0;
  }

 private:
  std::vector<Item> items_;
  std::vector<RoundEvent> rounds_;
  std::vector<PhaseEvent> phases_;
  std::vector<FaultEvent> faults_;
  std::vector<QuiescentEvent> quiescents_;
  int num_runs_ = 0;
};

}  // namespace dmc::obs
