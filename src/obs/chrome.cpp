#include "obs/chrome.hpp"

#include <stdexcept>
#include <string>

namespace dmc::obs {

namespace {

std::string counter(const char* name, long ts, const char* key, long long v) {
  return std::string("{\"name\":\"") + name +
         "\",\"ph\":\"C\",\"ts\":" + std::to_string(ts) +
         ",\"pid\":0,\"args\":{\"" + key + "\":" + std::to_string(v) + "}}";
}

}  // namespace

ChromeTraceExporter::ChromeTraceExporter(std::ostream& out, long us_per_round)
    : out_(out), us_per_round_(us_per_round) {
  if (us_per_round_ < 1)
    throw std::invalid_argument("ChromeTraceExporter: us_per_round >= 1");
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
       "\"args\":{\"name\":\"dmc CONGEST simulator\"}}");
  emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
       "\"args\":{\"name\":\"protocol phases\"}}");
}

ChromeTraceExporter::~ChromeTraceExporter() { close(); }

void ChromeTraceExporter::emit(const std::string& json) {
  if (closed_)
    throw std::logic_error("ChromeTraceExporter: event after close()");
  if (!first_) out_ << ",";
  first_ = false;
  out_ << "\n" << json;
}

void ChromeTraceExporter::run_begin(const RunInfo& info) {
  emit("{\"name\":\"run n=" + std::to_string(info.n) +
       " B=" + std::to_string(info.bandwidth) +
       "\",\"cat\":\"run\",\"ph\":\"I\",\"s\":\"g\",\"ts\":" +
       std::to_string(info.first_round * us_per_round_) + ",\"pid\":0}");
}

void ChromeTraceExporter::round(const RoundEvent& ev) {
  const long ts = ev.round * us_per_round_;
  emit(counter("messages/round", ts, "messages", ev.messages));
  emit(counter("bits/round", ts, "bits", ev.bits));
  emit(counter("active nodes", ts, "active", ev.active_nodes));
}

void ChromeTraceExporter::quiescent(const QuiescentEvent& ev) {
  // Two samples bracket the quiet stretch so the counter tracks render a
  // flat zero plateau instead of interpolating across the gap — constant
  // cost regardless of how many rounds were skipped.
  for (const long round : {ev.first_round,
                           ev.first_round + ev.skipped_rounds - 1}) {
    const long ts = round * us_per_round_;
    emit(counter("messages/round", ts, "messages", 0));
    emit(counter("bits/round", ts, "bits", 0));
    emit(counter("active nodes", ts, "active", ev.active_nodes));
    if (ev.skipped_rounds == 1) break;
  }
}

void ChromeTraceExporter::phase(const PhaseEvent& ev) {
  const char* ph = ev.kind == PhaseEvent::Kind::Begin ? "B" : "E";
  emit("{\"name\":\"" + detail::json_escape(ev.name) +
       "\",\"cat\":\"phase\",\"ph\":\"" + ph +
       "\",\"ts\":" + std::to_string(ev.round * us_per_round_) +
       ",\"pid\":0,\"tid\":0}");
}

void ChromeTraceExporter::close() {
  if (closed_) return;
  closed_ = true;
  out_ << "\n]}\n";
  out_.flush();
}

}  // namespace dmc::obs
