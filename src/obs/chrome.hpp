// Chrome trace_event exporter: produces a JSON file loadable in
// chrome://tracing or https://ui.perfetto.dev for a flame view of the
// protocol's phases over simulated rounds.
//
// Time mapping: one CONGEST round = `us_per_round` trace microseconds
// (default 1000, i.e. a round renders as one millisecond). Phase spans
// become B/E duration events on a single track; per-round message/bit
// deltas and the active-node count become counter ("C") tracks, so the
// flame view shows bandwidth utilization evolving under each phase.
//
// The JSON array must be terminated: call close() (or let the destructor
// do it) before opening the file in a viewer.
#pragma once

#include <ostream>

#include "obs/trace.hpp"

namespace dmc::obs {

class ChromeTraceExporter final : public TraceSink {
 public:
  /// The stream must outlive the exporter. Writes the header immediately.
  explicit ChromeTraceExporter(std::ostream& out, long us_per_round = 1000);
  ~ChromeTraceExporter() override;

  void run_begin(const RunInfo& info) override;
  void round(const RoundEvent& ev) override;
  void phase(const PhaseEvent& ev) override;
  void quiescent(const QuiescentEvent& ev) override;
  void run_end() override {}

  /// Writes the trailer; further events are rejected. Idempotent.
  void close();

 private:
  void emit(const std::string& json);  // one event object

  std::ostream& out_;
  long us_per_round_;
  bool first_ = true;
  bool closed_ = false;
};

}  // namespace dmc::obs
