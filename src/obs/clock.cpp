#include "obs/clock.hpp"

#include <atomic>
#include <chrono>

namespace dmc::obs {

namespace {
std::atomic<long long> g_fake_ms{-1};
}  // namespace

long long now_ms() {
  const long long fake = g_fake_ms.load(std::memory_order_relaxed);
  if (fake >= 0) return fake;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long long now_us() {
  const long long fake = g_fake_ms.load(std::memory_order_relaxed);
  if (fake >= 0) return fake * 1000;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_now_ms_for_test(long long fake_ms) {
  g_fake_ms.store(fake_ms, std::memory_order_relaxed);
}

}  // namespace dmc::obs
