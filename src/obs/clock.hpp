// obs::Clock — the sanctioned monotonic clock seam.
//
// Protocol code must stay deterministic (docs/STATIC_ANALYSIS.md): the
// dmc-lint `raw-clock` rule bans raw std::chrono clock reads outside
// src/obs and src/metrics. Everything that legitimately needs elapsed
// time — serve::io deadlines, query spans, metrics snapshots, the flight
// recorder — reads it through these two functions, so there is exactly
// one place where simulated rounds and wall time can meet (and exactly
// one place to fake in tests via set_now_ms_for_test).
#pragma once

namespace dmc::obs {

/// Milliseconds on the monotonic clock (epoch unspecified; differences
/// are meaningful, absolute values are not).
long long now_ms();

/// Microseconds on the same monotonic clock.
long long now_us();

/// Test seam: override now_ms()/now_us() with a fixed value (us = ms *
/// 1000). Pass a negative value to restore the real clock.
void set_now_ms_for_test(long long fake_ms);

}  // namespace dmc::obs
