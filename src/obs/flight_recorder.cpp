#include "obs/flight_recorder.hpp"

#include <cstring>
#include <sstream>

namespace dmc::obs {

namespace {

void set_label(FlightRecorder::Entry& e, const char* text) {
  std::strncpy(e.label, text, sizeof(e.label) - 1);
  e.label[sizeof(e.label) - 1] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::record(const Entry& e) {
  ring_[next_] = e;
  next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
  ++recorded_;
}

void FlightRecorder::record_run_begin(const RunInfo& info) {
  Entry e;
  e.kind = Kind::RunBegin;
  e.round = info.first_round;
  e.a = info.bandwidth;
  e.c = info.n;
  record(e);
}

void FlightRecorder::record_round(const RoundEvent& ev) {
  Entry e;
  e.kind = Kind::Round;
  e.round = ev.round;
  e.a = ev.messages;
  e.b = ev.bits;
  e.c = ev.active_nodes;
  e.d = ev.done_nodes;
  record(e);
}

void FlightRecorder::record_quiescent(const QuiescentEvent& ev) {
  Entry e;
  e.kind = Kind::Quiescent;
  e.round = ev.first_round;
  e.a = ev.skipped_rounds;
  e.c = ev.active_nodes;
  e.d = ev.done_nodes;
  record(e);
}

void FlightRecorder::record_fault(const FaultEvent& ev) {
  Entry e;
  e.kind = Kind::Fault;
  e.round = ev.round;
  e.a = ev.detail;
  e.c = ev.src;
  e.d = ev.dst;
  set_label(e, to_string(ev.kind));
  record(e);
}

void FlightRecorder::record_phase(const PhaseEvent& ev) {
  record_phase(ev.round, ev.depth, ev.kind == PhaseEvent::Kind::End, ev.name);
}

void FlightRecorder::record_phase(long round, int depth, bool end,
                                  std::string_view name) {
  Entry e;
  e.kind = Kind::Phase;
  e.round = round;
  e.c = depth;
  e.d = end ? 1 : 0;
  const std::size_t len =
      name.size() < sizeof(e.label) - 1 ? name.size() : sizeof(e.label) - 1;
  std::memcpy(e.label, name.data(), len);
  e.label[len] = '\0';
  record(e);
}

void FlightRecorder::record_run_end(long round) {
  Entry e;
  e.kind = Kind::RunEnd;
  e.round = round;
  record(e);
}

void FlightRecorder::note(long round, const char* text) {
  Entry e;
  e.kind = Kind::Note;
  e.round = round;
  set_label(e, text);
  record(e);
}

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot() const {
  std::vector<Entry> out;
  const std::size_t kept = recorded_ < ring_.size() ? recorded_ : ring_.size();
  out.reserve(kept);
  // Oldest retained entry: `next_` when the ring has wrapped, slot 0
  // otherwise.
  const std::size_t start = recorded_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < kept; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

void FlightRecorder::dump_jsonl(std::ostream& out) const {
  const std::vector<Entry> entries = snapshot();
  const std::size_t dropped = recorded_ - entries.size();
  out << "{\"type\":\"flight_header\",\"capacity\":" << ring_.size()
      << ",\"recorded\":" << recorded_ << ",\"dropped\":" << dropped << "}\n";
  for (const Entry& e : entries) {
    switch (e.kind) {
      case Kind::RunBegin:
        out << "{\"type\":\"run_begin\",\"n\":" << e.c << ",\"bandwidth\":"
            << e.a << ",\"first_round\":" << e.round << "}\n";
        break;
      case Kind::Round:
        out << "{\"type\":\"round\",\"round\":" << e.round
            << ",\"messages\":" << e.a << ",\"bits\":" << e.b
            << ",\"active\":" << e.c << ",\"done\":" << e.d << "}\n";
        break;
      case Kind::Quiescent:
        out << "{\"type\":\"quiescent\",\"first_round\":" << e.round
            << ",\"skipped_rounds\":" << e.a << ",\"active\":" << e.c
            << ",\"done\":" << e.d << "}\n";
        break;
      case Kind::Fault:
        out << "{\"type\":\"fault\",\"kind\":\""
            << detail::json_escape(e.label) << "\",\"round\":" << e.round
            << ",\"src\":" << e.c << ",\"dst\":" << e.d
            << ",\"detail\":" << e.a << "}\n";
        break;
      case Kind::Phase:
        out << "{\"type\":\"" << (e.d == 1 ? "phase_end" : "phase_begin")
            << "\",\"name\":\"" << detail::json_escape(e.label)
            << "\",\"round\":" << e.round << ",\"depth\":" << e.c << "}\n";
        break;
      case Kind::Note:
        out << "{\"type\":\"note\",\"round\":" << e.round << ",\"text\":\""
            << detail::json_escape(e.label) << "\"}\n";
        break;
      case Kind::RunEnd:
        out << "{\"type\":\"run_end\",\"round\":" << e.round << "}\n";
        break;
    }
  }
}

std::string FlightRecorder::dump_string() const {
  std::ostringstream out;
  dump_jsonl(out);
  return out.str();
}

void FlightRecorder::clear() {
  next_ = 0;
  recorded_ = 0;
}

}  // namespace dmc::obs
