// obs::FlightRecorder — an always-on, fixed-size ring of the most recent
// simulator events, for post-mortems of degraded runs.
//
// Tracing (`--trace`) is opt-in and unbounded; the flight recorder is the
// opposite: every Network owns one, it costs a fixed pre-allocated block
// of POD entries (no strings, no std::any, no per-event allocation — the
// disabled-path zero-allocation pin in tests/obs_trace_test.cpp covers
// traced and untraced runs alike), and it only ever remembers the last
// `capacity` events. When a run ends degraded (exit codes 5–9), a dmcd
// worker hits a deadline/crash outcome, or the daemon is SIGTERMed
// mid-drain, the ring is dumped as JSONL (one self-describing object per
// line, same field names as the jsonl.hpp trace schema) so "exit 7"
// comes with the last-N-events story: which node crashed, at which
// round, what the network was doing just before.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace dmc::obs {

class FlightRecorder {
 public:
  enum class Kind : std::uint8_t {
    RunBegin,
    Round,
    Quiescent,
    Fault,
    Phase,
    Note,
    RunEnd
  };

  /// One ring slot. POD on purpose: recording is a handful of stores.
  /// Field meaning per kind:
  ///   Round:     round, a=messages, b=bits, c=active, d=done
  ///   Quiescent: round=first skipped, a=skipped_rounds, c=active, d=done
  ///   Fault:     round, a=detail, c=src, d=dst, label=kind name
  ///   Phase:     round, c=depth, d=(0 begin, 1 end), label=name
  ///   Note:      round, label=free-form text (truncated)
  ///   RunBegin:  round=first round, a=bandwidth, c=n
  struct Entry {
    Kind kind = Kind::Note;
    long round = 0;
    long long a = 0;
    long long b = 0;
    int c = 0;
    int d = 0;
    char label[24] = {};
  };

  static constexpr std::size_t kDefaultCapacity = 512;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  // Feeders. All are allocation-free after construction.
  void record(const Entry& e);
  void record_run_begin(const RunInfo& info);
  void record_round(const RoundEvent& ev);
  void record_quiescent(const QuiescentEvent& ev);
  void record_fault(const FaultEvent& ev);
  void record_phase(const PhaseEvent& ev);
  /// Allocation-free variant for untraced networks (no PhaseEvent string).
  void record_phase(long round, int depth, bool end, std::string_view name);
  void record_run_end(long round);
  /// Free-form marker ("churn epoch 3", "stall detected", ...).
  void note(long round, const char* text);

  std::size_t capacity() const { return ring_.size(); }
  /// Total events ever recorded (recorded - min(recorded, capacity) were
  /// overwritten).
  std::size_t recorded() const { return recorded_; }

  /// Retained entries, oldest first.
  std::vector<Entry> snapshot() const;

  /// Writes the ring as JSONL: a `flight_header` line (capacity, total
  /// recorded, dropped count), then one line per retained entry, oldest
  /// first, using the trace schema's field names.
  void dump_jsonl(std::ostream& out) const;

  /// dump_jsonl into a string (for write_file_atomic).
  std::string dump_string() const;

  void clear();

 private:
  std::vector<Entry> ring_;  // sized once in the constructor
  std::size_t next_ = 0;     // slot the next record lands in
  std::size_t recorded_ = 0;
};

}  // namespace dmc::obs
