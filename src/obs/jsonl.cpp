#include "obs/jsonl.hpp"

namespace dmc::obs {

void JsonlExporter::run_begin(const RunInfo& info) {
  out_ << "{\"type\":\"run_begin\",\"n\":" << info.n
       << ",\"bandwidth\":" << info.bandwidth
       << ",\"first_round\":" << info.first_round << "}\n";
}

void JsonlExporter::round(const RoundEvent& ev) {
  out_ << "{\"type\":\"round\",\"round\":" << ev.round
       << ",\"messages\":" << ev.messages << ",\"bits\":" << ev.bits
       << ",\"max_bits\":" << ev.max_message_bits
       << ",\"active\":" << ev.active_nodes << ",\"done\":" << ev.done_nodes
       << "}\n";
}

void JsonlExporter::phase(const PhaseEvent& ev) {
  const char* type =
      ev.kind == PhaseEvent::Kind::Begin ? "phase_begin" : "phase_end";
  out_ << "{\"type\":\"" << type << "\",\"name\":\""
       << detail::json_escape(ev.name) << "\",\"round\":" << ev.round
       << ",\"depth\":" << ev.depth << "}\n";
}

void JsonlExporter::fault(const FaultEvent& ev) {
  out_ << "{\"type\":\"fault\",\"kind\":\"" << to_string(ev.kind)
       << "\",\"round\":" << ev.round << ",\"src\":" << ev.src
       << ",\"dst\":" << ev.dst << ",\"detail\":" << ev.detail << "}\n";
}

void JsonlExporter::quiescent(const QuiescentEvent& ev) {
  out_ << "{\"type\":\"quiescent\",\"first_round\":" << ev.first_round
       << ",\"skipped_rounds\":" << ev.skipped_rounds
       << ",\"active\":" << ev.active_nodes << ",\"done\":" << ev.done_nodes
       << "}\n";
}

void JsonlExporter::run_end() { out_ << "{\"type\":\"run_end\"}\n"; }

}  // namespace dmc::obs
