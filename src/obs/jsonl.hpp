// Streaming JSONL exporter: one self-describing JSON object per line.
//
// Line shapes (stable schema, see docs/OBSERVABILITY.md):
//   {"type":"run_begin","n":32,"bandwidth":32,"first_round":0}
//   {"type":"round","round":7,"messages":62,"bits":372,"max_bits":6,
//    "active":32,"done":0}
//   {"type":"phase_begin","name":"elim-tree","round":0,"depth":0}
//   {"type":"phase_end","name":"elim-tree","round":79,"depth":0}
//   {"type":"fault","kind":"drop","round":12,"src":3,"dst":7,"detail":0}
//   {"type":"quiescent","first_round":80,"skipped_rounds":500,
//    "active":0,"done":32}
//   {"type":"run_end"}
//
// Lines are written as events arrive, so a crashed run still leaves a
// valid prefix (every line is independently parseable).
#pragma once

#include <ostream>

#include "obs/trace.hpp"

namespace dmc::obs {

class JsonlExporter final : public TraceSink {
 public:
  /// The stream must outlive the exporter.
  explicit JsonlExporter(std::ostream& out) : out_(out) {}

  void run_begin(const RunInfo& info) override;
  void round(const RoundEvent& ev) override;
  void phase(const PhaseEvent& ev) override;
  void fault(const FaultEvent& ev) override;
  void quiescent(const QuiescentEvent& ev) override;
  void run_end() override;

 private:
  std::ostream& out_;
};

}  // namespace dmc::obs
