#include "obs/spans.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace dmc::obs {

int SpanLog::open(const std::string& name, int parent) {
  return open_at(name, now_ms(), parent);
}

int SpanLog::open_at(const std::string& name, long long start_ms, int parent) {
  Span s;
  s.name = name;
  s.start_ms = start_ms;
  s.parent = parent;
  spans_.push_back(std::move(s));
  return static_cast<int>(spans_.size()) - 1;
}

void SpanLog::close(int index) { close_at(index, now_ms()); }

void SpanLog::close_at(int index, long long end_ms) {
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  Span& s = spans_[static_cast<std::size_t>(index)];
  if (s.end_ms < 0) s.end_ms = std::max(end_ms, s.start_ms);
}

const Span* SpanLog::find(const std::string& name) const {
  for (const Span& s : spans_)
    if (s.name == name) return &s;
  return nullptr;
}

long long SpanLog::duration_ms(const std::string& name) const {
  const Span* s = find(name);
  return s == nullptr ? 0 : s->duration_ms();
}

std::string SpanLog::to_json() const {
  std::string out = "{\"id\":\"" + detail::json_escape(query_id_) +
                    "\",\"spans\":[";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + detail::json_escape(s.name) +
           "\",\"start_ms\":" + std::to_string(s.start_ms) +
           ",\"dur_ms\":" + std::to_string(s.duration_ms()) +
           ",\"parent\":" + std::to_string(s.parent) + "}";
  }
  out += "]}";
  return out;
}

std::string SpanLog::to_chrome_json() const {
  // Timestamps are rebased to the earliest span so the timeline starts
  // at t = 0; ms -> us for the trace_event clock.
  long long base = 0;
  for (const Span& s : spans_)
    base = spans_.empty() ? 0 : std::min(base == 0 ? s.start_ms : base,
                                         s.start_ms);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& json) {
    if (!first) out += ',';
    first = false;
    out += "\n" + json;
  };
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
       "\"args\":{\"name\":\"dmc query " +
       detail::json_escape(query_id_) + "\"}}");
  for (const Span& s : spans_) {
    const long long ts = (s.start_ms - base) * 1000;
    const long long dur = s.duration_ms() * 1000;
    emit("{\"name\":\"" + detail::json_escape(s.name) +
         "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":" + std::to_string(ts) +
         ",\"dur\":" + std::to_string(dur) + ",\"pid\":0,\"tid\":0}");
  }
  out += "\n]}\n";
  return out;
}

}  // namespace dmc::obs
