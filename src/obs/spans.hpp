// obs::SpanLog — a per-query latency breakdown.
//
// One SpanLog follows one query from dmcd admission to response: each
// layer opens a named span (queue wait, universe build or cache hit,
// execution, persist) stamped with obs::now_ms() on open and close, and
// spans form a tree via parent indices, so the log renders as one
// causally-linked timeline. serve::Scheduler attaches the flattened
// durations to every response as the `"spans"` object, the daemon keeps
// the full logs of recent queries for the `trace <id>` protocol verb,
// and to_chrome_json() renders a log as a chrome://tracing file.
#pragma once

#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace dmc::obs {

struct Span {
  std::string name;        // "queue", "universe", "exec", ...
  long long start_ms = 0;  // obs::now_ms() at open
  long long end_ms = -1;   // -1 while still open
  int parent = -1;         // index of the enclosing span, -1 = root

  long long duration_ms() const {
    return end_ms < 0 ? 0 : end_ms - start_ms;
  }
};

class SpanLog {
 public:
  SpanLog() = default;
  explicit SpanLog(std::string query_id) : query_id_(std::move(query_id)) {}

  const std::string& query_id() const { return query_id_; }
  void set_query_id(std::string id) { query_id_ = std::move(id); }

  /// Opens a span (stamped now) and returns its index.
  int open(const std::string& name, int parent = -1);
  /// Opens a span with an explicit start stamp (e.g. the admission time
  /// recorded before the SpanLog existed).
  int open_at(const std::string& name, long long start_ms, int parent = -1);
  /// Closes span `index` (stamped now). Closing twice keeps the first
  /// stamp.
  void close(int index);
  void close_at(int index, long long end_ms);

  const std::vector<Span>& spans() const { return spans_; }
  const Span* find(const std::string& name) const;
  /// Duration of the span named `name`, or 0 if absent/open.
  long long duration_ms(const std::string& name) const;

  /// One JSON object: {"id":...,"spans":[{"name":...,"start_ms":...,
  /// "dur_ms":...,"parent":...},...]} — the `trace <id>` response body.
  std::string to_json() const;

  /// A chrome://tracing document (B/E duration events, one per span) for
  /// the single-query flame view.
  std::string to_chrome_json() const;

 private:
  std::string query_id_;
  std::vector<Span> spans_;
};

}  // namespace dmc::obs
