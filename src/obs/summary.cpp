#include "obs/summary.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace dmc::obs {

const PhaseTotals* Summary::find(const std::string& path) const {
  for (const auto& p : phases)
    if (p.path == path) return &p;
  return nullptr;
}

PhaseTotals Summary::aggregate(const std::string& prefix) const {
  PhaseTotals out;
  out.path = prefix;
  for (const auto& p : phases) {
    const bool match =
        p.path == prefix ||
        (p.path.size() > prefix.size() && p.path.rfind(prefix, 0) == 0 &&
         p.path[prefix.size()] == '/');
    if (!match) continue;
    out.rounds += p.rounds;
    out.messages += p.messages;
    out.bits += p.bits;
    if (out.first_round < 0 || (p.first_round >= 0 && p.first_round < out.first_round))
      out.first_round = p.first_round;
    out.last_round = std::max(out.last_round, p.last_round);
  }
  return out;
}

Summary summarize(const TraceBuffer& buffer) {
  Summary out;
  out.num_runs = buffer.num_runs();
  std::vector<std::string> stack;
  std::string path = "(untraced)";
  auto rebuild_path = [&] {
    if (stack.empty()) {
      path = "(untraced)";
      return;
    }
    path.clear();
    for (std::size_t i = 0; i < stack.size(); ++i) {
      if (i > 0) path += '/';
      path += stack[i];
    }
  };
  std::map<std::string, std::size_t> index;
  auto totals = [&]() -> PhaseTotals& {
    auto it = index.find(path);
    if (it == index.end()) {
      it = index.emplace(path, out.phases.size()).first;
      out.phases.push_back(PhaseTotals{path, 0, 0, 0, -1, -1});
    }
    return out.phases[it->second];
  };

  for (const auto& item : buffer.items()) {
    switch (item.kind) {
      case TraceBuffer::Item::Kind::RunBegin:
      case TraceBuffer::Item::Kind::RunEnd:
      case TraceBuffer::Item::Kind::Fault:  // faults carry no round totals
        break;
      case TraceBuffer::Item::Kind::Phase:
        if (item.phase.kind == PhaseEvent::Kind::Begin) {
          stack.push_back(item.phase.name);
        } else {
          if (stack.empty() || stack.back() != item.phase.name)
            out.balanced = false;
          if (!stack.empty()) stack.pop_back();
        }
        rebuild_path();
        break;
      case TraceBuffer::Item::Kind::Round: {
        const RoundEvent& ev = item.round;
        PhaseTotals& t = totals();
        t.rounds += 1;
        t.messages += ev.messages;
        t.bits += ev.bits;
        if (t.first_round < 0) t.first_round = ev.round;
        t.last_round = std::max(t.last_round, ev.round);
        out.total_rounds += 1;
        out.total_messages += ev.messages;
        out.total_bits += ev.bits;
        out.max_message_bits =
            std::max(out.max_message_bits, ev.max_message_bits);
        break;
      }
      case TraceBuffer::Item::Kind::Quiescent: {
        // Skipped rounds count in full — coalesced, not dropped — so
        // summary totals still reconcile against NetworkStats exactly.
        const QuiescentEvent& ev = item.quiescent;
        PhaseTotals& t = totals();
        t.rounds += ev.skipped_rounds;
        if (t.first_round < 0) t.first_round = ev.first_round;
        t.last_round =
            std::max(t.last_round, ev.first_round + ev.skipped_rounds - 1);
        out.total_rounds += ev.skipped_rounds;
        break;
      }
    }
  }
  if (!stack.empty()) out.balanced = false;
  return out;
}

std::string format_summary(const Summary& summary) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-34s %10s %12s %16s %7s\n", "phase",
                "rounds", "messages", "bits", "share");
  out += line;
  std::snprintf(line, sizeof(line), "%-34s %10s %12s %16s %7s\n", "-----",
                "------", "--------", "----", "-----");
  out += line;
  for (const auto& p : summary.phases) {
    const double share =
        summary.total_rounds > 0
            ? 100.0 * static_cast<double>(p.rounds) / summary.total_rounds
            : 0.0;
    std::snprintf(line, sizeof(line), "%-34s %10ld %12ld %16lld %6.1f%%\n",
                  p.path.c_str(), p.rounds, p.messages,
                  static_cast<long long>(p.bits), share);
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-34s %10ld %12ld %16lld %6.1f%%\n",
                "total", summary.total_rounds, summary.total_messages,
                static_cast<long long>(summary.total_bits),
                summary.total_rounds > 0 ? 100.0 : 0.0);
  out += line;
  return out;
}

void CurveTable::add(const std::string& series, long x, double value) {
  points_.push_back(Point{series, x, value});
}

std::string CurveTable::format(const std::string& x_name) const {
  // Column order = first-seen series order; row order = ascending x.
  std::vector<std::string> series;
  for (const auto& p : points_)
    if (std::find(series.begin(), series.end(), p.series) == series.end())
      series.push_back(p.series);
  std::set<long> xs;
  for (const auto& p : points_) xs.insert(p.x);

  int width = 14;
  for (const auto& s : series)
    width = std::max(width, static_cast<int>(s.size()) + 2);

  std::string out;
  char cell[96];
  std::snprintf(cell, sizeof(cell), "%12s", x_name.c_str());
  out += cell;
  for (const auto& s : series) {
    std::snprintf(cell, sizeof(cell), "%*s", width, s.c_str());
    out += cell;
  }
  out += '\n';
  for (const long x : xs) {
    std::snprintf(cell, sizeof(cell), "%12ld", x);
    out += cell;
    for (const auto& s : series) {
      const Point* found = nullptr;
      for (const auto& p : points_)
        if (p.series == s && p.x == x) found = &p;
      if (found == nullptr)
        std::snprintf(cell, sizeof(cell), "%*s", width, "-");
      else
        std::snprintf(cell, sizeof(cell), "%*.2f", width, found->value);
      out += cell;
    }
    out += '\n';
  }
  return out;
}

}  // namespace dmc::obs
