// Reduction of a recorded trace to per-phase totals and sweep curves.
//
// summarize() replays a TraceBuffer's event stream in emission order,
// maintaining the span stack, and attributes every round to the innermost
// span open while it executed (key = "outer/inner" path). Summing the
// per-round deltas means the summary's totals reproduce NetworkStats
// exactly — the invariant the acceptance tests pin down.
//
// CurveTable accumulates (series, x) -> value points across runs and
// renders the rounds-vs-n table EXPERIMENTS.md reads the "flat in n"
// claims from.
#pragma once

#include <string>
#include <vector>

#include "obs/buffer.hpp"

namespace dmc::obs {

struct PhaseTotals {
  std::string path;  // "/"-joined span names, "(untraced)" if none open
  long rounds = 0;
  long messages = 0;
  long long bits = 0;
  long first_round = -1;  // earliest round attributed to this path
  long last_round = -1;
};

struct Summary {
  std::vector<PhaseTotals> phases;  // first-seen order
  long total_rounds = 0;
  long total_messages = 0;
  long long total_bits = 0;
  int max_message_bits = 0;
  int num_runs = 0;
  /// True iff every End matched the innermost open Begin and every span
  /// was closed by the end of the trace.
  bool balanced = true;

  /// Totals for one path (exact match), or nullptr.
  const PhaseTotals* find(const std::string& path) const;
  /// Aggregated totals over every path equal to `prefix` or nested below
  /// it (e.g. "elim-tree" sums "elim-tree/election" + "elim-tree/adopt").
  PhaseTotals aggregate(const std::string& prefix) const;
};

Summary summarize(const TraceBuffer& buffer);

/// Renders the per-phase table (one row per path plus a total row) as
/// fixed-width text. The total row is NetworkStats-identical by
/// construction.
std::string format_summary(const Summary& summary);

/// Sweep curves: one row per x value (e.g. n), one column per series
/// (e.g. phase). Missing cells render as "-".
class CurveTable {
 public:
  void add(const std::string& series, long x, double value);
  std::string format(const std::string& x_name = "n") const;
  bool empty() const { return points_.empty(); }

 private:
  struct Point {
    std::string series;
    long x = 0;
    double value = 0;
  };
  std::vector<Point> points_;
};

}  // namespace dmc::obs
