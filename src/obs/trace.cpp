#include "obs/trace.hpp"

#include <cstdio>

namespace dmc::obs {

TraceSink::~TraceSink() = default;

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::Drop: return "drop";
    case FaultEvent::Kind::Duplicate: return "duplicate";
    case FaultEvent::Kind::Corrupt: return "corrupt";
    case FaultEvent::Kind::Delay: return "delay";
    case FaultEvent::Kind::Crash: return "crash";
  }
  return "?";
}

namespace detail {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace detail
}  // namespace dmc::obs
