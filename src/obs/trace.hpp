// dmc::obs — round-level tracing for the CONGEST simulator.
//
// The simulator's NetworkStats only aggregates totals; this subsystem
// exposes *where* rounds and bits go. A TraceSink receives three event
// streams from a traced Network:
//
//   - RunInfo / run_end markers bracketing every Network::run() call;
//   - one RoundEvent per executed round (message/bit deltas of that round
//     plus how many nodes were already done at its end);
//   - PhaseEvents forming properly nested named spans. Driver code opens
//     spans via Network::phase_begin/phase_end (or the PhaseScope RAII
//     helper); node programs emit sub-spans through NodeCtx::annotate,
//     which the network deduplicates (an annotation is a network-global
//     "current step" label — re-annotating the same name is free, a new
//     name closes the previous annotation span and opens a new one);
//   - one FaultEvent per injected fault when the network runs under a
//     fault plan (src/congest/faults.hpp), so a trace shows exactly which
//     message was dropped, duplicated, delayed, or corrupted and which
//     node crash-stopped, at which round.
//
// Tracing is strictly opt-in: with no sink configured the simulator skips
// every tracing branch and performs no allocation for it (enforced by
// tests/obs_trace_test.cpp on the disabled path).
//
// Concrete sinks: TraceBuffer (in-memory, queryable — buffer.hpp),
// JsonlExporter (streaming JSON lines — jsonl.hpp), ChromeTraceExporter
// (chrome://tracing / Perfetto flame view — chrome.hpp). summary.hpp
// reduces a TraceBuffer to per-phase round/bit totals.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dmc::obs {

/// Metadata of one Network::run() call.
struct RunInfo {
  int n = 0;          // number of nodes
  int bandwidth = 0;  // bits per edge per round
  long first_round = 0;  // global index of the run's first round
};

/// Per-round deltas (stats are network-lifetime totals; events are deltas,
/// so summing a trace reproduces NetworkStats exactly).
struct RoundEvent {
  long round = 0;            // global round index (accumulates across runs)
  long messages = 0;         // messages sent during this round
  long long bits = 0;        // declared bits sent during this round
  int max_message_bits = 0;  // largest single message of this round
  int active_nodes = 0;      // nodes whose done() was false after the step
  int done_nodes = 0;
};

/// Begin/End of a named span. Spans are network-global and nest: the
/// network emits End events in LIFO order (annotation spans close before
/// their enclosing driver span).
struct PhaseEvent {
  enum class Kind : std::uint8_t { Begin, End };
  Kind kind = Kind::Begin;
  std::string name;  // span name; End repeats the name it closes
  long round = 0;    // first round covered (Begin) / first not covered (End)
  int depth = 0;     // nesting depth of the span (0 = outermost)
};

/// A coalesced stretch of quiescent rounds: the sparse scheduler's
/// empty-active-set fast-forward skipped `skipped_rounds` consecutive
/// rounds starting at `first_round` in one step. Nothing happened during
/// them — no messages, no bits, no node steps — so active/done counts are
/// constant across the whole stretch.
struct QuiescentEvent {
  long first_round = 0;    // global index of the first skipped round
  long skipped_rounds = 0; // how many rounds were fast-forwarded (>= 1)
  int active_nodes = 0;    // nodes not done, constant during the stretch
  int done_nodes = 0;
};

/// One injected fault (emitted only when the network runs under a fault
/// plan, see src/congest/faults.hpp). src/dst are node *ids* (not graph
/// vertices); Crash events carry the crashed node in src and dst = -1.
struct FaultEvent {
  enum class Kind : std::uint8_t { Drop, Duplicate, Corrupt, Delay, Crash };
  Kind kind = Kind::Drop;
  long round = 0;   // physical round the fault was injected at
  int src = -1;     // sender id (Crash: the crashed node's id)
  int dst = -1;     // receiver id (-1 for Crash)
  int detail = 0;   // Delay/Duplicate: extra delivery rounds; else 0
};

/// Stable lowercase name of a fault kind ("drop", "duplicate", ...).
const char* to_string(FaultEvent::Kind kind);

/// Event consumer interface. Implementations must tolerate events from
/// several consecutive runs on one network (round indices keep growing).
class TraceSink {
 public:
  virtual ~TraceSink();
  virtual void run_begin(const RunInfo&) {}
  virtual void round(const RoundEvent&) = 0;
  virtual void phase(const PhaseEvent&) = 0;
  /// Default no-op: sinks that predate fault injection ignore the stream.
  virtual void fault(const FaultEvent&) {}
  /// A coalesced quiescent stretch. The default expands it into the
  /// equivalent synthetic zero-delta round() calls, so sinks that predate
  /// coalescing (digest sinks, custom test sinks) observe a stream
  /// identical to dense stepping. Scale-aware sinks override this to store
  /// or emit the compact event instead — a d = 9 million-vertex run skips
  /// billions of rounds, which must not become billions of calls.
  virtual void quiescent(const QuiescentEvent& ev) {
    RoundEvent r;
    r.messages = 0;
    r.bits = 0;
    r.max_message_bits = 0;
    r.active_nodes = ev.active_nodes;
    r.done_nodes = ev.done_nodes;
    for (long i = 0; i < ev.skipped_rounds; ++i) {
      r.round = ev.first_round + i;
      round(r);
    }
  }
  virtual void run_end() {}
};

/// Fans events out to several sinks (e.g. an in-memory buffer for the
/// summary plus a file exporter). Does not own the sinks.
class TeeSink final : public TraceSink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}
  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void run_begin(const RunInfo& info) override {
    for (auto* s : sinks_) s->run_begin(info);
  }
  void round(const RoundEvent& ev) override {
    for (auto* s : sinks_) s->round(ev);
  }
  void phase(const PhaseEvent& ev) override {
    for (auto* s : sinks_) s->phase(ev);
  }
  void fault(const FaultEvent& ev) override {
    for (auto* s : sinks_) s->fault(ev);
  }
  void quiescent(const QuiescentEvent& ev) override {
    for (auto* s : sinks_) s->quiescent(ev);
  }
  void run_end() override {
    for (auto* s : sinks_) s->run_end();
  }

 private:
  std::vector<TraceSink*> sinks_;
};

namespace detail {
/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view s);
}  // namespace detail

}  // namespace dmc::obs
