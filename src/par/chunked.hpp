// A chunked, append-only vector with lock-free indexed reads.
//
// The chunk-pointer directory is allocated once at construction and never
// reallocates, so a reader holding an index obtained from size() can
// dereference it while another thread appends: push_back publishes the new
// element with a release store of size_, and readers that observed that
// size with an acquire load see the fully-constructed element. push_back
// itself is externally synchronized (the BPT engine serializes appends
// under its intern mutex); copying is only safe while no writer is active.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>

namespace dmc::par {

template <typename T>
class ChunkedVector {
 public:
  static constexpr std::size_t kChunkBits = 13;  // 8192 elements per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 11;
  static constexpr std::size_t kCapacity = kChunkSize * kMaxChunks;  // 2^24

  ChunkedVector() : chunks_(new std::atomic<T*>[kMaxChunks]()) {}

  ChunkedVector(const ChunkedVector& other)
      : chunks_(new std::atomic<T*>[kMaxChunks]()) {
    const std::size_t n = other.size();
    for (std::size_t i = 0; i < n; ++i) push_back(other[i]);
  }

  ChunkedVector& operator=(const ChunkedVector& other) {
    if (this != &other) {
      ChunkedVector copy(other);
      swap(copy);
    }
    return *this;
  }

  ChunkedVector(ChunkedVector&& other) noexcept
      : chunks_(std::move(other.chunks_)),
        size_(other.size_.load(std::memory_order_relaxed)) {
    other.chunks_.reset(new std::atomic<T*>[kMaxChunks]());
    other.size_.store(0, std::memory_order_relaxed);
  }

  ~ChunkedVector() {
    if (!chunks_) return;
    for (std::size_t c = 0; c < kMaxChunks; ++c)
      delete[] chunks_[c].load(std::memory_order_relaxed);
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  const T& operator[](std::size_t i) const {
    return chunks_[i >> kChunkBits].load(std::memory_order_acquire)
        [i & (kChunkSize - 1)];
  }
  T& operator[](std::size_t i) {
    return chunks_[i >> kChunkBits].load(std::memory_order_acquire)
        [i & (kChunkSize - 1)];
  }

  const T& at(std::size_t i) const {
    if (i >= size()) throw std::out_of_range("ChunkedVector::at");
    return (*this)[i];
  }

  /// Externally synchronized: at most one writer at a time.
  void push_back(T value) {
    const std::size_t i = size_.load(std::memory_order_relaxed);
    if (i >= kCapacity) throw std::length_error("ChunkedVector capacity");
    const std::size_t c = i >> kChunkBits;
    T* chunk = chunks_[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new T[kChunkSize]();
      chunks_[c].store(chunk, std::memory_order_release);
    }
    chunk[i & (kChunkSize - 1)] = std::move(value);
    size_.store(i + 1, std::memory_order_release);
  }

  void swap(ChunkedVector& other) noexcept {
    chunks_.swap(other.chunks_);
    const std::size_t a = size_.load(std::memory_order_relaxed);
    const std::size_t b = other.size_.load(std::memory_order_relaxed);
    size_.store(b, std::memory_order_relaxed);
    other.size_.store(a, std::memory_order_relaxed);
  }

  void clear() {
    for (std::size_t c = 0; c < kMaxChunks; ++c) {
      T* chunk = chunks_[c].exchange(nullptr, std::memory_order_relaxed);
      delete[] chunk;
    }
    size_.store(0, std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<std::atomic<T*>[]> chunks_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace dmc::par
