#include "par/pool.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "metrics/metrics.hpp"

namespace dmc::par {

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

namespace {

thread_local bool tls_in_job = false;

long long ns_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

using Body = std::function<void(std::size_t)>;

// The one process-wide pool. Workers are spawned lazily (never more than
// hardware_threads() - 1, but at least one so single-core hosts still get
// real interleaving under TSan) and parked on a condition variable between
// jobs. A generation counter broadcasts each job; the caller participates
// and then waits for every activated worker to drain.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(int want_helpers, std::size_t n, const Body& body) {
    // One job at a time; concurrent top-level callers queue here.
    std::lock_guard<std::mutex> job_guard(job_mutex_);
    // Metrics (disabled = one null check per *job*, never per task). The
    // chunk counter pointer is published to workers under m_ with the rest
    // of the job fields; busy time is accumulated by every participant and
    // idle time derived from the job's wall-clock span after the join.
    metrics::Registry* const reg = metrics::global();
    std::chrono::steady_clock::time_point job_t0;
    std::unique_lock<std::mutex> lk(m_);
    ensure_workers(want_helpers);
    const int helpers =
        std::min<int>(want_helpers, static_cast<int>(workers_.size()));
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    chunk_ = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(helpers + 1) * 8));
    chunks_ctr_ = nullptr;
    if (reg != nullptr) {
      reg->counter("par.jobs").add(1);
      reg->counter("par.tasks").add(static_cast<long long>(n));
      chunks_ctr_ = &reg->counter("par.chunks");
      busy_ns_.store(0, std::memory_order_relaxed);
      job_t0 = std::chrono::steady_clock::now();
    }
    active_ = helpers;
    pending_ = helpers;
    ++generation_;
    cv_.notify_all();
    lk.unlock();

    tls_in_job = true;
    work();
    tls_in_job = false;

    lk.lock();
    done_cv_.wait(lk, [&] { return pending_ == 0; });
    body_ = nullptr;
    if (reg != nullptr) {
      const long long busy = busy_ns_.load(std::memory_order_relaxed);
      const long long span = ns_since(job_t0) * (helpers + 1);
      reg->counter("par.worker.busy_ns").add(busy);
      reg->counter("par.worker.idle_ns").add(span > busy ? span - busy : 0);
    }
    if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      shutdown_ = true;
      cv_.notify_all();
    }
    for (auto& t : workers_) t.join();
  }

  void ensure_workers(int want) {
    const int cap = std::max(1, hardware_threads() - 1);
    const int target = std::min(want, cap);
    while (static_cast<int>(workers_.size()) < target) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { worker_main(index); });
    }
  }

  void worker_main(int index) {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      cv_.wait(lk, [&] {
        return shutdown_ || (generation_ != seen && index < active_);
      });
      if (shutdown_) return;
      seen = generation_;
      lk.unlock();
      tls_in_job = true;
      work();
      tls_in_job = false;
      lk.lock();
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  void work() {
    if (chunks_ctr_ == nullptr) {
      work_loop(nullptr);
      return;
    }
    long claims = 0;
    const auto t0 = std::chrono::steady_clock::now();
    work_loop(&claims);
    chunks_ctr_->add(claims);
    busy_ns_.fetch_add(ns_since(t0), std::memory_order_relaxed);
  }

  void work_loop(long* claims) {
    for (;;) {
      if (cancelled_.load(std::memory_order_relaxed)) return;
      const std::size_t begin = next_.fetch_add(chunk_, std::memory_order_relaxed);
      if (begin >= n_) return;
      if (claims != nullptr) ++*claims;
      const std::size_t end = std::min(n_, begin + chunk_);
      for (std::size_t i = begin; i < end; ++i) {
        if (cancelled_.load(std::memory_order_relaxed)) return;
        try {
          (*body_)(i);
        } catch (...) {
          std::lock_guard<std::mutex> eg(error_mutex_);
          if (!error_) error_ = std::current_exception();
          cancelled_.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  }

  std::mutex job_mutex_;  // serializes whole jobs

  std::mutex m_;  // guards everything below except the job fields
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::uint64_t generation_ = 0;
  int active_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;

  // Job fields: written under m_ before the generation bump, read by
  // participants without m_ while the job runs.
  const Body* body_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 1;
  metrics::Counter* chunks_ctr_ = nullptr;  // null while metrics disabled
  std::atomic<long long> busy_ns_{0};       // per job, all participants
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> cancelled_{false};
  std::mutex error_mutex_;
  std::exception_ptr error_;
};

}  // namespace

bool in_parallel_region() { return tls_in_job; }

void parallel_for(int threads, std::size_t n, const Body& body) {
  if (threads <= 0) threads = hardware_threads();
  if (threads <= 1 || n <= 1 || tls_in_job) {
    if (metrics::Registry* const reg = metrics::global()) {
      // Nested/serial fallbacks can be hot (every nested call inside a
      // running job lands here), so the handle is cached per thread and
      // only re-resolved when the global registry changes.
      thread_local metrics::Registry* cached_reg = nullptr;
      thread_local metrics::Counter* serial_ctr = nullptr;
      if (cached_reg != reg) {
        cached_reg = reg;
        serial_ctr = &reg->counter("par.serial_inline");
      }
      serial_ctr->add(1);
    }
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Pool::instance().run(threads - 1, n, body);
}

}  // namespace dmc::par
