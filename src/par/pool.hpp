// dmc::par — the process-wide worker pool every parallel code path in the
// repository goes through (enforced by the dmc-lint `raw-thread` rule: no
// raw std::thread / std::async outside src/par/).
//
// The model is deliberately small: one work-stealing-by-chunks job at a
// time. parallel_for(threads, n, body) runs body(0..n-1) with the calling
// thread participating alongside up to threads-1 lazily-spawned workers;
// indices are claimed in contiguous chunks off a shared atomic cursor, so
// idle threads steal whatever range is left. Nested or concurrent
// parallel_for calls from inside a job degrade to an inline serial loop
// (deadlock-free by construction), and threads <= 1 or n <= 1 takes the
// exact legacy serial path with no pool interaction at all.
//
// Exceptions thrown by body are captured (first one wins), further chunk
// claims are cancelled, and the exception is rethrown on the calling
// thread once all participants have drained.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

namespace dmc::par {

/// std::thread::hardware_concurrency(), clamped to at least 1.
int hardware_threads();

/// True while the calling thread is executing inside a parallel_for body
/// (its own or as a pool worker). Nested parallel_for calls run inline.
bool in_parallel_region();

/// Runs body(i) for i in [0, n). `threads` is the total desired
/// parallelism including the caller (0 = hardware_threads()); 1 is the
/// exact serial path. Blocks until every index has run.
void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Lock-free max-accumulate into a plain variable shared across a
/// parallel_for body. Requires value's storage to outlive the loop.
template <typename T>
void atomic_fetch_max(T& target, T value) {
  std::atomic_ref<T> ref(target);
  T cur = ref.load(std::memory_order_relaxed);
  while (cur < value &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Lock-free add-accumulate into a plain variable shared across a
/// parallel_for body.
template <typename T>
void atomic_fetch_add(T& target, T value) {
  std::atomic_ref<T>(target).fetch_add(value, std::memory_order_relaxed);
}

/// Atomically claims the next slot from a plain shared cursor: fetch-add
/// returning the pre-increment value. Serial callers pay an uncontended
/// atomic and get the obvious counter semantics.
template <typename T>
T atomic_claim(T& counter, T delta = T{1}) {
  return std::atomic_ref<T>(counter).fetch_add(delta,
                                               std::memory_order_relaxed);
}

}  // namespace dmc::par
