// dmc::par — sanctioned long-lived thread handle.
//
// parallel_for covers every *bounded* parallel computation in the
// repository, but a daemon also needs a handful of long-running service
// threads (an accept loop, scheduler workers). Those must still come from
// src/par: the dmc-lint `raw-thread` rule bans std::thread everywhere
// else, so ad-hoc threads cannot silently bypass the pool's conventions.
// Thread is the minimal RAII join-on-destruction handle for that purpose —
// deliberately not a second pool: service threads are few, named at the
// call site, and live for the lifetime of their owner.
#pragma once

#include <functional>
#include <thread>
#include <utility>

namespace dmc::par {

class Thread {
 public:
  Thread() = default;
  explicit Thread(std::function<void()> fn) : t_(std::move(fn)) {}
  Thread(Thread&&) = default;
  Thread& operator=(Thread&& other) {
    join();
    t_ = std::move(other.t_);
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  ~Thread() { join(); }

  bool joinable() const { return t_.joinable(); }
  void join() {
    if (t_.joinable()) t_.join();
  }

 private:
  std::thread t_;
};

}  // namespace dmc::par
