#include "seq/courcelle.hpp"

#include <algorithm>
#include <stdexcept>

#include "bpt/engine.hpp"
#include "bpt/plan.hpp"
#include "bpt/tables.hpp"
#include "graph/algorithms.hpp"
#include "mso/lower.hpp"
#include "td/elimination_forest.hpp"

namespace dmc::seq {

namespace {

struct Prepared {
  mso::FormulaPtr lowered;
  bpt::Engine engine;
  bpt::Plan plan;
};

Prepared prepare(const Graph& g, const mso::FormulaPtr& formula,
                 const std::vector<std::pair<std::string, mso::Sort>>& frees,
                 const TreeDecomposition& td) {
  mso::FormulaPtr lowered = mso::lower(formula, frees);
  bpt::EngineConfig cfg = bpt::config_for(*lowered, frees);
  return Prepared{std::move(lowered), bpt::Engine(std::move(cfg)),
                  bpt::build_global_plan(g, td)};
}

}  // namespace

TreeDecomposition decomposition_for(const Graph& g) {
  return canonical_tree_decomposition(g, balanced_elimination_forest(g));
}

bool decide(const Graph& g, const mso::FormulaPtr& formula,
            const TreeDecomposition& td) {
  if (g.num_vertices() == 0)
    throw std::invalid_argument("decide: empty graph");
  Prepared p = prepare(g, formula, {}, td);
  const bpt::TypeId root = bpt::fold_type(p.engine, p.plan, g);
  bpt::Evaluator eval(p.engine, p.lowered);
  return eval.eval(root);
}

bool decide(const Graph& g, const mso::FormulaPtr& formula) {
  return decide(g, formula, decomposition_for(g));
}

std::optional<OptResult> maximize(const Graph& g,
                                  const mso::FormulaPtr& formula,
                                  const std::string& var, mso::Sort var_sort,
                                  const TreeDecomposition& td) {
  if (g.num_vertices() == 0)
    throw std::invalid_argument("maximize: empty graph");
  const std::vector<std::pair<std::string, mso::Sort>> frees{{var, var_sort}};
  Prepared p = prepare(g, formula, frees, td);
  bpt::OptSolver solver(p.engine, p.plan, g);
  bpt::Evaluator eval(p.engine, p.lowered, frees);
  bpt::TypeId best = bpt::kInvalidType;
  Weight best_w = 0;
  for (const auto& [t, w] : solver.root_table()) {
    if (!eval.eval(t)) continue;  // not an accepting class
    if (best == bpt::kInvalidType || w > best_w) {
      best = t;
      best_w = w;
    }
  }
  if (best == bpt::kInvalidType) return std::nullopt;
  auto sol = solver.reconstruct(best);
  return OptResult{best_w, std::move(sol.vertices), std::move(sol.edges)};
}

std::optional<OptResult> maximize(const Graph& g,
                                  const mso::FormulaPtr& formula,
                                  const std::string& var, mso::Sort var_sort) {
  return maximize(g, formula, var, var_sort, decomposition_for(g));
}

std::optional<OptResult> minimize(const Graph& g,
                                  const mso::FormulaPtr& formula,
                                  const std::string& var, mso::Sort var_sort,
                                  const TreeDecomposition& td) {
  Graph negated = g;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    negated.set_vertex_weight(v, -g.vertex_weight(v));
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    negated.set_edge_weight(e, -g.edge_weight(e));
  auto result = maximize(negated, formula, var, var_sort, td);
  if (result) result->weight = -result->weight;
  return result;
}

std::optional<OptResult> minimize(const Graph& g,
                                  const mso::FormulaPtr& formula,
                                  const std::string& var, mso::Sort var_sort) {
  return minimize(g, formula, var, var_sort, decomposition_for(g));
}

std::uint64_t count(const Graph& g, const mso::FormulaPtr& formula,
                    const std::vector<std::pair<std::string, mso::Sort>>& vars,
                    const TreeDecomposition& td) {
  if (g.num_vertices() == 0)
    throw std::invalid_argument("count: empty graph");
  Prepared p = prepare(g, formula, vars, td);
  const auto tables = bpt::fold_count(p.engine, p.plan, g);
  bpt::Evaluator eval(p.engine, p.lowered, vars);
  std::uint64_t total = 0;
  for (const auto& [t, c] : tables[p.plan.root]) {
    if (!eval.eval(t)) continue;
    if (__builtin_add_overflow(total, c, &total))
      throw std::overflow_error("count: overflow");
  }
  return total;
}

std::uint64_t count(const Graph& g, const mso::FormulaPtr& formula,
                    const std::vector<std::pair<std::string, mso::Sort>>& vars) {
  return count(g, formula, vars, decomposition_for(g));
}

}  // namespace dmc::seq
