// Sequential model checking, optimization, and counting on tree
// decompositions: the paper's Algorithm 1 (Lemmas 4.3 and 4.6, plus the
// counting extension of Section 6), end to end.
//
// These functions take *surface* MSO formulas; lowering, engine
// configuration, plan compilation and folding are handled internally. They
// are both the reference implementation the distributed protocols are
// tested against and the local computation each CONGEST node performs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mso/ast.hpp"
#include "td/tree_decomposition.hpp"

namespace dmc::seq {

/// A canonical tree decomposition obtained from a balanced-separator
/// elimination forest (good depth in practice; the distributed protocols
/// instead use Algorithm 2's greedy tree, whose depth is bounded by
/// Lemma 2.5).
TreeDecomposition decomposition_for(const Graph& g);

/// Does g satisfy the closed formula? Uses the supplied decomposition.
bool decide(const Graph& g, const mso::FormulaPtr& formula,
            const TreeDecomposition& td);
/// Convenience overload computing decomposition_for(g).
bool decide(const Graph& g, const mso::FormulaPtr& formula);

struct OptResult {
  Weight weight = 0;
  std::vector<bool> vertices;  // the optimal set S (vertex-set problems)
  std::vector<bool> edges;     // the optimal set F (edge-set problems)
};

/// max φ(S): maximum-weight assignment of the free set variable `var`
/// (vertex or edge set) satisfying the formula; nullopt if no assignment
/// satisfies it. Weights are the graph's vertex/edge weights.
std::optional<OptResult> maximize(const Graph& g,
                                  const mso::FormulaPtr& formula,
                                  const std::string& var, mso::Sort var_sort,
                                  const TreeDecomposition& td);
std::optional<OptResult> maximize(const Graph& g,
                                  const mso::FormulaPtr& formula,
                                  const std::string& var, mso::Sort var_sort);

/// min φ(S): as maximize with negated weights.
std::optional<OptResult> minimize(const Graph& g,
                                  const mso::FormulaPtr& formula,
                                  const std::string& var, mso::Sort var_sort,
                                  const TreeDecomposition& td);
std::optional<OptResult> minimize(const Graph& g,
                                  const mso::FormulaPtr& formula,
                                  const std::string& var, mso::Sort var_sort);

/// count φ(X̄): number of assignments of the free variables (slot order =
/// `vars` order) satisfying the formula.
std::uint64_t count(const Graph& g, const mso::FormulaPtr& formula,
                    const std::vector<std::pair<std::string, mso::Sort>>& vars,
                    const TreeDecomposition& td);
std::uint64_t count(const Graph& g, const mso::FormulaPtr& formula,
                    const std::vector<std::pair<std::string, mso::Sort>>& vars);

}  // namespace dmc::seq
