// dmcd client (see client.hpp).
#include "serve/client.hpp"

#include <vector>

namespace dmc::serve {

Client::Client(const std::string& socket_path)
    : conn_(io::connect_unix(socket_path)) {}

bool Client::send(const Json& request) { return send_line(request.dump()); }

bool Client::send_line(const std::string& line) {
  return conn_.write_line(line);
}

std::optional<Json> Client::recv(int timeout_ms) {
  std::string line;
  const long long deadline = io::now_ms() + timeout_ms;
  for (;;) {
    const int remain = static_cast<int>(deadline - io::now_ms());
    if (remain <= 0) return std::nullopt;
    const io::Connection::ReadStatus st = conn_.read_line(line, remain);
    if (st == io::Connection::ReadStatus::kTimeout) return std::nullopt;
    if (st != io::Connection::ReadStatus::kLine) return std::nullopt;
    if (auto parsed = json_parse(line)) return parsed;
    // Unparsable response line: protocol violation, treat as closed.
    return std::nullopt;
  }
}

std::optional<Json> Client::call(const Json& request, int timeout_ms) {
  if (!send(request)) return std::nullopt;
  return recv(timeout_ms);
}

std::optional<Json> Client::query(const Query& q, int timeout_ms) {
  if (!send_line(to_line(q))) return std::nullopt;
  return recv(timeout_ms);
}

std::optional<Json> Client::control(const std::string& verb,
                                    int timeout_ms) {
  JsonObject o;
  o["id"] = std::string("ctl");
  o["verb"] = verb;
  return call(Json(std::move(o)), timeout_ms);
}

std::optional<Json> Client::ping(int timeout_ms) {
  return control("ping", timeout_ms);
}
std::optional<Json> Client::metrics(int timeout_ms) {
  return control("metrics", timeout_ms);
}
std::optional<Json> Client::shutdown(int timeout_ms) {
  return control("shutdown", timeout_ms);
}

std::optional<Json> Client::trace(const std::string& query_id,
                                  int timeout_ms) {
  JsonObject o;
  o["id"] = std::string("ctl");
  o["verb"] = std::string("trace");
  o["target"] = query_id;
  return call(Json(std::move(o)), timeout_ms);
}

std::map<std::string, Json> Client::pipeline(const std::vector<Query>& batch,
                                             int timeout_ms) {
  std::map<std::string, Json> out;
  std::vector<Query> tagged = batch;
  for (std::size_t i = 0; i < tagged.size(); ++i)
    if (tagged[i].id.empty()) tagged[i].id = "q" + std::to_string(i);
  for (const Query& q : tagged)
    if (!send_line(to_line(q))) return out;
  const long long deadline = io::now_ms() + timeout_ms;
  while (out.size() < tagged.size()) {
    const int remain = static_cast<int>(deadline - io::now_ms());
    if (remain <= 0) break;
    const std::optional<Json> resp = recv(remain);
    if (!resp) break;
    const std::string id = (*resp)["id"].as_string();
    out[id.empty() ? "?" + std::to_string(out.size()) : id] = *resp;
  }
  return out;
}

}  // namespace dmc::serve
