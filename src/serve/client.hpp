// dmcd client: one connection to a running daemon.
//
// The call()/query() helpers are strict request-response; send()/recv()
// expose pipelining — write a whole batch of query lines, then collect
// the responses — which is how tests and BENCH_E14 drive same-key
// batches deep enough for the scheduler to group them. Responses to
// pipelined queries are matched by the echoed `id`, not by order: the
// scheduler answers batch-mates together, so cross-key ordering is not
// FIFO.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/io.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace dmc::serve {

class Client {
 public:
  /// Connects to a daemon's unix socket; throws std::runtime_error if no
  /// daemon is listening.
  explicit Client(const std::string& socket_path);

  /// Pipelining primitives. recv() returns nullopt on timeout or a closed
  /// daemon; responses are parsed JSON objects.
  bool send(const Json& request);
  bool send_line(const std::string& line);
  std::optional<Json> recv(int timeout_ms);

  /// Strict request-response round trip.
  std::optional<Json> call(const Json& request, int timeout_ms = 30000);
  std::optional<Json> query(const Query& q, int timeout_ms = 30000);

  /// Control verbs (id "ctl").
  std::optional<Json> ping(int timeout_ms = 5000);
  std::optional<Json> metrics(int timeout_ms = 5000);
  std::optional<Json> shutdown(int timeout_ms = 5000);
  /// Span timeline of a recently answered query (`trace` verb).
  std::optional<Json> trace(const std::string& query_id,
                            int timeout_ms = 5000);

  /// Sends `n` queries (ids forced to "<id_prefix><index>") pipelined,
  /// then collects all `n` responses keyed by id. Missing entries mean
  /// the daemon closed or timed out mid-batch.
  std::map<std::string, Json> pipeline(const std::vector<Query>& batch,
                                       int timeout_ms = 60000);

 private:
  std::optional<Json> control(const std::string& verb, int timeout_ms);
  io::Connection conn_;
};

}  // namespace dmc::serve
