// Query execution against the CONGEST pipelines (see exec.hpp).
#include "serve/exec.hpp"

#include <cstdio>
#include <stdexcept>

#include "congest/network.hpp"
#include "dist/counting.hpp"
#include "dist/decision.hpp"
#include "dist/optimization.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mso/lower.hpp"
#include "mso/parser.hpp"

namespace dmc::serve {

namespace {

std::optional<mso::Sort> parse_sort(const std::string& s) {
  if (s == "vset") return mso::Sort::VertexSet;
  if (s == "eset") return mso::Sort::EdgeSet;
  return std::nullopt;
}

/// "S:vset,T:eset" -> slot list; nullopt on grammar errors.
std::optional<std::vector<std::pair<std::string, mso::Sort>>> parse_vars(
    const std::string& spec) {
  std::vector<std::pair<std::string, mso::Sort>> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    const auto colon = item.find(':');
    if (colon == std::string::npos || colon == 0) return std::nullopt;
    const auto sort = parse_sort(item.substr(colon + 1));
    if (!sort) return std::nullopt;
    out.emplace_back(item.substr(0, colon), *sort);
    start = end + 1;
    if (end == spec.size()) break;
  }
  if (out.empty()) return std::nullopt;
  return out;
}

/// Selected-set witness text, matching the dmc CLI's ordering (vertex ids
/// ascending, then edge ids ascending). Reported but never digested: with
/// several optimal solutions, reconstruction tie-breaks on engine class
/// ids, so the choice legitimately varies with engine warmth.
std::string selected_text(const Graph& g, const std::vector<bool>& vertices,
                          const std::vector<bool>& edges) {
  std::string out = "selected:";
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (v < static_cast<VertexId>(vertices.size()) && vertices[v])
      out += " v" + std::to_string(v);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (e < static_cast<EdgeId>(edges.size()) && edges[e])
      out += " e" + std::to_string(e) + "(" + std::to_string(g.edge(e).u) +
             "-" + std::to_string(g.edge(e).v) + ")";
  return out;
}

QueryResult finish(QueryResult r) {
  r.digest = result_digest(r.result);
  return r;
}

/// Degraded endings reuse the CLI's structured codes (docs/ROBUSTNESS.md):
/// round budget -> 6, crash-stop -> 7. The canonical text names the code
/// but never a partial verdict — degraded outputs are untrusted. The
/// network's flight recorder is serialized here, while the Network still
/// exists, so the caller can persist the post-mortem.
QueryResult degraded(const congest::RunOutcome& run,
                     const congest::Network& net) {
  QueryResult r;
  if (run.status == congest::RunStatus::kCrashed) {
    r.status = "crashed";
    r.code = 7;
    r.result = "degraded: crashed";
  } else {
    r.status = "degraded";
    r.code = kDeadlineExit;
    r.result = "degraded: round budget exhausted";
  }
  r.rounds = run.rounds;
  r.flight = net.flight_recorder().dump_string();
  return finish(std::move(r));
}

QueryResult treedepth_exceeded(int d, long rounds) {
  QueryResult r;
  r.status = "treedepth";
  r.code = 3;
  r.result = "treedepth>" + std::to_string(d);
  r.rounds = rounds;
  return finish(std::move(r));
}

}  // namespace

std::string result_digest(const std::string& canonical) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : canonical)
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::optional<Prepared> prepare(const Query& q, std::string& error) {
  Prepared p;
  p.q = q;
  try {
    p.formula = mso::parse(q.formula);
  } catch (const std::exception& e) {
    error = std::string("formula: ") + e.what();
    return std::nullopt;
  }
  if (q.verb == "maximize" || q.verb == "minimize") {
    const auto sort = parse_sort(q.sort);
    if (!sort) {
      error = "sort must be vset|eset";
      return std::nullopt;
    }
    p.frees = {{q.var, *sort}};
  } else if (q.verb == "count") {
    const auto vars = parse_vars(q.vars);
    if (!vars) {
      error = "vars must be NAME:vset|eset[,...]";
      return std::nullopt;
    }
    p.frees = *vars;
  }
  try {
    const mso::FormulaPtr lowered = mso::lower(p.formula, p.frees);
    p.formula_text = mso::to_string(*lowered);
    p.cfg = bpt::config_for(*lowered, p.frees);
  } catch (const std::exception& e) {
    error = std::string("lowering: ") + e.what();
    return std::nullopt;
  }
  try {
    p.graph = q.family.empty() ? io::from_dimacs(q.graph_dimacs)
                               : gen::family(q.family);
  } catch (const std::exception& e) {
    error = std::string("graph: ") + e.what();
    return std::nullopt;
  }
  if (p.graph.num_vertices() <= 0) {
    error = "graph: empty";
    return std::nullopt;
  }
  return p;
}

QueryResult execute(const Prepared& p, bpt::Engine* engine) {
  try {
    congest::NetworkConfig cfg;
    // One worker per query: parallelism in the daemon comes from the
    // scheduler running independent queries concurrently, and serial
    // stepping keeps every digest bit-equal to the legacy CLI path.
    cfg.threads = 1;
    if (p.q.max_rounds > 0)
      cfg.max_rounds = static_cast<int>(p.q.max_rounds);
    congest::Network net(p.graph, cfg);

    if (p.q.verb == "decide") {
      const auto out = dist::run_decision(net, p.formula, p.q.dist, engine);
      if (!out.run.ok()) return degraded(out.run, net);
      if (out.treedepth_exceeded)
        return treedepth_exceeded(p.q.dist, out.total_rounds());
      QueryResult r;
      r.status = out.holds ? "ok" : "fails";
      r.code = out.holds ? 0 : 1;
      r.result = out.holds ? "holds" : "fails";
      r.rounds = out.total_rounds();
      r.num_classes = out.num_classes;
      return finish(std::move(r));
    }
    if (p.q.verb == "maximize" || p.q.verb == "minimize") {
      const bool maximize = p.q.verb == "maximize";
      const auto& [var, sort] = p.frees.front();
      const auto out =
          maximize
              ? dist::run_maximize(net, p.formula, var, sort, p.q.dist,
                                   engine)
              : dist::run_minimize(net, p.formula, var, sort, p.q.dist,
                                   engine);
      if (!out.run.ok()) return degraded(out.run, net);
      if (out.treedepth_exceeded)
        return treedepth_exceeded(p.q.dist, out.total_rounds());
      QueryResult r;
      r.rounds = out.total_rounds();
      r.num_classes = out.num_classes;
      if (!out.best_weight) {
        r.status = "infeasible";
        r.code = 1;
        r.result = "infeasible";
        return finish(std::move(r));
      }
      r.status = "ok";
      r.code = 0;
      r.result = "optimum=" + std::to_string(*out.best_weight);
      r.witness = selected_text(p.graph, out.vertices, out.edges);
      return finish(std::move(r));
    }
    if (p.q.verb == "count") {
      const auto out =
          dist::run_count(net, p.formula, p.frees, p.q.dist, engine);
      if (!out.run.ok()) return degraded(out.run, net);
      if (out.treedepth_exceeded)
        return treedepth_exceeded(p.q.dist, out.total_rounds());
      QueryResult r;
      r.status = "ok";
      r.code = 0;
      r.result = "count=" + std::to_string(out.count);
      r.rounds = out.total_rounds();
      r.num_classes = out.num_classes;
      return finish(std::move(r));
    }
    QueryResult r;
    r.status = "error";
    r.code = 4;
    r.result = "error: unknown verb " + p.q.verb;
    return finish(std::move(r));
  } catch (const std::exception& e) {
    QueryResult r;
    r.status = "error";
    r.code = 4;
    r.result = std::string("error: ") + e.what();
    return finish(std::move(r));
  }
}

QueryResult run_one_shot(const Query& q) {
  std::string error;
  const auto p = prepare(q, error);
  if (!p) {
    QueryResult r;
    r.status = "malformed";
    r.code = kMalformedExit;
    r.result = "malformed: " + error;
    return finish(std::move(r));
  }
  return execute(*p, nullptr);
}

}  // namespace dmc::serve
