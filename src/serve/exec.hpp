// Query execution: one parsed protocol Query -> one pipeline run.
//
// Splitting prepare() from execute() is what makes the scheduler's
// batching possible: prepare() derives the engine-sharing key — the
// printed lowered formula plus its EngineConfig, exactly the persistent
// universe-cache key — without running anything, so admission can group
// same-key queries before a worker picks the batch up.
//
// Results carry a *canonical result text* and its FNV-1a digest. The text
// is a pure function of the verdict (never of timing, batching, warmth,
// or thread count), so a query answered by the daemon must digest-match
// the same query run as a one-shot — the oracle-equality contract
// enforced by tests/serve_test.cpp. Optimization witnesses are therefore
// *excluded* from the canonical text: when several optimal solutions
// exist, reconstruction tie-breaks on engine class ids, which differ
// between a cold engine and a warm one that served other graphs first.
// The witness travels in the separate `witness` field — certificate data,
// where any optimal solution is a correct answer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bpt/engine.hpp"
#include "graph/graph.hpp"
#include "mso/ast.hpp"
#include "serve/protocol.hpp"

namespace dmc::serve {

/// A validated query with its parsed formula, slot layout, engine config
/// (the batching key), and materialized input graph.
struct Prepared {
  Query q;
  mso::FormulaPtr formula;
  std::vector<std::pair<std::string, mso::Sort>> frees;
  std::string formula_text;  // printed lowered formula
  bpt::EngineConfig cfg;
  Graph graph;
};

/// Validates and prepares a query; nullopt with a diagnostic in `error`
/// on bad formulas, specs, sorts, or graphs. Never throws.
std::optional<Prepared> prepare(const Query& q, std::string& error);

struct QueryResult {
  std::string status;   // ok|fails|infeasible|treedepth|degraded|crashed|error
  int code = 0;         // CLI exit-code mapping (protocol.hpp)
  std::string result;   // canonical verdict text (digest input)
  std::string digest;   // fnv1a-64 hex of `result`
  std::string witness;  // optimization: selected solution (NOT digested)
  long rounds = 0;      // simulated rounds consumed
  std::size_t num_classes = 0;
  /// Flight-recorder JSONL of the query's network, captured only on
  /// degraded outcomes (codes 6/7) so a dmcd worker can dump the
  /// last-events story next to the degraded response. Empty otherwise —
  /// healthy responses never pay the serialization.
  std::string flight;
};

/// Runs the prepared query in the CONGEST simulator. `engine` non-null
/// injects a shared (possibly warm) universe; null builds a throwaway one
/// — verdict and digest are identical either way.
QueryResult execute(const Prepared& p, bpt::Engine* engine);

/// One-shot oracle: prepare + execute against a fresh engine, the exact
/// equivalent of a cold `dmc` CLI run of the same query.
QueryResult run_one_shot(const Query& q);

/// FNV-1a 64 over the canonical text, as a fixed-width hex string.
std::string result_digest(const std::string& canonical);

}  // namespace dmc::serve
