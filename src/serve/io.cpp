// Raw descriptor plumbing for the serving layer (see io.hpp; this file and
// its header are the dmc-lint `raw-io` sanctioned zone).
#include "serve/io.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/clock.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dmc::serve::io {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Blocks until fd is readable or timeout_ms elapsed. 1 = readable,
/// 0 = timeout, -1 = error/hangup with nothing readable.
int wait_readable(int fd, int timeout_ms) {
  struct pollfd p {};
  p.fd = fd;
  p.events = POLLIN;
  const int rc = ::poll(&p, 1, timeout_ms);
  if (rc == 0) return 0;
  if (rc < 0) return errno == EINTR ? 0 : -1;
  // POLLHUP with pending data still reads; let recv decide.
  return (p.revents & (POLLIN | POLLHUP)) ? 1 : -1;
}

}  // namespace

long long now_ms() {
  // The daemon's one legitimate clock: deadlines and queue-latency
  // metrics. Protocol verdicts never depend on it. Delegates to the
  // sanctioned obs clock seam so tests can freeze time and dmc-lint can
  // confine raw chrono reads to src/obs.
  return obs::now_ms();
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::ListenSocket(const std::string& path) : path_(path) {
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sock_ = Socket(fd);
  ::unlink(path.c_str());  // stale path from a crashed daemon
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("bind " + path);
  if (::listen(fd, 64) != 0) throw_errno("listen " + path);
}

ListenSocket::~ListenSocket() {
  if (!path_.empty()) ::unlink(path_.c_str());
}

std::optional<Socket> ListenSocket::accept(int timeout_ms) {
  if (wait_readable(sock_.fd(), timeout_ms) != 1) return std::nullopt;
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  return Socket(fd);
}

Connection::ReadStatus Connection::read_line(std::string& out,
                                             int timeout_ms) {
  const long long deadline = now_ms() + timeout_ms;
  while (true) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      return ReadStatus::kLine;
    }
    const long long remaining = deadline - now_ms();
    if (remaining <= 0) return ReadStatus::kTimeout;
    const int ready =
        wait_readable(sock_.fd(), static_cast<int>(remaining));
    if (ready == 0) return ReadStatus::kTimeout;
    if (ready < 0) return ReadStatus::kError;
    char chunk[4096];
    const ssize_t n = ::recv(sock_.fd(), chunk, sizeof(chunk), 0);
    if (n == 0) return ReadStatus::kClosed;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return ReadStatus::kError;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Connection::write_line(const std::string& line) {
  std::lock_guard lock(write_mu_);
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a departed client must surface as a false return, not
    // a process-killing SIGPIPE.
    const ssize_t n = ::send(sock_.fd(), framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Socket connect_unix(const std::string& path) {
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                sizeof(addr)) != 0)
    throw_errno("connect " + path);
  return sock;
}

}  // namespace dmc::serve::io
