// serve::io — the only place in the repository allowed to touch raw file
// descriptors, sockets, and the wall clock.
//
// The dmc-lint `raw-io` rule bans ::socket/::read/::write and friends
// outside src/serve/io*, for the same reason raw threads are confined to
// src/par: blocking I/O scattered through protocol or scheduler code is
// invisible to deadlines and shutdown, and untestable. Everything above
// this layer deals in three verbs — accept a connection, read a line,
// write a line — each with an explicit timeout, plus a monotonic
// millisecond clock for deadlines.
//
// Transport is a SOCK_STREAM unix-domain socket: dmcd is a local service
// (same-machine clients; the DMCU cache is per-machine too), which keeps
// the attack surface at filesystem permissions.
#pragma once

#include <mutex>
#include <optional>
#include <string>

namespace dmc::serve::io {

/// Monotonic milliseconds (steady clock) — the sanctioned deadline
/// currency. Not meaningful across processes.
long long now_ms();

/// RAII file-descriptor handle.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

/// Bound + listening unix-domain server socket. Unlinks the path on
/// destruction (stale paths from a crashed daemon are unlinked on bind).
class ListenSocket {
 public:
  /// Throws std::runtime_error with errno context on failure.
  explicit ListenSocket(const std::string& path);
  ~ListenSocket();
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Waits up to timeout_ms for a connection; nullopt on timeout.
  std::optional<Socket> accept(int timeout_ms);

  const std::string& path() const { return path_; }

 private:
  Socket sock_;
  std::string path_;
};

/// Line-framed connection: reads accumulate into an internal buffer until
/// '\n'; writes append '\n' and are serialized by an internal mutex so
/// scheduler workers and the connection reader can respond concurrently.
class Connection {
 public:
  explicit Connection(Socket sock) : sock_(std::move(sock)) {}

  enum class ReadStatus { kLine, kTimeout, kClosed, kError };

  /// Next protocol line (newline stripped). kTimeout after timeout_ms with
  /// no complete line; kClosed on orderly EOF with no buffered line.
  ReadStatus read_line(std::string& out, int timeout_ms);

  /// Writes `line` plus '\n' fully. False once the peer is gone (broken
  /// pipe is a normal client departure, not a daemon error).
  bool write_line(const std::string& line);

  bool valid() const { return sock_.valid(); }

 private:
  Socket sock_;
  std::string buf_;
  std::mutex write_mu_;
};

/// Client side: connects to a daemon's unix socket. Throws
/// std::runtime_error with errno context on failure.
Socket connect_unix(const std::string& path);

}  // namespace dmc::serve::io
