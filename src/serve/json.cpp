// Recursive-descent JSON parser/printer (see json.hpp for scope).
#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dmc::serve {

const Json& Json::operator[](const std::string& key) const {
  static const Json null_value;
  if (!is_object()) return null_value;
  const auto it = obj_->find(key);
  return it == obj_->end() ? null_value : it->second;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::dump() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return bool_ ? "true" : "false";
    case Type::kNumber: {
      if (std::isfinite(num_) && num_ == std::floor(num_) &&
          std::fabs(num_) < 9.0e18) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(num_));
        return buf;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", num_);
      return buf;
    }
    case Type::kString: return '"' + json_escape(str_) + '"';
    case Type::kArray: {
      std::string out = "[";
      for (const Json& v : *arr_) {
        if (out.size() > 1) out += ',';
        out += v.dump();
      }
      return out + ']';
    }
    case Type::kObject: {
      std::string out = "{";
      for (const auto& [k, v] : *obj_) {
        if (out.size() > 1) out += ',';
        out += '"' + json_escape(k) + "\":" + v.dump();
      }
      return out + '}';
    }
  }
  return "null";
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  bool failed = false;

  void skip_ws() {
    while (pos < text.size() && std::isspace(
               static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  Json fail() {
    failed = true;
    return Json();
  }

  Json parse_value(int depth) {
    if (depth > 64) return fail();  // protocol lines are shallow
    skip_ws();
    if (pos >= text.size()) return fail();
    const char c = text[pos];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  Json parse_object(int depth) {
    ++pos;  // '{'
    JsonObject obj;
    skip_ws();
    if (eat('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      if (pos >= text.size() || text[pos] != '"') return fail();
      const Json key = parse_string();
      if (failed || !eat(':')) return fail();
      obj[key.as_string()] = parse_value(depth + 1);
      if (failed) return Json();
      if (eat(',')) continue;
      if (eat('}')) return Json(std::move(obj));
      return fail();
    }
  }

  Json parse_array(int depth) {
    ++pos;  // '['
    JsonArray arr;
    skip_ws();
    if (eat(']')) return Json(std::move(arr));
    while (true) {
      arr.push_back(parse_value(depth + 1));
      if (failed) return Json();
      if (eat(',')) continue;
      if (eat(']')) return Json(std::move(arr));
      return fail();
    }
  }

  Json parse_string() {
    ++pos;  // '"'
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return Json(std::move(out));
      if (c == '\\') {
        if (pos >= text.size()) return fail();
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail();
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return fail();
            }
            // Basic-plane only; encode as UTF-8 (surrogate pairs are out
            // of scope for the protocol's identifiers and formulas).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: return fail();
        }
      } else {
        out += c;
      }
    }
    return fail();  // unterminated
  }

  Json parse_bool() {
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      return Json(true);
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      return Json(false);
    }
    return fail();
  }

  Json parse_null() {
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      return Json();
    }
    return fail();
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(text[pos]));
      ++pos;
    }
    if (!digits) return fail();
    double value = 0;
    const auto [end, ec] = std::from_chars(text.data() + start,
                                           text.data() + pos, value);
    if (ec != std::errc() || end != text.data() + pos) return fail();
    return Json(value);
  }
};

}  // namespace

std::optional<Json> json_parse(const std::string& text) {
  Parser p{text};
  Json value = p.parse_value(0);
  if (p.failed) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return value;
}

}  // namespace dmc::serve
