// Minimal JSON value model for the dmcd line protocol.
//
// The daemon speaks newline-delimited JSON (docs/SERVING.md); this is the
// smallest parser/printer that covers it — objects, arrays, strings,
// numbers, booleans, null; UTF-8 passed through verbatim; \uXXXX escapes
// accepted and re-emitted as-is. Deliberately std-only (the container
// images carry no JSON library) and deliberately *not* a general-purpose
// DOM: objects are std::map so iteration — and therefore every serialized
// response — is deterministically ordered, the same property the rest of
// the repository demands of protocol code.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dmc::serve {

class Json;
using JsonObject = std::map<std::string, Json>;
using JsonArray = std::vector<Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int i) : type_(Type::kNumber), num_(i) {}
  Json(long l) : type_(Type::kNumber), num_(static_cast<double>(l)) {}
  Json(long long l) : type_(Type::kNumber), num_(static_cast<double>(l)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(JsonArray a)
      : type_(Type::kArray), arr_(std::make_shared<JsonArray>(std::move(a))) {}
  Json(JsonObject o)
      : type_(Type::kObject),
        obj_(std::make_shared<JsonObject>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0) const {
    return is_number() ? num_ : fallback;
  }
  long long as_int(long long fallback = 0) const {
    return is_number() ? static_cast<long long>(num_) : fallback;
  }
  const std::string& as_string() const {
    static const std::string empty;
    return is_string() ? str_ : empty;
  }
  const JsonArray& as_array() const {
    static const JsonArray empty;
    return is_array() ? *arr_ : empty;
  }
  const JsonObject& as_object() const {
    static const JsonObject empty;
    return is_object() ? *obj_ : empty;
  }

  /// Object member access; returns a null Json for absent keys or
  /// non-objects, so lookups chain without branching.
  const Json& operator[](const std::string& key) const;

  /// Compact single-line serialization (protocol lines must not contain
  /// raw newlines; they are escaped).
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Parses one JSON document; std::nullopt on any syntax error or trailing
/// garbage (a malformed protocol line is rejected as a whole).
std::optional<Json> json_parse(const std::string& text);

/// Escapes a string for embedding into a JSON document.
std::string json_escape(const std::string& s);

}  // namespace dmc::serve
