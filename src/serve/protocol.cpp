// Protocol line parsing/assembly (see protocol.hpp).
#include "serve/protocol.hpp"

namespace dmc::serve {

namespace {

Request malformed(std::string id, std::string why) {
  Request r;
  r.kind = Request::Kind::kMalformed;
  r.id = std::move(id);
  r.error = std::move(why);
  return r;
}

}  // namespace

Request parse_request(const std::string& line) {
  const std::optional<Json> doc = json_parse(line);
  if (!doc) return malformed("", "not a JSON object line");
  if (!doc->is_object()) return malformed("", "request must be an object");
  const Json& j = *doc;
  std::string id = j["id"].is_string()
                       ? j["id"].as_string()
                       : (j["id"].is_number()
                              ? std::to_string(j["id"].as_int())
                              : std::string());

  const std::string verb = j["verb"].as_string();
  if (verb.empty()) return malformed(id, "missing verb");
  if (verb == "ping" || verb == "metrics" || verb == "shutdown") {
    Request r;
    r.kind = verb == "ping" ? Request::Kind::kPing
             : verb == "metrics" ? Request::Kind::kMetrics
                                 : Request::Kind::kShutdown;
    r.id = id;
    return r;
  }
  if (verb == "trace") {
    const std::string target = j["target"].as_string();
    if (target.empty()) return malformed(id, "trace needs target (query id)");
    Request r;
    r.kind = Request::Kind::kTrace;
    r.id = id;
    r.target = target;
    return r;
  }
  if (verb != "decide" && verb != "maximize" && verb != "minimize" &&
      verb != "count")
    return malformed(id, "unknown verb '" + verb + "'");

  Query q;
  q.id = id;
  q.verb = verb;
  q.formula = j["formula"].as_string();
  if (q.formula.empty()) return malformed(id, "missing formula");
  q.family = j["family"].as_string();
  q.graph_dimacs = j["graph"].as_string();
  if (q.family.empty() == q.graph_dimacs.empty())
    return malformed(id, "need exactly one of family|graph");
  q.dist = static_cast<int>(j["dist"].as_int(0));
  if (q.dist <= 0) return malformed(id, "missing or non-positive dist");
  q.max_rounds = j["max_rounds"].as_int(0);
  if (q.max_rounds < 0) return malformed(id, "negative max_rounds");
  q.deadline_ms = j["deadline_ms"].as_int(0);
  if (q.deadline_ms < 0) return malformed(id, "negative deadline_ms");
  q.var = j["var"].as_string();
  q.sort = j["sort"].as_string();
  q.vars = j["vars"].as_string();
  if ((verb == "maximize" || verb == "minimize")) {
    if (q.var.empty()) return malformed(id, verb + " needs var");
    if (q.sort != "vset" && q.sort != "eset")
      return malformed(id, verb + " needs sort vset|eset");
  }
  if (verb == "count" && q.vars.empty())
    return malformed(id, "count needs vars (NAME:vset|eset,...)");

  Request r;
  r.kind = Request::Kind::kQuery;
  r.id = id;
  r.query = std::move(q);
  return r;
}

std::string to_line(const Query& q) {
  JsonObject o;
  if (!q.id.empty()) o["id"] = q.id;
  o["verb"] = q.verb;
  o["formula"] = q.formula;
  if (!q.family.empty()) o["family"] = q.family;
  if (!q.graph_dimacs.empty()) o["graph"] = q.graph_dimacs;
  o["dist"] = q.dist;
  if (q.max_rounds > 0) o["max_rounds"] = q.max_rounds;
  if (q.deadline_ms > 0) o["deadline_ms"] = q.deadline_ms;
  if (!q.var.empty()) o["var"] = q.var;
  if (!q.sort.empty()) o["sort"] = q.sort;
  if (!q.vars.empty()) o["vars"] = q.vars;
  return Json(std::move(o)).dump();
}

JsonObject response_base(const std::string& id, const std::string& status,
                         int code) {
  JsonObject o;
  if (!id.empty()) o["id"] = id;
  o["status"] = status;
  o["code"] = code;
  return o;
}

int status_exit_code(const std::string& status) {
  if (status == "ok" || status == "pong" || status == "shutting_down")
    return 0;
  if (status == "fails" || status == "infeasible" || status == "not_found")
    return 1;
  if (status == "treedepth") return 3;
  if (status == "error") return 4;
  if (status == "deadline" || status == "degraded") return kDeadlineExit;
  if (status == "crashed") return 7;
  if (status == "overloaded") return kOverloadedExit;
  return kMalformedExit;
}

}  // namespace dmc::serve
