// dmcd line protocol: request/response model (spec in docs/SERVING.md).
//
// One JSON object per line in each direction. Query verbs name the four
// pipelines (decide/maximize/minimize/count); control verbs (ping,
// metrics, shutdown, trace) are answered inline by the server. `trace`
// takes a `target` field — the id of a recently answered query — and
// returns that query's span timeline (docs/OBSERVABILITY.md). Every response
// carries a `status` string and the `code` it would exit with as a
// one-shot dmc run — the daemon reuses the CLI's exit-code contract
// (docs/ROBUSTNESS.md) instead of inventing a second error taxonomy:
//
//   0 ok (holds / optimum / count)   4 internal error
//   1 fails / infeasible             6 deadline or round budget exhausted
//   2 malformed request              7 crash-stop degraded
//   3 treedepth budget exceeded      8 overloaded (admission rejected)
#pragma once

#include <optional>
#include <string>

#include "serve/json.hpp"

namespace dmc::serve {

/// Exit code of the `overloaded` backpressure response (the codes below 8
/// are the established CLI codes).
inline constexpr int kOverloadedExit = 8;
inline constexpr int kMalformedExit = 2;
inline constexpr int kDeadlineExit = 6;

/// One model-checking query, as wired on the protocol.
struct Query {
  std::string id;            // opaque client tag, echoed verbatim
  std::string verb;          // decide | maximize | minimize | count
  std::string formula;       // MSO source text
  std::string family;        // gen::family spec…
  std::string graph_dimacs;  // …or inline DIMACS text (exactly one)
  int dist = 0;              // treedepth budget (required, > 0)
  long long max_rounds = 0;  // optional per-query round budget (0 = default)
  std::string var;           // maximize/minimize: free variable…
  std::string sort;          // …and its sort, "vset" | "eset"
  std::string vars;          // count: "S:vset,T:eset" list
  long long deadline_ms = 0; // queue+run deadline (0 = none)
};

struct Request {
  enum class Kind { kQuery, kPing, kMetrics, kShutdown, kTrace, kMalformed };
  Kind kind = Kind::kMalformed;
  Query query;         // kQuery only
  std::string id;      // echoed for control/malformed responses too
  std::string target;  // kTrace: id of the past query to look up
  std::string error;   // kMalformed diagnostic
};

/// Parses one protocol line. Never throws: anything unparsable or missing
/// required fields comes back kMalformed with a diagnostic.
Request parse_request(const std::string& line);

/// Serializes a query back to a protocol line (client side).
std::string to_line(const Query& q);

/// Response assembly: starts from the echoed id, status, and exit code;
/// callers add result fields before dump().
JsonObject response_base(const std::string& id, const std::string& status,
                         int code);

/// Maps a response's `status` string to its CLI exit code (client-side
/// --check mode); kMalformedExit for unknown statuses.
int status_exit_code(const std::string& status);

}  // namespace dmc::serve
