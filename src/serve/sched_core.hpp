// Pure scheduling core of the session scheduler (scheduler.hpp).
//
// The threaded Scheduler's queueing discipline — bounded admission, FIFO
// over group keys, whole-group draining, stop semantics, and the
// expired-in-queue deadline test — is extracted here as plain data
// structures with no locks, threads, or clocks. Two clients share it:
//
//   - serve::Scheduler wraps a GroupQueue in its mutex and drives it from
//     worker threads (the production path);
//   - the dmc-mc serve model (src/mc/serve_system.*) drives the very same
//     code single-threaded under a virtual clock, exhaustively exploring
//     submit/take/finish/tick orderings and checking the admission /
//     deadline / drain invariants on every interleaving.
//
// Keeping the discipline in one place is what makes the model checking
// meaningful: a bug found (or proven absent) in the model is a statement
// about the code the daemon actually runs, not about a re-implementation.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dmc::serve::core {

/// A query whose deadline passed while it sat in the queue is answered
/// `deadline` without being run; started queries are never preempted, so
/// this is the only place the deadline is consulted. `deadline_abs` <= 0
/// means no deadline. Time unit is whatever the caller's clock uses
/// (milliseconds in the daemon, virtual ticks in the model checker).
inline bool expired_in_queue(long long deadline_abs, long long now) {
  return deadline_abs > 0 && now > deadline_abs;
}

/// Bounded multi-group FIFO queue: tasks are grouped by key (the
/// universe-cache key in the daemon), groups are drained whole in the
/// order they were first created, and total admitted depth is capped.
/// Not thread-safe by design — callers provide their own synchronization
/// (or none, in the model checker).
template <typename Task>
class GroupQueue {
 public:
  GroupQueue() = default;
  explicit GroupQueue(std::size_t max_queue) { set_capacity(max_queue); }

  /// Admission cap in tasks across all groups; clamped to >= 1.
  void set_capacity(std::size_t max_queue) {
    max_queue_ = max_queue < 1 ? 1 : max_queue;
  }

  /// Admission. False = stopped or full; the caller answers `overloaded`.
  bool push(const std::string& key, Task task) {
    if (stopping_ || queued_ >= max_queue_) return false;
    auto [it, inserted] = groups_.try_emplace(key);
    if (inserted) order_.push_back(key);
    it->second.push_back(std::move(task));
    ++queued_;
    return true;
  }

  /// Removes and returns the oldest group (creation order) whole.
  /// Precondition: !empty().
  std::pair<std::string, std::vector<Task>> pop_group() {
    std::string key = std::move(order_.front());
    order_.pop_front();
    auto it = groups_.find(key);
    std::vector<Task> batch = std::move(it->second);
    groups_.erase(it);
    queued_ -= batch.size();
    return {std::move(key), std::move(batch)};
  }

  /// Refuse all further admission; queued tasks remain for draining.
  void stop() { stopping_ = true; }

  bool empty() const { return order_.empty(); }
  bool stopping() const { return stopping_; }
  std::size_t queued() const { return queued_; }
  std::size_t capacity() const { return max_queue_; }

 private:
  std::size_t max_queue_ = 1;
  std::map<std::string, std::vector<Task>> groups_;
  std::deque<std::string> order_;  // group keys, creation order
  std::size_t queued_ = 0;
  bool stopping_ = false;
};

}  // namespace dmc::serve::core
