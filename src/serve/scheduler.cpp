// Session scheduler (see scheduler.hpp).
#include "serve/scheduler.hpp"

#include <cctype>
#include <utility>

#include "bpt/universe_cache.hpp"
#include "metrics/metrics.hpp"
#include "obs/atomic_file.hpp"
#include "serve/io.hpp"

namespace dmc::serve {

namespace {

/// Grouping key: same inputs as the DMCU cache key, so "one batch" is
/// exactly "one shareable universe".
std::string group_key(const Prepared& p) {
  return p.formula_text + "#" +
         std::to_string(bpt::config_hash(p.cfg));
}

/// Flight dump file name for a query id; non-filename characters are
/// folded to '_' (client tags are arbitrary strings).
std::string flight_file_name(const std::string& id) {
  std::string safe;
  for (const char c : id)
    safe += std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                    c == '_'
                ? c
                : '_';
  if (safe.empty()) safe = "query";
  return "flight-" + safe + ".jsonl";
}

}  // namespace

JsonObject make_response(const Query& q, const QueryResult& r,
                         bool engine_warm, std::size_t batch_size,
                         long long queue_ms, const obs::SpanLog* spans) {
  JsonObject o = response_base(q.id, r.status, r.code);
  o["verb"] = q.verb;
  o["result"] = r.result;
  o["digest"] = r.digest;
  if (!r.witness.empty()) o["witness"] = r.witness;
  o["rounds"] = r.rounds;
  o["classes"] = static_cast<long long>(r.num_classes);
  o["warm"] = engine_warm;
  o["batch"] = static_cast<long long>(batch_size);
  o["queue_ms"] = queue_ms;
  if (spans != nullptr) {
    JsonObject s;
    s["queue_ms"] = spans->duration_ms("queue");
    s["universe_ms"] = spans->duration_ms("universe");
    s["exec_ms"] = spans->duration_ms("exec");
    s["total_ms"] = spans->duration_ms("query");
    o["spans"] = std::move(s);
  }
  return o;
}

Scheduler::Scheduler(SchedulerOptions opts, bpt::UniverseTier& tier)
    : opts_(opts), tier_(tier) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.max_queue < 1) opts_.max_queue = 1;
  queue_.set_capacity(static_cast<std::size_t>(opts_.max_queue));
  if (metrics::Registry* reg = metrics::global()) {
    met_accepted_ = &reg->counter("serve.admission.accepted");
    met_rejected_ = &reg->counter("serve.admission.rejected");
    met_deadline_ = &reg->counter("serve.deadline.expired");
    met_responses_ = &reg->counter("serve.responses");
    met_batches_ = &reg->counter("serve.batches");
    met_depth_ = &reg->gauge("serve.queue.depth");
    met_peak_ = &reg->gauge("serve.queue.peak");
    met_batch_size_ = &reg->histogram("serve.batch.size");
    met_flight_dumps_ = &reg->counter("serve.flight.dumps");
    for (const char* verb : {"decide", "maximize", "minimize", "count"})
      met_latency_[verb] =
          &reg->histogram(std::string("serve.latency_ms.") + verb);
  }
}

Scheduler::~Scheduler() {
  stop();
  workers_.clear();  // par::Thread joins on destruction
}

void Scheduler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  for (int i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void Scheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.stop();
  }
  cv_.notify_all();
}

std::size_t Scheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.queued();
}

void Scheduler::set_depth_locked() {
  if (met_depth_) met_depth_->set(static_cast<long long>(queue_.queued()));
  if (met_peak_) met_peak_->max_of(static_cast<long long>(queue_.queued()));
}

bool Scheduler::submit(Prepared p, Respond respond) {
  const long long now = io::now_ms();
  Task t;
  t.admit_ms = now;
  t.deadline_abs_ms = p.q.deadline_ms > 0 ? now + p.q.deadline_ms : 0;
  t.respond = std::move(respond);
  const std::string key = group_key(p);
  t.prepared = std::move(p);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!queue_.push(key, std::move(t))) {
      if (met_rejected_) met_rejected_->add();
      return false;
    }
    set_depth_locked();
    if (met_accepted_) met_accepted_->add();
  }
  cv_.notify_one();
  return true;
}

void Scheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return queue_.stopping() || !queue_.empty(); });
    if (queue_.empty()) {
      if (queue_.stopping()) return;  // drained
      continue;
    }
    auto [key, batch] = queue_.pop_group();
    set_depth_locked();
    lock.unlock();
    run_batch(key, std::move(batch));
    lock.lock();
  }
}

void Scheduler::run_batch(const std::string& key, std::vector<Task> batch) {
  (void)key;
  if (met_batches_) met_batches_->add();
  if (met_batch_size_)
    met_batch_size_->record(static_cast<long long>(batch.size()));
  // Expired-in-queue tasks are answered first, before any engine work:
  // a batch that expired wholesale must not trigger a universe
  // construction it will never use.
  std::vector<Task> live;
  live.reserve(batch.size());
  for (Task& t : batch) {
    const long long now = io::now_ms();
    if (core::expired_in_queue(t.deadline_abs_ms, now)) {
      // Answered without running, with the round-budget degraded code —
      // see header comment. The span log records the whole life of the
      // query as queue wait.
      QueryResult r;
      r.status = "deadline";
      r.code = kDeadlineExit;
      r.result = "degraded: deadline expired in queue";
      r.digest = result_digest(r.result);
      obs::SpanLog log(t.prepared.q.id);
      const int root = log.open_at("query", t.admit_ms);
      const int qspan = log.open_at("queue", t.admit_ms, root);
      log.close_at(qspan, now);
      log.close_at(root, now);
      if (met_deadline_) met_deadline_->add();
      if (met_responses_) met_responses_->add();
      const JsonObject resp = make_response(t.prepared.q, r, false,
                                            batch.size(), now - t.admit_ms,
                                            &log);
      // Sink before respond (same contract as the live path below).
      if (span_sink_) span_sink_(std::move(log));
      if (t.respond) t.respond(resp);
    } else {
      live.push_back(std::move(t));
    }
  }
  if (live.empty()) return;

  const Prepared& head = live.front().prepared;
  const long long acq_start = io::now_ms();
  const bpt::UniverseTier::Lease lease =
      tier_.acquire(head.formula_text, head.cfg);
  const long long acq_end = io::now_ms();
  for (std::size_t i = 0; i < live.size(); ++i) {
    Task& t = live[i];
    const long long start = io::now_ms();
    const QueryResult r = execute(t.prepared, lease.engine.get());
    const long long done = io::now_ms();
    // One causally-linked timeline per query: queue wait, then (for the
    // batch head only — batch-mates ride the same lease) the universe
    // acquire, then execution. All children of one "query" root span.
    obs::SpanLog log(t.prepared.q.id);
    const int root = log.open_at("query", t.admit_ms);
    const int qspan = log.open_at("queue", t.admit_ms, root);
    log.close_at(qspan, i == 0 ? acq_start : start);
    if (i == 0) {
      const int uspan = log.open_at("universe", acq_start, root);
      // The tier's own breakdown: time parked behind another builder/
      // saver, then this acquire's construct/disk-load (absent on a warm
      // hit — "universe" collapses to the lock handoff).
      if (lease.wait_ms > 0) {
        const int w = log.open_at("tier_wait", acq_start, uspan);
        log.close_at(w, acq_start + lease.wait_ms);
      }
      if (!lease.warm) {
        const int b = log.open_at(lease.disk_hit ? "disk_load" : "build",
                                  acq_end - lease.build_ms, uspan);
        log.close_at(b, acq_end);
      }
      log.close_at(uspan, acq_end);
    }
    const int espan = log.open_at("exec", start, root);
    log.close_at(espan, done);
    log.close_at(root, done);
    // warm from this query's view: the engine pre-existed the batch, or
    // an earlier batch member already built/loaded it.
    const JsonObject resp = make_response(
        t.prepared.q, r, lease.warm || i > 0, batch.size(),
        start - t.admit_ms, &log);
    // Degraded outcome: persist the query network's flight ring next to
    // the response so "exit 7" comes with its last-events story.
    if (!opts_.flight_dir.empty() && r.code >= 5 && !r.flight.empty()) {
      std::string err;
      obs::write_file_atomic(
          opts_.flight_dir + "/" + flight_file_name(t.prepared.q.id),
          r.flight, &err);
      if (met_flight_dumps_) met_flight_dumps_->add();
    }
    const auto lat = met_latency_.find(t.prepared.q.verb);
    if (lat != met_latency_.end()) lat->second->record(done - t.admit_ms);
    if (met_responses_) met_responses_->add();
    // Sink before respond: a client that fires `trace <id>` the moment it
    // reads the response must find the span log already retained.
    if (span_sink_) span_sink_(std::move(log));
    if (t.respond) t.respond(resp);
  }
  tier_.release(lease);
}

}  // namespace dmc::serve
