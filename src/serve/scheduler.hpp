// Session scheduler: bounded admission + same-universe batching.
//
// Queries are admitted into a bounded queue; admission failure is an
// explicit `overloaded` response (backpressure), never unbounded growth.
// Queued queries are grouped by their engine key — (printed lowered
// formula, engine config), the universe-cache key — and a worker drains a
// whole group at a time against ONE engine leased from the shared
// UniverseTier. That is the serving-side payoff of Theorem 4.2: the type
// universe depends only on (φ, slot layout), so a batch of same-key
// queries pays universe construction once (single-flight in the tier) and
// runs the remaining queries warm, while different-key groups proceed in
// parallel on other workers.
//
// Deadlines: each query may carry deadline_ms, counted from admission. A
// query whose deadline passed before a worker reached it is answered
// `deadline` with the CLI's round-budget code (6, docs/ROBUSTNESS.md) —
// the serving analogue of a degraded outcome — without being run. Started
// queries are never preempted; per-query `max_rounds` bounds in-run cost
// and degrades with the same code.
//
// Metrics (docs/SERVING.md): serve.queue.depth/.peak, serve.admission.
// accepted/rejected, serve.batch.size, serve.deadline.expired,
// serve.responses, serve.latency_ms.<verb> histograms.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bpt/universe_tier.hpp"
#include "metrics/metrics.hpp"
#include "obs/spans.hpp"
#include "par/thread.hpp"
#include "serve/exec.hpp"
#include "serve/json.hpp"
#include "serve/sched_core.hpp"

namespace dmc::serve {

struct SchedulerOptions {
  int workers = 2;
  int max_queue = 64;  // admission bound (queries, across all groups)
  /// Directory for per-query flight-recorder dumps ("" = disabled). A
  /// worker whose query ends degraded (deadline/crash, codes 6/7) writes
  /// the network's last-events ring there as flight-<id>.jsonl.
  std::string flight_dir;
};

class Scheduler {
 public:
  /// Delivers one response object for a submitted query. Invoked from a
  /// worker thread; must be thread-safe (Connection::write_line is).
  using Respond = std::function<void(const JsonObject&)>;

  /// Receives each answered query's completed span log (worker thread;
  /// must be thread-safe). The server parks them in its SpanStore for
  /// the `trace <id>` verb.
  using SpanSink = std::function<void(obs::SpanLog&&)>;

  Scheduler(SchedulerOptions opts, bpt::UniverseTier& tier);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void start();
  /// Stops accepting and wakes the workers; already-admitted queries are
  /// drained (answered) before the workers exit. Idempotent.
  void stop();

  /// Installs the span sink. Call before start(); not thread-safe against
  /// running workers.
  void set_span_sink(SpanSink sink) { span_sink_ = std::move(sink); }

  /// Admission. False = queue full: the caller answers `overloaded`.
  /// After stop(), admission always fails.
  bool submit(Prepared p, Respond respond);

  /// Queries currently admitted but not yet started (tests/metrics).
  std::size_t queued() const;

 private:
  struct Task {
    Prepared prepared;
    Respond respond;
    long long admit_ms = 0;
    long long deadline_abs_ms = 0;  // 0 = none
  };

  void worker_loop();
  void run_batch(const std::string& key, std::vector<Task> batch);
  void set_depth_locked();

  SchedulerOptions opts_;
  bpt::UniverseTier& tier_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// The queueing discipline itself (bounded admission, group FIFO, stop
  /// semantics) lives in sched_core.hpp, shared with — and exhaustively
  /// schedule-checked by — the dmc-mc serve model. Guarded by mu_.
  core::GroupQueue<Task> queue_;
  bool started_ = false;
  std::vector<par::Thread> workers_;
  SpanSink span_sink_;
  // Metric handles (null when no registry installed).
  metrics::Counter* met_accepted_ = nullptr;
  metrics::Counter* met_rejected_ = nullptr;
  metrics::Counter* met_deadline_ = nullptr;
  metrics::Counter* met_responses_ = nullptr;
  metrics::Counter* met_batches_ = nullptr;
  metrics::Gauge* met_depth_ = nullptr;
  metrics::Gauge* met_peak_ = nullptr;
  metrics::Histogram* met_batch_size_ = nullptr;
  metrics::Counter* met_flight_dumps_ = nullptr;
  std::map<std::string, metrics::Histogram*> met_latency_;
};

/// Full response assembly for an executed query (also used by the
/// deadline path with a synthetic result). When `spans` is non-null the
/// response carries a `"spans"` object: the query's flattened latency
/// breakdown (queue_ms, universe_ms, exec_ms, total_ms) — the summary
/// view of the same SpanLog the `trace <id>` verb returns in full.
JsonObject make_response(const Query& q, const QueryResult& r,
                         bool engine_warm, std::size_t batch_size,
                         long long queue_ms,
                         const obs::SpanLog* spans = nullptr);

}  // namespace dmc::serve
