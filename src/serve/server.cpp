// dmcd server core (see server.hpp).
#include "serve/server.hpp"

#include <cstdio>
#include <list>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "metrics/metrics.hpp"
#include "par/thread.hpp"
#include "serve/exec.hpp"

namespace dmc::serve {

namespace {

constexpr int kAcceptPollMs = 100;
constexpr int kReadPollMs = 200;

}  // namespace

struct Server::ConnThread {
  par::Thread thread;
  std::shared_ptr<std::atomic<bool>> done;
};

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  bpt::UniverseTier::Options tier_opts;
  tier_opts.disk_dir = opts_.universe_dir;
  tier_ = std::make_unique<bpt::UniverseTier>(tier_opts);
  opts_.sched.flight_dir = opts_.flight_dir;
  sched_ = std::make_unique<Scheduler>(opts_.sched, *tier_);
  sched_->set_span_sink(
      [this](obs::SpanLog&& log) { spans_.put(std::move(log)); });
  if (metrics::Registry* reg = metrics::global()) {
    met_connections_ = &reg->counter("serve.connections");
    met_requests_ = &reg->counter("serve.requests");
    met_malformed_ = &reg->counter("serve.requests.malformed");
    met_overloaded_ = &reg->counter("serve.requests.overloaded");
  }
}

Server::~Server() { stop(); }

void Server::stop() { stopping_.store(true); }

void Server::flight_note(const char* text) {
  const long seq = request_seq_.fetch_add(1) + 1;
  std::lock_guard<std::mutex> lock(flight_mu_);
  flight_.note(seq, text);
}

std::string Server::flight_dump() const {
  std::lock_guard<std::mutex> lock(flight_mu_);
  return flight_.dump_string();
}

JsonObject Server::metrics_response(const std::string& id) const {
  JsonObject o = response_base(id, "ok", 0);
  JsonObject m;
  if (const metrics::Registry* reg = metrics::global()) {
    // write_json_fields emits flat `"name":value` pairs over a sorted map;
    // round-tripping through the parser yields a deterministic object.
    std::ostringstream os;
    os << '{';
    reg->write_json_fields(os);
    os << '}';
    if (const auto parsed = json_parse(os.str());
        parsed && parsed->is_object())
      m = parsed->as_object();
  }
  o["metrics"] = std::move(m);
  const bpt::UniverseTier::Stats ts = tier_->stats();
  JsonObject tier;
  tier["hits"] = static_cast<long long>(ts.hits);
  tier["misses"] = static_cast<long long>(ts.misses);
  tier["waits"] = static_cast<long long>(ts.waits);
  tier["builds"] = static_cast<long long>(ts.builds);
  tier["disk_hits"] = static_cast<long long>(ts.disk_hits);
  tier["saves"] = static_cast<long long>(ts.saves);
  tier["persist_errors"] = static_cast<long long>(ts.persist_errors);
  tier["keys"] = static_cast<long long>(ts.keys);
  o["universe_tier"] = std::move(tier);
  o["queued"] = static_cast<long long>(sched_->queued());
  return o;
}

void Server::handle_line(const std::shared_ptr<io::Connection>& conn,
                         const std::string& line) {
  if (met_requests_) met_requests_->add();
  Request req = parse_request(line);
  switch (req.kind) {
    case Request::Kind::kPing: {
      flight_note("ping");
      conn->write_line(Json(response_base(req.id, "pong", 0)).dump());
      return;
    }
    case Request::Kind::kMetrics: {
      flight_note("metrics");
      conn->write_line(Json(metrics_response(req.id)).dump());
      return;
    }
    case Request::Kind::kShutdown: {
      flight_note("shutdown verb");
      conn->write_line(
          Json(response_base(req.id, "shutting_down", 0)).dump());
      stop();
      return;
    }
    case Request::Kind::kTrace: {
      // Answered inline like the other control verbs (bumps only
      // serve.requests): reading a parked span log must stay responsive
      // while the scheduler is saturated.
      flight_note("trace");
      const std::optional<std::string> json = spans_.find_json(req.target);
      if (!json) {
        JsonObject o = response_base(req.id, "not_found", 1);
        o["error"] = "no span log for query id '" + req.target + "'";
        conn->write_line(Json(std::move(o)).dump());
        return;
      }
      JsonObject o = response_base(req.id, "ok", 0);
      if (const auto parsed = json_parse(*json);
          parsed && parsed->is_object())
        o["trace"] = parsed->as_object();
      conn->write_line(Json(std::move(o)).dump());
      return;
    }
    case Request::Kind::kMalformed: {
      flight_note("malformed");
      if (met_malformed_) met_malformed_->add();
      JsonObject o = response_base(req.id, "malformed", kMalformedExit);
      o["error"] = req.error;
      conn->write_line(Json(std::move(o)).dump());
      return;
    }
    case Request::Kind::kQuery:
      break;
  }
  flight_note(req.query.verb.c_str());

  std::string error;
  std::optional<Prepared> prepared = prepare(req.query, error);
  if (!prepared) {
    // Semantically malformed (bad formula / spec / graph): same shape as
    // a syntactically malformed line, so clients have one failure path.
    if (met_malformed_) met_malformed_->add();
    JsonObject o = response_base(req.id, "malformed", kMalformedExit);
    o["error"] = error;
    conn->write_line(Json(std::move(o)).dump());
    return;
  }
  const bool admitted = sched_->submit(
      std::move(*prepared), [conn](const JsonObject& resp) {
        conn->write_line(Json(resp).dump());
      });
  if (!admitted) {
    flight_note("overloaded");
    if (met_overloaded_) met_overloaded_->add();
    JsonObject o = response_base(req.id, "overloaded", kOverloadedExit);
    o["error"] = "admission queue full";
    conn->write_line(Json(std::move(o)).dump());
  }
}

void Server::serve_connection(std::shared_ptr<io::Connection> conn) {
  std::string line;
  while (!stopping_.load()) {
    const io::Connection::ReadStatus st = conn->read_line(line, kReadPollMs);
    if (st == io::Connection::ReadStatus::kTimeout) continue;
    if (st != io::Connection::ReadStatus::kLine) return;
    handle_line(conn, line);
  }
}

int Server::run() {
  std::unique_ptr<io::ListenSocket> listener;
  try {
    listener = std::make_unique<io::ListenSocket>(opts_.socket_path);
  } catch (const std::exception&) {
    return 4;
  }
  sched_->start();
  std::list<ConnThread> conns;
  while (!stopping_.load()) {
    // Reap finished connection threads so a long-lived daemon does not
    // accumulate joined-but-retained handles.
    for (auto it = conns.begin(); it != conns.end();)
      it = it->done->load() ? conns.erase(it) : std::next(it);
    std::optional<io::Socket> sock = listener->accept(kAcceptPollMs);
    if (!sock || !sock->valid()) continue;
    if (met_connections_) met_connections_->add();
    auto conn = std::make_shared<io::Connection>(std::move(*sock));
    auto done = std::make_shared<std::atomic<bool>>(false);
    ConnThread ct;
    ct.done = done;
    ct.thread = par::Thread([this, conn, done] {
      serve_connection(conn);
      done->store(true);
    });
    conns.push_back(std::move(ct));
  }
  // Admission closes first; connection readers notice stopping_ and are
  // joined before the scheduler goes away (handle_line uses it). Queued
  // queries are then drained and answered (Scheduler::stop contract) —
  // the respond callbacks keep their Connections alive via shared_ptr.
  {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "drain: queued=%zu", sched_->queued());
    flight_note(buf);
  }
  sched_->stop();
  conns.clear();
  flight_note("drained");
  sched_.reset();
  return 0;
}

}  // namespace dmc::serve
