// dmcd server core: accept loop, connection handling, verb dispatch.
//
// One thread accepts on the unix-domain listen socket; each connection
// gets a service thread (par::Thread) reading protocol lines. Control
// verbs (ping / metrics / shutdown) are answered inline — they must stay
// responsive while the scheduler is saturated, which is exactly when an
// operator needs them. Query verbs go through prepare() and the
// Scheduler's bounded admission; a full queue answers `overloaded`
// (code 8) immediately instead of stalling the connection, so clients see
// backpressure rather than latency.
//
// Shutdown: the `shutdown` verb (or stop()) closes admission, drains
// already-admitted queries, answers them, and returns from run(). The
// socket file is unlinked by ListenSocket's destructor.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "bpt/universe_tier.hpp"
#include "obs/flight_recorder.hpp"
#include "serve/io.hpp"
#include "serve/scheduler.hpp"
#include "serve/span_store.hpp"

namespace dmc::serve {

struct ServerOptions {
  std::string socket_path;
  SchedulerOptions sched;
  /// DMCU backing directory for the shared universe tier ("" = in-memory).
  std::string universe_dir;
  /// Flight-recorder dump directory ("" = disabled). Copied into the
  /// scheduler options so degraded workers dump there too.
  std::string flight_dir;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, serves until shutdown is requested. Returns 0 on a
  /// clean drain, 4 if the socket could not be bound.
  int run();

  /// Requests shutdown from another thread (signal handlers set a flag
  /// and call this from the main loop instead).
  void stop();

  const bpt::UniverseTier& tier() const { return *tier_; }

  /// Recent-query span logs (`trace <id>` verb; tests).
  const SpanStore& spans() const { return spans_; }

  /// JSONL dump of the daemon-level flight ring: one note per handled
  /// request plus drain markers. dmcd writes this on a SIGTERM shutdown.
  std::string flight_dump() const;

 private:
  struct ConnThread;
  void serve_connection(std::shared_ptr<io::Connection> conn);
  void handle_line(const std::shared_ptr<io::Connection>& conn,
                   const std::string& line);
  JsonObject metrics_response(const std::string& id) const;
  /// Notes one daemon-level event in the flight ring (thread-safe; the
  /// ring itself is single-writer by design, so notes serialize on a
  /// mutex — connection handling is not a hot path at that granularity).
  void flight_note(const char* text);

  ServerOptions opts_;
  std::unique_ptr<bpt::UniverseTier> tier_;
  std::unique_ptr<Scheduler> sched_;
  SpanStore spans_;
  mutable std::mutex flight_mu_;
  obs::FlightRecorder flight_;
  std::atomic<long> request_seq_{0};
  std::atomic<bool> stopping_{false};
  metrics::Counter* met_connections_ = nullptr;
  metrics::Counter* met_requests_ = nullptr;
  metrics::Counter* met_malformed_ = nullptr;
  metrics::Counter* met_overloaded_ = nullptr;
};

}  // namespace dmc::serve
