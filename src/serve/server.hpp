// dmcd server core: accept loop, connection handling, verb dispatch.
//
// One thread accepts on the unix-domain listen socket; each connection
// gets a service thread (par::Thread) reading protocol lines. Control
// verbs (ping / metrics / shutdown) are answered inline — they must stay
// responsive while the scheduler is saturated, which is exactly when an
// operator needs them. Query verbs go through prepare() and the
// Scheduler's bounded admission; a full queue answers `overloaded`
// (code 8) immediately instead of stalling the connection, so clients see
// backpressure rather than latency.
//
// Shutdown: the `shutdown` verb (or stop()) closes admission, drains
// already-admitted queries, answers them, and returns from run(). The
// socket file is unlinked by ListenSocket's destructor.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "bpt/universe_tier.hpp"
#include "serve/io.hpp"
#include "serve/scheduler.hpp"

namespace dmc::serve {

struct ServerOptions {
  std::string socket_path;
  SchedulerOptions sched;
  /// DMCU backing directory for the shared universe tier ("" = in-memory).
  std::string universe_dir;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, serves until shutdown is requested. Returns 0 on a
  /// clean drain, 4 if the socket could not be bound.
  int run();

  /// Requests shutdown from another thread (signal handlers set a flag
  /// and call this from the main loop instead).
  void stop();

  const bpt::UniverseTier& tier() const { return *tier_; }

 private:
  struct ConnThread;
  void serve_connection(std::shared_ptr<io::Connection> conn);
  void handle_line(const std::shared_ptr<io::Connection>& conn,
                   const std::string& line);
  JsonObject metrics_response(const std::string& id) const;

  ServerOptions opts_;
  std::unique_ptr<bpt::UniverseTier> tier_;
  std::unique_ptr<Scheduler> sched_;
  std::atomic<bool> stopping_{false};
  metrics::Counter* met_connections_ = nullptr;
  metrics::Counter* met_requests_ = nullptr;
  metrics::Counter* met_malformed_ = nullptr;
  metrics::Counter* met_overloaded_ = nullptr;
};

}  // namespace dmc::serve
