// Bounded recent-query span store (see span_store.hpp).
#include "serve/span_store.hpp"

#include <algorithm>
#include <utility>

namespace dmc::serve {

SpanStore::SpanStore(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SpanStore::put(obs::SpanLog log) {
  if (log.query_id().empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::string id = log.query_id();
  const auto it = logs_.find(id);
  if (it != logs_.end()) {
    // Reused tag: replace the log and refresh its slot in the FIFO.
    it->second = std::move(log);
    const auto pos = std::find(order_.begin(), order_.end(), id);
    if (pos != order_.end()) order_.erase(pos);
    order_.push_back(id);
    return;
  }
  while (logs_.size() >= capacity_ && !order_.empty()) {
    logs_.erase(order_.front());
    order_.pop_front();
  }
  order_.push_back(id);
  logs_.emplace(id, std::move(log));
}

std::optional<std::string> SpanStore::find_json(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = logs_.find(id);
  if (it == logs_.end()) return std::nullopt;
  return it->second.to_json();
}

std::size_t SpanStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logs_.size();
}

}  // namespace dmc::serve
