// Bounded store of recent per-query span logs, backing the `trace <id>`
// protocol verb.
//
// The scheduler hands each answered query's obs::SpanLog to the server,
// which parks it here; `trace <id>` looks the log up by the client's
// echoed query id and returns the full span tree. The store is a fixed-
// capacity FIFO — a long-lived daemon remembers the most recent
// `capacity` queries and silently forgets older ones, the same bounded-
// memory posture as the flight recorder. Re-answering a query id (clients
// may reuse tags) replaces the old log and refreshes its eviction slot.
#pragma once

#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "obs/spans.hpp"

namespace dmc::serve {

class SpanStore {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit SpanStore(std::size_t capacity = kDefaultCapacity);

  /// Parks one finished query's span log (thread-safe; workers call this
  /// concurrently). Logs without a query id are dropped — they could
  /// never be looked up.
  void put(obs::SpanLog log);

  /// The stored log's to_json() for `id`, or nullopt if unknown/evicted.
  std::optional<std::string> find_json(const std::string& id) const;

  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::string> order_;  // insertion order, front = oldest
  std::map<std::string, obs::SpanLog> logs_;
};

}  // namespace dmc::serve
