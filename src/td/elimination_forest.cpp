#include "td/elimination_forest.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "graph/algorithms.hpp"

namespace dmc {

EliminationForest::EliminationForest(std::vector<VertexId> parent)
    : parent_(std::move(parent)) {
  const int n = num_vertices();
  depth_.assign(n, 0);
  children_.assign(n, {});
  for (VertexId v = 0; v < n; ++v) {
    if (parent_[v] == v || parent_[v] >= n || parent_[v] < -1)
      throw std::invalid_argument("EliminationForest: bad parent pointer");
    if (parent_[v] >= 0) children_[parent_[v]].push_back(v);
  }
  // Compute depths; detect cycles via step counting.
  for (VertexId v = 0; v < n; ++v) {
    if (depth_[v]) continue;
    std::vector<VertexId> chain;
    VertexId x = v;
    while (x >= 0 && !depth_[x]) {
      chain.push_back(x);
      x = parent_[x];
      if (static_cast<int>(chain.size()) > n)
        throw std::invalid_argument("EliminationForest: parent cycle");
    }
    int base = x < 0 ? 0 : depth_[x];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) depth_[*it] = ++base;
  }
}

int EliminationForest::depth() const {
  return depth_.empty() ? 0 : *std::max_element(depth_.begin(), depth_.end());
}

std::vector<VertexId> EliminationForest::roots() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < num_vertices(); ++v)
    if (parent_[v] < 0) out.push_back(v);
  return out;
}

bool EliminationForest::is_ancestor(VertexId anc, VertexId v) const {
  while (v >= 0) {
    if (v == anc) return true;
    v = parent_[v];
  }
  return false;
}

std::vector<VertexId> EliminationForest::root_path(VertexId v) const {
  std::vector<VertexId> path;
  for (VertexId x = v; x >= 0; x = parent_[x]) path.push_back(x);
  std::reverse(path.begin(), path.end());
  return path;
}

bool EliminationForest::valid_for(const Graph& g) const {
  if (g.num_vertices() != num_vertices()) return false;
  for (const Edge& e : g.edges())
    if (!is_ancestor(e.u, e.v) && !is_ancestor(e.v, e.u)) return false;
  return true;
}

bool EliminationForest::is_subgraph_of(const Graph& g) const {
  if (g.num_vertices() != num_vertices()) return false;
  for (VertexId v = 0; v < num_vertices(); ++v)
    if (parent_[v] >= 0 && !g.has_edge(v, parent_[v])) return false;
  return true;
}

namespace {

/// Exact treedepth of induced subgraphs identified by vertex bitmasks,
/// memoized (Lemma 2.2).
class TreedepthSolver {
 public:
  explicit TreedepthSolver(const Graph& g) : g_(g), n_(g.num_vertices()) {
    if (n_ > 20)
      throw std::invalid_argument("exact_treedepth: n > 20 not supported");
    nbr_.assign(n_, 0);
    for (const Edge& e : g.edges()) {
      nbr_[e.u] |= 1u << e.v;
      nbr_[e.v] |= 1u << e.u;
    }
  }

  int solve(std::uint32_t mask) {
    if (mask == 0) return 0;
    auto it = memo_.find(mask);
    if (it != memo_.end()) return it->second;
    int result;
    const auto comps = components(mask);
    if (comps.size() > 1) {
      result = 0;
      for (std::uint32_t c : comps) result = std::max(result, solve(c));
    } else if (popcount(mask) == 1) {
      result = 1;
    } else {
      result = std::numeric_limits<int>::max();
      for (int v = 0; v < n_; ++v)
        if ((mask >> v) & 1)
          result = std::min(result, 1 + solve(mask & ~(1u << v)));
    }
    memo_[mask] = result;
    return result;
  }

  /// Rebuilds an optimal elimination forest for `mask`, appending parent
  /// pointers into `parent` (-1-rooted at `root` unless root >= 0).
  void build_forest(std::uint32_t mask, VertexId root,
                    std::vector<VertexId>& parent) {
    if (mask == 0) return;
    const auto comps = components(mask);
    if (comps.size() > 1) {
      for (std::uint32_t c : comps) build_forest(c, root, parent);
      return;
    }
    if (popcount(mask) == 1) {
      for (int v = 0; v < n_; ++v)
        if ((mask >> v) & 1) parent[v] = root;
      return;
    }
    const int target = solve(mask);
    for (int v = 0; v < n_; ++v) {
      if (!((mask >> v) & 1)) continue;
      if (1 + solve(mask & ~(1u << v)) == target) {
        parent[v] = root;
        build_forest(mask & ~(1u << v), v, parent);
        return;
      }
    }
    throw std::logic_error("TreedepthSolver: no optimal pivot found");
  }

 private:
  static int popcount(std::uint32_t x) { return __builtin_popcount(x); }

  std::vector<std::uint32_t> components(std::uint32_t mask) const {
    std::vector<std::uint32_t> out;
    std::uint32_t remaining = mask;
    while (remaining) {
      std::uint32_t comp = remaining & -remaining;  // lowest set bit as seed
      for (;;) {
        std::uint32_t grown = comp;
        for (int v = 0; v < n_; ++v)
          if ((comp >> v) & 1) grown |= nbr_[v] & mask;
        if (grown == comp) break;
        comp = grown;
      }
      out.push_back(comp);
      remaining &= ~comp;
    }
    return out;
  }

  const Graph& g_;
  int n_;
  std::vector<std::uint32_t> nbr_;
  std::unordered_map<std::uint32_t, int> memo_;
};

}  // namespace

int exact_treedepth(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  TreedepthSolver solver(g);
  return solver.solve((g.num_vertices() == 32 ? ~0u : (1u << g.num_vertices()) - 1));
}

std::pair<int, EliminationForest> exact_treedepth_forest(const Graph& g) {
  TreedepthSolver solver(g);
  const std::uint32_t all =
      g.num_vertices() == 32 ? ~0u : (1u << g.num_vertices()) - 1;
  const int td = g.num_vertices() == 0 ? 0 : solver.solve(all);
  std::vector<VertexId> parent(g.num_vertices(), -1);
  solver.build_forest(all, -1, parent);
  return {td, EliminationForest(std::move(parent))};
}

namespace {

/// Components of the induced subgraph on `alive` vertices.
std::vector<std::vector<VertexId>> live_components(
    const Graph& g, const std::vector<VertexId>& alive) {
  std::vector<bool> in(g.num_vertices(), false), seen(g.num_vertices(), false);
  for (VertexId v : alive) in[v] = true;
  std::vector<std::vector<VertexId>> comps;
  for (VertexId s : alive) {
    if (seen[s]) continue;
    comps.emplace_back();
    std::vector<VertexId> stack{s};
    seen[s] = true;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      comps.back().push_back(v);
      for (auto [w, e] : g.incident(v))
        if (in[w] && !seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
    }
  }
  return comps;
}

void balanced_rec(const Graph& g, const std::vector<VertexId>& comp,
                  VertexId root, std::vector<VertexId>& parent) {
  if (comp.size() == 1) {
    parent[comp[0]] = root;
    return;
  }
  // Pick the vertex minimizing the largest remaining component.
  VertexId best = -1;
  std::size_t best_size = comp.size() + 1;
  for (VertexId v : comp) {
    std::vector<VertexId> rest;
    rest.reserve(comp.size() - 1);
    for (VertexId u : comp)
      if (u != v) rest.push_back(u);
    std::size_t largest = 0;
    for (const auto& c : live_components(g, rest))
      largest = std::max(largest, c.size());
    if (largest < best_size) {
      best_size = largest;
      best = v;
    }
  }
  parent[best] = root;
  std::vector<VertexId> rest;
  for (VertexId u : comp)
    if (u != best) rest.push_back(u);
  for (const auto& c : live_components(g, rest))
    balanced_rec(g, c, best, parent);
}

}  // namespace

EliminationForest balanced_elimination_forest(const Graph& g) {
  std::vector<VertexId> parent(g.num_vertices(), -1);
  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  for (const auto& comp : live_components(g, all))
    balanced_rec(g, comp, -1, parent);
  return EliminationForest(std::move(parent));
}

std::optional<EliminationForest> greedy_elimination_tree(const Graph& g,
                                                         int max_depth) {
  const int n = g.num_vertices();
  if (n == 0) return EliminationForest(std::vector<VertexId>{});
  if (!is_connected(g))
    throw std::invalid_argument("greedy_elimination_tree: graph disconnected");
  std::vector<VertexId> parent(n, -1);
  std::vector<int> depth(n, 0);
  std::vector<bool> marked(n, false);
  // Root: the minimum id (mirrors the leader election of Algorithm 2).
  marked[0] = true;
  depth[0] = 1;
  int num_marked = 1;
  for (int step = 2; num_marked < n; ++step) {
    if (step > max_depth) return std::nullopt;
    // Components of the unmarked vertices.
    std::vector<int> comp(n, -1);
    int num_comp = 0;
    for (VertexId s = 0; s < n; ++s) {
      if (marked[s] || comp[s] >= 0) continue;
      const int c = num_comp++;
      std::vector<VertexId> stack{s};
      comp[s] = c;
      while (!stack.empty()) {
        const VertexId v = stack.back();
        stack.pop_back();
        for (auto [w, e] : g.incident(v))
          if (!marked[w] && comp[w] < 0) {
            comp[w] = c;
            stack.push_back(w);
          }
      }
    }
    // For each component: the adopter is the deepest marked neighbor (it has
    // depth step-1 by the invariant of Lemma 5.1); the new node is the
    // min-id component vertex adjacent to the adopter.
    for (int c = 0; c < num_comp; ++c) {
      VertexId adopter = -1;
      for (VertexId v = 0; v < n; ++v) {
        if (marked[v] || comp[v] != c) continue;
        for (auto [w, e] : g.incident(v))
          if (marked[w] && (adopter < 0 || depth[w] > depth[adopter]))
            adopter = w;
      }
      if (adopter < 0)
        throw std::logic_error("greedy_elimination_tree: isolated component");
      VertexId chosen = -1;
      for (auto [w, e] : g.incident(adopter))
        if (!marked[w] && comp[w] == c && (chosen < 0 || w < chosen))
          chosen = w;
      if (chosen < 0)
        throw std::logic_error(
            "greedy_elimination_tree: adopter not adjacent to component");
      parent[chosen] = adopter;
      depth[chosen] = step;
      marked[chosen] = true;
      ++num_marked;
    }
  }
  return EliminationForest(std::move(parent));
}

}  // namespace dmc
